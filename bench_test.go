// Benchmarks: one per paper figure (driving the same deterministic
// discrete-event harness as cmd/sprwl-bench, at reduced horizons) plus
// library-plane micro-benchmarks of the real concurrent implementation.
//
// The per-figure benchmarks report the regenerated series' key quantity as
// a custom metric (virtual ops per million cycles); "who wins" comparisons
// live in EXPERIMENTS.md, produced by cmd/sprwl-bench over full horizons.
package sprwl_test

import (
	"testing"

	"sprwl"
	"sprwl/internal/env"
	"sprwl/internal/harness"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/tpcc"
	"sprwl/internal/workload"
)

const benchHorizon = 500_000 // virtual cycles per simulated point

// benchHashmapPoint runs one simulated hashmap point per b.N iteration and
// reports its virtual throughput.
func benchHashmapPoint(b *testing.B, algo string, threads, lookups, updatePct int, p htm.Profile, items int) {
	b.Helper()
	var last harness.Point
	for i := 0; i < b.N; i++ {
		pt, err := harness.RunHashmapPoint(harness.HashmapPointConfig{
			Algo: algo, Threads: threads, Profile: p,
			Workload: workload.HashmapConfig{
				Buckets: 512, Items: items,
				LookupsPerRead: lookups, UpdatePercent: updatePct,
			},
			Horizon: benchHorizon, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = pt
	}
	b.ReportMetric(last.Throughput, "vops/Mcyc")
	b.ReportMetric(100*last.AbortRate, "abort%")
}

// Figure 3: long readers (10 lookups), Broadwell and POWER8.
func BenchmarkFig3_Broadwell_SpRWL(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWL, 14, 10, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig3_Broadwell_TLE(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoTLE, 14, 10, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig3_Broadwell_RWL(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoRWL, 14, 10, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig3_Broadwell_BRLock(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoBRLock, 14, 10, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig3_Power8_SpRWL(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWL, 16, 10, 10, htm.Power8(), 65536)
}
func BenchmarkFig3_Power8_RWLE(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoRWLE, 16, 10, 10, htm.Power8(), 65536)
}

// Figure 4: short readers (1 lookup) — TLE's favourable regime.
func BenchmarkFig4_Broadwell_SpRWL(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWL, 14, 1, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig4_Broadwell_TLE(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoTLE, 14, 1, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig4_Power8_SpRWL(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWL, 16, 1, 10, htm.Power8(), 65536)
}
func BenchmarkFig4_Power8_TLE(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoTLE, 16, 1, 10, htm.Power8(), 65536)
}

// Figure 5: scheduling ablation at 10% updates on Broadwell.
func BenchmarkFig5_NoSched(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWLNoSched, 14, 10, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig5_RWait(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWLRWait, 14, 10, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig5_RSync(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWLRSync, 14, 10, 10, htm.Broadwell(), 131072)
}
func BenchmarkFig5_SpRWL(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWL, 14, 10, 10, htm.Broadwell(), 131072)
}

// Figure 6: flag-array vs SNZI reader tracking, POWER8, 50% updates.
func BenchmarkFig6_Flags_LongReaders(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWL, 32, 64, 50, htm.Power8(), 65536)
}
func BenchmarkFig6_SNZI_LongReaders(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWLSNZI, 32, 64, 50, htm.Power8(), 65536)
}
func BenchmarkFig6_Flags_ShortReaders(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWL, 32, 1, 50, htm.Power8(), 65536)
}
func BenchmarkFig6_SNZI_ShortReaders(b *testing.B) {
	benchHashmapPoint(b, harness.AlgoSpRWLSNZI, 32, 1, 50, htm.Power8(), 65536)
}

// Figure 7: TPC-C with the paper's mix.
func benchTPCCPoint(b *testing.B, algo string, threads int, p htm.Profile) {
	b.Helper()
	var last harness.Point
	for i := 0; i < b.N; i++ {
		pt, err := harness.RunTPCCPoint(harness.TPCCPointConfig{
			Algo: algo, Threads: threads, Profile: p,
			Scale:   tpcc.Config{Warehouses: threads, CustomersPerDistrict: 48, Items: 1024},
			Mix:     workload.PaperMix(),
			Horizon: benchHorizon, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = pt
	}
	b.ReportMetric(last.Throughput, "vops/Mcyc")
	b.ReportMetric(100*last.GLShare, "GL%")
}

func BenchmarkFig7_Broadwell_SpRWL(b *testing.B) {
	benchTPCCPoint(b, harness.AlgoSpRWL, 14, htm.Broadwell())
}
func BenchmarkFig7_Broadwell_TLE(b *testing.B) {
	benchTPCCPoint(b, harness.AlgoTLE, 14, htm.Broadwell())
}
func BenchmarkFig7_Power8_SpRWL(b *testing.B) { benchTPCCPoint(b, harness.AlgoSpRWL, 16, htm.Power8()) }
func BenchmarkFig7_Power8_RWLE(b *testing.B)  { benchTPCCPoint(b, harness.AlgoRWLE, 16, htm.Power8()) }

// Library-plane micro-benchmarks: per-operation costs of the real
// concurrent implementation (ns/op is meaningful here).

func BenchmarkHTMUninstrumentedLoad(b *testing.B) {
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: 1 << 12})
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += space.Load(memmodel.Addr(i & 511))
	}
	_ = sink
}

func BenchmarkHTMSmallTransaction(b *testing.B) {
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: 1 << 12})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		space.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
			tx.Store(0, tx.Load(0)+1)
		})
	}
}

func BenchmarkSpRWLUncontendedWrite(b *testing.B) {
	l := sprwl.MustNew(sprwl.Config{Threads: 1, Words: sprwl.MinWords(1) + 1024})
	data := l.Arena().AllocLines(1)
	h := l.Handle(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Write(0, func(m sprwl.Accessor) { m.Store(data, uint64(i)) })
	}
}

func BenchmarkSpRWLUncontendedShortRead(b *testing.B) {
	l := sprwl.MustNew(sprwl.Config{Threads: 1, Words: sprwl.MinWords(1) + 1024})
	data := l.Arena().AllocLines(1)
	h := l.Handle(0)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		h.Read(0, func(m sprwl.Accessor) { sink += m.Load(data) })
	}
	_ = sink
}

func BenchmarkSpRWLUncontendedLongRead(b *testing.B) {
	// 512 lines: over Power8's capacity, so the read takes the
	// uninstrumented path after one capacity abort.
	l := sprwl.MustNew(sprwl.Config{Threads: 1, Words: sprwl.MinWords(1) + 1<<14, Machine: sprwl.Power8()})
	region := l.Arena().AllocLines(512)
	h := l.Handle(0)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		h.Read(0, func(m sprwl.Accessor) {
			for j := 0; j < 512; j++ {
				sink += m.Load(region + sprwl.Addr(j*8))
			}
		})
	}
	_ = sink
}
