package sprwl

import (
	"sync"
	"testing"
)

func TestNewValidatesWords(t *testing.T) {
	if _, err := New(Config{Threads: 2, Words: 8}); err == nil {
		t.Fatal("New accepted an address space smaller than MinWords")
	}
}

func TestQuickstartFlow(t *testing.T) {
	l := MustNew(Config{Threads: 2, Words: MinWords(2) + 1024})
	data := l.Arena().AllocLines(1)
	h := l.Handle(0)
	h.Write(0, func(m Accessor) { m.Store(data, 42) })
	var got uint64
	h.Read(1, func(m Accessor) { got = m.Load(data) })
	if got != 42 {
		t.Fatalf("read %d, want 42", got)
	}
	if s := l.Stats(); s.TotalOps() != 2 {
		t.Fatalf("stats ops = %d, want 2", s.TotalOps())
	}
	if l.Name() != "SpRWL" {
		t.Fatalf("Name = %q, want SpRWL", l.Name())
	}
}

func TestVariantsThroughFacade(t *testing.T) {
	for _, opts := range []Options{NoSchedOptions(), RWaitOptions(), RSyncOptions(), SNZIOptions()} {
		l := MustNew(Config{Threads: 2, Words: MinWords(2) + 1024, Options: opts})
		data := l.Arena().AllocLines(1)
		h := l.Handle(0)
		h.Write(0, func(m Accessor) { m.Store(data, 1) })
		h.Read(1, func(m Accessor) {
			if m.Load(data) != 1 {
				t.Errorf("%s: read wrong value", l.Name())
			}
		})
	}
}

func TestMachineProfileLimitsCapacity(t *testing.T) {
	l := MustNew(Config{Threads: 1, Words: MinWords(1) + 1<<14, Machine: Power8()})
	region := l.Arena().AllocLines(256)
	h := l.Handle(0)
	// A read touching 256 lines exceeds POWER8's 128-line capacity: it
	// must still succeed, via the uninstrumented path.
	h.Read(0, func(m Accessor) {
		for i := 0; i < 256; i++ {
			_ = m.Load(region + Addr(i*8))
		}
	})
	s := l.Stats()
	if s.TotalOps() != 1 {
		t.Fatalf("ops = %d, want 1", s.TotalOps())
	}
}

func TestConcurrentUseThroughFacade(t *testing.T) {
	const threads = 4
	l := MustNew(Config{Threads: threads, Words: MinWords(threads) + 4096})
	x := l.Arena().AllocLines(1)
	y := l.Arena().AllocLines(1)
	var wg sync.WaitGroup
	for s := 0; s < threads; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.Handle(slot)
			for i := 0; i < 200; i++ {
				if slot == 0 {
					h.Write(0, func(m Accessor) {
						v := m.Load(x) + 1
						m.Store(x, v)
						m.Store(y, v)
					})
				} else {
					h.Read(1, func(m Accessor) {
						if vx, vy := m.Load(x), m.Load(y); vx != vy {
							t.Errorf("torn read: %d vs %d", vx, vy)
						}
					})
				}
			}
		}(s)
	}
	wg.Wait()
}
