// Command tpcc runs the in-memory TPC-C port under any of the repository's
// lock algorithms on the real concurrent runtime, reports throughput and
// the commit/abort profile, and verifies the database's consistency
// conditions afterwards.
//
// Usage:
//
//	tpcc -algo SpRWL -threads 4 -ops 2000
//	tpcc -algo TLE -machine power8
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"sprwl/internal/harness"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/stats"
	"sprwl/internal/tpcc"
	"sprwl/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tpcc:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algo       = flag.String("algo", harness.AlgoSpRWL, "lock algorithm: "+strings.Join(harness.AllAlgorithms(), "|"))
		threads    = flag.Int("threads", 4, "worker goroutines (1..64)")
		ops        = flag.Int("ops", 2000, "transactions per worker")
		warehouses = flag.Int("warehouses", 0, "warehouse count (0 = threads)")
		customers  = flag.Int("customers", 96, "customers per district")
		items      = flag.Int("items", 2048, "item count")
		machine    = flag.String("machine", "", "capacity profile: broadwell|power8|empty for unlimited")
		seed       = flag.Uint64("seed", 1, "input RNG seed")
	)
	flag.Parse()

	scale := tpcc.Config{
		Warehouses:           *warehouses,
		CustomersPerDistrict: *customers,
		Items:                *items,
	}
	if scale.Warehouses == 0 {
		scale.Warehouses = *threads
	}
	scale.Validate()

	var rCap, wCap int
	switch *machine {
	case "broadwell":
		rCap, wCap = htm.Broadwell().EffectiveCapacity(*threads)
	case "power8":
		rCap, wCap = htm.Power8().EffectiveCapacity(*threads)
	case "":
	default:
		return fmt.Errorf("unknown machine %q", *machine)
	}

	words := workload.TPCCWords(scale) + harness.LockWords(*threads)
	space, err := htm.NewSpace(htm.Config{
		Threads:            *threads,
		Words:              words,
		ReadCapacityLines:  rCap,
		WriteCapacityLines: wCap,
	})
	if err != nil {
		return err
	}
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(*threads)
	lock, err := harness.BuildLock(*algo, e, ar, *threads, workload.NumTPCCCS, col.Pipeline())
	if err != nil {
		return err
	}
	db := workload.SetupTPCC(space, ar, scale, workload.PaperMix(), *seed)
	fmt.Printf("%s under %s, %d threads, %d ops/thread\n", db.DB, lock.Name(), *threads, *ops)

	start := time.Now()
	var wg sync.WaitGroup
	for slot := 0; slot < *threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			step := db.Worker(lock.NewHandle(slot), slot, *seed, e.Now)
			for i := 0; i < *ops; i++ {
				step()
			}
		}(slot)
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := col.Snapshot()
	fmt.Printf("completed %d transactions in %v (%.0f tx/s)\n",
		snap.TotalOps(), elapsed.Round(time.Millisecond),
		float64(snap.TotalOps())/elapsed.Seconds())
	fmt.Println("profile:", snap)

	if err := db.DB.Check(space); err != nil {
		return fmt.Errorf("consistency check FAILED: %w", err)
	}
	fmt.Println("consistency checks passed")
	return nil
}
