// Command sprwl-serve is a long-running serving demo for the sharded lock
// table: a concurrent KV + range-scan service (one skiplist per
// internal/locktable shard) driven by the internal/workload load generator
// with Zipfian key popularity, in closed- or open-loop mode.
//
// Usage:
//
//	sprwl-serve -duration 2s                          # closed loop, defaults
//	sprwl-serve -rate 50000 -zipf 0.99 -duration 10s  # open loop, YCSB skew
//	sprwl-serve -shards 1                             # single-lock baseline
//	sprwl-serve -duration 2s -json report.json        # machine-readable
//
// The open loop schedules arrivals on a fixed timetable and measures each
// op from its scheduled arrival to completion, so queueing delay shows up
// in the reported tails (no coordinated omission). SIGINT/SIGTERM end the
// run early but cleanly: the report still covers everything served.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sprwl/internal/htm"
	"sprwl/internal/locktable"
	"sprwl/internal/memmodel"
	"sprwl/internal/workload"
)

// report is the -json document: the effective configuration plus the run's
// result, one self-describing artifact per run.
type report struct {
	Config struct {
		Shards  int     `json:"shards"`
		Items   int     `json:"items"`
		Workers int     `json:"workers"`
		Rate    float64 `json:"rate_ops_per_sec"`
		Read    int     `json:"read_percent"`
		Scan    int     `json:"scan_percent"`
		Multi   int     `json:"multi_percent"`
		Zipf    float64 `json:"zipf_theta"`
		Seed    uint64  `json:"seed"`
	} `json:"config"`
	Result workload.LoadResult `json:"result"`
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		shards   = flag.Int("shards", 0, "lock-table shards (power of two; 0 = 4*GOMAXPROCS, 1 = single-lock baseline)")
		items    = flag.Int("items", 16384, "key-space size (fully populated at startup)")
		workers  = flag.Int("workers", 4, "client goroutines")
		duration = flag.Duration("duration", 5*time.Second, "how long to generate load for")
		rate     = flag.Float64("rate", 0, "total arrival rate in ops/sec (0 = closed loop)")
		readPct  = flag.Int("read", 90, "percent of point ops that are Gets")
		scanPct  = flag.Int("scan", 1, "percent of all ops that are whole-table range scans")
		scanSpan = flag.Int("scanspan", 128, "scan length in keys")
		multiPct = flag.Int("multi", 2, "percent of all ops that are multi-key write spans")
		width    = flag.Int("width", 4, "multi-key span width")
		zipf     = flag.Float64("zipf", 0, "key-popularity skew theta (0 = uniform, 0.99 = YCSB)")
		seed     = flag.Uint64("seed", 1, "workload RNG seed")
		jsonPath = flag.String("json", "", "write the latency report as JSON to this file")
		quiet    = flag.Bool("quiet", false, "suppress the human-readable summary")
	)
	flag.Parse()

	kvCfg := workload.KVConfig{
		Table: locktable.Config{Shards: *shards, Threads: *workers},
		Items: *items,
	}
	kvCfg.Validate()
	space, err := htm.NewSpace(htm.Config{Threads: *workers, Words: workload.KVWords(kvCfg)})
	if err != nil {
		return err
	}
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	kv, err := workload.SetupKV(e, ar, kvCfg, nil)
	if err != nil {
		return err
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		fmt.Fprintln(os.Stderr, "sprwl-serve: signal received, draining")
		close(stop)
	}()

	loadCfg := workload.LoadConfig{
		Workers:      *workers,
		Duration:     *duration,
		Rate:         *rate,
		ReadPercent:  *readPct,
		ScanPercent:  *scanPct,
		ScanSpan:     *scanSpan,
		MultiPercent: *multiPct,
		MultiWidth:   *width,
		ZipfTheta:    *zipf,
		Seed:         *seed,
		Stop:         stop,
	}
	if !*quiet {
		mode := "closed loop"
		if *rate > 0 {
			mode = fmt.Sprintf("open loop, %.0f ops/s", *rate)
		}
		fmt.Printf("sprwl-serve: %d shards, %d keys, %d workers, zipf %.2f, %s, %v\n",
			kv.Table.Shards(), *items, *workers, *zipf, mode, *duration)
	}
	res := workload.RunLoad(kv, loadCfg)

	if !*quiet {
		fmt.Printf("served %d ops in %v (%.0f ops/s): %d reads, %d writes (%d scans, %d multi-spans)\n",
			res.Ops, res.Elapsed.Round(time.Millisecond), res.ThruOpsS,
			res.Reads, res.Writes, res.Scans, res.Multis)
		if res.Mode == "open" && res.Lagged > 0 {
			fmt.Printf("open loop: %d arrivals started late (queueing delay included in tails)\n", res.Lagged)
		}
		fmt.Printf("reader latency ns: p50 %d  p99 %d  p999 %d (mean %.0f)\n",
			res.ReaderP50Ns, res.ReaderP99Ns, res.ReaderP999Ns, res.ReaderMeanNs)
		fmt.Printf("writer latency ns: p50 %d  p99 %d  p999 %d (mean %.0f)\n",
			res.WriterP50Ns, res.WriterP99Ns, res.WriterP999Ns, res.WriterMeanNs)
	}

	if *jsonPath != "" {
		var rep report
		rep.Config.Shards = kv.Table.Shards()
		rep.Config.Items = *items
		rep.Config.Workers = *workers
		rep.Config.Rate = *rate
		rep.Config.Read = *readPct
		rep.Config.Scan = *scanPct
		rep.Config.Multi = *multiPct
		rep.Config.Zipf = *zipf
		rep.Config.Seed = *seed
		rep.Result = res
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(&rep); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}
