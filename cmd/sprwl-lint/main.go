// Command sprwl-lint runs the repository's custom static analyzers — the
// mechanized form of the concurrency and hot-path invariants documented in
// DESIGN.md §8 — over module packages:
//
//	go run ./cmd/sprwl-lint ./...
//
// Patterns follow the go tool's form ("./...", "./internal/core",
// "./internal/..."); with no arguments the whole module is checked. The
// exit status is 0 when no diagnostics survive suppression, 1 when any
// invariant violation is reported, and 2 when loading or type-checking
// fails. Intentional exceptions are suppressed at the site with
// //sprwl:allow(<analyzer>) plus a justification; suppressed findings are
// counted on stderr so they stay visible.
package main

import (
	"fmt"
	"os"
	"path/filepath"

	"sprwl/internal/analysis/atomicmix"
	"sprwl/internal/analysis/bodyidempotent"
	"sprwl/internal/analysis/driver"
	"sprwl/internal/analysis/hotpathalloc"
	"sprwl/internal/analysis/releaseorder"
)

var analyzers = []*driver.Analyzer{
	atomicmix.Analyzer,
	bodyidempotent.Analyzer,
	hotpathalloc.Analyzer,
	releaseorder.Analyzer,
}

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-lint:", err)
		os.Exit(2)
	}
	prog, err := driver.NewProgram(moduleDir)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-lint:", err)
		os.Exit(2)
	}
	pkgs, err := prog.LoadPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-lint:", err)
		os.Exit(2)
	}
	res, err := driver.RunAnalyzers(prog, pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-lint:", err)
		os.Exit(2)
	}
	for _, d := range res.Diagnostics {
		fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
	}
	if n := len(res.Suppressed); n > 0 {
		fmt.Fprintf(os.Stderr, "sprwl-lint: %d finding(s) suppressed by //sprwl:allow\n", n)
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "sprwl-lint: %d invariant violation(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod, so the tool works from any subdirectory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
