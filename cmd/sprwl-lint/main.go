// Command sprwl-lint runs the repository's custom static analyzers — the
// mechanized form of the concurrency and hot-path invariants documented in
// DESIGN.md §8 — over module packages:
//
//	go run ./cmd/sprwl-lint ./...
//
// Patterns follow the go tool's form ("./...", "./internal/core",
// "./internal/..."); with no arguments the whole module is checked. The
// exit status is 0 when no diagnostics survive suppression and no
// suppression is stale, 1 when any invariant violation or stale
// //sprwl:allow directive is reported, and 2 when loading or type-checking
// fails. Intentional exceptions are suppressed at the site with
// //sprwl:allow(<analyzer>) plus a justification; suppressed findings are
// counted on stderr so they stay visible, and a directive that suppresses
// nothing is itself an error — delete the allow when the finding it
// justified is gone.
//
// With -json the run is emitted as a single machine-readable object on
// stdout (diagnostics, suppressed findings, stale allows, and counts; see
// the report type) for CI artifacts and dashboards; the human format and
// exit codes are unchanged otherwise. When -baseline is also given the
// object carries a "baseline" section: the snapshot path, how many run
// findings the baseline suppressed, the fresh findings that fail the
// gate, and the stale snapshot entries awaiting a -write-baseline
// refresh.
//
// -baseline <file> turns the run into a regression gate against a
// committed snapshot (itself a -json report, conventionally
// LINT_baseline.json at the module root): findings present in the run but
// absent from the baseline fail the gate, and baseline entries no longer
// reproduced also fail — a fixed finding must be removed from the
// snapshot, so the baseline only ever shrinks deliberately. Findings are
// keyed by (file, analyzer, message), not line numbers, so unrelated
// edits don't churn the gate. -write-baseline <file> records the current
// run as the new snapshot.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sprwl/internal/analysis/atomicmix"
	"sprwl/internal/analysis/bodyidempotent"
	"sprwl/internal/analysis/doomedread"
	"sprwl/internal/analysis/driver"
	"sprwl/internal/analysis/fenceorder"
	"sprwl/internal/analysis/hotpathalloc"
	"sprwl/internal/analysis/lockorder"
	"sprwl/internal/analysis/releaseorder"
	"sprwl/internal/analysis/spanleak"
)

var analyzers = []*driver.Analyzer{
	atomicmix.Analyzer,
	bodyidempotent.Analyzer,
	doomedread.Analyzer,
	fenceorder.Analyzer,
	hotpathalloc.Analyzer,
	lockorder.Analyzer,
	releaseorder.Analyzer,
	spanleak.Analyzer,
}

// finding is one diagnostic in the -json report.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// staleAllow is one unused suppression directive in the -json report,
// with the full position and the analyzer names it claims to silence so
// dashboards can link straight to the directive.
type staleAllow struct {
	File      string   `json:"file"`
	Line      int      `json:"line"`
	Column    int      `json:"column"`
	Analyzers []string `json:"analyzers"`
}

// baselineReport is the -json section describing a -baseline gated run:
// how many findings the committed snapshot silenced, which findings are
// new (gate failures), and which snapshot entries are stale because no
// run diagnostic reproduces them (the baseline must shrink).
type baselineReport struct {
	Path string `json:"path"`
	// Suppressed counts run diagnostics matched — and therefore
	// silenced — by a baseline entry.
	Suppressed int       `json:"suppressed"`
	Fresh      []finding `json:"fresh"`
	Stale      []finding `json:"stale"`
}

// report is the top-level -json object.
type report struct {
	Diagnostics []finding       `json:"diagnostics"`
	Suppressed  []finding       `json:"suppressed"`
	StaleAllows []staleAllow    `json:"staleAllows"`
	Baseline    *baselineReport `json:"baseline,omitempty"`
	Counts      struct {
		Diagnostics int `json:"diagnostics"`
		Suppressed  int `json:"suppressed"`
		StaleAllows int `json:"staleAllows"`
	} `json:"counts"`
}

func main() {
	jsonOut := flag.Bool("json", false, "emit the run as a JSON object on stdout")
	baselinePath := flag.String("baseline", "", "gate the run against a committed -json snapshot: new findings fail, entries no longer reproduced require a baseline refresh")
	writeBaseline := flag.String("write-baseline", "", "record the current run's diagnostics as the baseline snapshot at this path")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	moduleDir, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	prog, err := driver.NewProgram(moduleDir)
	if err != nil {
		fatal(err)
	}
	pkgs, err := prog.LoadPatterns(patterns)
	if err != nil {
		fatal(err)
	}
	res, err := driver.RunAnalyzers(prog, pkgs, analyzers)
	if err != nil {
		fatal(err)
	}

	// Positions are reported relative to the module root: stable across
	// checkouts, so JSON artifacts diff cleanly between CI runs.
	rel := func(file string) string {
		if r, err := filepath.Rel(moduleDir, file); err == nil && !strings.HasPrefix(r, "..") {
			return filepath.ToSlash(r)
		}
		return file
	}
	toFindings := func(ds []driver.Diagnostic) []finding {
		out := make([]finding, 0, len(ds))
		for _, d := range ds {
			p := prog.Fset.Position(d.Pos)
			out = append(out, finding{
				File: rel(p.Filename), Line: p.Line, Column: p.Column,
				Analyzer: d.Analyzer.Name, Message: d.Message,
			})
		}
		return out
	}

	var r report
	r.Diagnostics = toFindings(res.Diagnostics)
	r.Suppressed = toFindings(res.Suppressed)
	r.StaleAllows = make([]staleAllow, 0, len(res.StaleAllows))
	for _, a := range res.StaleAllows {
		p := prog.Fset.Position(a.Pos)
		r.StaleAllows = append(r.StaleAllows, staleAllow{File: rel(p.Filename), Line: p.Line, Column: p.Column, Analyzers: a.Names})
	}
	r.Counts.Diagnostics = len(r.Diagnostics)
	r.Counts.Suppressed = len(r.Suppressed)
	r.Counts.StaleAllows = len(r.StaleAllows)

	// The baseline diff runs before emission so a -json run carries the
	// gate's verdict in the same object CI archives.
	var fresh, fixed []finding
	if *baselinePath != "" {
		fresh, fixed, err = diffBaseline(*baselinePath, r.Diagnostics)
		if err != nil {
			fatal(err)
		}
		b := &baselineReport{
			Path:       *baselinePath,
			Suppressed: len(r.Diagnostics) - len(fresh),
			Fresh:      fresh,
			Stale:      fixed,
		}
		if b.Fresh == nil {
			b.Fresh = []finding{}
		}
		if b.Stale == nil {
			b.Stale = []finding{}
		}
		r.Baseline = b
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(r); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range res.Diagnostics {
			fmt.Printf("%s: %s: %s\n", prog.Fset.Position(d.Pos), d.Analyzer.Name, d.Message)
		}
		for _, a := range res.StaleAllows {
			fmt.Printf("%s: stale //sprwl:allow(%s): suppresses nothing; delete it or re-justify against a live finding\n",
				prog.Fset.Position(a.Pos), strings.Join(a.Names, ", "))
		}
		if n := len(res.Suppressed); n > 0 {
			fmt.Fprintf(os.Stderr, "sprwl-lint: %d finding(s) suppressed by //sprwl:allow\n", n)
		}
	}

	if *writeBaseline != "" {
		if err := writeBaselineFile(*writeBaseline, r); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "sprwl-lint: wrote baseline with %d finding(s) to %s\n", len(r.Diagnostics), *writeBaseline)
	}

	if *baselinePath != "" {
		for _, f := range fresh {
			fmt.Fprintf(os.Stderr, "sprwl-lint: new finding not in baseline: %s:%d: %s: %s\n", f.File, f.Line, f.Analyzer, f.Message)
		}
		for _, f := range fixed {
			fmt.Fprintf(os.Stderr, "sprwl-lint: baseline entry no longer reproduced (refresh with -write-baseline): %s: %s: %s\n", f.File, f.Analyzer, f.Message)
		}
		if bad := len(fresh) + len(fixed) + len(res.StaleAllows); bad > 0 {
			fmt.Fprintf(os.Stderr, "sprwl-lint: baseline gate failed: %d new, %d fixed-but-listed, %d stale suppression(s)\n",
				len(fresh), len(fixed), len(res.StaleAllows))
			os.Exit(1)
		}
		return
	}

	if bad := len(res.Diagnostics) + len(res.StaleAllows); bad > 0 {
		fmt.Fprintf(os.Stderr, "sprwl-lint: %d invariant violation(s) and/or stale suppression(s)\n", bad)
		os.Exit(1)
	}
}

// baselineKey identifies a finding across line-number churn: position is
// advisory, identity is (file, analyzer, message).
type baselineKey struct {
	File     string
	Analyzer string
	Message  string
}

// diffBaseline loads a committed -json snapshot and splits the current
// diagnostics against it: fresh findings are absent from the snapshot,
// fixed entries are snapshot rows no run diagnostic reproduces. Duplicate
// keys are counted, so adding a second instance of a known finding in the
// same file still trips the gate.
func diffBaseline(path string, current []finding) (fresh, fixed []finding, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, fmt.Errorf("reading baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return nil, nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	counts := make(map[baselineKey]int)
	for _, f := range base.Diagnostics {
		counts[baselineKey{f.File, f.Analyzer, f.Message}]++
	}
	for _, f := range current {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if counts[k] > 0 {
			counts[k]--
		} else {
			fresh = append(fresh, f)
		}
	}
	for _, f := range base.Diagnostics {
		k := baselineKey{f.File, f.Analyzer, f.Message}
		if counts[k] > 0 {
			counts[k]--
			fixed = append(fixed, f)
		}
	}
	return fresh, fixed, nil
}

// writeBaselineFile records the run's diagnostics (only — suppressions and
// stale allows are transient) as the committed snapshot.
func writeBaselineFile(path string, r report) error {
	var snap report
	snap.Diagnostics = r.Diagnostics
	if snap.Diagnostics == nil {
		snap.Diagnostics = []finding{}
	}
	snap.Suppressed = []finding{}
	snap.StaleAllows = []staleAllow{}
	snap.Counts.Diagnostics = len(snap.Diagnostics)
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sprwl-lint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the enclosing
// go.mod, so the tool works from any subdirectory of the module.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}
