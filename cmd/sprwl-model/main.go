// Command sprwl-model bounded-model-checks the extracted SpRWL protocol.
//
// It compiles the //sprwl:model-annotated reader/writer paths straight
// out of the source tree into atomic-step thread programs, then
// enumerates every interleaving (with sleep-set partial-order
// reduction) under sequential consistency or TSO store-buffer
// semantics, checking mutual exclusion, section-body integrity,
// quiescence, and lost-wakeup/deadlock freedom.
//
// Usage:
//
//	sprwl-model [-config name|all] [-sem sc|tso|both] [-json]
//	            [-trace dir] [-mutate name|all] [-maxstates n]
//	            [-maxdepth n] [-litmus] [-list]
//
// Exit status: 0 all runs verified as expected; 1 a violation was found
// (or a mutation self-test missed its seeded bug); 2 usage or
// extraction error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"sprwl/internal/analysis/interleave"
)

func main() {
	var (
		config    = flag.String("config", "all", "configuration to check (see -list), or all")
		semFlag   = flag.String("sem", "both", "memory semantics: sc, tso, or both")
		jsonOut   = flag.Bool("json", false, "emit machine-readable JSON")
		traceDir  = flag.String("trace", "", "write counterexample traces into this directory")
		mutate    = flag.String("mutate", "", "run mutation self-test: a mutation name, or all")
		litmus    = flag.Bool("litmus", false, "run the litmus calibration suite instead of protocol configs")
		maxStates = flag.Int("maxstates", 0, "state budget per run (0 = default)")
		maxDepth  = flag.Int("maxdepth", 0, "schedule length bound (0 = default)")
		list      = flag.Bool("list", false, "list configurations and mutations")
		noMin     = flag.Bool("nominimize", false, "report the raw DFS counterexample without the BFS shortening pass")
		dir       = flag.String("dir", ".", "directory inside the module to analyze")
	)
	flag.Parse()

	if *list {
		fmt.Println("configurations:")
		for _, n := range interleave.ConfigNames() {
			fmt.Printf("  %-16s %s\n", n, interleave.ConfigDoc(n))
		}
		fmt.Println("mutations:")
		for _, m := range interleave.Mutations() {
			fmt.Printf("  %-20s [%s] %s\n", m.Name, m.Config, m.Desc)
		}
		return
	}

	sems, err := parseSems(*semFlag)
	if err != nil {
		fatal(err)
	}
	opts := interleave.ExploreOpts{MaxStates: *maxStates, MaxDepth: *maxDepth, NoMinimize: *noMin}

	if *litmus {
		os.Exit(runLitmus(sems, opts, *jsonOut, *traceDir))
	}

	ex, err := interleave.NewExtractor(*dir)
	if err != nil {
		fatal(err)
	}

	if *mutate != "" {
		os.Exit(runMutations(ex, *mutate, opts, *jsonOut))
	}

	names := interleave.ConfigNames()
	if *config != "all" {
		names = []string{*config}
	}

	var runs []interleave.RunResult
	exit := 0
	for _, name := range names {
		m, err := ex.Build(name)
		if err != nil {
			fatal(err)
		}
		for _, sem := range sems {
			res := interleave.RunModel(m, sem, opts)
			runs = append(runs, res)
			if res.Violation != nil {
				exit = 1
				writeTrace(*traceDir, fmt.Sprintf("%s-%s", res.Model, res.Sem), res.Violation)
			}
			if !*jsonOut {
				printRun(res)
			}
		}
	}
	if *jsonOut {
		emitJSON(map[string]any{"runs": runs})
	}
	os.Exit(exit)
}

func parseSems(s string) ([]interleave.Sem, error) {
	if s == "both" {
		return []interleave.Sem{interleave.SemSC, interleave.SemTSO}, nil
	}
	sem, err := interleave.ParseSem(s)
	if err != nil {
		return nil, err
	}
	return []interleave.Sem{sem}, nil
}

func runLitmus(sems []interleave.Sem, opts interleave.ExploreOpts, jsonOut bool, traceDir string) int {
	models := interleave.LitmusModels()
	exit := 0
	var runs []interleave.RunResult
	for _, want := range interleave.LitmusExpectations {
		matched := false
		for _, sem := range sems {
			if sem.String() == want.Sem.String() {
				matched = true
			}
		}
		if !matched {
			continue
		}
		res := interleave.RunModel(models[want.Name], want.Sem, opts)
		runs = append(runs, res)
		ok := (res.Violation == nil) == want.Forbidden
		verdict := "as expected"
		if !ok {
			verdict = "UNEXPECTED"
			exit = 1
		}
		if res.Violation != nil {
			writeTrace(traceDir, fmt.Sprintf("litmus-%s-%s", res.Model, res.Sem), res.Violation)
		}
		if !jsonOut {
			state := "forbidden outcome unreachable"
			if res.Violation != nil {
				state = "forbidden outcome observed"
			}
			fmt.Printf("litmus %-3s %-4s %-30s (%s, %d states)\n", want.Name, res.Sem, state, verdict, res.States)
		}
	}
	if jsonOut {
		emitJSON(map[string]any{"litmus": runs})
	}
	return exit
}

func runMutations(ex *interleave.Extractor, which string, opts interleave.ExploreOpts, jsonOut bool) int {
	var muts []interleave.Mutation
	if which == "all" {
		muts = interleave.Mutations()
	} else {
		m, ok := interleave.FindMutation(which)
		if !ok {
			fatal(fmt.Errorf("unknown mutation %q (see -list)", which))
		}
		muts = []interleave.Mutation{m}
	}
	exit := 0
	var results []interleave.MutationResult
	for _, mut := range muts {
		for _, mr := range ex.Mutate(mut, opts) {
			results = append(results, mr)
			if !mr.Caught {
				exit = 1
			}
			if !jsonOut {
				verdict := "caught"
				if !mr.Caught {
					verdict = "MISSED: " + mr.Err
				} else if mr.Expected == "" {
					verdict = "clean as expected"
				}
				fmt.Printf("mutation %-20s %-4s expect=%-18s %s\n", mr.Mutation, mr.Sem, orDash(mr.Expected), verdict)
				if mr.Caught && mr.Run != nil && mr.Run.Violation != nil {
					fmt.Print(indent(interleave.RenderTrace(mr.Run.Violation)))
				}
			}
		}
	}
	if jsonOut {
		emitJSON(map[string]any{"mutations": results})
	}
	return exit
}

func printRun(res interleave.RunResult) {
	status := "verified"
	if !res.Complete {
		status = "INCOMPLETE (bounds hit)"
	}
	if res.Violation != nil {
		status = "VIOLATION"
	}
	fmt.Printf("%-16s %-4s %-24s states=%d transitions=%d pruned=%d depth=%d\n",
		res.Model, res.Sem, status, res.States, res.Transitions, res.Pruned, res.MaxDepth)
	if res.Violation != nil {
		fmt.Print(indent(interleave.RenderTrace(res.Violation)))
	}
}

func writeTrace(dir, name string, v *interleave.Violation) {
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-model:", err)
		return
	}
	path := filepath.Join(dir, name+".trace")
	if err := os.WriteFile(path, []byte(interleave.RenderTrace(v)), 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-model:", err)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fatal(err)
	}
}

func indent(s string) string {
	return "    " + s[:len(s)-1] + "\n"
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sprwl-model:", err)
	os.Exit(2)
}
