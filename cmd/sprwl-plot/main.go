// Command sprwl-plot renders the benchmark harness's CSV output as ASCII
// charts and sparklines, for a quick terminal look at a regenerated
// figure's shape.
//
// Usage:
//
//	sprwl-bench -exp fig3 -profile broadwell -csv fig3.csv
//	sprwl-plot -metric throughput_ops_per_mcycle fig3.csv
//	sprwl-plot -spark fig3.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"sprwl/internal/plot"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-plot:", err)
		os.Exit(1)
	}
}

func run() error {
	metric := flag.String("metric", "throughput_ops_per_mcycle", "CSV column to plot")
	spark := flag.Bool("spark", false, "render one sparkline per series instead of bar grids")
	flag.Parse()
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: sprwl-plot [-metric col] [-spark] <file.csv>")
	}
	f, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	charts, err := plot.ParseCSV(f, *metric)
	if err != nil {
		return err
	}
	for _, ch := range charts {
		if *spark {
			fmt.Printf("%s / %s — %s\n", ch.Figure, ch.Section, ch.Metric)
			for _, s := range ch.Series {
				fmt.Printf("  %-14s %s  (max %.1f)\n", s.Algo, plot.Sparkline(s.Y), maxOf(s.Y))
			}
		} else {
			ch.Render(os.Stdout)
		}
		fmt.Println()
	}
	return nil
}

func maxOf(ys []float64) float64 {
	var m float64
	for _, y := range ys {
		if y > m {
			m = y
		}
	}
	return m
}
