// Command sprwl-bench regenerates the paper's evaluation figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	sprwl-bench -exp fig3 -profile broadwell          # one figure
//	sprwl-bench -exp all -profile power8 -quick       # smoke sweep
//	sprwl-bench -exp all -quick -parallel 8           # 8 points at a time
//	sprwl-bench -exp fig3 -csv fig3.csv               # machine-readable
//	sprwl-bench -exp all -quick -json bench.json      # JSON results
//	sprwl-bench -compare BENCH_baseline.json bench.json -threshold 5%
//	    # threshold-based regression diff of two -json files; exits 1 if
//	    # any matched point's throughput regressed beyond the threshold
//	sprwl-bench -mode real -algo SpRWL -threads 4     # library-plane point
//	sprwl-bench -trace out.json -algo SpRWL -threads 8
//	    # one hashmap point with the Chrome-trace sink attached; open
//	    # out.json in chrome://tracing or https://ui.perfetto.dev
//	sprwl-bench -trace out.json -waitprof             # plus wait/work table
//
// Simulated runs are deterministic: the same seed, flags and build produce
// identical output regardless of -parallel.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"sprwl/internal/harness"
	"sprwl/internal/htm"
	"sprwl/internal/obs"
	"sprwl/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp      = flag.String("exp", "fig3", "experiment to run: fig3|fig4|fig5|fig6|fig7|extscan|extauto|extvsgl|all, or readers|shards (wall-clock, not part of all)")
		profile  = flag.String("profile", "broadwell", "machine profile: broadwell|power8")
		quick    = flag.Bool("quick", false, "thin sweeps and shorten horizons (smoke run)")
		horizon  = flag.Uint64("horizon", 0, "virtual cycles per data point (0 = default)")
		seed     = flag.Uint64("seed", 1, "workload RNG seed")
		parallel = flag.Int("parallel", 0, "data points measured concurrently (0 = GOMAXPROCS); output is identical for any value")
		csvPath  = flag.String("csv", "", "also write results as CSV to this file")
		jsonPath = flag.String("json", "", "also write results as JSON to this file")
		verbose  = flag.Bool("v", false, "print each data point as it completes")

		comparePath = flag.String("compare", "", "regression-diff this baseline -json file against the one named by the first positional argument, then exit")
		threshold   = flag.String("threshold", "5%", "with -compare: relative throughput loss that counts as a regression")

		mode    = flag.String("mode", "sim", "sim (discrete-event figures) or real (library plane)")
		algo    = flag.String("algo", harness.AlgoSpRWL, "real/trace mode: algorithm ("+strings.Join(harness.AllAlgorithms(), "|")+")")
		threads = flag.Int("threads", 2, "real/trace mode: worker goroutines")
		millis  = flag.Uint64("millis", 200, "real mode: wall-clock run length")

		tracePath = flag.String("trace", "", "run one hashmap point with a Chrome-trace sink and write the catapult JSON here")
		waitprof  = flag.Bool("waitprof", false, "with -trace: also print the wait-vs-work profile table")
	)
	flag.Parse()

	if *comparePath != "" {
		// Usage: sprwl-bench -compare old.json new.json [-threshold 5%].
		// Flag parsing stops at the first positional argument, so accept
		// -threshold after the new-file operand too.
		if flag.NArg() < 1 {
			return errors.New("-compare needs the new -json file as a positional argument")
		}
		sub := flag.NewFlagSet("compare", flag.ContinueOnError)
		trailingThreshold := sub.String("threshold", *threshold, "relative throughput loss that counts as a regression")
		if err := sub.Parse(flag.Args()[1:]); err != nil {
			return err
		}
		if sub.NArg() != 0 {
			return fmt.Errorf("-compare takes exactly two files, got extra arguments %q", sub.Args())
		}
		return runCompare(*comparePath, flag.Arg(0), *trailingThreshold)
	}

	p, err := profileByName(*profile)
	if err != nil {
		return err
	}

	if *tracePath != "" {
		return runTrace(*tracePath, *waitprof, *mode, *algo, *threads, p, *horizon, *seed, *millis)
	}

	if *mode == "real" {
		wl := workload.HashmapConfig{Buckets: 256, Items: 16384, LookupsPerRead: 10, UpdatePercent: 10}
		pt, err := harness.RunHashmapReal(*algo, *threads, p, wl, *millis*1_000_000, *seed)
		if err != nil {
			return err
		}
		fmt.Println(pt)
		return nil
	}

	opts := harness.RunOpts{Profile: p, Horizon: *horizon, Quick: *quick, Seed: *seed, Parallel: *parallel}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	if *exp == "readers" || *exp == "shards" {
		// Wall-clock sweeps on the real runtime: machine-dependent, so
		// they are not part of -exp all or the -compare regression gate.
		sweep := harness.ReadersSweep
		if *exp == "shards" {
			sweep = harness.ShardsSweep
		}
		rep, err := sweep(opts)
		if err != nil {
			return err
		}
		rep.Format(os.Stdout)
		if *csvPath != "" {
			f, err := os.Create(*csvPath)
			if err != nil {
				return err
			}
			defer f.Close()
			rep.CSV(f)
		}
		if *jsonPath != "" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				return err
			}
			defer f.Close()
			return harness.WriteJSON(f, []*harness.Report{rep})
		}
		return nil
	}

	experiments := harness.Experiments()
	var ids []string
	if *exp == "all" {
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		if _, ok := experiments[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q (want fig3..fig7, readers, shards, or all)", *exp)
		}
		ids = []string{*exp}
	}

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer csv.Close()
	}

	var reports []*harness.Report
	for _, id := range ids {
		rep, err := experiments[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		rep.Format(os.Stdout)
		fmt.Println()
		if csv != nil {
			rep.CSV(csv)
		}
		reports = append(reports, rep)
	}
	if *jsonPath != "" {
		f, err := os.Create(*jsonPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := harness.WriteJSON(f, reports); err != nil {
			return err
		}
	}
	return nil
}

// runTrace executes one hashmap data point with the Chrome-trace exporter
// (and optionally the wait/work profiler) attached, writing the catapult
// file to path. Simulated by default; -mode real traces the concurrent
// runtime instead.
func runTrace(path string, waitprof bool, mode, algo string, threads int, p htm.Profile, horizon, seed, millis uint64) error {
	tr := obs.NewTraceSink(threads)
	sinks := []obs.Sink{tr}
	var prof *obs.ProfileSink
	if waitprof {
		prof = obs.NewProfileSink(threads)
		sinks = append(sinks, prof)
	}

	wl := workload.HashmapConfig{Buckets: 256, Items: 16384, LookupsPerRead: 10, UpdatePercent: 10}
	var pt harness.Point
	var err error
	if mode == "real" {
		pt, err = harness.RunHashmapReal(algo, threads, p, wl, millis*1_000_000, seed, sinks...)
	} else {
		pt, err = harness.RunHashmapPoint(harness.HashmapPointConfig{
			Algo: algo, Threads: threads, Profile: p,
			Workload: wl, Horizon: horizon, Seed: seed, Sinks: sinks,
		})
	}
	if err != nil {
		return err
	}
	fmt.Println(pt)

	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	n, err := tr.WriteTo(f)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %d bytes to %s\n", n, path)
	if prof != nil {
		fmt.Print(prof.String())
	}
	return nil
}

// runCompare regression-diffs two -json report files and exits non-zero on
// any throughput regression beyond the threshold.
func runCompare(oldPath, newPath, thresholdSpec string) error {
	th, err := parseThreshold(thresholdSpec)
	if err != nil {
		return err
	}
	readReports := func(path string) ([]*harness.Report, error) {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		reports, err := harness.ReadJSON(f)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return reports, nil
	}
	oldReports, err := readReports(oldPath)
	if err != nil {
		return err
	}
	newReports, err := readReports(newPath)
	if err != nil {
		return err
	}
	cmp := harness.CompareReports(oldReports, newReports, th)
	cmp.Format(os.Stdout)
	if !cmp.OK() {
		return fmt.Errorf("%d point(s) regressed beyond %.1f%% (%s -> %s)", len(cmp.Regressions), 100*th, oldPath, newPath)
	}
	return nil
}

// parseThreshold accepts "5%", "5", or "0.05"-style fractions below 1.
func parseThreshold(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		return 0, fmt.Errorf("bad -threshold %q: %w", s, err)
	}
	if pct || v >= 1 {
		v /= 100
	}
	if v < 0 || v >= 1 {
		return 0, fmt.Errorf("bad -threshold %q: want a percentage in [0,100)", s)
	}
	return v, nil
}

func profileByName(name string) (htm.Profile, error) {
	switch name {
	case "broadwell":
		return htm.Broadwell(), nil
	case "power8":
		return htm.Power8(), nil
	default:
		return htm.Profile{}, fmt.Errorf("unknown profile %q (want broadwell or power8)", name)
	}
}
