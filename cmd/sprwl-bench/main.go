// Command sprwl-bench regenerates the paper's evaluation figures (see
// DESIGN.md §4 for the experiment index).
//
// Usage:
//
//	sprwl-bench -exp fig3 -profile broadwell          # one figure
//	sprwl-bench -exp all -profile power8 -quick       # smoke sweep
//	sprwl-bench -exp fig3 -csv fig3.csv               # machine-readable
//	sprwl-bench -mode real -algo SpRWL -threads 4     # library-plane point
//
// Simulated runs are deterministic: the same seed, flags and build produce
// identical output.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"sprwl/internal/harness"
	"sprwl/internal/htm"
	"sprwl/internal/workload"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sprwl-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		exp     = flag.String("exp", "fig3", "experiment to run: fig3|fig4|fig5|fig6|fig7|extscan|extauto|extvsgl|all")
		profile = flag.String("profile", "broadwell", "machine profile: broadwell|power8")
		quick   = flag.Bool("quick", false, "thin sweeps and shorten horizons (smoke run)")
		horizon = flag.Uint64("horizon", 0, "virtual cycles per data point (0 = default)")
		seed    = flag.Uint64("seed", 1, "workload RNG seed")
		csvPath = flag.String("csv", "", "also write results as CSV to this file")
		verbose = flag.Bool("v", false, "print each data point as it completes")

		mode    = flag.String("mode", "sim", "sim (discrete-event figures) or real (library plane)")
		algo    = flag.String("algo", harness.AlgoSpRWL, "real mode: algorithm ("+strings.Join(harness.AllAlgorithms(), "|")+")")
		threads = flag.Int("threads", 2, "real mode: worker goroutines")
		millis  = flag.Uint64("millis", 200, "real mode: wall-clock run length")
	)
	flag.Parse()

	p, err := profileByName(*profile)
	if err != nil {
		return err
	}

	if *mode == "real" {
		wl := workload.HashmapConfig{Buckets: 256, Items: 16384, LookupsPerRead: 10, UpdatePercent: 10}
		pt, err := harness.RunHashmapReal(*algo, *threads, p, wl, *millis*1_000_000, *seed)
		if err != nil {
			return err
		}
		fmt.Println(pt)
		return nil
	}

	opts := harness.RunOpts{Profile: p, Horizon: *horizon, Quick: *quick, Seed: *seed}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	experiments := harness.Experiments()
	var ids []string
	if *exp == "all" {
		for id := range experiments {
			ids = append(ids, id)
		}
		sort.Strings(ids)
	} else {
		if _, ok := experiments[*exp]; !ok {
			return fmt.Errorf("unknown experiment %q (want fig3..fig7 or all)", *exp)
		}
		ids = []string{*exp}
	}

	var csv *os.File
	if *csvPath != "" {
		csv, err = os.Create(*csvPath)
		if err != nil {
			return err
		}
		defer csv.Close()
	}

	for _, id := range ids {
		rep, err := experiments[id](opts)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		rep.Format(os.Stdout)
		fmt.Println()
		if csv != nil {
			rep.CSV(csv)
		}
	}
	return nil
}

func profileByName(name string) (htm.Profile, error) {
	switch name {
	case "broadwell":
		return htm.Broadwell(), nil
	case "power8":
		return htm.Power8(), nil
	default:
		return htm.Profile{}, fmt.Errorf("unknown profile %q (want broadwell or power8)", name)
	}
}
