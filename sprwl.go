// Package sprwl is a Go reproduction of SpRWL — the Speculative Read-Write
// Lock of Issa, Romano and Lopes (Middleware '18) — together with the
// hardware-transactional-memory emulation it runs on and every baseline the
// paper evaluates.
//
// A SpRWL lock protects data living in a simulated word-addressable address
// space. Writers execute as best-effort (emulated) hardware transactions
// with a global-lock fallback; readers execute uninstrumented and are
// therefore immune to transactional capacity limits — the paper's key idea.
// Critical sections are closures over an Accessor:
//
//	l, _ := sprwl.New(sprwl.Config{Threads: 4, Words: 1 << 16})
//	data := l.Arena().AllocLines(1)
//	h := l.Handle(0) // one handle per worker goroutine
//	h.Write(0, func(m sprwl.Accessor) { m.Store(data, 42) })
//	h.Read(1, func(m sprwl.Accessor) { _ = m.Load(data) })
//
// Because transactional bodies re-execute on abort, a body must be
// idempotent apart from its Accessor stores: draw inputs before entering
// and write results only through the accessor.
//
// The full design — emulation semantics, scheduling heuristics, baselines,
// and the per-figure benchmark harness — is documented in DESIGN.md.
package sprwl

import (
	"fmt"

	"sprwl/internal/core"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
	"sprwl/internal/stats"
)

// Public aliases for the shared-memory vocabulary, so downstream code can
// name every type the API exchanges.
type (
	// Addr indexes a 64-bit word of a lock's simulated address space.
	Addr = memmodel.Addr
	// Accessor is the data-plane view a critical-section body receives.
	Accessor = memmodel.Accessor
	// Arena hands out line-aligned regions of the address space.
	Arena = memmodel.Arena
	// Options selects SpRWL's scheduling schemes and optimizations
	// (§3.2–§3.4 of the paper); see DefaultOptions.
	Options = core.Options
	// Snapshot is a merged statistics view (commit modes, abort causes,
	// latencies).
	Snapshot = stats.Snapshot
	// Profile describes an emulated machine (capacities, SMT topology).
	Profile = htm.Profile
)

// Re-exported option presets (the paper's named variants).
var (
	DefaultOptions  = core.DefaultOptions
	NoSchedOptions  = core.NoSchedOptions
	RWaitOptions    = core.RWaitOptions
	RSyncOptions    = core.RSyncOptions
	SNZIOptions     = core.SNZIOptions
	BravoOptions    = core.BravoOptions
	AutoSNZIOptions = core.AutoSNZIOptions

	// Broadwell and Power8 are the paper's two evaluation machines.
	Broadwell = htm.Broadwell
	Power8    = htm.Power8
)

// Config sizes a Lock and its address space.
type Config struct {
	// Threads is the number of worker slots (1..64). Each concurrent
	// worker goroutine needs its own slot and Handle.
	Threads int

	// Words is the simulated address-space size in 64-bit words. It
	// must cover the lock's own state (see MinWords) plus whatever the
	// application allocates from Arena.
	Words int

	// NumCS is how many distinct critical-section IDs the duration
	// estimator tracks; 0 defaults to 16.
	NumCS int

	// Machine selects the emulated HTM's capacity profile. The zero
	// value means "unlimited capacity"; use Broadwell() or Power8() for
	// the paper's machines.
	Machine Profile

	// Options selects the algorithm variant; the zero value is upgraded
	// to DefaultOptions (full SpRWL).
	Options Options
}

// MinWords returns the address-space words the lock itself needs for a
// given thread count under the default options; Config.Words must be at
// least this plus application data. Configurations with a BRAVO table
// (BravoOptions, AutoSNZIOptions) need MinWordsFor.
func MinWords(threads int) int { return core.Words(threads) + 2*memmodel.LineWords }

// MinWordsFor is MinWords for an explicit option set, accounting for the
// BRAVO visible-readers table when the options call for one.
func MinWordsFor(threads int, opts Options) int {
	return core.WordsFor(threads, opts) + 2*memmodel.LineWords
}

// Lock is a SpRWL instance bound to its own simulated address space.
type Lock struct {
	space *htm.Space
	rt    *htm.Runtime
	arena *memmodel.Arena
	col   *stats.Collector
	lock  *core.Lock
	cfg   Config
}

// New builds a lock and its address space.
func New(cfg Config) (*Lock, error) {
	if cfg.NumCS <= 0 {
		cfg.NumCS = 16
	}
	if (cfg.Options == Options{}) {
		cfg.Options = DefaultOptions()
	}
	if min := MinWordsFor(cfg.Threads, cfg.Options); cfg.Words < min {
		return nil, fmt.Errorf("sprwl: Words = %d is below MinWordsFor(%d) = %d", cfg.Words, cfg.Threads, min)
	}
	rCap, wCap := 0, 0
	if cfg.Machine.Name != "" {
		rCap, wCap = cfg.Machine.EffectiveCapacity(cfg.Threads)
	}
	space, err := htm.NewSpace(htm.Config{
		Threads:            cfg.Threads,
		Words:              cfg.Words,
		ReadCapacityLines:  rCap,
		WriteCapacityLines: wCap,
	})
	if err != nil {
		return nil, fmt.Errorf("sprwl: %w", err)
	}
	rt := htm.NewRuntime(space, nil)
	arena := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(cfg.Threads)
	l, err := core.New(rt, arena, cfg.Threads, cfg.NumCS, cfg.Options, col.Pipeline())
	if err != nil {
		return nil, fmt.Errorf("sprwl: %w", err)
	}
	return &Lock{space: space, rt: rt, arena: arena, col: col, lock: l, cfg: cfg}, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(cfg Config) *Lock {
	l, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return l
}

// Arena returns the allocator for the lock's address space. Carve
// application data out of it before (or between) critical sections.
func (l *Lock) Arena() *Arena { return l.arena }

// Provision returns a direct, uninstrumented view of the address space for
// populating data structures before concurrent work starts.
func (l *Lock) Provision() memmodel.Space { return l.space }

// Handle returns the critical-section endpoint for a worker slot. A Handle
// must only be used by one goroutine at a time.
func (l *Lock) Handle(slot int) Handle {
	return Handle{h: l.lock.NewHandle(slot)}
}

// DynamicHandle returns an endpoint for a worker that has no preassigned
// slot — goroutines may come and go beyond Config.Threads. Dynamic readers
// register through a slot-free indicator (BRAVO or SNZI), so the options
// must select one: UseBravo, UseSNZI or AutoSNZI. Dynamic writers always
// take the pessimistic fallback path.
func (l *Lock) DynamicHandle() (Handle, error) {
	h, err := l.lock.NewDynamicHandle()
	if err != nil {
		return Handle{}, fmt.Errorf("sprwl: %w", err)
	}
	return Handle{h: h}, nil
}

// Stats returns a merged snapshot of commit modes, abort causes and
// latencies recorded so far.
func (l *Lock) Stats() Snapshot { return l.col.Snapshot() }

// Name reports the configured algorithm variant.
func (l *Lock) Name() string { return l.lock.Name() }

// Handle is one worker's endpoint to the lock.
type Handle struct {
	h rwlock.Handle
}

// Read executes body as a read-only critical section. csID identifies the
// static critical section for the paper's duration-estimation heuristics;
// use a distinct small integer per call site.
func (h Handle) Read(csID int, body func(Accessor)) {
	// Accessor aliases memmodel.Accessor, so body converts without a
	// wrapper closure (which would allocate per section).
	h.h.Read(csID, body)
}

// Write executes body as an updating critical section. The body may run
// several times (transactional retry): it must be idempotent apart from its
// Accessor stores.
func (h Handle) Write(csID int, body func(Accessor)) {
	h.h.Write(csID, body)
}
