// Package doomedread is the static shadow of validated lazy subscription
// (DESIGN.md §8, paper §3.3): inside a hardware transaction that elides the
// global fallback lock, a value returned by tx.Load may be inconsistent
// until the transaction has subscribed to the lock — loaded the lock word
// (or the glVer version word) and aborted if it is held. Acting on such a
// value before subscription is the classic lazy-subscription hazard: a
// doomed transaction can take an impossible branch, index out of bounds, or
// compute a wild address, with effects the eventual abort does not undo
// (infinite loops, panics in the Go-level harness).
//
// The analyzer finds transaction entry points — function values passed as
// the last argument of a call named Attempt, resolved through the
// function-value call graph (inline literals, locals, and the core
// handle's txRead/txWrite fields) — and, per entry, solves a must-forward
// "subscribed" fact over the CFG. A subscription is a tx.Load whose address
// operand originates from a zero-argument Addr() method call (the spin-lock
// address accessors) or names the glVer version word; origins are resolved
// through intraprocedural reaching definitions, falling back to a
// package-wide assignment index for addresses captured from the enclosing
// function (glAddr := l.gl.Addr() in tle/rwle/core). Every other tx.Load is
// a taint source. At each point where the fact does not yet hold on every
// path, four uses are reported:
//
//   - R1: a branch condition (the final expression of a multi-successor
//     block, including switch tags and ranged containers) mentioning a
//     tainted value;
//   - R2: an index expression whose index is tainted;
//   - R3: a tx.Load/tx.Store whose address operand is tainted (address
//     arithmetic on a doomed value);
//   - R4: any call that passes the transaction accessor onward (except the
//     accessor's own methods) — the callee may do all of the above out of
//     this function's sight, so the subscription must already be
//     established at the call.
//
// Taint propagates through reaching definitions (compound assignments
// preserve prior definitions, so x += tx.Load(a) stays tainted) but not
// through calls or function-literal boundaries: a literal passed to
// tx.Suspend is the suspended section, which runs with the transaction
// already validated. Helper methods that merely receive tx are not
// analyzed as entries; rule R4 at their call sites covers them soundly.
package doomedread

import (
	"go/ast"
	"go/types"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/callgraph"
	"sprwl/internal/analysis/cfg"
	"sprwl/internal/analysis/dataflow"
	"sprwl/internal/analysis/driver"
)

// Analyzer is the doomedread check.
var Analyzer = &driver.Analyzer{
	Name: "doomedread",
	Doc:  "require fallback-lock subscription before transactional loads feed branches, indexes, addresses, or escaping calls (validated lazy subscription)",
	Run:  run,
}

// scoped names the packages that elide the fallback lock in hardware
// transactions; fixtures mirror one of these names.
var scoped = map[string]bool{"core": true, "tle": true, "rwle": true}

const bitSubscribed = 0

func run(pass *driver.Pass) error {
	if !scoped[pass.Pkg.Name] {
		return nil
	}
	cg := callgraph.Build(pass.Prog, []*driver.Package{pass.Pkg})
	addrDefs := collectAddrDefs(pass.Pkg)

	seen := make(map[*ast.BlockStmt]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || astq.CalleeName(call) != "Attempt" || len(call.Args) == 0 {
				return true
			}
			// The transaction body is by convention the last argument; an
			// incomplete resolution (a body that could be anything) is
			// skipped rather than guessed at.
			callees, complete := cg.ValuesOf(pass.Pkg.Info, call.Args[len(call.Args)-1])
			if !complete {
				return true
			}
			for _, c := range callees {
				body, pkg := cg.SourceOf(c)
				if pkg == nil {
					pkg = pass.Pkg
				}
				if body == nil || seen[body] {
					continue
				}
				seen[body] = true
				checkEntry(pass, pkg, c, body, addrDefs)
			}
			return true
		})
	}
	return nil
}

// txParam extracts the accessor parameter (the entry's first parameter).
func txParam(info *types.Info, c callgraph.Callee) *types.Var {
	var t types.Type
	if c.Func != nil {
		t = c.Func.Type()
	} else if c.Lit != nil {
		t = astq.TypeOf(info, c.Lit)
	}
	sig, ok := t.(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return nil
	}
	return sig.Params().At(0)
}

type checker struct {
	pass     *driver.Pass
	info     *types.Info
	tx       *types.Var
	g        *cfg.Graph
	rd       *dataflow.ReachDefs
	nodeBlk  map[ast.Node]*cfg.Block
	addrDefs map[*types.Var][]ast.Expr
	sources  map[ast.Node]bool // tx.Load of a non-lock address
	subs     map[ast.Node]bool // tx.Load of a lock address (subscription)
	tainted  map[*dataflow.Def]bool
}

func checkEntry(pass *driver.Pass, pkg *driver.Package, ce callgraph.Callee, body *ast.BlockStmt, addrDefs map[*types.Var][]ast.Expr) {
	tx := txParam(pkg.Info, ce)
	if tx == nil {
		return
	}
	c := &checker{
		pass:     pass,
		info:     pkg.Info,
		tx:       tx,
		addrDefs: addrDefs,
		nodeBlk:  make(map[ast.Node]*cfg.Block),
		sources:  make(map[ast.Node]bool),
		subs:     make(map[ast.Node]bool),
		tainted:  make(map[*dataflow.Def]bool),
	}
	c.g = cfg.New(body, cfg.Options{
		Info: pkg.Info,
		NoReturn: func(call *ast.CallExpr) bool {
			return astq.CalleeName(call) == "Abort"
		},
	})
	c.rd = dataflow.NewReachDefs(c.g, pkg.Info)

	for _, b := range c.g.Blocks {
		for _, n := range b.Nodes {
			blk := b
			cfg.Walk(n, b.Deferred, func(m ast.Node, _ bool) bool {
				if _, ok := c.nodeBlk[m]; !ok {
					c.nodeBlk[m] = blk
				}
				return true
			})
		}
	}

	// Classify every tx.Load as subscription or source.
	for m, b := range c.nodeBlk {
		call, ok := m.(*ast.CallExpr)
		if !ok || !c.isTxCall(call, "Load", 1) {
			continue
		}
		if c.isLockAddr(call.Args[0], b, m, 0) {
			c.subs[m] = true
		} else {
			c.sources[m] = true
		}
	}

	c.solveTaint()
	c.report()
}

// isTxCall reports whether call is tx.<name> with nargs arguments.
func (c *checker) isTxCall(call *ast.CallExpr, name string, nargs int) bool {
	if astq.CalleeName(call) != name || len(call.Args) != nargs {
		return false
	}
	return c.isTxMethod(call)
}

// isTxMethod reports whether call is a method call on the accessor itself.
func (c *checker) isTxMethod(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return astq.RootVar(c.info, sel.X) == c.tx
}

// isLockAddr reports whether e denotes a fallback-lock address: an Addr()
// accessor call or the glVer word, directly or through definitions. A
// variable with no definitions inside the entry is a capture or parameter;
// it qualifies when every assignment to it anywhere in the package is an
// Addr() call (the glAddr := l.gl.Addr() idiom in the enclosing function).
func (c *checker) isLockAddr(e ast.Expr, b *cfg.Block, probe ast.Node, depth int) bool {
	if depth > 8 {
		return false
	}
	if isAddrExpr(e) {
		return true
	}
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if x.Name == "glVer" {
			return true
		}
		v, _ := c.info.Uses[x].(*types.Var)
		if v == nil {
			return false
		}
		idxs := c.rd.ByVar[v]
		if len(idxs) == 0 {
			rhss, ok := c.addrDefs[v]
			if !ok || len(rhss) == 0 {
				return false
			}
			for _, r := range rhss {
				if r == nil || !isAddrExpr(r) {
					return false
				}
			}
			return true
		}
		reach := c.rd.At(b, probe)
		any := false
		for _, i := range idxs {
			if !reach.Has(i) {
				continue
			}
			d := c.rd.Defs[i]
			db := c.nodeBlk[d.Site]
			if d.RHS == nil || db == nil || !c.isLockAddr(d.RHS, db, d.Site, depth+1) {
				return false
			}
			any = true
		}
		return any
	}
	return false
}

// isAddrExpr is the syntactic lock-address test used where no dataflow
// context is available (package-wide assignments in other functions).
func isAddrExpr(e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return astq.CalleeName(x) == "Addr" && len(x.Args) == 0
	case *ast.SelectorExpr:
		return x.Sel.Name == "glVer"
	}
	return false
}

// solveTaint marks definitions whose right-hand side carries a tx.Load
// result, to fixpoint so taint chains through intermediate variables.
func (c *checker) solveTaint() {
	for changed := true; changed; {
		changed = false
		for _, d := range c.rd.Defs {
			if c.tainted[d] || d.RHS == nil {
				continue
			}
			b := c.nodeBlk[d.Site]
			if b == nil {
				continue
			}
			if c.taintedExpr(d.RHS, b, d.Site) {
				c.tainted[d] = true
				changed = true
			}
		}
	}
}

// taintedExpr reports whether e mentions a doomed value at probe: a source
// tx.Load directly, or a variable one of whose reaching definitions is
// tainted. Function literals are opaque (consistent with cfg.Walk).
func (c *checker) taintedExpr(e ast.Expr, b *cfg.Block, probe ast.Node) bool {
	reach := c.rd.At(b, probe)
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if c.sources[x] {
				found = true
				return false
			}
		case *ast.Ident:
			v, _ := c.info.Uses[x].(*types.Var)
			if v == nil {
				return true
			}
			for _, i := range c.rd.ByVar[v] {
				if reach.Has(i) && c.tainted[c.rd.Defs[i]] {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

func (c *checker) report() {
	flow := &dataflow.Flow{
		Graph: c.g, N: 1, Mode: dataflow.MustForward,
		Events: func(n ast.Node, _ bool) (gen, kill []int) {
			if c.subs[n] {
				gen = append(gen, bitSubscribed)
			}
			return gen, nil
		},
	}
	facts := flow.Solve()

	// A branch condition is the final expression of a multi-successor
	// block (if/for conditions, short-circuit operands, switch tags in
	// final position) or the container of a range head.
	condNodes := make(map[ast.Node]bool)
	for _, b := range c.g.Blocks {
		if len(b.Succs) >= 2 && len(b.Nodes) > 0 {
			condNodes[b.Nodes[len(b.Nodes)-1]] = true
		}
	}

	for _, b := range c.g.Blocks {
		blk := b
		flow.ReplayForward(b, facts.In[b], func(n ast.Node, _ bool, before dataflow.Bits) {
			if before.Has(bitSubscribed) {
				return
			}
			if condNodes[n] {
				var probe ast.Expr
				if r, ok := n.(*ast.RangeStmt); ok {
					probe = r.X
				} else if e, ok := n.(ast.Expr); ok {
					probe = e
				}
				if probe != nil && c.taintedExpr(probe, blk, n) {
					c.pass.Reportf(n.Pos(), "doomed read: branch depends on a transactional load with no prior fallback-lock subscription on every path; a doomed transaction can take an impossible branch")
					return
				}
			}
			switch x := n.(type) {
			case *ast.IndexExpr:
				if c.taintedExpr(x.Index, blk, n) {
					c.pass.Reportf(n.Pos(), "doomed read: index derived from a transactional load with no prior fallback-lock subscription on every path")
				}
			case *ast.CallExpr:
				if c.isTxCall(x, "Load", 1) || c.isTxCall(x, "Store", 2) {
					if c.taintedExpr(x.Args[0], blk, n) {
						c.pass.Reportf(n.Pos(), "doomed read: transactional access at an address derived from a transactional load with no prior fallback-lock subscription on every path")
					}
				} else if !c.isTxMethod(x) {
					for _, a := range x.Args {
						id, ok := ast.Unparen(a).(*ast.Ident)
						if !ok {
							continue
						}
						if v, _ := c.info.Uses[id].(*types.Var); v == c.tx {
							c.pass.Reportf(x.Pos(), "doomed read: the transaction accessor escapes to %s with no prior fallback-lock subscription on every path; the callee may act on doomed values out of sight", astq.CalleeName(x))
							break
						}
					}
				}
			}
		})
	}
}

// collectAddrDefs indexes every single-valued assignment to an identifier
// across the package. A nil entry poisons the variable (multi-value
// assignment, inc/dec, range binding: origin unknown).
func collectAddrDefs(pkg *driver.Package) map[*types.Var][]ast.Expr {
	out := make(map[*types.Var][]ast.Expr)
	add := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		v, ok := pkg.Info.Defs[id].(*types.Var)
		if !ok {
			v, _ = pkg.Info.Uses[id].(*types.Var)
		}
		if v != nil {
			out[v] = append(out[v], rhs)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range s.Lhs {
					if len(s.Lhs) == len(s.Rhs) {
						add(lhs, s.Rhs[i])
					} else {
						add(lhs, nil)
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if len(s.Values) == len(s.Names) {
						add(name, s.Values[i])
					} else if len(s.Values) != 0 {
						add(name, nil)
					}
				}
			case *ast.IncDecStmt:
				add(s.X, nil)
			case *ast.RangeStmt:
				if s.Key != nil {
					add(s.Key, nil)
				}
				if s.Value != nil {
					add(s.Value, nil)
				}
			}
			return true
		})
	}
	return out
}
