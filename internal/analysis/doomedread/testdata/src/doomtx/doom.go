// Package core mirrors the transaction-attempt shape shared by the elision
// baselines (tle, rwle) and the core handle closures, so the doomedread
// analyzer's entry discovery, lock-address origin tracking, and taint
// propagation can be exercised on reduced functions. As with the fence
// fixtures, every bad* function is clean in source order — the hazard only
// exists on some CFG path — and the analyzer gates on the package name.
package core

import "sprwl/internal/memmodel"

type txT struct{}

func (txT) Load(a memmodel.Addr) uint64     { return 0 }
func (txT) Store(a memmodel.Addr, v uint64) {}
func (txT) Abort(code int)                  {}

type envT struct{}

func (envT) Attempt(slot int, body func(tx txT)) int { return 0 }

type spin struct{}

func (spin) Addr() memmodel.Addr { return 0 }

type lock struct {
	e  envT
	gl spin
}

func helper(tx txT, a memmodel.Addr) {}

// badConditionalSubscribe subscribes only on the fast path; the other path
// branches on a doomed load (R1). In source order the subscription comes
// first, so only the CFG sees the gap.
func (l *lock) badConditionalSubscribe(slot int, fast bool, data memmodel.Addr) {
	glAddr := l.gl.Addr()
	l.e.Attempt(slot, func(tx txT) {
		if fast {
			if tx.Load(glAddr) != 0 {
				tx.Abort(1)
			}
		}
		v := tx.Load(data)
		if v > 10 { // want `branch depends on a transactional load`
			tx.Store(data, v)
		}
	})
}

// goodSubscribeFirst is the canonical elision shape: subscribe, abort if
// held, then use loaded values freely.
func (l *lock) goodSubscribeFirst(slot int, data memmodel.Addr) {
	glAddr := l.gl.Addr()
	l.e.Attempt(slot, func(tx txT) {
		if tx.Load(glAddr) != 0 {
			tx.Abort(1)
		}
		v := tx.Load(data)
		if v > 10 {
			tx.Store(data, v)
		}
	})
}

// badIndex derives an index from an unsubscribed load (R2); the taint
// flows through an intermediate variable and a compound update.
func (l *lock) badIndex(slot int, data memmodel.Addr, xs []uint64) {
	glAddr := l.gl.Addr()
	l.e.Attempt(slot, func(tx txT) {
		i := tx.Load(data)
		i += 1
		_ = xs[i] // want `index derived from a transactional load`
		if tx.Load(glAddr) != 0 {
			tx.Abort(1)
		}
	})
}

// badAddrArith computes a transactional address from an unsubscribed load
// (R3).
func (l *lock) badAddrArith(slot int, data memmodel.Addr) {
	l.e.Attempt(slot, func(tx txT) {
		off := tx.Load(data)
		_ = tx.Load(data + memmodel.Addr(off)) // want `address derived from a transactional load`
	})
}

// badEscape hands the accessor to a helper before subscribing (R4): the
// callee may branch on doomed loads out of this function's sight.
func (l *lock) badEscape(slot int, data memmodel.Addr) {
	glAddr := l.gl.Addr()
	l.e.Attempt(slot, func(tx txT) {
		helper(tx, data) // want `transaction accessor escapes to helper`
		if tx.Load(glAddr) != 0 {
			tx.Abort(1)
		}
	})
}

// goodEscapeAfterSubscribe mirrors tle's run closure: the captured glAddr
// subscription dominates the body invocation.
func (l *lock) goodEscapeAfterSubscribe(slot int, data memmodel.Addr) {
	glAddr := l.gl.Addr()
	l.e.Attempt(slot, func(tx txT) {
		if tx.Load(glAddr) != 0 {
			tx.Abort(1)
		}
		helper(tx, data)
	})
}

// goodPlainAccess never branches on a loaded value: straight loads and
// stores are tracked by the hardware and need no subscription order.
func (l *lock) goodPlainAccess(slot int, data memmodel.Addr) {
	l.e.Attempt(slot, func(tx txT) {
		v := tx.Load(data)
		tx.Store(data, v+1)
	})
}

type handle struct {
	l      *lock
	txRead func(tx txT)
}

// newHandle mirrors core.NewHandle: the entry is stored into a struct
// field here and passed to Attempt in another function; the call graph
// connects the two. The closure branches on a doomed load (R1).
func (l *lock) newHandle(data memmodel.Addr) *handle {
	h := &handle{l: l}
	h.txRead = func(tx txT) {
		v := tx.Load(data)
		if v == 0 { // want `branch depends on a transactional load`
			tx.Store(data, 1)
		}
	}
	return h
}

func (h *handle) run(slot int) {
	h.l.e.Attempt(slot, h.txRead)
}

// badLoopSubscribe subscribes at the bottom of the loop; the first
// iteration ranges over a doomed length (R1 on the loop condition).
func (l *lock) badLoopSubscribe(slot int, data memmodel.Addr) {
	glAddr := l.gl.Addr()
	l.e.Attempt(slot, func(tx txT) {
		n := tx.Load(data)
		for i := uint64(0); i < n; i++ { // want `branch depends on a transactional load`
			tx.Store(data+memmodel.Addr(1), i)
		}
		if tx.Load(glAddr) != 0 {
			tx.Abort(1)
		}
	})
}

// allowedEscape is a deliberate, justified exception.
func (l *lock) allowedEscape(slot int, data memmodel.Addr) {
	l.e.Attempt(slot, func(tx txT) {
		//sprwl:allow(doomedread) fixture: deliberate exception for a pre-validated helper
		helper(tx, data)
	})
}
