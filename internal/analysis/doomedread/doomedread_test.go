package doomedread_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/doomedread"
)

func TestDoomedRead(t *testing.T) {
	analysistest.Run(t, "testdata", doomedread.Analyzer, "doomtx")
}
