package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"sprwl/internal/analysis/astq"
)

// CapturedAliases computes a conservative map from each variable assigned
// inside lit to the set of CAPTURED variables whose storage it may alias.
// It is a flow-insensitive may-alias lattice: for every assignment
// v = rhs, v inherits the alias sets of every variable whose storage rhs
// can reference (address-taken operands, and reference-typed access paths
// — pointers, slices, maps, channels, funcs, interfaces — rooted at a
// variable), iterated to fixpoint. Values that pass through calls are NOT
// tracked; a helper that launders a captured pointer through a function
// result defeats this analysis, which is why analyzers pair it with the
// call graph's transitive side-effect checks.
func CapturedAliases(info *types.Info, lit *ast.FuncLit) map[*types.Var]map[*types.Var]bool {
	// edges[v] = vars whose storage v may share, gathered syntactically.
	edges := make(map[*types.Var]map[*types.Var]bool)
	addEdge := func(v, r *types.Var) {
		if v == nil || r == nil || v == r {
			return
		}
		if edges[v] == nil {
			edges[v] = make(map[*types.Var]bool)
		}
		edges[v][r] = true
	}
	bind := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v := varObj(info, id)
		if v == nil {
			return
		}
		for _, r := range refRoots(info, rhs) {
			addEdge(v, r)
		}
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range s.Lhs {
				if i < len(s.Rhs) && len(s.Lhs) == len(s.Rhs) {
					bind(lhs, s.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range s.Names {
				if i < len(s.Values) && len(s.Names) == len(s.Values) {
					bind(name, s.Values[i])
				}
			}
		}
		return true
	})

	// Fixpoint: aliases[v] = union over edge targets r of ({r} if captured)
	// ∪ aliases[r].
	aliases := make(map[*types.Var]map[*types.Var]bool)
	record := func(v, c *types.Var) bool {
		if aliases[v] == nil {
			aliases[v] = make(map[*types.Var]bool)
		}
		if aliases[v][c] {
			return false
		}
		aliases[v][c] = true
		return true
	}
	for changed := true; changed; {
		changed = false
		for v, rs := range edges {
			for r := range rs {
				if astq.CapturedBy(r, lit) && record(v, r) {
					changed = true
				}
				for c := range aliases[r] {
					if record(v, c) {
						changed = true
					}
				}
			}
		}
	}
	return aliases
}

// refRoots returns the variables whose storage rhs may reference: the root
// of every address-taken operand and of every reference-typed access path.
func refRoots(info *types.Info, rhs ast.Expr) []*types.Var {
	var roots []*types.Var
	seen := make(map[*types.Var]bool)
	add := func(v *types.Var) {
		if v != nil && !seen[v] {
			seen[v] = true
			roots = append(roots, v)
		}
	}
	ast.Inspect(rhs, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			// Call results are not tracked (see CapturedAliases doc);
			// arguments do not flow into the assigned value directly.
			return false
		case *ast.FuncLit:
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				add(astq.RootVar(info, x.X))
			}
		case ast.Expr:
			if t := astq.TypeOf(info, x); t != nil && refLike(t) {
				add(astq.RootVar(info, x))
			}
		}
		return true
	})
	return roots
}

// refLike reports whether values of t can reference shared storage.
func refLike(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan,
		*types.Signature, *types.Interface:
		return true
	case *types.Basic:
		return u.Kind() == types.UnsafePointer
	}
	return false
}

func varObj(info *types.Info, id *ast.Ident) *types.Var {
	if v, ok := info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
