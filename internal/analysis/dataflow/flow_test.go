package dataflow

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"sprwl/internal/analysis/cfg"
)

func TestBits(t *testing.T) {
	b := NewBits(70)
	b.Set(0)
	b.Set(65)
	if !b.Has(0) || !b.Has(65) || b.Has(64) {
		t.Fatal("set/has broken")
	}
	if b.Count() != 2 {
		t.Fatalf("count = %d", b.Count())
	}
	b.Clear(65)
	if b.Has(65) {
		t.Fatal("clear broken")
	}
	top := NewBits(70)
	top.Fill(70)
	if top.Count() != 70 {
		t.Fatalf("fill count = %d", top.Count())
	}
	var got []int
	b.Set(3)
	b.ForEach(func(i int) { got = append(got, i) })
	if len(got) != 2 || got[0] != 0 || got[1] != 3 {
		t.Fatalf("foreach = %v", got)
	}
	c := b.Clone()
	if !c.Equal(b) {
		t.Fatal("clone/equal broken")
	}
	c.Or(top)
	if c.Count() != 70 {
		t.Fatal("or broken")
	}
	c.And(b)
	if !c.Equal(b) {
		t.Fatal("and broken")
	}
}

// buildCFG parses a body and returns its graph plus the fileset.
func buildCFG(t *testing.T, body string) *cfg.Graph {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return cfg.New(fn.Body, cfg.Options{})
}

// eventFlow builds a Flow whose universe is the given call names: calling
// genN generates event N's bit, killN kills it.
func eventFlow(g *cfg.Graph, mode Mode, names []string) *Flow {
	idx := make(map[string]int, len(names))
	for i, n := range names {
		idx[n] = i
	}
	return &Flow{
		Graph: g,
		N:     len(names),
		Mode:  mode,
		Events: func(n ast.Node, _ bool) (gen, kill []int) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return nil, nil
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok {
				return nil, nil
			}
			if i, ok := idx[strings.TrimPrefix(id.Name, "gen_")]; ok && strings.HasPrefix(id.Name, "gen_") {
				return []int{i}, nil
			}
			if i, ok := idx[strings.TrimPrefix(id.Name, "kill_")]; ok && strings.HasPrefix(id.Name, "kill_") {
				return nil, []int{i}
			}
			return nil, nil
		},
	}
}

// blockWith finds the block containing a call to name.
func blockWith(t *testing.T, g *cfg.Graph, name string) *cfg.Block {
	t.Helper()
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			found := false
			cfg.Walk(n, false, func(m ast.Node, _ bool) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name {
						found = true
					}
				}
				return true
			})
			if found {
				return b
			}
		}
	}
	t.Fatalf("no block calls %s", name)
	return nil
}

func TestMustForwardBranchJoin(t *testing.T) {
	g := buildCFG(t, `
	gen_a()
	if c {
		gen_b()
	}
	probe()
	`)
	f := eventFlow(g, MustForward, []string{"a", "b"})
	facts := f.Solve()
	in := facts.In[blockWith(t, g, "probe")]
	if !in.Has(0) {
		t.Fatal("a occurs on all paths: must hold at join")
	}
	if in.Has(1) {
		t.Fatal("b occurs on one branch only: must not hold at join")
	}
}

func TestMustForwardBothArms(t *testing.T) {
	g := buildCFG(t, `
	if c {
		gen_a()
	} else {
		gen_a()
	}
	probe()
	`)
	f := eventFlow(g, MustForward, []string{"a"})
	facts := f.Solve()
	if !facts.In[blockWith(t, g, "probe")].Has(0) {
		t.Fatal("a on both arms must hold at join")
	}
}

func TestMustForwardKillOnOnePath(t *testing.T) {
	g := buildCFG(t, `
	gen_a()
	if c {
		kill_a()
	}
	probe()
	`)
	f := eventFlow(g, MustForward, []string{"a"})
	facts := f.Solve()
	if facts.In[blockWith(t, g, "probe")].Has(0) {
		t.Fatal("a killed on one path: must not hold at join")
	}
}

func TestMayForwardLoopBackEdge(t *testing.T) {
	g := buildCFG(t, `
	for {
		probe()
		gen_a()
		if done() {
			break
		}
	}
	`)
	f := eventFlow(g, MayForward, []string{"a"})
	facts := f.Solve()
	if !facts.In[blockWith(t, g, "probe")].Has(0) {
		t.Fatal("a may reach probe around the back edge")
	}
}

func TestMustBackward(t *testing.T) {
	g := buildCFG(t, `
	probe()
	if c {
		gen_a()
		return
	}
	gen_a()
	gen_b()
	`)
	f := eventFlow(g, MustBackward, []string{"a", "b"})
	facts := f.Solve()
	in := facts.In[blockWith(t, g, "probe")]
	if !in.Has(0) {
		t.Fatal("a occurs on every path to exit")
	}
	if in.Has(1) {
		t.Fatal("b is skipped by the early return")
	}
}

// factBefore solves f and replays to return the fact holding immediately
// before the call to name.
func factBefore(t *testing.T, f *Flow, name string) Bits {
	t.Helper()
	facts := f.Solve()
	b := blockWith(t, f.Graph, name)
	var result Bits
	f.ReplayForward(b, facts.In[b], func(n ast.Node, _ bool, before Bits) {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == name && result == nil {
				result = before.Clone()
			}
		}
	})
	if result == nil {
		t.Fatalf("call %s not replayed", name)
	}
	return result
}

func TestGuardedGenSemantics(t *testing.T) {
	// gen_a sits in a short-circuit right operand: may, not must.
	g := buildCFG(t, `
	x := c && gen_a()
	probe(x)
	`)
	if factBefore(t, eventFlow(g, MustForward, []string{"a"}), "probe").Has(0) {
		t.Fatal("guarded gen must not establish a must-fact")
	}
	if !factBefore(t, eventFlow(g, MayForward, []string{"a"}), "probe").Has(0) {
		t.Fatal("guarded gen still establishes a may-fact")
	}
}

func TestGuardedKillSemantics(t *testing.T) {
	g := buildCFG(t, `
	gen_a()
	x := c && kill_a()
	probe(x)
	`)
	if factBefore(t, eventFlow(g, MustForward, []string{"a"}), "probe").Has(0) {
		t.Fatal("a guarded kill still invalidates a must-fact")
	}
	if !factBefore(t, eventFlow(g, MayForward, []string{"a"}), "probe").Has(0) {
		t.Fatal("a guarded kill cannot remove a may-fact")
	}
}

func TestDeferredBlockIsMay(t *testing.T) {
	g := buildCFG(t, `
	defer gen_a()
	work()
	`)
	// The deferred call executes before exit but conditionally (defers
	// registered on skipped paths don't run): may at exit, not must.
	must := eventFlow(g, MustForward, []string{"a"})
	mf := must.Solve()
	if mf.In[g.Exit].Has(0) {
		t.Fatal("deferred events must not be must-facts")
	}
	may := eventFlow(g, MayForward, []string{"a"})
	if !may.Solve().In[g.Exit].Has(0) {
		t.Fatal("deferred events are may-facts at exit")
	}
}

func TestReplayForwardOrder(t *testing.T) {
	g := buildCFG(t, `
	gen_a()
	probe()
	kill_a()
	probe2()
	`)
	f := eventFlow(g, MustForward, []string{"a"})
	facts := f.Solve()
	b := blockWith(t, g, "probe")
	var atProbe, atProbe2 bool
	f.ReplayForward(b, facts.In[b], func(n ast.Node, _ bool, before Bits) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "probe":
				atProbe = before.Has(0)
			case "probe2":
				atProbe2 = before.Has(0)
			}
		}
	})
	if !atProbe {
		t.Fatal("fact must hold between gen and kill")
	}
	if atProbe2 {
		t.Fatal("fact must be dead after kill")
	}
}

func TestReplayBackward(t *testing.T) {
	g := buildCFG(t, `
	probe()
	gen_a()
	probe2()
	`)
	f := eventFlow(g, MustBackward, []string{"a"})
	facts := f.Solve()
	b := blockWith(t, g, "probe")
	var afterProbe, afterProbe2 bool
	f.ReplayBackward(b, facts.Out[b], func(n ast.Node, _ bool, after Bits) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "probe":
				afterProbe = after.Has(0)
			case "probe2":
				afterProbe2 = after.Has(0)
			}
		}
	})
	if !afterProbe {
		t.Fatal("gen_a lies ahead of probe on all paths")
	}
	if afterProbe2 {
		t.Fatal("no gen_a ahead of probe2")
	}
}

// typecheck parses src and returns the file plus populated type info.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{file}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return fset, file, info
}

func funcBody(file *ast.File, name string) *ast.BlockStmt {
	for _, d := range file.Decls {
		if fn, ok := d.(*ast.FuncDecl); ok && fn.Name.Name == name {
			return fn.Body
		}
	}
	return nil
}

func TestReachDefsBranch(t *testing.T) {
	_, file, info := typecheck(t, `
package p

func src() int { return 1 }
func alt() int { return 2 }
func use(int)

func f(c bool) {
	x := src()
	if c {
		x = alt()
	}
	use(x)
}
`)
	g := cfg.New(funcBody(file, "f"), cfg.Options{Info: info})
	r := NewReachDefs(g, info)
	if len(r.Defs) != 2 {
		t.Fatalf("defs = %d, want 2", len(r.Defs))
	}
	// Find the use(x) call and the block holding it.
	var useCall *ast.CallExpr
	var useBlock *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Walk(n, false, func(m ast.Node, _ bool) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
						useCall, useBlock = call, b
					}
				}
				return true
			})
		}
	}
	if useCall == nil {
		t.Fatal("no use call")
	}
	reaching := r.At(useBlock, useCall)
	if reaching.Count() != 2 {
		t.Fatalf("both defs of x should reach use, got %d", reaching.Count())
	}
}

func TestReachDefsKill(t *testing.T) {
	_, file, info := typecheck(t, `
package p

func src() int { return 1 }
func alt() int { return 2 }
func use(int)

func f() {
	x := src()
	x = alt()
	use(x)
}
`)
	g := cfg.New(funcBody(file, "f"), cfg.Options{Info: info})
	r := NewReachDefs(g, info)
	var useCall *ast.CallExpr
	var useBlock *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Walk(n, false, func(m ast.Node, _ bool) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
						useCall, useBlock = call, b
					}
				}
				return true
			})
		}
	}
	reaching := r.At(useBlock, useCall)
	if reaching.Count() != 1 {
		t.Fatalf("rebind kills the first def, got %d reaching", reaching.Count())
	}
	var which *Def
	reaching.ForEach(func(i int) { which = r.Defs[i] })
	if id, ok := which.RHS.(*ast.CallExpr); !ok {
		t.Fatal("reaching def should be the alt() assignment")
	} else if fn, ok := id.Fun.(*ast.Ident); !ok || fn.Name != "alt" {
		t.Fatalf("reaching def RHS = %v, want alt()", which.RHS)
	}
}

func TestReachDefsCompoundPreservesPrior(t *testing.T) {
	_, file, info := typecheck(t, `
package p

func src() int { return 1 }
func use(int)

func f() {
	x := src()
	x += 1
	use(x)
}
`)
	g := cfg.New(funcBody(file, "f"), cfg.Options{Info: info})
	r := NewReachDefs(g, info)
	var useCall *ast.CallExpr
	var useBlock *cfg.Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Walk(n, false, func(m ast.Node, _ bool) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "use" {
						useCall, useBlock = call, b
					}
				}
				return true
			})
		}
	}
	reaching := r.At(useBlock, useCall)
	if reaching.Count() != 2 {
		t.Fatalf("compound assign preserves the prior def, got %d reaching", reaching.Count())
	}
}

func TestCapturedAliases(t *testing.T) {
	_, file, info := typecheck(t, `
package p

type T struct{ buf []int }

func launder(p *T) *T { return p }

func outer() func() {
	var captured T
	return func() {
		local := 0
		p := &captured
		q := p
		s := captured.buf
		lp := &local
		washed := launder(&captured)
		_, _, _, _ = q, s, lp, washed
	}
}
`)
	var lit *ast.FuncLit
	ast.Inspect(file, func(n ast.Node) bool {
		if l, ok := n.(*ast.FuncLit); ok {
			lit = l
		}
		return true
	})
	if lit == nil {
		t.Fatal("no func literal")
	}
	aliases := CapturedAliases(info, lit)
	find := func(name string) *types.Var {
		for v := range aliases {
			if v.Name() == name {
				return v
			}
		}
		return nil
	}
	hasAlias := func(local, captured string) bool {
		v := find(local)
		if v == nil {
			return false
		}
		for c := range aliases[v] {
			if c.Name() == captured {
				return true
			}
		}
		return false
	}
	if !hasAlias("p", "captured") {
		t.Fatal("p = &captured must alias captured")
	}
	if !hasAlias("q", "captured") {
		t.Fatal("q = p must inherit p's aliases")
	}
	if !hasAlias("s", "captured") {
		t.Fatal("s = captured.buf shares captured's backing array")
	}
	if hasAlias("lp", "captured") {
		t.Fatal("lp = &local must not alias captured")
	}
	if hasAlias("p", "local") {
		t.Fatal("local is declared inside the literal, not captured")
	}
	// Documented limitation: call laundering is not tracked.
	if hasAlias("washed", "captured") {
		t.Fatal("call results are documented as untracked")
	}
}
