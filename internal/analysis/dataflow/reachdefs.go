package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"sprwl/internal/analysis/cfg"
)

// Def is one definition site of a variable.
type Def struct {
	Var *types.Var
	// Ident is the defining occurrence on the left-hand side.
	Ident *ast.Ident
	// Site is the statement performing the definition (the assignment,
	// inc/dec, declaration, or range statement); it is the node the solver
	// keys the definition's gen/kill on, so it is the right probe target
	// for At when asking what reaches "just before this definition".
	Site ast.Node
	// RHS is the defining expression: the matching right-hand side for a
	// one-to-one assignment, the multi-value call for tuple assignments,
	// the ranged container for range key/value bindings, nil when there is
	// no initializer.
	RHS ast.Expr
	// Compound marks definitions that read the variable's prior value
	// (x += e, x++), so earlier definitions still flow through them.
	Compound bool
	// Guarded marks definitions that may not execute (short-circuit
	// operand, invoked-literal body, deferred block).
	Guarded bool
}

// ReachDefs is the may-forward reaching-definitions solution for one
// function body: which Defs may supply a variable's value at each point.
// Variables defined outside the body (parameters, captures) have no Def;
// a use none of whose Defs reach it is reading such an outside value.
type ReachDefs struct {
	Graph *cfg.Graph
	Defs  []*Def
	// ByVar indexes Defs by variable.
	ByVar map[*types.Var][]int

	flow   *Flow
	facts  Facts
	byNode map[ast.Node][]int // visited node -> defs it performs
	info   *types.Info
}

// NewReachDefs collects definition sites in g and solves reaching
// definitions. Type-switch case bindings are not tracked (each clause
// binds an implicit object); their uses simply see no reaching defs.
func NewReachDefs(g *cfg.Graph, info *types.Info) *ReachDefs {
	r := &ReachDefs{
		Graph:  g,
		ByVar:  make(map[*types.Var][]int),
		byNode: make(map[ast.Node][]int),
		info:   info,
	}
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Walk(n, b.Deferred, func(m ast.Node, guarded bool) bool {
				r.collect(m, guarded)
				return true
			})
		}
	}
	r.flow = &Flow{
		Graph: g,
		N:     len(r.Defs),
		Mode:  MayForward,
		Events: func(n ast.Node, _ bool) (gen, kill []int) {
			idxs := r.byNode[n]
			for _, i := range idxs {
				gen = append(gen, i)
				if r.Defs[i].Compound {
					// x += e reads x's prior value: earlier definitions
					// still contribute, so they are not killed.
					continue
				}
				for _, j := range r.ByVar[r.Defs[i].Var] {
					if j != i {
						kill = append(kill, j)
					}
				}
			}
			return gen, kill
		},
	}
	r.facts = r.flow.Solve()
	return r
}

func (r *ReachDefs) collect(n ast.Node, guarded bool) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		compound := s.Tok != token.ASSIGN && s.Tok != token.DEFINE
		for i, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				continue
			}
			var rhs ast.Expr
			if len(s.Rhs) == len(s.Lhs) {
				rhs = s.Rhs[i]
			} else if len(s.Rhs) == 1 {
				rhs = s.Rhs[0]
			}
			r.addDef(s, id, rhs, compound, guarded)
		}
	case *ast.IncDecStmt:
		if id, ok := s.X.(*ast.Ident); ok {
			r.addDef(s, id, nil, true, guarded)
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, id := range vs.Names {
				var rhs ast.Expr
				if len(vs.Values) == len(vs.Names) {
					rhs = vs.Values[i]
				} else if len(vs.Values) == 1 {
					rhs = vs.Values[0]
				}
				r.addDef(s, id, rhs, false, guarded)
			}
		}
	case *ast.RangeStmt:
		for _, lhs := range []ast.Expr{s.Key, s.Value} {
			if id, ok := lhs.(*ast.Ident); ok {
				// The binding derives from the ranged container.
				r.addDef(s, id, s.X, false, guarded)
			}
		}
	}
}

func (r *ReachDefs) addDef(site ast.Node, id *ast.Ident, rhs ast.Expr, compound, guarded bool) {
	if id.Name == "_" {
		return
	}
	v := r.varOf(id)
	if v == nil {
		return
	}
	idx := len(r.Defs)
	r.Defs = append(r.Defs, &Def{Var: v, Ident: id, Site: site, RHS: rhs, Compound: compound, Guarded: guarded})
	r.ByVar[v] = append(r.ByVar[v], idx)
	r.byNode[site] = append(r.byNode[site], idx)
}

func (r *ReachDefs) varOf(id *ast.Ident) *types.Var {
	if v, ok := r.info.Defs[id].(*types.Var); ok {
		return v
	}
	v, _ := r.info.Uses[id].(*types.Var)
	return v
}

// At returns the definitions that may reach immediately before target,
// which must be a sub-node of one of b's nodes (in Walk order). If target
// is not found, the block-entry fact is returned.
func (r *ReachDefs) At(b *cfg.Block, target ast.Node) Bits {
	result := r.facts.In[b].Clone()
	found := false
	r.flow.ReplayForward(b, r.facts.In[b], func(m ast.Node, _ bool, before Bits) {
		if m == target && !found {
			result = before.Clone()
			found = true
		}
	})
	return result
}
