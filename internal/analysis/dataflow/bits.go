// Package dataflow provides the generic worklist solver the flow-sensitive
// analyzers (fenceorder, doomedread) run over cfg graphs, plus the two
// derived analyses they share: reaching definitions and a conservative
// captured-variable alias lattice. Facts are fixed-width bitsets over a
// caller-chosen event universe; the solver supports must/may × forward/
// backward directions with the guarded-event semantics the cfg package's
// Walk establishes (an event under a short-circuit, inside an invoked
// literal, or in the deferred block may not execute: it cannot establish a
// must-fact and cannot kill a may-fact).
package dataflow

import "math/bits"

// Bits is a fixed-width bitset. The zero value is unusable; allocate with
// NewBits.
type Bits []uint64

// NewBits returns an empty bitset able to hold n bits.
func NewBits(n int) Bits {
	return make(Bits, (n+63)/64)
}

// Set sets bit i.
func (b Bits) Set(i int) { b[i/64] |= 1 << (i % 64) }

// Clear clears bit i.
func (b Bits) Clear(i int) { b[i/64] &^= 1 << (i % 64) }

// Has reports bit i.
func (b Bits) Has(i int) bool { return b[i/64]&(1<<(i%64)) != 0 }

// Fill sets the first n bits (the must-analysis top element).
func (b Bits) Fill(n int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if n%64 != 0 {
		b[len(b)-1] = (1 << (n % 64)) - 1
	}
}

// Clone returns an independent copy.
func (b Bits) Clone() Bits {
	c := make(Bits, len(b))
	copy(c, b)
	return c
}

// CopyFrom overwrites b with o.
func (b Bits) CopyFrom(o Bits) { copy(b, o) }

// And intersects o into b, reporting whether b changed.
func (b Bits) And(o Bits) bool {
	changed := false
	for i := range b {
		n := b[i] & o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Or unions o into b, reporting whether b changed.
func (b Bits) Or(o Bits) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

// Equal reports whether b and o hold the same bits.
func (b Bits) Equal(o Bits) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

// Count returns the number of set bits.
func (b Bits) Count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls f for every set bit in ascending order.
func (b Bits) ForEach(f func(i int)) {
	for wi, w := range b {
		for w != 0 {
			i := bits.TrailingZeros64(w)
			f(wi*64 + i)
			w &^= 1 << i
		}
	}
}
