package dataflow

import (
	"go/ast"

	"sprwl/internal/analysis/cfg"
)

// Mode selects the direction and meet of a Flow.
type Mode int

const (
	// MustForward computes, at each point, the events that have occurred on
	// EVERY path from entry (meet = intersection). A guarded event cannot
	// establish a must-fact; a kill removes the fact even when guarded.
	MustForward Mode = iota
	// MayForward computes the events that have occurred on SOME path from
	// entry (meet = union). A guarded event still generates; a guarded kill
	// cannot remove the possibility.
	MayForward
	// MustBackward computes, at each point, the events that will occur on
	// EVERY path from that point to exit.
	MustBackward
)

// Events is the client's transfer function: the event bits a sub-node
// generates and kills. It is invoked through cfg.Walk, so guarded reflects
// short-circuit position, invoked-literal bodies, and the deferred block.
type Events func(n ast.Node, guarded bool) (gen, kill []int)

// Flow is one dataflow problem over a cfg.Graph.
type Flow struct {
	Graph  *cfg.Graph
	N      int // event universe size
	Mode   Mode
	Events Events
}

// Facts holds the fixpoint solution. For forward modes In[b] is the fact at
// block entry and Out[b] after its last node; for MustBackward In[b] is the
// fact holding at block entry about the paths ahead (b's own nodes
// included) and Out[b] the fact just after b's last node.
type Facts struct {
	In  map[*cfg.Block]Bits
	Out map[*cfg.Block]Bits
}

// Solve runs round-robin iteration to fixpoint. Blocks unreachable from
// entry (forward) or cut off from exit (backward) keep the vacuous top
// element: an invariant holds trivially on zero paths.
func (f *Flow) Solve() Facts {
	facts := Facts{
		In:  make(map[*cfg.Block]Bits, len(f.Graph.Blocks)),
		Out: make(map[*cfg.Block]Bits, len(f.Graph.Blocks)),
	}
	top := func() Bits {
		b := NewBits(f.N)
		if f.Mode != MayForward {
			b.Fill(f.N)
		}
		return b
	}
	for _, b := range f.Graph.Blocks {
		facts.In[b] = top()
		facts.Out[b] = top()
	}
	if f.Mode == MustBackward {
		f.solveBackward(facts)
	} else {
		f.solveForward(facts)
	}
	return facts
}

func (f *Flow) solveForward(facts Facts) {
	facts.In[f.Graph.Entry] = NewBits(f.N)
	for changed := true; changed; {
		changed = false
		for _, b := range f.Graph.Blocks {
			in := facts.In[b]
			if b != f.Graph.Entry && len(b.Preds) > 0 {
				meet := NewBits(f.N)
				if f.Mode == MustForward {
					meet.Fill(f.N)
				}
				for _, p := range b.Preds {
					if f.Mode == MustForward {
						meet.And(facts.Out[p])
					} else {
						meet.Or(facts.Out[p])
					}
				}
				if !meet.Equal(in) {
					facts.In[b] = meet
					in = meet
					changed = true
				}
			}
			out := in.Clone()
			f.transferForward(b, out)
			if !out.Equal(facts.Out[b]) {
				facts.Out[b] = out
				changed = true
			}
		}
	}
}

func (f *Flow) solveBackward(facts Facts) {
	facts.Out[f.Graph.Exit] = NewBits(f.N)
	facts.In[f.Graph.Exit] = NewBits(f.N)
	for changed := true; changed; {
		changed = false
		for i := len(f.Graph.Blocks) - 1; i >= 0; i-- {
			b := f.Graph.Blocks[i]
			if b == f.Graph.Exit {
				continue
			}
			out := facts.Out[b]
			if len(b.Succs) > 0 {
				meet := NewBits(f.N)
				meet.Fill(f.N)
				for _, s := range b.Succs {
					meet.And(facts.In[s])
				}
				if !meet.Equal(out) {
					facts.Out[b] = meet
					out = meet
					changed = true
				}
			}
			in := out.Clone()
			f.transferBackward(b, in)
			if !in.Equal(facts.In[b]) {
				facts.In[b] = in
				changed = true
			}
		}
	}
}

// apply folds one sub-node's events into fact under the mode's guarded
// semantics. Kills apply before gens so a node that redefines an event
// (kill-others, gen-self) nets out correctly.
func (f *Flow) apply(fact Bits, n ast.Node, guarded bool) {
	gen, kill := f.Events(n, guarded)
	mustMode := f.Mode != MayForward
	if mustMode || !guarded {
		for _, k := range kill {
			fact.Clear(k)
		}
	}
	if !mustMode || !guarded {
		for _, g := range gen {
			fact.Set(g)
		}
	}
}

func (f *Flow) transferForward(b *cfg.Block, fact Bits) {
	for _, n := range b.Nodes {
		cfg.Walk(n, b.Deferred, func(m ast.Node, g bool) bool {
			f.apply(fact, m, g)
			return true
		})
	}
}

func (f *Flow) transferBackward(b *cfg.Block, fact Bits) {
	nodes, guards := subNodes(b)
	for i := len(nodes) - 1; i >= 0; i-- {
		f.apply(fact, nodes[i], guards[i])
	}
}

// subNodes flattens a block's nodes through Walk into evaluation order.
func subNodes(b *cfg.Block) ([]ast.Node, []bool) {
	var nodes []ast.Node
	var guards []bool
	for _, n := range b.Nodes {
		cfg.Walk(n, b.Deferred, func(m ast.Node, g bool) bool {
			nodes = append(nodes, m)
			guards = append(guards, g)
			return true
		})
	}
	return nodes, guards
}

// ReplayForward re-runs the forward transfer through b from the block-entry
// fact in, calling visit with the fact holding immediately BEFORE each
// sub-node. in is not modified.
func (f *Flow) ReplayForward(b *cfg.Block, in Bits, visit func(n ast.Node, guarded bool, before Bits)) {
	fact := in.Clone()
	for _, n := range b.Nodes {
		cfg.Walk(n, b.Deferred, func(m ast.Node, g bool) bool {
			visit(m, g, fact)
			f.apply(fact, m, g)
			return true
		})
	}
}

// ReplayBackward re-runs the backward transfer through b from the
// block-exit fact out, calling visit with the fact holding immediately
// AFTER each sub-node (what the paths from that point on guarantee). out
// is not modified.
func (f *Flow) ReplayBackward(b *cfg.Block, out Bits, visit func(n ast.Node, guarded bool, after Bits)) {
	nodes, guards := subNodes(b)
	fact := out.Clone()
	for i := len(nodes) - 1; i >= 0; i-- {
		visit(nodes[i], guards[i], fact)
		f.apply(fact, nodes[i], guards[i])
	}
}
