package fenceorder_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/fenceorder"
)

func TestFenceOrder(t *testing.T) {
	analysistest.Run(t, "testdata", fenceorder.Analyzer, "corefence")
}
