// Package fenceorder is the flow-sensitive companion to releaseorder: it
// checks the same SpRWL core-protocol fence points, but over the control
// flow graph instead of source order, so violations that only exist on SOME
// execution path — an early return that skips the retract, a conditional
// that bypasses the clockW store, a loop that re-runs the body after
// unflagging — are caught even when every individual straight-line slice of
// the function looks correctly ordered.
//
// Per function (declarations and each function literal separately), five
// rules run over coreevent-classified calls:
//
//   - F1 (may-forward): no path may reach a critical-section body
//     invocation with the reader flag already retracted — re-running the
//     body after unflagReader/departFrom/stateEmpty leaves the read
//     invisible to writers;
//
//   - F2 (must-forward): in a function that stores the writer clock, every
//     path into a stateWriter advertise must have stored clockW first;
//
//   - F3 (must-forward): in a function that flags the reader, every path
//     into a readerVer <- 0 retire must already be flagged;
//
//   - F4 (must-backward): every path out of a readerVer registration
//     (nonzero store) must perform a glVer validation load — conditional
//     validation is the unsafe lazy-subscription pattern;
//
//   - F5 (must-backward): in a function that both flags the reader and
//     invokes the body, every path from the body to return must retract
//     the flag — a path that exits flagged leaks the published slot;
//
//   - F6 (must-backward, wake-after-retire): every path out of a store to a
//     parked-on phase word — stateEmpty to the state word, or any store to
//     a readerVer registration word — must reach a Wake of the same family
//     before return. Parked waiters sleep on exactly these words
//     (readersWait on state, lockGL's §3.3 drain on readerVer), and the
//     parking table has no spurious wakeups: a phase store whose path can
//     return without the wake strands a sleeper forever;
//
//   - F7 (must-forward, check-before-park): every path into a Waiter.Pause
//     on a protocol word must have re-checked that word — a Load of the
//     same family (IsLocked for the gl word) — since the last Pause.
//     Parking on a stale check is the lost-wakeup window: the word may
//     already hold the waiter's target value, and the wake that announced
//     it has already been consumed.
//
// F2/F3/F5 are scoped to functions that contain the establishing event at
// all, so helpers that only perform one half of a handshake (finishWrite's
// stateEmpty store, checkForReaders' state loads) are not false positives.
// F6 and F7 are unconditional: a retire store or a park is itself the
// establishing event. tx.Abort terminates a path (transactions never fall
// through an abort), and events inside nested function literals belong to
// the literal's own analysis, not the enclosing function's CFG.
//
// The wait loops in core bind the watched address once and reuse it
// (`a := l.stateAddr(wait)` … `l.e.Load(a)` … `w.Pause(a, …)`), so this
// analyzer resolves single-binding local aliases of the address helpers
// before classifying; an alias rebound to a different family is dropped.
package fenceorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/cfg"
	"sprwl/internal/analysis/coreevent"
	"sprwl/internal/analysis/dataflow"
	"sprwl/internal/analysis/driver"
)

// Analyzer is the fenceorder check.
var Analyzer = &driver.Analyzer{
	Name: "fenceorder",
	Doc:  "flow-sensitive fence ordering of the core protocol: flag/retract, clockW/stateWriter, and lazy-subscription validation on every CFG path",
	Run:  run,
}

// Bit indices of the three dataflow universes.
const (
	bitFlagged = 0 // must-forward: reader is flagged on every path here
	bitClockW  = 1 // must-forward: clockW stored on every path here
	// Check-before-park facts (F7), one per parked-on family: the word
	// has been re-checked since the last park on it.
	bitCheckedState     = 2
	bitCheckedReaderVer = 3
	bitCheckedGL        = 4
	mustFwdBits         = 5

	bitRetracted = 0 // may-forward: some path here has retracted the flag

	bitGLVerLoad = 0 // must-backward: glVer load ahead on every path
	bitRetract   = 1 // must-backward: retract ahead on every path
	// Wake-after-retire facts (F6), one per parked-on word family: a
	// same-family Wake lies ahead on every path.
	bitWakeState     = 2
	bitWakeReaderVer = 3
	mustBwdBits      = 4
)

// checkedBit maps a parked-on family to its F7 fact bit; ok is false for
// families no core wait loop parks on.
func checkedBit(fam coreevent.Family) (int, bool) {
	switch fam {
	case coreevent.FamState:
		return bitCheckedState, true
	case coreevent.FamReaderVer:
		return bitCheckedReaderVer, true
	case coreevent.FamGL:
		return bitCheckedGL, true
	}
	return 0, false
}

func run(pass *driver.Pass) error {
	// Like releaseorder, the invariants are properties of the core
	// implementation package and of fixtures mirroring it.
	if pass.Pkg.Name != "core" {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkBody(pass, info, fn.Body)
				}
			case *ast.FuncLit:
				// Each literal is its own protocol sequence (attempt
				// closures, deferred cleanups); cfg.Walk keeps its events
				// out of the enclosing function's analysis.
				checkBody(pass, info, fn.Body)
			}
			return true
		})
	}
	return nil
}

func checkBody(pass *driver.Pass, info *types.Info, body *ast.BlockStmt) {
	g := cfg.New(body, cfg.Options{
		Info: info,
		NoReturn: func(call *ast.CallExpr) bool {
			// tx.Abort never returns into the transaction body.
			return astq.CalleeName(call) == "Abort"
		},
	})

	// Resolve single-binding local aliases of the address helpers
	// (`a := l.stateAddr(wait)`), so loads, parks, and wakes through the
	// alias classify with the right family. An alias later rebound to a
	// different family is dropped rather than guessed at.
	aliases := make(map[types.Object]coreevent.Family)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || (as.Tok != token.DEFINE && as.Tok != token.ASSIGN) {
			return true
		}
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) {
				break
			}
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.ObjectOf(id)
			if obj == nil {
				continue
			}
			fam := coreevent.AddrFamily(as.Rhs[i])
			if prev, seen := aliases[obj]; seen && prev != fam {
				fam = coreevent.FamOther
			}
			aliases[obj] = fam
		}
		return true
	})
	resolve := func(e ast.Expr) coreevent.Family {
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				return aliases[obj]
			}
		}
		return coreevent.FamOther
	}

	// Classify once; the three flows and the replay passes all index this.
	events := make(map[ast.Node]coreevent.Event)
	aborts := make(map[ast.Node]bool)
	var hasFlag, hasClockWStore bool
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			cfg.Walk(n, b.Deferred, func(m ast.Node, _ bool) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if astq.CalleeName(call) == "Abort" || astq.PanicsOnly(info, call) {
					aborts[m] = true
					return true
				}
				if ev, ok := coreevent.ClassifyResolved(info, call, resolve); ok {
					events[m] = ev
					switch {
					case ev.Kind == coreevent.Flag:
						hasFlag = true
					case ev.Kind == coreevent.Store && ev.Fam == coreevent.FamClockW:
						hasClockWStore = true
					}
				}
				return true
			})
		}
	}
	if len(events) == 0 {
		return
	}

	mustFwd := &dataflow.Flow{
		Graph: g, N: mustFwdBits, Mode: dataflow.MustForward,
		Events: func(n ast.Node, _ bool) (gen, kill []int) {
			ev, ok := events[n]
			if !ok {
				return nil, nil
			}
			switch {
			case ev.Kind == coreevent.Flag:
				gen = append(gen, bitFlagged)
			case coreevent.IsRetractEvent(ev):
				kill = append(kill, bitFlagged)
			case ev.Kind == coreevent.Store && ev.Fam == coreevent.FamClockW:
				gen = append(gen, bitClockW)
			}
			// F7 facts: a load of a parked-on word arms its check bit; a
			// park consumes it, so the next park needs a fresh re-check
			// (the loop's back edge re-arms through the condition load).
			switch ev.Kind {
			case coreevent.Load:
				if bit, ok := checkedBit(ev.Fam); ok {
					gen = append(gen, bit)
				}
			case coreevent.Pause:
				if bit, ok := checkedBit(ev.Fam); ok {
					kill = append(kill, bit)
				}
			}
			return gen, kill
		},
	}
	mayFwd := &dataflow.Flow{
		Graph: g, N: 1, Mode: dataflow.MayForward,
		Events: func(n ast.Node, _ bool) (gen, kill []int) {
			ev, ok := events[n]
			if !ok {
				return nil, nil
			}
			switch {
			case coreevent.IsRetractEvent(ev):
				gen = append(gen, bitRetracted)
			case ev.Kind == coreevent.Flag:
				kill = append(kill, bitRetracted)
			}
			return gen, kill
		},
	}
	mustBwd := &dataflow.Flow{
		Graph: g, N: mustBwdBits, Mode: dataflow.MustBackward,
		Events: func(n ast.Node, _ bool) (gen, kill []int) {
			if aborts[n] {
				// The CFG edges aborts to Exit like a return, but an abort
				// unwinds the transaction and rolls back its simulated
				// stores, discharging every path obligation.
				return []int{bitGLVerLoad, bitRetract, bitWakeState, bitWakeReaderVer}, nil
			}
			ev, ok := events[n]
			if !ok {
				return nil, nil
			}
			switch {
			case ev.Kind == coreevent.Load && ev.Fam == coreevent.FamGLVer:
				gen = append(gen, bitGLVerLoad)
			case coreevent.IsRetractEvent(ev):
				gen = append(gen, bitRetract)
			}
			// F6 facts: a Wake discharges the same-family obligation of
			// every phase store on paths that reach it.
			if ev.Kind == coreevent.Wake {
				switch ev.Fam {
				case coreevent.FamState:
					gen = append(gen, bitWakeState)
				case coreevent.FamReaderVer:
					gen = append(gen, bitWakeReaderVer)
				}
			}
			return gen, kill
		},
	}

	mustFacts := mustFwd.Solve()
	mayFacts := mayFwd.Solve()
	bwdFacts := mustBwd.Solve()

	for _, b := range g.Blocks {
		mustFwd.ReplayForward(b, mustFacts.In[b], func(n ast.Node, _ bool, before dataflow.Bits) {
			ev, ok := events[n]
			if !ok {
				return
			}
			if ev.Kind == coreevent.Pause {
				// F7: park only on a freshly checked word, on every
				// incoming path (including the loop back edge).
				if bit, ok := checkedBit(ev.Fam); ok && !before.Has(bit) {
					pass.Reportf(ev.Pos, "fence order: a path reaches this park on the %s word without re-checking it since the last park (lost-wakeup window: the word may already hold the waiter's target value)", ev.Fam)
				}
				return
			}
			if ev.Kind != coreevent.Store {
				return
			}
			switch {
			case ev.Fam == coreevent.FamState && ev.Val == coreevent.ValStateWriter:
				// F2: advertise requires the clock on every incoming path.
				if hasClockWStore && !before.Has(bitClockW) {
					pass.Reportf(ev.Pos, "fence order: a path reaches this stateWriter advertise without storing the writer clock (clockW); readers on that path observe an active writer with a stale clock")
				}
			case ev.Fam == coreevent.FamReaderVer && ev.Val == coreevent.ValZero:
				// F3: retire only while flagged, on every incoming path.
				if hasFlag && !before.Has(bitFlagged) {
					pass.Reportf(ev.Pos, "fence order: a path reaches this readerVer retire (store of zero) with the reader not flagged; neither the version word nor the flag covers the reader on that path")
				}
			}
		})
		mayFwd.ReplayForward(b, mayFacts.In[b], func(n ast.Node, _ bool, before dataflow.Bits) {
			ev, ok := events[n]
			if !ok || ev.Kind != coreevent.Body {
				return
			}
			// F1: no path may re-enter the body after retracting.
			if before.Has(bitRetracted) {
				pass.Reportf(ev.Pos, "fence order: a path reaches this critical-section body with the reader flag already retracted; re-flag before re-running the body")
			}
		})
		mustBwd.ReplayBackward(b, bwdFacts.Out[b], func(n ast.Node, _ bool, after dataflow.Bits) {
			ev, ok := events[n]
			if !ok {
				return
			}
			switch {
			case ev.Kind == coreevent.Store && ev.Fam == coreevent.FamReaderVer && ev.Val != coreevent.ValZero:
				// F4: registration must be validated on every outgoing path.
				if !after.Has(bitGLVerLoad) {
					pass.Reportf(ev.Pos, "fence order: a path from this readerVer registration reaches return without a glVer validation load (unsafe lazy subscription)")
				}
			case ev.Kind == coreevent.Body && hasFlag:
				// F5: the flag must come down on every path after the body.
				if !after.Has(bitRetract) {
					pass.Reportf(ev.Pos, "fence order: a path from this critical-section body reaches return without retracting the reader flag; the slot stays published after the read completes")
				}
			}
			// F6: a store to a parked-on phase word must reach a
			// same-family wake on every outgoing path — the parking table
			// has no spurious wakeups, so an unwoken phase transition
			// strands any sleeper whose predicate it satisfies.
			if ev.Kind == coreevent.Store {
				switch {
				case ev.Fam == coreevent.FamState && ev.Val == coreevent.ValStateEmpty:
					if !after.Has(bitWakeState) {
						pass.Reportf(ev.Pos, "fence order: a path from this stateEmpty retire reaches return without waking the state word; a reader parked on the writer's phase word stays asleep (lost wakeup)")
					}
				case ev.Fam == coreevent.FamReaderVer:
					if !after.Has(bitWakeReaderVer) {
						pass.Reportf(ev.Pos, "fence order: a path from this readerVer store reaches return without waking the registration word; a fallback writer parked on its §3.3 drain stays asleep (lost wakeup)")
					}
				}
			}
		})
	}
}
