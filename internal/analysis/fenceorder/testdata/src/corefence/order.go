// Package core mirrors the shape of the real internal/core protocol code
// so the flow-sensitive fenceorder analyzer can be exercised on reduced
// functions. Every bad* function here is ordered correctly in SOURCE order
// — the straight-line releaseorder rules accept all of them — and violates
// a fence only on some CFG path, which is exactly the gap fenceorder
// closes. The analyzer gates on the package name "core".
package core

import (
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
)

type envT struct{}

func (envT) Load(a memmodel.Addr) uint64     { return 0 }
func (envT) Store(a memmodel.Addr, v uint64) {}
func (envT) Abort(code uint64)               {}

// hubT mirrors park.Hub: the wake endpoint of the phase-word protocol.
type hubT struct{}

func (hubT) Wake(a memmodel.Addr) {}

// glT mirrors locks.SpinMutex as the core sees it: held-check, parkable
// address, and the version-bump wake.
type glT struct{}

func (glT) IsLocked() bool      { return false }
func (glT) Addr() memmodel.Addr { return 256 }
func (glT) Wake()               {}

// waiterT mirrors park.Waiter's spin-then-park step.
type waiterT struct{}

func (waiterT) Pause(a memmodel.Addr, expected, remaining uint64) {}

const (
	stateEmpty  = 0
	stateWriter = 2
)

type lock struct {
	e     envT
	glVer memmodel.Addr
	wakes hubT
	gl    glT
}

func (l *lock) stateAddr(i int) memmodel.Addr     { return memmodel.Addr(i) }
func (l *lock) clockWAddr(i int) memmodel.Addr    { return memmodel.Addr(i + 64) }
func (l *lock) readerVerAddr(i int) memmodel.Addr { return memmodel.Addr(i + 128) }

func (l *lock) flagReader()   {}
func (l *lock) unflagReader() {}

func cond() bool { return false }

// badAdvertiseSkipsClock stores the clock before the advertise in source
// order, but only on the fast path: the other path reaches the advertise
// with a stale clock (F2).
func (l *lock) badAdvertiseSkipsClock(fast bool) {
	if fast {
		l.e.Store(l.clockWAddr(0), 1)
	}
	l.e.Store(l.stateAddr(0), stateWriter) // want `a path reaches this stateWriter advertise without storing the writer clock`
}

// goodAdvertise is the real Write shape: clock and advertise on the same
// path.
func (l *lock) goodAdvertise(sync bool) {
	if sync {
		l.e.Store(l.clockWAddr(0), 1)
		l.e.Store(l.stateAddr(0), stateWriter)
	}
}

// badLoopReflag retracts after the body in source order, but the continue
// path re-runs the body with the flag already down (F1).
func (l *lock) badLoopReflag(body rwlock.Body) {
	l.flagReader()
	for {
		body(nil) // want `a path reaches this critical-section body with the reader flag already retracted`
		l.unflagReader()
		if cond() {
			continue
		}
		break
	}
}

// goodLoopReflag re-flags at the top of every iteration, killing the
// retracted fact on the back edge.
func (l *lock) goodLoopReflag(body rwlock.Body) {
	for {
		l.flagReader()
		body(nil)
		l.unflagReader()
		if !cond() {
			break
		}
	}
}

// badClearThenLoop clears the state slot (a retract) at the bottom of the
// loop; the back edge re-enters the body uncovered (F1).
func (l *lock) badClearThenLoop(body rwlock.Body) {
	l.flagReader()
	for cond() {
		body(nil) // want `a path reaches this critical-section body with the reader flag already retracted`
		l.e.Store(l.stateAddr(0), stateEmpty)
		l.wakes.Wake(l.stateAddr(0))
	}
}

// badConditionalFlag flags before the retire in source order, but only on
// the slow path: the other path retires readerVer uncovered (F3).
func (l *lock) badConditionalFlag(slow bool) {
	if slow {
		l.flagReader()
	}
	l.e.Store(l.readerVerAddr(0), 0) // want `a path reaches this readerVer retire \(store of zero\) with the reader not flagged`
	l.wakes.Wake(l.readerVerAddr(0))
}

// goodArriveLoop mirrors the real flagReader: every loop exit is
// post-arrival, so the retire is covered on all paths even though a
// retract occurs inside the loop.
func (l *lock) goodArriveLoop() {
	for {
		l.flagReader()
		if cond() {
			break
		}
		l.unflagReader()
	}
	l.e.Store(l.readerVerAddr(0), 0)
	l.wakes.Wake(l.readerVerAddr(0))
}

// badConditionalValidate is followed by a glVer load in source order, but
// the early-return path skips the validation (F4).
func (l *lock) badConditionalValidate(unlucky bool) {
	l.e.Store(l.readerVerAddr(0), 7) // want `a path from this readerVer registration reaches return without a glVer validation load`
	l.wakes.Wake(l.readerVerAddr(0))
	if unlucky {
		return
	}
	_ = l.e.Load(l.glVer)
}

// goodRegisterValidate mirrors the real flagReaderAndSyncGL registration
// loop: the validation load sits on every path out of the store.
func (l *lock) goodRegisterValidate() {
	observed := l.e.Load(l.glVer)
	l.e.Store(l.readerVerAddr(0), observed+1)
	l.wakes.Wake(l.readerVerAddr(0))
	if l.e.Load(l.glVer) != observed {
		l.e.Store(l.readerVerAddr(0), 0)
		l.wakes.Wake(l.readerVerAddr(0))
	}
}

// badEarlyReturn retracts after the body in source order, but the failure
// path returns with the flag still published (F5).
func (l *lock) badEarlyReturn(body rwlock.Body, fail bool) {
	l.flagReader()
	body(nil) // want `a path from this critical-section body reaches return without retracting the reader flag`
	if fail {
		return
	}
	l.unflagReader()
}

// goodAbortPath: the abort path terminates the function, so only the
// falling-through path needs the retract.
func (l *lock) goodAbortPath(body rwlock.Body, fail bool) {
	l.flagReader()
	body(nil)
	if fail {
		l.e.Abort(1)
	}
	l.unflagReader()
}

// goodRead is the real Read shape: flag, body, retract, straight through.
func (l *lock) goodRead(body rwlock.Body) {
	l.flagReader()
	body(nil)
	l.unflagReader()
}

// goodAttemptClosure mirrors the retry-attempt pattern: the literal is
// analyzed as its own function, and its flag/body/retract sequence is
// complete even though the enclosing function never flags.
func (l *lock) goodAttemptClosure(body rwlock.Body) func() {
	return func() {
		l.flagReader()
		body(nil)
		l.unflagReader()
	}
}

// badClosureEarlyReturn: violations inside literals are attributed to the
// literal's own CFG (F5 again, one scope down).
func (l *lock) badClosureEarlyReturn(body rwlock.Body, fail bool) func() {
	return func() {
		l.flagReader()
		body(nil) // want `a path from this critical-section body reaches return without retracting the reader flag`
		if fail {
			return
		}
		l.unflagReader()
	}
}

// allowedEarlyReturn is a deliberate, justified exception.
func (l *lock) allowedEarlyReturn(body rwlock.Body, fail bool) {
	l.flagReader()
	//sprwl:allow(fenceorder) fixture: deliberate exception for teardown paths
	body(nil)
	if fail {
		return
	}
	l.unflagReader()
}

// badRetireWakeSkipped wakes after the phase-word retire in source order,
// but only on the fast path: the other path returns with a reader still
// parked on the writer's state word (F6).
func (l *lock) badRetireWakeSkipped(fast bool) {
	l.e.Store(l.stateAddr(0), stateEmpty) // want `a path from this stateEmpty retire reaches return without waking the state word`
	if fast {
		l.wakes.Wake(l.stateAddr(0))
	}
}

// goodRetireWake is the real finishWrite shape: retire, then wake,
// unconditionally.
func (l *lock) goodRetireWake() {
	l.e.Store(l.stateAddr(0), stateEmpty)
	l.wakes.Wake(l.stateAddr(0))
}

// goodRetireAbortPath: the abort unwinds the transaction (rolling the store
// back), so only the falling-through path owes the wake.
func (l *lock) goodRetireAbortPath(fail bool) {
	l.e.Store(l.stateAddr(0), stateEmpty)
	if fail {
		l.e.Abort(1)
	}
	l.wakes.Wake(l.stateAddr(0))
}

// badRegisterWakeSkipped registers and validates correctly, but the wake of
// the registration word is conditional: a fallback writer parked on its
// §3.3 drain can sleep through the registration change (F6).
func (l *lock) badRegisterWakeSkipped(lucky bool) {
	l.e.Store(l.readerVerAddr(0), 7) // want `a path from this readerVer store reaches return without waking the registration word`
	if lucky {
		l.wakes.Wake(l.readerVerAddr(0))
	}
	_ = l.e.Load(l.glVer)
}

// goodSpinThenPark is the real readersWait shape, through a local alias of
// the watched address: the loop-condition load re-arms the check on the
// back edge, so every path into the park has a fresh check (F7 clean).
func (l *lock) goodSpinThenPark(w waiterT) {
	a := l.stateAddr(0)
	for l.e.Load(a) == stateWriter {
		w.Pause(a, stateWriter, 0)
	}
}

// badParkStale parks a second time without re-checking the word: the wake
// that announced the phase change was consumed by the first park, and the
// word may already hold the target value (F7).
func (l *lock) badParkStale(w waiterT) {
	a := l.stateAddr(0)
	for l.e.Load(a) == stateWriter {
		w.Pause(a, stateWriter, 0)
		w.Pause(a, stateWriter, 0) // want `a path reaches this park on the state word without re-checking it since the last park`
	}
}

// badParkCheckOutsideLoop checks the word once before the loop; the back
// edge re-parks on the stale check (F7 — the violation is path-sensitive:
// the first iteration is fine).
func (l *lock) badParkCheckOutsideLoop(w waiterT) {
	a := l.readerVerAddr(0)
	if l.e.Load(a) == 0 {
		return
	}
	for cond() {
		w.Pause(a, 1, 0) // want `a path reaches this park on the readerVer word without re-checking it since the last park`
	}
}

// goodParkGL is the real awaitGLClear shape: the held-check is the gl-word
// analogue of the load, re-armed by the loop condition.
func (l *lock) goodParkGL(w waiterT) {
	a := l.gl.Addr()
	for l.gl.IsLocked() {
		w.Pause(a, 1, 0)
	}
}

// badParkGLUnchecked parks on the fallback-lock word without ever checking
// it (F7).
func (l *lock) badParkGLUnchecked(w waiterT) {
	a := l.gl.Addr()
	w.Pause(a, 1, 0) // want `a path reaches this park on the gl word without re-checking it since the last park`
}
