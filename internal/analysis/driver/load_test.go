package driver

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule materializes a throwaway module on disk and returns a
// Program rooted at it plus its module path.
func writeModule(t *testing.T, files map[string]string) (*Program, string) {
	t.Helper()
	dir := t.TempDir()
	all := map[string]string{"go.mod": "module example.com/m\n\ngo 1.22\n"}
	for name, src := range files {
		all[name] = src
	}
	for name, src := range all {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	p, err := NewProgram(dir)
	if err != nil {
		t.Fatal(err)
	}
	return p, "example.com/m"
}

func TestLoadUnparsableFile(t *testing.T) {
	p, mod := writeModule(t, map[string]string{
		"a.go": "package m\n\nfunc broken( {\n",
	})
	if _, err := p.Load(mod); err == nil {
		t.Fatal("Load succeeded on a file with a syntax error")
	} else if !strings.Contains(err.Error(), "a.go") {
		t.Fatalf("error does not name the unparsable file: %v", err)
	}
}

func TestLoadMissingImport(t *testing.T) {
	p, mod := writeModule(t, map[string]string{
		"a.go": "package m\n\nimport \"example.com/m/nosuch\"\n\nvar _ = nosuch.X\n",
	})
	_, err := p.Load(mod)
	if err == nil {
		t.Fatal("Load succeeded despite an unresolvable import")
	}
	if !strings.Contains(err.Error(), "nosuch") {
		t.Fatalf("error does not name the missing import: %v", err)
	}
}

func TestLoadTypeError(t *testing.T) {
	p, mod := writeModule(t, map[string]string{
		"a.go": "package m\n\nvar x int = \"not an int\"\n",
	})
	if _, err := p.Load(mod); err == nil {
		t.Fatal("Load succeeded on an ill-typed package")
	} else if !strings.Contains(err.Error(), "typecheck") {
		t.Fatalf("type error not labelled as such: %v", err)
	}
}

// TestLoadBuildTagExcluded checks that parseDir honours build constraints:
// a file fenced off by //go:build, or by a foreign-GOOS filename suffix,
// must not be parsed — the excluded files here would fail type checking
// (duplicate declarations) if they slipped in.
func TestLoadBuildTagExcluded(t *testing.T) {
	p, mod := writeModule(t, map[string]string{
		"a.go":          "package m\n\nfunc F() int { return 1 }\n",
		"b.go":          "//go:build neverever\n\npackage m\n\nfunc F() int { return 2 }\n",
		"c_windows.go":  "package m\n\nfunc F() int { return 3 }\n",
		"d_plan9_386.s": "",
	})
	if _, ok := os.LookupEnv("GOOS"); ok && os.Getenv("GOOS") == "windows" {
		t.Skip("test encodes a non-windows build configuration")
	}
	pkg, err := p.Load(mod)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkg.Files) != 1 {
		t.Fatalf("got %d files, want 1 (constraint-excluded files must be skipped)", len(pkg.Files))
	}
	name := p.Fset.Position(pkg.Files[0].Pos()).Filename
	if filepath.Base(name) != "a.go" {
		t.Fatalf("wrong file survived: %s", name)
	}
}

// TestLoadFixtureShadowsStdlib checks import-path resolution order: with a
// FixtureRoot configured, a fixture directory whose name collides with a
// standard-library path wins, so analysistest fixtures can stub stdlib
// packages deterministically.
func TestLoadFixtureShadowsStdlib(t *testing.T) {
	p, _ := writeModule(t, map[string]string{"a.go": "package m\n"})
	fixtures := t.TempDir()
	dir := filepath.Join(fixtures, "strings")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	src := "package strings\n\n// Marker proves the fixture, not GOROOT, was loaded.\nfunc Marker() {}\n"
	if err := os.WriteFile(filepath.Join(dir, "strings.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	p.FixtureRoot = fixtures
	pkg, err := p.Load("strings")
	if err != nil {
		t.Fatalf("Load(strings): %v", err)
	}
	if pkg.Dir != dir {
		t.Fatalf("loaded %s, want fixture dir %s", pkg.Dir, dir)
	}
	if pkg.Types.Scope().Lookup("Marker") == nil {
		t.Fatal("fixture package lacks Marker: stdlib strings was loaded instead")
	}
}

func TestLoadNoGoFiles(t *testing.T) {
	p, mod := writeModule(t, map[string]string{"sub/README.txt": "nothing here\n"})
	if _, err := p.Load(mod + "/sub"); err == nil {
		t.Fatal("Load succeeded on a directory with no Go files")
	} else if !strings.Contains(err.Error(), "no Go files") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// TestStaleAllows checks the suppression lifecycle: a directive that
// silences a finding is honoured, one that silences nothing is surfaced as
// stale (including directives naming analyzers that never report).
func TestStaleAllows(t *testing.T) {
	p, mod := writeModule(t, map[string]string{
		"a.go": `package m

//sprwl:allow(dummy) live: suppresses the finding on the next line
var X = 1

//sprwl:allow(dummy) stale: nothing is reported here
var Y = 2

//sprwl:allow(ghost) stale: no analyzer by this name ever fires
var Z = 3
`,
	})
	dummy := &Analyzer{Name: "dummy", Doc: "reports every identifier named X", Run: func(pass *Pass) error {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "X" {
					pass.Reportf(id.Pos(), "X sighted")
				}
				return true
			})
		}
		return nil
	}}
	pkg, err := p.Load(mod)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunAnalyzers(p, []*Package{pkg}, []*Analyzer{dummy})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Diagnostics) != 0 {
		t.Fatalf("surviving diagnostics: %v", res.Diagnostics)
	}
	if len(res.Suppressed) != 1 {
		t.Fatalf("got %d suppressed findings, want 1", len(res.Suppressed))
	}
	if len(res.StaleAllows) != 2 {
		t.Fatalf("got %d stale allows, want 2: %v", len(res.StaleAllows), res.StaleAllows)
	}
	if l := p.Fset.Position(res.StaleAllows[0].Pos).Line; l != 6 {
		t.Errorf("first stale allow on line %d, want 6", l)
	}
	if n := res.StaleAllows[1].Names; len(n) != 1 || n[0] != "ghost" {
		t.Errorf("second stale allow names %v, want [ghost]", n)
	}
}
