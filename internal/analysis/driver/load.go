package driver

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one type-checked package: parsed syntax plus type information,
// the unit every analyzer operates on.
type Package struct {
	// Path is the import path ("sprwl/internal/core", or a fixture path
	// like "a" under an analysistest testdata root).
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Name is the package name from the package clauses.
	Name string
	// Files holds the parsed non-test files, sorted by filename.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables for Files.
	Info *types.Info
}

// Program loads and caches packages for one analysis session. Module
// packages are resolved from ModuleDir, fixture packages (analysistest)
// from FixtureRoot, and everything else is treated as standard library and
// type-checked from GOROOT source — which keeps the driver dependency-free
// and fully offline.
type Program struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleDir  string

	// FixtureRoot, when non-empty, resolves import paths that are neither
	// module-internal nor standard library against this directory
	// (analysistest points it at testdata/src).
	FixtureRoot string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool

	fnIndex   map[*types.Func]FuncSource
	fnIndexed int
}

// FuncSource locates the declaration of a function within a loaded package.
type FuncSource struct {
	Pkg  *Package
	Decl *ast.FuncDecl
}

// NewProgram builds an empty Program rooted at the module containing
// moduleDir (the directory holding go.mod).
func NewProgram(moduleDir string) (*Program, error) {
	abs, err := filepath.Abs(moduleDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	// The source importer must never fall into cgo-only file sets: the
	// lint driver has no C toolchain contract. Every stdlib package this
	// module pulls in has a pure-Go configuration.
	build.Default.CgoEnabled = false
	p := &Program{
		Fset:       token.NewFileSet(),
		ModulePath: modPath,
		ModuleDir:  abs,
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}
	p.std = importer.ForCompiler(p.Fset, "source", nil)
	return p, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("%s: no module directive", gomod)
}

// Import implements types.Importer for the type-checker: module and fixture
// paths load recursively through this Program; everything else is standard
// library.
func (p *Program) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := p.dirFor(path); ok {
		pkg, err := p.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return p.std.Import(path)
}

// dirFor resolves an import path to a source directory for module and
// fixture packages. Standard-library paths resolve to ("", false).
func (p *Program) dirFor(path string) (string, bool) {
	if path == p.ModulePath {
		return p.ModuleDir, true
	}
	if rest, ok := strings.CutPrefix(path, p.ModulePath+"/"); ok {
		return filepath.Join(p.ModuleDir, filepath.FromSlash(rest)), true
	}
	if p.FixtureRoot != "" {
		dir := filepath.Join(p.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	return "", false
}

// Load type-checks the package at the given import path (module, fixture,
// or already-cached) and returns it.
func (p *Program) Load(path string) (*Package, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := p.dirFor(path)
	if !ok {
		return nil, fmt.Errorf("%s: not a module or fixture package", path)
	}
	return p.load(path, dir)
}

func (p *Program) load(path, dir string) (*Package, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	if p.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	p.loading[path] = true
	defer delete(p.loading, path)

	files, name, err := p.parseDir(dir)
	if err != nil {
		return nil, err
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: p,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, err := conf.Check(path, p.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("typecheck %s: %v", path, typeErrs[0])
	}
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %v", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Name:  name,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	p.pkgs[path] = pkg
	return pkg, nil
}

// parseDir parses every non-test Go file in dir that the current build
// configuration selects: files excluded by a //go:build constraint or a
// GOOS/GOARCH filename suffix are skipped, exactly as the go tool would
// skip them, so the analyzers never see (and never type-check) code that
// cannot be part of this build.
func (p *Program) parseDir(dir string) ([]*ast.File, string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, "", err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") ||
			strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_") {
			continue
		}
		if match, err := build.Default.MatchFile(dir, n); err != nil || !match {
			continue
		}
		names = append(names, n)
	}
	if len(names) == 0 {
		return nil, "", fmt.Errorf("%s: no Go files", dir)
	}
	sort.Strings(names)
	var files []*ast.File
	pkgName := ""
	for _, n := range names {
		f, err := parser.ParseFile(p.Fset, filepath.Join(dir, n), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, "", err
		}
		if pkgName == "" {
			pkgName = f.Name.Name
		} else if f.Name.Name != pkgName {
			return nil, "", fmt.Errorf("%s: mixed packages %s and %s", dir, pkgName, f.Name.Name)
		}
		files = append(files, f)
	}
	return files, pkgName, nil
}

// LoadPatterns expands go-style package patterns ("./...",
// "./internal/...", "./cmd/sprwl-lint") relative to the module root and
// loads every matched package.
func (p *Program) LoadPatterns(patterns []string) ([]*Package, error) {
	seen := make(map[string]bool)
	var rels []string
	add := func(rel string) {
		rel = filepath.ToSlash(filepath.Clean(rel))
		if rel == ".." || strings.HasPrefix(rel, "../") {
			return
		}
		if !seen[rel] {
			seen[rel] = true
			rels = append(rels, rel)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" {
			pat = "."
		}
		if base, ok := strings.CutSuffix(pat, "..."); ok {
			base = strings.TrimSuffix(base, "/")
			if base == "" {
				base = "."
			}
			root := filepath.Join(p.ModuleDir, filepath.FromSlash(base))
			err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				n := d.Name()
				if path != root && (n == "testdata" || n == "vendor" ||
					strings.HasPrefix(n, ".") || strings.HasPrefix(n, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					rel, err := filepath.Rel(p.ModuleDir, path)
					if err != nil {
						return err
					}
					add(rel)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			add(pat)
		}
	}
	sort.Strings(rels)
	var pkgs []*Package
	for _, rel := range rels {
		path := p.ModulePath
		if rel != "." {
			path = p.ModulePath + "/" + rel
		}
		pkg, err := p.Load(path)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") &&
			!strings.HasPrefix(n, ".") && !strings.HasPrefix(n, "_") {
			return true
		}
	}
	return false
}

// Packages returns every package loaded so far, sorted by import path.
func (p *Program) Packages() []*Package {
	paths := make([]string, 0, len(p.pkgs))
	for path := range p.pkgs {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	pkgs := make([]*Package, len(paths))
	for i, path := range paths {
		pkgs[i] = p.pkgs[path]
	}
	return pkgs
}

// FuncSource returns the declaration of fn if fn was declared in a loaded
// package (module or fixture); standard-library functions have no source
// here. The index is rebuilt lazily as more packages load.
func (p *Program) FuncSource(fn *types.Func) (FuncSource, bool) {
	if p.fnIndex == nil || p.fnIndexed != len(p.pkgs) {
		p.fnIndex = make(map[*types.Func]FuncSource)
		for _, pkg := range p.pkgs {
			for _, f := range pkg.Files {
				for _, d := range f.Decls {
					fd, ok := d.(*ast.FuncDecl)
					if !ok {
						continue
					}
					if obj, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
						p.fnIndex[obj] = FuncSource{Pkg: pkg, Decl: fd}
					}
				}
			}
		}
		p.fnIndexed = len(p.pkgs)
	}
	src, ok := p.fnIndex[fn]
	return src, ok
}
