// Package driver is a dependency-free miniature of the golang.org/x/tools
// go/analysis framework, sized for this repository: Analyzer values hold a
// Run function over a type-checked package (Pass), a Program loads module
// packages offline (stdlib is type-checked from GOROOT source), and the
// shared //sprwl:allow(<analyzer>) suppression directive is implemented
// once here for every analyzer.
//
// The repository's concurrency and hot-path invariants — flag-before-check
// fence ordering, idempotent transaction bodies, allocation-free emulation
// hot paths — are convention-enforced and survive refactoring only if they
// are machine-checked; this driver is what cmd/sprwl-lint and the
// analysistest golden suites run on.
package driver

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Analyzer is one static check: a name (used in diagnostics and in
// //sprwl:allow directives), documentation, and a Run function invoked once
// per package.
type Analyzer struct {
	// Name identifies the analyzer; it is the argument accepted by the
	// //sprwl:allow(...) suppression directive.
	Name string
	// Doc describes what the analyzer enforces and where the invariant
	// comes from.
	Doc string
	// Run reports diagnostics for one package through pass.Reportf.
	Run func(pass *Pass) error
}

// Diagnostic is one reported invariant violation.
type Diagnostic struct {
	Pos      token.Pos
	Message  string
	Analyzer *Analyzer
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package
	Fset     *token.FileSet

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (pass *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*pass.diags = append(*pass.diags, Diagnostic{
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Analyzer: pass.Analyzer,
	})
}

// Result is the outcome of a RunAnalyzers call.
type Result struct {
	// Diagnostics are the surviving (non-suppressed) findings, sorted by
	// position.
	Diagnostics []Diagnostic
	// Suppressed are findings silenced by an //sprwl:allow directive.
	Suppressed []Diagnostic
	// StaleAllows are //sprwl:allow directives in the analyzed packages
	// that silenced nothing in this run. A suppression is a standing claim
	// that a finding exists and is deliberate; once the finding is gone
	// (the code changed, or the analyzer learned the pattern) the
	// directive is debt and must be deleted — cmd/sprwl-lint treats these
	// as errors. Directives in dependency packages that were loaded but
	// not analyzed are not judged: their findings were never generated.
	StaleAllows []Allow
}

// Allow is one //sprwl:allow directive site.
type Allow struct {
	Pos   token.Pos
	Names []string
}

// RunAnalyzers runs every analyzer over every package, de-duplicates
// findings by position, applies //sprwl:allow suppression, and returns both
// surviving and suppressed diagnostics sorted by position.
func RunAnalyzers(prog *Program, pkgs []*Package, analyzers []*Analyzer) (Result, error) {
	var all []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, Fset: prog.Fset, diags: &all}
			if err := a.Run(pass); err != nil {
				return Result{}, fmt.Errorf("%s: %s: %v", a.Name, pkg.Path, err)
			}
		}
	}

	// Several passes can reach the same site (e.g. two packages' hot
	// paths both call one allocating helper); one finding per site is
	// enough.
	type key struct {
		a   *Analyzer
		pos token.Pos
	}
	seen := make(map[key]bool)
	var deduped []Diagnostic
	for _, d := range all {
		k := key{d.Analyzer, d.Pos}
		if !seen[k] {
			seen[k] = true
			deduped = append(deduped, d)
		}
	}

	allows := collectAllows(prog)
	var res Result
	for _, d := range deduped {
		if allows.covers(prog.Fset.Position(d.Pos), d.Analyzer.Name) {
			res.Suppressed = append(res.Suppressed, d)
		} else {
			res.Diagnostics = append(res.Diagnostics, d)
		}
	}
	res.StaleAllows = allows.stale(prog.Fset, pkgs)
	sortDiags(prog.Fset, res.Diagnostics)
	sortDiags(prog.Fset, res.Suppressed)
	return res, nil
}

func sortDiags(fset *token.FileSet, ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		pi, pj := fset.Position(ds[i].Pos), fset.Position(ds[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return ds[i].Analyzer.Name < ds[j].Analyzer.Name
	})
}

// allowSite is one //sprwl:allow directive, with a usage mark so unused
// directives can be reported as stale.
type allowSite struct {
	pos   token.Pos
	names []string
	used  bool
}

// allowIndex maps filename → line → the directives on that line.
type allowIndex map[string]map[int][]*allowSite

// covers reports whether a diagnostic at p is silenced: an
// //sprwl:allow(name) directive on the same line or on the line
// immediately above suppresses analyzer name ("all" suppresses every
// analyzer). A directive that silences a finding is marked used.
func (ai allowIndex) covers(p token.Position, name string) bool {
	lines := ai[p.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{p.Line, p.Line - 1} {
		for _, s := range lines[l] {
			for _, n := range s.names {
				if n == name || n == "all" {
					s.used = true
					return true
				}
			}
		}
	}
	return false
}

// stale returns the directives in the analyzed packages that silenced
// nothing. Call after every diagnostic has been run through covers.
func (ai allowIndex) stale(fset *token.FileSet, pkgs []*Package) []Allow {
	analyzed := make(map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			analyzed[fset.Position(f.Pos()).Filename] = true
		}
	}
	var out []Allow
	for file, lines := range ai {
		if !analyzed[file] {
			continue
		}
		for _, sites := range lines {
			for _, s := range sites {
				if !s.used {
					out = append(out, Allow{Pos: s.pos, Names: s.names})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := fset.Position(out[i].Pos), fset.Position(out[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		return pi.Line < pj.Line
	})
	return out
}

// collectAllows scans every loaded file (including dependencies, so a
// suppression next to an allocating helper covers findings reported from
// any hot path that reaches it).
func collectAllows(prog *Program) allowIndex {
	ai := make(allowIndex)
	for _, pkg := range prog.Packages() {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					names := parseAllow(c.Text)
					if len(names) == 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					lines := ai[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*allowSite)
						ai[pos.Filename] = lines
					}
					lines[pos.Line] = append(lines[pos.Line], &allowSite{pos: c.Pos(), names: names})
				}
			}
		}
	}
	return ai
}

// parseAllow extracts the analyzer names from an //sprwl:allow(a, b)
// comment; text after the closing parenthesis is the human justification
// and is ignored here.
func parseAllow(text string) []string {
	rest, ok := strings.CutPrefix(text, "//sprwl:allow(")
	if !ok {
		return nil
	}
	inner, _, ok := strings.Cut(rest, ")")
	if !ok {
		return nil
	}
	var names []string
	for _, n := range strings.Split(inner, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// HasDirective reports whether a declaration's doc comment group contains
// the //sprwl:<directive> marker line (e.g. HasDirective(fd.Doc,
// "hotpath")). Like //go: directives, the marker must be its own comment
// line attached to the declaration.
func HasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	marker := "//sprwl:" + directive
	for _, c := range doc.List {
		if c.Text == marker || strings.HasPrefix(c.Text, marker+" ") {
			return true
		}
	}
	return false
}
