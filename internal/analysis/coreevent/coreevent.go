// Package coreevent classifies call expressions into SpRWL core-protocol
// events. The classifier is structural — it matches the address-family
// helper names (stateAddr, clockWAddr, clockRAddr, waitingForAddr,
// readerVerAddr, glVer), the env method names (Load/Store), the reader
// flag/retract helpers, and invocations of the rwlock.Body type — so it
// works both on internal/core itself and on reduced analyzer test
// fixtures that mirror its shapes.
//
// It is shared by the straight-line releaseorder analyzer and the
// flow-sensitive fenceorder analyzer: both must agree on what counts as a
// flag, a retract, an advertise, or a registration, or the two checkers
// would drift apart and disagree about the same source line.
package coreevent

import (
	"go/ast"
	"go/token"
	"go/types"

	"sprwl/internal/analysis/astq"
)

// Kind discriminates the protocol event classes.
type Kind int

const (
	// Store is an env Store to a protocol word.
	Store Kind = iota
	// Load is an env Load of a protocol word.
	Load
	// Flag publishes the reader (flagReader / arriveIn /
	// flagReaderAndSyncGL).
	Flag
	// Retract withdraws the reader's publication (unflagReader /
	// departFrom).
	Retract
	// Body invokes an rwlock.Body critical-section value.
	Body
	// Atomic is a package-level sync/atomic call (forbidden in core).
	Atomic
	// Wake signals parked waiters on a protocol word (Hub.Wake with the
	// word's address, or the fallback lock's zero-argument gl.Wake).
	Wake
	// Pause is one spin-then-park step of a park.Waiter on a protocol
	// word (Waiter.Pause with the word's address first).
	Pause
)

// Family identifies which protocol word an env access touches.
type Family string

const (
	FamState     Family = "state"
	FamClockW    Family = "clockW"
	FamClockR    Family = "clockR"
	FamWaiting   Family = "waitingFor"
	FamReaderVer Family = "readerVer"
	FamGLVer     Family = "glVer"
	// FamGL is the fallback lock's own word (gl.Addr / gl.IsLocked /
	// gl.Wake), the address §3.3 readers park on.
	FamGL    Family = "gl"
	FamOther Family = ""
)

var addrFamilies = map[string]Family{
	"stateAddr":      FamState,
	"clockWAddr":     FamClockW,
	"clockRAddr":     FamClockR,
	"waitingForAddr": FamWaiting,
	"readerVerAddr":  FamReaderVer,
}

// Val classifies the stored value where the ordering rules care about it.
type Val int

const (
	ValOther Val = iota
	ValZero
	ValStateWriter
	ValStateEmpty
)

// Event is one classified protocol event.
type Event struct {
	Kind Kind
	Fam  Family
	Val  Val
	Pos  token.Pos
	// Name is the callee name, for diagnostics.
	Name string
}

// Resolver extends the structural address recognition with context the
// classifier cannot see on its own — typically local aliases of an
// address-helper call (`a := l.stateAddr(i)` … `l.e.Load(a)`). It returns
// FamOther for expressions it does not recognize.
type Resolver func(ast.Expr) Family

// Classify maps a call expression to a protocol event, if it is one.
func Classify(info *types.Info, call *ast.CallExpr) (Event, bool) {
	return ClassifyResolved(info, call, nil)
}

// ClassifyResolved is Classify with an optional address resolver consulted
// when the structural family match fails.
func ClassifyResolved(info *types.Info, call *ast.CallExpr, resolve Resolver) (Event, bool) {
	fam := func(e ast.Expr) Family {
		f := AddrFamily(e)
		if f == FamOther && resolve != nil {
			f = resolve(e)
		}
		return f
	}
	name := astq.CalleeName(call)
	switch name {
	case "flagReader", "arriveIn", "flagReaderAndSyncGL":
		return Event{Kind: Flag, Pos: call.Pos(), Name: name}, true
	case "unflagReader", "departFrom":
		return Event{Kind: Retract, Pos: call.Pos(), Name: name}, true
	case "Store":
		if len(call.Args) == 2 {
			if f := fam(call.Args[0]); f != FamOther {
				return Event{Kind: Store, Fam: f, Val: ClassifyValue(call.Args[1]), Pos: call.Pos(), Name: name}, true
			}
		}
	case "Load":
		if len(call.Args) == 1 {
			if f := fam(call.Args[0]); f != FamOther {
				return Event{Kind: Load, Fam: f, Pos: call.Pos(), Name: name}, true
			}
		}
	case "IsLocked":
		// The fallback lock's held-check is the gl-word analogue of a
		// protocol Load: it is what check-before-park loops re-check.
		if len(call.Args) == 0 && isGLReceiver(call) {
			return Event{Kind: Load, Fam: FamGL, Pos: call.Pos(), Name: name}, true
		}
	case "Wake":
		if len(call.Args) == 1 {
			if f := fam(call.Args[0]); f != FamOther {
				return Event{Kind: Wake, Fam: f, Pos: call.Pos(), Name: name}, true
			}
		}
		if len(call.Args) == 0 && isGLReceiver(call) {
			return Event{Kind: Wake, Fam: FamGL, Pos: call.Pos(), Name: name}, true
		}
	case "Pause":
		if len(call.Args) == 3 {
			if f := fam(call.Args[0]); f != FamOther {
				return Event{Kind: Pause, Fam: f, Pos: call.Pos(), Name: name}, true
			}
		}
	}
	if fn := astq.CalleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		// Package-level functions only: typed-atomic methods
		// (atomic.Uint64.Add) have a receiver and operate on auxiliary
		// Go-side state, which is allowed.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return Event{Kind: Atomic, Pos: call.Pos(), Name: "atomic." + fn.Name()}, true
		}
	}
	if t := astq.TypeOf(info, call.Fun); t != nil && IsBodyType(t) {
		return Event{Kind: Body, Pos: call.Pos(), Name: "body"}, true
	}
	return Event{}, false
}

// AddrFamily recognizes the address expression of an env access: a call to
// one of the address-family helpers, the fallback lock's gl.Addr(), or the
// glVer field/variable.
func AddrFamily(e ast.Expr) Family {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fam, ok := addrFamilies[astq.CalleeName(e)]; ok {
			return fam
		}
		if astq.CalleeName(e) == "Addr" && isGLReceiver(e) {
			return FamGL
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "glVer" {
			return FamGLVer
		}
	case *ast.Ident:
		if e.Name == "glVer" {
			return FamGLVer
		}
	}
	return FamOther
}

// isGLReceiver reports whether the call's method receiver expression is the
// fallback lock field/variable `gl` (l.gl.Addr(), l.gl.IsLocked(),
// l.gl.Wake()), matched structurally like the addr-family helpers.
func isGLReceiver(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch recv := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		return recv.Sel.Name == "gl"
	case *ast.Ident:
		return recv.Name == "gl"
	}
	return false
}

// ClassifyValue recognizes the stored values the ordering rules depend on.
func ClassifyValue(e ast.Expr) Val {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		switch e.Name {
		case "stateWriter":
			return ValStateWriter
		case "stateEmpty":
			return ValStateEmpty
		}
	case *ast.BasicLit:
		if e.Kind == token.INT && e.Value == "0" {
			return ValZero
		}
	}
	return ValOther
}

// IsBodyType reports whether t is the rwlock critical-section body type.
func IsBodyType(t types.Type) bool {
	return astq.IsNamed(t, "internal/rwlock", "Body")
}

// IsRetractEvent reports whether ev withdraws the reader's publication: an
// explicit Retract call or a stateEmpty store to the state word.
func IsRetractEvent(ev Event) bool {
	return ev.Kind == Retract || ev.Kind == Store && ev.Fam == FamState && ev.Val == ValStateEmpty
}
