package spanleak_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/spanleak"
)

func TestSpanLeak(t *testing.T) {
	analysistest.Run(t, "testdata", spanleak.Analyzer, "spanpair")
}
