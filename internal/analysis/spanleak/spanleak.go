// Package spanleak checks acquire/release pairing over every exit path:
// each lock acquisition — a two-phase span call, a baseline Lock, or an
// obligation imported from a net-acquiring callee like locktable's
// acquireMarked — must be matched by a release of the same operand (and
// compatible mode) on EVERY path from the acquisition to function exit,
// including early returns, panic unwinds, and labelled jumps out of the
// critical section. The mirror rule rejects releases no path can still be
// holding (double release, release before acquire).
//
//	S1  every unguarded acquire has a covering release ahead on all paths
//	    to exit. Releases count where they run: deferred releases anchor
//	    at their registration statement (the deferred block runs on every
//	    exit reached after registration, panics included), and releases
//	    inside a loop also anchor at the loop head, which every path
//	    through the loop region crosses — the descending release loop of
//	    ReadAll discharges the ascending acquire loop even though the
//	    zero-trip edge skips both bodies.
//	S2  no release runs at a point where no path may still hold the
//	    operand.
//
// Two exemptions keep the check aligned with the repository's helper
// protocol: a function whose own body acquires a key but never mentions a
// covering release is a deliberate net-acquire helper (acquireMarked) —
// its obligation is exported through its summary and re-checked, as a
// translated acquire, at every caller; and a mirror net-release helper
// (releaseMarked) is exempt from S2 where no covering acquire exists.
// Packages core, park, and locks are lock implementations and out of
// scope; their call surface is checked in client code.
package spanleak

import (
	"go/ast"

	"sprwl/internal/analysis/dataflow"
	"sprwl/internal/analysis/driver"
	"sprwl/internal/analysis/summary"
)

// Analyzer is the spanleak check.
var Analyzer = &driver.Analyzer{
	Name: "spanleak",
	Doc:  "every lock acquisition must be released on all exit paths (early returns, panics, labelled jumps), and no release may run where nothing is held",
	Run:  run,
}

// implPkgs mirror lockorder's exemption: lock implementations are the
// protocols themselves.
var implPkgs = map[string]bool{"core": true, "park": true, "locks": true}

func run(pass *driver.Pass) error {
	if implPkgs[pass.Pkg.Name] {
		return nil
	}
	s := summary.For(pass.Prog)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			check(pass, s.Analyze(pass.Pkg, fd))
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				check(pass, s.AnalyzeLit(pass.Pkg, lit))
			}
			return true
		})
	}
	return nil
}

// bit layout: two bits per pairable key, read then write. A ModeAny
// release (a merged summary effect) discharges both.
func bits(keyIdx int, mode summary.Mode) []int {
	switch mode {
	case summary.ModeRead:
		return []int{2 * keyIdx}
	case summary.ModeWrite:
		return []int{2*keyIdx + 1}
	}
	return []int{2 * keyIdx, 2*keyIdx + 1}
}

func check(pass *driver.Pass, fa *summary.FuncAnalysis) {
	if len(fa.Keys) == 0 {
		return
	}

	// Gen sites for the must-backward release-ahead flow. The release
	// event's own node only runs where it runs; the registration statement
	// of a deferred release and the head of an enclosing loop are the
	// anchors that survive the paths the raw node misses (panic unwind,
	// zero-trip edge).
	genAt := make(map[ast.Node][]int)
	// hasRelease/hasAcquire record, per universe key, whether the function
	// itself mentions a covering release/acquire — the net-helper
	// exemptions of S1 and S2.
	hasRelease := make([]bool, len(fa.Keys))
	hasAcquire := make([]bool, len(fa.Keys))
	for i := range fa.Events {
		ev := &fa.Events[i]
		if !ev.Op.Key.Pairable() {
			continue
		}
		keyIdx, ok := fa.KeyBit[ev.Op.Key]
		if !ok {
			continue
		}
		switch ev.Op.Kind {
		case summary.KindRelease:
			b := bits(keyIdx, ev.Op.Mode)
			genAt[ev.Node] = append(genAt[ev.Node], b...)
			if ev.Defer != nil {
				genAt[ev.Defer] = append(genAt[ev.Defer], b...)
			}
			if ev.Loop != nil {
				if a := fa.LoopAnchor[ev.Loop]; a != nil {
					genAt[a] = append(genAt[a], b...)
				}
			}
			for j, k := range fa.Keys {
				if covers(ev.Op.Key, k) {
					hasRelease[j] = true
				}
			}
		case summary.KindAcquire:
			for j, k := range fa.Keys {
				if covers(ev.Op.Key, k) {
					hasAcquire[j] = true
				}
			}
		}
	}

	releaseAhead := &dataflow.Flow{
		Graph: fa.Graph,
		N:     2 * len(fa.Keys),
		Mode:  dataflow.MustBackward,
		Events: func(n ast.Node, guarded bool) (gen, kill []int) {
			return genAt[n], nil
		},
	}
	ahead := releaseAhead.Solve()

	// S1: replay backward, checking each acquire against the fact holding
	// immediately after it.
	for _, blk := range fa.Graph.Blocks {
		releaseAhead.ReplayBackward(blk, ahead.Out[blk], func(n ast.Node, guarded bool, after dataflow.Bits) {
			for _, i := range fa.At[n] {
				ev := &fa.Events[i]
				if ev.Op.Kind != summary.KindAcquire || ev.Guarded || ev.Defer != nil {
					continue
				}
				k := ev.Op.Key
				keyIdx, ok := fa.KeyBit[k]
				if !ok {
					continue
				}
				// A direct acquire with no covering release anywhere in
				// the function is a net-acquire helper: the obligation
				// transfers to callers through the summary. A translated
				// acquire IS that imported obligation — always checked.
				if ev.Op.Via == "" && !hasRelease[keyIdx] {
					continue
				}
				if releasedAhead(fa, after, k, ev.Op.Mode) {
					continue
				}
				pass.Reportf(ev.Op.Pos,
					"span protocol: %s is acquired%s here but not released on every path to exit; an early return, panic, or jump out of the critical section leaks it (S1)%s",
					k.String(), modeNoun(ev.Op.Mode), via(ev.Op.Via))
			}
		})
	}

	// S2: replay the may-forward held solution; a release where no path
	// may still hold a covering operand pairs with nothing.
	for _, blk := range fa.Graph.Blocks {
		fa.HeldFlow.ReplayForward(blk, fa.Held.In[blk], func(n ast.Node, guarded bool, before dataflow.Bits) {
			for _, i := range fa.At[n] {
				ev := &fa.Events[i]
				if ev.Op.Kind != summary.KindRelease || ev.Guarded || ev.Defer != nil {
					continue
				}
				k := ev.Op.Key
				keyIdx, ok := fa.KeyBit[k]
				if !ok || !hasAcquire[keyIdx] {
					continue
				}
				held := false
				for bit, k2 := range fa.Keys {
					if before.Has(bit) && covers(k, k2) {
						held = true
						break
					}
				}
				if !held {
					pass.Reportf(ev.Op.Pos,
						"span protocol: %s is released here but no path to this point still holds it (double release, or release without acquire) (S2)%s",
						k.String(), via(ev.Op.Via))
				}
			}
		})
	}
}

// releasedAhead reports whether some covering key's release bits satisfy
// an acquire of key k in mode m.
func releasedAhead(fa *summary.FuncAnalysis, after dataflow.Bits, k summary.Key, m summary.Mode) bool {
	for j, k2 := range fa.Keys {
		if !k2.Covers(k) {
			continue
		}
		switch m {
		case summary.ModeRead:
			if after.Has(2 * j) {
				return true
			}
		case summary.ModeWrite:
			if after.Has(2*j + 1) {
				return true
			}
		default:
			if after.Has(2*j) || after.Has(2*j+1) {
				return true
			}
		}
	}
	return false
}

// covers is the symmetric "same lock" relation: either key generalizes the
// other (a release loop over h.spans[s] and an acquire of h.spans[3] name
// the same operand family member).
func covers(a, b summary.Key) bool {
	return a.Covers(b) || b.Covers(a)
}

func modeNoun(m summary.Mode) string {
	switch m {
	case summary.ModeRead:
		return " for read"
	case summary.ModeWrite:
		return " for write"
	}
	return ""
}

func via(v string) string {
	if v == "" {
		return ""
	}
	return " (via " + v + ")"
}
