// Package spanpair is the spanleak golden fixture: acquire/release
// pairing across early returns, panic unwinds, deferred releases, loop
// spans, labelled jumps, net-acquire helpers, and mode mismatches.
package spanpair

type mutex struct{}

func (*mutex) Lock()   {}
func (*mutex) Unlock() {}

type span struct{}

func (span) AcquireRead(csID int)  {}
func (span) ReleaseRead(csID int)  {}
func (span) AcquireWrite(csID int) {}
func (span) ReleaseWrite(csID int) {}

type handle struct {
	spans []span
}

// --- S1: release on every exit path ---

func earlyReturn(m *mutex, fail bool) {
	m.Lock() // want `not released on every path to exit`
	if fail {
		return
	}
	m.Unlock()
}

func panicPath(m *mutex, n int) {
	m.Lock() // want `not released on every path to exit`
	if n < 0 {
		panic("negative")
	}
	m.Unlock()
}

// deferredRelease is clean: the deferred block runs on every exit reached
// after registration, panics included.
func deferredRelease(m *mutex, n int) {
	m.Lock()
	defer m.Unlock()
	if n < 0 {
		panic("negative")
	}
}

// conditionalDefer leaks: the path that skips the registration also skips
// the release.
func conditionalDefer(m *mutex, c bool) {
	m.Lock() // want `not released on every path to exit`
	if c {
		defer m.Unlock()
	}
}

// loopSpan is the conforming ReadAll shape: the release loop's head is on
// every path out, so the ascending acquires are discharged even though the
// zero-trip edge skips both loop bodies.
func loopSpan(h *handle) {
	for i := 0; i < len(h.spans); i++ {
		h.spans[i].AcquireRead(0)
	}
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].ReleaseRead(0)
	}
}

// labelledEscape leaks: break jumps out of the loop without crossing the
// release.
func labelledEscape(h *handle, stop int) {
scan:
	for i := range h.spans {
		h.spans[i].AcquireRead(0) // want `not released on every path to exit`
		if i == stop {
			break scan
		}
		h.spans[i].ReleaseRead(0)
	}
}

// --- net-acquire/net-release helpers: the locktable protocol ---

// acquireAll never releases: a deliberate net-acquire helper, exempt here;
// its obligation is re-checked at every caller.
func acquireAll(h *handle) {
	for i := 0; i < len(h.spans); i++ {
		h.spans[i].AcquireRead(0)
	}
}

// releaseAll is the mirror net-release helper, exempt from S2.
func releaseAll(h *handle) {
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].ReleaseRead(0)
	}
}

// pairedCaller discharges the imported obligation: clean.
func pairedCaller(h *handle) {
	acquireAll(h)
	releaseAll(h)
}

// leakyCaller imports acquireAll's obligation and never discharges it.
func leakyCaller(h *handle) {
	acquireAll(h) // want `not released on every path to exit.*\(via acquireAll\)`
}

// --- mode pairing ---

func modeMismatch(s span) {
	s.AcquireWrite(0) // want `acquired for write here but not released`
	s.ReleaseRead(0)
}

// --- S2: no release where nothing may be held ---

func doubleRelease(m *mutex) {
	m.Lock()
	m.Unlock()
	m.Unlock() // want `released here but no path to this point still holds it`
}

// allowedLeak carries the suppression directive: the reversed probe is
// deliberate, nothing is reported, and the directive is consumed.
func allowedLeak(m *mutex, fail bool) {
	//sprwl:allow(spanleak) deliberate leak probe for the golden suite
	m.Lock()
	if fail {
		return
	}
	m.Unlock()
}
