package cfg

import (
	"go/ast"
	"go/token"
)

// Walk visits n and its sub-nodes in evaluation order, tracking whether
// each visited node is only conditionally evaluated on the paths through
// its block. It is the traversal every CFG-based analysis must use in
// place of ast.Inspect, because it encodes the execution model the graph
// assumes:
//
//   - Function literal bodies are NOT descended — a literal is a separate
//     function — except for literals invoked at the point they appear
//     (immediately-invoked expressions and the calls in the synthetic
//     deferred block), whose bodies run on the enclosing function's paths.
//     Statements inside such a body are visited with guarded=true, since
//     their internal control flow is not lowered into blocks.
//   - The right operand of && and || is visited with guarded=true: a
//     short-circuit may skip it. (Branch conditions are decomposed by the
//     builder, so this only applies to &&/|| in value positions.)
//   - defer and go statements visit only their argument expressions
//     (evaluated at the statement); the deferred call body is represented
//     in the graph's deferred block, and a goroutine body is not part of
//     this function's control flow at all.
//   - A range statement node stands for the per-iteration step: only the
//     range expression and the key/value targets are visited.
//
// Must-style analyses treat guarded nodes as not generating facts; may-
// style analyses treat them as not killing facts. f returning false stops
// descent below the visited node.
func Walk(n ast.Node, guarded bool, f func(n ast.Node, guarded bool) bool) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.FuncLit:
		f(x, guarded)
		return
	case *ast.BinaryExpr:
		if x.Op == token.LAND || x.Op == token.LOR {
			if !f(x, guarded) {
				return
			}
			Walk(x.X, guarded, f)
			Walk(x.Y, true, f)
			return
		}
	case *ast.CallExpr:
		if !f(x, guarded) {
			return
		}
		if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
			// Invoked at the point it appears: the body executes here,
			// but its internal branches are not lowered, so everything
			// inside is conditional.
			Walk(lit.Body, true, f)
		} else {
			Walk(x.Fun, guarded, f)
		}
		for _, a := range x.Args {
			Walk(a, guarded, f)
		}
		return
	case *ast.DeferStmt:
		if !f(x, guarded) {
			return
		}
		walkCallOperands(x.Call, guarded, f)
		return
	case *ast.GoStmt:
		if !f(x, guarded) {
			return
		}
		walkCallOperands(x.Call, guarded, f)
		return
	case *ast.RangeStmt:
		if !f(x, guarded) {
			return
		}
		Walk(x.X, guarded, f)
		Walk(x.Key, guarded, f)
		Walk(x.Value, guarded, f)
		return
	}
	if !f(n, guarded) {
		return
	}
	childGuard := guarded || hasInternalFlow(n)
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil || m == n {
			return m == n
		}
		Walk(m, childGuard, f)
		return false
	})
}

// walkCallOperands visits the operands a defer/go statement evaluates
// eagerly: the arguments, and the function expression unless it is a
// literal (whose body does not run here).
func walkCallOperands(call *ast.CallExpr, guarded bool, f func(ast.Node, bool) bool) {
	if _, ok := ast.Unparen(call.Fun).(*ast.FuncLit); !ok {
		Walk(call.Fun, guarded, f)
	}
	for _, a := range call.Args {
		Walk(a, guarded, f)
	}
}

// hasInternalFlow reports whether a node carries control flow the builder
// did not lower (it only occurs inside invoked-literal bodies, which Walk
// traverses flat).
func hasInternalFlow(n ast.Node) bool {
	switch n.(type) {
	case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
		*ast.TypeSwitchStmt, *ast.SelectStmt, *ast.CaseClause, *ast.CommClause:
		return true
	}
	return false
}
