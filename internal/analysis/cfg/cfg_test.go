package cfg

import (
	"bytes"
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// build parses a function body and constructs its CFG. The source is the
// body's statement list, without braces.
func build(t *testing.T, body string, opts Options) (*token.FileSet, *Graph) {
	t.Helper()
	src := "package p\n\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fn := file.Decls[len(file.Decls)-1].(*ast.FuncDecl)
	return fset, New(fn.Body, opts)
}

// render gives a compact, deterministic description of the graph for exact
// structural comparisons: one line per non-empty block.
func render(fset *token.FileSet, g *Graph) string {
	var sb strings.Builder
	for _, b := range g.Blocks {
		if len(b.Nodes) == 0 && b != g.Entry && b != g.Exit {
			// Skip empty join blocks; their edges still show through succs
			// of rendered blocks only if they lead somewhere, so include
			// them when they have both preds and succs.
			if len(b.Preds) == 0 || len(b.Succs) == 0 {
				continue
			}
		}
		fmt.Fprintf(&sb, "b%d", b.Index)
		switch b {
		case g.Entry:
			sb.WriteString("(entry)")
		case g.Exit:
			sb.WriteString("(exit)")
		}
		if b.Deferred {
			sb.WriteString("(deferred)")
		}
		sb.WriteString(":")
		for _, n := range b.Nodes {
			sb.WriteString(" [" + nodeStr(fset, n) + "]")
		}
		if len(b.Succs) > 0 {
			sb.WriteString(" ->")
			for _, s := range b.Succs {
				fmt.Fprintf(&sb, " b%d", s.Index)
			}
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func nodeStr(fset *token.FileSet, n ast.Node) string {
	switch x := n.(type) {
	case *ast.RangeStmt:
		return "range " + nodeStr(fset, x.X)
	case *ast.DeferStmt:
		return "defer " + nodeStr(fset, x.Call)
	}
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, n); err != nil {
		return fmt.Sprintf("<%T>", n)
	}
	return strings.Join(strings.Fields(buf.String()), " ")
}

// blockOf returns the unique block whose rendered nodes contain want.
func blockOf(t *testing.T, fset *token.FileSet, g *Graph, want string) *Block {
	t.Helper()
	var found *Block
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if strings.Contains(nodeStr(fset, n), want) {
				if found != nil && found != b {
					t.Fatalf("%q appears in b%d and b%d", want, found.Index, b.Index)
				}
				found = b
			}
		}
	}
	if found == nil {
		t.Fatalf("no block contains %q in:\n%s", want, render(fset, g))
	}
	return found
}

// canAvoid reports whether some Entry→Exit path avoids block x.
func canAvoid(g *Graph, x *Block) bool {
	seen := make(map[*Block]bool)
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == x || seen[b] {
			return false
		}
		if b == g.Exit {
			return true
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(g.Entry)
}

// reaches reports whether a path from→to exists.
func reaches(from, to *Block) bool {
	seen := make(map[*Block]bool)
	var dfs func(b *Block) bool
	dfs = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if dfs(s) {
				return true
			}
		}
		return false
	}
	return dfs(from)
}

func TestIfElse(t *testing.T) {
	fset, g := build(t, `
	x := 1
	if x > 0 {
		a()
	} else {
		b()
	}
	c()
	`, Options{})
	cond := blockOf(t, fset, g, "x > 0")
	then := blockOf(t, fset, g, "a()")
	els := blockOf(t, fset, g, "b()")
	after := blockOf(t, fset, g, "c()")
	if len(cond.Succs) != 2 {
		t.Fatalf("cond succs = %d, want 2\n%s", len(cond.Succs), render(fset, g))
	}
	if !reaches(cond, then) || !reaches(cond, els) {
		t.Fatalf("cond does not branch to both arms\n%s", render(fset, g))
	}
	if !canAvoid(g, then) || !canAvoid(g, els) {
		t.Fatalf("branch arms should each be avoidable\n%s", render(fset, g))
	}
	if canAvoid(g, after) {
		t.Fatalf("join code should be on all paths\n%s", render(fset, g))
	}
}

func TestShortCircuitDecomposition(t *testing.T) {
	fset, g := build(t, `
	if a() && (b() || !c()) {
		d()
	}
	e()
	`, Options{})
	ba := blockOf(t, fset, g, "a()")
	bb := blockOf(t, fset, g, "b()")
	bc := blockOf(t, fset, g, "c()")
	bd := blockOf(t, fset, g, "d()")
	// a short-circuits past b and c entirely.
	if !canAvoid(g, bb) || !canAvoid(g, bc) {
		t.Fatalf("short-circuit operands must be avoidable\n%s", render(fset, g))
	}
	// b true skips c but can still reach d.
	if !reaches(bb, bd) || !reaches(bc, bd) {
		t.Fatalf("both operands should reach the then-arm\n%s", render(fset, g))
	}
	// each operand sits alone in its block.
	for _, b := range []*Block{ba, bb, bc} {
		if len(b.Nodes) != 1 {
			t.Fatalf("operand block b%d has %d nodes, want 1\n%s", b.Index, len(b.Nodes), render(fset, g))
		}
	}
	// c's block is only entered when b was false: its sole pred is b's block.
	if len(bc.Preds) != 1 || bc.Preds[0] != bb {
		t.Fatalf("c's preds = %v, want [b%d]\n%s", bc.Preds, bb.Index, render(fset, g))
	}
}

func TestForLoop(t *testing.T) {
	fset, g := build(t, `
	for i := 0; i < n; i++ {
		body()
	}
	after()
	`, Options{})
	head := blockOf(t, fset, g, "i < n")
	body := blockOf(t, fset, g, "body()")
	post := blockOf(t, fset, g, "i++")
	after := blockOf(t, fset, g, "after()")
	if !reaches(body, post) || !reaches(post, head) {
		t.Fatalf("missing back edge body→post→head\n%s", render(fset, g))
	}
	if !canAvoid(g, body) {
		t.Fatalf("zero-iteration path missing\n%s", render(fset, g))
	}
	if canAvoid(g, after) || canAvoid(g, head) {
		t.Fatalf("head and after are on all paths\n%s", render(fset, g))
	}
}

func TestInfiniteLoopWithBreak(t *testing.T) {
	fset, g := build(t, `
	for {
		if done() {
			break
		}
		step()
	}
	after()
	`, Options{})
	after := blockOf(t, fset, g, "after()")
	done := blockOf(t, fset, g, "done()")
	if !reaches(done, after) {
		t.Fatalf("break does not reach after\n%s", render(fset, g))
	}
	step := blockOf(t, fset, g, "step()")
	if !reaches(step, done) {
		t.Fatalf("loop back edge missing\n%s", render(fset, g))
	}
	if canAvoid(g, done) {
		t.Fatalf("the only exit is through done()\n%s", render(fset, g))
	}
}

func TestRangeZeroIterations(t *testing.T) {
	fset, g := build(t, `
	for _, v := range xs {
		use(v)
	}
	after()
	`, Options{})
	head := blockOf(t, fset, g, "range xs")
	body := blockOf(t, fset, g, "use(v)")
	if !canAvoid(g, body) {
		t.Fatalf("range body must be avoidable (zero iterations)\n%s", render(fset, g))
	}
	if !reaches(body, head) {
		t.Fatalf("range back edge missing\n%s", render(fset, g))
	}
}

func TestSwitchNoDefaultAndFallthrough(t *testing.T) {
	fset, g := build(t, `
	switch x {
	case 1:
		a()
		fallthrough
	case 2:
		b()
	}
	after()
	`, Options{})
	ba := blockOf(t, fset, g, "a()")
	bb := blockOf(t, fset, g, "b()")
	after := blockOf(t, fset, g, "after()")
	// fallthrough: a's block edges into b's block.
	if !contains(ba.Succs, bb) {
		t.Fatalf("fallthrough edge a→b missing\n%s", render(fset, g))
	}
	// no default: both arms avoidable.
	if !canAvoid(g, ba) || !canAvoid(g, bb) {
		t.Fatalf("case bodies must be avoidable without default\n%s", render(fset, g))
	}
	if canAvoid(g, after) {
		t.Fatalf("after is on all paths\n%s", render(fset, g))
	}
}

func TestSwitchWithDefaultCoversAllPaths(t *testing.T) {
	fset, g := build(t, `
	switch x {
	case 1:
		mark()
	default:
		mark()
	}
	after()
	`, Options{})
	head := blockOf(t, fset, g, "1") // the case expression lives in the head
	// With a default clause, the head must not edge straight past the arms:
	// every successor holds one of the arms' statements.
	for _, s := range head.Succs {
		if len(s.Nodes) == 0 {
			t.Fatalf("head has a fall-past edge despite default\n%s", render(fset, g))
		}
	}
}

func TestReturnAndUnreachable(t *testing.T) {
	fset, g := build(t, `
	if c() {
		return
	}
	live()
	return
	dead()
	`, Options{})
	dead := blockOf(t, fset, g, "dead()")
	if len(dead.Preds) != 0 {
		t.Fatalf("dead code should have no preds\n%s", render(fset, g))
	}
	ret := blockOf(t, fset, g, "live()")
	if !contains(ret.Succs, g.Exit) {
		t.Fatalf("return must edge to exit\n%s", render(fset, g))
	}
}

func TestPanicTerminates(t *testing.T) {
	fset, g := build(t, `
	if bad() {
		panic("x")
	}
	ok()
	`, Options{})
	p := blockOf(t, fset, g, `panic("x")`)
	if !contains(p.Succs, g.Exit) || len(p.Succs) != 1 {
		t.Fatalf("panic block must edge only to exit\n%s", render(fset, g))
	}
	okb := blockOf(t, fset, g, "ok()")
	if reaches(p, okb) {
		t.Fatalf("panic must not fall through\n%s", render(fset, g))
	}
}

func TestNoReturnOption(t *testing.T) {
	abortCalls := func(call *ast.CallExpr) bool {
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			return sel.Sel.Name == "Abort"
		}
		return false
	}
	fset, g := build(t, `
	if bad() {
		tx.Abort(1)
	}
	ok()
	`, Options{NoReturn: abortCalls})
	ab := blockOf(t, fset, g, "tx.Abort(1)")
	okb := blockOf(t, fset, g, "ok()")
	if reaches(ab, okb) {
		t.Fatalf("NoReturn call must not fall through\n%s", render(fset, g))
	}
	if !contains(ab.Succs, g.Exit) {
		t.Fatalf("NoReturn call must edge to exit\n%s", render(fset, g))
	}
}

func TestDeferRouting(t *testing.T) {
	fset, g := build(t, `
	defer first()
	if c() {
		return
	}
	defer second()
	work()
	`, Options{})
	var dblk *Block
	for _, b := range g.Blocks {
		if b.Deferred {
			dblk = b
		}
	}
	if dblk == nil {
		t.Fatalf("no deferred block\n%s", render(fset, g))
	}
	// Reverse registration order: second before first.
	if len(dblk.Nodes) != 2 ||
		!strings.Contains(nodeStr(fset, dblk.Nodes[0]), "second") ||
		!strings.Contains(nodeStr(fset, dblk.Nodes[1]), "first") {
		t.Fatalf("deferred block order wrong: %s", render(fset, g))
	}
	// Every path to Exit goes through the deferred block.
	if canAvoid(g, dblk) {
		t.Fatalf("exit path avoids the deferred block\n%s", render(fset, g))
	}
	if !contains(dblk.Succs, g.Exit) {
		t.Fatalf("deferred block must edge to exit\n%s", render(fset, g))
	}
}

func TestGotoBackward(t *testing.T) {
	fset, g := build(t, `
	i := 0
retry:
	i++
	if fail() {
		goto retry
	}
	done()
	`, Options{})
	inc := blockOf(t, fset, g, "i++")
	fail := blockOf(t, fset, g, "fail()")
	if !reaches(fail, inc) {
		t.Fatalf("goto back edge missing\n%s", render(fset, g))
	}
	if canAvoid(g, blockOf(t, fset, g, "done()")) {
		t.Fatalf("done is on all paths\n%s", render(fset, g))
	}
}

func TestSelect(t *testing.T) {
	fset, g := build(t, `
	select {
	case v := <-ch:
		use(v)
	case out <- 1:
		sent()
	}
	after()
	`, Options{})
	use := blockOf(t, fset, g, "use(v)")
	sent := blockOf(t, fset, g, "sent()")
	if !canAvoid(g, use) || !canAvoid(g, sent) {
		t.Fatalf("select arms must each be avoidable\n%s", render(fset, g))
	}
	if canAvoid(g, blockOf(t, fset, g, "after()")) {
		t.Fatalf("after is on all paths\n%s", render(fset, g))
	}
}

func TestEmptySelectBlocksForever(t *testing.T) {
	fset, g := build(t, `
	before()
	select {}
	never()
	`, Options{})
	before := blockOf(t, fset, g, "before()")
	if reaches(before, g.Exit) {
		t.Fatalf("empty select must cut all paths to exit\n%s", render(fset, g))
	}
}

func TestLabeledBreakContinue(t *testing.T) {
	fset, g := build(t, `
outer:
	for {
		for {
			if a() {
				continue outer
			}
			if b() {
				break outer
			}
			inner()
		}
	}
	after()
	`, Options{})
	ba := blockOf(t, fset, g, "a()")
	bb := blockOf(t, fset, g, "b()")
	after := blockOf(t, fset, g, "after()")
	if !reaches(bb, after) {
		t.Fatalf("break outer must reach after\n%s", render(fset, g))
	}
	// continue outer re-enters the outer loop and can come back to a().
	if !reaches(ba, ba) {
		t.Fatalf("continue outer must loop back\n%s", render(fset, g))
	}
	if canAvoid(g, bb) {
		t.Fatalf("only exit is break outer via b()\n%s", render(fset, g))
	}
}

func contains(bs []*Block, x *Block) bool {
	for _, b := range bs {
		if b == x {
			return true
		}
	}
	return false
}

// --- Walk ---

type visit struct {
	str     string
	guarded bool
}

func walkAll(fset *token.FileSet, g *Graph) []visit {
	var vs []visit
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			Walk(n, b.Deferred, func(m ast.Node, guarded bool) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					vs = append(vs, visit{nodeStr(fset, call), guarded})
				}
				return true
			})
		}
	}
	return vs
}

func findVisit(t *testing.T, vs []visit, substr string) visit {
	t.Helper()
	for _, v := range vs {
		if strings.Contains(v.str, substr) {
			return v
		}
	}
	t.Fatalf("no visit containing %q in %v", substr, vs)
	return visit{}
}

func TestWalkShortCircuitGuard(t *testing.T) {
	fset, g := build(t, `
	x := a() && b()
	y := c() || d()
	use(x, y)
	`, Options{})
	vs := walkAll(fset, g)
	if findVisit(t, vs, "a()").guarded || findVisit(t, vs, "c()").guarded {
		t.Fatal("left operands are unconditional")
	}
	if !findVisit(t, vs, "b()").guarded || !findVisit(t, vs, "d()").guarded {
		t.Fatal("right operands of &&/|| must be guarded")
	}
}

func TestWalkFuncLitBoundaries(t *testing.T) {
	fset, g := build(t, `
	f := func() { hidden() }
	func() { iife() }()
	go func() { spawned() }()
	use(f)
	`, Options{})
	vs := walkAll(fset, g)
	for _, v := range vs {
		if strings.Contains(v.str, "hidden") || strings.Contains(v.str, "spawned") {
			t.Fatalf("walk descended into a non-invoked literal: %v", v)
		}
	}
	var inner *visit
	for i := range vs {
		if vs[i].str == "iife()" {
			inner = &vs[i]
		}
	}
	if inner == nil {
		t.Fatalf("IIFE body call not visited: %v", vs)
	}
	if !inner.guarded {
		t.Fatal("IIFE body contents must be guarded (flow not lowered)")
	}
}

func TestWalkDeferredBlockGuard(t *testing.T) {
	fset, g := build(t, `
	defer cleanup(arg())
	work()
	`, Options{})
	vs := walkAll(fset, g)
	// arg() is evaluated at the defer statement: unconditional.
	if findVisit(t, vs, "arg()").guarded {
		t.Fatal("defer arguments evaluate at the statement, unguarded")
	}
	// The cleanup call appears twice: at the defer statement (operand walk
	// skips the call itself) and in the deferred block, where it is guarded.
	var deferredCleanup *visit
	for i := range vs {
		if strings.HasPrefix(vs[i].str, "cleanup(") && vs[i].guarded {
			deferredCleanup = &vs[i]
		}
	}
	if deferredCleanup == nil {
		t.Fatalf("deferred call must be visited guarded in the deferred block: %v", vs)
	}
	if findVisit(t, vs, "work()").guarded {
		t.Fatal("straight-line call must be unguarded")
	}
}

func TestWalkRangeVisitsOnlyHeader(t *testing.T) {
	fset, g := build(t, `
	for i := range seq() {
		bodycall(i)
	}
	`, Options{})
	head := blockOf(t, fset, g, "range seq")
	var saw []string
	for _, n := range head.Nodes {
		Walk(n, false, func(m ast.Node, _ bool) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				saw = append(saw, nodeStr(fset, c))
			}
			return true
		})
	}
	if len(saw) != 1 || saw[0] != "seq()" {
		t.Fatalf("range header walk saw %v, want only seq()", saw)
	}
}

func TestRenderSmoke(t *testing.T) {
	fset, g := build(t, `
	a()
	if c {
		b()
	}
	`, Options{})
	out := render(fset, g)
	for _, want := range []string{"(entry)", "(exit)", "[a()]", "[b()]", "[c]"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
