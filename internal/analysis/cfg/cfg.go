// Package cfg builds intraprocedural control-flow graphs from go/ast
// function bodies, sized for this repository's flow-sensitive analyzers
// (fenceorder, doomedread). The protocol invariants those analyzers check
// are happens-before properties — "the reader flag store precedes the
// first simulated-memory read on every path" — and statement order within
// one block (what the straight-line releaseorder analyzer inspects) cannot
// see orderings that differ across branches, loop back-edges, or early
// returns. A CFG can.
//
// Shape of the graph:
//
//   - Blocks hold statements and decomposed condition operands in
//     evaluation order. Branch conditions are decomposed through && and ||
//     (and parenthesization/negation), so an event inside a short-circuit
//     operand sits in its own block and is only "reached" on the paths
//     that actually evaluate it.
//   - for/range/switch/type-switch/select, labeled break/continue, goto
//     and fallthrough are lowered to explicit edges; return, panic and
//     calls matched by Options.NoReturn (e.g. tx.Abort, which unwinds the
//     attempt) edge to Exit and terminate their block.
//   - defer is modeled by routing every Exit edge through a synthetic
//     deferred block holding the deferred calls in reverse registration
//     order. The block carries Deferred=true: analyses must treat its
//     events as "may occur" (a defer registered on one branch does not run
//     on paths that skip the registration), which Walk surfaces through
//     its guarded flag.
//   - Function literals are separate functions: Walk never descends into a
//     FuncLit body, except for literals that are invoked at the point they
//     appear (immediately-invoked and deferred literals), whose bodies do
//     execute on the enclosing function's paths.
//
// Nodes unreachable after a terminator start a fresh block with no
// predecessors, so dataflow solvers naturally assign them the optimistic
// top element.
package cfg

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Block is one basic block: straight-line nodes plus out-edges.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, dense).
	Index int
	// Nodes holds statements and decomposed condition operands in
	// evaluation order. Sub-expression order within one node is the
	// traversal order of Walk.
	Nodes []ast.Node
	// Succs and Preds are the out- and in-edges.
	Succs []*Block
	Preds []*Block
	// Deferred marks the synthetic block holding deferred calls; its
	// nodes execute zero or one time each, so analyses must treat their
	// events as conditional.
	Deferred bool
}

// Graph is one function body's control-flow graph.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Options configures graph construction.
type Options struct {
	// NoReturn reports calls that never return control to the caller
	// (beyond the builtin panic, which is always recognized): transaction
	// aborts, log.Fatal-style helpers. Such calls edge to Exit.
	NoReturn func(call *ast.CallExpr) bool
	// Info, when non-nil, lets the builder recognize the panic builtin
	// through the type-checker rather than by name.
	Info *types.Info
}

type builder struct {
	g    *Graph
	opts Options
	cur  *Block // nil while the current point is unreachable

	defers []*ast.DeferStmt
	labels map[string]*labelTarget
	loops  []loopTarget // innermost last
}

type labelTarget struct {
	block *Block // target of goto
	brk   *Block // break LABEL target (set when the labeled stmt is a loop/switch)
	cont  *Block // continue LABEL target
}

type loopTarget struct {
	label string
	brk   *Block
	cont  *Block // nil for switch/select (break only)
}

// New builds the CFG of body.
func New(body *ast.BlockStmt, opts Options) *Graph {
	b := &builder{g: &Graph{}, opts: opts, labels: make(map[string]*labelTarget)}
	b.g.Entry = b.newBlock()
	b.g.Exit = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
	}
	b.routeDefers()
	for _, blk := range b.g.Blocks {
		for _, s := range blk.Succs {
			s.Preds = append(s.Preds, blk)
		}
	}
	return b.g
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

// emit appends a node to the current block, starting an unreachable block
// if control cannot reach this point (dead code after return/panic).
func (b *builder) emit(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// terminate routes the current block to Exit and marks the point
// unreachable.
func (b *builder) terminate() {
	if b.cur != nil {
		b.edge(b.cur, b.g.Exit)
		b.cur = nil
	}
}

// routeDefers inserts the synthetic deferred block in front of Exit.
func (b *builder) routeDefers() {
	if len(b.defers) == 0 {
		return
	}
	d := b.newBlock()
	d.Deferred = true
	for i := len(b.defers) - 1; i >= 0; i-- {
		d.Nodes = append(d.Nodes, b.defers[i].Call)
	}
	exit := b.g.Exit
	for _, blk := range b.g.Blocks {
		if blk == d {
			continue
		}
		for i, s := range blk.Succs {
			if s == exit {
				blk.Succs[i] = d
			}
		}
	}
	b.edge(d, exit)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *builder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.ExprStmt:
		b.emit(s.X)
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok && b.noReturn(call) {
			b.terminate()
		}
	case *ast.ReturnStmt:
		b.emit(s)
		b.terminate()
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, "")
	case *ast.RangeStmt:
		b.rangeStmt(s, "")
	case *ast.SwitchStmt:
		b.switchStmt(s, "")
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, "")
	case *ast.SelectStmt:
		b.selectStmt(s, "")
	case *ast.DeferStmt:
		// Argument evaluation happens here; the call itself runs in the
		// synthetic deferred block before Exit.
		b.emit(s)
		b.defers = append(b.defers, s)
	case *ast.GoStmt:
		// Arguments are evaluated here; the goroutine body is not part
		// of this function's control flow.
		b.emit(s)
	case *ast.EmptyStmt:
	default:
		// Assign, IncDec, Decl, Send: straight-line.
		b.emit(s)
	}
}

func (b *builder) noReturn(call *ast.CallExpr) bool {
	if b.opts.Info != nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if bi, ok := b.opts.Info.Uses[id].(*types.Builtin); ok && bi.Name() == "panic" {
				return true
			}
		}
	} else if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		return true
	}
	return b.opts.NoReturn != nil && b.opts.NoReturn(call)
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.emit(s)
	switch s.Tok {
	case token.BREAK:
		if t := b.branchTarget(s.Label, true); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.CONTINUE:
		if t := b.branchTarget(s.Label, false); t != nil {
			b.edge(b.cur, t)
		}
		b.cur = nil
	case token.GOTO:
		if s.Label != nil {
			b.edge(b.cur, b.labelBlock(s.Label.Name))
		}
		b.cur = nil
	case token.FALLTHROUGH:
		// Handled by switchStmt through fallEdge; nothing to do here
		// (the builder links clause i to clause i+1's body).
	}
}

// branchTarget resolves break/continue, labeled or not.
func (b *builder) branchTarget(label *ast.Ident, brk bool) *Block {
	if label != nil {
		if lt := b.labels[label.Name]; lt != nil {
			if brk {
				return lt.brk
			}
			return lt.cont
		}
		return nil
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		t := b.loops[i]
		if brk {
			return t.brk
		}
		if t.cont != nil { // skip switch/select for continue
			return t.cont
		}
	}
	return nil
}

// labelBlock returns (creating on demand) the block a label names, for
// goto resolution in either direction.
func (b *builder) labelBlock(name string) *Block {
	lt := b.labels[name]
	if lt == nil {
		lt = &labelTarget{}
		b.labels[name] = lt
	}
	if lt.block == nil {
		lt.block = b.newBlock()
	}
	return lt.block
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	lb := b.labelBlock(s.Label.Name)
	if b.cur != nil {
		b.edge(b.cur, lb)
	}
	b.cur = lb
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		b.forStmt(inner, s.Label.Name)
	case *ast.RangeStmt:
		b.rangeStmt(inner, s.Label.Name)
	case *ast.SwitchStmt:
		b.switchStmt(inner, s.Label.Name)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(inner, s.Label.Name)
	case *ast.SelectStmt:
		b.selectStmt(inner, s.Label.Name)
	default:
		b.stmt(s.Stmt)
	}
}

// cond lowers a branch condition, decomposing short-circuit operators so
// each operand lands in its own block with edges reflecting the paths
// that evaluate it. The current point becomes unreachable.
func (b *builder) cond(e ast.Expr, t, f *Block) {
	switch x := e.(type) {
	case *ast.ParenExpr:
		b.cond(x.X, t, f)
		return
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			mid := b.newBlock()
			b.cond(x.X, mid, f)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		case token.LOR:
			mid := b.newBlock()
			b.cond(x.X, t, mid)
			b.cur = mid
			b.cond(x.Y, t, f)
			return
		}
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			b.cond(x.X, f, t)
			return
		}
	}
	b.emit(e)
	b.edge(b.cur, t)
	b.edge(b.cur, f)
	b.cur = nil
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	then := b.newBlock()
	join := b.newBlock()
	elseB := join
	if s.Else != nil {
		elseB = b.newBlock()
	}
	if b.cur == nil {
		b.cur = b.newBlock()
	}
	b.cond(s.Cond, then, elseB)
	b.cur = then
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, join)
	}
	if s.Else != nil {
		b.cur = elseB
		b.stmt(s.Else)
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.cur = join
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	cont := head
	var post *Block
	if s.Post != nil {
		post = b.newBlock()
		post.Nodes = append(post.Nodes, s.Post)
		b.edge(post, head)
		cont = post
	}
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.cur = head
	if s.Cond != nil {
		b.cond(s.Cond, body, after)
	} else {
		b.edge(b.cur, body)
		b.cur = nil
	}
	b.pushLoop(label, after, cont)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, cont)
	}
	b.popLoop(label)
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	head := b.newBlock()
	body := b.newBlock()
	after := b.newBlock()
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	// The RangeStmt node itself stands for the per-iteration step: Walk
	// visits only X/Key/Value, never the body (which has its own blocks).
	head.Nodes = append(head.Nodes, s)
	b.edge(head, body)
	b.edge(head, after) // zero iterations
	b.pushLoop(label, after, head)
	b.cur = body
	b.stmtList(s.Body.List)
	if b.cur != nil {
		b.edge(b.cur, head)
	}
	b.popLoop(label)
	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	if s.Tag != nil {
		b.emit(s.Tag)
	}
	head := b.cur
	if head == nil {
		head = b.newBlock()
		b.cur = head
	}
	after := b.newBlock()
	b.pushLoop(label, after, nil)
	b.caseClauses(head, after, s.Body)
	b.popLoop(label)
	b.cur = after
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.emit(s.Init)
	}
	b.emit(s.Assign)
	head := b.cur
	after := b.newBlock()
	b.pushLoop(label, after, nil)
	b.caseClauses(head, after, s.Body)
	b.popLoop(label)
	b.cur = after
}

// caseClauses lowers switch/type-switch bodies: the head branches to every
// clause; a missing default adds a fall-past edge; fallthrough links a
// clause to the next clause's body.
func (b *builder) caseClauses(head, after *Block, body *ast.BlockStmt) {
	var clauses []*ast.CaseClause
	for _, s := range body.List {
		if cc, ok := s.(*ast.CaseClause); ok {
			clauses = append(clauses, cc)
		}
	}
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, cc := range clauses {
		blocks[i] = b.newBlock()
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			// Case expressions are evaluated in the head's context.
			head.Nodes = append(head.Nodes, e)
		}
		b.edge(head, blocks[i])
	}
	if !hasDefault {
		b.edge(head, after)
	}
	for i, cc := range clauses {
		b.cur = blocks[i]
		b.stmtList(cc.Body)
		if b.cur != nil {
			if fallsThrough(cc.Body) && i+1 < len(clauses) {
				b.edge(b.cur, blocks[i+1])
			} else {
				b.edge(b.cur, after)
			}
			b.cur = nil
		}
	}
}

func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	if head == nil {
		head = b.newBlock()
	}
	after := b.newBlock()
	b.pushLoop(label, after, nil)
	any := false
	for _, cs := range s.Body.List {
		cc, ok := cs.(*ast.CommClause)
		if !ok {
			continue
		}
		any = true
		blk := b.newBlock()
		if cc.Comm != nil {
			blk.Nodes = append(blk.Nodes, cc.Comm)
		}
		b.edge(head, blk)
		b.cur = blk
		b.stmtList(cc.Body)
		if b.cur != nil {
			b.edge(b.cur, after)
		}
	}
	b.popLoop(label)
	if !any {
		// select {} blocks forever.
		b.cur = nil
		return
	}
	b.cur = after
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.loops = append(b.loops, loopTarget{label: label, brk: brk, cont: cont})
	if label != "" {
		lt := b.labels[label]
		if lt == nil {
			lt = &labelTarget{}
			b.labels[label] = lt
		}
		lt.brk, lt.cont = brk, cont
	}
}

func (b *builder) popLoop(label string) {
	b.loops = b.loops[:len(b.loops)-1]
	if label != "" {
		if lt := b.labels[label]; lt != nil {
			lt.brk, lt.cont = nil, nil
		}
	}
}
