// Package releaseorder structurally checks the documented store-ordering
// fence points of the SpRWL core protocol (package internal/core). The
// algorithm's reader/writer handshake is correct only under a specific
// order of stores to the simulated protocol words, all of which go through
// the sequentially-consistent env API:
//
//   - a reader must stay flagged (flag array slot or SNZI arrival) until
//     its critical-section body has run: unflagReader/departFrom — or a
//     stateEmpty store — before the body invocation publishes the slot as
//     empty while the read is still in flight;
//
//   - a writer must publish its clock (clockW) before advertising
//     stateWriter: ReaderSync readers decide "writer active?" from state
//     and then read clockW, so the opposite order lets a reader observe
//     stateWriter with a stale clock and spin on the wrong epoch;
//
//   - a reader retires its SGL registration (readerVer <- 0) only after it
//     is flagged: retiring first opens a window where neither the version
//     word nor the flag covers the reader;
//
//   - registering under the versioned SGL (readerVer <- v, nonzero) must
//     be followed by validating the global lock version (glVer load) in
//     the same function — registration without validation is the unsafe
//     lazy-subscription pattern;
//
//   - core must not call sync/atomic functions at all: protocol state
//     lives in simulated memory behind env.Env, which is seq-cst by
//     contract; a direct atomic on Go-side memory bypasses the simulated
//     model and the instrumentation (typed atomic.Uint64-style method
//     calls on auxiliary Go-side state are fine and are not matched).
//
// Event recognition lives in the shared coreevent classifier (also used by
// the flow-sensitive fenceorder analyzer); this package keeps the cheap
// straight-line source-order rules, which catch transposed statements even
// in code the CFG-based checker scopes out. Deliberate exceptions carry
// //sprwl:allow(releaseorder).
package releaseorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"sprwl/internal/analysis/coreevent"
	"sprwl/internal/analysis/driver"
)

// Analyzer is the releaseorder check.
var Analyzer = &driver.Analyzer{
	Name: "releaseorder",
	Doc:  "enforce the core protocol's documented store-ordering fence points",
	Run:  run,
}

func run(pass *driver.Pass) error {
	// The protocol invariants are properties of the core implementation
	// package (and of fixtures that mirror it); everything else is out of
	// scope by construction.
	if pass.Pkg.Name != "core" {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, info, fd)
		}
	}
	return nil
}

func checkFunc(pass *driver.Pass, info *types.Info, fd *ast.FuncDecl) {
	var events []coreevent.Event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ev, ok := coreevent.Classify(info, call); ok {
			events = append(events, ev)
		}
		return true
	})
	// Source order, including events inside nested literals (retry-attempt
	// closures are part of the same protocol sequence).
	sort.Slice(events, func(i, j int) bool { return events[i].Pos < events[j].Pos })

	var (
		lastBody       token.Pos = token.NoPos
		firstFlag      token.Pos = token.NoPos
		firstClockW    token.Pos = token.NoPos
		firstAdvertise *coreevent.Event
	)
	for i := range events {
		ev := &events[i]
		switch {
		case ev.Kind == coreevent.Body:
			lastBody = ev.Pos
		case ev.Kind == coreevent.Flag && firstFlag == token.NoPos:
			firstFlag = ev.Pos
		case ev.Kind == coreevent.Store && ev.Fam == coreevent.FamClockW && firstClockW == token.NoPos:
			firstClockW = ev.Pos
		case ev.Kind == coreevent.Store && ev.Fam == coreevent.FamState && ev.Val == coreevent.ValStateWriter && firstAdvertise == nil:
			firstAdvertise = ev
		}
	}

	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case coreevent.Retract:
			// Rule A: reader release order.
			if lastBody != token.NoPos && ev.Pos < lastBody {
				pass.Reportf(ev.Pos, "release order: %s retracts the reader flag before the critical-section body runs; the reader must stay visible to writers until the body completes", ev.Name)
			}
		case coreevent.Store:
			switch {
			case ev.Fam == coreevent.FamState && ev.Val == coreevent.ValStateEmpty:
				// stateEmpty is also a retract (writer finish / reader
				// slot release).
				if lastBody != token.NoPos && ev.Pos < lastBody {
					pass.Reportf(ev.Pos, "release order: state slot is cleared to stateEmpty before the critical-section body runs; the slot must stay published until the body completes")
				}
			case ev.Fam == coreevent.FamState && ev.Val == coreevent.ValStateWriter:
				// Rule B: clockW before stateWriter.
				if firstClockW != token.NoPos && ev.Pos < firstClockW {
					pass.Reportf(ev.Pos, "release order: stateWriter is advertised before the writer clock (clockW) store; readers would observe an active writer with a stale clock")
				}
			case ev.Fam == coreevent.FamReaderVer && ev.Val == coreevent.ValZero:
				// Rule C: retire only after flagging.
				if firstFlag != token.NoPos && ev.Pos < firstFlag {
					pass.Reportf(ev.Pos, "release order: readerVer is retired (stored zero) before the reader is flagged; neither the version word nor the flag covers the reader in between")
				}
			case ev.Fam == coreevent.FamReaderVer && ev.Val != coreevent.ValZero:
				// Rule D: registration must be validated.
				validated := false
				for j := range events {
					if events[j].Kind == coreevent.Load && events[j].Fam == coreevent.FamGLVer && events[j].Pos > ev.Pos {
						validated = true
						break
					}
				}
				if !validated {
					pass.Reportf(ev.Pos, "release order: readerVer registration is not followed by a glVer validation load in this function (unsafe lazy subscription)")
				}
			}
		case coreevent.Atomic:
			// Rule E: no raw sync/atomic in core.
			pass.Reportf(ev.Pos, "release order: direct sync/atomic call %s in core bypasses the simulated memory model; protocol state must use the env Load/Store/CAS/Add API", ev.Name)
		}
	}
}
