// Package releaseorder structurally checks the documented store-ordering
// fence points of the SpRWL core protocol (package internal/core). The
// algorithm's reader/writer handshake is correct only under a specific
// order of stores to the simulated protocol words, all of which go through
// the sequentially-consistent env API:
//
//   - a reader must stay flagged (flag array slot or SNZI arrival) until
//     its critical-section body has run: unflagReader/departFrom — or a
//     stateEmpty store — before the body invocation publishes the slot as
//     empty while the read is still in flight;
//
//   - a writer must publish its clock (clockW) before advertising
//     stateWriter: ReaderSync readers decide "writer active?" from state
//     and then read clockW, so the opposite order lets a reader observe
//     stateWriter with a stale clock and spin on the wrong epoch;
//
//   - a reader retires its SGL registration (readerVer <- 0) only after it
//     is flagged: retiring first opens a window where neither the version
//     word nor the flag covers the reader;
//
//   - registering under the versioned SGL (readerVer <- v, nonzero) must
//     be followed by validating the global lock version (glVer load) in
//     the same function — registration without validation is the unsafe
//     lazy-subscription pattern;
//
//   - core must not call sync/atomic functions at all: protocol state
//     lives in simulated memory behind env.Env, which is seq-cst by
//     contract; a direct atomic on Go-side memory bypasses the simulated
//     model and the instrumentation (typed atomic.Uint64-style method
//     calls on auxiliary Go-side state are fine and are not matched).
//
// Matching is structural — by the address-family helper names (stateAddr,
// clockWAddr, clockRAddr, waitingForAddr, readerVerAddr, glVer) and the
// env method names (Load/Store) — so the analyzer also works on reduced
// test fixtures. Deliberate exceptions carry //sprwl:allow(releaseorder).
package releaseorder

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sprwl/internal/analysis/driver"
)

// Analyzer is the releaseorder check.
var Analyzer = &driver.Analyzer{
	Name: "releaseorder",
	Doc:  "enforce the core protocol's documented store-ordering fence points",
	Run:  run,
}

type eventKind int

const (
	evStore   eventKind = iota // env Store to a protocol word
	evLoad                     // env Load of a protocol word
	evFlag                     // flagReader / arriveIn
	evRetract                  // unflagReader / departFrom
	evBody                     // invocation of an rwlock.Body value
	evAtomic                   // sync/atomic function call
)

// family identifies which protocol word an env access touches.
type family string

const (
	famState     family = "state"
	famClockW    family = "clockW"
	famClockR    family = "clockR"
	famWaiting   family = "waitingFor"
	famReaderVer family = "readerVer"
	famGLVer     family = "glVer"
	famOther     family = ""
)

var addrFamilies = map[string]family{
	"stateAddr":      famState,
	"clockWAddr":     famClockW,
	"clockRAddr":     famClockR,
	"waitingForAddr": famWaiting,
	"readerVerAddr":  famReaderVer,
}

// valClass classifies the stored value where the rules care about it.
type valClass int

const (
	valOther valClass = iota
	valZero
	valStateWriter
	valStateEmpty
)

type event struct {
	kind eventKind
	fam  family
	val  valClass
	pos  token.Pos
	name string // callee name, for diagnostics
}

func run(pass *driver.Pass) error {
	// The protocol invariants are properties of the core implementation
	// package (and of fixtures that mirror it); everything else is out of
	// scope by construction.
	if pass.Pkg.Name != "core" {
		return nil
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, info, fd)
		}
	}
	return nil
}

func checkFunc(pass *driver.Pass, info *types.Info, fd *ast.FuncDecl) {
	var events []event
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if ev, ok := classify(info, call); ok {
			events = append(events, ev)
		}
		return true
	})
	// Source order, including events inside nested literals (retry-attempt
	// closures are part of the same protocol sequence).
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	var (
		lastBody       token.Pos = token.NoPos
		firstFlag      token.Pos = token.NoPos
		firstClockW    token.Pos = token.NoPos
		firstAdvertise *event
	)
	for i := range events {
		ev := &events[i]
		switch {
		case ev.kind == evBody:
			lastBody = ev.pos
		case ev.kind == evFlag && firstFlag == token.NoPos:
			firstFlag = ev.pos
		case ev.kind == evStore && ev.fam == famClockW && firstClockW == token.NoPos:
			firstClockW = ev.pos
		case ev.kind == evStore && ev.fam == famState && ev.val == valStateWriter && firstAdvertise == nil:
			firstAdvertise = ev
		}
	}

	for i := range events {
		ev := &events[i]
		switch ev.kind {
		case evRetract:
			// Rule A: reader release order.
			if lastBody != token.NoPos && ev.pos < lastBody {
				pass.Reportf(ev.pos, "release order: %s retracts the reader flag before the critical-section body runs; the reader must stay visible to writers until the body completes", ev.name)
			}
		case evStore:
			switch {
			case ev.fam == famState && ev.val == valStateEmpty:
				// stateEmpty is also a retract (writer finish / reader
				// slot release).
				if lastBody != token.NoPos && ev.pos < lastBody {
					pass.Reportf(ev.pos, "release order: state slot is cleared to stateEmpty before the critical-section body runs; the slot must stay published until the body completes")
				}
			case ev.fam == famState && ev.val == valStateWriter:
				// Rule B: clockW before stateWriter.
				if firstClockW != token.NoPos && ev.pos < firstClockW {
					pass.Reportf(ev.pos, "release order: stateWriter is advertised before the writer clock (clockW) store; readers would observe an active writer with a stale clock")
				}
			case ev.fam == famReaderVer && ev.val == valZero:
				// Rule C: retire only after flagging.
				if firstFlag != token.NoPos && ev.pos < firstFlag {
					pass.Reportf(ev.pos, "release order: readerVer is retired (stored zero) before the reader is flagged; neither the version word nor the flag covers the reader in between")
				}
			case ev.fam == famReaderVer && ev.val != valZero:
				// Rule D: registration must be validated.
				validated := false
				for j := range events {
					if events[j].kind == evLoad && events[j].fam == famGLVer && events[j].pos > ev.pos {
						validated = true
						break
					}
				}
				if !validated {
					pass.Reportf(ev.pos, "release order: readerVer registration is not followed by a glVer validation load in this function (unsafe lazy subscription)")
				}
			}
		case evAtomic:
			// Rule E: no raw sync/atomic in core.
			pass.Reportf(ev.pos, "release order: direct sync/atomic call %s in core bypasses the simulated memory model; protocol state must use the env Load/Store/CAS/Add API", ev.name)
		}
	}
}

// classify maps a call expression to a protocol event, if it is one.
func classify(info *types.Info, call *ast.CallExpr) (event, bool) {
	name := calleeName(call)
	switch name {
	case "flagReader", "arriveIn":
		return event{kind: evFlag, pos: call.Pos(), name: name}, true
	case "unflagReader", "departFrom":
		return event{kind: evRetract, pos: call.Pos(), name: name}, true
	case "Store":
		if len(call.Args) == 2 {
			if fam := addrFamily(call.Args[0]); fam != famOther {
				return event{kind: evStore, fam: fam, val: classifyValue(call.Args[1]), pos: call.Pos(), name: name}, true
			}
		}
	case "Load":
		if len(call.Args) == 1 {
			if fam := addrFamily(call.Args[0]); fam != famOther {
				return event{kind: evLoad, fam: fam, pos: call.Pos(), name: name}, true
			}
		}
	}
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		// Package-level functions only: typed-atomic methods
		// (atomic.Uint64.Add) have a receiver and operate on auxiliary
		// Go-side state, which is allowed.
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() == nil {
			return event{kind: evAtomic, pos: call.Pos(), name: "atomic." + fn.Name()}, true
		}
	}
	if t := typeOfExpr(info, call.Fun); t != nil && isBodyType(t) {
		return event{kind: evBody, pos: call.Pos(), name: "body"}, true
	}
	return event{}, false
}

// addrFamily recognizes the address expression of an env access: a call to
// one of the address-family helpers, or the glVer field/variable.
func addrFamily(e ast.Expr) family {
	switch e := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		if fam, ok := addrFamilies[calleeName(e)]; ok {
			return fam
		}
	case *ast.SelectorExpr:
		if e.Sel.Name == "glVer" {
			return famGLVer
		}
	case *ast.Ident:
		if e.Name == "glVer" {
			return famGLVer
		}
	}
	return famOther
}

// classifyValue recognizes the stored values the ordering rules depend on.
func classifyValue(e ast.Expr) valClass {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		switch e.Name {
		case "stateWriter":
			return valStateWriter
		case "stateEmpty":
			return valStateEmpty
		}
	case *ast.BasicLit:
		if e.Kind == token.INT && e.Value == "0" {
			return valZero
		}
	}
	return valOther
}

// calleeName returns the bare name of the called function or method.
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// isBodyType reports whether t is the rwlock critical-section body type.
func isBodyType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Body" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/rwlock")
}

func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if sel.Kind() == types.MethodVal && !types.IsInterface(sel.Recv()) {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
