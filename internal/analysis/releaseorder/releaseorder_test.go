package releaseorder_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/releaseorder"
)

func TestReleaseOrder(t *testing.T) {
	analysistest.Run(t, "testdata", releaseorder.Analyzer, "corefix")
}
