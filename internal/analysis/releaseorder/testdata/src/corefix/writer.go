package core

// badWrite advertises the writer before publishing its clock (multi-file
// case: the lock shape lives in order.go).
func (l *lock) badWrite(end uint64) {
	l.e.Store(l.stateAddr(0), stateWriter) // want `advertised before the writer clock`
	l.e.Store(l.clockWAddr(0), end)
}

// goodWrite is the documented ReaderSync advertise order.
func (l *lock) goodWrite(end uint64) {
	l.e.Store(l.clockWAddr(0), end)
	l.e.Store(l.stateAddr(0), stateWriter)
}

// badRegister registers under the versioned SGL without validating the
// lock version afterwards (unsafe lazy subscription).
func (l *lock) badRegister(observed uint64) {
	l.e.Store(l.readerVerAddr(0), observed+1) // want `not followed by a glVer validation`
}

// goodRegister validates after registering, like the real
// flagReaderAndSyncGL.
func (l *lock) goodRegister(observed uint64) {
	l.e.Store(l.readerVerAddr(0), observed+1)
	_ = l.e.Load(l.glVer)
}
