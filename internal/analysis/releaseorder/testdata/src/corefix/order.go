// Package core mirrors the shape of the real internal/core protocol code —
// the env Load/Store methods, the address-family helpers, and the
// flag/unflag pairs — so the releaseorder analyzer's structural matching
// can be exercised on reduced functions. The analyzer gates on the package
// name "core".
package core

import (
	"sync/atomic"

	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
)

type envT struct{}

func (envT) Load(a memmodel.Addr) uint64     { return 0 }
func (envT) Store(a memmodel.Addr, v uint64) {}

const (
	stateEmpty  = 0
	stateWriter = 2
)

type lock struct {
	e     envT
	glVer memmodel.Addr
}

func (l *lock) stateAddr(i int) memmodel.Addr     { return memmodel.Addr(i) }
func (l *lock) clockWAddr(i int) memmodel.Addr    { return memmodel.Addr(i + 64) }
func (l *lock) readerVerAddr(i int) memmodel.Addr { return memmodel.Addr(i + 128) }

func (l *lock) flagReader()   {}
func (l *lock) unflagReader() {}

// badRead retracts the reader flag before the body runs.
func (l *lock) badRead(body rwlock.Body) {
	l.flagReader()
	l.unflagReader() // want `retracts the reader flag before the critical-section body`
	body(nil)
}

// goodRead is the documented release order.
func (l *lock) goodRead(body rwlock.Body) {
	l.flagReader()
	body(nil)
	l.unflagReader()
}

// badClear publishes the state slot as empty while the body is still in
// flight.
func (l *lock) badClear(body rwlock.Body) {
	l.e.Store(l.stateAddr(0), stateEmpty) // want `cleared to stateEmpty before the critical-section body`
	body(nil)
}

// badRetire retires the versioned-SGL registration before the flag is up.
func (l *lock) badRetire() {
	l.e.Store(l.readerVerAddr(0), 0) // want `retired \(stored zero\) before the reader is flagged`
	l.flagReader()
}

// goodRetire flags first, exactly like the real flagReader.
func (l *lock) goodRetire() {
	l.flagReader()
	l.e.Store(l.readerVerAddr(0), 0)
}

// badAtomic bypasses the simulated memory model.
func badAtomic(x *uint64) {
	atomic.AddUint64(x, 1) // want `direct sync/atomic call atomic.AddUint64`
}

// allowedAtomic is a deliberate, justified exception to the same rule.
func allowedAtomic(x *uint64) {
	//sprwl:allow(releaseorder) fixture: deliberate exception for auxiliary state
	atomic.AddUint64(x, 1)
}
