// Package astq holds the small AST/type query helpers shared by every
// analyzer and by the cfg/dataflow/callgraph layers: static-callee
// resolution, parameter typing under variadics, and capture tests for
// function literals. Before this package each analyzer carried its own
// copy; keeping one implementation means one place to fix the subtle
// cases (method values on interface receivers, qualified identifiers,
// variadic spreads).
package astq

import (
	"go/ast"
	"go/types"
)

// CalleeFunc resolves a call's static callee: package-level functions and
// methods called on concrete (non-interface) receivers. Dynamic calls —
// func values, interface methods — and builtins resolve to nil.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if sel.Kind() == types.MethodVal && !types.IsInterface(sel.Recv()) {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// CalleeName returns the bare name of the called function or method, or ""
// for calls through computed expressions.
func CalleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// ParamType returns the static type of the i-th argument's parameter,
// unwrapping the variadic element type when the call site spreads into a
// variadic parameter without an explicit "...".
func ParamType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return params.At(n - 1).Type()
		}
		if s, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return params.At(i).Type()
	}
	return nil
}

// TypeOf returns the recorded type of e, or nil.
func TypeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

// FuncLit unwraps parens and returns e as a function literal, or nil.
func FuncLit(e ast.Expr) *ast.FuncLit {
	lit, _ := ast.Unparen(e).(*ast.FuncLit)
	return lit
}

// IsPackageLevel reports whether v is declared at package scope.
func IsPackageLevel(v *types.Var) bool {
	return v.Pkg() != nil && v.Parent() == v.Pkg().Scope()
}

// CapturedBy reports whether v is captured by the function literal lit:
// declared outside the literal's extent (package-level variables count —
// they are shared by definition). Struct fields are never "captured"; they
// are reached through a captured root instead.
func CapturedBy(v *types.Var, lit *ast.FuncLit) bool {
	if v == nil || v.IsField() {
		return false
	}
	if IsPackageLevel(v) {
		return true
	}
	return v.Pos() < lit.Pos() || v.Pos() > lit.End()
}

// RootVar unwinds selector/index/star/paren chains and returns the
// variable at the root of the access path, or nil (e.g. for call results).
func RootVar(info *types.Info, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			v, _ := info.Uses[x].(*types.Var)
			return v
		default:
			return nil
		}
	}
}

// IsNamed reports whether t is (an alias of) the named type pkgSuffix.Name,
// matching by object name and import-path suffix so reduced test fixtures
// that import the real module package still match.
func IsNamed(t types.Type, pkgSuffix, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	path := obj.Pkg().Path()
	return path == pkgSuffix || len(path) > len(pkgSuffix) &&
		path[len(path)-len(pkgSuffix)-1] == '/' && path[len(path)-len(pkgSuffix):] == pkgSuffix
}

// PanicsOnly reports whether call is the panic builtin.
func PanicsOnly(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "panic"
}
