// Package bodyidempotent checks the rwlock.Body contract: a critical-section
// closure may be executed multiple times (the HTM emulation re-runs it after
// an abort), so everything it does must be idempotent. All shared-state
// effects must flow through the Accessor parameter — those are buffered in
// the transaction write set and undone on abort — while effects on captured
// Go-side memory or on the outside world escape the transaction and are
// replayed on every retry.
//
// Reported patterns:
//
//   - read-modify-write of a captured variable (x++, x += v, or a plain
//     write to a variable that is also read inside the body): each retry
//     compounds the update;
//   - writes through captured pointers, captured struct fields, and into
//     captured maps: visible before commit and replayed on retry (writing a
//     result into a captured scalar or a captured slice element is the
//     sanctioned extraction idiom — same slot, same value on every run —
//     and is not reported);
//   - calls to methods on captured receivers or to captured func values
//     that do not take the accessor (rng.Uint64N, a captured now()): these
//     advance hidden state or observe the outside world, so each retry sees
//     a different value and the committed execution may disagree with the
//     decisions made by aborted ones;
//   - calls into fmt, os, log, io, time, math/rand, net and sync, plus
//     print/println, go statements, channel sends and close: side effects
//     the abort path cannot undo.
//
// Compute non-idempotent inputs before the critical section and pass them in
// by value; a body that genuinely needs an exception carries
// //sprwl:allow(bodyidempotent) with a justification.
package bodyidempotent

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"sprwl/internal/analysis/driver"
)

// Analyzer is the bodyidempotent check.
var Analyzer = &driver.Analyzer{
	Name: "bodyidempotent",
	Doc:  "rwlock.Body closures must be idempotent: no captured-state mutation or non-Accessor side effects",
	Run:  run,
}

// sideEffectPkgs are packages whose calls are outside-world effects or
// non-deterministic inputs — either way, not idempotent under re-execution.
var sideEffectPkgs = map[string]bool{
	"fmt":          true,
	"os":           true,
	"log":          true,
	"io":           true,
	"time":         true,
	"math/rand":    true,
	"math/rand/v2": true,
	"net":          true,
	"sync":         true,
}

func run(pass *driver.Pass) error {
	info := pass.Pkg.Info
	checked := make(map[*ast.FuncLit]bool)
	check := func(lit *ast.FuncLit) {
		if lit != nil && !checked[lit] {
			checked[lit] = true
			checkBody(pass, lit)
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				tv, ok := info.Types[n.Fun]
				if ok && tv.IsType() {
					// Conversion rwlock.Body(func(...){...}).
					if isBodyType(tv.Type) && len(n.Args) == 1 {
						check(funcLit(n.Args[0]))
					}
					return true
				}
				sig, ok := tv.Type.(*types.Signature)
				if !ok {
					if tv.Type != nil {
						sig, _ = tv.Type.Underlying().(*types.Signature)
					}
				}
				if sig == nil {
					return true
				}
				for i, arg := range n.Args {
					if lit := funcLit(arg); lit != nil && isBodyType(paramType(sig, i, n.Ellipsis != token.NoPos)) {
						check(lit)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) {
						if lit := funcLit(rhs); lit != nil && isBodyType(typeOf(info, n.Lhs[i])) {
							check(lit)
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if lit := funcLit(v); lit != nil {
						if n.Type != nil && isBodyType(typeOf(info, n.Type)) {
							check(lit)
						}
					}
				}
			case *ast.ReturnStmt:
				// A factory returning a Body: resolve via the literal's own
				// assigned type when the checker converted it.
				for _, r := range n.Results {
					if lit := funcLit(r); lit != nil && isBodyType(typeOf(info, r)) {
						check(lit)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkBody inspects one rwlock.Body literal for non-idempotent effects.
func checkBody(pass *driver.Pass, lit *ast.FuncLit) {
	info := pass.Pkg.Info

	var accObj types.Object
	if p := lit.Type.Params; p != nil && len(p.List) > 0 && len(p.List[0].Names) > 0 {
		accObj = info.Defs[p.List[0].Names[0]]
	}

	captured := func(v *types.Var) bool {
		if v == nil || v.IsField() {
			return false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true // package-level: shared by definition
		}
		return v.Pos() < lit.Pos() || v.Pos() > lit.End()
	}

	// writeSites collects plain `=` writes to captured scalars; a write is
	// only a violation if the same variable is also read in the body
	// (extraction writes are write-only).
	writeSites := make(map[*types.Var]token.Pos)
	readVars := make(map[*types.Var]bool)
	writeLHS := make(map[*ast.Ident]bool)

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
			for _, lhs := range n.Lhs {
				checkWrite(pass, info, captured, lhs, compound, n.Tok, writeSites, writeLHS)
			}
		case *ast.IncDecStmt:
			if v := rootCaptured(info, captured, n.X); v != nil {
				pass.Reportf(n.Pos(), "body is not idempotent: %s of captured %q compounds on every re-execution; compute it outside the critical section", n.Tok, v.Name())
			}
		case *ast.CallExpr:
			checkCall(pass, info, captured, accObj, n)
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "body is not idempotent: go statement launches a goroutine on every re-execution")
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "body is not idempotent: channel send escapes the transaction and is replayed on abort")
		case *ast.Ident:
			if writeLHS[n] {
				return true
			}
			if v, ok := info.Uses[n].(*types.Var); ok && captured(v) {
				readVars[v] = true
			}
		}
		return true
	})

	for v, pos := range writeSites {
		if readVars[v] {
			pass.Reportf(pos, "body is not idempotent: captured %q is both read and written in the body, so re-execution compounds the update; use the Accessor for shared state or hoist the computation", v.Name())
		}
	}
}

// checkWrite classifies one assignment target inside a body.
func checkWrite(pass *driver.Pass, info *types.Info, captured func(*types.Var) bool,
	lhs ast.Expr, compound bool, tok token.Token,
	writeSites map[*types.Var]token.Pos, writeLHS map[*ast.Ident]bool) {

	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := info.Uses[e].(*types.Var)
		if !ok || !captured(v) {
			return
		}
		writeLHS[e] = true
		if compound {
			pass.Reportf(lhs.Pos(), "body is not idempotent: %s on captured %q compounds on every re-execution; use the Accessor for shared state or hoist the computation", tok, v.Name())
			return
		}
		if _, ok := writeSites[v]; !ok {
			writeSites[v] = lhs.Pos()
		}
	case *ast.SelectorExpr:
		if v := rootCaptured(info, captured, e); v != nil {
			pass.Reportf(lhs.Pos(), "body is not idempotent: write through captured %q escapes the transaction and is replayed on abort; route it through the Accessor or extract after the section", v.Name())
		}
	case *ast.StarExpr:
		if v := rootCaptured(info, captured, e.X); v != nil {
			pass.Reportf(lhs.Pos(), "body is not idempotent: write through captured pointer %q escapes the transaction and is replayed on abort", v.Name())
		}
	case *ast.IndexExpr:
		// Captured-map inserts allocate buckets and are visible before
		// commit; captured-slice element writes are the extraction idiom
		// (same slot, same value every run) and pass.
		if t := typeOf(info, e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if v := rootCaptured(info, captured, e.X); v != nil {
					pass.Reportf(lhs.Pos(), "body is not idempotent: write into captured map %q escapes the transaction and is replayed on abort", v.Name())
				}
			}
		}
	}
}

// checkCall flags calls whose effects escape the transaction: denylisted
// packages, builtins with side effects, and calls on captured state that do
// not go through the accessor.
func checkCall(pass *driver.Pass, info *types.Info, captured func(*types.Var) bool,
	accObj types.Object, call *ast.CallExpr) {

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "print", "println":
				pass.Reportf(call.Pos(), "body is not idempotent: %s output is replayed on every re-execution", b.Name())
			case "close":
				pass.Reportf(call.Pos(), "body is not idempotent: close escapes the transaction (and panics when replayed)")
			}
			return
		}
	}

	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && sideEffectPkgs[fn.Pkg().Path()] {
		pass.Reportf(call.Pos(), "body is not idempotent: call to %s.%s is a non-Accessor side effect or non-deterministic input; compute it before the critical section", fn.Pkg().Name(), fn.Name())
		return
	}

	// A method call on a captured receiver, or a call through a captured
	// func value. If the accessor is threaded through as an argument the
	// callee participates in the transaction (the data-structure helper
	// idiom); otherwise it may read or advance hidden state on every retry
	// — whether the callee resolves statically or not, since even a
	// module-local method can mutate its receiver.
	if mentionsObj(info, call, accObj) {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			if v := rootCaptured(info, captured, fun.X); v != nil {
				pass.Reportf(call.Pos(), "body is not idempotent: method call on captured %q without the accessor may observe or advance hidden state on every re-execution", v.Name())
			}
		}
	case *ast.Ident:
		if v, ok := info.Uses[fun].(*types.Var); ok && captured(v) {
			pass.Reportf(call.Pos(), "body is not idempotent: call to captured func value %q without the accessor may observe or advance hidden state on every re-execution", v.Name())
		}
	}
}

// mentionsObj reports whether any call argument references obj (the
// accessor parameter).
func mentionsObj(info *types.Info, call *ast.CallExpr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
				found = true
			}
			return !found
		})
	}
	return found
}

// rootCaptured unwinds selector/index/star/paren chains and reports the
// captured variable at the root, if any.
func rootCaptured(info *types.Info, captured func(*types.Var) bool, e ast.Expr) *types.Var {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			if v, ok := info.Uses[x].(*types.Var); ok && captured(v) {
				return v
			}
			return nil
		default:
			return nil
		}
	}
}

// isBodyType reports whether t is the rwlock critical-section body type.
func isBodyType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Body" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/rwlock")
}

func funcLit(e ast.Expr) *ast.FuncLit {
	lit, _ := ast.Unparen(e).(*ast.FuncLit)
	return lit
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return params.At(n - 1).Type()
		}
		if s, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return params.At(i).Type()
	}
	return nil
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if sel.Kind() == types.MethodVal && !types.IsInterface(sel.Recv()) {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
