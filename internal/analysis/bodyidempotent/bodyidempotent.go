// Package bodyidempotent checks the rwlock.Body contract: a critical-section
// closure may be executed multiple times (the HTM emulation re-runs it after
// an abort), so everything it does must be idempotent. All shared-state
// effects must flow through the Accessor parameter — those are buffered in
// the transaction write set and undone on abort — while effects on captured
// Go-side memory or on the outside world escape the transaction and are
// replayed on every retry.
//
// Reported patterns:
//
//   - read-modify-write of a captured variable (x++, x += v, or a plain
//     write to a variable that is also read inside the body): each retry
//     compounds the update;
//   - writes through captured pointers, captured struct fields, and into
//     captured maps — whether named directly or through a local alias of
//     the captured storage (p := out; p.n = v), which the may-alias
//     lattice resolves: visible before commit and replayed on retry
//     (writing a result into a captured scalar or a captured slice element
//     is the sanctioned extraction idiom — same slot, same value on every
//     run — and is not reported);
//   - calls to methods on captured receivers or to captured func values
//     that do not take the accessor (rng.Uint64N, a captured now()): these
//     advance hidden state or observe the outside world, so each retry sees
//     a different value and the committed execution may disagree with the
//     decisions made by aborted ones. One report is issued per captured
//     object per body — every further call on the same object is the same
//     decision about the same state, so the first site stands for all of
//     them (and one suppression covers the object, not each call);
//   - calls into fmt, os, log, io, time, math/rand, net and sync, plus
//     print/println, go statements, channel sends and close: side effects
//     the abort path cannot undo.
//
// Compute non-idempotent inputs before the critical section and pass them in
// by value; a body that genuinely needs an exception carries
// //sprwl:allow(bodyidempotent) with a justification.
package bodyidempotent

import (
	"go/ast"
	"go/token"
	"go/types"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/dataflow"
	"sprwl/internal/analysis/driver"
)

// Analyzer is the bodyidempotent check.
var Analyzer = &driver.Analyzer{
	Name: "bodyidempotent",
	Doc:  "rwlock.Body closures must be idempotent: no captured-state mutation or non-Accessor side effects",
	Run:  run,
}

// sideEffectPkgs are packages whose calls are outside-world effects or
// non-deterministic inputs — either way, not idempotent under re-execution.
var sideEffectPkgs = map[string]bool{
	"fmt":          true,
	"os":           true,
	"log":          true,
	"io":           true,
	"time":         true,
	"math/rand":    true,
	"math/rand/v2": true,
	"net":          true,
	"sync":         true,
}

func isBodyType(t types.Type) bool {
	return astq.IsNamed(t, "internal/rwlock", "Body")
}

func run(pass *driver.Pass) error {
	info := pass.Pkg.Info
	checked := make(map[*ast.FuncLit]bool)
	check := func(lit *ast.FuncLit) {
		if lit != nil && !checked[lit] {
			checked[lit] = true
			checkBody(pass, lit)
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				tv, ok := info.Types[n.Fun]
				if ok && tv.IsType() {
					// Conversion rwlock.Body(func(...){...}).
					if isBodyType(tv.Type) && len(n.Args) == 1 {
						check(astq.FuncLit(n.Args[0]))
					}
					return true
				}
				sig, ok := tv.Type.(*types.Signature)
				if !ok {
					if tv.Type != nil {
						sig, _ = tv.Type.Underlying().(*types.Signature)
					}
				}
				if sig == nil {
					return true
				}
				for i, arg := range n.Args {
					if lit := astq.FuncLit(arg); lit != nil && isBodyType(astq.ParamType(sig, i, n.Ellipsis != token.NoPos)) {
						check(lit)
					}
				}
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if i < len(n.Lhs) {
						if lit := astq.FuncLit(rhs); lit != nil && isBodyType(astq.TypeOf(info, n.Lhs[i])) {
							check(lit)
						}
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					if lit := astq.FuncLit(v); lit != nil {
						if n.Type != nil && isBodyType(astq.TypeOf(info, n.Type)) {
							check(lit)
						}
					}
				}
			case *ast.ReturnStmt:
				// A factory returning a Body: resolve via the literal's own
				// assigned type when the checker converted it.
				for _, r := range n.Results {
					if lit := astq.FuncLit(r); lit != nil && isBodyType(astq.TypeOf(info, r)) {
						check(lit)
					}
				}
			}
			return true
		})
	}
	return nil
}

// bodyCheck carries the per-literal state: the accessor object, the
// may-alias lattice from local variables to the captured storage they can
// reach, and the receivers already reported (one diagnostic per captured
// object per body).
type bodyCheck struct {
	pass    *driver.Pass
	info    *types.Info
	lit     *ast.FuncLit
	accObj  types.Object
	aliases map[*types.Var]map[*types.Var]bool

	writeSites   map[*types.Var]token.Pos
	readVars     map[*types.Var]bool
	writeLHS     map[*ast.Ident]bool
	reportedRecv map[*types.Var]bool
}

// checkBody inspects one rwlock.Body literal for non-idempotent effects.
func checkBody(pass *driver.Pass, lit *ast.FuncLit) {
	c := &bodyCheck{
		pass:         pass,
		info:         pass.Pkg.Info,
		lit:          lit,
		aliases:      dataflow.CapturedAliases(pass.Pkg.Info, lit),
		writeSites:   make(map[*types.Var]token.Pos),
		readVars:     make(map[*types.Var]bool),
		writeLHS:     make(map[*ast.Ident]bool),
		reportedRecv: make(map[*types.Var]bool),
	}
	if p := lit.Type.Params; p != nil && len(p.List) > 0 && len(p.List[0].Names) > 0 {
		c.accObj = c.info.Defs[p.List[0].Names[0]]
	}

	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
			for _, lhs := range n.Lhs {
				c.checkWrite(lhs, compound, n.Tok)
			}
		case *ast.IncDecStmt:
			if v, _ := c.capturedRoot(n.X); v != nil {
				c.pass.Reportf(n.Pos(), "body is not idempotent: %s of captured %q compounds on every re-execution; compute it outside the critical section", n.Tok, v.Name())
			}
		case *ast.CallExpr:
			c.checkCall(n)
		case *ast.GoStmt:
			c.pass.Reportf(n.Pos(), "body is not idempotent: go statement launches a goroutine on every re-execution")
		case *ast.SendStmt:
			c.pass.Reportf(n.Pos(), "body is not idempotent: channel send escapes the transaction and is replayed on abort")
		case *ast.Ident:
			if c.writeLHS[n] {
				return true
			}
			if v, ok := c.info.Uses[n].(*types.Var); ok && astq.CapturedBy(v, c.lit) {
				c.readVars[v] = true
			}
		}
		return true
	})

	for v, pos := range c.writeSites {
		if c.readVars[v] {
			c.pass.Reportf(pos, "body is not idempotent: captured %q is both read and written in the body, so re-execution compounds the update; use the Accessor for shared state or hoist the computation", v.Name())
		}
	}
}

// capturedRoot resolves the captured storage an access path can reach: the
// root variable itself when it is captured, or — through the alias lattice
// — a captured variable a local root may alias (p := out; p.n = v). The
// second result names the aliasing local, nil for direct captures.
func (c *bodyCheck) capturedRoot(e ast.Expr) (captured, via *types.Var) {
	root := astq.RootVar(c.info, e)
	if root == nil {
		return nil, nil
	}
	if astq.CapturedBy(root, c.lit) {
		return root, nil
	}
	for cand := range c.aliases[root] {
		if captured == nil || cand.Name() < captured.Name() {
			captured = cand
		}
	}
	if captured != nil {
		return captured, root
	}
	return nil, nil
}

// checkWrite classifies one assignment target inside a body.
func (c *bodyCheck) checkWrite(lhs ast.Expr, compound bool, tok token.Token) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		v, ok := c.info.Uses[e].(*types.Var)
		if !ok || !astq.CapturedBy(v, c.lit) {
			return
		}
		c.writeLHS[e] = true
		if compound {
			c.pass.Reportf(lhs.Pos(), "body is not idempotent: %s on captured %q compounds on every re-execution; use the Accessor for shared state or hoist the computation", tok, v.Name())
			return
		}
		if _, ok := c.writeSites[v]; !ok {
			c.writeSites[v] = lhs.Pos()
		}
	case *ast.SelectorExpr:
		if v, via := c.capturedRoot(e); v != nil {
			if via != nil {
				c.pass.Reportf(lhs.Pos(), "body is not idempotent: write through %q, which aliases captured %q, escapes the transaction and is replayed on abort; route it through the Accessor or extract after the section", via.Name(), v.Name())
				return
			}
			c.pass.Reportf(lhs.Pos(), "body is not idempotent: write through captured %q escapes the transaction and is replayed on abort; route it through the Accessor or extract after the section", v.Name())
		}
	case *ast.StarExpr:
		if v, via := c.capturedRoot(e.X); v != nil {
			if via != nil {
				c.pass.Reportf(lhs.Pos(), "body is not idempotent: write through %q, which aliases captured pointer %q, escapes the transaction and is replayed on abort", via.Name(), v.Name())
				return
			}
			c.pass.Reportf(lhs.Pos(), "body is not idempotent: write through captured pointer %q escapes the transaction and is replayed on abort", v.Name())
		}
	case *ast.IndexExpr:
		// Captured-map inserts allocate buckets and are visible before
		// commit; captured-slice element writes are the extraction idiom
		// (same slot, same value every run) and pass.
		if t := astq.TypeOf(c.info, e.X); t != nil {
			if _, isMap := t.Underlying().(*types.Map); isMap {
				if v, via := c.capturedRoot(e.X); v != nil {
					if via != nil {
						c.pass.Reportf(lhs.Pos(), "body is not idempotent: write into %q, which aliases captured map %q, escapes the transaction and is replayed on abort", via.Name(), v.Name())
						return
					}
					c.pass.Reportf(lhs.Pos(), "body is not idempotent: write into captured map %q escapes the transaction and is replayed on abort", v.Name())
				}
			}
		}
	}
}

// checkCall flags calls whose effects escape the transaction: denylisted
// packages, builtins with side effects, and calls on captured state that do
// not go through the accessor.
func (c *bodyCheck) checkCall(call *ast.CallExpr) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := c.info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "print", "println":
				c.pass.Reportf(call.Pos(), "body is not idempotent: %s output is replayed on every re-execution", b.Name())
			case "close":
				c.pass.Reportf(call.Pos(), "body is not idempotent: close escapes the transaction (and panics when replayed)")
			}
			return
		}
	}

	if fn := astq.CalleeFunc(c.info, call); fn != nil && fn.Pkg() != nil && sideEffectPkgs[fn.Pkg().Path()] {
		c.pass.Reportf(call.Pos(), "body is not idempotent: call to %s.%s is a non-Accessor side effect or non-deterministic input; compute it before the critical section", fn.Pkg().Name(), fn.Name())
		return
	}

	// A method call on a captured receiver, or a call through a captured
	// func value. If the accessor is threaded through as an argument the
	// callee participates in the transaction (the data-structure helper
	// idiom); otherwise it may read or advance hidden state on every retry
	// — whether the callee resolves statically or not, since even a
	// module-local method can mutate its receiver. Each captured object is
	// reported at its first offending call only.
	if c.mentionsAccessor(call) {
		return
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if sel := c.info.Selections[fun]; sel != nil && sel.Kind() == types.MethodVal {
			if v, via := c.capturedRoot(fun.X); v != nil && !c.reportedRecv[v] {
				c.reportedRecv[v] = true
				if via != nil {
					c.pass.Reportf(call.Pos(), "body is not idempotent: method call on %q, which aliases captured %q, without the accessor may observe or advance hidden state on every re-execution (first such call; one report per captured object)", via.Name(), v.Name())
					return
				}
				c.pass.Reportf(call.Pos(), "body is not idempotent: method call on captured %q without the accessor may observe or advance hidden state on every re-execution (first such call; one report per captured object)", v.Name())
			}
		}
	case *ast.Ident:
		if v, ok := c.info.Uses[fun].(*types.Var); ok && astq.CapturedBy(v, c.lit) && !c.reportedRecv[v] {
			c.reportedRecv[v] = true
			c.pass.Reportf(call.Pos(), "body is not idempotent: call to captured func value %q without the accessor may observe or advance hidden state on every re-execution (first such call; one report per captured object)", v.Name())
		}
	}
}

// mentionsAccessor reports whether any call argument references the
// accessor parameter.
func (c *bodyCheck) mentionsAccessor(call *ast.CallExpr) bool {
	if c.accObj == nil {
		return false
	}
	found := false
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && c.info.Uses[id] == c.accObj {
				found = true
			}
			return !found
		})
	}
	return found
}
