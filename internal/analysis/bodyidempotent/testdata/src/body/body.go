// Package body exercises the bodyidempotent analyzer against the real
// rwlock.Body type: critical-section closures below mutate captured state,
// call non-Accessor side effects, or follow the sanctioned extraction
// idiom.
package body

import (
	"time"

	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
)

type section struct{}

func (section) Read(csID int, body rwlock.Body)  {}
func (section) Write(csID int, body rwlock.Body) {}

// source models a captured stateful input (an RNG, a clock).
type source struct{ state uint64 }

func (s *source) next() uint64 { s.state++; return s.state }

type result struct{ n uint64 }

// table models a captured transactional data structure: its methods take
// the accessor, so calls that thread it through are sanctioned.
type table struct{}

func (table) Get(acc memmodel.Accessor, k uint64) uint64 { return 0 }

func Demo(h section, addr memmodel.Addr, src *source, out *result, m map[uint64]uint64, d table) {
	count := 0
	var sum uint64
	var extracted uint64
	tick := src.next // a captured func value: hidden state behind a call

	h.Write(0, func(acc memmodel.Accessor) {
		count++ // want `compounds on every re-execution`
		acc.Store(addr, 1)
	})

	h.Write(1, func(acc memmodel.Accessor) {
		sum = sum + acc.Load(addr) // want `both read and written`
	})

	h.Write(2, func(acc memmodel.Accessor) {
		out.n = acc.Load(addr) // want `write through captured "out"`
	})

	h.Write(3, func(acc memmodel.Accessor) {
		m[1] = acc.Load(addr) // want `write into captured map "m"`
	})

	h.Read(4, func(acc memmodel.Accessor) {
		extracted = src.next() // want `method call on captured "src"`
		_ = src.next()
		// The second call on src is the same decision about the same hidden
		// state: one report per captured object per body.
	})

	h.Read(5, func(acc memmodel.Accessor) {
		extracted = tick() // want `captured func value "tick"`
	})

	h.Read(6, func(acc memmodel.Accessor) {
		_ = time.Now() // want `call to time.Now is a non-Accessor side effect`
	})

	// The extraction idiom: a write-only captured scalar carries the
	// result out of the committed execution. Not reported.
	h.Read(7, func(acc memmodel.Accessor) {
		extracted = acc.Load(addr)
	})

	// Threading the accessor through a captured data structure is the
	// sanctioned helper idiom. Not reported.
	h.Read(8, func(acc memmodel.Accessor) {
		extracted = d.Get(acc, 1)
	})

	// The shared suppression directive covers deliberate exceptions.
	h.Read(9, func(acc memmodel.Accessor) {
		//sprwl:allow(bodyidempotent) fixture: deliberate probe side effect
		count++
	})

	// Laundering the captured pointer through a local does not hide the
	// escape: the alias lattice resolves p back to out.
	h.Write(10, func(acc memmodel.Accessor) {
		p := out
		p.n = acc.Load(addr) // want `aliases captured "out"`
	})

	_, _ = extracted, count
}
