package body

import (
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
)

var hits int

// converted discovers the literal through an explicit rwlock.Body
// conversion (multi-file case: the type and the other bodies live in
// body.go).
func converted() rwlock.Body {
	return rwlock.Body(func(acc memmodel.Accessor) {
		hits++ // want `compounds on every re-execution`
	})
}

// assigned discovers the literal through a declared Body variable.
func assigned(done chan struct{}) rwlock.Body {
	var b rwlock.Body = func(acc memmodel.Accessor) {
		go notify(done) // want `go statement`
	}
	return b
}

func notify(done chan struct{}) { close(done) }
