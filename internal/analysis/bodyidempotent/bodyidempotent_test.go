package bodyidempotent_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/bodyidempotent"
)

func TestBodyIdempotent(t *testing.T) {
	analysistest.Run(t, "testdata", bodyidempotent.Analyzer, "body")
}
