package summary

import (
	"go/ast"
	"go/token"
	"go/types"
	"sync"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/callgraph"
	"sprwl/internal/analysis/cfg"
	"sprwl/internal/analysis/dataflow"
	"sprwl/internal/analysis/driver"
)

// Set caches summaries for one loaded Program. Summaries are demand-driven
// and bottom-up: asking for a function's summary computes (and caches) its
// callees' first; recursion hands the in-progress caller a widened bottom.
type Set struct {
	prog  *driver.Program
	cg    *callgraph.Graph
	npkgs int
	sums  map[any]*Summary // *types.Func or *ast.FuncLit
	busy  map[any]bool
}

var (
	setMu    sync.Mutex
	setCache = map[*driver.Program]*Set{}
)

// For returns the (cached) summary set for prog, rebuilding when new
// packages have been loaded since the last call.
func For(prog *driver.Program) *Set {
	setMu.Lock()
	defer setMu.Unlock()
	pkgs := prog.Packages()
	if s := setCache[prog]; s != nil && s.npkgs == len(pkgs) {
		return s
	}
	s := &Set{
		prog:  prog,
		cg:    callgraph.Build(prog, pkgs),
		npkgs: len(pkgs),
		sums:  make(map[any]*Summary),
		busy:  make(map[any]bool),
	}
	setCache[prog] = s
	return s
}

// bottom is the widened summary a recursive back edge (or missing source)
// resolves to: no visible effects, explicitly incomplete.
func bottom(widened bool) *Summary {
	return &Summary{Incomplete: true, Widened: widened}
}

// FuncSummary returns fn's summary, computing it bottom-up. Functions
// whose source is not loaded summarize to an incomplete bottom (the
// closed-surface assumption: external code performs no protocol-surface
// lock operations).
func (s *Set) FuncSummary(fn *ast.FuncDecl, pkg *driver.Package) *Summary {
	return s.summarize(declKey(pkg, fn), pkg, fn.Body, declCtx(pkg, fn))
}

// LitSummary returns a function literal's summary.
func (s *Set) LitSummary(lit *ast.FuncLit, pkg *driver.Package) *Summary {
	return s.summarize(lit, pkg, lit.Body, litCtx(pkg, lit))
}

// declKey keys a declaration by its *types.Func when available so summaries
// computed through the callgraph and through FuncSummary share an entry.
func declKey(pkg *driver.Package, decl *ast.FuncDecl) any {
	if obj, ok := pkg.Info.Defs[decl.Name].(*types.Func); ok {
		return obj
	}
	return decl
}

func (s *Set) summarize(key any, pkg *driver.Package, body *ast.BlockStmt, ctx *fnCtx) *Summary {
	if sum, ok := s.sums[key]; ok {
		return sum
	}
	if s.busy[key] {
		return bottom(true)
	}
	if body == nil {
		sum := bottom(false)
		s.sums[key] = sum
		return sum
	}
	s.busy[key] = true
	fa := s.analyze(pkg, body, ctx)
	delete(s.busy, key)
	s.sums[key] = fa.Summary
	return fa.Summary
}

// calleeSummary resolves one callgraph callee to its summary.
func (s *Set) calleeSummary(c callgraph.Callee) *Summary {
	if c.Lit != nil && c.Pkg != nil {
		return s.LitSummary(c.Lit, c.Pkg)
	}
	if c.Func != nil {
		if sum, ok := s.sums[c.Func]; ok {
			return sum
		}
		if s.busy[c.Func] {
			return bottom(true)
		}
		src, ok := s.prog.FuncSource(c.Func)
		if !ok || src.Decl.Body == nil {
			sum := bottom(false)
			s.sums[c.Func] = sum
			return sum
		}
		return s.summarize(c.Func, src.Pkg, src.Decl.Body, declCtx(src.Pkg, src.Decl))
	}
	return bottom(false)
}

// BodySummaries resolves a closure-section body argument to the summaries
// of the functions it may invoke. complete is false when the callgraph
// cannot enumerate them.
func (s *Set) BodySummaries(pkg *driver.Package, body ast.Expr) ([]*Summary, []string, bool) {
	callees, complete := s.cg.ValuesOf(pkg.Info, body)
	var sums []*Summary
	var names []string
	for _, c := range callees {
		cc := c
		if cc.Lit != nil && cc.Pkg == nil {
			cc.Pkg = pkg
		}
		sums = append(sums, s.calleeSummary(cc))
		names = append(names, calleeName(cc))
	}
	return sums, names, complete
}

func calleeName(c callgraph.Callee) string {
	if c.Func != nil {
		return c.Func.Name()
	}
	return "func literal"
}

// Event is one lock operation sited in a function under analysis.
type Event struct {
	Op Op
	// Node is the CFG sub-node carrying the event (normally the call).
	Node ast.Node
	// Block is the CFG block the event was collected in.
	Block *cfg.Block
	// Guarded mirrors cfg.Walk's flag: short-circuit operand,
	// invoked-literal body, or deferred-block position.
	Guarded bool
	// Defer is the registering statement when the event runs in the
	// synthetic deferred block.
	Defer *ast.DeferStmt
	// Loop is the innermost for/range statement enclosing the event's
	// call, when inside ctx's body.
	Loop ast.Stmt
	// Spin marks a KindAcquire upgraded from the `for !m.TryLock()` idiom:
	// the fact holds after the loop, not inside it, so held-state clients
	// must not treat the loop body as running under the lock.
	Spin bool
}

// FuncAnalysis is the per-function view the analyzers replay over: the
// CFG, every direct and call-translated lock event, the pairable-key
// universe, and a may-forward "held" dataflow solution.
type FuncAnalysis struct {
	Pkg    *driver.Package
	Body   *ast.BlockStmt
	Graph  *cfg.Graph
	Events []Event
	// At maps a CFG sub-node to the indices of its events.
	At map[ast.Node][]int
	// Keys and KeyBit define the pairable-key bit universe of the
	// held-flow (and of spanleak's release flow, which reuses it).
	Keys   []Key
	KeyBit map[Key]int
	// HeldFlow/Held solve may-forward "key may be held here" over Graph.
	HeldFlow *dataflow.Flow
	Held     dataflow.Facts
	// LoopAnchor maps an enclosing loop statement to the head-block node
	// present on every path through the loop region (the leftmost
	// condition leaf, or the RangeStmt itself) — where loop-paired
	// release facts anchor so the zero-trip edge does not erase them.
	LoopAnchor map[ast.Stmt]ast.Node
	Summary    *Summary

	ctx *fnCtx
}

// Analyze builds the analysis view for a declared function.
func (s *Set) Analyze(pkg *driver.Package, decl *ast.FuncDecl) *FuncAnalysis {
	return s.analyze(pkg, decl.Body, declCtx(pkg, decl))
}

// AnalyzeLit builds the analysis view for a function literal (e.g. a
// goroutine body, which has its own control flow).
func (s *Set) AnalyzeLit(pkg *driver.Package, lit *ast.FuncLit) *FuncAnalysis {
	return s.analyze(pkg, lit.Body, litCtx(pkg, lit))
}

func (s *Set) analyze(pkg *driver.Package, body *ast.BlockStmt, ctx *fnCtx) *FuncAnalysis {
	fa := &FuncAnalysis{
		Pkg:  pkg,
		Body: body,
		Graph: cfg.New(body, cfg.Options{
			Info: pkg.Info,
			NoReturn: func(call *ast.CallExpr) bool {
				return astq.PanicsOnly(pkg.Info, call)
			},
		}),
		At:         make(map[ast.Node][]int),
		KeyBit:     make(map[Key]int),
		LoopAnchor: make(map[ast.Stmt]ast.Node),
		Summary:    &Summary{},
		ctx:        ctx,
	}

	// Syntactic maps over the body: enclosing loops, loop anchors, the
	// `for !m.TryLock()` spin idiom, and defer registration sites.
	loops := make(map[*ast.CallExpr]ast.Stmt)
	spin := make(map[*ast.CallExpr]bool)
	deferOf := make(map[*ast.CallExpr]*ast.DeferStmt)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		switch x := n.(type) {
		case *ast.ForStmt:
			fa.LoopAnchor[x] = condAnchor(x.Cond)
			if call := spinTryLock(x.Cond); call != nil {
				spin[call] = true
			}
		case *ast.RangeStmt:
			fa.LoopAnchor[x] = x
		case *ast.DeferStmt:
			deferOf[x.Call] = x
		case *ast.CallExpr:
			for i := len(stack) - 1; i >= 0; i-- {
				switch stack[i].(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					loops[x] = stack[i].(ast.Stmt)
				case *ast.FuncLit:
					// A literal's body has its own frame; a loop outside
					// the literal does not iterate calls inside it.
				default:
					continue
				}
				break
			}
		}
		stack = append(stack, n)
		return true
	})

	// Collect events block by block. Within the deferred block every top
	// node is some DeferStmt's call: the call itself (and the body of a
	// deferred literal) runs there, while its arguments were already
	// evaluated — and collected — at the registration site.
	for _, blk := range fa.Graph.Blocks {
		for _, top := range blk.Nodes {
			if blk.Deferred {
				call, ok := top.(*ast.CallExpr)
				if !ok {
					continue
				}
				s.collectCall(fa, blk, call, true, deferOf[call], loops[call], false)
				continue
			}
			cfg.Walk(top, false, func(m ast.Node, guarded bool) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				s.collectCall(fa, blk, call, guarded, nil, loops[call], spin[call])
				return true
			})
		}
	}

	// Pairable-key universe and the may-forward held solution.
	for i := range fa.Events {
		k := fa.Events[i].Op.Key
		if !k.Pairable() {
			continue
		}
		if _, ok := fa.KeyBit[k]; !ok {
			fa.KeyBit[k] = len(fa.Keys)
			fa.Keys = append(fa.Keys, k)
		}
	}
	fa.HeldFlow = &dataflow.Flow{
		Graph: fa.Graph,
		N:     len(fa.Keys),
		Mode:  dataflow.MayForward,
		Events: func(n ast.Node, guarded bool) (gen, kill []int) {
			for _, i := range fa.At[n] {
				ev := &fa.Events[i]
				bit, ok := fa.KeyBit[ev.Op.Key]
				if !ok {
					continue
				}
				switch ev.Op.Kind {
				case KindAcquire:
					gen = append(gen, bit)
				case KindRelease:
					kill = append(kill, bit)
				}
			}
			return gen, kill
		},
	}
	fa.Held = fa.HeldFlow.Solve()

	s.finishSummary(fa)
	return fa
}

// collectCall classifies or summarizes one call expression into events.
func (s *Set) collectCall(fa *FuncAnalysis, blk *cfg.Block, call *ast.CallExpr, guarded bool, root *ast.DeferStmt, loop ast.Stmt, spin bool) {
	add := func(op Op) {
		fa.At[call] = append(fa.At[call], len(fa.Events))
		fa.Events = append(fa.Events, Event{
			Op: op, Node: call, Block: blk,
			Guarded: guarded, Defer: root, Loop: loop, Spin: spin,
		})
	}

	if op, ok := classify(fa.ctx, call); ok {
		if op.Kind == KindTry && spin {
			// `for !m.TryLock() { ... }`: the loop exits holding m.
			op.Kind = KindAcquire
		}
		add(op)
		return
	}

	// An immediately-invoked literal in normal flow is inlined by
	// cfg.Walk: its body's calls are collected individually, so applying
	// its summary here would double-count. (In the deferred block the
	// body is NOT walked, so the summary path below handles it.)
	if _, isLit := ast.Unparen(call.Fun).(*ast.FuncLit); isLit && root == nil {
		return
	}

	// Not protocol surface: translate the callee's summary. Builtins and
	// conversions resolve to an empty, complete set.
	callees, complete := s.cg.ResolveCall(fa.Pkg.Info, call)
	if !complete {
		fa.Summary.Incomplete = true
		return
	}
	for _, c := range callees {
		cc := c
		if cc.Lit != nil && cc.Pkg == nil {
			cc.Pkg = fa.Pkg
		}
		sum := s.calleeSummary(cc)
		name := calleeName(cc)
		if sum.Incomplete {
			fa.Summary.Incomplete = true
		}
		// A literal defined in this function shares its frame: captured
		// locals are valid caller keys as-is.
		translate := func(k Key) Key {
			if cc.Lit != nil && k.Ref == RefLocal {
				return k
			}
			tk, _ := translateKey(k, fa.ctx, call)
			return tk
		}
		for _, k := range sum.NetHeld {
			add(Op{Kind: KindAcquire, Mode: ModeAny, Key: translate(k), Pos: call.Pos(), Via: name})
		}
		for _, k := range sum.NetReleased {
			add(Op{Kind: KindRelease, Mode: ModeAny, Key: translate(k), Pos: call.Pos(), Via: name})
		}
		for _, a := range sum.Acquired {
			imported := Op{
				Kind: a.Kind, Mode: a.Mode,
				Key: Key{Class: a.Key.Class, Family: a.Key.Family},
				Pos: call.Pos(), Via: chain(name, a.Via),
			}
			fa.Summary.Acquired = append(fa.Summary.Acquired, imported)
			// Family-only pseudo-event so the edge replay can draw
			// held-here -> acquired-in-callee order edges at this site.
			add(imported)
		}
		for _, w := range sum.Waits {
			imported := Op{Kind: KindWait, Key: w.Key, Pos: call.Pos(), Via: chain(name, w.Via)}
			fa.Summary.Waits = append(fa.Summary.Waits, imported)
			// Pseudo-event so held-state clients see the park at this site.
			add(imported)
		}
		for _, e := range sum.Edges {
			fa.Summary.Edges = append(fa.Summary.Edges, Edge{
				From: e.From, To: e.To, Pos: e.Pos, Via: chain(name, e.Via),
			})
		}
	}
}

// finishSummary derives the caller-visible summary from the solved view.
func (s *Set) finishSummary(fa *FuncAnalysis) {
	sum := fa.Summary

	// Direct acquisition families and parking sites. Translated events
	// (Via != "") are skipped: their families were already imported from
	// the callee's own Acquired list in collectCall.
	for i := range fa.Events {
		ev := &fa.Events[i]
		if ev.Op.Via != "" {
			continue
		}
		switch ev.Op.Kind {
		case KindAcquire, KindTry, KindSection:
			sum.Acquired = append(sum.Acquired, Op{
				Kind: ev.Op.Kind, Mode: ev.Op.Mode,
				Key: Key{Class: ev.Op.Key.Class, Family: ev.Op.Key.Family},
				Pos: ev.Op.Pos,
			})
		case KindWait:
			sum.Waits = append(sum.Waits, ev.Op)
		}
	}

	// Net effects. NetHeld: may-held at exit, minus keys whose release is
	// deferred (the deferred block runs on every exit path, normal or
	// panicking, once registration is reached; conditional registration
	// keeps the key in the may-held set only on paths that skipped it —
	// a report for spanleak, not for the summary, which describes what
	// callers see after a normal return).
	deferReleased := make(map[Key]bool)
	acquired := make(map[id]bool)
	for i := range fa.Events {
		ev := &fa.Events[i]
		if ev.Op.Kind == KindRelease && ev.Defer != nil {
			deferReleased[ev.Op.Key] = true
		}
		if ev.Op.Kind == KindAcquire && ev.Op.Key.Pairable() {
			acquired[ev.Op.Key.id()] = true
		}
	}
	exitHeld := fa.Held.In[fa.Graph.Exit]
	for k, bit := range fa.KeyBit {
		if !exitHeld.Has(bit) {
			continue
		}
		released := false
		for dk := range deferReleased {
			if dk.Covers(k) {
				released = true
				break
			}
		}
		if !released {
			sum.NetHeld = append(sum.NetHeld, k)
		}
	}
	for i := range fa.Events {
		ev := &fa.Events[i]
		if ev.Op.Kind != KindRelease || !ev.Op.Key.Pairable() {
			continue
		}
		if !acquired[ev.Op.Key.id()] {
			sum.NetReleased = appendKeyOnce(sum.NetReleased, ev.Op.Key)
		}
	}
	sortKeys(sum.NetHeld)
	sortKeys(sum.NetReleased)

	// Order edges: at each acquiring event, an edge from every family that
	// may be held to the acquired family. Self-edges are dropped — same-
	// family ordering is the index rules' job (DESIGN §12 L2/L3), and a
	// loop acquiring h.spans[s] while holding h.spans[s-1] is the correct
	// ascending pattern, not a cycle.
	seenEdge := make(map[[2]string]bool)
	for _, e := range sum.Edges {
		seenEdge[[2]string{e.From, e.To}] = true
	}
	for _, blk := range fa.Graph.Blocks {
		fa.HeldFlow.ReplayForward(blk, fa.Held.In[blk], func(n ast.Node, guarded bool, before dataflow.Bits) {
			for _, i := range fa.At[n] {
				ev := &fa.Events[i]
				switch ev.Op.Kind {
				case KindAcquire, KindTry, KindSection:
				default:
					continue
				}
				to := ev.Op.Key.Family
				for bit, k := range fa.Keys {
					if !before.Has(bit) || k.Family == to {
						continue
					}
					key := [2]string{k.Family, to}
					if !seenEdge[key] {
						seenEdge[key] = true
						sum.Edges = append(sum.Edges, Edge{From: k.Family, To: to, Pos: ev.Op.Pos, Via: ev.Op.Via})
					}
				}
			}
		})
	}

	// Deduplicate what the summary exports so transitive imports stay
	// bounded: one representative per acquired family and per park site,
	// one edge per (from, to) pair.
	sum.Acquired = dedupOps(sum.Acquired)
	if len(sum.Waits) > 1 {
		sum.Waits = sum.Waits[:1]
	}
	sum.Edges = dedupEdges(sum.Edges)
}

func dedupOps(ops []Op) []Op {
	seen := make(map[string]bool, len(ops))
	out := ops[:0]
	for _, o := range ops {
		k := o.Key.Family
		if o.Kind == KindSection {
			k += "#section"
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, o)
		}
	}
	return out
}

func dedupEdges(edges []Edge) []Edge {
	seen := make(map[[2]string]bool, len(edges))
	out := edges[:0]
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	return out
}

func appendKeyOnce(ks []Key, k Key) []Key {
	for _, have := range ks {
		if have.id() == k.id() {
			return ks
		}
	}
	return append(ks, k)
}

func sortKeys(ks []Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && keyLess(ks[j], ks[j-1]); j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func keyLess(a, b Key) bool {
	if a.Family != b.Family {
		return a.Family < b.Family
	}
	return a.Path < b.Path
}

// condAnchor returns the leftmost condition leaf: the node in the loop's
// head block evaluated on every pass through the loop region (the cond
// lowering splits short-circuit operands into separate blocks, but the
// leftmost leaf always lands in the head).
func condAnchor(cond ast.Expr) ast.Node {
	for {
		switch x := ast.Unparen(cond).(type) {
		case *ast.BinaryExpr:
			if x.Op == token.LAND || x.Op == token.LOR {
				cond = x.X
				continue
			}
		case *ast.UnaryExpr:
			if x.Op == token.NOT {
				cond = x.X
				continue
			}
		case nil:
			return nil
		}
		return ast.Unparen(cond)
	}
}

// spinTryLock recognizes `for !m.TryLock() { ... }` conditions, returning
// the TryLock call.
func spinTryLock(cond ast.Expr) *ast.CallExpr {
	u, ok := ast.Unparen(cond).(*ast.UnaryExpr)
	if !ok || u.Op != token.NOT {
		return nil
	}
	call, ok := ast.Unparen(u.X).(*ast.CallExpr)
	if !ok {
		return nil
	}
	return call
}
