// Package summary computes interprocedural lock summaries: for every
// function reachable from an analyzed package, which locks it acquires,
// releases, leaves held at exit, and in what order — the facts DESIGN §11's
// deadlock-freedom argument is written in terms of, lifted off the page and
// onto the call graph so the lockorder and spanleak analyzers can check the
// invariant across `core.SpanHandle`, `internal/locktable`, and
// `internal/workload` call chains instead of one function at a time.
//
// # The closed lock surface
//
// Lock operations are recognized at call sites by method name and
// signature (the protocol surface), not by descending into lock
// implementations:
//
//   - span two-phase ops:   AcquireRead/ReleaseRead/AcquireWrite/ReleaseWrite(csID int)
//   - closure sections:     Read/Write/ReadN/WriteN/ReadAll(..., body func(...))
//   - baseline mutexes:     Lock/Unlock/RLock/RUnlock() and the
//     `for !m.TryLock()` spin idiom
//   - waiter parking:       Park(addr, expected) and Pause(addr, expected, spins)
//
// Everything else — interface method calls, resolved function values,
// declared functions — is summarized bottom-up over the callgraph; calls
// the graph cannot resolve are assumed lock-free (the closed-surface
// assumption) but mark the summary Incomplete so clients know the verdict
// is partial. Recursion is widened: a cycle member sees a bottom summary
// (no effects, Incomplete) for its back edges, keeping the computation
// finite while preserving every directly visible effect.
//
// # Keys and families
//
// A lock operand has two identities. Its Key — root object plus normalized
// selector path, with variable indexes collapsed to "[*]" — pairs acquires
// with releases inside one function and translates across call sites
// (callee receiver/parameter roots rewrite to the caller's argument
// expressions). Its Family — the operand's static type — names a node in
// the global lock-acquisition-order graph, where per-instance identity is
// neither available nor needed: DESIGN §11 orders whole shard families,
// not individual shards.
package summary

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/driver"
)

// Class says which protocol surface an operation belongs to.
type Class uint8

const (
	// ClassSpan is the two-phase SpanHandle surface:
	// AcquireRead/ReleaseRead/AcquireWrite/ReleaseWrite(csID int).
	ClassSpan Class = iota
	// ClassSection is the closure-section surface:
	// Read/Write/ReadN/WriteN/ReadAll with a func-typed final parameter.
	ClassSection
	// ClassBaseline is the plain mutex surface:
	// Lock/Unlock/RLock/RUnlock/TryLock with empty parameter lists.
	ClassBaseline
	// ClassWait is the parking surface: Park(addr, expected) and
	// Pause(addr, expected, spins).
	ClassWait
)

func (c Class) String() string {
	switch c {
	case ClassSpan:
		return "span"
	case ClassSection:
		return "section"
	case ClassBaseline:
		return "lock"
	case ClassWait:
		return "wait"
	}
	return "?"
}

// Mode is the read/write flavor of an operation. ModeAny marks summarized
// effects that merge both flavors (e.g. acquireMarked's write parameter).
type Mode uint8

const (
	ModeAny Mode = iota
	ModeRead
	ModeWrite
)

// Kind is what an operation does to its lock.
type Kind uint8

const (
	// KindAcquire takes the lock and leaves it held.
	KindAcquire Kind = iota
	// KindRelease drops a held lock.
	KindRelease
	// KindSection runs a closure with the lock held: balanced by
	// construction, but an ordering event and a leaf-constraint site.
	KindSection
	// KindWait parks or pauses the calling thread.
	KindWait
	// KindTry is a TryLock call outside the `for !m.TryLock()` idiom:
	// conditionally acquires, tracked only as an ordering event.
	KindTry
)

// RefKind classifies a Key's root for call-site translation.
type RefKind uint8

const (
	// RefNone marks a family-only key: the operand could not be rooted in
	// a named object (e.g. a call-expression receiver). Family-only keys
	// feed the order graph but cannot pair acquires with releases.
	RefNone RefKind = iota
	// RefRecv roots the key in the enclosing method's receiver.
	RefRecv
	// RefParam roots the key in parameter Index of the enclosing function.
	RefParam
	// RefLocal roots the key in a local (or captured) variable.
	RefLocal
	// RefGlobal roots the key in a package-level variable.
	RefGlobal
)

// Key identifies one lock operand.
type Key struct {
	Class Class
	Ref   RefKind
	// Index is the parameter index when Ref is RefParam.
	Index int
	// Obj is the root object (receiver, parameter, local, or global).
	// nil for family-only keys.
	Obj types.Object
	// Path is the normalized selector path from the root: field accesses
	// verbatim, constant indexes as "[c]", variable indexes as "[*]".
	Path string
	// Family is the operand's static type rendered "pkg.Type" — the node
	// this operand contributes to the lock-order graph.
	Family string
}

// Pairable reports whether the key can match acquires against releases
// (family-only keys cannot).
func (k Key) Pairable() bool { return k.Obj != nil }

// Indexed reports whether the key's path goes through a variable index:
// one member of a lock family, selected dynamically.
func (k Key) Indexed() bool { return strings.Contains(k.Path, "[*]") }

// id is the pairing identity: root object, path, and class. Mode and
// reference kind are deliberately excluded — AcquireWrite and ReleaseRead
// on the same operand must collide so mismatches are visible.
type id struct {
	obj   types.Object
	path  string
	class Class
}

func (k Key) id() id { return id{k.Obj, k.Path, k.Class} }

// Covers reports whether a release on k discharges an obligation on k2:
// same identity, or k is the "[*]" generalization of k2's constant index
// (a release loop over h.spans[s] covers an acquire of h.spans[3]).
func (k Key) Covers(k2 Key) bool {
	if !k.Pairable() || !k2.Pairable() {
		return false
	}
	if k.id() == k2.id() {
		return true
	}
	return k.Obj == k2.Obj && k.Class == k2.Class && generalizePath(k2.Path) == k.Path
}

// generalizePath collapses constant indexes to "[*]".
func generalizePath(p string) string {
	var b strings.Builder
	for i := 0; i < len(p); {
		if p[i] == '[' {
			j := strings.IndexByte(p[i:], ']')
			if j < 0 {
				b.WriteString(p[i:])
				break
			}
			b.WriteString("[*]")
			i += j + 1
			continue
		}
		b.WriteByte(p[i])
		i++
	}
	return b.String()
}

// String renders the key for diagnostics: the family plus any
// distinguishing path, e.g. "locktable.Handle.spans[*]" renders from the
// root type, or just "locks.SpinMutex" when the path is empty.
func (k Key) String() string {
	if k.Path == "" || k.Obj == nil {
		return k.Family
	}
	root := typeName(k.Obj.Type())
	if root == "" {
		return k.Family
	}
	return root + k.Path
}

// Op is one lock operation observed in (or translated into) a function.
type Op struct {
	Kind Kind
	Mode Mode
	Key  Key
	// Pos is the reporting position: the call site in the analyzed
	// function (for translated ops, the call that reaches the effect).
	Pos token.Pos
	// Via names the callee chain for translated ops ("" for direct ones).
	Via string
	// BodyArg is the closure argument of a direct KindSection op.
	BodyArg ast.Expr
}

// Describe renders the op for diagnostics.
func (o Op) Describe() string {
	var verb string
	switch o.Kind {
	case KindAcquire:
		verb = "acquires"
	case KindRelease:
		verb = "releases"
	case KindSection:
		verb = "runs a section on"
	case KindWait:
		verb = "parks"
	case KindTry:
		verb = "try-locks"
	}
	s := verb
	if o.Kind != KindWait {
		s += " " + o.Key.String()
	}
	if o.Via != "" {
		s += " (via " + o.Via + ")"
	}
	return s
}

// Edge is one lock-order edge: some path acquires (or sections on) family
// To while holding a member of family From.
type Edge struct {
	From, To string
	// Pos is the acquiring call site.
	Pos token.Pos
	// Via names the call chain when the edge was imported from a callee.
	Via string
}

// Summary is a function's caller-visible lock behavior.
type Summary struct {
	// NetHeld are keys that may still be held when the function returns
	// (deferred releases already discounted) — acquire obligations the
	// caller inherits, in callee frame (translate before use).
	NetHeld []Key
	// NetReleased are keys the function releases without acquiring them
	// itself — the release half of a net-acquire/net-release helper pair
	// like locktable's acquireMarked/releaseMarked.
	NetReleased []Key
	// Acquired lists every family the function (transitively) acquires,
	// try-locks, or sections on, with a representative site and chain —
	// the targets of order edges from whatever the caller already holds.
	Acquired []Op
	// Waits lists parking sites (transitively) reachable from the
	// function, for the leaf rule on closure-section bodies.
	Waits []Op
	// Edges are the function's (transitive) internal order edges at
	// family granularity.
	Edges []Edge
	// Incomplete records that some call could not be resolved (or was
	// widened away): the summary is a lower bound on the function's
	// effects.
	Incomplete bool
	// Widened marks a recursion bottom handed to a cycle member.
	Widened bool
}

// Touches reports whether the function can reach any lock operation at
// all — the leaf condition for closure-section bodies.
func (s *Summary) Touches() bool {
	return len(s.Acquired) > 0 || len(s.Waits) > 0 ||
		len(s.NetHeld) > 0 || len(s.NetReleased) > 0
}

// TouchDescribe renders the first reachable lock effect for diagnostics.
func (s *Summary) TouchDescribe() string {
	if len(s.Acquired) > 0 {
		return s.Acquired[0].Describe()
	}
	if len(s.Waits) > 0 {
		return s.Waits[0].Describe()
	}
	if len(s.NetHeld) > 0 {
		return "leaves " + s.NetHeld[0].String() + " held"
	}
	if len(s.NetReleased) > 0 {
		return "releases " + s.NetReleased[0].String()
	}
	return "touches locks"
}

// fnCtx is the frame keys are computed in: the receiver and parameters of
// the function under analysis.
type fnCtx struct {
	pkg    *driver.Package
	recv   types.Object
	params []types.Object // aligned with signature indices; nil for unnamed
}

func declCtx(pkg *driver.Package, decl *ast.FuncDecl) *fnCtx {
	ctx := &fnCtx{pkg: pkg}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		ctx.recv = pkg.Info.Defs[decl.Recv.List[0].Names[0]]
	}
	ctx.params = fieldObjs(pkg, decl.Type.Params)
	return ctx
}

func litCtx(pkg *driver.Package, lit *ast.FuncLit) *fnCtx {
	return &fnCtx{pkg: pkg, params: fieldObjs(pkg, lit.Type.Params)}
}

func fieldObjs(pkg *driver.Package, fl *ast.FieldList) []types.Object {
	if fl == nil {
		return nil
	}
	var objs []types.Object
	for _, f := range fl.List {
		if len(f.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, n := range f.Names {
			objs = append(objs, pkg.Info.Defs[n])
		}
	}
	return objs
}

// classify recognizes one protocol-surface call. ok is false for calls
// that are not lock operations (they go to the callgraph instead).
func classify(ctx *fnCtx, call *ast.CallExpr) (Op, bool) {
	fn := astq.CalleeFunc(ctx.pkg.Info, call)
	if fn == nil {
		// CalleeFunc refuses interface dispatch (the callgraph cannot name
		// the dynamic callee), but classification is by name and signature,
		// which the interface method carries: h.spans[s].AcquireWrite through
		// core.SpanHandle is a span acquire no matter which handle it hits.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if s := ctx.pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
				fn, _ = s.Obj().(*types.Func)
			}
		}
	}
	if fn == nil {
		return Op{}, false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return Op{}, false
	}
	recv := recvExpr(call)
	if recv == nil {
		return Op{}, false
	}
	name := fn.Name()
	params := sig.Params()
	op := Op{Pos: call.Pos()}
	switch name {
	case "AcquireRead", "AcquireWrite", "ReleaseRead", "ReleaseWrite":
		if params.Len() != 1 || !isIntType(params.At(0).Type()) {
			return Op{}, false
		}
		op.Key = keyOf(ctx, recv, ClassSpan)
		if strings.HasPrefix(name, "Acquire") {
			op.Kind = KindAcquire
		} else {
			op.Kind = KindRelease
		}
		if strings.HasSuffix(name, "Read") {
			op.Mode = ModeRead
		} else {
			op.Mode = ModeWrite
		}
	case "Read", "Write", "ReadN", "WriteN", "ReadAll":
		n := params.Len()
		if n == 0 || n != len(call.Args) {
			return Op{}, false
		}
		if _, ok := params.At(n - 1).Type().Underlying().(*types.Signature); !ok {
			return Op{}, false
		}
		op.Kind = KindSection
		op.Key = keyOf(ctx, recv, ClassSection)
		op.BodyArg = call.Args[n-1]
		if strings.HasPrefix(name, "Read") {
			op.Mode = ModeRead
		} else {
			op.Mode = ModeWrite
		}
	case "Lock", "Unlock", "RLock", "RUnlock":
		if params.Len() != 0 || sig.Results().Len() != 0 {
			return Op{}, false
		}
		op.Key = keyOf(ctx, recv, ClassBaseline)
		if strings.HasSuffix(name, "Unlock") {
			op.Kind = KindRelease
		} else {
			op.Kind = KindAcquire
		}
		if strings.HasPrefix(name, "R") {
			op.Mode = ModeRead
		} else {
			op.Mode = ModeWrite
		}
	case "TryLock":
		if params.Len() != 0 || sig.Results().Len() != 1 {
			return Op{}, false
		}
		// KindTry here; the analysis upgrades `for !m.TryLock()` spins
		// to KindAcquire.
		op.Kind = KindTry
		op.Mode = ModeWrite
		op.Key = keyOf(ctx, recv, ClassBaseline)
	case "Park":
		if params.Len() != 2 {
			return Op{}, false
		}
		op.Kind = KindWait
		op.Key = Key{Class: ClassWait, Family: "park"}
	case "Pause":
		if params.Len() != 3 {
			return Op{}, false
		}
		op.Kind = KindWait
		op.Key = Key{Class: ClassWait, Family: "park"}
	default:
		return Op{}, false
	}
	return op, true
}

// recvExpr returns the receiver expression of a method-selector call.
func recvExpr(call *ast.CallExpr) ast.Expr {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

// keyOf normalizes a lock operand into a Key in ctx's frame.
func keyOf(ctx *fnCtx, expr ast.Expr, class Class) Key {
	k := Key{Class: class, Family: familyOf(ctx.pkg.Info, expr)}
	path := ""
	e := ast.Unparen(expr)
walk:
	for {
		switch x := e.(type) {
		case *ast.SelectorExpr:
			path = "." + x.Sel.Name + path
			e = ast.Unparen(x.X)
		case *ast.IndexExpr:
			path = "[" + indexLabel(ctx.pkg.Info, x.Index) + "]" + path
			e = ast.Unparen(x.X)
		case *ast.StarExpr:
			e = ast.Unparen(x.X)
		case *ast.Ident:
			break walk
		default:
			return k // family-only
		}
	}
	root, _ := e.(*ast.Ident)
	obj := ctx.pkg.Info.Uses[root]
	if obj == nil {
		obj = ctx.pkg.Info.Defs[root]
	}
	if obj == nil {
		return k
	}
	k.Obj, k.Path = obj, path
	switch {
	case obj == ctx.recv && ctx.recv != nil:
		k.Ref = RefRecv
	default:
		for i, p := range ctx.params {
			if p != nil && p == obj {
				k.Ref, k.Index = RefParam, i
				return k
			}
		}
		if v, ok := obj.(*types.Var); ok && astq.IsPackageLevel(v) {
			k.Ref = RefGlobal
		} else {
			k.Ref = RefLocal
		}
	}
	return k
}

// indexLabel renders an index expression: constant values verbatim,
// everything else "*".
func indexLabel(info *types.Info, e ast.Expr) string {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		return tv.Value.ExactString()
	}
	return "*"
}

// constIndex extracts a constant integer index, if any.
func constIndex(info *types.Info, e ast.Expr) (int, bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, err := strconv.Atoi(tv.Value.ExactString()); err == nil {
			return v, true
		}
	}
	return 0, false
}

// familyOf renders the operand's static type as the order-graph node name.
func familyOf(info *types.Info, e ast.Expr) string {
	t := astq.TypeOf(info, e)
	if t == nil {
		return "?"
	}
	if name := typeName(t); name != "" {
		return name
	}
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}

// typeName renders a (possibly pointer-wrapped) named type "pkg.Name".
func typeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return obj.Pkg().Name() + "." + obj.Name()
}

// isIntType reports whether t's underlying type is a plain int.
func isIntType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// translateKey rewrites a callee-frame key into the caller's frame at one
// call site. ok is false when the key cannot be rooted in the caller (the
// result is then family-only: order-graph material, not pairable).
func translateKey(k Key, callerCtx *fnCtx, call *ast.CallExpr) (Key, bool) {
	fam := Key{Class: k.Class, Family: k.Family}
	switch k.Ref {
	case RefGlobal:
		return k, true
	case RefRecv:
		recv := recvExpr(call)
		if recv == nil {
			return fam, false
		}
		base := keyOf(callerCtx, recv, k.Class)
		if !base.Pairable() {
			return fam, false
		}
		base.Path += k.Path
		base.Family = k.Family
		return base, true
	case RefParam:
		if k.Index >= len(call.Args) {
			return fam, false
		}
		base := keyOf(callerCtx, call.Args[k.Index], k.Class)
		if !base.Pairable() {
			return fam, false
		}
		base.Path += k.Path
		base.Family = k.Family
		return base, true
	}
	// Callee locals and family-only keys cannot be named by the caller.
	return fam, false
}

// chain prepends a callee name to a via chain, capping depth so messages
// stay readable.
func chain(callee, via string) string {
	if via == "" {
		return callee
	}
	if strings.Count(via, " -> ") >= 2 {
		return callee + " -> ..."
	}
	return callee + " -> " + via
}
