package summary

import (
	"go/ast"
	"os"
	"path/filepath"
	"testing"

	"sprwl/internal/analysis/driver"
)

// loadPkg materializes a throwaway module holding src as package p and
// returns the loaded package plus its summary set.
func loadPkg(t *testing.T, src string) (*Set, *driver.Package) {
	t.Helper()
	dir := t.TempDir()
	files := map[string]string{
		"go.mod": "module example.com/m\n\ngo 1.22\n",
		"p.go":   src,
	}
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := driver.NewProgram(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := prog.Load("example.com/m")
	if err != nil {
		t.Fatal(err)
	}
	return For(prog), pkg
}

// decl finds a function declaration by name.
func decl(t *testing.T, pkg *driver.Package, name string) *ast.FuncDecl {
	t.Helper()
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
				return fd
			}
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// header declares the mirror lock surface the tests operate on.
const header = `package p

type mutex struct{}

func (*mutex) Lock()         {}
func (*mutex) Unlock()       {}
func (*mutex) TryLock() bool { return true }

type span struct{}

func (span) AcquireRead(csID int)  {}
func (span) ReleaseRead(csID int)  {}
func (span) AcquireWrite(csID int) {}
func (span) ReleaseWrite(csID int) {}

type handle struct {
	spans []span
	m     mutex
}
`

func TestNetHeldAndTranslation(t *testing.T) {
	s, pkg := loadPkg(t, header+`
func acquireAll(h *handle) {
	for i := 0; i < len(h.spans); i++ {
		h.spans[i].AcquireWrite(0)
	}
}

func releaseAll(h *handle) {
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].ReleaseWrite(0)
	}
}

func balanced(h *handle) {
	acquireAll(h)
	releaseAll(h)
}
`)
	acq := s.FuncSummary(decl(t, pkg, "acquireAll"), pkg)
	if len(acq.NetHeld) != 1 || acq.NetHeld[0].Path != ".spans[*]" || acq.NetHeld[0].Ref != RefParam {
		t.Fatalf("acquireAll NetHeld = %+v, want one RefParam .spans[*] key", acq.NetHeld)
	}
	if len(acq.NetReleased) != 0 {
		t.Fatalf("acquireAll NetReleased = %+v, want empty", acq.NetReleased)
	}
	rel := s.FuncSummary(decl(t, pkg, "releaseAll"), pkg)
	if len(rel.NetReleased) != 1 || rel.NetReleased[0].Path != ".spans[*]" {
		t.Fatalf("releaseAll NetReleased = %+v, want one .spans[*] key", rel.NetReleased)
	}
	if len(rel.NetHeld) != 0 {
		t.Fatalf("releaseAll NetHeld = %+v, want empty", rel.NetHeld)
	}
	// The caller pairs the two translated effects: nothing stays held.
	bal := s.FuncSummary(decl(t, pkg, "balanced"), pkg)
	if len(bal.NetHeld) != 0 {
		t.Fatalf("balanced NetHeld = %+v, want empty (translated acquire paired with translated release)", bal.NetHeld)
	}
	if !bal.Touches() {
		t.Fatal("balanced should still report reachable lock activity")
	}
}

func TestRecursionWidening(t *testing.T) {
	s, pkg := loadPkg(t, header+`
func rec(h *handle, n int) {
	h.m.Lock()
	if n > 0 {
		rec(h, n-1)
	}
}

func mutual1(h *handle) { h.m.Lock(); mutual2(h) }
func mutual2(h *handle) { mutual1(h); h.m.Unlock() }
`)
	// Direct self-recursion: the back edge widens to bottom, the direct
	// acquire survives, and the verdict is marked incomplete.
	rec := s.FuncSummary(decl(t, pkg, "rec"), pkg)
	if !rec.Incomplete {
		t.Fatal("recursive summary must be Incomplete")
	}
	if len(rec.NetHeld) != 1 || rec.NetHeld[0].Path != ".m" {
		t.Fatalf("rec NetHeld = %+v, want the directly acquired .m", rec.NetHeld)
	}
	// Mutual recursion terminates and keeps each member's direct effects.
	m1 := s.FuncSummary(decl(t, pkg, "mutual1"), pkg)
	if !m1.Incomplete {
		t.Fatal("mutual recursion must be Incomplete")
	}
	if len(m1.Acquired) == 0 {
		t.Fatalf("mutual1 should record its direct acquire, got %+v", m1.Acquired)
	}
}

func TestIncompleteCallGraph(t *testing.T) {
	s, pkg := loadPkg(t, header+`
func viaValue(f func()) {
	f()
}

func known(h *handle) {
	h.m.Lock()
	h.m.Unlock()
}
`)
	// A call through an unresolvable function value is assumed lock-free
	// but poisons completeness.
	v := s.FuncSummary(decl(t, pkg, "viaValue"), pkg)
	if !v.Incomplete {
		t.Fatal("unresolved call must mark the summary Incomplete")
	}
	if v.Touches() {
		t.Fatalf("unresolved call must not invent lock effects: %+v", v.Acquired)
	}
	k := s.FuncSummary(decl(t, pkg, "known"), pkg)
	if k.Incomplete {
		t.Fatal("fully resolved function must not be Incomplete")
	}
	if len(k.NetHeld) != 0 {
		t.Fatalf("balanced lock/unlock should not stay held: %+v", k.NetHeld)
	}
}

func TestSpinTryLockIdiom(t *testing.T) {
	s, pkg := loadPkg(t, header+`
func blockingLock(m *mutex) {
	for !m.TryLock() {
	}
}

func plainTry(m *mutex) bool {
	return m.TryLock()
}
`)
	b := s.FuncSummary(decl(t, pkg, "blockingLock"), pkg)
	if len(b.NetHeld) != 1 || b.NetHeld[0].Ref != RefParam {
		t.Fatalf("spin TryLock should net-hold its parameter, got %+v", b.NetHeld)
	}
	p := s.FuncSummary(decl(t, pkg, "plainTry"), pkg)
	if len(p.NetHeld) != 0 {
		t.Fatalf("a plain TryLock is conditional, must not net-hold: %+v", p.NetHeld)
	}
}

func TestDeferredRelease(t *testing.T) {
	s, pkg := loadPkg(t, header+`
func deferred(h *handle) {
	h.m.Lock()
	defer h.m.Unlock()
}

func deferredLit(h *handle) {
	h.m.Lock()
	defer func() { h.m.Unlock() }()
}
`)
	for _, name := range []string{"deferred", "deferredLit"} {
		sum := s.FuncSummary(decl(t, pkg, name), pkg)
		if len(sum.NetHeld) != 0 {
			t.Fatalf("%s: deferred release should discount NetHeld, got %+v", name, sum.NetHeld)
		}
	}
}

func TestOrderEdges(t *testing.T) {
	s, pkg := loadPkg(t, header+`
func nested(h *handle) {
	h.m.Lock()
	h.spans[0].AcquireRead(0)
	h.spans[0].ReleaseRead(0)
	h.m.Unlock()
}

func viaHelper(h *handle) {
	h.m.Lock()
	helperAcquire(h)
	h.m.Unlock()
}

func helperAcquire(h *handle) {
	h.spans[1].AcquireRead(0)
	h.spans[1].ReleaseRead(0)
}
`)
	n := s.FuncSummary(decl(t, pkg, "nested"), pkg)
	if len(n.Edges) != 1 || n.Edges[0].From != "p.mutex" || n.Edges[0].To != "p.span" {
		t.Fatalf("nested edges = %+v, want p.mutex -> p.span", n.Edges)
	}
	// The same edge must surface interprocedurally: the caller holds the
	// mutex across a call whose summary acquires the span family.
	v := s.FuncSummary(decl(t, pkg, "viaHelper"), pkg)
	found := false
	for _, e := range v.Edges {
		if e.From == "p.mutex" && e.To == "p.span" {
			found = true
		}
	}
	if !found {
		t.Fatalf("viaHelper edges = %+v, want p.mutex -> p.span via helperAcquire", v.Edges)
	}
}

func TestBodySummaries(t *testing.T) {
	s, pkg := loadPkg(t, header+`
type lock struct{}

func (lock) Read(csID int, body func(int))  {}
func (lock) Write(csID int, body func(int)) {}

func sections(h *handle, l lock) {
	l.Read(0, func(int) {})
	l.Write(0, func(int) { h.m.Lock(); h.m.Unlock() })
}
`)
	fa := s.Analyze(pkg, decl(t, pkg, "sections"))
	var bodies []ast.Expr
	for _, ev := range fa.Events {
		if ev.Op.Kind == KindSection {
			bodies = append(bodies, ev.Op.BodyArg)
		}
	}
	if len(bodies) != 2 {
		t.Fatalf("got %d section events, want 2", len(bodies))
	}
	clean, _, complete := s.BodySummaries(pkg, bodies[0])
	if !complete || len(clean) != 1 || clean[0].Touches() {
		t.Fatalf("clean body: complete=%v sums=%+v", complete, clean)
	}
	dirty, _, complete := s.BodySummaries(pkg, bodies[1])
	if !complete || len(dirty) != 1 || !dirty[0].Touches() {
		t.Fatalf("locking body must report Touches: complete=%v sums=%+v", complete, dirty)
	}
}
