// Package hotpathalloc enforces the repository's allocation-free hot-path
// invariant: a function annotated with a //sprwl:hotpath doc-comment
// directive — and every module function it statically calls — must not
// contain allocation-causing constructs.
//
// The annotated paths are the HTM emulation's transactional Load/Store and
// Attempt (DESIGN.md "Emulation data structures": flat, allocation-free in
// steady state), the obs event-ring record methods (obs package doc,
// "Hot-path contract"), and SpRWL's Read/Write critical-section paths. A
// single stray allocation on any of these turns a nanosecond-scale
// operation into a garbage-collector customer and invalidates the paper's
// scaling comparisons.
//
// Reported constructs: make and new; append (growth may allocate); map and
// slice literals and &composite literals; map writes; string concatenation
// and string<->[]byte/[]rune conversions; function literals that capture
// variables (closure allocation); interface boxing of non-pointer values
// (call arguments and assignments); any call into package fmt; and the
// print/println builtins.
//
// Limits, by design: dynamic calls (interface methods and func values) are
// not followed — keep hot paths concrete, and back the static guarantee
// with testing.AllocsPerRun regression tests (see TestEmitAllocs,
// TestTxFastPathAllocs, TestReadWriteAllocs). Arguments of panic calls are
// skipped: unwinding is already the exceptional, allocation-tolerant path.
// Amortized growth that is provably allocation-free in steady state is
// suppressed at the site with //sprwl:allow(hotpathalloc) plus a
// justification.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sprwl/internal/analysis/driver"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &driver.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-causing constructs in //sprwl:hotpath functions and their static callees",
	Run:  run,
}

func run(pass *driver.Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !driver.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			c := &checker{pass: pass, visited: make(map[*types.Func]bool)}
			c.checkFunc(pass.Pkg, fd, []string{funcName(pass.Pkg, fd)})
		}
	}
	return nil
}

type checker struct {
	pass    *driver.Pass
	visited map[*types.Func]bool
}

func funcName(pkg *driver.Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return pkg.Name + "." + name
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	}
	return ""
}

func (c *checker) checkFunc(pkg *driver.Package, fd *ast.FuncDecl, chain []string) {
	c.walk(pkg, fd.Body, chain)
}

// follow descends into a statically-resolved callee declared in a loaded
// (module) package.
func (c *checker) follow(fn *types.Func, chain []string) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	src, ok := c.pass.Prog.FuncSource(fn)
	if !ok || src.Decl.Body == nil {
		return
	}
	c.checkFunc(src.Pkg, src.Decl, append(chain, funcName(src.Pkg, src.Decl)))
}

func (c *checker) report(chain []string, pos token.Pos, format string, args ...any) {
	via := ""
	if len(chain) > 1 {
		via = " (reached via " + strings.Join(chain, " -> ") + ")"
	}
	c.pass.Reportf(pos, "hotpath %s: %s%s", chain[0], fmt.Sprintf(format, args...), via)
}

func (c *checker) walk(pkg *driver.Package, root ast.Node, chain []string) {
	info := pkg.Info
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(pkg, n, chain)
		case *ast.FuncLit:
			if caps := captures(info, n); len(caps) > 0 {
				c.report(chain, n.Pos(), "function literal captures %s (closure allocates)", strings.Join(caps, ", "))
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				c.report(chain, n.Pos(), "map literal allocates")
			case *types.Slice:
				c.report(chain, n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(chain, n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.AssignStmt:
			c.checkAssign(info, n, chain)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := info.Types[n.X].Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.report(chain, n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			c.report(chain, n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

// checkCall handles builtins, conversions, static callees and
// interface-boxing arguments. It returns false when the subtree must not
// be descended into (panic arguments).
func (c *checker) checkCall(pkg *driver.Package, call *ast.CallExpr, chain []string) bool {
	info := pkg.Info

	// Conversions: string<->[]byte/[]rune copy; conversion to interface
	// boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(info, tv.Type, call, chain)
		return true
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(chain, call.Pos(), "make allocates")
			case "new":
				c.report(chain, call.Pos(), "new allocates")
			case "append":
				c.report(chain, call.Pos(), "append may grow and allocate")
			case "print", "println":
				c.report(chain, call.Pos(), "%s allocates and is not for hot paths", b.Name())
			case "panic":
				// Unwinding is the exceptional path; it is already
				// allocation-tolerant, so the panic argument
				// (including the boxed value) is exempt.
				return false
			}
			return true
		}
	}

	fn := calleeFunc(info, call)
	if fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Path() == "fmt":
			c.report(chain, call.Pos(), "call to fmt.%s allocates (formatting, boxing)", fn.Name())
			return true // boxing of its arguments is subsumed
		default:
			c.follow(fn, chain)
		}
	}
	c.checkArgBoxing(info, call, chain)
	return true
}

func (c *checker) checkConversion(info *types.Info, target types.Type, call *ast.CallExpr, chain []string) {
	arg := call.Args[0]
	at := info.Types[arg].Type
	if at == nil {
		return
	}
	if types.IsInterface(target) && boxes(at) {
		c.report(chain, call.Pos(), "conversion of %s to interface %s boxes (allocates)", at, target)
		return
	}
	tb, _ := target.Underlying().(*types.Basic)
	as, _ := at.Underlying().(*types.Slice)
	if tb != nil && tb.Info()&types.IsString != 0 && as != nil {
		c.report(chain, call.Pos(), "[]byte/[]rune-to-string conversion allocates")
	}
	ts, _ := target.Underlying().(*types.Slice)
	ab, _ := at.Underlying().(*types.Basic)
	if ts != nil && ab != nil && ab.Info()&types.IsString != 0 {
		c.report(chain, call.Pos(), "string-to-slice conversion allocates")
	}
}

func (c *checker) checkAssign(info *types.Info, as *ast.AssignStmt, chain []string) {
	// Map element writes may allocate (and the hot paths were de-mapped
	// deliberately — see DESIGN.md §7).
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, ok := info.Types[ix.X].Type.Underlying().(*types.Map); ok {
				c.report(chain, lhs.Pos(), "map assignment may allocate")
			}
		}
	}
	// Boxing through assignment to an interface-typed location.
	if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			lt := info.Types[lhs].Type
			rt := info.Types[as.Rhs[i]].Type
			if lt != nil && rt != nil && types.IsInterface(lt) && boxes(rt) {
				c.report(chain, as.Rhs[i].Pos(), "assignment of %s to interface %s boxes (allocates)", rt, lt)
			}
		}
	}
}

// checkArgBoxing reports non-pointer concrete values passed to
// interface-typed parameters.
func (c *checker) checkArgBoxing(info *types.Info, call *ast.CallExpr, chain []string) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if ok {
		for i, arg := range call.Args {
			pt := paramType(sig, i, call.Ellipsis != token.NoPos)
			at := info.Types[arg].Type
			if pt == nil || at == nil {
				continue
			}
			if types.IsInterface(pt) && boxes(at) {
				c.report(chain, arg.Pos(), "passing %s to interface parameter boxes (allocates)", at)
			}
		}
	}
}

func paramType(sig *types.Signature, i int, ellipsis bool) types.Type {
	params := sig.Params()
	n := params.Len()
	if n == 0 {
		return nil
	}
	if sig.Variadic() && i >= n-1 {
		if ellipsis {
			return params.At(n - 1).Type()
		}
		if s, ok := params.At(n - 1).Type().(*types.Slice); ok {
			return s.Elem()
		}
		return nil
	}
	if i < n {
		return params.At(i).Type()
	}
	return nil
}

// boxes reports whether storing a value of type t into an interface
// allocates: true for concrete non-pointer types (pointers and interfaces
// fit in the interface data word).
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		// Pointer-shaped: the value itself is the interface word.
		return false
	}
	return true
}

// captures lists the variables a function literal captures from its
// enclosing function, each of which forces a heap-allocated closure.
func captures(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Pkg() == nil || (v.Parent() != nil && v.Parent() == v.Pkg().Scope()) {
			return true // package-level: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}

// calleeFunc resolves a call's static callee: package functions and
// methods with concrete receivers. Interface methods and func values
// return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			if sel.Kind() == types.MethodVal && !types.IsInterface(sel.Recv()) {
				return sel.Obj().(*types.Func)
			}
			return nil
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
