// Package hotpathalloc enforces the repository's allocation-free hot-path
// invariant: a function annotated with a //sprwl:hotpath doc-comment
// directive — and every module function it statically calls — must not
// contain allocation-causing constructs.
//
// The annotated paths are the HTM emulation's transactional Load/Store and
// Attempt (DESIGN.md "Emulation data structures": flat, allocation-free in
// steady state), the obs event-ring record methods (obs package doc,
// "Hot-path contract"), and SpRWL's Read/Write critical-section paths. A
// single stray allocation on any of these turns a nanosecond-scale
// operation into a garbage-collector customer and invalidates the paper's
// scaling comparisons.
//
// Reported constructs: make and new; append (growth may allocate); map and
// slice literals and &composite literals; map writes; string concatenation
// and string<->[]byte/[]rune conversions; function literals that capture
// variables (closure allocation); interface boxing of non-pointer values
// (call arguments and assignments); any call into package fmt; and the
// print/println builtins.
//
// Two amortized/non-escaping patterns are recognized and exempted rather
// than suppressed at each site:
//
//   - a function literal consumed in place — the operand of a defer
//     statement or an immediately-invoked call — does not escape, so the
//     compiler keeps the closure context on the stack (the deferred
//     recover block is the canonical case);
//   - a self-append x = append(x, e) to storage whose only other
//     assignments in the package are self-truncations (x = x[:n]) or make
//     preallocations: steady-state growth is allocation-free once the
//     backing array has reached its high-water mark, and the truncation
//     reset is the in-source evidence of that discipline. A make on a hot
//     path is still reported by its own rule.
//
// Calls through stored function values are followed when the call graph
// resolves them completely (a struct field or variable bound to a known
// set of literals or functions); incomplete resolutions — parameters,
// interface methods, laundered values — are skipped, so keep hot paths
// concrete and back the static guarantee with testing.AllocsPerRun
// regression tests (see TestEmitAllocs, TestTxFastPathAllocs,
// TestReadWriteAllocs). Arguments of panic calls are skipped: unwinding is
// already the exceptional, allocation-tolerant path. Anything else that is
// deliberate is suppressed at the site with //sprwl:allow(hotpathalloc)
// plus a justification.
package hotpathalloc

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/callgraph"
	"sprwl/internal/analysis/driver"
)

// Analyzer is the hotpathalloc check.
var Analyzer = &driver.Analyzer{
	Name: "hotpathalloc",
	Doc:  "forbid allocation-causing constructs in //sprwl:hotpath functions and their static callees",
	Run:  run,
}

func run(pass *driver.Pass) error {
	c := &checker{
		pass:         pass,
		cg:           callgraph.Build(pass.Prog, []*driver.Package{pass.Pkg}),
		visited:      make(map[*types.Func]bool),
		visitedLit:   make(map[*ast.FuncLit]bool),
		amortized:    make(map[*types.Var]bool),
		exemptAppend: make(map[*ast.CallExpr]bool),
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !driver.HasDirective(fd.Doc, "hotpath") {
				continue
			}
			c.visited = make(map[*types.Func]bool)
			c.visitedLit = make(map[*ast.FuncLit]bool)
			c.walk(pass.Pkg, fd.Body, []string{funcName(pass.Pkg, fd)})
		}
	}
	return nil
}

type checker struct {
	pass       *driver.Pass
	cg         *callgraph.Graph
	visited    map[*types.Func]bool
	visitedLit map[*ast.FuncLit]bool
	// amortized memoizes the package-wide assignment audit behind the
	// self-append exemption, keyed by the appended-to storage object.
	amortized map[*types.Var]bool
	// exemptAppend marks append calls recognized as amortized self-appends.
	// The walk visits the enclosing assignment before the call, so the
	// entry is always in place when checkCall reaches the append.
	exemptAppend map[*ast.CallExpr]bool
}

func funcName(pkg *driver.Package, fd *ast.FuncDecl) string {
	name := fd.Name.Name
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if t := recvTypeName(fd.Recv.List[0].Type); t != "" {
			name = t + "." + name
		}
	}
	return pkg.Name + "." + name
}

func recvTypeName(t ast.Expr) string {
	switch t := t.(type) {
	case *ast.Ident:
		return t.Name
	case *ast.StarExpr:
		return recvTypeName(t.X)
	case *ast.IndexExpr:
		return recvTypeName(t.X)
	}
	return ""
}

// follow descends into a statically-resolved callee declared in a loaded
// (module) package.
func (c *checker) follow(fn *types.Func, chain []string) {
	if c.visited[fn] {
		return
	}
	c.visited[fn] = true
	src, ok := c.pass.Prog.FuncSource(fn)
	if !ok || src.Decl.Body == nil {
		return
	}
	c.walk(src.Pkg, src.Decl.Body, append(chain, funcName(src.Pkg, src.Decl)))
}

// followLit descends into a function literal reached through a stored
// function value the call graph resolved.
func (c *checker) followLit(pkg *driver.Package, lit *ast.FuncLit, chain []string) {
	if c.visitedLit[lit] {
		return
	}
	c.visitedLit[lit] = true
	name := fmt.Sprintf("%s.func:%d", pkg.Name, c.pass.Fset.Position(lit.Pos()).Line)
	c.walk(pkg, lit.Body, append(chain, name))
}

func (c *checker) report(chain []string, pos token.Pos, format string, args ...any) {
	via := ""
	if len(chain) > 1 {
		via = " (reached via " + strings.Join(chain, " -> ") + ")"
	}
	c.pass.Reportf(pos, "hotpath %s: %s%s", chain[0], fmt.Sprintf(format, args...), via)
}

func (c *checker) walk(pkg *driver.Package, root ast.Node, chain []string) {
	info := pkg.Info
	// inPlace marks literals consumed where they appear (deferred or
	// immediately invoked): they do not escape, so the closure context is
	// stack-allocated. The consumer node is always visited before the
	// literal itself.
	inPlace := make(map[*ast.FuncLit]bool)
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit := astq.FuncLit(n.Call.Fun); lit != nil {
				inPlace[lit] = true
			}
		case *ast.CallExpr:
			if lit := astq.FuncLit(n.Fun); lit != nil {
				inPlace[lit] = true
			}
			return c.checkCall(pkg, n, root, chain)
		case *ast.FuncLit:
			c.visitedLit[n] = true
			if inPlace[n] {
				return true
			}
			if caps := captures(info, n); len(caps) > 0 {
				c.report(chain, n.Pos(), "function literal captures %s (closure allocates)", strings.Join(caps, ", "))
			}
		case *ast.CompositeLit:
			switch info.Types[n].Type.Underlying().(type) {
			case *types.Map:
				c.report(chain, n.Pos(), "map literal allocates")
			case *types.Slice:
				c.report(chain, n.Pos(), "slice literal allocates")
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					c.report(chain, n.Pos(), "address of composite literal allocates")
				}
			}
		case *ast.AssignStmt:
			c.checkAssign(pkg, n, chain)
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if b, ok := info.Types[n.X].Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					c.report(chain, n.Pos(), "string concatenation allocates")
				}
			}
		case *ast.GoStmt:
			c.report(chain, n.Pos(), "go statement allocates a goroutine")
		}
		return true
	})
}

// checkCall handles builtins, conversions, static and graph-resolved
// callees, and interface-boxing arguments. It returns false when the
// subtree must not be descended into (panic arguments).
func (c *checker) checkCall(pkg *driver.Package, call *ast.CallExpr, root ast.Node, chain []string) bool {
	info := pkg.Info

	// Conversions: string<->[]byte/[]rune copy; conversion to interface
	// boxes.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		c.checkConversion(info, tv.Type, call, chain)
		return true
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				c.report(chain, call.Pos(), "make allocates")
			case "new":
				c.report(chain, call.Pos(), "new allocates")
			case "append":
				if !c.exemptAppend[call] {
					c.report(chain, call.Pos(), "append may grow and allocate")
				}
			case "print", "println":
				c.report(chain, call.Pos(), "%s allocates and is not for hot paths", b.Name())
			case "panic":
				// Unwinding is the exceptional path; it is already
				// allocation-tolerant, so the panic argument
				// (including the boxed value) is exempt.
				return false
			}
			return true
		}
	}

	fn := astq.CalleeFunc(info, call)
	switch {
	case fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt":
		c.report(chain, call.Pos(), "call to fmt.%s allocates (formatting, boxing)", fn.Name())
		return true // boxing of its arguments is subsumed
	case fn != nil && fn.Pkg() != nil:
		c.follow(fn, chain)
	case astq.FuncLit(call.Fun) == nil:
		// A call through a stored function value: follow the callees when
		// the graph resolves the storage completely. (An immediately
		// invoked literal is already inside this walk.)
		if callees, complete := c.cg.ResolveCall(info, call); complete {
			for _, callee := range callees {
				c.followCallee(pkg, root, callee, chain)
			}
		}
	}
	c.checkArgBoxing(info, call, chain)
	return true
}

func (c *checker) followCallee(pkg *driver.Package, root ast.Node, callee callgraph.Callee, chain []string) {
	if callee.Lit != nil {
		// A literal lexically inside the current walk root is already
		// being inspected; following it would double-report.
		if callee.Lit.Pos() >= root.Pos() && callee.Lit.End() <= root.End() {
			return
		}
		litPkg := callee.Pkg
		if litPkg == nil {
			litPkg = pkg
		}
		c.followLit(litPkg, callee.Lit, chain)
		return
	}
	if callee.Func != nil && callee.Func.Pkg() != nil {
		if callee.Func.Pkg().Path() == "fmt" {
			return // reported at direct call sites; a stored fmt func is cold-path wiring
		}
		c.follow(callee.Func, chain)
	}
}

func (c *checker) checkConversion(info *types.Info, target types.Type, call *ast.CallExpr, chain []string) {
	arg := call.Args[0]
	at := info.Types[arg].Type
	if at == nil {
		return
	}
	if types.IsInterface(target) && boxes(at) {
		c.report(chain, call.Pos(), "conversion of %s to interface %s boxes (allocates)", at, target)
		return
	}
	tb, _ := target.Underlying().(*types.Basic)
	as, _ := at.Underlying().(*types.Slice)
	if tb != nil && tb.Info()&types.IsString != 0 && as != nil {
		c.report(chain, call.Pos(), "[]byte/[]rune-to-string conversion allocates")
	}
	ts, _ := target.Underlying().(*types.Slice)
	ab, _ := at.Underlying().(*types.Basic)
	if ts != nil && ab != nil && ab.Info()&types.IsString != 0 {
		c.report(chain, call.Pos(), "string-to-slice conversion allocates")
	}
}

func (c *checker) checkAssign(pkg *driver.Package, as *ast.AssignStmt, chain []string) {
	info := pkg.Info
	// Map element writes may allocate (and the hot paths were de-mapped
	// deliberately — see DESIGN.md §7).
	for _, lhs := range as.Lhs {
		if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
			if _, ok := info.Types[ix.X].Type.Underlying().(*types.Map); ok {
				c.report(chain, lhs.Pos(), "map assignment may allocate")
			}
		}
	}
	// Amortized self-append: x = append(x, ...) to storage whose only
	// other package assignments are truncations or make preallocations.
	if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !isAppend(info, call) || len(call.Args) == 0 {
				continue
			}
			if samePath(info, lhs, call.Args[0]) && c.amortizedStorage(pkg, lhsStorage(info, lhs)) {
				c.exemptAppend[call] = true
			}
		}
	}
	// Boxing through assignment to an interface-typed location.
	if as.Tok == token.ASSIGN && len(as.Lhs) == len(as.Rhs) {
		for i, lhs := range as.Lhs {
			lt := info.Types[lhs].Type
			rt := info.Types[as.Rhs[i]].Type
			if lt != nil && rt != nil && types.IsInterface(lt) && boxes(rt) {
				c.report(chain, as.Rhs[i].Pos(), "assignment of %s to interface %s boxes (allocates)", rt, lt)
			}
		}
	}
}

func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// samePath reports whether a and b are the same access path: the same
// variable, or the same field selected from the same path.
func samePath(info *types.Info, a, b ast.Expr) bool {
	a, b = ast.Unparen(a), ast.Unparen(b)
	switch x := a.(type) {
	case *ast.Ident:
		y, ok := b.(*ast.Ident)
		if !ok {
			return false
		}
		xo, yo := identObj(info, x), identObj(info, y)
		return xo != nil && xo == yo
	case *ast.SelectorExpr:
		y, ok := b.(*ast.SelectorExpr)
		if !ok {
			return false
		}
		xo, yo := identObj(info, x.Sel), identObj(info, y.Sel)
		return xo != nil && xo == yo && samePath(info, x.X, y.X)
	}
	return false
}

func identObj(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Defs[id]; o != nil {
		return o
	}
	return info.Uses[id]
}

// lhsStorage resolves an assignment target to the variable or struct field
// object it writes (fields merge across instances).
func lhsStorage(info *types.Info, e ast.Expr) *types.Var {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := identObj(info, x).(*types.Var); ok {
			return v
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && astq.IsPackageLevel(v) {
			return v
		}
	}
	return nil
}

// amortizedStorage audits every package assignment to v and reports
// whether the self-append discipline holds: all assignments are
// self-appends, self-truncations (v = v[:n]) or make preallocations, and
// at least one truncation or make is present as evidence of the reset /
// preallocate pattern. Anything else — rebinding to a fresh slice, a
// multi-value assignment — defeats amortization.
func (c *checker) amortizedStorage(pkg *driver.Package, v *types.Var) bool {
	if v == nil {
		return false
	}
	if ok, done := c.amortized[v]; done || ok {
		return ok
	}
	info := pkg.Info
	selfOnly, evidence := true, false
	for _, f := range pkg.Files {
		if !selfOnly {
			break
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || !selfOnly {
				return selfOnly
			}
			for i, lhs := range as.Lhs {
				if lhsStorage(info, lhs) != v {
					continue
				}
				if as.Tok == token.DEFINE {
					continue // a local shadow, not this storage
				}
				if as.Tok != token.ASSIGN || len(as.Lhs) != len(as.Rhs) {
					selfOnly = false
					return false
				}
				switch rhs := ast.Unparen(as.Rhs[i]).(type) {
				case *ast.CallExpr:
					switch {
					case isAppend(info, rhs) && len(rhs.Args) > 0 && samePath(info, lhs, rhs.Args[0]):
						// self-append: the pattern under audit
					case isMake(info, rhs):
						evidence = true
					default:
						selfOnly = false
						return false
					}
				case *ast.SliceExpr:
					if samePath(info, lhs, rhs.X) {
						evidence = true
					} else {
						selfOnly = false
						return false
					}
				default:
					selfOnly = false
					return false
				}
			}
			return true
		})
	}
	result := selfOnly && evidence
	c.amortized[v] = result
	return result
}

func isMake(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// checkArgBoxing reports non-pointer concrete values passed to
// interface-typed parameters.
func (c *checker) checkArgBoxing(info *types.Info, call *ast.CallExpr, chain []string) {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if ok {
		for i, arg := range call.Args {
			pt := astq.ParamType(sig, i, call.Ellipsis != token.NoPos)
			at := info.Types[arg].Type
			if pt == nil || at == nil {
				continue
			}
			if types.IsInterface(pt) && boxes(at) {
				c.report(chain, arg.Pos(), "passing %s to interface parameter boxes (allocates)", at)
			}
		}
	}
}

// boxes reports whether storing a value of type t into an interface
// allocates: true for concrete non-pointer types (pointers and interfaces
// fit in the interface data word).
func boxes(t types.Type) bool {
	if t == nil {
		return false
	}
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface, *types.Signature, *types.Map, *types.Chan:
		// Pointer-shaped: the value itself is the interface word.
		return false
	}
	return true
}

// captures lists the variables a function literal captures from its
// enclosing function, each of which forces a heap-allocated closure.
func captures(info *types.Info, lit *ast.FuncLit) []string {
	seen := make(map[*types.Var]bool)
	var names []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || seen[v] || astq.IsPackageLevel(v) || v.Pkg() == nil {
			return true // package-level: shared, not captured
		}
		if astq.CapturedBy(v, lit) {
			seen[v] = true
			names = append(names, v.Name())
		}
		return true
	})
	sort.Strings(names)
	return names
}
