package hotpathalloc_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/hotpathalloc"
)

func TestHotPathAlloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotpathalloc.Analyzer, "hot")
}
