// Package hot exercises the hotpathalloc analyzer: annotated roots in this
// file reach an allocating helper in helper.go (the cross-function,
// cross-file case), and the constructs below cover the direct allocation
// classes.
package hot

import "fmt"

func box(v any) {}

var sink any

//sprwl:hotpath
func Bad(n int, buf []byte) string {
	b := make([]byte, n)         // want 7:`make allocates`
	m := map[int]int{}           // want `map literal allocates`
	m[n] = n                     // want `map assignment may allocate`
	p := new(int)                // want `new allocates`
	f := func() int { return n } // want `function literal captures n \(closure allocates\)`
	box(n)                       // want `passing int to interface parameter boxes`
	sink = n                     // want `boxes \(allocates\)`
	fmt.Println(n)               // want `call to fmt.Println allocates`
	s := string(buf)             // want `\[\]byte/\[\]rune-to-string conversion allocates`
	s = s + "!"                  // want `string concatenation allocates`
	_, _, _, _ = m, p, f, b
	return s
}

// Clean is allocation-free: plain arithmetic, array indexing, and calls to
// non-allocating helpers are all fine.
//
//sprwl:hotpath
func Clean(xs []uint64) uint64 {
	var total uint64
	for _, x := range xs {
		total += x
	}
	return total
}

// Chain only allocates transitively, through the helper in helper.go.
//
//sprwl:hotpath
func Chain(xs []int, x int) []int {
	return grow(xs, x)
}

// Allowed demonstrates the shared suppression directive.
//
//sprwl:hotpath
func Allowed(xs []int, x int) []int {
	//sprwl:allow(hotpathalloc) fixture: amortized growth is accepted here
	return append(xs, x)
}

// Guard shows the panic exemption: unwinding is the exceptional path, so
// its argument (including fmt formatting) is not reported.
//
//sprwl:hotpath
func Guard(ok bool) {
	if !ok {
		panic(fmt.Sprintf("guard failed"))
	}
}

// InPlace shows the consumed-in-place exemption: deferred and immediately
// invoked literals do not escape, so their captures stay on the stack and
// no closure allocation is reported. Allocations inside them still count.
//
//sprwl:hotpath
func InPlace(n int) (out int) {
	defer func() {
		if r := recover(); r != nil {
			out = n
		}
	}()
	func() {
		out += n
	}()
	func() {
		_ = make([]byte, n) // want `make allocates`
	}()
	return out
}

// ring exercises the amortized self-append audit and call-graph following
// through a stored function value.
type ring struct {
	buf  []uint64
	log  []uint64
	hook func()
}

func newRing() *ring {
	r := &ring{}
	r.buf = make([]uint64, 0, 64)
	r.hook = func() {
		_ = make([]uint64, 8) // want `make allocates \(reached via hot\.ring\.fire -> hot\.func:\d+\)`
	}
	return r
}

func (r *ring) reset() { r.buf = r.buf[:0] }

func (r *ring) swap(fresh []uint64) { r.log = fresh }

// add's self-append is amortized: reset truncates and newRing
// preallocates, so steady-state growth never allocates. Not reported.
//
//sprwl:hotpath
func (r *ring) add(v uint64) {
	r.buf = append(r.buf, v)
}

// addLog's storage is rebound to a fresh slice in swap, so the growth is
// not amortized and the append is still reported.
//
//sprwl:hotpath
func (r *ring) addLog(v uint64) {
	r.log = append(r.log, v) // want `append may grow and allocate`
}

// fire calls through a struct-field function value bound exactly once in
// newRing; the call graph resolves it and the literal's body is walked.
//
//sprwl:hotpath
func (r *ring) fire() {
	r.hook()
}
