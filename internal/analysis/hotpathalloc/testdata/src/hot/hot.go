// Package hot exercises the hotpathalloc analyzer: annotated roots in this
// file reach an allocating helper in helper.go (the cross-function,
// cross-file case), and the constructs below cover the direct allocation
// classes.
package hot

import "fmt"

func box(v any) {}

var sink any

//sprwl:hotpath
func Bad(n int, buf []byte) string {
	b := make([]byte, n)         // want `make allocates`
	m := map[int]int{}           // want `map literal allocates`
	m[n] = n                     // want `map assignment may allocate`
	p := new(int)                // want `new allocates`
	f := func() int { return n } // want `function literal captures n \(closure allocates\)`
	box(n)                       // want `passing int to interface parameter boxes`
	sink = n                     // want `boxes \(allocates\)`
	fmt.Println(n)               // want `call to fmt.Println allocates`
	s := string(buf)             // want `\[\]byte/\[\]rune-to-string conversion allocates`
	s = s + "!"                  // want `string concatenation allocates`
	_, _, _, _ = m, p, f, b
	return s
}

// Clean is allocation-free: plain arithmetic, array indexing, and calls to
// non-allocating helpers are all fine.
//
//sprwl:hotpath
func Clean(xs []uint64) uint64 {
	var total uint64
	for _, x := range xs {
		total += x
	}
	return total
}

// Chain only allocates transitively, through the helper in helper.go.
//
//sprwl:hotpath
func Chain(xs []int, x int) []int {
	return grow(xs, x)
}

// Allowed demonstrates the shared suppression directive.
//
//sprwl:hotpath
func Allowed(xs []int, x int) []int {
	//sprwl:allow(hotpathalloc) fixture: amortized growth is accepted here
	return append(xs, x)
}

// Guard shows the panic exemption: unwinding is the exceptional path, so
// its argument (including fmt formatting) is not reported.
//
//sprwl:hotpath
func Guard(ok bool) {
	if !ok {
		panic(fmt.Sprintf("guard failed"))
	}
}
