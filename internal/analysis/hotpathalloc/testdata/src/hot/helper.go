package hot

// grow is not annotated itself; it is reported because the hotpath root
// Chain in hot.go reaches it statically.
func grow(xs []int, x int) []int {
	return append(xs, x) // want `append may grow and allocate \(reached via hot\.Chain -> hot\.grow\)`
}
