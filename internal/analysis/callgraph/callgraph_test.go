package callgraph

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"sprwl/internal/analysis/driver"
)

// load typechecks src in-memory and wraps it as a driver.Package.
func load(t *testing.T, src string) *driver.Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{}
	tpkg, err := conf.Check("p", fset, []*ast.File{file}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return &driver.Package{
		Path:  "p",
		Name:  "p",
		Files: []*ast.File{file},
		Types: tpkg,
		Info:  info,
	}
}

// callNamed finds the n-th call whose rendered callee position matches: we
// identify calls by an adjacent marker comment-free approach — the callee
// expression's leftmost identifier name.
func calls(pkg *driver.Package) []*ast.CallExpr {
	var out []*ast.CallExpr
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if c, ok := n.(*ast.CallExpr); ok {
				out = append(out, c)
			}
			return true
		})
	}
	return out
}

// callTo returns the first call whose Fun's leftmost ident is name.
func callTo(t *testing.T, pkg *driver.Package, name string) *ast.CallExpr {
	t.Helper()
	for _, c := range calls(pkg) {
		switch fun := c.Fun.(type) {
		case *ast.Ident:
			if fun.Name == name {
				return c
			}
		case *ast.SelectorExpr:
			if fun.Sel.Name == name {
				return c
			}
		}
	}
	t.Fatalf("no call to %s", name)
	return nil
}

func litCount(cs []Callee) int {
	n := 0
	for _, c := range cs {
		if c.Lit != nil {
			n++
		}
	}
	return n
}

func TestDirectCall(t *testing.T) {
	pkg := load(t, `
package p
func target() {}
func f() { target() }
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "target"))
	if !complete || len(cs) != 1 || cs[0].Func == nil || cs[0].Func.Name() != "target" {
		t.Fatalf("direct call: %v complete=%v", cs, complete)
	}
}

func TestLocalFuncValue(t *testing.T) {
	pkg := load(t, `
package p
func f(c bool) {
	fn := func() {}
	if c {
		fn = func() {}
	}
	fn()
}
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "fn"))
	if !complete {
		t.Fatalf("local literal-only var must be complete")
	}
	if litCount(cs) != 2 {
		t.Fatalf("want both conditional literals, got %d", litCount(cs))
	}
}

func TestCopyPropagation(t *testing.T) {
	pkg := load(t, `
package p
func declared() {}
func f() {
	a := declared
	b := a
	b()
}
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "b"))
	if !complete || len(cs) != 1 || cs[0].Func == nil || cs[0].Func.Name() != "declared" {
		t.Fatalf("copy propagation: %v complete=%v", cs, complete)
	}
}

func TestStructFieldAcrossFunctions(t *testing.T) {
	// The core.NewHandle pattern: a closure stored into a field in one
	// function, invoked through the field elsewhere.
	pkg := load(t, `
package p
type handle struct {
	txRead func(int)
}
func newHandle() *handle {
	h := &handle{}
	h.txRead = func(x int) { _ = x }
	return h
}
func use(h *handle) { h.txRead(1) }
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "txRead"))
	if !complete || litCount(cs) != 1 {
		t.Fatalf("field-stored closure: %v complete=%v", cs, complete)
	}
}

func TestCompositeLitFieldInit(t *testing.T) {
	pkg := load(t, `
package p
type ops struct {
	run  func()
	stop func()
}
func mk() ops {
	return ops{run: func() {}, stop: func() {}}
}
func use(o ops) { o.run() }
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "run"))
	if !complete || litCount(cs) != 1 {
		t.Fatalf("composite-lit field: %v complete=%v", cs, complete)
	}
}

func TestParamIsIncomplete(t *testing.T) {
	pkg := load(t, `
package p
func f(cb func()) { cb() }
`)
	g := Build(nil, []*driver.Package{pkg})
	_, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "cb"))
	if complete {
		t.Fatal("parameter calls must be incomplete")
	}
}

func TestCallResultIsIncomplete(t *testing.T) {
	pkg := load(t, `
package p
func pick() func() { return func() {} }
func f() {
	fn := pick()
	fn()
}
`)
	g := Build(nil, []*driver.Package{pkg})
	_, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "fn"))
	if complete {
		t.Fatal("values laundered through calls must be incomplete")
	}
}

func TestAddressTakenIsIncomplete(t *testing.T) {
	pkg := load(t, `
package p
func rebind(p *func()) {}
func f() {
	fn := func() {}
	rebind(&fn)
	fn()
}
`)
	g := Build(nil, []*driver.Package{pkg})
	_, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "fn"))
	if complete {
		t.Fatal("address-taken storage must be incomplete")
	}
}

func TestConversionCarriesValue(t *testing.T) {
	pkg := load(t, `
package p
type Body func()
func f() {
	var b Body = Body(func() {})
	b()
}
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "b"))
	if !complete || litCount(cs) != 1 {
		t.Fatalf("conversion: %v complete=%v", cs, complete)
	}
}

func TestValuesOfArgument(t *testing.T) {
	// doomedread's entry discovery: resolve the function value passed as
	// an argument (env.Attempt(slot, opts, h.txRead)).
	pkg := load(t, `
package p
type handle struct {
	txRead func(int)
}
func attempt(slot int, body func(int)) {}
func setup(h *handle) {
	h.txRead = func(x int) { _ = x }
	attempt(0, h.txRead)
}
`)
	g := Build(nil, []*driver.Package{pkg})
	call := callTo(t, pkg, "attempt")
	cs, complete := g.ValuesOf(pkg.Info, call.Args[1])
	if !complete || litCount(cs) != 1 {
		t.Fatalf("argument values: %v complete=%v", cs, complete)
	}
}

func TestInterfaceMethodIncomplete(t *testing.T) {
	pkg := load(t, `
package p
type iface interface{ M() }
func f(i iface) { i.M() }
`)
	g := Build(nil, []*driver.Package{pkg})
	_, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "M"))
	if complete {
		t.Fatal("interface dispatch must be incomplete")
	}
}

func TestConcreteMethodComplete(t *testing.T) {
	pkg := load(t, `
package p
type T struct{}
func (T) M() {}
func f(v T) { v.M() }
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "M"))
	if !complete || len(cs) != 1 || cs[0].Func == nil || cs[0].Func.Name() != "M" {
		t.Fatalf("concrete method: %v complete=%v", cs, complete)
	}
}

func TestBuiltinAndConversionResolveEmptyComplete(t *testing.T) {
	pkg := load(t, `
package p
func f(xs []int) {
	_ = len(xs)
	_ = int64(len(xs))
}
`)
	g := Build(nil, []*driver.Package{pkg})
	for _, c := range calls(pkg) {
		cs, complete := g.ResolveCall(pkg.Info, c)
		if !complete || len(cs) != 0 {
			t.Fatalf("builtin/conversion should be empty+complete: %v %v", cs, complete)
		}
	}
}

func TestNilAssignmentStaysComplete(t *testing.T) {
	pkg := load(t, `
package p
func f(c bool) {
	var fn func()
	if c {
		fn = func() {}
	}
	if fn != nil {
		fn()
	}
}
`)
	g := Build(nil, []*driver.Package{pkg})
	cs, complete := g.ResolveCall(pkg.Info, callTo(t, pkg, "fn"))
	if !complete || litCount(cs) != 1 {
		t.Fatalf("nil zero value + one literal: %v complete=%v", cs, complete)
	}
}
