// Package callgraph builds a function-value-aware static call graph over
// the packages a lint run loads. The repository's hot paths route calls
// through stored function values — core.NewHandle caches per-handle
// closures in struct fields (h.txRead, h.txWrite) precisely so the hot
// path allocates nothing — and a call graph that only resolves direct
// calls goes blind exactly where the protocol invariants live. This one
// tracks function literals and function references through local
// variables, package variables, and struct fields (merged per field
// object, so any instance's stored values count for every instance), with
// one level of copy propagation run to fixpoint.
//
// Resolution is deliberately conservative about completeness: every
// lookup reports whether the returned callee set can be trusted to be
// exhaustive. Parameters, interface methods, map/slice elements, values
// laundered through calls, and address-taken storage are incomplete —
// callers must treat an incomplete resolution as "could be anything".
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/driver"
)

// Callee is one possible call target: a declared function/method or a
// function literal.
type Callee struct {
	Func *types.Func  // non-nil for declared functions
	Lit  *ast.FuncLit // non-nil for literals
	// Pkg is the loaded package whose Info covers the callee's source
	// (nil for functions declared outside the loaded set).
	Pkg *driver.Package
}

// Graph holds the stored-function-value facts for a set of packages.
type Graph struct {
	prog *driver.Program

	// values maps func-typed storage (local/package vars, struct fields)
	// to the function values observed flowing into it.
	values map[types.Object][]Callee
	// incomplete marks storage that may hold values the graph cannot see:
	// assigned from a call result, address-taken, or element of an
	// untracked container.
	incomplete map[types.Object]bool
	// tracked marks storage that received at least one binding; func-typed
	// objects never bound anywhere (parameters, externally-set vars) are
	// incomplete by construction.
	tracked map[types.Object]bool
	// edges are copy-propagation edges dst <- src.
	edges map[types.Object][]types.Object
}

// Build scans pkgs and returns their call graph. prog may be nil; it is
// only used by SourceOf to locate declared-function bodies.
func Build(prog *driver.Program, pkgs []*driver.Package) *Graph {
	g := &Graph{
		prog:       prog,
		values:     make(map[types.Object][]Callee),
		incomplete: make(map[types.Object]bool),
		tracked:    make(map[types.Object]bool),
		edges:      make(map[types.Object][]types.Object),
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			g.scanFile(pkg, f)
		}
	}
	g.propagate()
	return g
}

func (g *Graph) scanFile(pkg *driver.Package, f *ast.File) {
	info := pkg.Info
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			if len(x.Lhs) == len(x.Rhs) {
				for i := range x.Lhs {
					g.bind(pkg, g.storageObj(info, x.Lhs[i]), x.Rhs[i])
				}
			} else {
				// Multi-value assignment from a call: func-typed targets
				// receive values the graph cannot see.
				for _, lhs := range x.Lhs {
					if obj := g.storageObj(info, lhs); obj != nil {
						g.incomplete[obj] = true
					}
				}
			}
		case *ast.ValueSpec:
			if len(x.Names) == len(x.Values) {
				for i, name := range x.Names {
					g.bind(pkg, g.storageObj(info, name), x.Values[i])
				}
			} else if len(x.Values) > 0 {
				for _, name := range x.Names {
					if obj := g.storageObj(info, name); obj != nil {
						g.incomplete[obj] = true
					}
				}
			}
		case *ast.CompositeLit:
			g.scanCompositeLit(pkg, x)
		case *ast.UnaryExpr:
			// &f lets anyone holding the pointer rebind the storage.
			if x.Op == token.AND {
				if obj := g.storageObj(info, x.X); obj != nil {
					g.incomplete[obj] = true
				}
			}
		}
		return true
	})
}

// scanCompositeLit records struct-literal field initializations
// (Handle{txRead: fn} and positional forms).
func (g *Graph) scanCompositeLit(pkg *driver.Package, cl *ast.CompositeLit) {
	info := pkg.Info
	t := astq.TypeOf(info, cl)
	if t == nil {
		return
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	if !ok {
		return
	}
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok {
				if field, ok := info.Uses[id].(*types.Var); ok {
					g.bind(pkg, g.funcTyped(field), kv.Value)
				}
			}
			continue
		}
		if i < st.NumFields() {
			g.bind(pkg, g.funcTyped(st.Field(i)), elt)
		}
	}
}

// storageObj resolves an lvalue to trackable func-typed storage: a
// variable or a struct field. Index expressions and dereferences are not
// trackable.
func (g *Graph) storageObj(info *types.Info, e ast.Expr) types.Object {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		if v, ok := info.Defs[x].(*types.Var); ok {
			return g.funcTyped(v)
		}
		if v, ok := info.Uses[x].(*types.Var); ok {
			return g.funcTyped(v)
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
			return g.funcTyped(sel.Obj().(*types.Var))
		}
		// Qualified package-level var (pkg.Var).
		if v, ok := info.Uses[x.Sel].(*types.Var); ok && astq.IsPackageLevel(v) {
			return g.funcTyped(v)
		}
	}
	return nil
}

// funcTyped filters storage to function-typed objects; everything else is
// not this graph's concern.
func (g *Graph) funcTyped(v *types.Var) types.Object {
	if v == nil {
		return nil
	}
	if _, ok := v.Type().Underlying().(*types.Signature); !ok {
		return nil
	}
	return v
}

// bind records rhs flowing into obj.
func (g *Graph) bind(pkg *driver.Package, obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	info := pkg.Info
	switch x := ast.Unparen(rhs).(type) {
	case *ast.FuncLit:
		g.addValue(obj, Callee{Lit: x, Pkg: pkg})
	case *ast.Ident:
		g.bindRef(pkg, obj, x, info.Uses[x])
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil {
			switch sel.Kind() {
			case types.FieldVal:
				g.addEdge(obj, sel.Obj())
			case types.MethodVal:
				if !types.IsInterface(sel.Recv()) {
					g.addValue(obj, g.funcCallee(sel.Obj().(*types.Func)))
				} else {
					g.incomplete[obj] = true
					g.tracked[obj] = true
				}
			default:
				g.incomplete[obj] = true
				g.tracked[obj] = true
			}
			return
		}
		g.bindRef(pkg, obj, x.Sel, info.Uses[x.Sel])
	case *ast.CallExpr:
		// A conversion like rwlock.Body(fn) carries the value through.
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			g.bind(pkg, obj, x.Args[0])
			return
		}
		g.incomplete[obj] = true
		g.tracked[obj] = true
	default:
		// nil literal contributes nothing; anything else is untracked.
		if tv, ok := info.Types[rhs]; ok && tv.IsNil() {
			g.tracked[obj] = true
			return
		}
		g.incomplete[obj] = true
		g.tracked[obj] = true
	}
}

func (g *Graph) bindRef(pkg *driver.Package, obj types.Object, id *ast.Ident, target types.Object) {
	switch t := target.(type) {
	case *types.Func:
		g.addValue(obj, g.funcCallee(t))
	case *types.Var:
		g.addEdge(obj, t)
	default:
		g.incomplete[obj] = true
		g.tracked[obj] = true
	}
}

func (g *Graph) funcCallee(fn *types.Func) Callee {
	c := Callee{Func: fn}
	if g.prog != nil {
		if src, ok := g.prog.FuncSource(fn); ok {
			c.Pkg = src.Pkg
		}
	}
	return c
}

func (g *Graph) addValue(obj types.Object, c Callee) {
	g.tracked[obj] = true
	for _, have := range g.values[obj] {
		if have.Func == c.Func && have.Lit == c.Lit {
			return
		}
	}
	g.values[obj] = append(g.values[obj], c)
}

func (g *Graph) addEdge(dst, src types.Object) {
	g.tracked[dst] = true
	g.edges[dst] = append(g.edges[dst], src)
}

// propagate runs copy edges to fixpoint, flowing both values and
// incompleteness.
func (g *Graph) propagate() {
	for changed := true; changed; {
		changed = false
		for dst, srcs := range g.edges {
			for _, src := range srcs {
				for _, c := range g.values[src] {
					before := len(g.values[dst])
					g.addValue(dst, c)
					if len(g.values[dst]) != before {
						changed = true
					}
				}
				// A source the graph cannot fully see (incl. never-bound
				// parameters) poisons the destination.
				if (g.incomplete[src] || !g.tracked[src]) && !g.incomplete[dst] {
					g.incomplete[dst] = true
					changed = true
				}
			}
		}
	}
}

// ValuesOf resolves the function values expression e may hold. The second
// result reports completeness: false means the set may be missing
// callees and must be treated as "could be anything".
func (g *Graph) ValuesOf(info *types.Info, e ast.Expr) ([]Callee, bool) {
	switch x := ast.Unparen(e).(type) {
	case *ast.FuncLit:
		return []Callee{{Lit: x}}, true
	case *ast.Ident:
		return g.valuesOfObj(info.Uses[x])
	case *ast.SelectorExpr:
		if sel := info.Selections[x]; sel != nil {
			switch sel.Kind() {
			case types.FieldVal:
				return g.valuesOfObj(sel.Obj())
			case types.MethodVal:
				if !types.IsInterface(sel.Recv()) {
					return []Callee{g.funcCallee(sel.Obj().(*types.Func))}, true
				}
				return nil, false
			}
			return nil, false
		}
		return g.valuesOfObj(info.Uses[x.Sel])
	case *ast.CallExpr:
		if tv, ok := info.Types[x.Fun]; ok && tv.IsType() && len(x.Args) == 1 {
			return g.ValuesOf(info, x.Args[0])
		}
	}
	return nil, false
}

func (g *Graph) valuesOfObj(obj types.Object) ([]Callee, bool) {
	switch t := obj.(type) {
	case *types.Func:
		return []Callee{g.funcCallee(t)}, true
	case *types.Var:
		if g.funcTyped(t) == nil {
			return nil, false
		}
		if !g.tracked[t] || g.incomplete[t] {
			return g.values[t], false
		}
		return g.values[t], true
	}
	return nil, false
}

// ResolveCall returns the possible callees of call. Builtins resolve to an
// empty, complete set. A direct call to a declared function or concrete
// method resolves completely; calls through stored function values resolve
// through the graph.
func (g *Graph) ResolveCall(info *types.Info, call *ast.CallExpr) ([]Callee, bool) {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return nil, true
		}
		if _, isType := info.Uses[id].(*types.TypeName); isType {
			return nil, true // conversion, not a call
		}
	}
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return nil, true // conversion
	}
	if fn := astq.CalleeFunc(info, call); fn != nil {
		return []Callee{g.funcCallee(fn)}, true
	}
	return g.ValuesOf(info, call.Fun)
}

// SourceOf locates the body of a callee when its source is loaded: the
// literal itself, or the declared function's body via the Program index.
func (g *Graph) SourceOf(c Callee) (*ast.BlockStmt, *driver.Package) {
	if c.Lit != nil {
		return c.Lit.Body, c.Pkg
	}
	if c.Func != nil && g.prog != nil {
		if src, ok := g.prog.FuncSource(c.Func); ok {
			return src.Decl.Body, src.Pkg
		}
	}
	return nil, nil
}
