package interleave

import "fmt"

// The explorer enumerates interleavings with sleep-set partial-order
// reduction plus visited-state hashing:
//
//   - Sleep sets: after exploring transition t from state s, t is put to
//     sleep for s's remaining branches; a successor inherits the sleeping
//     transitions that are independent of the step taken. A sleeping
//     transition is provably covered by an already-explored ordering, so
//     scheduling it again is pure commutation noise.
//   - Visited states store the sleep sets they were explored with; a
//     revisit whose sleep set is a superset of a stored one cannot reach
//     anything new and is pruned.
//
// Dependence is evaluated per-state from exact footprints (address
// expressions are side-effect-free), so dynamically-addressed cells — the
// hashed park shards — reduce as well as statically-bound ones.

// ExploreOpts bounds one exploration.
type ExploreOpts struct {
	// MaxStates aborts the search (Complete=false) after this many
	// distinct states; 0 means DefaultMaxStates.
	MaxStates int
	// MaxDepth bounds the schedule length; 0 means DefaultMaxDepth.
	MaxDepth int
	// NoMinimize skips the BFS shortest-trace pass on violation.
	NoMinimize bool
}

// Exploration bound defaults: sized so every shipped config finishes in
// CI-short time.
const (
	DefaultMaxStates = 2_000_000
	DefaultMaxDepth  = 4096
)

// Violation is a checker finding with its counterexample schedule.
type Violation struct {
	Kind      ViolationKind `json:"kind"`
	Msg       string        `json:"msg"`
	Trace     []TraceStep   `json:"trace"`
	Minimized bool          `json:"minimized"`
}

// RunResult is the outcome of exploring one model under one semantics.
type RunResult struct {
	Model       string     `json:"model"`
	Sem         string     `json:"sem"`
	Violation   *Violation `json:"violation,omitempty"`
	States      uint64     `json:"states"`
	Transitions uint64     `json:"transitions"`
	Pruned      uint64     `json:"pruned"`
	MaxDepth    int        `json:"max_depth"`
	Complete    bool       `json:"complete"`
}

// RunModel explores m exhaustively (within bounds) under sem.
func RunModel(m *Model, sem Sem, opts ExploreOpts) RunResult {
	if opts.MaxStates <= 0 {
		opts.MaxStates = DefaultMaxStates
	}
	if opts.MaxDepth <= 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	e := &explorer{
		mc:      newMachine(m, sem),
		opts:    opts,
		visited: map[[2]uint64][]uint64{},
	}
	res := RunResult{Model: m.Name, Sem: sem.String(), Complete: true}

	init, viol := e.mc.initState()
	if viol != nil {
		res.Violation = &Violation{Kind: viol.kind, Msg: viol.msg}
		return res
	}
	e.dfs(init, 0, 0)

	res.States = e.states
	res.Transitions = e.transitions
	res.Pruned = e.pruned
	res.MaxDepth = e.deepest
	res.Complete = !e.bailed
	if e.viol != nil {
		v := &Violation{Kind: e.viol.kind, Msg: e.viol.msg, Trace: e.trace}
		if !opts.NoMinimize {
			if mv, short, ok := e.minimize(v.Kind, len(v.Trace)); ok {
				// The shortest witness of the same kind need not be the
				// same state: report its own message with its trace.
				v.Msg = mv.msg
				v.Trace = short
				v.Minimized = true
			}
		}
		res.Violation = v
	}
	return res
}

type explorer struct {
	mc   *machine
	opts ExploreOpts

	// visited maps a state hash to the sleep sets it was explored with.
	visited map[[2]uint64][]uint64

	states      uint64
	transitions uint64
	pruned      uint64
	deepest     int
	bailed      bool

	stack []TraceStep
	viol  *stepViol
	trace []TraceStep
}

func trBit(t transition) uint64 { return 1 << t.id() }

func (e *explorer) record(v *stepViol) {
	if e.viol != nil {
		return
	}
	e.viol = v
	e.trace = append([]TraceStep(nil), e.stack...)
}

// dfs explores s; sleep is the inherited sleep set. Returns true to abort
// the whole search (violation found or bounds hit).
func (e *explorer) dfs(s *machState, sleep uint64, depth int) bool {
	if depth > e.deepest {
		e.deepest = depth
	}
	if depth >= e.opts.MaxDepth {
		e.bailed = true
		return false
	}
	e.states++
	if e.states > uint64(e.opts.MaxStates) {
		e.bailed = true
		return true
	}

	en := e.mc.enabled(s)
	if len(en) == 0 {
		allHalted := true
		for i := range s.thr {
			if s.thr[i].status != tsHalted {
				allHalted = false
				break
			}
		}
		var v *stepViol
		if allHalted {
			v = e.mc.checkTerminal(s)
		} else {
			v = e.mc.classifyStuck(s)
		}
		if v != nil {
			e.record(v)
			return true
		}
		return false
	}

	// Drop sleeping transitions that are no longer enabled, then consult
	// the visited table.
	var enMask uint64
	for _, tr := range en {
		enMask |= trBit(tr)
	}
	sleep &= enMask
	h := s.hash()
	if masks, ok := e.visited[h]; ok {
		for _, m := range masks {
			if m&sleep == m { // stored sleep ⊆ current: already covered
				e.pruned++
				return false
			}
		}
	}
	e.visited[h] = append(e.visited[h], sleep)

	fps := make([][]access, len(en))
	for i, tr := range en {
		fps[i] = e.mc.footprint(s, tr)
	}

	cur := sleep
	for i, tr := range en {
		if cur&trBit(tr) != 0 {
			e.pruned++
			continue
		}
		succ, viol, ts := e.mc.apply(s, tr)
		e.transitions++
		e.stack = append(e.stack, ts)
		if viol != nil {
			e.record(viol)
			e.stack = e.stack[:len(e.stack)-1]
			return true
		}
		// Successor inherits the sleeping transitions independent of tr
		// (same-thread transitions are always dependent).
		var next uint64
		for j, other := range en {
			if cur&trBit(other) == 0 || other.thread == tr.thread {
				continue
			}
			if !dependent(fps[i], fps[j]) {
				next |= trBit(other)
			}
		}
		if e.dfs(succ, next, depth+1) {
			e.stack = e.stack[:len(e.stack)-1]
			return true
		}
		e.stack = e.stack[:len(e.stack)-1]
		cur |= trBit(tr)
	}
	return false
}

// minimize re-searches breadth-first (no reduction, plain visited-state
// hashing) for the shortest schedule reaching a violation of the same
// kind, bounded by the DFS witness length.
func (e *explorer) minimize(kind ViolationKind, bound int) (*stepViol, []TraceStep, bool) {
	type node struct {
		s      *machState
		parent int
		step   TraceStep
	}
	init, viol := e.mc.initState()
	if viol != nil {
		return nil, nil, false
	}
	nodes := []node{{s: init, parent: -1}}
	seen := map[[2]uint64]bool{init.hash(): true}
	frontier := []int{0}
	budget := e.opts.MaxStates

	traceOf := func(idx int, last TraceStep) []TraceStep {
		var rev []TraceStep
		rev = append(rev, last)
		for i := idx; i > 0; i = nodes[i].parent {
			rev = append(rev, nodes[i].step)
		}
		out := make([]TraceStep, 0, len(rev))
		for i := len(rev) - 1; i >= 0; i-- {
			out = append(out, rev[i])
		}
		return out
	}

	// depth == bound still runs its leaf checks: a stuck state at exactly
	// the DFS witness depth is a valid equal-length witness.
	for depth := 0; depth <= bound && len(frontier) > 0; depth++ {
		var next []int
		for _, idx := range frontier {
			s := nodes[idx].s
			en := e.mc.enabled(s)
			if len(en) == 0 {
				allHalted := true
				for i := range s.thr {
					if s.thr[i].status != tsHalted {
						allHalted = false
						break
					}
				}
				var v *stepViol
				if allHalted {
					v = e.mc.checkTerminal(s)
				} else {
					v = e.mc.classifyStuck(s)
				}
				if v != nil && v.kind == kind {
					// Leaf violations carry no extra step; trace is the
					// path to this node.
					if idx == 0 {
						return nil, nil, false
					}
					tr := traceOf(nodes[idx].parent, nodes[idx].step)
					return v, tr, true
				}
				continue
			}
			if depth == bound {
				// Expansions from here would exceed the DFS witness
				// length; this depth exists only for its leaf checks.
				continue
			}
			for _, tr := range en {
				if budget--; budget <= 0 {
					return nil, nil, false
				}
				succ, v, ts := e.mc.apply(s, tr)
				if v != nil && v.kind == kind {
					return v, traceOf(idx, ts), true
				}
				h := succ.hash()
				if seen[h] {
					continue
				}
				seen[h] = true
				nodes = append(nodes, node{s: succ, parent: idx, step: ts})
				next = append(next, len(nodes)-1)
			}
		}
		frontier = next
	}
	return nil, nil, false
}

// RenderTrace formats a counterexample for the human-readable stream and
// the trace artifact.
func RenderTrace(v *Violation) string {
	if v == nil {
		return ""
	}
	out := fmt.Sprintf("violation: %s\n  %s\n", v.Kind, v.Msg)
	for i, ts := range v.Trace {
		pos := ts.Pos
		if pos == "" {
			pos = "-"
		}
		out += fmt.Sprintf("  %3d  %-4s %-40s %s\n", i+1, ts.Name, ts.Desc, pos)
	}
	return out
}
