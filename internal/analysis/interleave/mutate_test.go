package interleave

import "testing"

// TestMutationsCaught is the checker's falsifiability self-test: every
// seeded protocol bug must be reported with the expected violation kind
// — and semantics expected clean (unfence-arrive under SC) must verify
// clean. A counterexample must come with a non-empty schedule.
func TestMutationsCaught(t *testing.T) {
	ex := testExtractor(t)
	for _, mut := range Mutations() {
		mut := mut
		t.Run(mut.Name, func(t *testing.T) {
			for _, mr := range RunMutation(ex, mut, ExploreOpts{}) {
				if !mr.Caught {
					t.Errorf("%s: %s", mr.Sem, mr.Err)
					continue
				}
				if mr.Expected == "" {
					continue // expected-clean semantics: nothing more to check
				}
				v := mr.Run.Violation
				if len(v.Trace) == 0 {
					t.Errorf("%s: counterexample has no trace", mr.Sem)
				}
				if !v.Minimized {
					t.Errorf("%s: counterexample was not minimized", mr.Sem)
				}
			}
		})
	}
}

// TestDropWakeTraceEndsAsleep: the §10 drop-wake counterexample must
// leave a reader asleep — the trace's stuck state is a parked thread no
// one will ever wake, not a generic deadlock.
func TestDropWakeTraceEndsAsleep(t *testing.T) {
	ex := testExtractor(t)
	mut, ok := FindMutation("drop-wake")
	if !ok {
		t.Fatal("drop-wake mutation missing from the registry")
	}
	for _, mr := range RunMutation(ex, mut, ExploreOpts{}) {
		if !mr.Caught {
			t.Fatalf("%s: %s", mr.Sem, mr.Err)
		}
		if got := mr.Run.Violation.Kind; got != ViolLostWake {
			t.Errorf("%s: kind = %s, want %s", mr.Sem, got, ViolLostWake)
		}
	}
}
