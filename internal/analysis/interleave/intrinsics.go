package interleave

import (
	"go/ast"
	"go/types"
	"strings"
)

// Call lowering. Three layers, checked in order:
//
//  1. Conversions are identity (every modeled value is a uint64 word).
//  2. Intrinsics replace infrastructure the model abstracts: the simulated
//     env.Env memory (whose Load/Store/CAS/Add *are* the atomic steps),
//     the observability ring, the contention estimator, and the
//     park.Waiter spin-vs-park heuristic (which becomes a
//     nondeterministic OpChoice so the checker covers both outcomes).
//  3. Everything else inlines from source. Interface calls (park.Parker)
//     resolve through the bound object's concrete type.
//
// The skipCalls/plainStores hooks of the mutation mode act here: a skipped
// call vanishes (its arguments included — "the call was deleted"), a
// matched store loses its Atomic flag.

func (f *frame) lowerCall(call *ast.CallExpr) (*absVal, error) {
	// Type conversions: uint64(x), memmodel.Addr(i), int(...).
	if tv, ok := f.info().Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return nil, f.errAt(call, "unsupported conversion arity")
		}
		return f.evalExpr(call.Args[0])
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := f.info().Uses[fun]
		switch o := obj.(type) {
		case *types.Builtin:
			return nil, f.errAt(call, "builtin %s in modeled code", fun.Name)
		case *types.Func:
			return f.inlineStatic(call, o, nil)
		case *types.Var:
			v, ok := f.vars[o]
			if !ok {
				return nil, f.errAt(call, "call through unbound %s", fun.Name)
			}
			return f.callFnVal(call, v)
		}
		return nil, f.errAt(call, "unsupported call target %s", fun.Name)
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			if _, isPkg := f.info().Uses[id].(*types.PkgName); isPkg {
				fn, ok := f.info().Uses[fun.Sel].(*types.Func)
				if !ok {
					return nil, f.errAt(call, "unsupported package reference %s.%s", id.Name, fun.Sel.Name)
				}
				return f.inlineStatic(call, fn, nil)
			}
		}
		base, err := f.evalExpr(fun.X)
		if err != nil {
			return nil, err
		}
		name := fun.Sel.Name
		switch {
		case base.cell != nil:
			return f.cellMethod(call, base.cell, name)
		case base.obj != nil:
			return f.objMethod(call, base.obj, fun.Sel, name)
		case base.fn != "":
			return f.callFnVal(call, base)
		}
		return nil, f.errAt(call, "method %s on %s", name, base.describe())
	}
	return nil, f.errAt(call, "unsupported call form %T", call.Fun)
}

func (f *frame) evalArgs(call *ast.CallExpr) ([]*absVal, error) {
	args := make([]*absVal, 0, len(call.Args))
	for _, a := range call.Args {
		v, err := f.evalExpr(a)
		if err != nil {
			return nil, err
		}
		args = append(args, v)
	}
	return args, nil
}

func (f *frame) numArgs(call *ast.CallExpr, want int) ([]*Expr, error) {
	if len(call.Args) != want {
		return nil, f.errAt(call, "want %d args, have %d", want, len(call.Args))
	}
	vals, err := f.evalArgs(call)
	if err != nil {
		return nil, err
	}
	out := make([]*Expr, len(vals))
	for i, v := range vals {
		if v.x == nil {
			return nil, f.errAt(call, "arg %d is %s, want numeric", i, v.describe())
		}
		out[i] = v.x
	}
	return out, nil
}

// storeAtomic reports whether a store at the current site keeps its Atomic
// flag (the plainStores mutation strips it).
func (lo *lowerer) storeAtomic() bool {
	for _, p := range lo.opts.plainStores {
		if strings.Contains(lo.curSite, p) {
			return false
		}
	}
	return true
}

// inlineStatic inlines a function with known source: package-level
// functions and concrete methods.
func (f *frame) inlineStatic(call *ast.CallExpr, fn *types.Func, recv *absVal) (*absVal, error) {
	if f.skipCall(qualifiedName(fn)) {
		return numVal(Konst(0)), nil
	}
	// park.perturb is the hostile harness's test-only policy hook, gated
	// on a process-global atomic the model does not bind. No hook is ever
	// installed in modeled executions, so the call is identity — and
	// policies only tune the spin/park heuristic, whose outcomes the
	// checker explores nondeterministically anyway.
	if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/park") && fn.Name() == "perturb" {
		if len(call.Args) != 1 {
			return nil, f.errAt(call, "perturb wants 1 arg")
		}
		return f.evalExpr(call.Args[0])
	}
	// core.handle.atFault is the matching core-side fence hook: nil in
	// every modeled execution, so the call has no shared-memory effect.
	if fn.Pkg() != nil && strings.HasSuffix(fn.Pkg().Path(), "internal/core") && fn.Name() == "atFault" {
		return numVal(Konst(0)), nil
	}
	src, ok := f.lo.ex.prog.FuncSource(fn)
	if !ok {
		return nil, f.errAt(call, "no source for %s (outside the module?)", qualifiedName(fn))
	}
	args, err := f.evalArgs(call)
	if err != nil {
		return nil, err
	}
	site := f.site + ">" + fn.Name()
	return f.lo.inlineDecl(src.Pkg, src.Decl, recv, args, site, call)
}

// objMethod dispatches a method call on a symbolic object: intrinsic
// kinds first, then source inlining (resolving interface methods through
// the object's concrete type).
func (f *frame) objMethod(call *ast.CallExpr, o *object, selIdent *ast.Ident, name string) (*absVal, error) {
	if o.isNil {
		f.lo.emit(Instr{Op: OpTrap, Note: "method " + name + " on nil " + o.name})
		return numVal(Konst(0)), nil
	}
	if f.skipCall(o.kind + "." + name) {
		return numVal(Konst(0)), nil
	}
	switch o.kind {
	case "env":
		return f.envMethod(call, name)
	case "ring":
		// Observability ring: invisible to the protocol's shared state.
		return numVal(Konst(0)), nil
	case "est":
		// Contention estimator: the model pins its outputs so adaptive
		// branches fold deterministically per configuration.
		switch name {
		case "EndTime", "ShouldSample":
			return numVal(Konst(0)), nil
		default:
			return numVal(Konst(0)), nil
		}
	case "Waiter":
		return f.waiterMethod(call, o, name)
	}
	if v, ok := o.fields[name]; ok && v.fn != "" {
		// Calling a func-typed field (park.Table.load).
		return f.callFnVal(call, v)
	}
	fn, ok := f.info().Uses[selIdent].(*types.Func)
	if !ok {
		return nil, f.errAt(call, "unresolved method %s.%s", o.name, name)
	}
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		if _, isIface := recv.Type().Underlying().(*types.Interface); isIface {
			return f.inlineConcrete(call, o, name)
		}
	}
	return f.inlineStatic(call, fn, objVal(o))
}

// inlineConcrete resolves an interface method against the bound object's
// concrete type and inlines it.
func (f *frame) inlineConcrete(call *ast.CallExpr, o *object, name string) (*absVal, error) {
	if o.ref.pkgPath == "" {
		return nil, f.errAt(call, "interface call %s.%s on object without a concrete binding", o.name, name)
	}
	ref := o.ref
	ref.name = name
	if f.skipCall(ref.recv + "." + name) {
		return numVal(Konst(0)), nil
	}
	pkg, decl, err := f.lo.ex.lookup(ref)
	if err != nil {
		return nil, f.errAt(call, "%v", err)
	}
	args, err := f.evalArgs(call)
	if err != nil {
		return nil, err
	}
	site := f.site + ">" + name
	return f.lo.inlineDecl(pkg, decl, objVal(o), args, site, call)
}

// envMethod lowers the simulated-memory interface: these calls *are* the
// atomic steps of the model.
func (f *frame) envMethod(call *ast.CallExpr, name string) (*absVal, error) {
	switch name {
	case "Load":
		a, err := f.numArgs(call, 1)
		if err != nil {
			return nil, err
		}
		r := f.lo.newReg()
		f.lo.emit(Instr{Op: OpLoad, Dst: r, Loc: a[0], Atomic: true})
		return numVal(RegRef(r)), nil
	case "Store":
		a, err := f.numArgs(call, 2)
		if err != nil {
			return nil, err
		}
		f.lo.emit(Instr{Op: OpStore, Loc: a[0], Val: a[1], Atomic: f.lo.storeAtomic()})
		return nil, nil
	case "CAS":
		a, err := f.numArgs(call, 3)
		if err != nil {
			return nil, err
		}
		r := f.lo.newReg()
		f.lo.emit(Instr{Op: OpCAS, Dst: r, Loc: a[0], Old: a[1], Val: a[2]})
		return numVal(RegRef(r)), nil
	case "Add":
		a, err := f.numArgs(call, 2)
		if err != nil {
			return nil, err
		}
		r := f.lo.newReg()
		f.lo.emit(Instr{Op: OpRMWAdd, Dst: r, Loc: a[0], Val: a[1]})
		return numVal(RegRef(r)), nil
	case "Attempt":
		// A hardware-transaction attempt. The model pins its outcome to
		// the configured abort cause (default: conflict): the HTM commit
		// path's serializability is the hardware's guarantee, while the
		// protocol obligations under test live on the abort/fallback
		// paths. The closure body is never lowered.
		return numVal(Konst(f.lo.opts.cause())), nil
	case "Now":
		return numVal(Konst(0)), nil
	case "Yield", "WaitUntil":
		return nil, nil
	default:
		return nil, f.errAt(call, "unmodeled env method %s", name)
	}
}

// waiterMethod lowers park.Waiter: the spin-budget bookkeeping is
// thread-local heuristics, so Pause becomes a nondeterministic choice
// between spinning (fall through to the caller's re-check loop) and the
// real inlined park.Table.Park.
func (f *frame) waiterMethod(call *ast.CallExpr, o *object, name string) (*absVal, error) {
	switch name {
	case "Pause":
		if len(call.Args) != 3 {
			return nil, f.errAt(call, "Pause wants 3 args")
		}
		addr, err := f.evalExpr(call.Args[0])
		if err != nil {
			return nil, err
		}
		expected, err := f.evalExpr(call.Args[1])
		if err != nil {
			return nil, err
		}
		// The remaining-time hint only shapes the heuristic; evaluate it
		// for its (possible) shared loads, then drop the value.
		if _, err := f.evalExpr(call.Args[2]); err != nil {
			return nil, err
		}
		if addr.x == nil || expected.x == nil {
			return nil, f.errAt(call, "non-numeric Pause args")
		}
		p, ok := o.fields["P"]
		if !ok || p.obj == nil || p.obj.isNil {
			// No parker: Pause only spins, which the caller's re-check
			// loop already models.
			return nil, nil
		}
		if f.skipCall("Table.Park") {
			return nil, nil
		}
		pc := f.lo.emit(Instr{Op: OpChoice, Note: "spin-or-park"})
		f.lo.out[pc].A = pc + 1
		ref := p.obj.ref
		if ref.pkgPath == "" {
			return nil, f.errAt(call, "parker object %s lacks a concrete binding", p.obj.name)
		}
		ref.name = "Park"
		pkg, decl, err := f.lo.ex.lookup(ref)
		if err != nil {
			return nil, f.errAt(call, "%v", err)
		}
		site := f.site + ">Park"
		if _, err := f.lo.inlineDecl(pkg, decl, objVal(p.obj), []*absVal{numVal(addr.x), numVal(expected.x)}, site, call); err != nil {
			return nil, err
		}
		f.lo.out[pc].B = len(f.lo.out)
		return nil, nil
	case "CanPark":
		p, ok := o.fields["P"]
		canPark := ok && p.obj != nil && !p.obj.isNil
		return numVal(Konst(boolTo(canPark))), nil
	default:
		// Report/ReportParks/Restart and the other accounting methods are
		// thread-local heuristics with no shared-memory effect.
		return numVal(Konst(0)), nil
	}
}

// cellMethod lowers method calls on bound leaf cells: sync.Mutex,
// sync.Cond, and sync/atomic fields.
func (f *frame) cellMethod(call *ast.CallExpr, c *cellRef, name string) (*absVal, error) {
	switch c.kind {
	case mutexCell:
		switch name {
		case "Lock":
			f.lo.emit(Instr{Op: OpMutexLock, Loc: c.addr})
			return nil, nil
		case "Unlock":
			f.lo.emit(Instr{Op: OpMutexUnlock, Loc: c.addr})
			return nil, nil
		}
	case condCell:
		switch name {
		case "Wait":
			f.lo.emit(Instr{Op: OpCondWait, Loc: c.addr})
			return nil, nil
		case "Broadcast":
			f.lo.emit(Instr{Op: OpCondBroadcast, Loc: c.addr})
			return nil, nil
		}
	case atomicCell:
		switch name {
		case "Load":
			r := f.lo.newReg()
			f.lo.emit(Instr{Op: OpLoad, Dst: r, Loc: c.addr, Atomic: true})
			return numVal(RegRef(r)), nil
		case "Store":
			a, err := f.numArgs(call, 1)
			if err != nil {
				return nil, err
			}
			f.lo.emit(Instr{Op: OpStore, Loc: c.addr, Val: a[0], Atomic: f.lo.storeAtomic()})
			return nil, nil
		case "Add":
			a, err := f.numArgs(call, 1)
			if err != nil {
				return nil, err
			}
			r := f.lo.newReg()
			f.lo.emit(Instr{Op: OpRMWAdd, Dst: r, Loc: c.addr, Val: a[0]})
			return numVal(RegRef(r)), nil
		case "CompareAndSwap":
			a, err := f.numArgs(call, 2)
			if err != nil {
				return nil, err
			}
			r := f.lo.newReg()
			f.lo.emit(Instr{Op: OpCAS, Dst: r, Loc: c.addr, Old: a[0], Val: a[1]})
			return numVal(RegRef(r)), nil
		}
	}
	return nil, f.errAt(call, "unsupported cell method %s", name)
}

// callFnVal dispatches calls through func-typed bindings: the simulated
// critical-section body and park.Table's memory hook.
func (f *frame) callFnVal(call *ast.CallExpr, v *absVal) (*absVal, error) {
	switch v.fn {
	case "envload":
		// park.Table.load: an atomic load of the simulated word.
		a, err := f.numArgs(call, 1)
		if err != nil {
			return nil, err
		}
		r := f.lo.newReg()
		f.lo.emit(Instr{Op: OpLoad, Dst: r, Loc: a[0], Atomic: true})
		return numVal(RegRef(r)), nil
	case "csbody":
		return nil, f.lowerCsBody(call)
	case "":
		return nil, f.errAt(call, "call through %s", v.describe())
	default:
		return nil, f.errAt(call, "unknown intrinsic func %q", v.fn)
	}
}

// lowerCsBody emits the synthetic critical-section body: the payload the
// protocol's mutual-exclusion and torn-section checks observe. Readers
// load both data words and assert they agree; writers store their unique
// writeVal to both. OpCsEnter/OpCsExit give the machine the live section
// counts for the mutual-exclusion check.
func (f *frame) lowerCsBody(call *ast.CallExpr) error {
	d0 := Konst(f.lo.opts.dataCells[0])
	d1 := Konst(f.lo.opts.dataCells[1])
	switch f.lo.opts.role {
	case csReader:
		f.lo.emit(Instr{Op: OpCsEnter, Val: Konst(0), Note: "reader section"})
		r0 := f.lo.newReg()
		f.lo.emit(Instr{Op: OpLoad, Dst: r0, Loc: d0, Atomic: true, Note: "data0"})
		r1 := f.lo.newReg()
		f.lo.emit(Instr{Op: OpLoad, Dst: r1, Loc: d1, Atomic: true, Note: "data1"})
		f.lo.emit(Instr{
			Op:   OpAssert,
			Cond: Bin(OpEq, false, RegRef(r0), RegRef(r1)),
			Note: "torn section body: data0 != data1",
		})
		f.lo.emit(Instr{Op: OpCsExit, Val: Konst(0)})
	case csWriter:
		wv := Konst(f.lo.opts.writeVal)
		f.lo.emit(Instr{Op: OpCsEnter, Val: Konst(1), Note: "writer section"})
		f.lo.emit(Instr{Op: OpStore, Loc: d0, Val: wv, Atomic: true, Note: "data0"})
		f.lo.emit(Instr{Op: OpStore, Loc: d1, Val: wv, Atomic: true, Note: "data1"})
		f.lo.emit(Instr{Op: OpCsExit, Val: Konst(1)})
	}
	return nil
}
