package interleave

import "testing"

// TestConfigsVerifyClean is the headline property: every shipped
// configuration of the real, extracted protocol verifies mutual
// exclusion, section-body integrity, quiescence, and
// lost-wakeup/deadlock freedom under both memory semantics, with the
// search completing inside CI-short bounds.
func TestConfigsVerifyClean(t *testing.T) {
	ex := testExtractor(t)
	for _, name := range ConfigNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			m, err := BuildConfig(ex, name, nil)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			for _, sem := range []Sem{SemSC, SemTSO} {
				res := RunModel(m, sem, ExploreOpts{})
				if !res.Complete {
					t.Errorf("%s: exploration incomplete (states=%d, depth=%d)", sem, res.States, res.MaxDepth)
					continue
				}
				if res.Violation != nil {
					t.Errorf("%s: %s\n%s", sem, res.Violation.Msg, RenderTrace(res.Violation))
				}
				if res.States == 0 || res.Transitions == 0 {
					t.Errorf("%s: empty exploration (states=%d transitions=%d)", sem, res.States, res.Transitions)
				}
			}
		})
	}
}

// TestDPORPrunes: the sleep-set reduction must actually prune on the
// flagship three-thread config — a reduction that stops pruning silently
// turns CI-short bounds into a state explosion.
func TestDPORPrunes(t *testing.T) {
	ex := testExtractor(t)
	m, err := BuildConfig(ex, "rsync-2r1w", nil)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	res := RunModel(m, SemSC, ExploreOpts{})
	if !res.Complete {
		t.Fatalf("flagship config incomplete: states=%d", res.States)
	}
	if res.Pruned == 0 {
		t.Error("sleep-set reduction pruned nothing on a three-thread config")
	}
}

// TestUnknownConfig: a typo'd -config fails loudly, listing the options.
func TestUnknownConfig(t *testing.T) {
	ex := testExtractor(t)
	if _, err := BuildConfig(ex, "no-such-config", nil); err == nil {
		t.Fatal("unknown config built successfully")
	}
}
