package interleave

import (
	"fmt"
	"sort"
	"strings"
)

// Shipped model configurations. Each closes the real, extracted protocol
// code over a concrete memory layout and option set; none of the thread
// programs is hand-written. The layout packs every array the protocol
// indexes (state/clock/waitingFor/readerVer words, the BRAVO table, the
// 64 park shards) into one small word-addressed store.

// Memory layout (word addresses).
const (
	cellGL        = 0 // fallback-lock word (SpinMutex)
	cellGLVer     = 1 // VersionedSGL version
	cellTrackMode = 2 // adaptive tracking-mode word
	cellData0     = 3 // critical-section payload, word 0
	cellData1     = 4 // critical-section payload, word 1
	cellPhase     = 5 // park-handshake phase word

	baseState      = 8  // per-thread state/flag words (stateAddr)
	baseClockW     = 16 // writers' predicted end times
	baseClockR     = 24
	baseWaitingFor = 32
	baseReaderVer  = 40

	bravoCollisions  = 60 // Go-side atomic counters, given scratch cells
	bravoRevocations = 61
	bravoCtl         = 120
	bravoOver        = 121
	bravoTable       = 128 // 4 slots * LineWords(8) = 128..159
	bravoSlots       = 4

	parkBase = 192 // 64 shards * shardCells(3) = 192..383

	modelMemSize = 400
)

// pkg paths of the protocol packages.
const (
	pkgCore  = "sprwl/internal/core"
	pkgPark  = "sprwl/internal/park"
	pkgLocks = "sprwl/internal/locks"
)

// coreOptions mirrors core.Options for binding; only fields the modeled
// paths read need values.
type coreOptions struct {
	ReaderSync, JoinWaiters, WriterSync, ReaderHTMFirst bool
	UseSNZI, UseBravo, AutoSNZI                         bool
	TimedReaderWait, VersionedSGL                       bool
	MaxRetries, ReaderRetries                           int
}

func boolConst(b bool) *absVal { return numVal(Konst(boolTo(b))) }
func intConst(v int) *absVal   { return numVal(Konst(uint64(int64(v)))) }

// binder assembles the object graph one configuration's threads share
// structurally (each thread gets its own graph instance: extraction
// mutates field slots).
type binder struct {
	threads int
	parker  bool
	opts    coreOptions
	bravo   bool
}

func (b *binder) envObj() *object { return newObject("env", "env", nil) }

func (b *binder) tableObj() *object {
	t := newObject("Table", "parkTable", map[string]*absVal{
		"load": {fn: "envload"},
		"shards": regionVal(&region{
			name:   "shards",
			base:   Konst(parkBase),
			stride: shardCells,
			fields: shardLayout(),
		}),
	})
	t.ref = funcRef{pkgPath: pkgPark, recv: "Table"}
	return t
}

func (b *binder) parkerVal() *absVal {
	if b.parker {
		return objVal(b.tableObj())
	}
	return objVal(nilObject("Table", "parker"))
}

func (b *binder) hubObj(parker *absVal) *object {
	return newObject("Hub", "wakes", map[string]*absVal{"p": parker})
}

func (b *binder) optsObj() *object {
	o := b.opts
	return newObject("Options", "opts", map[string]*absVal{
		"ReaderSync":      boolConst(o.ReaderSync),
		"JoinWaiters":     boolConst(o.JoinWaiters),
		"WriterSync":      boolConst(o.WriterSync),
		"ReaderHTMFirst":  boolConst(o.ReaderHTMFirst),
		"UseSNZI":         boolConst(o.UseSNZI),
		"UseBravo":        boolConst(o.UseBravo),
		"AutoSNZI":        boolConst(o.AutoSNZI),
		"TimedReaderWait": boolConst(o.TimedReaderWait),
		"VersionedSGL":    boolConst(o.VersionedSGL),
		"MaxRetries":      intConst(o.MaxRetries),
		"ReaderRetries":   intConst(o.ReaderRetries),
	})
}

func (b *binder) lockObj() *object {
	env := objVal(b.envObj())
	parker := b.parkerVal()
	hub := objVal(b.hubObj(parker))
	gl := newObject("SpinMutex", "gl", map[string]*absVal{
		"e":   env,
		"a":   numVal(Konst(cellGL)),
		"hub": hub,
	})
	indFlags := newObject("Flags", "indFlags", map[string]*absVal{
		"mem":  env,
		"base": numVal(Konst(baseState)),
		"n":    intConst(b.threads),
	})
	var indBravo *absVal
	if b.bravo {
		br := newObject("Bravo", "indBravo", map[string]*absVal{
			"mem":         env,
			"ctl":         numVal(Konst(bravoCtl)),
			"over":        numVal(Konst(bravoOver)),
			"table":       numVal(Konst(bravoTable)),
			"n":           intConst(bravoSlots),
			"mask":        numVal(Konst(bravoSlots - 1)),
			"collisions":  {cell: &cellRef{addr: Konst(bravoCollisions), kind: atomicCell}},
			"revocations": {cell: &cellRef{addr: Konst(bravoRevocations), kind: atomicCell}},
		})
		indBravo = objVal(br)
	} else {
		indBravo = objVal(nilObject("Bravo", "indBravo"))
	}
	return newObject("Lock", "lock", map[string]*absVal{
		"e":          env,
		"opts":       objVal(b.optsObj()),
		"threads":    intConst(b.threads),
		"est":        objVal(newObject("est", "est", nil)),
		"state":      numVal(Konst(baseState)),
		"clockW":     numVal(Konst(baseClockW)),
		"clockR":     numVal(Konst(baseClockR)),
		"waitingFor": numVal(Konst(baseWaitingFor)),
		"readerVer":  numVal(Konst(baseReaderVer)),
		"gl":         objVal(gl),
		"glVer":      numVal(Konst(cellGLVer)),
		"trackMode":  numVal(Konst(cellTrackMode)),
		"parker":     parker,
		"wakes":      hub,
		"indFlags":   objVal(indFlags),
		"indBravo":   indBravo,
	})
}

func (b *binder) handleObj(slot int) *object {
	// flaggedIn is seeded with the configuration's static tracking
	// backend (0 = flags, 2 = BRAVO): arriveIn re-stores the same
	// constant, so departFrom's backend dispatch stays static.
	backend := 0
	if b.bravo {
		backend = 2
	}
	return newObject("handle", "h", map[string]*absVal{
		"l":         objVal(b.lockObj()),
		"slot":      intConst(slot),
		"hint":      numVal(Konst(uint64(max(slot, 0)))),
		"ring":      objVal(newObject("ring", "ring", nil)),
		"flaggedIn": intConst(backend),
		"flagToken": numVal(Konst(0)),
	})
}

// threadMut carries one mutation's per-thread hooks (see mutate.go).
type threadMut struct {
	// applyTo matches thread-name prefixes ("R", "W", "R0").
	applyTo     string
	skipCalls   []string
	plainStores []string
	// swapArriveCheck reorders the reader's flag store after the
	// fallback-lock check (the classic flag-then-check inversion).
	swapArriveCheck bool
}

func (tm *threadMut) appliesTo(name string) bool {
	return tm != nil && strings.HasPrefix(name, tm.applyTo)
}

// extractThread compiles one protocol root for one thread.
func extractThread(ex *extractor, b *binder, name string, root funcRef, slot int, role csRole, writeVal uint64, tm *threadMut) (*Prog, error) {
	opts := extractOpts{
		site:      name,
		role:      role,
		writeVal:  writeVal,
		dataCells: [2]uint64{cellData0, cellData1},
	}
	if tm.appliesTo(name) {
		opts.skipCalls = tm.skipCalls
		opts.plainStores = tm.plainStores
	}
	h := b.handleObj(slot)
	csID := intConst(0)
	body := &absVal{fn: "csbody"}
	p, err := ex.extractRoot(root, objVal(h), []*absVal{csID, body}, opts)
	if err != nil {
		return nil, fmt.Errorf("thread %s: %w", name, err)
	}
	if tm.appliesTo(name) && tm.swapArriveCheck {
		if err := swapFlagCheck(p); err != nil {
			return nil, fmt.Errorf("thread %s: %w", name, err)
		}
	}
	p.Name = name
	return p, nil
}

var readRoot = funcRef{pkgPath: pkgCore, recv: "handle", name: "Read"}
var writeRoot = funcRef{pkgPath: pkgCore, recv: "handle", name: "Write"}

// cellNames labels the layout for trace rendering.
func cellNames(threads int) map[uint64]string {
	n := map[uint64]string{
		cellGL: "gl", cellGLVer: "glVer", cellTrackMode: "trackMode",
		cellData0: "data0", cellData1: "data1", cellPhase: "phase",
		bravoCollisions: "bravo.collisions", bravoRevocations: "bravo.revocations",
		bravoCtl: "bravo.ctl", bravoOver: "bravo.over",
	}
	for i := 0; i < threads; i++ {
		n[baseState+uint64(i)] = fmt.Sprintf("state[%d]", i)
		n[baseClockW+uint64(i)] = fmt.Sprintf("clockW[%d]", i)
		n[baseClockR+uint64(i)] = fmt.Sprintf("clockR[%d]", i)
		n[baseWaitingFor+uint64(i)] = fmt.Sprintf("waitingFor[%d]", i)
		n[baseReaderVer+uint64(i)] = fmt.Sprintf("readerVer[%d]", i)
	}
	for i := 0; i < bravoSlots; i++ {
		n[bravoTable+uint64(i*8)] = fmt.Sprintf("bravo.slot[%d]", i)
	}
	for s := 0; s < 64; s++ {
		base := uint64(parkBase + s*shardCells)
		n[base] = fmt.Sprintf("shard[%d].mu", s)
		n[base+1] = fmt.Sprintf("shard[%d].gen", s)
		n[base+2] = fmt.Sprintf("shard[%d].waiters", s)
	}
	return n
}

// quiescenceCells are the words that must read zero once every thread
// retired: lock released, flags retracted, registrations cleared, no
// waiter counted in any shard.
func quiescenceCells(threads int, bravo bool) []uint64 {
	cells := []uint64{cellGL}
	for i := 0; i < threads; i++ {
		cells = append(cells, baseState+uint64(i), baseWaitingFor+uint64(i), baseReaderVer+uint64(i))
	}
	if bravo {
		cells = append(cells, bravoOver)
		for i := 0; i < bravoSlots; i++ {
			cells = append(cells, bravoTable+uint64(i*8))
		}
	}
	for s := 0; s < 64; s++ {
		cells = append(cells, uint64(parkBase+s*shardCells), uint64(parkBase+s*shardCells+2))
	}
	return cells
}

func protocolFinals(threads int, bravo bool) []Final {
	return []Final{
		{Kind: FinalZero, Cells: quiescenceCells(threads, bravo), Desc: "quiescence"},
		{Kind: FinalAllEqual, Cells: []uint64{cellData0, cellData1}, Desc: "section body not torn"},
	}
}

// ConfigNames lists the shipped configurations in display order.
func ConfigNames() []string {
	names := make([]string, 0, len(configBuilders))
	for n := range configBuilders {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ConfigDoc describes a configuration for -list.
func ConfigDoc(name string) string { return configDocs[name] }

var configDocs = map[string]string{
	"park-handshake": "1 parked waiter + 1 store-then-wake waker over the real park.Table (DESIGN §10 lost-wakeup claim)",
	"mutex-2w":       "2 fallback writers: SGL mutual exclusion via lock-then-drain",
	"mutex-2r1w":     "2 readers + 1 fallback writer: flag-then-check vs lock-then-drain mutual exclusion",
	"rsync-2r1w":     "2 readers + 1 writer with ReaderSync+JoinWaiters: Alg. 2 waits and writer-retire wakeups",
	"bravo-1r1w":     "1 BRAVO reader + 1 fallback writer: revocation visibility during the drain",
	"vsgl-1r1w":      "1 reader + 1 fallback writer with VersionedSGL: §3.3 registration/gating handshake",
}

var configBuilders = map[string]func(ex *extractor, tm *threadMut) (*Model, error){
	"park-handshake": buildParkHandshake,
	"mutex-2w":       buildMutex2W,
	"mutex-2r1w":     buildMutex2R1W,
	"rsync-2r1w":     buildRSync2R1W,
	"bravo-1r1w":     buildBravo1R1W,
	"vsgl-1r1w":      buildVSGL1R1W,
}

// BuildConfig extracts and assembles a shipped configuration; tm (may be
// nil) applies one mutation's hooks.
func BuildConfig(ex *extractor, name string, tm *threadMut) (*Model, error) {
	b, ok := configBuilders[name]
	if !ok {
		return nil, fmt.Errorf("interleave: unknown config %q (have %s)", name, strings.Join(ConfigNames(), ", "))
	}
	return b(ex, tm)
}

func buildMutex2W(ex *extractor, tm *threadMut) (*Model, error) {
	b := &binder{threads: 2, parker: true, opts: coreOptions{MaxRetries: 1}}
	w0, err := extractThread(ex, b, "W0", writeRoot, -1, csWriter, 1, tm)
	if err != nil {
		return nil, err
	}
	w1, err := extractThread(ex, b, "W1", writeRoot, -1, csWriter, 2, tm)
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:      "mutex-2w",
		Threads:   []ThreadSpec{{"W0", w0}, {"W1", w1}},
		MemSize:   modelMemSize,
		CellNames: cellNames(2),
		Finals:    protocolFinals(2, false),
	}, nil
}

func buildMutex2R1W(ex *extractor, tm *threadMut) (*Model, error) {
	b := &binder{threads: 3, parker: true, opts: coreOptions{MaxRetries: 1}}
	r0, err := extractThread(ex, b, "R0", readRoot, 0, csReader, 0, tm)
	if err != nil {
		return nil, err
	}
	r1, err := extractThread(ex, b, "R1", readRoot, 1, csReader, 0, tm)
	if err != nil {
		return nil, err
	}
	w, err := extractThread(ex, b, "W", writeRoot, 2, csWriter, 7, tm)
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:      "mutex-2r1w",
		Threads:   []ThreadSpec{{"R0", r0}, {"R1", r1}, {"W", w}},
		MemSize:   modelMemSize,
		CellNames: cellNames(3),
		Finals:    protocolFinals(3, false),
	}, nil
}

func buildRSync2R1W(ex *extractor, tm *threadMut) (*Model, error) {
	b := &binder{threads: 3, parker: true, opts: coreOptions{
		ReaderSync: true, JoinWaiters: true, MaxRetries: 1,
	}}
	r0, err := extractThread(ex, b, "R0", readRoot, 0, csReader, 0, tm)
	if err != nil {
		return nil, err
	}
	r1, err := extractThread(ex, b, "R1", readRoot, 1, csReader, 0, tm)
	if err != nil {
		return nil, err
	}
	w, err := extractThread(ex, b, "W", writeRoot, 2, csWriter, 7, tm)
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:      "rsync-2r1w",
		Threads:   []ThreadSpec{{"R0", r0}, {"R1", r1}, {"W", w}},
		MemSize:   modelMemSize,
		CellNames: cellNames(3),
		Finals:    protocolFinals(3, false),
	}, nil
}

func buildBravo1R1W(ex *extractor, tm *threadMut) (*Model, error) {
	b := &binder{threads: 2, parker: true, bravo: true, opts: coreOptions{
		UseBravo: true, MaxRetries: 1,
	}}
	r0, err := extractThread(ex, b, "R0", readRoot, 0, csReader, 0, tm)
	if err != nil {
		return nil, err
	}
	w, err := extractThread(ex, b, "W", writeRoot, 1, csWriter, 7, tm)
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:      "bravo-1r1w",
		Threads:   []ThreadSpec{{"R0", r0}, {"W", w}},
		MemSize:   modelMemSize,
		Init:      map[uint64]uint64{bravoCtl: 1}, // epoch 0, bias on
		CellNames: cellNames(2),
		Finals: []Final{
			{Kind: FinalZero, Cells: quiescenceCells(2, true), Desc: "quiescence"},
			{Kind: FinalAllEqual, Cells: []uint64{cellData0, cellData1}, Desc: "section body not torn"},
		},
	}, nil
}

func buildVSGL1R1W(ex *extractor, tm *threadMut) (*Model, error) {
	b := &binder{threads: 2, parker: true, opts: coreOptions{
		VersionedSGL: true, MaxRetries: 1,
	}}
	r0, err := extractThread(ex, b, "R0", readRoot, 0, csReader, 0, tm)
	if err != nil {
		return nil, err
	}
	w, err := extractThread(ex, b, "W", writeRoot, 1, csWriter, 7, tm)
	if err != nil {
		return nil, err
	}
	return &Model{
		Name:      "vsgl-1r1w",
		Threads:   []ThreadSpec{{"R0", r0}, {"W", w}},
		MemSize:   modelMemSize,
		CellNames: cellNames(2),
		Finals:    protocolFinals(2, false),
	}, nil
}

// buildParkHandshake models DESIGN §10's store-then-wake vs
// register-then-check argument directly over the real extracted
// park.Table: a waiter loops re-checking the phase word and parking on
// it; the waker stores the phase, then calls the real Wake. The glue
// around the extracted programs is the minimal wait-site loop; Park and
// Wake themselves are compiled from source.
func buildParkHandshake(ex *extractor, tm *threadMut) (*Model, error) {
	b := &binder{threads: 2, parker: true}
	tbl := b.tableObj()

	parkProg, err := ex.extractRoot(
		funcRef{pkgPath: pkgPark, recv: "Table", name: "Park"},
		objVal(tbl),
		[]*absVal{numVal(Konst(cellPhase)), numVal(Konst(0))},
		extractOpts{site: "waiter"},
	)
	if err != nil {
		return nil, err
	}

	// Waiter: for phase == 0 { Park(phase, 0) }; halt.
	rPhase := Reg(parkProg.NRegs)
	var code []Instr
	code = append(code,
		Instr{Op: OpLoad, Dst: rPhase, Loc: Konst(cellPhase), Atomic: true, Site: "waiter", Note: "re-check phase"},
		Instr{Op: OpBranch, Cond: RegRef(rPhase), Site: "waiter"}, // A -> exit, patched below
	)
	code = appendProg(code, parkProg, 0) // halt -> loop back to the re-check
	exit := len(code)
	code[1].A = exit
	code[1].B = 2
	code = append(code, Instr{Op: OpHalt, Site: "waiter"})
	waiter := &Prog{Name: "waiter", Code: code, NRegs: parkProg.NRegs + 1}

	// Waker: store phase = 1 (the retirement store), then the real Wake —
	// unless the drop-wake mutation deleted it.
	var wcode []Instr
	wcode = append(wcode, Instr{Op: OpStore, Loc: Konst(cellPhase), Val: Konst(1), Atomic: true, Site: "waker", Note: "phase store"})
	dropWake := tm.appliesTo("waker") && matchesSuffix(tm.skipCalls, "Table.Wake")
	if !dropWake {
		wakeProg, err := ex.extractRoot(
			funcRef{pkgPath: pkgPark, recv: "Table", name: "Wake"},
			objVal(b.tableObj()),
			[]*absVal{numVal(Konst(cellPhase))},
			extractOpts{site: "waker"},
		)
		if err != nil {
			return nil, err
		}
		wcode = appendProg(wcode, wakeProg, -1)
	} else {
		wcode = append(wcode, Instr{Op: OpHalt, Site: "waker"})
	}
	nregs := 0
	for _, in := range wcode {
		if int(in.Dst) >= nregs {
			nregs = int(in.Dst) + 1
		}
	}
	waker := &Prog{Name: "waker", Code: wcode, NRegs: nregs}

	return &Model{
		Name:      "park-handshake",
		Threads:   []ThreadSpec{{"waiter", waiter}, {"waker", waker}},
		MemSize:   modelMemSize,
		CellNames: cellNames(2),
		Finals: []Final{
			{Kind: FinalZero, Cells: quiescenceCells(0, false), Desc: "quiescence"},
		},
	}, nil
}

// appendProg appends src's code to dst, shifting control-flow targets by
// the current offset. haltTo >= 0 turns src's OpHalt instructions into
// jumps to that (already-shifted) dst index; haltTo < 0 keeps them.
func appendProg(dst []Instr, src *Prog, haltTo int) []Instr {
	off := len(dst)
	for _, in := range src.Code {
		switch in.Op {
		case OpJump, OpBranch, OpChoice:
			in.A += off
			if in.Op != OpJump {
				in.B += off
			}
		case OpHalt:
			if haltTo >= 0 {
				in = Instr{Op: OpJump, A: haltTo, Site: in.Site, Pos: in.Pos}
			}
		}
		dst = append(dst, in)
	}
	return dst
}

// swapFlagCheck applies the reordered-flag-store mutation: the reader's
// Arrive store and the following fallback-lock check load exchange
// places, turning flag-then-check into check-then-flag. The transform
// verifies the two steps are joined by a linear invisible chain with no
// outside jumps into it, so the swap is exactly a reorder of the two
// shared-memory accesses.
func swapFlagCheck(p *Prog) error {
	pcS := -1
	for i := range p.Code {
		in := &p.Code[i]
		if in.Op == OpStore && strings.Contains(in.Site, "Arrive") {
			pcS = i
			break
		}
	}
	if pcS < 0 {
		return fmt.Errorf("swapFlagCheck: no Arrive store in %s", p.Name)
	}
	chain := map[int]bool{}
	pc := pcS + 1
	for {
		if pc < 0 || pc >= len(p.Code) || chain[pc] {
			return fmt.Errorf("swapFlagCheck: no linear path from the Arrive store to a check load")
		}
		in := &p.Code[pc]
		if in.Op.Visible() {
			if in.Op != OpLoad {
				return fmt.Errorf("swapFlagCheck: next visible step after Arrive is %s, want load", in.Op.Name())
			}
			break
		}
		chain[pc] = true
		switch in.Op {
		case OpJump:
			pc = in.A
		case OpLocal:
			pc++
		default:
			return fmt.Errorf("swapFlagCheck: %s between the Arrive store and the check load", in.Op.Name())
		}
	}
	pcL := pc
	// No instruction outside the chain may jump into it (or at the load):
	// entering mid-chain would execute the relocated store on a path that
	// previously performed only the load.
	for i := range p.Code {
		if i == pcS || chain[i] {
			continue
		}
		in := &p.Code[i]
		switch in.Op {
		case OpJump:
			if chain[in.A] || in.A == pcL {
				return fmt.Errorf("swapFlagCheck: external jump into the reorder window")
			}
		case OpBranch, OpChoice:
			if chain[in.A] || chain[in.B] || in.A == pcL || in.B == pcL {
				return fmt.Errorf("swapFlagCheck: external branch into the reorder window")
			}
		}
	}
	p.Code[pcS], p.Code[pcL] = p.Code[pcL], p.Code[pcS]
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
