package interleave

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"

	"sprwl/internal/analysis/driver"
)

// The lowerer compiles the Go AST of annotated protocol functions into
// atomic-step programs. Design rules:
//
//   - Every access to modeled shared memory (env.Env loads/stores/CAS/Add,
//     park.shard fields, sync.Mutex/Cond operations) becomes one visible
//     Instr; everything thread-local lowers to invisible OpLocal/OpJump/
//     OpBranch instructions that coalesce into the neighbouring step.
//   - Configuration branches fold away at extraction time: Options fields,
//     slots, and addresses are bound to constants, and `if`/`switch` on
//     constant conditions lower only the taken arm, so a NoSched reader
//     program contains no trace of the VersionedSGL path.
//   - The subset is explicit: any construct outside it is an extraction
//     error, never a silent approximation.

type lowerer struct {
	ex   *extractor
	opts extractOpts
	out  []Instr

	nextReg Reg
	depth   int

	curSite string
	curPos  string
}

// frame is one (possibly inlined) function activation.
type frame struct {
	lo   *lowerer
	pkg  *driver.Package
	site string

	vars  map[types.Object]*absVal
	multi map[types.Object]bool

	retReg     Reg
	retVal     *absVal
	retPatches []int
	// retConsts collects constant return values; when every return folded
	// to one shared constant, the call itself stays constant (tracking-mode
	// helpers must not lose constness through the return register).
	retConsts   []uint64
	retNonConst bool

	loops []*loopCtx
}

type loopCtx struct {
	isSwitch  bool
	breaks    []int
	continues []int
}

func (f *frame) info() *types.Info { return f.pkg.Info }

func (lo *lowerer) newReg() Reg {
	r := lo.nextReg
	lo.nextReg++
	return r
}

func (lo *lowerer) emit(in Instr) int {
	if in.Site == "" {
		in.Site = lo.curSite
	}
	if in.Pos == "" {
		in.Pos = lo.curPos
	}
	lo.out = append(lo.out, in)
	return len(lo.out) - 1
}

// emitCondBranch emits a branch on cond falling through on true; the
// returned pc's B field must be patched to the false target.
func (lo *lowerer) emitCondBranch(cond *Expr) int {
	pc := lo.emit(Instr{Op: OpBranch, Cond: cond})
	lo.out[pc].A = pc + 1
	return pc
}

// emitJump emits an unpatched jump and returns its pc.
func (lo *lowerer) emitJump() int {
	return lo.emit(Instr{Op: OpJump, A: -1})
}

func (lo *lowerer) patch(pcs []int, target int) {
	for _, pc := range pcs {
		if lo.out[pc].Op == OpJump {
			lo.out[pc].A = target
		} else {
			lo.out[pc].B = target
		}
	}
}

func (lo *lowerer) posOf(pkg *driver.Package, pos token.Pos) string {
	p := lo.ex.prog.Fset.Position(pos)
	if rel, err := filepath.Rel(lo.ex.prog.ModuleDir, p.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		return fmt.Sprintf("%s:%d", filepath.ToSlash(rel), p.Line)
	}
	return fmt.Sprintf("%s:%d", p.Filename, p.Line)
}

// errAt wraps an extraction error with the current source position.
func (f *frame) errAt(n ast.Node, format string, args ...any) error {
	return fmt.Errorf("%s: %s: %s", f.lo.posOf(f.pkg, n.Pos()), f.site, fmt.Sprintf(format, args...))
}

// countAssigns pre-scans a function body for the number of writes to each
// local object. A local written more than once must live in a machine
// register; a single-binding local may stay symbolic (which is what lets
// configuration constants fold branches away).
func countAssigns(decl *ast.FuncDecl, info *types.Info) map[types.Object]bool {
	counts := map[types.Object]int{}
	bump := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
			if obj := info.Defs[id]; obj != nil {
				counts[obj]++
			} else if obj := info.Uses[id]; obj != nil {
				counts[obj]++
			}
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				bump(l)
			}
		case *ast.IncDecStmt:
			bump(s.X)
		case *ast.RangeStmt:
			bump(s.Key)
			bump(s.Value)
		case *ast.ValueSpec:
			// `var x uint64` then `x = ...` is two writes: the zero
			// binding plus the assignment.
			for _, name := range s.Names {
				bump(name)
			}
		}
		return true
	})
	multi := map[types.Object]bool{}
	for obj, n := range counts {
		if n > 1 {
			multi[obj] = true
		}
	}
	return multi
}

// inlineDecl lowers decl's body with the receiver and arguments bound,
// appending to lo.out. The returned value is the function result (nil for
// none).
func (lo *lowerer) inlineDecl(pkg *driver.Package, decl *ast.FuncDecl, recv *absVal, args []*absVal, site string, call ast.Node) (*absVal, error) {
	if lo.depth++; lo.depth > 48 {
		return nil, fmt.Errorf("interleave: inline depth exceeded at %s (recursive protocol function?)", site)
	}
	defer func() { lo.depth-- }()

	f := &frame{
		lo:     lo,
		pkg:    pkg,
		site:   site,
		vars:   map[types.Object]*absVal{},
		multi:  countAssigns(decl, pkg.Info),
		retReg: -1,
	}
	if decl.Recv != nil && len(decl.Recv.List) == 1 && len(decl.Recv.List[0].Names) == 1 {
		name := decl.Recv.List[0].Names[0]
		if name.Name != "_" {
			if recv == nil {
				return nil, fmt.Errorf("interleave: %s: method lowered without a receiver binding", site)
			}
			if obj := pkg.Info.Defs[name]; obj != nil {
				if err := f.bindVar(obj, recv, name); err != nil {
					return nil, err
				}
			}
		}
	}
	i := 0
	for _, field := range decl.Type.Params.List {
		for _, name := range field.Names {
			if i >= len(args) {
				return nil, fmt.Errorf("interleave: %s: %d args for %d params", site, len(args), i+1)
			}
			if name.Name != "_" {
				if obj := pkg.Info.Defs[name]; obj != nil {
					if err := f.bindVar(obj, args[i], name); err != nil {
						return nil, err
					}
				}
			}
			i++
		}
	}

	savedSite, savedPos := lo.curSite, lo.curPos
	lo.curSite = site
	if _, err := f.lowerBlock(decl.Body); err != nil {
		return nil, err
	}
	lo.patch(f.retPatches, len(lo.out))
	lo.curSite, lo.curPos = savedSite, savedPos

	if f.retVal != nil {
		return f.retVal, nil
	}
	if f.retReg >= 0 {
		if !f.retNonConst && len(f.retConsts) > 0 {
			same := true
			for _, c := range f.retConsts[1:] {
				if c != f.retConsts[0] {
					same = false
					break
				}
			}
			if same {
				return numVal(Konst(f.retConsts[0])), nil
			}
		}
		return numVal(RegRef(f.retReg)), nil
	}
	return nil, nil
}

// bindVar introduces a local. Multi-assigned numeric locals are backed by
// a register; single-binding locals keep the symbolic value (constant,
// object, region, cell, or a snapshotted register reference).
func (f *frame) bindVar(obj types.Object, v *absVal, at ast.Node) error {
	if v == nil {
		return f.errAt(at, "binding %s to a void value", obj.Name())
	}
	if f.multi[obj] {
		if v.x == nil {
			return f.errAt(at, "mutable local %s holds a non-numeric value (%s); bind it in the configuration instead", obj.Name(), v.describe())
		}
		r := f.lo.newReg()
		f.lo.emit(Instr{Op: OpLocal, Dst: r, Val: v.x, Note: obj.Name()})
		f.vars[obj] = numVal(RegRef(r))
		return nil
	}
	if v.x != nil {
		if _, isConst := v.x.ConstOf(); !isConst && v.x.Kind != EReg {
			// Snapshot runtime expressions so later register churn
			// cannot change this local's value.
			r := f.lo.newReg()
			f.lo.emit(Instr{Op: OpLocal, Dst: r, Val: v.x, Note: obj.Name()})
			v = numVal(RegRef(r))
		}
	}
	f.vars[obj] = v
	return nil
}

// assignVar writes an already-bound local.
func (f *frame) assignVar(obj types.Object, v *absVal, at ast.Node) error {
	cur, ok := f.vars[obj]
	if !ok {
		return f.bindVar(obj, v, at)
	}
	if cur.x == nil || cur.x.Kind != EReg {
		// Single-binding locals are never reassigned (the pre-scan put
		// every multi-write local in a register); reaching here means
		// the pre-scan missed a write path.
		return f.errAt(at, "reassignment of non-register local %s", obj.Name())
	}
	if v == nil || v.x == nil {
		return f.errAt(at, "assigning non-numeric value to register local %s", obj.Name())
	}
	f.lo.emit(Instr{Op: OpLocal, Dst: cur.x.Reg, Val: v.x, Note: obj.Name()})
	return nil
}

// ---- statements ----

// lowerBlock lowers stmts until the flow terminates (return/break/
// continue); it reports whether it did.
func (f *frame) lowerBlock(b *ast.BlockStmt) (bool, error) {
	for _, s := range b.List {
		term, err := f.lowerStmt(s)
		if err != nil {
			return false, err
		}
		if term {
			return true, nil
		}
	}
	return false, nil
}

func (f *frame) lowerStmt(s ast.Stmt) (bool, error) {
	f.lo.curPos = f.lo.posOf(f.pkg, s.Pos())
	switch st := s.(type) {
	case *ast.BlockStmt:
		return f.lowerBlock(st)
	case *ast.ExprStmt:
		_, err := f.evalExpr(st.X)
		return false, err
	case *ast.AssignStmt:
		return false, f.lowerAssign(st)
	case *ast.IncDecStmt:
		return false, f.lowerIncDec(st)
	case *ast.DeclStmt:
		return false, f.lowerDecl(st)
	case *ast.IfStmt:
		return f.lowerIf(st)
	case *ast.ForStmt:
		return f.lowerFor(st)
	case *ast.SwitchStmt:
		return f.lowerSwitch(st)
	case *ast.ReturnStmt:
		return true, f.lowerReturn(st)
	case *ast.BranchStmt:
		return f.lowerBranch(st)
	case *ast.EmptyStmt:
		return false, nil
	default:
		return false, f.errAt(s, "unsupported statement %T in modeled code", s)
	}
}

func (f *frame) lowerDecl(st *ast.DeclStmt) error {
	gd, ok := st.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return f.errAt(st, "unsupported declaration in modeled code")
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			return f.errAt(st, "unsupported var spec")
		}
		for i, name := range vs.Names {
			var v *absVal
			if i < len(vs.Values) {
				val, err := f.evalExpr(vs.Values[i])
				if err != nil {
					return err
				}
				v = val
			} else {
				v = numVal(Konst(0))
			}
			if name.Name == "_" {
				continue
			}
			if obj := f.info().Defs[name]; obj != nil {
				if err := f.bindVar(obj, v, name); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func (f *frame) lowerAssign(st *ast.AssignStmt) error {
	if len(st.Lhs) != len(st.Rhs) {
		return f.errAt(st, "multi-value assignment in modeled code")
	}
	for i := range st.Lhs {
		rhs := st.Rhs[i]
		lhs := st.Lhs[i]
		var v *absVal
		if st.Tok == token.ASSIGN || st.Tok == token.DEFINE {
			val, err := f.evalExpr(rhs)
			if err != nil {
				return err
			}
			v = val
		} else {
			// Compound assignment: read-modify-write on the target.
			cur, err := f.readLvalue(lhs)
			if err != nil {
				return err
			}
			rv, err := f.evalExpr(rhs)
			if err != nil {
				return err
			}
			if cur.x == nil || rv.x == nil {
				return f.errAt(st, "compound assignment on non-numeric value")
			}
			op, ok := compoundOp(st.Tok)
			if !ok {
				return f.errAt(st, "unsupported compound assignment %s", st.Tok)
			}
			v = numVal(Bin(op, f.isSigned(lhs), cur.x, rv.x))
		}
		if err := f.writeLvalue(lhs, v, st.Tok == token.DEFINE); err != nil {
			return err
		}
	}
	return nil
}

func compoundOp(tok token.Token) (BinOp, bool) {
	switch tok {
	case token.ADD_ASSIGN:
		return OpAdd, true
	case token.SUB_ASSIGN:
		return OpSub, true
	case token.OR_ASSIGN:
		return OpOr, true
	case token.AND_ASSIGN:
		return OpAnd, true
	case token.XOR_ASSIGN:
		return OpXor, true
	case token.SHL_ASSIGN:
		return OpShl, true
	case token.SHR_ASSIGN:
		return OpShr, true
	case token.MUL_ASSIGN:
		return OpMul, true
	}
	return 0, false
}

func (f *frame) lowerIncDec(st *ast.IncDecStmt) error {
	cur, err := f.readLvalue(st.X)
	if err != nil {
		return err
	}
	if cur.x == nil {
		return f.errAt(st, "inc/dec on non-numeric value")
	}
	op := OpAdd
	if st.Tok == token.DEC {
		op = OpSub
	}
	return f.writeLvalue(st.X, numVal(Bin(op, false, cur.x, Konst(1))), false)
}

// readLvalue evaluates an assignable expression's current value; shared
// cells emit a load step.
func (f *frame) readLvalue(e ast.Expr) (*absVal, error) {
	return f.evalExpr(e)
}

// writeLvalue assigns to a local, an object field, or a bound memory cell.
func (f *frame) writeLvalue(e ast.Expr, v *absVal, define bool) error {
	switch lhs := ast.Unparen(e).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return nil
		}
		if define {
			if obj := f.info().Defs[lhs]; obj != nil {
				return f.bindVar(obj, v, lhs)
			}
			// A := with no new variable on this ident (redeclaration in
			// a sibling position) behaves as assignment.
		}
		obj := f.info().Uses[lhs]
		if obj == nil {
			obj = f.info().Defs[lhs]
		}
		if obj == nil {
			return f.errAt(lhs, "unresolved assignment target %s", lhs.Name)
		}
		return f.assignVar(obj, v, lhs)
	case *ast.SelectorExpr:
		base, err := f.evalExpr(lhs.X)
		if err != nil {
			return err
		}
		switch {
		case base.obj != nil:
			return f.assignField(base.obj, lhs.Sel.Name, v, lhs)
		case base.reg != nil:
			cell, err := regionField2(base.reg, lhs.Sel.Name)
			if err != nil {
				return f.errAt(lhs, "%v", err)
			}
			return f.storeCell(cell, v, lhs)
		}
		return f.errAt(lhs, "assignment through %s", base.describe())
	default:
		return f.errAt(e, "unsupported assignment target %T", e)
	}
}

// assignField updates an object field. Constant fields may be overwritten
// with the same constant (idempotent re-publication in a loop); a
// conflicting runtime value promotes the field to a stable register so
// every past and future read through the register stays coherent.
func (f *frame) assignField(o *object, name string, v *absVal, at ast.Node) error {
	if o.isNil {
		f.lo.emit(Instr{Op: OpTrap, Note: "field store on nil " + o.name})
		return nil
	}
	cur, ok := o.fields[name]
	if !ok {
		o.fields[name] = v
		return nil
	}
	// Non-numeric slots (bodies stashed in h.txBody, etc.) follow
	// last-write-wins; they are never read back by modeled code paths.
	if cur.x == nil || v == nil || v.x == nil {
		o.fields[name] = v
		return nil
	}
	if cur.x.Kind == EReg {
		f.lo.emit(Instr{Op: OpLocal, Dst: cur.x.Reg, Val: v.x, Note: o.name + "." + name})
		return nil
	}
	if c1, ok1 := cur.x.ConstOf(); ok1 {
		if c2, ok2 := v.x.ConstOf(); ok2 && c1 == c2 {
			return nil
		}
	}
	// Promote: from here on the field lives in a register. Reads folded
	// before this point saw the old constant, which is only sound when
	// no loop re-executes them — modeled code keeps constant-published
	// fields (flaggedIn, flagToken) loop-stable, so a conflict here is a
	// modeling bug to surface, not to paper over.
	r := f.lo.newReg()
	f.lo.emit(Instr{Op: OpLocal, Dst: r, Val: cur.x, Note: o.name + "." + name + " (promoted)"})
	f.lo.emit(Instr{Op: OpLocal, Dst: r, Val: v.x, Note: o.name + "." + name})
	o.fields[name] = numVal(RegRef(r))
	return nil
}

func (f *frame) storeCell(c *cellRef, v *absVal, at ast.Node) error {
	if v == nil || v.x == nil {
		return f.errAt(at, "storing non-numeric value to a memory cell")
	}
	switch c.kind {
	case plainCell:
		f.lo.emit(Instr{Op: OpStore, Loc: c.addr, Val: v.x})
	case atomicCell:
		f.lo.emit(Instr{Op: OpStore, Loc: c.addr, Val: v.x, Atomic: true})
	default:
		return f.errAt(at, "direct store to a mutex/cond cell")
	}
	return nil
}

func (f *frame) lowerIf(st *ast.IfStmt) (bool, error) {
	if st.Init != nil {
		if _, err := f.lowerStmt(st.Init); err != nil {
			return false, err
		}
	}
	cond, err := f.evalExpr(st.Cond)
	if err != nil {
		return false, err
	}
	if cond.x == nil {
		return false, f.errAt(st.Cond, "non-numeric if condition")
	}
	if c, ok := cond.x.ConstOf(); ok {
		if c != 0 {
			return f.lowerBlock(st.Body)
		}
		if st.Else != nil {
			return f.lowerStmt(st.Else)
		}
		return false, nil
	}
	br := f.lo.emitCondBranch(cond.x)
	thenTerm, err := f.lowerBlock(st.Body)
	if err != nil {
		return false, err
	}
	if st.Else == nil {
		f.lo.patch([]int{br}, len(f.lo.out))
		return false, nil
	}
	var overElse []int
	if !thenTerm {
		overElse = append(overElse, f.lo.emitJump())
	}
	f.lo.patch([]int{br}, len(f.lo.out))
	elseTerm, err := f.lowerStmt(st.Else)
	if err != nil {
		return false, err
	}
	f.lo.patch(overElse, len(f.lo.out))
	return thenTerm && elseTerm, nil
}

func (f *frame) lowerFor(st *ast.ForStmt) (bool, error) {
	if st.Init != nil {
		if _, err := f.lowerStmt(st.Init); err != nil {
			return false, err
		}
	}
	ctx := &loopCtx{}
	f.loops = append(f.loops, ctx)
	defer func() { f.loops = f.loops[:len(f.loops)-1] }()

	condPC := len(f.lo.out)
	var exitPatches []int
	if st.Cond != nil {
		cond, err := f.evalExpr(st.Cond)
		if err != nil {
			return false, err
		}
		if cond.x == nil {
			return false, f.errAt(st.Cond, "non-numeric loop condition")
		}
		if c, ok := cond.x.ConstOf(); ok {
			if c == 0 {
				return false, nil // loop never runs
			}
			// Constant-true condition: no branch.
		} else {
			exitPatches = append(exitPatches, f.lo.emitCondBranch(cond.x))
		}
	}
	bodyTerm, err := f.lowerBlock(st.Body)
	if err != nil {
		return false, err
	}
	postPC := len(f.lo.out)
	if st.Post != nil {
		if _, err := f.lowerStmt(st.Post); err != nil {
			return false, err
		}
	}
	if !bodyTerm {
		f.lo.emit(Instr{Op: OpJump, A: condPC})
	} else if st.Post != nil || len(ctx.continues) > 0 {
		// The body always terminates but continue edges still reach the
		// post statement; close the back edge for them.
		f.lo.emit(Instr{Op: OpJump, A: condPC})
	}
	f.lo.patch(ctx.continues, postPC)
	end := len(f.lo.out)
	f.lo.patch(exitPatches, end)
	f.lo.patch(ctx.breaks, end)

	// An infinite loop with no break never falls through.
	infinite := st.Cond == nil || len(exitPatches) == 0
	if st.Cond != nil {
		if c, ok := constCondOf(f, st.Cond); ok && c != 0 {
			infinite = true
		}
	}
	return infinite && len(ctx.breaks) == 0, nil
}

// constCondOf re-checks whether a loop condition folded to a constant
// (side-effect-free: only consults the type-checker's constant table).
func constCondOf(f *frame, e ast.Expr) (uint64, bool) {
	if tv, ok := f.info().Types[e]; ok && tv.Value != nil {
		return constToUint64(tv.Value), true
	}
	return 0, false
}

func (f *frame) lowerSwitch(st *ast.SwitchStmt) (bool, error) {
	if st.Init != nil {
		if _, err := f.lowerStmt(st.Init); err != nil {
			return false, err
		}
	}
	var tag *absVal
	if st.Tag != nil {
		v, err := f.evalExpr(st.Tag)
		if err != nil {
			return false, err
		}
		if v.x == nil {
			return false, f.errAt(st.Tag, "non-numeric switch tag")
		}
		tag = v
	}

	var clauses []*ast.CaseClause
	for _, s := range st.Body.List {
		cc, ok := s.(*ast.CaseClause)
		if !ok {
			return false, f.errAt(s, "unsupported switch clause")
		}
		clauses = append(clauses, cc)
	}

	// Static selection: a constant tag against all-constant case values
	// (or `switch { case constExpr: }`) lowers only the chosen arm —
	// the tracking-mode and backend dispatches of internal/core fold
	// this way.
	if chosen, ok, err := f.staticSwitchArm(st, tag, clauses); err != nil {
		return false, err
	} else if ok {
		if chosen == nil {
			return false, nil
		}
		return f.lowerCaseBody(chosen)
	}

	// Runtime chain.
	ctx := &loopCtx{isSwitch: true}
	f.loops = append(f.loops, ctx)
	defer func() { f.loops = f.loops[:len(f.loops)-1] }()

	var def *ast.CaseClause
	allTerm := true
	var donePatches []int
	for _, cc := range clauses {
		if cc.List == nil {
			def = cc
			continue
		}
		var armPatches []int
		var nextPatches []int
		for _, ce := range cc.List {
			cv, err := f.evalExpr(ce)
			if err != nil {
				return false, err
			}
			if cv.x == nil {
				return false, f.errAt(ce, "non-numeric case value")
			}
			cond := cv.x
			if tag != nil {
				cond = Bin(OpEq, f.isSigned(ce), tag.x, cv.x)
			}
			if c, ok := cond.ConstOf(); ok {
				if c != 0 {
					armPatches = append(armPatches, f.lo.emitJump())
				}
				continue
			}
			pc := f.lo.emit(Instr{Op: OpBranch, Cond: cond, A: -1})
			f.lo.out[pc].B = pc + 1
			armPatches = append(armPatches, pc)
		}
		nextPatches = append(nextPatches, f.lo.emitJump())
		f.lo.patch(armPatches, len(f.lo.out))
		term, err := f.lowerCaseBody(cc)
		if err != nil {
			return false, err
		}
		if !term {
			donePatches = append(donePatches, f.lo.emitJump())
			allTerm = false
		}
		f.lo.patch(nextPatches, len(f.lo.out))
	}
	if def != nil {
		term, err := f.lowerCaseBody(def)
		if err != nil {
			return false, err
		}
		if !term {
			allTerm = false
		}
	} else {
		allTerm = false
	}
	end := len(f.lo.out)
	f.lo.patch(donePatches, end)
	f.lo.patch(ctx.breaks, end)
	if len(ctx.breaks) > 0 {
		allTerm = false
	}
	return allTerm, nil
}

// staticSwitchArm picks the clause a constant switch selects, or reports
// that the switch needs runtime lowering. Case expressions are evaluated
// speculatively: a value that folds to a constant without emitting any
// instruction (package constants, but also bound option fields like
// l.opts.UseBravo, which the type checker does not see as constant) keeps
// the switch static; anything else rolls the trial back.
func (f *frame) staticSwitchArm(st *ast.SwitchStmt, tag *absVal, clauses []*ast.CaseClause) (*ast.CaseClause, bool, error) {
	var tagC uint64
	if tag != nil {
		c, ok := tag.x.ConstOf()
		if !ok {
			return nil, false, nil
		}
		tagC = c
	}
	var def *ast.CaseClause
	for _, cc := range clauses {
		if cc.List == nil {
			def = cc
			continue
		}
		for _, ce := range cc.List {
			cv, ok := f.trialConst(ce)
			if !ok {
				return nil, false, nil
			}
			if tag == nil {
				if cv != 0 {
					return cc, true, nil
				}
			} else if cv == tagC {
				return cc, true, nil
			}
		}
	}
	return def, true, nil
}

// trialConst evaluates e and reports its value if it folded to a constant
// without emitting instructions or consuming registers; otherwise every
// side effect of the trial is rolled back.
func (f *frame) trialConst(e ast.Expr) (uint64, bool) {
	lenBefore, regBefore := len(f.lo.out), f.lo.nextReg
	v, err := f.evalExpr(e)
	if err != nil || len(f.lo.out) != lenBefore || f.lo.nextReg != regBefore {
		f.lo.out = f.lo.out[:lenBefore]
		f.lo.nextReg = regBefore
		return 0, false
	}
	if v.x == nil {
		return 0, false
	}
	c, ok := v.x.ConstOf()
	return c, ok
}

func (f *frame) lowerCaseBody(cc *ast.CaseClause) (bool, error) {
	ctxDepth := len(f.loops)
	_ = ctxDepth
	for _, s := range cc.Body {
		term, err := f.lowerStmt(s)
		if err != nil {
			return false, err
		}
		if term {
			return true, nil
		}
	}
	return false, nil
}

func (f *frame) lowerReturn(st *ast.ReturnStmt) error {
	switch len(st.Results) {
	case 0:
	case 1:
		v, err := f.evalExpr(st.Results[0])
		if err != nil {
			return err
		}
		if v != nil && v.x != nil {
			if f.retReg < 0 {
				f.retReg = f.lo.newReg()
			}
			if c, ok := v.x.ConstOf(); ok {
				f.retConsts = append(f.retConsts, c)
			} else {
				f.retNonConst = true
			}
			f.lo.emit(Instr{Op: OpLocal, Dst: f.retReg, Val: v.x, Note: "return"})
		} else {
			if f.retVal != nil && f.retVal != v {
				return f.errAt(st, "multiple returns of distinct non-numeric values")
			}
			f.retVal = v
		}
	default:
		return f.errAt(st, "multi-value return in modeled code")
	}
	f.retPatches = append(f.retPatches, f.lo.emitJump())
	return nil
}

func (f *frame) lowerBranch(st *ast.BranchStmt) (bool, error) {
	if st.Label != nil {
		return false, f.errAt(st, "labeled %s in modeled code", st.Tok)
	}
	switch st.Tok {
	case token.BREAK:
		if len(f.loops) == 0 {
			return false, f.errAt(st, "break outside loop")
		}
		ctx := f.loops[len(f.loops)-1]
		ctx.breaks = append(ctx.breaks, f.lo.emitJump())
		return true, nil
	case token.CONTINUE:
		for i := len(f.loops) - 1; i >= 0; i-- {
			if !f.loops[i].isSwitch {
				f.loops[i].continues = append(f.loops[i].continues, f.lo.emitJump())
				return true, nil
			}
		}
		return false, f.errAt(st, "continue outside loop")
	default:
		return false, f.errAt(st, "unsupported branch %s", st.Tok)
	}
}

// ---- expressions ----

func (f *frame) isSigned(e ast.Expr) bool {
	tv, ok := f.info().Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 && b.Info()&types.IsUnsigned == 0
}

func constToUint64(v constant.Value) uint64 {
	switch v.Kind() {
	case constant.Bool:
		if constant.BoolVal(v) {
			return 1
		}
		return 0
	case constant.Int:
		if u, ok := constant.Uint64Val(v); ok {
			return u
		}
		if i, ok := constant.Int64Val(v); ok {
			return uint64(i)
		}
	}
	return 0
}

func (f *frame) evalExpr(e ast.Expr) (*absVal, error) {
	// Anything the type checker proved constant folds immediately:
	// option fields are not constants, but stateWriter, tableShards,
	// obs.Reader, env.AbortConflict, untyped literals, and -1 all are.
	if tv, ok := f.info().Types[e]; ok && tv.Value != nil {
		return numVal(Konst(constToUint64(tv.Value))), nil
	}
	switch ex := e.(type) {
	case *ast.ParenExpr:
		return f.evalExpr(ex.X)
	case *ast.StarExpr:
		return f.evalExpr(ex.X)
	case *ast.Ident:
		return f.evalIdent(ex)
	case *ast.SelectorExpr:
		return f.evalSelector(ex)
	case *ast.IndexExpr:
		return f.evalIndex(ex)
	case *ast.UnaryExpr:
		return f.evalUnary(ex)
	case *ast.BinaryExpr:
		return f.evalBinary(ex)
	case *ast.CallExpr:
		return f.lowerCall(ex)
	case *ast.CompositeLit:
		return f.evalComposite(ex)
	default:
		return nil, f.errAt(e, "unsupported expression %T in modeled code", e)
	}
}

func (f *frame) evalIdent(id *ast.Ident) (*absVal, error) {
	if id.Name == "nil" {
		return objVal(nilObject("nil", "nil")), nil
	}
	if id.Name == "true" {
		return numVal(Konst(1)), nil
	}
	if id.Name == "false" {
		return numVal(Konst(0)), nil
	}
	obj := f.info().Uses[id]
	if obj == nil {
		obj = f.info().Defs[id]
	}
	if obj == nil {
		return nil, f.errAt(id, "unresolved identifier %s", id.Name)
	}
	if v, ok := f.vars[obj]; ok {
		return v, nil
	}
	return nil, f.errAt(id, "unbound identifier %s (not a local, parameter, or constant)", id.Name)
}

func (f *frame) evalSelector(sel *ast.SelectorExpr) (*absVal, error) {
	// Package-qualified references (obs.Reader) are constants and were
	// handled by the constant fold; a remaining pkg.X is unsupported.
	if id, ok := sel.X.(*ast.Ident); ok {
		if _, isPkg := f.info().Uses[id].(*types.PkgName); isPkg {
			return nil, f.errAt(sel, "unsupported package-level reference %s.%s", id.Name, sel.Sel.Name)
		}
	}
	base, err := f.evalExpr(sel.X)
	if err != nil {
		return nil, err
	}
	name := sel.Sel.Name
	switch {
	case base.obj != nil:
		if base.obj.isNil {
			f.lo.emit(Instr{Op: OpTrap, Note: "field " + name + " of nil " + base.obj.name})
			return numVal(Konst(0)), nil
		}
		v, ok := base.obj.fields[name]
		if !ok {
			return nil, f.errAt(sel, "unbound field %s.%s; add it to the configuration binding", base.obj.name, name)
		}
		return v, nil
	case base.reg != nil:
		cell, err := regionField2(base.reg, name)
		if err != nil {
			return nil, f.errAt(sel, "%v", err)
		}
		// A leaf cell in value position is a read.
		switch cell.kind {
		case plainCell:
			r := f.lo.newReg()
			f.lo.emit(Instr{Op: OpLoad, Dst: r, Loc: cell.addr, Note: base.reg.name + "." + name})
			return numVal(RegRef(r)), nil
		default:
			return &absVal{cell: cell}, nil
		}
	}
	return nil, f.errAt(sel, "selector on %s", base.describe())
}

func regionField2(r *region, name string) (*cellRef, error) {
	if r.stride > 0 {
		return nil, fmt.Errorf("field %s on unindexed array region %s", name, r.name)
	}
	rf, ok := r.fields[name]
	if !ok {
		return nil, fmt.Errorf("region %s has no field %s in its layout", r.name, name)
	}
	return &cellRef{addr: Bin(OpAdd, false, r.base, Konst(uint64(rf.off))), kind: rf.kind}, nil
}

func (f *frame) evalIndex(ix *ast.IndexExpr) (*absVal, error) {
	base, err := f.evalExpr(ix.X)
	if err != nil {
		return nil, err
	}
	idx, err := f.evalExpr(ix.Index)
	if err != nil {
		return nil, err
	}
	if base.reg == nil || base.reg.stride <= 0 {
		return nil, f.errAt(ix, "index on %s", base.describe())
	}
	if idx.x == nil {
		return nil, f.errAt(ix, "non-numeric index")
	}
	elemBase := Bin(OpAdd, false, base.reg.base,
		Bin(OpMul, false, idx.x, Konst(uint64(base.reg.stride))))
	return regionVal(&region{
		name:   base.reg.name + "[i]",
		base:   elemBase,
		fields: base.reg.fields,
	}), nil
}

func (f *frame) evalUnary(u *ast.UnaryExpr) (*absVal, error) {
	switch u.Op {
	case token.AND:
		// Taking the address of a region element (or an object) keeps
		// the reference value; our references are already pointers.
		return f.evalExpr(u.X)
	case token.NOT:
		v, err := f.evalExpr(u.X)
		if err != nil {
			return nil, err
		}
		if v.x == nil {
			return nil, f.errAt(u, "! on non-numeric value")
		}
		return numVal(Not(v.x)), nil
	case token.SUB:
		v, err := f.evalExpr(u.X)
		if err != nil {
			return nil, err
		}
		if v.x == nil {
			return nil, f.errAt(u, "- on non-numeric value")
		}
		return numVal(Bin(OpSub, false, Konst(0), v.x)), nil
	case token.XOR:
		v, err := f.evalExpr(u.X)
		if err != nil {
			return nil, err
		}
		if v.x == nil {
			return nil, f.errAt(u, "^ on non-numeric value")
		}
		return numVal(Bin(OpXor, false, Konst(^uint64(0)), v.x)), nil
	default:
		return nil, f.errAt(u, "unsupported unary %s", u.Op)
	}
}

func (f *frame) evalBinary(b *ast.BinaryExpr) (*absVal, error) {
	if b.Op == token.LAND || b.Op == token.LOR {
		return f.evalShortCircuit(b)
	}
	l, err := f.evalExpr(b.X)
	if err != nil {
		return nil, err
	}
	r, err := f.evalExpr(b.Y)
	if err != nil {
		return nil, err
	}
	// Reference comparisons (x == nil, p != nil) fold at extraction
	// time: the binding decides which backends exist.
	if l.obj != nil || r.obj != nil {
		eq, err := refEqual(l, r)
		if err != nil {
			return nil, f.errAt(b, "%v", err)
		}
		switch b.Op {
		case token.EQL:
			return numVal(Konst(boolTo(eq))), nil
		case token.NEQ:
			return numVal(Konst(boolTo(!eq))), nil
		}
		return nil, f.errAt(b, "unsupported reference operation %s", b.Op)
	}
	if l.x == nil || r.x == nil {
		return nil, f.errAt(b, "binary %s on %s and %s", b.Op, l.describe(), r.describe())
	}
	op, ok := binOpOf(b.Op)
	if !ok {
		return nil, f.errAt(b, "unsupported operator %s", b.Op)
	}
	return numVal(Bin(op, f.isSigned(b.X), l.x, r.x)), nil
}

func boolTo(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func refEqual(l, r *absVal) (bool, error) {
	lNil := l.obj != nil && l.obj.isNil
	rNil := r.obj != nil && r.obj.isNil
	switch {
	case lNil && rNil:
		return true, nil
	case lNil || rNil:
		// nil against a bound object (or any non-nil value).
		other := l
		if lNil {
			other = r
		}
		if other.obj != nil && other.obj.isNil {
			return true, nil
		}
		return false, nil
	case l.obj != nil && r.obj != nil:
		return l.obj == r.obj, nil
	}
	return false, fmt.Errorf("reference comparison on %s and %s", l.describe(), r.describe())
}

func binOpOf(tok token.Token) (BinOp, bool) {
	switch tok {
	case token.ADD:
		return OpAdd, true
	case token.SUB:
		return OpSub, true
	case token.MUL:
		return OpMul, true
	case token.QUO:
		return OpDiv, true
	case token.REM:
		return OpMod, true
	case token.AND:
		return OpAnd, true
	case token.OR:
		return OpOr, true
	case token.XOR:
		return OpXor, true
	case token.SHL:
		return OpShl, true
	case token.SHR:
		return OpShr, true
	case token.EQL:
		return OpEq, true
	case token.NEQ:
		return OpNe, true
	case token.LSS:
		return OpLt, true
	case token.LEQ:
		return OpLe, true
	case token.GTR:
		return OpGt, true
	case token.GEQ:
		return OpGe, true
	}
	return 0, false
}

// evalShortCircuit lowers && and || with Go's evaluation order: the right
// operand's side effects (shared loads, CAS) happen only on the paths
// that reach it.
func (f *frame) evalShortCircuit(b *ast.BinaryExpr) (*absVal, error) {
	l, err := f.evalExpr(b.X)
	if err != nil {
		return nil, err
	}
	if l.x == nil {
		return nil, f.errAt(b, "%s on non-numeric value", b.Op)
	}
	if c, ok := l.x.ConstOf(); ok {
		// Left side decided: either fold the whole expression or the
		// result is just the right side.
		if (b.Op == token.LAND && c == 0) || (b.Op == token.LOR && c != 0) {
			return numVal(Konst(boolTo(b.Op == token.LOR))), nil
		}
		r, err := f.evalExpr(b.Y)
		if err != nil {
			return nil, err
		}
		if r.x == nil {
			return nil, f.errAt(b, "%s on non-numeric value", b.Op)
		}
		return numVal(r.x), nil
	}
	res := f.lo.newReg()
	var shortPatch int
	if b.Op == token.LAND {
		shortPatch = f.lo.emitCondBranch(l.x) // false -> short
	} else {
		shortPatch = f.lo.emitCondBranch(Not(l.x)) // true -> short
	}
	r, err := f.evalExpr(b.Y)
	if err != nil {
		return nil, err
	}
	if r.x == nil {
		return nil, f.errAt(b, "%s on non-numeric value", b.Op)
	}
	f.lo.emit(Instr{Op: OpLocal, Dst: res, Val: r.x})
	over := f.lo.emitJump()
	f.lo.patch([]int{shortPatch}, len(f.lo.out))
	f.lo.emit(Instr{Op: OpLocal, Dst: res, Val: Konst(boolTo(b.Op == token.LOR))})
	f.lo.patch([]int{over}, len(f.lo.out))
	return numVal(RegRef(res)), nil
}

func (f *frame) evalComposite(cl *ast.CompositeLit) (*absVal, error) {
	tv, ok := f.info().Types[cl]
	if !ok {
		return nil, f.errAt(cl, "untyped composite literal")
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return nil, f.errAt(cl, "unsupported composite literal type %s", tv.Type)
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil, f.errAt(cl, "non-struct composite literal")
	}
	o := newObject(named.Obj().Name(), named.Obj().Name()+"{}", nil)
	// Zero-initialize numeric fields so selectors on unset fields fold.
	for i := 0; i < st.NumFields(); i++ {
		fl := st.Field(i)
		if b, isBasic := fl.Type().Underlying().(*types.Basic); isBasic && b.Info()&(types.IsInteger|types.IsBoolean) != 0 {
			o.fields[fl.Name()] = numVal(Konst(0))
		}
	}
	for i, elt := range cl.Elts {
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			v, err := f.evalExpr(kv.Value)
			if err != nil {
				return nil, err
			}
			o.fields[kv.Key.(*ast.Ident).Name] = v
		} else {
			v, err := f.evalExpr(elt)
			if err != nil {
				return nil, err
			}
			if i >= st.NumFields() {
				return nil, f.errAt(cl, "too many positional fields")
			}
			o.fields[st.Field(i).Name()] = v
		}
	}
	return objVal(o), nil
}
