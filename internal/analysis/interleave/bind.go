package interleave

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"strings"

	"sprwl/internal/analysis/driver"
)

// This file defines the symbolic value domain the extractor lowers over,
// and the binding machinery that closes an annotated function against a
// concrete model configuration (addresses, options, thread identity).
//
// The extractor is partial by design: it understands exactly the Go subset
// the //sprwl:model-annotated protocol code uses, and fails loudly on
// anything else. A model that silently under-approximated the real code
// would be worse than no model.

// cellKind classifies a leaf memory cell bound through a region layout.
type cellKind uint8

const (
	plainCell  cellKind = iota // ordinary struct field (TSO-bufferable)
	atomicCell                 // sync/atomic field (SC)
	mutexCell                  // sync.Mutex
	condCell                   // sync.Cond sharing the mutex's cell
)

// object is a symbolic heap object: a named bundle of field values the
// extractor resolves selectors against. Objects model the Go-side structs
// of the protocol (Lock, handle, SpinMutex, Hub, Waiter, the indicator
// backends); their numeric fields are bound to constants (addresses,
// options, slots) or spill into registers, and their reference fields
// point at further objects.
type object struct {
	// kind is the object's concrete type name, used for intrinsic
	// dispatch (e.g. "env", "ring", "park.Waiter", "park.Table").
	kind string
	// name labels the object in error messages.
	name string
	// fields maps field names to their current values.
	fields map[string]*absVal
	// isNil marks a typed nil (an absent backend); any method call or
	// field access lowered against it becomes an OpTrap.
	isNil bool
	// ref locates the object's concrete type for resolving interface
	// method calls (park.Parker dispatching to park.Table) to source.
	ref funcRef
}

// region is a pointer into modeled shared memory with a field layout:
// how park.shard (and arrays of it) are bound. stride > 0 marks an array
// of elements; indexing yields the element region.
type region struct {
	name   string
	base   *Expr
	stride int
	fields map[string]regionField
}

type regionField struct {
	off  int
	kind cellKind
}

// cellRef is a resolved leaf cell: an address expression plus the kind
// that selects the lowering (plain load/store, atomic, mutex, cond).
type cellRef struct {
	addr *Expr
	kind cellKind
}

// absVal is one symbolic value: exactly one arm is set.
type absVal struct {
	x    *Expr    // numeric value
	obj  *object  // heap object
	reg  *region  // pointer into modeled memory
	cell *cellRef // leaf cell
	fn   string   // func value, dispatched as an intrinsic ("envload", "csbody")
}

func numVal(e *Expr) *absVal      { return &absVal{x: e} }
func objVal(o *object) *absVal    { return &absVal{obj: o} }
func regionVal(r *region) *absVal { return &absVal{reg: r} }

func (v *absVal) describe() string {
	switch {
	case v == nil:
		return "<missing>"
	case v.x != nil:
		return "num(" + v.x.String() + ")"
	case v.obj != nil:
		if v.obj.isNil {
			return "nil-object(" + v.obj.name + ")"
		}
		return "object(" + v.obj.name + ")"
	case v.reg != nil:
		return "region(" + v.reg.name + ")"
	case v.cell != nil:
		return "cell"
	case v.fn != "":
		return "func(" + v.fn + ")"
	}
	return "<zero>"
}

// newObject builds a bound object.
func newObject(kind, name string, fields map[string]*absVal) *object {
	if fields == nil {
		fields = map[string]*absVal{}
	}
	return &object{kind: kind, name: name, fields: fields}
}

// nilObject builds a typed nil of the given kind.
func nilObject(kind, name string) *object {
	return &object{kind: kind, name: name, isNil: true, fields: map[string]*absVal{}}
}

// shardLayout is the memory layout of one park.shard: the condvar shares
// the mutex cell (a sync.Cond is addressed through its locker here), gen
// and the waiter count get their own cells. Three cells per shard.
const shardCells = 3

func shardLayout() map[string]regionField {
	return map[string]regionField{
		"mu":      {off: 0, kind: mutexCell},
		"cond":    {off: 0, kind: condCell},
		"gen":     {off: 1, kind: plainCell},
		"waiters": {off: 2, kind: atomicCell},
	}
}

// extractOpts parameterizes one extraction: thread role and identity.
type extractOpts struct {
	// site is the root site label ("R0", "W").
	site string
	// role selects the critical-section body lowered for rwlock.Body
	// invocations: csReader emits load/load/assert over the data cells,
	// csWriter emits store/store.
	role csRole
	// writeVal is the value a writer body stores (unique per thread so a
	// torn section is observable).
	writeVal uint64
	// attemptCause is the abort cause env.Attempt returns; the default 1
	// (conflict) sends every hardware attempt to the fallback path,
	// which is the code the model checks. (The HTM commit path itself is
	// the hardware's serializability guarantee, not this protocol's.)
	attemptCause uint64
	// skipCalls drops the emission of matching inlined calls — the
	// mutation hook. An entry matches when the callee's qualified name
	// has the entry as a suffix (e.g. "Hub.Wake").
	skipCalls []string
	// plainStores clears the Atomic flag on stores whose site path
	// contains the entry — the fence-removal mutation hook.
	plainStores []string
	// dataCells are the two shared words critical-section bodies touch:
	// writers store writeVal to both, readers load both and assert
	// equality (the torn-section check).
	dataCells [2]uint64
}

// cause returns the abort cause env.Attempt yields; zero (env.Committed)
// means "unset" and defaults to conflict, sending every attempt to the
// fallback path the model actually checks.
func (o *extractOpts) cause() uint64 {
	if o.attemptCause == 0 {
		return 1 // env.AbortConflict
	}
	return o.attemptCause
}

type csRole uint8

const (
	csReader csRole = iota
	csWriter
)

// extractor loads the module once and compiles annotated functions
// against bindings.
type extractor struct {
	prog *driver.Program
	pkgs map[string]*driver.Package
}

// newExtractor builds an extractor rooted at the module containing dir
// (any directory under the module).
func newExtractor(dir string) (*extractor, error) {
	root, err := findModuleRoot(dir)
	if err != nil {
		return nil, err
	}
	prog, err := driver.NewProgram(root)
	if err != nil {
		return nil, err
	}
	return &extractor{prog: prog, pkgs: map[string]*driver.Package{}}, nil
}

func findModuleRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("interleave: no go.mod at or above %s", dir)
		}
		d = parent
	}
}

func (ex *extractor) pkg(path string) (*driver.Package, error) {
	if p, ok := ex.pkgs[path]; ok {
		return p, nil
	}
	p, err := ex.prog.Load(path)
	if err != nil {
		return nil, err
	}
	ex.pkgs[path] = p
	return p, nil
}

// funcRef names a function or method in the module.
type funcRef struct {
	pkgPath string
	// recv is the receiver type name ("handle", "Table"); empty for
	// package-level functions.
	recv string
	name string
}

func (r funcRef) String() string {
	if r.recv != "" {
		return r.pkgPath + "." + r.recv + "." + r.name
	}
	return r.pkgPath + "." + r.name
}

// lookup resolves a funcRef to its declaration.
func (ex *extractor) lookup(r funcRef) (*driver.Package, *ast.FuncDecl, error) {
	pkg, err := ex.pkg(r.pkgPath)
	if err != nil {
		return nil, nil, err
	}
	var fn *types.Func
	if r.recv == "" {
		obj := pkg.Types.Scope().Lookup(r.name)
		f, ok := obj.(*types.Func)
		if !ok {
			return nil, nil, fmt.Errorf("interleave: %s: no such function", r)
		}
		fn = f
	} else {
		obj := pkg.Types.Scope().Lookup(r.recv)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			return nil, nil, fmt.Errorf("interleave: %s: no such type %s", r, r.recv)
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			return nil, nil, fmt.Errorf("interleave: %s: %s is not a named type", r, r.recv)
		}
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == r.name {
				fn = m
				break
			}
		}
		if fn == nil {
			return nil, nil, fmt.Errorf("interleave: %s: no such method", r)
		}
	}
	src, ok := ex.prog.FuncSource(fn)
	if !ok {
		return nil, nil, fmt.Errorf("interleave: %s: no source (not a module function)", r)
	}
	return src.Pkg, src.Decl, nil
}

// extractRoot compiles an annotated protocol function into a thread
// program. The root (and every protocol method inlined under it) must
// carry the //sprwl:model directive; pure helpers inline freely.
func (ex *extractor) extractRoot(r funcRef, recv *absVal, args []*absVal, opts extractOpts) (*Prog, error) {
	pkg, decl, err := ex.lookup(r)
	if err != nil {
		return nil, err
	}
	if !driver.HasDirective(decl.Doc, "model") {
		return nil, fmt.Errorf("interleave: %s: missing //sprwl:model directive (the extraction surface is explicit)", r)
	}
	lo := &lowerer{ex: ex, opts: opts}
	if _, err := lo.inlineDecl(pkg, decl, recv, args, opts.site, nil); err != nil {
		return nil, err
	}
	lo.emit(Instr{Op: OpHalt, Site: opts.site, Pos: lo.posOf(pkg, decl.Name.Pos())})
	p := &Prog{Name: r.String(), Code: lo.out, NRegs: int(lo.nextReg)}
	return p, nil
}

// qualifiedName renders a callee for skipCalls matching: "Type.Method" or
// "pkgname.Func".
func qualifiedName(fn *types.Func) string {
	sig := fn.Type().(*types.Signature)
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

func matchesSuffix(patterns []string, name string) bool {
	for _, p := range patterns {
		if name == p || strings.HasSuffix(name, p) {
			return true
		}
	}
	return false
}

// skipCall decides whether the drop-call mutation deletes this callee.
// A plain pattern ("Hub.Wake") suffix-matches the qualified callee name
// anywhere in the thread; a pattern containing ">" ("finishWrite>Hub.Wake")
// additionally pins the inline-site chain, so one call site can be
// deleted while other callers of the same function keep their calls.
func (f *frame) skipCall(qname string) bool {
	full := f.site + ">" + qname
	for _, p := range f.lo.opts.skipCalls {
		if strings.Contains(p, ">") {
			if strings.Contains(full, p) {
				return true
			}
			continue
		}
		if qname == p || strings.HasSuffix(qname, p) {
			return true
		}
	}
	return false
}
