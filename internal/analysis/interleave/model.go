// Package interleave is a bounded model checker for the SpRWL
// synchronization protocol. It closes the gap between the repository's
// lint-style invariant analyzers (which check *shapes* of code) and the
// correctness claims the paper and DESIGN argue in prose: writer/reader
// mutual exclusion of the flag-then-check vs lock-then-drain handshake,
// absence of lost wakeups in the store-then-wake vs register-then-check
// parking protocol (DESIGN §10), and BRAVO's writer-side revocation
// visibility.
//
// The pipeline has three layers:
//
//   - An extraction layer (extract.go) compiles //sprwl:model-annotated
//     functions — the real internal/core reader/writer paths, the real
//     internal/park Park/Wake, the real internal/readers backends — into
//     the atomic-step programs defined in this file, using the same
//     driver/types stack the other analyzers run on. Every atomic
//     load/store/CAS/RMW on simulated shared memory becomes one step;
//     straight-line thread-local computation coalesces into the preceding
//     step.
//
//   - A small-step machine (machine.go) executes N such programs over one
//     shared store under either sequential consistency or a TSO
//     store-buffer semantics, with real blocking semantics for the
//     mutex/condvar pair inside park.Table.
//
//   - An explorer (explore.go) enumerates all interleavings with
//     sleep-set partial-order reduction and visited-state hashing,
//     checking safety (mutual exclusion, torn section bodies, assertion
//     failures) and bounded liveness (no stuck state other than the
//     accepted all-halted terminals — a parked waiter whose wake was lost
//     shows up as exactly such a stuck state), and reconstructs a
//     minimized counterexample trace on violation.
//
// Shipped protocol configurations live in configs.go, hand-built litmus
// shapes (SB/MP/LB) in litmus.go, and the seeded-bug mutation registry in
// mutate.go. cmd/sprwl-model is the command-line front end.
package interleave

import (
	"fmt"
	"sort"
	"strings"
)

// Reg indexes a thread-local register. Registers hold uint64 values;
// signed arithmetic is performed on the two's-complement interpretation.
type Reg int

// BinOp enumerates the pure binary operators expression trees may use.
type BinOp uint8

// Binary operators. Comparison operators yield 0 or 1.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpMod
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpEq
	OpNe
	OpLt
	OpLe
	OpGt
	OpGe
)

var binOpNames = [...]string{
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "&", OpOr: "|", OpXor: "^", OpShl: "<<", OpShr: ">>",
	OpEq: "==", OpNe: "!=", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
}

// ExprKind discriminates expression nodes.
type ExprKind uint8

// Expression node kinds.
const (
	EConst ExprKind = iota
	EReg
	EBin
	ENot
)

// Expr is a pure (side-effect-free) expression over constants and
// thread-local registers. Shared-memory reads never appear inside an Expr;
// extraction materializes them as explicit OpLoad steps first, so every
// interleaving point is a step boundary.
type Expr struct {
	Kind   ExprKind
	K      uint64 // EConst
	Reg    Reg    // EReg
	Op     BinOp  // EBin
	L, R   *Expr  // EBin; L only for ENot
	Signed bool   // EBin comparisons: compare as int64
}

// Konst builds a constant expression.
func Konst(v uint64) *Expr { return &Expr{Kind: EConst, K: v} }

// RegRef builds a register reference.
func RegRef(r Reg) *Expr { return &Expr{Kind: EReg, Reg: r} }

// Bin builds a binary expression, constant-folding when both operands are
// constants (which is what erases configuration-dependent branches from
// extracted programs).
func Bin(op BinOp, signed bool, l, r *Expr) *Expr {
	if l.Kind == EConst && r.Kind == EConst {
		return Konst(applyBin(op, signed, l.K, r.K))
	}
	return &Expr{Kind: EBin, Op: op, L: l, R: r, Signed: signed}
}

// Not builds a logical negation (0 -> 1, nonzero -> 0).
func Not(x *Expr) *Expr {
	if x.Kind == EConst {
		if x.K == 0 {
			return Konst(1)
		}
		return Konst(0)
	}
	return &Expr{Kind: ENot, L: x}
}

func applyBin(op BinOp, signed bool, a, b uint64) uint64 {
	bool2u := func(v bool) uint64 {
		if v {
			return 1
		}
		return 0
	}
	switch op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return 0
		}
		return a / b
	case OpMod:
		if b == 0 {
			return 0
		}
		return a % b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpEq:
		return bool2u(a == b)
	case OpNe:
		return bool2u(a != b)
	case OpLt:
		if signed {
			return bool2u(int64(a) < int64(b))
		}
		return bool2u(a < b)
	case OpLe:
		if signed {
			return bool2u(int64(a) <= int64(b))
		}
		return bool2u(a <= b)
	case OpGt:
		if signed {
			return bool2u(int64(a) > int64(b))
		}
		return bool2u(a > b)
	case OpGe:
		if signed {
			return bool2u(int64(a) >= int64(b))
		}
		return bool2u(a >= b)
	}
	panic("interleave: unknown binop")
}

// Eval evaluates e over a thread's register file.
func (e *Expr) Eval(regs []uint64) uint64 {
	switch e.Kind {
	case EConst:
		return e.K
	case EReg:
		return regs[e.Reg]
	case EBin:
		return applyBin(e.Op, e.Signed, e.L.Eval(regs), e.R.Eval(regs))
	case ENot:
		if e.L.Eval(regs) == 0 {
			return 1
		}
		return 0
	}
	panic("interleave: unknown expr kind")
}

// ConstOf reports e's value when it is a constant.
func (e *Expr) ConstOf() (uint64, bool) {
	if e != nil && e.Kind == EConst {
		return e.K, true
	}
	return 0, false
}

// String renders e for traces and goldens.
func (e *Expr) String() string {
	switch e.Kind {
	case EConst:
		return fmt.Sprintf("%d", e.K)
	case EReg:
		return fmt.Sprintf("r%d", e.Reg)
	case EBin:
		return fmt.Sprintf("(%s %s %s)", e.L, binOpNames[e.Op], e.R)
	case ENot:
		return fmt.Sprintf("!%s", e.L)
	}
	return "?"
}

// OpKind enumerates instruction kinds. Kinds below OpLoad are invisible:
// they are thread-local and coalesce into the enclosing visible step.
// Everything from OpLoad on is one atomic step the explorer interleaves.
type OpKind uint8

// Instruction kinds.
const (
	// OpLocal assigns Dst := Val. Invisible.
	OpLocal OpKind = iota
	// OpJump transfers control to A. Invisible.
	OpJump
	// OpBranch transfers control to A when Cond is nonzero, else to B.
	// Invisible (conditions only read registers).
	OpBranch
	// OpAssert checks that Cond is nonzero; a zero is a safety violation
	// (used for the torn-read check inside reader section bodies).
	// Invisible: it is checked as part of the step that computed its
	// operands.
	OpAssert
	// OpTrap marks statically-lowered code the configuration claims is
	// unreachable (an unbound backend arm of a tracking-mode switch).
	// Executing it is a model error, so a wrong claim cannot silently
	// underapproximate the protocol. Invisible.
	OpTrap

	// OpLoad reads shared memory: Dst := mem[Loc]. Atomic==true marks a
	// sequentially-consistent access (everything routed through env.Env
	// or sync/atomic); Atomic==false is a plain access (park.shard
	// fields guarded by the shard mutex) that TSO may reorder.
	OpLoad
	// OpStore writes shared memory: mem[Loc] := Val. Under TSO a plain
	// store enters the thread's store buffer; an Atomic store drains the
	// buffer and hits memory (an SC atomic subsumes the paper's fences).
	OpStore
	// OpRMWAdd is an atomic fetch-add: Dst := mem[Loc]+Val, stored back.
	// Always fenced (full drain under TSO), like x86 LOCK ADD.
	OpRMWAdd
	// OpCAS is an atomic compare-and-swap: Dst := 1 and mem[Loc] := Val
	// when mem[Loc] == Old, else Dst := 0. Always fenced.
	OpCAS

	// OpMutexLock acquires the sync.Mutex modeled at cell Loc; the
	// thread blocks while the cell is nonzero. Fenced.
	OpMutexLock
	// OpMutexUnlock releases the mutex at cell Loc.
	OpMutexUnlock
	// OpCondWait models sync.Cond.Wait on the condvar identified by cell
	// Loc (which is also its associated mutex cell): atomically release
	// the mutex and sleep until a broadcast, then reacquire.
	OpCondWait
	// OpCondBroadcast wakes every thread sleeping on cell Loc.
	OpCondBroadcast

	// OpChoice is a nondeterministic branch to A or B. It abstracts
	// scheduling heuristics that do not touch shared state — the
	// spin-vs-park decision inside park.Waiter.Pause — so the checker
	// covers every possible outcome of the heuristic.
	OpChoice

	// OpCsEnter/OpCsExit bracket a critical-section body; Val is the
	// role (0 = reader, 1 = writer). The machine maintains live
	// reader/writer counts from these markers and flags any state with a
	// writer and another active section as a mutual-exclusion violation.
	OpCsEnter
	OpCsExit

	// OpHalt terminates the thread. A state where every thread halted is
	// an accepted terminal.
	OpHalt
)

var opNames = [...]string{
	OpLocal: "local", OpJump: "jump", OpBranch: "branch", OpAssert: "assert",
	OpTrap: "trap", OpLoad: "load", OpStore: "store", OpRMWAdd: "rmw-add",
	OpCAS: "cas", OpMutexLock: "mutex-lock", OpMutexUnlock: "mutex-unlock",
	OpCondWait: "cond-wait", OpCondBroadcast: "cond-broadcast",
	OpChoice: "choice", OpCsEnter: "cs-enter", OpCsExit: "cs-exit", OpHalt: "halt",
}

// Name returns the step kind's display name.
func (k OpKind) Name() string { return opNames[k] }

// Visible reports whether the kind is an interleaving point (one atomic
// step) rather than coalesced thread-local work.
func (k OpKind) Visible() bool { return k >= OpLoad }

// Instr is one instruction of a thread program.
type Instr struct {
	Op   OpKind
	Dst  Reg
	Loc  *Expr // shared cell address (visible kinds)
	Val  *Expr // store value / RMW delta / CAS new / cs role
	Old  *Expr // CAS expected
	Cond *Expr // branch / assert condition
	A, B int   // jump / branch / choice targets

	// Atomic marks loads and stores as sequentially consistent. RMW,
	// CAS, mutex and condvar steps are implicitly fenced regardless.
	Atomic bool

	// Site is the inline path that produced the instruction, e.g.
	// "Write>writeFallback>lockGL>Lock"; mutations select steps by it.
	Site string
	// Pos is the module-relative source position, e.g.
	// "internal/park/park.go:171".
	Pos string
	// Note is an optional human-readable label for traces.
	Note string
}

// Prog is one thread's compiled program.
type Prog struct {
	Name  string
	Code  []Instr
	NRegs int
}

// VisibleSteps counts the interleaving points in the program — the number
// the extractor golden tests pin so refactors cannot silently shrink the
// modeled surface.
func (p *Prog) VisibleSteps() int {
	n := 0
	for i := range p.Code {
		if p.Code[i].Op.Visible() {
			n++
		}
	}
	return n
}

// Footprint returns the sorted set of named shared cells the program
// addresses statically (constant Loc operands), plus a "dyn:<site>" entry
// per step whose cell is computed at run time. Golden tests pin it
// alongside VisibleSteps.
func (p *Prog) Footprint(names func(uint64) string) []string {
	set := map[string]bool{}
	for i := range p.Code {
		in := &p.Code[i]
		if !in.Op.Visible() || in.Loc == nil {
			continue
		}
		if c, ok := in.Loc.ConstOf(); ok {
			set[names(c)] = true
		} else {
			set["dyn:"+in.Site] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// String renders one instruction for traces and goldens.
func (in *Instr) String() string {
	var b strings.Builder
	b.WriteString(in.Op.Name())
	if in.Loc != nil {
		fmt.Fprintf(&b, " [%s]", in.Loc)
	}
	switch in.Op {
	case OpLocal:
		fmt.Fprintf(&b, " r%d=%s", in.Dst, in.Val)
	case OpLoad:
		fmt.Fprintf(&b, " ->r%d", in.Dst)
	case OpStore:
		fmt.Fprintf(&b, " =%s", in.Val)
	case OpRMWAdd:
		fmt.Fprintf(&b, " +=%s ->r%d", in.Val, in.Dst)
	case OpCAS:
		fmt.Fprintf(&b, " %s->%s ->r%d", in.Old, in.Val, in.Dst)
	case OpBranch:
		fmt.Fprintf(&b, " %s ?%d:%d", in.Cond, in.A, in.B)
	case OpJump:
		fmt.Fprintf(&b, " %d", in.A)
	case OpChoice:
		fmt.Fprintf(&b, " %d|%d", in.A, in.B)
	case OpAssert:
		fmt.Fprintf(&b, " %s", in.Cond)
	case OpCsEnter, OpCsExit:
		fmt.Fprintf(&b, " role=%s", in.Val)
	}
	if in.Note != "" {
		fmt.Fprintf(&b, " ; %s", in.Note)
	}
	return b.String()
}

// FinalKind discriminates accepted-terminal predicates.
type FinalKind uint8

// Accepted-terminal predicate kinds.
const (
	// FinalZero requires every listed cell to read zero in an accepted
	// terminal (released locks, retracted reader flags, empty waiter
	// counts).
	FinalZero FinalKind = iota
	// FinalAllEqual requires every listed cell to hold one common value
	// (the two halves of the section body were not torn apart).
	FinalAllEqual
	// FinalNever forbids the terminal where each listed cell holds its
	// paired Values entry — how litmus shapes express a forbidden
	// outcome (SB's r0 == 0 && r1 == 0 under SC).
	FinalNever
)

// Final is one predicate every accepted (all-threads-halted) terminal
// state must satisfy.
type Final struct {
	Kind  FinalKind
	Cells []uint64
	// Values pairs with Cells for FinalNever.
	Values []uint64
	Desc   string
}

// ThreadSpec names one thread of a model.
type ThreadSpec struct {
	Name string
	Prog *Prog
}

// Model is a closed system: N thread programs over one shared store.
type Model struct {
	Name    string
	Threads []ThreadSpec
	// MemSize is the shared store size in cells.
	MemSize int
	// Init seeds non-zero initial cell values.
	Init map[uint64]uint64
	// CellNames labels cells for trace rendering; unlisted cells render
	// numerically. Populated by the config builders.
	CellNames map[uint64]string
	// Finals are the accepted-terminal predicates.
	Finals []Final
	// MaxBuf bounds each thread's TSO store buffer (0 = DefaultMaxBuf).
	// A full buffer forces a drain step first, keeping the state space
	// finite.
	MaxBuf int
}

// DefaultMaxBuf is the default TSO store-buffer bound.
const DefaultMaxBuf = 4

// CellName renders a cell address.
func (m *Model) CellName(c uint64) string {
	if n, ok := m.CellNames[c]; ok {
		return n
	}
	return fmt.Sprintf("cell%d", c)
}
