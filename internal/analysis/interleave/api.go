package interleave

// Exported facade for cmd/sprwl-model: one type-checked module load,
// reused across every config and mutation build.

// Extractor wraps the loaded, type-checked module.
type Extractor struct{ ex *extractor }

// NewExtractor loads the module containing dir for extraction.
func NewExtractor(dir string) (*Extractor, error) {
	ex, err := newExtractor(dir)
	if err != nil {
		return nil, err
	}
	return &Extractor{ex: ex}, nil
}

// Build extracts and assembles the named shipped configuration,
// unmutated.
func (e *Extractor) Build(name string) (*Model, error) {
	return BuildConfig(e.ex, name, nil)
}

// Mutate runs the named seeded-bug self-test under both semantics.
func (e *Extractor) Mutate(mut Mutation, opts ExploreOpts) []MutationResult {
	return RunMutation(e.ex, mut, opts)
}
