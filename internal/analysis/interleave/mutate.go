package interleave

import (
	"fmt"
	"sort"
)

// Mutation mode: each entry seeds one protocol bug known from the
// paper's correctness argument, and the registry records the verdict
// the checker must reach under each semantics. A mutation the checker
// misses — or a "clean" semantics it falsely flags — fails the
// self-test. This is the falsifiability check for the whole pipeline:
// extraction, semantics, reduction, and checkers together must be
// strong enough to see the canonical bugs.

// Mutation is one seeded protocol bug.
type Mutation struct {
	Name   string
	Config string
	Desc   string
	// Expect maps each semantics to the violation kind the checker must
	// report; a semantics absent from the map must verify clean.
	Expect map[Sem]ViolationKind

	tm threadMut
}

var mutations = []Mutation{
	{
		Name:   "drop-wake",
		Config: "rsync-2r1w",
		Desc:   "delete the writer's retire-time Wake (finishWrite): a reader parked on the writer's state word sleeps forever (DESIGN §10)",
		Expect: map[Sem]ViolationKind{SemSC: ViolLostWake, SemTSO: ViolLostWake},
		tm:     threadMut{applyTo: "W", skipCalls: []string{"finishWrite>Hub.Wake"}},
	},
	{
		Name:   "handshake-drop-wake",
		Config: "park-handshake",
		Desc:   "delete the waker's Table.Wake after the phase store: the parked waiter is never broadcast",
		Expect: map[Sem]ViolationKind{SemSC: ViolLostWake, SemTSO: ViolLostWake},
		tm:     threadMut{applyTo: "waker", skipCalls: []string{"Table.Wake"}},
	},
	{
		Name:   "reorder-flag-check",
		Config: "mutex-2r1w",
		Desc:   "swap the reader's flag store past the fallback-lock check: check-then-flag races the writer's lock-then-drain",
		Expect: map[Sem]ViolationKind{SemSC: ViolMutex, SemTSO: ViolMutex},
		tm:     threadMut{applyTo: "R", swapArriveCheck: true},
	},
	{
		Name:   "unfence-arrive",
		Config: "mutex-2r1w",
		Desc:   "buffer the reader's flag store (drop the store-load fence): under TSO the lock check outruns the flag publication; SC stays clean",
		Expect: map[Sem]ViolationKind{SemTSO: ViolMutex},
		tm:     threadMut{applyTo: "R", plainStores: []string{"Arrive"}},
	},
}

// Mutations lists the registry sorted by name.
func Mutations() []Mutation {
	out := append([]Mutation(nil), mutations...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindMutation looks one up by name.
func FindMutation(name string) (Mutation, bool) {
	for _, m := range mutations {
		if m.Name == name {
			return m, true
		}
	}
	return Mutation{}, false
}

// MutationResult is the self-test verdict for one mutation under one
// semantics.
type MutationResult struct {
	Mutation string     `json:"mutation"`
	Config   string     `json:"config"`
	Sem      string     `json:"sem"`
	Expected string     `json:"expected"` // "" means expected clean
	Caught   bool       `json:"caught"`
	Run      *RunResult `json:"run,omitempty"`
	Err      string     `json:"error,omitempty"`
}

// RunMutation builds the mutated model and checks it under both
// semantics against the expectation table.
func RunMutation(ex *extractor, mut Mutation, opts ExploreOpts) []MutationResult {
	var out []MutationResult
	for _, sem := range []Sem{SemSC, SemTSO} {
		mr := MutationResult{Mutation: mut.Name, Config: mut.Config, Sem: sem.String()}
		if want, ok := mut.Expect[sem]; ok {
			mr.Expected = string(want)
		}
		m, err := BuildConfig(ex, mut.Config, &mut.tm)
		if err != nil {
			mr.Err = err.Error()
			out = append(out, mr)
			continue
		}
		res := RunModel(m, sem, opts)
		mr.Run = &res
		if mr.Expected == "" {
			mr.Caught = res.Violation == nil
			if res.Violation != nil {
				mr.Err = fmt.Sprintf("expected clean, got %s: %s", res.Violation.Kind, res.Violation.Msg)
			}
		} else {
			switch {
			case res.Violation == nil:
				mr.Err = fmt.Sprintf("expected %s, model verified clean", mr.Expected)
			case string(res.Violation.Kind) != mr.Expected:
				mr.Err = fmt.Sprintf("expected %s, got %s: %s", mr.Expected, res.Violation.Kind, res.Violation.Msg)
			default:
				mr.Caught = true
			}
		}
		out = append(out, mr)
	}
	return out
}
