package interleave

import "testing"

// TestLitmusVerdicts runs every shipped shape against the golden verdict
// table: SB separates SC from TSO; MP and LB are forbidden under both.
func TestLitmusVerdicts(t *testing.T) {
	models := LitmusModels()
	for _, want := range LitmusExpectations {
		m, ok := models[want.Name]
		if !ok {
			t.Fatalf("no litmus model %q", want.Name)
		}
		res := RunModel(m, want.Sem, ExploreOpts{})
		if !res.Complete {
			t.Errorf("%s/%s: exploration incomplete", want.Name, want.Sem)
			continue
		}
		if want.Forbidden && res.Violation != nil {
			t.Errorf("%s/%s: forbidden outcome reached:\n%s", want.Name, want.Sem, RenderTrace(res.Violation))
		}
		if !want.Forbidden && res.Violation == nil {
			t.Errorf("%s/%s: outcome should be observable but the checker verified clean", want.Name, want.Sem)
		}
	}
}

// TestLitmusSBTraceMinimized: the one observable outcome (SB under TSO)
// must come with a minimized schedule that still renders.
func TestLitmusSBTraceMinimized(t *testing.T) {
	res := RunModel(LitmusModels()["sb"], SemTSO, ExploreOpts{})
	if res.Violation == nil {
		t.Fatal("SB under TSO verified clean")
	}
	if res.Violation.Kind != ViolFinal {
		t.Fatalf("SB violation kind = %s, want %s", res.Violation.Kind, ViolFinal)
	}
	if !res.Violation.Minimized {
		t.Error("SB counterexample was not minimized")
	}
	if len(res.Violation.Trace) == 0 {
		t.Error("SB counterexample has an empty trace")
	}
	if RenderTrace(res.Violation) == "" {
		t.Error("empty rendered trace")
	}
}
