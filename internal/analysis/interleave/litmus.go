package interleave

// Litmus shapes calibrating the two memory semantics against their
// textbook outcomes. Each is a two-thread program over cells x, y with
// per-thread result cells, and a FinalNever predicate naming the
// forbidden outcome. The expected-verdict table is the golden the
// litmus suite pins:
//
//   SB (store buffering):   x=1; r0=y || y=1; r1=x;  r0=r1=0
//     forbidden under SC, observable under TSO — the one shape that
//     separates the two semantics, and exactly the reordering the
//     protocol's flag-then-check fence exists to prevent.
//   MP (message passing):   data=1; flag=1 || r0=flag; r1=data;  r0=1, r1=0
//     forbidden under both: TSO store buffers drain in FIFO order, so
//     plain stores alone keep the publication ordered.
//   LB (load buffering):    r0=y; x=1 || r1=x; y=1;  r0=r1=1
//     forbidden under both: neither semantics lets a load see a store
//     that program order places after it.

// Litmus cells.
const (
	litX    = 0
	litY    = 1
	litRes0 = 2
	litRes1 = 3
)

// LitmusVerdict records the expected outcome of one shape under one
// semantics.
type LitmusVerdict struct {
	Name      string
	Sem       Sem
	Forbidden bool // true: the forbidden outcome must NOT be reachable
}

// LitmusExpectations is the golden verdict table: Forbidden=false means
// the checker must find the outcome (a FinalNever violation).
var LitmusExpectations = []LitmusVerdict{
	{"sb", SemSC, true},
	{"sb", SemTSO, false},
	{"mp", SemSC, true},
	{"mp", SemTSO, true},
	{"lb", SemSC, true},
	{"lb", SemTSO, true},
}

func litmusCellNames() map[uint64]string {
	return map[uint64]string{litX: "x", litY: "y", litRes0: "r0", litRes1: "r1"}
}

// litmusThread builds one side of a shape: an optional store, an
// optional load into a register published to a result cell. All
// accesses are plain (unfenced) — the point is the raw semantics.
func litmusModel(name string, t0, t1 []Instr, forbidden []uint64, desc string) *Model {
	finish := func(code []Instr, tname string) *Prog {
		code = append(code, Instr{Op: OpHalt, Site: tname})
		n := 0
		for _, in := range code {
			if int(in.Dst) >= n {
				n = int(in.Dst) + 1
			}
		}
		return &Prog{Name: tname, Code: code, NRegs: n}
	}
	return &Model{
		Name:      name,
		Threads:   []ThreadSpec{{"T0", finish(t0, "T0")}, {"T1", finish(t1, "T1")}},
		MemSize:   4,
		CellNames: litmusCellNames(),
		Finals: []Final{{
			Kind:   FinalNever,
			Cells:  []uint64{litRes0, litRes1},
			Values: forbidden,
			Desc:   desc,
		}},
	}
}

// LitmusModels returns the shipped shapes by name.
func LitmusModels() map[string]*Model {
	store := func(loc, val uint64) Instr {
		return Instr{Op: OpStore, Loc: Konst(loc), Val: Konst(val)}
	}
	load := func(loc uint64, dst Reg) Instr {
		return Instr{Op: OpLoad, Loc: Konst(loc), Dst: dst}
	}
	publish := func(loc uint64, src Reg) Instr {
		return Instr{Op: OpStore, Loc: Konst(loc), Val: RegRef(src)}
	}
	return map[string]*Model{
		"sb": litmusModel("sb",
			[]Instr{store(litX, 1), load(litY, 0), publish(litRes0, 0)},
			[]Instr{store(litY, 1), load(litX, 0), publish(litRes1, 0)},
			[]uint64{0, 0}, "store buffering: both loads miss both stores"),
		"mp": litmusModel("mp",
			[]Instr{store(litX, 1), store(litY, 1)},
			[]Instr{load(litY, 0), publish(litRes0, 0), load(litX, 1), publish(litRes1, 1)},
			[]uint64{1, 0}, "message passing: flag seen, data missed"),
		"lb": litmusModel("lb",
			[]Instr{load(litY, 0), store(litX, 1), publish(litRes0, 0)},
			[]Instr{load(litX, 0), store(litY, 1), publish(litRes1, 0)},
			[]uint64{1, 1}, "load buffering: each load sees the other's later store"),
	}
}
