package interleave

import (
	"fmt"
	"sort"
)

// Sem selects the memory semantics the machine executes under.
type Sem uint8

// Memory semantics.
const (
	// SemSC is sequential consistency: every store is immediately
	// globally visible.
	SemSC Sem = iota
	// SemTSO adds per-thread FIFO store buffers: plain stores are
	// buffered and drain nondeterministically; atomic stores, RMWs, CAS,
	// and mutex/condvar operations drain the issuing thread's buffer
	// first (x86-TSO: fenced stores, plain loads).
	SemTSO
)

// String renders the semantics name as used by the -sem flag.
func (s Sem) String() string {
	if s == SemTSO {
		return "tso"
	}
	return "sc"
}

// ParseSem parses a -sem flag value.
func ParseSem(s string) (Sem, error) {
	switch s {
	case "sc":
		return SemSC, nil
	case "tso":
		return SemTSO, nil
	}
	return SemSC, fmt.Errorf("unknown memory semantics %q (want sc or tso)", s)
}

// tstatus is a thread's scheduling state.
type tstatus uint8

const (
	tsRun tstatus = iota
	// tsSleep: inside OpCondWait, mutex released, waiting for broadcast.
	tsSleep
	// tsReacq: broadcast received, waiting to reacquire the mutex.
	tsReacq
	tsHalted
)

type bufEntry struct {
	addr, val uint64
}

type threadState struct {
	pc     int
	status tstatus
	wait   uint64 // condvar/mutex cell while tsSleep/tsReacq
	sect   int8   // -1 outside, 0 reader section, 1 writer section
	regs   []uint64
	buf    []bufEntry // TSO store buffer, oldest first
}

// machState is one explored state. Threads are always normalized: pc
// parked on a visible instruction (or the thread halted/blocked).
type machState struct {
	mem []uint64
	thr []threadState
}

func (s *machState) clone() *machState {
	n := &machState{
		mem: append([]uint64(nil), s.mem...),
		thr: make([]threadState, len(s.thr)),
	}
	for i := range s.thr {
		t := s.thr[i]
		t.regs = append([]uint64(nil), t.regs...)
		t.buf = append([]bufEntry(nil), t.buf...)
		n.thr[i] = t
	}
	return n
}

// hash returns a 128-bit FNV-1a fingerprint of the state.
func (s *machState) hash() [2]uint64 {
	const (
		off1   = 14695981039346656037
		off2   = 0x9e3779b97f4a7c15
		prime1 = 1099511628211
		prime2 = 0x100000001b3 ^ 0x5bd1e995
	)
	h1, h2 := uint64(off1), uint64(off2)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			b := v & 0xff
			v >>= 8
			h1 = (h1 ^ b) * prime1
			h2 = (h2 ^ b) * prime2
		}
	}
	for _, v := range s.mem {
		mix(v)
	}
	for i := range s.thr {
		t := &s.thr[i]
		mix(uint64(t.pc)<<16 | uint64(t.status)<<8 | uint64(uint8(t.sect)))
		mix(t.wait)
		for _, r := range t.regs {
			mix(r)
		}
		mix(uint64(len(t.buf)))
		for _, e := range t.buf {
			mix(e.addr)
			mix(e.val)
		}
	}
	return [2]uint64{h1, h2}
}

// tkind discriminates transition variants.
type tkind uint8

const (
	// tStep executes the visible instruction at the thread's pc.
	tStep tkind = iota
	// tChoiceA / tChoiceB take the two arms of an OpChoice.
	tChoiceA
	tChoiceB
	// tFlush drains the oldest entry of the thread's TSO store buffer.
	tFlush
	// tReacq reacquires the condvar mutex after a broadcast.
	tReacq
)

// transition identifies one enabled step of one thread.
type transition struct {
	thread int
	kind   tkind
}

// id packs a transition for sleep-set bookkeeping.
func (t transition) id() uint32 { return uint32(t.thread)<<3 | uint32(t.kind) }

// access is one shared-memory effect of a transition, for the dependence
// relation of the partial-order reduction.
type access struct {
	addr  uint64
	write bool
}

// csCell is the pseudo-cell all OpCsEnter/OpCsExit steps write: section
// bracketing is globally ordered so the mutual-exclusion check is exact.
const csCell = ^uint64(0)

// ViolationKind classifies checker findings.
type ViolationKind string

// Violation kinds.
const (
	ViolAssert   ViolationKind = "assert" // torn section / explicit assert
	ViolTrap     ViolationKind = "trap"   // statically-unreachable code executed
	ViolMutex    ViolationKind = "mutual-exclusion"
	ViolLostWake ViolationKind = "lost-wakeup" // stuck with a sleeping thread
	ViolDeadlock ViolationKind = "deadlock"    // stuck with no sleeping thread
	ViolFinal    ViolationKind = "final-state" // accepted-terminal predicate failed
	ViolModel    ViolationKind = "model-error" // extraction/machine invariant broke
)

// stepViol is a violation raised while applying one transition.
type stepViol struct {
	kind ViolationKind
	msg  string
}

// machine executes a Model under one semantics.
type machine struct {
	m      *Model
	sem    Sem
	maxBuf int
}

func newMachine(m *Model, sem Sem) *machine {
	mb := m.MaxBuf
	if mb <= 0 {
		mb = DefaultMaxBuf
	}
	return &machine{m: m, sem: sem, maxBuf: mb}
}

func (mc *machine) initState() (*machState, *stepViol) {
	s := &machState{
		mem: make([]uint64, mc.m.MemSize),
		thr: make([]threadState, len(mc.m.Threads)),
	}
	for a, v := range mc.m.Init {
		s.mem[a] = v
	}
	for i := range mc.m.Threads {
		s.thr[i] = threadState{sect: -1, regs: make([]uint64, mc.m.Threads[i].Prog.NRegs)}
		if v := mc.normalize(s, i); v != nil {
			return s, v
		}
	}
	return s, nil
}

// normalize runs thread i's invisible instructions until its pc parks on
// a visible instruction. Invisible loops are a modeling error: a loop
// with no shared access can never terminate differently in another
// interleaving.
func (mc *machine) normalize(s *machState, i int) *stepViol {
	t := &s.thr[i]
	code := mc.m.Threads[i].Prog.Code
	for steps := 0; ; steps++ {
		if steps > 100000 {
			return &stepViol{ViolModel, fmt.Sprintf("thread %s: invisible instruction loop at pc %d", mc.m.Threads[i].Name, t.pc)}
		}
		if t.pc >= len(code) {
			return &stepViol{ViolModel, fmt.Sprintf("thread %s: pc %d past end (missing halt)", mc.m.Threads[i].Name, t.pc)}
		}
		in := &code[t.pc]
		if in.Op.Visible() {
			return nil
		}
		switch in.Op {
		case OpLocal:
			t.regs[in.Dst] = in.Val.Eval(t.regs)
			t.pc++
		case OpJump:
			t.pc = in.A
		case OpBranch:
			if in.Cond.Eval(t.regs) != 0 {
				t.pc = in.A
			} else {
				t.pc = in.B
			}
		case OpAssert:
			if in.Cond.Eval(t.regs) == 0 {
				note := in.Note
				if note == "" {
					note = "assertion failed"
				}
				return &stepViol{ViolAssert, fmt.Sprintf("%s (%s, %s)", note, in.Site, in.Pos)}
			}
			t.pc++
		case OpTrap:
			return &stepViol{ViolTrap, fmt.Sprintf("unreachable-by-configuration code executed: %s (%s, %s)", in.Note, in.Site, in.Pos)}
		default:
			return &stepViol{ViolModel, fmt.Sprintf("invisible op %s unhandled", in.Op.Name())}
		}
	}
}

// bufLoad reads addr as thread t sees it: own store buffer first (newest
// match), then memory.
func (mc *machine) bufLoad(s *machState, i int, addr uint64) uint64 {
	if mc.sem == SemTSO {
		buf := s.thr[i].buf
		for j := len(buf) - 1; j >= 0; j-- {
			if buf[j].addr == addr {
				return buf[j].val
			}
		}
	}
	if addr < uint64(len(s.mem)) {
		return s.mem[addr]
	}
	return 0
}

func (mc *machine) flushAll(s *machState, i int) {
	for _, e := range s.thr[i].buf {
		if e.addr < uint64(len(s.mem)) {
			s.mem[e.addr] = e.val
		}
	}
	s.thr[i].buf = s.thr[i].buf[:0]
}

// enabled returns every transition schedulable from s.
func (mc *machine) enabled(s *machState) []transition {
	var out []transition
	for i := range s.thr {
		t := &s.thr[i]
		switch t.status {
		case tsHalted:
		case tsSleep:
			// Only a broadcast can move it.
		case tsReacq:
			if t.wait < uint64(len(s.mem)) && s.mem[t.wait] == 0 {
				out = append(out, transition{i, tReacq})
			}
		case tsRun:
			in := &mc.m.Threads[i].Prog.Code[t.pc]
			switch in.Op {
			case OpChoice:
				out = append(out, transition{i, tChoiceA}, transition{i, tChoiceB})
			case OpMutexLock:
				if addr := in.Loc.Eval(t.regs); addr < uint64(len(s.mem)) && s.mem[addr] == 0 {
					out = append(out, transition{i, tStep})
				}
			default:
				out = append(out, transition{i, tStep})
			}
		}
		if mc.sem == SemTSO && len(t.buf) > 0 && t.status != tsHalted {
			out = append(out, transition{i, tFlush})
		}
	}
	return out
}

// footprint computes the shared cells tr touches from s, without applying
// it. Address expressions are side-effect-free, so this is exact.
func (mc *machine) footprint(s *machState, tr transition) []access {
	t := &s.thr[tr.thread]
	switch tr.kind {
	case tChoiceA, tChoiceB:
		return nil
	case tFlush:
		if len(t.buf) == 0 {
			return nil
		}
		return []access{{t.buf[0].addr, true}}
	case tReacq:
		return []access{{t.wait, true}}
	}
	in := &mc.m.Threads[tr.thread].Prog.Code[t.pc]
	var out []access
	addFlush := func() {
		if mc.sem == SemTSO {
			for _, e := range t.buf {
				out = append(out, access{e.addr, true})
			}
		}
	}
	switch in.Op {
	case OpLoad:
		out = append(out, access{in.Loc.Eval(t.regs), false})
	case OpStore:
		if in.Atomic {
			addFlush()
		} else if mc.sem == SemTSO && len(t.buf) >= mc.maxBuf {
			out = append(out, access{t.buf[0].addr, true})
		}
		out = append(out, access{in.Loc.Eval(t.regs), true})
	case OpRMWAdd, OpCAS:
		addFlush()
		a := in.Loc.Eval(t.regs)
		out = append(out, access{a, false}, access{a, true})
	case OpMutexLock, OpMutexUnlock, OpCondWait, OpCondBroadcast:
		addFlush()
		out = append(out, access{in.Loc.Eval(t.regs), true})
	case OpCsEnter, OpCsExit:
		out = append(out, access{csCell, true})
	case OpHalt:
		addFlush()
	}
	return out
}

// dependent reports whether two transitions' footprints conflict (share a
// cell with at least one write).
func dependent(a, b []access) bool {
	for _, x := range a {
		for _, y := range b {
			if x.addr == y.addr && (x.write || y.write) {
				return true
			}
		}
	}
	return false
}

// TraceStep is one entry of a counterexample trace.
type TraceStep struct {
	Thread int    `json:"thread"`
	Name   string `json:"name"`
	PC     int    `json:"pc"`
	Desc   string `json:"desc"`
	Site   string `json:"site,omitempty"`
	Pos    string `json:"pos,omitempty"`
}

// apply executes tr on a copy of s, returning the successor, any
// violation the step (or the invisible suffix it enables) raised, and the
// rendered trace step.
func (mc *machine) apply(s *machState, tr transition) (*machState, *stepViol, TraceStep) {
	n := s.clone()
	i := tr.thread
	t := &n.thr[i]
	name := mc.m.Threads[i].Name
	ts := TraceStep{Thread: i, Name: name, PC: t.pc}

	store := func(addr, val uint64) {
		if addr < uint64(len(n.mem)) {
			n.mem[addr] = val
		}
	}

	switch tr.kind {
	case tFlush:
		e := t.buf[0]
		t.buf = append([]bufEntry(nil), t.buf[1:]...)
		store(e.addr, e.val)
		ts.Desc = fmt.Sprintf("flush store buffer: %s = %d", mc.m.CellName(e.addr), e.val)
		return n, nil, ts
	case tReacq:
		store(t.wait, 1)
		t.status = tsRun
		t.pc++ // past the OpCondWait
		in := &mc.m.Threads[i].Prog.Code[t.pc-1]
		ts.Desc = fmt.Sprintf("reacquire %s after broadcast", mc.m.CellName(t.wait))
		ts.Site, ts.Pos = in.Site, in.Pos
		v := mc.normalize(n, i)
		return n, v, ts
	}

	in := &mc.m.Threads[i].Prog.Code[t.pc]
	ts.Site, ts.Pos = in.Site, in.Pos

	switch tr.kind {
	case tChoiceA:
		t.pc = in.A
		ts.Desc = "choice: " + noteOr(in, "A")
		v := mc.normalize(n, i)
		return n, v, ts
	case tChoiceB:
		t.pc = in.B
		ts.Desc = "choice: skip " + noteOr(in, "B")
		v := mc.normalize(n, i)
		return n, v, ts
	}

	var viol *stepViol
	switch in.Op {
	case OpLoad:
		addr := in.Loc.Eval(t.regs)
		var val uint64
		if mc.sem == SemTSO {
			val = mc.bufLoad(n, i, addr)
		} else if addr < uint64(len(n.mem)) {
			val = n.mem[addr]
		}
		t.regs[in.Dst] = val
		ts.Desc = fmt.Sprintf("load %s -> %d", mc.m.CellName(addr), val)
	case OpStore:
		addr := in.Loc.Eval(t.regs)
		val := in.Val.Eval(t.regs)
		if mc.sem == SemTSO && !in.Atomic {
			if len(t.buf) >= mc.maxBuf {
				e := t.buf[0]
				t.buf = append([]bufEntry(nil), t.buf[1:]...)
				store(e.addr, e.val)
			}
			t.buf = append(t.buf, bufEntry{addr, val})
			ts.Desc = fmt.Sprintf("store(buffered) %s = %d", mc.m.CellName(addr), val)
		} else {
			if mc.sem == SemTSO {
				mc.flushAll(n, i)
			}
			store(addr, val)
			ts.Desc = fmt.Sprintf("store %s = %d", mc.m.CellName(addr), val)
		}
	case OpRMWAdd:
		if mc.sem == SemTSO {
			mc.flushAll(n, i)
		}
		addr := in.Loc.Eval(t.regs)
		d := in.Val.Eval(t.regs)
		var nv uint64
		if addr < uint64(len(n.mem)) {
			nv = n.mem[addr] + d
			n.mem[addr] = nv
		}
		t.regs[in.Dst] = nv
		ts.Desc = fmt.Sprintf("rmw-add %s += %d -> %d", mc.m.CellName(addr), int64(d), nv)
	case OpCAS:
		if mc.sem == SemTSO {
			mc.flushAll(n, i)
		}
		addr := in.Loc.Eval(t.regs)
		old := in.Old.Eval(t.regs)
		nv := in.Val.Eval(t.regs)
		ok := uint64(0)
		if addr < uint64(len(n.mem)) && n.mem[addr] == old {
			n.mem[addr] = nv
			ok = 1
		}
		t.regs[in.Dst] = ok
		ts.Desc = fmt.Sprintf("cas %s %d->%d: %d", mc.m.CellName(addr), old, nv, ok)
	case OpMutexLock:
		if mc.sem == SemTSO {
			mc.flushAll(n, i)
		}
		addr := in.Loc.Eval(t.regs)
		store(addr, 1)
		ts.Desc = "mutex-lock " + mc.m.CellName(addr)
	case OpMutexUnlock:
		if mc.sem == SemTSO {
			mc.flushAll(n, i)
		}
		addr := in.Loc.Eval(t.regs)
		store(addr, 0)
		ts.Desc = "mutex-unlock " + mc.m.CellName(addr)
	case OpCondWait:
		if mc.sem == SemTSO {
			mc.flushAll(n, i)
		}
		addr := in.Loc.Eval(t.regs)
		store(addr, 0) // release the associated mutex
		t.status = tsSleep
		t.wait = addr
		ts.Desc = "cond-wait: sleep on " + mc.m.CellName(addr)
		return n, nil, ts // pc stays at the wait until reacquired
	case OpCondBroadcast:
		if mc.sem == SemTSO {
			mc.flushAll(n, i)
		}
		addr := in.Loc.Eval(t.regs)
		woken := 0
		for j := range n.thr {
			if n.thr[j].status == tsSleep && n.thr[j].wait == addr {
				n.thr[j].status = tsReacq
				woken++
			}
		}
		ts.Desc = fmt.Sprintf("cond-broadcast %s: woke %d", mc.m.CellName(addr), woken)
	case OpCsEnter:
		role := in.Val.Eval(t.regs)
		for j := range n.thr {
			if j == i || n.thr[j].sect < 0 {
				continue
			}
			if role == 1 || n.thr[j].sect == 1 {
				viol = &stepViol{ViolMutex, fmt.Sprintf(
					"%s entered a %s section while %s holds a %s section",
					name, roleName(role), mc.m.Threads[j].Name, roleName(uint64(n.thr[j].sect)))}
			}
		}
		t.sect = int8(role)
		ts.Desc = "enter " + roleName(role) + " section"
	case OpCsExit:
		t.sect = -1
		ts.Desc = "exit " + roleName(in.Val.Eval(t.regs)) + " section"
	case OpHalt:
		if mc.sem == SemTSO {
			mc.flushAll(n, i)
		}
		t.status = tsHalted
		ts.Desc = "halt"
		return n, viol, ts
	default:
		return n, &stepViol{ViolModel, "unexpected visible op " + in.Op.Name()}, ts
	}
	t.pc++
	if viol == nil {
		viol = mc.normalize(n, i)
	} else {
		mc.normalize(n, i)
	}
	return n, viol, ts
}

func noteOr(in *Instr, def string) string {
	if in.Note != "" {
		return in.Note
	}
	return def
}

func roleName(r uint64) string {
	if r == 1 {
		return "writer"
	}
	return "reader"
}

// classifyStuck describes a state with no enabled transition: a sleeping
// thread means its wakeup was lost; otherwise it is a deadlock.
func (mc *machine) classifyStuck(s *machState) *stepViol {
	var sleepers, blocked []string
	for i := range s.thr {
		switch s.thr[i].status {
		case tsSleep:
			sleepers = append(sleepers, fmt.Sprintf("%s parked on %s", mc.m.Threads[i].Name, mc.m.CellName(s.thr[i].wait)))
		case tsHalted:
		default:
			blocked = append(blocked, mc.m.Threads[i].Name)
		}
	}
	if len(sleepers) > 0 {
		return &stepViol{ViolLostWake, fmt.Sprintf("no runnable thread: %v (blocked: %v)", sleepers, blocked)}
	}
	return &stepViol{ViolDeadlock, fmt.Sprintf("no runnable thread; blocked: %v", blocked)}
}

// checkTerminal validates an all-halted state against the model's
// accepted-terminal predicates.
func (mc *machine) checkTerminal(s *machState) *stepViol {
	for _, f := range mc.m.Finals {
		switch f.Kind {
		case FinalZero:
			for _, c := range f.Cells {
				if s.mem[c] != 0 {
					return &stepViol{ViolFinal, fmt.Sprintf("%s: %s = %d at termination, want 0", f.Desc, mc.m.CellName(c), s.mem[c])}
				}
			}
		case FinalAllEqual:
			if len(f.Cells) == 0 {
				continue
			}
			v0 := s.mem[f.Cells[0]]
			for _, c := range f.Cells[1:] {
				if s.mem[c] != v0 {
					return &stepViol{ViolFinal, fmt.Sprintf("%s: %s = %d but %s = %d", f.Desc, mc.m.CellName(f.Cells[0]), v0, mc.m.CellName(c), s.mem[c])}
				}
			}
		case FinalNever:
			hit := true
			for k, c := range f.Cells {
				if s.mem[c] != f.Values[k] {
					hit = false
					break
				}
			}
			if hit {
				return &stepViol{ViolFinal, fmt.Sprintf("forbidden outcome reached: %s (%s)", f.Desc, renderOutcome(mc.m, f, s))}
			}
		}
	}
	return nil
}

func renderOutcome(m *Model, f Final, s *machState) string {
	parts := make([]string, 0, len(f.Cells))
	for _, c := range f.Cells {
		parts = append(parts, fmt.Sprintf("%s=%d", m.CellName(c), s.mem[c]))
	}
	sort.Strings(parts)
	return fmt.Sprint(parts)
}
