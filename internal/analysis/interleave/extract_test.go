package interleave

import (
	"strings"
	"sync"
	"testing"
)

var (
	testExOnce sync.Once
	testEx     *extractor
	testExErr  error
)

// testExtractor loads the module once for every test in the package.
func testExtractor(t *testing.T) *extractor {
	t.Helper()
	testExOnce.Do(func() { testEx, testExErr = newExtractor(".") })
	if testExErr != nil {
		t.Fatalf("loading module: %v", testExErr)
	}
	return testEx
}

// TestExtractParkGolden pins the extracted shape of park.Table.Park: the
// exact atomic-step count and shared-cell footprint. A change here means
// the park protocol's interleaving surface changed — reviewed on purpose
// or a lowering regression.
func TestExtractParkGolden(t *testing.T) {
	ex := testExtractor(t)
	b := &binder{threads: 2, parker: true}
	p, err := ex.extractRoot(
		funcRef{pkgPath: pkgPark, recv: "Table", name: "Park"},
		objVal(b.tableObj()),
		[]*absVal{numVal(Konst(cellPhase)), numVal(Konst(0))},
		extractOpts{site: "T"},
	)
	if err != nil {
		t.Fatalf("extract Park: %v", err)
	}

	// Park's visible steps: shard-mutex lock, waiters increment, the gen
	// snapshot load, the gen/phase re-check loads + cond-wait of the wait
	// loop, waiters decrement, shard-mutex unlock.
	const wantSteps = 9
	if got := p.VisibleSteps(); got != wantSteps {
		t.Errorf("Park visible steps = %d, want %d\n%s", got, wantSteps, progDump(p))
	}

	names := func(c uint64) string { return (&Model{CellNames: cellNames(2)}).CellName(c) }
	want := []string{"phase", "shard[5].gen", "shard[5].mu", "shard[5].waiters"}
	if got := p.Footprint(names); !equalStrings(got, want) {
		t.Errorf("Park footprint = %v, want %v", got, want)
	}
}

// TestExtractAwaitGLClearGolden pins the reader/writer shared pre-wait:
// one lock-word load per spin, a park choice whose park arm is the real
// Table.Park on the lock word.
func TestExtractAwaitGLClearGolden(t *testing.T) {
	ex := testExtractor(t)
	b := &binder{threads: 2, parker: true}
	p, err := ex.extractRoot(
		funcRef{pkgPath: pkgCore, recv: "handle", name: "awaitGLClear"},
		objVal(b.handleObj(0)),
		[]*absVal{numVal(Konst(0)), numVal(Konst(0))},
		extractOpts{site: "T"},
	)
	if err != nil {
		t.Fatalf("extract awaitGLClear: %v", err)
	}

	// The lock-word IsLocked load, the park choice, and the inlined
	// Table.Park steps (9, see TestExtractParkGolden) on the lock word's
	// shard.
	const wantSteps = 1 + 1 + 9
	if got := p.VisibleSteps(); got != wantSteps {
		t.Errorf("awaitGLClear visible steps = %d, want %d\n%s", got, wantSteps, progDump(p))
	}

	names := func(c uint64) string { return (&Model{CellNames: cellNames(2)}).CellName(c) }
	want := []string{"gl", "shard[0].gen", "shard[0].mu", "shard[0].waiters"}
	if got := p.Footprint(names); !equalStrings(got, want) {
		t.Errorf("awaitGLClear footprint = %v, want %v", got, want)
	}
}

// TestExtractRequiresDirective: only //sprwl:model-annotated functions may
// be extraction roots — the modeled surface is explicit.
func TestExtractRequiresDirective(t *testing.T) {
	ex := testExtractor(t)
	b := &binder{threads: 2, parker: true}
	_, err := ex.extractRoot(
		funcRef{pkgPath: pkgCore, recv: "handle", name: "glWaiter"},
		objVal(b.handleObj(0)),
		nil,
		extractOpts{site: "T"},
	)
	if err == nil || !strings.Contains(err.Error(), "sprwl:model") {
		t.Fatalf("extracting unannotated root: err = %v, want missing-directive error", err)
	}
}

// TestSkipCallSitePattern: a ">"-qualified drop-call pattern deletes only
// the named inline site, not every caller of the function.
func TestSkipCallSitePattern(t *testing.T) {
	ex := testExtractor(t)
	b := &binder{threads: 3, parker: true, opts: coreOptions{ReaderSync: true, MaxRetries: 1}}
	full, err := extractThread(ex, b, "W", writeRoot, 2, csWriter, 7, nil)
	if err != nil {
		t.Fatalf("extract writer: %v", err)
	}
	mut, err := extractThread(ex, b, "W", writeRoot, 2, csWriter, 7,
		&threadMut{applyTo: "W", skipCalls: []string{"finishWrite>Hub.Wake"}})
	if err != nil {
		t.Fatalf("extract mutated writer: %v", err)
	}
	if got, want := full.VisibleSteps(), mut.VisibleSteps(); got <= want {
		t.Errorf("dropping finishWrite's wake did not shrink the program: full=%d mutated=%d", got, want)
	}
	// The unlock path's wake (SpinMutex.Unlock -> Hub.Wake) must survive:
	// the mutated writer still loads some shard waiters word.
	names := func(c uint64) string { return (&Model{CellNames: cellNames(3)}).CellName(c) }
	anyShard := false
	for _, cell := range mut.Footprint(names) {
		if strings.Contains(cell, "shard[") {
			anyShard = true
			break
		}
	}
	if !anyShard {
		t.Errorf("site-qualified skip removed every park-shard access: %v", mut.Footprint(names))
	}
}

func progDump(p *Prog) string {
	var b strings.Builder
	for i := range p.Code {
		if p.Code[i].Op.Visible() {
			b.WriteString("  ")
			b.WriteString(p.Code[i].String())
			b.WriteByte('\n')
		}
	}
	return b.String()
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
