package mix

func (c *counter) plainRead() uint64 {
	return c.n // want `plain access to "n"`
}

func (c *counter) plainWrite() {
	c.n = 0 // want `plain access to "n"`
}

func (c *counter) initialize() {
	//sprwl:allow(atomicmix) fixture: single-threaded construction before publication
	c.setup = 42
}

func check() bool {
	return published != 0 // want `plain access to "published"`
}
