// Package mix exercises the atomicmix analyzer: the fields and variables
// below are accessed atomically in this file and plainly in b.go, so the
// diagnostics land across the package's call graph and files.
package mix

import "sync/atomic"

type counter struct {
	n     uint64 // mixed: atomic here, plain in b.go
	safe  uint64 // atomic-only: never reported
	setup uint64 // mixed, but the plain access in b.go is suppressed
}

func (c *counter) bump() {
	atomic.AddUint64(&c.n, 1)
	atomic.AddUint64(&c.safe, 1)
	atomic.StoreUint64(&c.setup, 0)
}

func (c *counter) atomicRead() uint64 {
	return atomic.LoadUint64(&c.safe)
}

var published uint64

func publish() {
	atomic.StoreUint64(&published, 1)
}
