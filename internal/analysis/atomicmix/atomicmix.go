// Package atomicmix flags struct fields and package-level variables that
// are accessed both through sync/atomic function calls and through plain
// loads or stores within the same package.
//
// A word that is ever accessed atomically must be accessed atomically
// everywhere: a single plain load can read a torn or stale value and a
// plain store silently discards a concurrent atomic update — the classic
// way a BRAVO-style reader-writer fast path "cheap read" becomes a racy
// load. Fields of the typed atomic wrappers (atomic.Uint64 and friends) are
// immune by construction and are not tracked; this analyzer exists for the
// &x.f-passed-to-sync/atomic pattern, where the compiler offers no
// protection at the remaining plain uses.
//
// Intentional exceptions (e.g. initialization before the value is
// published) are suppressed with //sprwl:allow(atomicmix) plus a
// justification.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/driver"
)

// Analyzer is the atomicmix check.
var Analyzer = &driver.Analyzer{
	Name: "atomicmix",
	Doc:  "report variables accessed both via sync/atomic and via plain loads/stores",
	Run:  run,
}

func run(pass *driver.Pass) error {
	info := pass.Pkg.Info

	// Pass 1: every `&v` argument of a sync/atomic call marks v (a struct
	// field or a package-level variable) as atomically accessed; the
	// operand node itself is exempt from pass 2.
	atomicUse := make(map[*types.Var]token.Pos)
	operand := make(map[ast.Node]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := astq.CalleeFunc(info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				un, ok := arg.(*ast.UnaryExpr)
				if !ok || un.Op != token.AND {
					continue
				}
				v := trackedVar(info, un.X)
				if v == nil {
					continue
				}
				if _, seen := atomicUse[v]; !seen {
					atomicUse[v] = un.X.Pos()
				}
				operand[un.X] = true
				if sel, ok := un.X.(*ast.SelectorExpr); ok {
					operand[sel.Sel] = true
				}
			}
			return true
		})
	}
	if len(atomicUse) == 0 {
		return nil
	}

	// Pass 2: any other appearance of a tracked variable is a plain
	// access (read, write, or aliasing &) and races with the atomic uses.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.SelectorExpr:
				if operand[e] {
					return true
				}
				if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
					report(pass, atomicUse, sel.Obj().(*types.Var), e.Pos())
				}
			case *ast.Ident:
				if operand[e] {
					return true
				}
				v, ok := info.Uses[e].(*types.Var)
				if ok && !v.IsField() {
					report(pass, atomicUse, v, e.Pos())
				}
			}
			return true
		})
	}
	return nil
}

func report(pass *driver.Pass, atomicUse map[*types.Var]token.Pos, v *types.Var, pos token.Pos) {
	first, ok := atomicUse[v]
	if !ok {
		return
	}
	pass.Reportf(pos, "plain access to %q, which is accessed with sync/atomic elsewhere in this package (e.g. at %s); every access must be atomic",
		v.Name(), pass.Fset.Position(first))
}

// trackedVar resolves the operand of a unary & to a variable this analyzer
// tracks: a struct field (x.f) or a package-level variable.
func trackedVar(info *types.Info, x ast.Expr) *types.Var {
	switch e := x.(type) {
	case *ast.SelectorExpr:
		if sel := info.Selections[e]; sel != nil && sel.Kind() == types.FieldVal {
			return sel.Obj().(*types.Var)
		}
		// Qualified identifier (pkg.V): falls through to the Sel ident.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && astq.IsPackageLevel(v) {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && !v.IsField() && astq.IsPackageLevel(v) {
			return v
		}
	}
	return nil
}
