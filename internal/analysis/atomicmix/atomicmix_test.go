package atomicmix_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/atomicmix"
)

func TestAtomicMix(t *testing.T) {
	analysistest.Run(t, "testdata", atomicmix.Analyzer, "mix")
}
