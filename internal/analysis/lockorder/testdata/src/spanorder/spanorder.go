// Package spanorder is the lockorder golden fixture: a miniature of the
// locktable span surface (two-phase indexed shard handles, closure
// sections, baseline mutexes, a parking waiter) with one function per
// rule, violating and conforming variants side by side.
package spanorder

type mutex struct{}

func (*mutex) Lock()   {}
func (*mutex) Unlock() {}

type span struct{}

func (span) AcquireRead(csID int)  {}
func (span) ReleaseRead(csID int)  {}
func (span) AcquireWrite(csID int) {}
func (span) ReleaseWrite(csID int) {}

type handle struct {
	spans []span
	mark  []bool
}

type waiter struct{}

func (waiter) Park(addr *uint64, expected uint64) {}

type locky struct{}

func (locky) Read(csID int, body func()) {}

// --- L2: span shards must be acquired in ascending index order ---

func revAcquire(h *handle) {
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].AcquireRead(0) // want `span acquisition must ascend`
	}
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].ReleaseRead(0)
	}
}

func constOrder(h *handle) {
	h.spans[0].AcquireRead(0)
	h.spans[2].AcquireRead(0)
	h.spans[1].AcquireRead(0) // want `span shard \[1\] is acquired while shard \[2\] is already held`
	h.spans[2].ReleaseRead(0)
	h.spans[1].ReleaseRead(0)
	h.spans[0].ReleaseRead(0)
}

// --- L3: span shards must be released in descending index order ---

func fwdRelease(h *handle) {
	for i := 0; i < len(h.spans); i++ {
		h.spans[i].AcquireRead(0)
	}
	for i := range h.spans {
		h.spans[i].ReleaseRead(0) // want `span release must descend`
	}
}

func constRelease(h *handle) {
	h.spans[0].AcquireRead(0)
	h.spans[3].AcquireRead(0)
	h.spans[0].ReleaseRead(0) // want `span shard \[0\] is released while shard \[3\] is still held`
	h.spans[3].ReleaseRead(0)
}

// markedSweep is the conforming locktable shape: ascending bitmap-scan
// acquire, descending release. No diagnostics.
func markedSweep(h *handle) {
	for s := 0; s < len(h.mark); s++ {
		if !h.mark[s] {
			continue
		}
		h.spans[s].AcquireWrite(0)
	}
	for s := len(h.mark) - 1; s >= 0; s-- {
		if !h.mark[s] {
			continue
		}
		h.spans[s].ReleaseWrite(0)
	}
}

// allowedRev shows the shared suppression machinery: the reversed probe is
// deliberate and carries the directive, so nothing is reported.
func allowedRev(h *handle) {
	for i := len(h.spans) - 1; i >= 0; i-- {
		//sprwl:allow(lockorder) deliberate reversed-order deadlock probe
		h.spans[i].AcquireRead(0)
	}
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].ReleaseRead(0)
	}
}

// --- L1: closure-section bodies are lock-free leaves ---

var gmu mutex

func lockyBody() {
	gmu.Lock()
	gmu.Unlock()
}

func sectionBodies(lk locky, m *mutex) {
	lk.Read(0, func() {})
	lk.Read(0, func() { m.Lock(); m.Unlock() }) // want `section body func literal acquires spanorder\.mutex`
	lk.Read(0, lockyBody)                       // want `section body lockyBody acquires spanorder\.mutex`
}

// --- L4: no re-acquire while may-held ---

func reacquire(m *mutex) {
	m.Lock()
	m.Lock() // want `may already be held here`
	m.Unlock()
	m.Unlock()
}

func reacquireBranch(m *mutex, cond bool) {
	if cond {
		m.Lock()
	}
	m.Lock() // want `may already be held here`
	m.Unlock()
}

// --- L5: no parking while holding a lock ---

func parkHolding(m *mutex, w waiter, a *uint64) {
	m.Lock()
	w.Park(a, 1) // want `parking while spanorder\.mutex may be held`
	m.Unlock()
}

func parker(w waiter, a *uint64) {
	w.Park(a, 1)
}

func parkViaHelper(m *mutex, w waiter, a *uint64) {
	m.Lock()
	parker(w, a) // want `parking while spanorder\.mutex may be held`
	m.Unlock()
}

// --- interface dispatch: classification is by name and signature ---

// iface mirrors core.SpanHandle: locktable stores its shards behind the
// interface, so the span rules must see through dynamic dispatch.
type iface interface {
	AcquireRead(csID int)
	ReleaseRead(csID int)
}

type ihandle struct {
	spans []iface
}

func ifaceRev(h *ihandle) {
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].AcquireRead(0) // want `span acquisition must ascend`
	}
	for i := len(h.spans) - 1; i >= 0; i-- {
		h.spans[i].ReleaseRead(0)
	}
}

// --- L6: the lock-order graph is acyclic ---

type muA struct{}

func (*muA) Lock()   {}
func (*muA) Unlock() {}

type muB struct{}

func (*muB) Lock()   {}
func (*muB) Unlock() {}

func abOrder(a *muA, b *muB) {
	a.Lock()
	b.Lock() // want `closes a lock-order cycle`
	b.Unlock()
	a.Unlock()
}

func baOrder(a *muA, b *muB) {
	b.Lock()
	a.Lock() // want `closes a lock-order cycle`
	a.Unlock()
	b.Unlock()
}
