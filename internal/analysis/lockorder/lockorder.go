// Package lockorder mechanizes DESIGN §11's deadlock-freedom argument as
// six checkable rules over the interprocedural lock summaries of package
// summary. The hand proof orders the lock universe — shard spans ascend by
// index, release descends, critical-section bodies are leaves — and this
// analyzer rejects code that steps outside that order anywhere in the
// lock-acquisition graph spanning core.SpanHandle two-phase calls, the
// locktable/rwlock closure sections, the internal/locks baselines, and
// park.Park/Pause waits:
//
//	L1  closure-section bodies are lock-free leaves: a body passed to
//	    Read/Write/ReadN/WriteN/ReadAll must not (transitively) acquire,
//	    try, section, or park.
//	L2  span shards are acquired in ascending index order: no loop that
//	    walks shard indexes downward may acquire, and no straight-line
//	    sequence may acquire a shard below one it still holds.
//	L3  span shards are released in descending index order: the mirror of
//	    L2 for the release half of the two-phase protocol.
//	L4  no lock is re-acquired while it may still be held: a second
//	    acquire of the same operand without an intervening release
//	    self-deadlocks on non-reentrant locks.
//	L5  no parking while holding a lock: a parked waiter cannot release
//	    what it holds, so every blocked peer behind that lock inherits the
//	    wait.
//	L6  the lock-order graph is acyclic at family granularity: an edge
//	    A -> B is drawn wherever some path acquires a member of family B
//	    while holding a member of family A (directly or through calls);
//	    a cycle is a potential deadlock the index rules cannot see.
//
// Lock implementations are exempt: packages core, park, and locks *are*
// the protocols these rules abstract (a queue lock legitimately parks
// while holding its queue node), so the analyzer checks their call
// surface from client code, not their internals.
package lockorder

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"sprwl/internal/analysis/astq"
	"sprwl/internal/analysis/dataflow"
	"sprwl/internal/analysis/driver"
	"sprwl/internal/analysis/summary"
)

// Analyzer is the lockorder check.
var Analyzer = &driver.Analyzer{
	Name: "lockorder",
	Doc:  "enforce DESIGN §11's lock-acquisition order: ascending span acquire, descending release, lock-free section bodies, no re-acquire, no parking while held, acyclic lock-order graph",
	Run:  run,
}

// implPkgs are the lock-implementation packages whose internals define the
// protocols; the rules apply to their callers.
var implPkgs = map[string]bool{"core": true, "park": true, "locks": true}

func run(pass *driver.Pass) error {
	if implPkgs[pass.Pkg.Name] {
		return nil
	}
	s := summary.For(pass.Prog)
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, s, fd.Body, s.Analyze(pass.Pkg, fd))
		}
		// Function literals are separate control flow (goroutine bodies,
		// stored callbacks); invoked-literal events also appear inlined in
		// the enclosing analysis, and the driver's position de-duplication
		// collapses any doubled report.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				checkBody(pass, s, lit.Body, s.AnalyzeLit(pass.Pkg, lit))
			}
			return true
		})
	}
	checkCycles(pass, s)
	return nil
}

func checkBody(pass *driver.Pass, s *summary.Set, body *ast.BlockStmt, fa *summary.FuncAnalysis) {
	checkBodiesLockFree(pass, s, fa)    // L1
	checkSpanIndexOrder(pass, body, fa) // L2 + L3
	checkHeldState(pass, fa)            // L4 + L5
}

// checkBodiesLockFree enforces L1: every function value a closure-section
// body argument may resolve to must be lock-free. Bodies the callgraph
// cannot enumerate are not reported — the summary layer already marks the
// verdict incomplete, and the closed-surface assumption (DESIGN §12) is
// that unresolved values perform no protocol-surface lock operations.
func checkBodiesLockFree(pass *driver.Pass, s *summary.Set, fa *summary.FuncAnalysis) {
	for i := range fa.Events {
		ev := &fa.Events[i]
		if ev.Op.Kind != summary.KindSection || ev.Op.Via != "" || ev.Op.BodyArg == nil {
			continue
		}
		sums, names, _ := s.BodySummaries(fa.Pkg, ev.Op.BodyArg)
		for j, sum := range sums {
			if sum.Touches() {
				pass.Reportf(ev.Op.BodyArg.Pos(),
					"lock order: section body %s %s; critical-section bodies must be lock-free leaves (L1)",
					names[j], sum.TouchDescribe())
			}
		}
	}
}

// checkSpanIndexOrder enforces L2/L3 on two-phase span calls whose
// receiver is an indexed shard (h.spans[i].AcquireRead(...)): loops that
// drive the index must ascend on acquire and descend on release, and
// straight-line constant-indexed sequences must never acquire below or
// release below a shard still held.
func checkSpanIndexOrder(pass *driver.Pass, body *ast.BlockStmt, fa *summary.FuncAnalysis) {
	info := fa.Pkg.Info
	loops := loopStacks(body)

	// Straight-line constant order: per CFG block, the set of
	// constant-indexed shards currently held per lock operand.
	type famKey struct {
		obj   types.Object
		path  string
		class summary.Class
	}
	var curBlock interface{}
	held := make(map[famKey]map[int]bool)

	for i := range fa.Events {
		ev := &fa.Events[i]
		if ev.Op.Via != "" || ev.Op.Key.Class != summary.ClassSpan {
			continue
		}
		if ev.Op.Kind != summary.KindAcquire && ev.Op.Kind != summary.KindRelease {
			continue
		}
		call, ok := ev.Node.(*ast.CallExpr)
		if !ok {
			continue
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			continue
		}
		idx, ok := ast.Unparen(sel.X).(*ast.IndexExpr)
		if !ok {
			continue
		}

		if c, isConst := constIndex(info, idx.Index); isConst {
			if ev.Block != curBlock {
				curBlock = ev.Block
				held = make(map[famKey]map[int]bool)
			}
			k := famKey{ev.Op.Key.Obj, generalize(ev.Op.Key.Path), ev.Op.Key.Class}
			set := held[k]
			if set == nil {
				set = make(map[int]bool)
				held[k] = set
			}
			switch ev.Op.Kind {
			case summary.KindAcquire:
				if hi, ok := maxHeld(set); ok && hi > c {
					pass.Reportf(ev.Op.Pos,
						"lock order: span shard [%d] is acquired while shard [%d] is already held; span acquisition must ascend by shard index (L2)", c, hi)
				}
				set[c] = true
			case summary.KindRelease:
				if hi, ok := maxHeld(set); ok && hi > c {
					pass.Reportf(ev.Op.Pos,
						"lock order: span shard [%d] is released while shard [%d] is still held; span release must descend by shard index (L3)", c, hi)
				}
				delete(set, c)
			}
			continue
		}

		// Variable index: judge by the direction of the loop driving it.
		root := astq.RootVar(info, idx.Index)
		if root == nil {
			continue
		}
		for _, loop := range loops[call] {
			dir := loopDir(info, loop, root)
			if dir == 0 {
				continue
			}
			if ev.Op.Kind == summary.KindAcquire && dir < 0 {
				pass.Reportf(ev.Op.Pos,
					"lock order: span shards are acquired in a loop that walks %s downward; span acquisition must ascend by shard index (L2)", root.Name())
			}
			if ev.Op.Kind == summary.KindRelease && dir > 0 {
				pass.Reportf(ev.Op.Pos,
					"lock order: span shards are released in a loop that walks %s upward; span release must descend by shard index (L3)", root.Name())
			}
			break
		}
	}
}

// checkHeldState enforces L4 (re-acquire while may-held) and L5 (parking
// while may-held) by replaying the may-forward held solution.
func checkHeldState(pass *driver.Pass, fa *summary.FuncAnalysis) {
	// Bits acquired only by `for !m.TryLock()` spins hold after the loop,
	// not inside it; the replay cannot tell the two regions apart, so spin
	// keys are exempt from the held-at rules.
	spinBits := make(map[int]bool)
	for i := range fa.Events {
		ev := &fa.Events[i]
		if ev.Spin {
			if bit, ok := fa.KeyBit[ev.Op.Key]; ok {
				spinBits[bit] = true
			}
		}
	}
	for _, blk := range fa.Graph.Blocks {
		fa.HeldFlow.ReplayForward(blk, fa.Held.In[blk], func(n ast.Node, guarded bool, before dataflow.Bits) {
			for _, i := range fa.At[n] {
				ev := &fa.Events[i]
				switch ev.Op.Kind {
				case summary.KindAcquire:
					k := ev.Op.Key
					if !k.Pairable() || k.Indexed() || ev.Spin {
						continue
					}
					if bit, ok := fa.KeyBit[k]; ok && !spinBits[bit] && before.Has(bit) {
						pass.Reportf(ev.Op.Pos,
							"lock order: %s may already be held here; re-acquiring a non-reentrant lock self-deadlocks (L4)", k.String())
					}
				case summary.KindWait:
					for bit, k := range fa.Keys {
						if before.Has(bit) && !spinBits[bit] {
							pass.Reportf(ev.Op.Pos,
								"lock order: parking while %s may be held; a parked waiter blocks every peer waiting on what it holds (L5)%s", k.String(), via(ev.Op.Via))
							break
						}
					}
				}
			}
		})
	}
}

// checkCycles enforces L6: the union of lock-order edges over every
// module (and fixture) package must be acyclic at family granularity.
// Each pass collects the same global graph from the cached summaries and
// reports only the cycle edges sited in its own package, so a multichecker
// run flags every participating site exactly once.
func checkCycles(pass *driver.Pass, s *summary.Set) {
	prog := pass.Prog
	var edges []summary.Edge
	for _, pkg := range prog.Packages() {
		if implPkgs[pkg.Name] || !localPkg(prog, pkg) {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
					edges = append(edges, s.FuncSummary(fd, pkg).Edges...)
				}
			}
			ast.Inspect(f, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					edges = append(edges, s.LitSummary(lit, pkg).Edges...)
				}
				return true
			})
		}
	}

	// Adjacency plus the best (earliest) reporting site per edge.
	adj := make(map[string][]string)
	best := make(map[[2]string]summary.Edge)
	for _, e := range edges {
		k := [2]string{e.From, e.To}
		if have, ok := best[k]; !ok {
			adj[e.From] = append(adj[e.From], e.To)
			best[k] = e
		} else if e.Pos < have.Pos {
			best[k] = e
		}
	}

	inPkg := make(map[string]bool)
	for _, f := range pass.Pkg.Files {
		inPkg[pass.Fset.Position(f.Pos()).Filename] = true
	}

	keys := make([][2]string, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	for _, k := range keys {
		e := best[k]
		if !inPkg[pass.Fset.Position(e.Pos).Filename] {
			continue
		}
		path := shortestPath(adj, e.To, e.From)
		if path == nil {
			continue // not on a cycle
		}
		cycle := append([]string{e.From}, path...)
		pass.Reportf(e.Pos,
			"lock order: acquiring %s while holding %s closes a lock-order cycle %s; DESIGN §11 requires the acquisition order to be acyclic (L6)%s",
			e.To, e.From, strings.Join(cycle, " -> "), via(e.Via))
	}
}

// shortestPath BFSes from -> to over adj, returning the node sequence
// starting at from and ending at to (nil if unreachable).
func shortestPath(adj map[string][]string, from, to string) []string {
	prev := map[string]string{from: from}
	queue := []string{from}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == to {
			var rev []string
			for cur := to; ; cur = prev[cur] {
				rev = append(rev, cur)
				if cur == from && len(rev) > 0 && prev[cur] == cur {
					break
				}
			}
			path := make([]string, 0, len(rev))
			for i := len(rev) - 1; i >= 0; i-- {
				path = append(path, rev[i])
			}
			return path
		}
		for _, m := range adj[n] {
			if _, seen := prev[m]; !seen {
				prev[m] = n
				queue = append(queue, m)
			}
		}
	}
	return nil
}

// localPkg reports whether pkg belongs to the module under analysis or to
// an analysistest fixture tree — the packages whose edges feed the global
// order graph (standard-library dependencies do not).
func localPkg(prog *driver.Program, pkg *driver.Package) bool {
	if pkg.Path == prog.ModulePath || strings.HasPrefix(pkg.Path, prog.ModulePath+"/") {
		return true
	}
	return prog.FixtureRoot != "" &&
		strings.HasPrefix(pkg.Dir, prog.FixtureRoot+string(filepath.Separator))
}

// loopStacks maps every call in body to its enclosing for/range statements,
// innermost first, stopping at function-literal frame boundaries.
func loopStacks(body *ast.BlockStmt) map[*ast.CallExpr][]ast.Stmt {
	out := make(map[*ast.CallExpr][]ast.Stmt)
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if call, ok := n.(*ast.CallExpr); ok {
			var ls []ast.Stmt
		frames:
			for i := len(stack) - 1; i >= 0; i-- {
				switch st := stack[i].(type) {
				case *ast.ForStmt:
					ls = append(ls, st)
				case *ast.RangeStmt:
					ls = append(ls, st)
				case *ast.FuncLit:
					break frames
				}
			}
			if len(ls) > 0 {
				out[call] = ls
			}
		}
		stack = append(stack, n)
		return true
	})
	return out
}

// loopDir reports how loop advances v: +1 ascending, -1 descending, 0 when
// the loop does not drive v (or the step is not recognizably monotonic).
func loopDir(info *types.Info, loop ast.Stmt, v *types.Var) int {
	switch l := loop.(type) {
	case *ast.RangeStmt:
		// Range keys over a slice/array ascend by construction.
		if id, ok := l.Key.(*ast.Ident); ok {
			if info.Defs[id] == v || info.Uses[id] == v {
				return 1
			}
		}
	case *ast.ForStmt:
		switch p := l.Post.(type) {
		case *ast.IncDecStmt:
			if rootIs(info, p.X, v) {
				if p.Tok == token.INC {
					return 1
				}
				return -1
			}
		case *ast.AssignStmt:
			if len(p.Lhs) == 1 && len(p.Rhs) == 1 && rootIs(info, p.Lhs[0], v) {
				if c, ok := constIndex(info, p.Rhs[0]); ok && c > 0 {
					switch p.Tok {
					case token.ADD_ASSIGN:
						return 1
					case token.SUB_ASSIGN:
						return -1
					}
				}
			}
		}
	}
	return 0
}

func rootIs(info *types.Info, e ast.Expr, v *types.Var) bool {
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		return info.Uses[id] == v || info.Defs[id] == v
	}
	return false
}

// constIndex extracts a constant integer value, if any.
func constIndex(info *types.Info, e ast.Expr) (int, bool) {
	if tv, ok := info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
		if v, err := strconv.Atoi(tv.Value.ExactString()); err == nil {
			return v, true
		}
	}
	return 0, false
}

// generalize collapses constant index labels to "[*]" so spans[0] and
// spans[3] share one straight-line tracking entry.
func generalize(p string) string {
	var b strings.Builder
	for i := 0; i < len(p); {
		if p[i] == '[' {
			j := strings.IndexByte(p[i:], ']')
			if j < 0 {
				b.WriteString(p[i:])
				break
			}
			b.WriteString("[*]")
			i += j + 1
			continue
		}
		b.WriteByte(p[i])
		i++
	}
	return b.String()
}

func maxHeld(set map[int]bool) (int, bool) {
	hi, ok := 0, false
	for c := range set {
		if !ok || c > hi {
			hi, ok = c, true
		}
	}
	return hi, ok
}

func via(v string) string {
	if v == "" {
		return ""
	}
	return " (via " + v + ")"
}
