package lockorder_test

import (
	"testing"

	"sprwl/internal/analysis/analysistest"
	"sprwl/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, "testdata", lockorder.Analyzer, "spanorder")
}
