package analysistest

import (
	"regexp"
	"testing"
)

func TestParseWants(t *testing.T) {
	specs, err := parseWants(`"first" 12:"second col-pinned" "dot .* spans"`)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs, want 3", len(specs))
	}
	if specs[0].col != 0 || specs[1].col != 12 || specs[2].col != 0 {
		t.Fatalf("columns = %d,%d,%d, want 0,12,0", specs[0].col, specs[1].col, specs[2].col)
	}
	// (?s) mode: "." crosses newlines, so one want can span a multi-line
	// diagnostic message.
	if !specs[2].re.MatchString("dot before\nand after it spans") {
		t.Error("pattern did not span a newline in the message")
	}

	for _, bad := range []string{`0:"zero column"`, `x:"not a number"`, `unquoted`, ``} {
		if _, err := parseWants(bad); err == nil {
			t.Errorf("parseWants(%q) succeeded, want error", bad)
		}
	}
}

func TestWantSetColumnMatch(t *testing.T) {
	mk := func(col int, pat string) *want {
		return &want{col: col, re: regexp.MustCompile(pat)}
	}
	ws := wantSet{"f.go": {10: []*want{mk(7, "shadowed"), mk(3, "shadowed")}}}
	if ws.match("f.go", 10, 5, "shadowed x") {
		t.Error("matched despite both column pins disagreeing")
	}
	if !ws.match("f.go", 10, 3, "shadowed x") {
		t.Error("column 3 should match the second want")
	}
	if !ws.match("f.go", 10, 7, "shadowed y") {
		t.Error("column 7 should match the first want")
	}
	if len(ws.unmatched()) != 0 {
		t.Error("all wants should be consumed")
	}
}
