// Package analysistest runs one analyzer over golden fixture packages and
// compares its diagnostics against inline expectations, mirroring the
// golang.org/x/tools analysistest convention on top of this repository's
// self-contained driver.
//
// Fixtures live under <testdata>/src/<pkg>; a line that should be reported
// carries a trailing comment of the form
//
//	expr // want "regexp" "another regexp"
//
// with one quoted regular expression per expected diagnostic on that line.
// A regexp may be prefixed with a column number, as in
//
//	a, b := f() // want 4:"unused" 7:"unused"
//
// which additionally pins the diagnostic's column — the way to tell two
// findings on one line apart. Regexes are compiled with (?s), so "." also
// crosses newlines and a single want can span a multi-line diagnostic
// message. Every reported diagnostic must match a want on its line and
// every want must be matched by a diagnostic — unmatched either way fails
// the test.
// Suppression via //sprwl:allow is applied before matching, so a fixture
// line carrying both a violation and an allow directive passes exactly when
// the shared suppression machinery works.
//
// Fixture packages may import real module packages (sprwl/internal/rwlock,
// sprwl/internal/memmodel, ...): the loader resolves module paths from the
// enclosing module and everything else from GOROOT source, fully offline.
package analysistest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"sprwl/internal/analysis/driver"
)

// Run loads each fixture package from testdata/src, applies the analyzer,
// and reports expectation mismatches through t.
func Run(t *testing.T, testdata string, a *driver.Analyzer, pkgPaths ...string) {
	t.Helper()
	moduleDir, err := findModuleRoot()
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	prog, err := driver.NewProgram(moduleDir)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	abs, err := filepath.Abs(testdata)
	if err != nil {
		t.Fatalf("analysistest: %v", err)
	}
	prog.FixtureRoot = filepath.Join(abs, "src")

	var pkgs []*driver.Package
	for _, path := range pkgPaths {
		pkg, err := prog.Load(path)
		if err != nil {
			t.Fatalf("analysistest: load %s: %v", path, err)
		}
		pkgs = append(pkgs, pkg)
	}

	res, err := driver.RunAnalyzers(prog, pkgs, []*driver.Analyzer{a})
	if err != nil {
		t.Fatalf("analysistest: run %s: %v", a.Name, err)
	}

	wants := collectWants(t, prog, pkgs)
	for _, d := range res.Diagnostics {
		pos := prog.Fset.Position(d.Pos)
		if !wants.match(pos.Filename, pos.Line, pos.Column, d.Message) {
			t.Errorf("%s: unexpected diagnostic: %s", shortPos(pos), d.Message)
		}
	}
	for _, w := range wants.unmatched() {
		t.Errorf("%s: no diagnostic matched want %q", w.where, w.re.String())
	}
}

type want struct {
	where string
	// col pins the diagnostic's column; 0 accepts any column.
	col int
	re  *regexp.Regexp
	hit bool
}

// wantSet indexes expectations by filename and line.
type wantSet map[string]map[int][]*want

func (ws wantSet) match(file string, line, col int, msg string) bool {
	for _, w := range ws[file][line] {
		if w.hit || (w.col != 0 && w.col != col) {
			continue
		}
		if w.re.MatchString(msg) {
			w.hit = true
			return true
		}
	}
	return false
}

func (ws wantSet) unmatched() []*want {
	var out []*want
	for _, lines := range ws {
		for _, l := range lines {
			for _, w := range l {
				if !w.hit {
					out = append(out, w)
				}
			}
		}
	}
	return out
}

// collectWants parses every "// want" comment in the fixture packages.
func collectWants(t *testing.T, prog *driver.Program, pkgs []*driver.Package) wantSet {
	t.Helper()
	ws := make(wantSet)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					res, err := parseWants(text)
					if err != nil {
						t.Fatalf("%s: bad want comment: %v", shortPos(pos), err)
					}
					lines := ws[pos.Filename]
					if lines == nil {
						lines = make(map[int][]*want)
						ws[pos.Filename] = lines
					}
					for _, spec := range res {
						lines[pos.Line] = append(lines[pos.Line], &want{
							where: shortPos(pos),
							col:   spec.col,
							re:    spec.re,
						})
					}
				}
			}
		}
	}
	return ws
}

// wantSpec is one parsed expectation: an optional column pin and the
// message pattern.
type wantSpec struct {
	col int
	re  *regexp.Regexp
}

// parseWants extracts the sequence of (optionally column-prefixed) quoted
// regular expressions after "// want". Patterns are compiled in single-line
// mode ((?s)) so "." crosses newlines and one expectation can cover a
// multi-line diagnostic message.
func parseWants(text string) ([]wantSpec, error) {
	var res []wantSpec
	rest := strings.TrimSpace(text)
	for rest != "" {
		col := 0
		// A column pin is a run of digits immediately followed by a colon;
		// anything else (including colons inside the quoted pattern) is
		// left for the pattern parser.
		j := 0
		for j < len(rest) && rest[j] >= '0' && rest[j] <= '9' {
			j++
		}
		if j > 0 && j < len(rest) && rest[j] == ':' {
			n, err := strconv.Atoi(rest[:j])
			if err != nil || n <= 0 {
				return nil, fmt.Errorf("bad column prefix %q (want <column>:\"regexp\")", rest[:j])
			}
			col = n
			rest = rest[j+1:]
		}
		q, err := strconv.QuotedPrefix(rest)
		if err != nil {
			return nil, fmt.Errorf("expected quoted regexp at %q", rest)
		}
		pat, err := strconv.Unquote(q)
		if err != nil {
			return nil, err
		}
		re, err := regexp.Compile("(?s)" + pat)
		if err != nil {
			return nil, err
		}
		res = append(res, wantSpec{col: col, re: re})
		rest = strings.TrimSpace(rest[len(q):])
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no regexps in want comment")
	}
	return res, nil
}

func shortPos(pos interface{ String() string }) string {
	s := pos.String()
	if i := strings.LastIndex(s, "/testdata/"); i >= 0 {
		return s[i+len("/testdata/"):]
	}
	return s
}

// findModuleRoot walks up from the working directory (the package under
// test) to the enclosing go.mod.
func findModuleRoot() (string, error) {
	dir, err := filepath.Abs(".")
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the test directory")
		}
		dir = parent
	}
}
