package htm

import "sprwl/internal/memmodel"

// Profile describes the HTM-relevant characteristics of one of the paper's
// evaluation machines (§4: a dual-socket 28-core Intel Broadwell and a
// 10-core/80-thread IBM POWER8).
//
// Capacities are expressed in distinct cache lines. The nominal figures the
// paper cites (Broadwell: 22 KiB writes / 4 MiB reads; POWER8: 8 KiB both)
// are architectural upper bounds; real transactions abort well before the
// nominal read bound because of associativity evictions, SMT sharing, and
// interrupts — the paper itself observes ~50% capacity aborts on Broadwell
// for critical sections far below 4 MiB. The profiles therefore carry
// *effective* capacities chosen so that the paper's workload regimes hold
// (long readers overflow, short readers and writers fit), which is the
// property every experiment depends on. DESIGN.md §2 records this
// substitution.
type Profile struct {
	// Name identifies the profile in reports ("broadwell", "power8").
	Name string

	// Cores is the number of physical cores; SMT is the number of
	// hardware threads per core. Threads are placed one per core first,
	// then stacked, matching the paper's even pinning.
	Cores int
	SMT   int

	// ReadCapLines and WriteCapLines are the effective per-transaction
	// capacity in distinct cache lines when one thread runs on the core.
	ReadCapLines  int
	WriteCapLines int

	// SharedCapacity reports whether hardware threads on the same core
	// split the transactional capacity between them (true on POWER8,
	// where the paper observes reduced HTM success once SMT kicks in,
	// and for hyper-threaded Broadwell pairs).
	SharedCapacity bool
}

// Broadwell is the Intel machine profile (dual-socket Xeon E5-2648L v4,
// 28 cores, 56 hyper-threads). The effective read capacity reflects the
// L2-bound behaviour observed in practice rather than the 4 MiB nominal
// read-set bound.
func Broadwell() Profile {
	return Profile{
		Name:           "broadwell",
		Cores:          28,
		SMT:            2,
		ReadCapLines:   384, // 24 KiB effective read footprint
		WriteCapLines:  352, // 22 KiB
		SharedCapacity: true,
	}
}

// Power8 is the IBM machine profile (POWER8 8284-22A, 10 cores, SMT8).
func Power8() Profile {
	return Profile{
		Name:           "power8",
		Cores:          10,
		SMT:            8,
		ReadCapLines:   128, // 8 KiB
		WriteCapLines:  128, // 8 KiB
		SharedCapacity: true,
	}
}

// MaxThreads returns the number of hardware threads the profile exposes.
func (p Profile) MaxThreads() int { return p.Cores * p.SMT }

// ThreadsPerCore returns how many of n evenly-pinned threads share each
// occupied core: threads fill one per core first, then stack (the paper
// distributes threads evenly across CPUs).
func (p Profile) ThreadsPerCore(n int) int {
	if n <= p.Cores {
		return 1
	}
	return (n + p.Cores - 1) / p.Cores
}

// EffectiveCapacity returns the per-transaction read/write capacity in
// lines for a system running n threads, accounting for SMT capacity
// sharing.
func (p Profile) EffectiveCapacity(n int) (readLines, writeLines int) {
	share := 1
	if p.SharedCapacity {
		share = p.ThreadsPerCore(n)
	}
	r := p.ReadCapLines / share
	w := p.WriteCapLines / share
	if r < 1 {
		r = 1
	}
	if w < 1 {
		w = 1
	}
	return r, w
}

// FitsRead reports whether a read footprint of the given number of bytes
// fits the profile's single-thread effective read capacity.
func (p Profile) FitsRead(bytes int) bool {
	return (bytes+memmodel.LineBytes-1)/memmodel.LineBytes <= p.ReadCapLines
}
