package htm

import (
	"testing"
	"time"

	"sprwl/internal/env"
	"sprwl/internal/tsc"
)

func TestRuntimeDelegates(t *testing.T) {
	space := MustNewSpace(Config{Threads: 3, Words: 1 << 12})
	rt := NewRuntime(space, nil)
	if rt.Threads() != 3 {
		t.Fatalf("Threads = %d, want 3", rt.Threads())
	}
	if rt.Space() != space {
		t.Fatal("Space() does not return the underlying space")
	}
	rt.Store(0, 5)
	if got := rt.Load(0); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	if !rt.CAS(0, 5, 6) {
		t.Fatal("CAS failed")
	}
	if got := rt.Add(0, 4); got != 10 {
		t.Fatalf("Add = %d, want 10", got)
	}
	cause := rt.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		tx.Store(8, tx.Load(0))
	})
	if cause != env.Committed {
		t.Fatalf("Attempt = %v, want Committed", cause)
	}
	if got := rt.Load(8); got != 10 {
		t.Fatalf("transactional copy = %d, want 10", got)
	}
}

func TestRuntimeClockAndWaits(t *testing.T) {
	space := MustNewSpace(Config{Threads: 1, Words: 1 << 10})
	rt := NewRuntime(space, nil)
	start := rt.Now()
	rt.Yield()          // must not block
	rt.WaitUntil(start) // already past: returns immediately
	target := rt.Now() + uint64(2*time.Millisecond)
	rt.WaitUntil(target)
	if now := rt.Now(); now < target {
		t.Fatalf("WaitUntil returned early: now %d < target %d", now, target)
	}
}

func TestRuntimeManualClock(t *testing.T) {
	space := MustNewSpace(Config{Threads: 1, Words: 1 << 10})
	clk := tsc.NewManual(1000)
	rt := NewRuntime(space, clk)
	if rt.Now() != 1000 {
		t.Fatalf("Now = %d, want 1000", rt.Now())
	}
	clk.Advance(500)
	if rt.Now() != 1500 {
		t.Fatalf("Now = %d after Advance, want 1500", rt.Now())
	}
}

func TestProfileGeometry(t *testing.T) {
	b := Broadwell()
	if b.MaxThreads() != 56 {
		t.Fatalf("Broadwell MaxThreads = %d, want 56", b.MaxThreads())
	}
	p := Power8()
	if p.MaxThreads() != 80 {
		t.Fatalf("Power8 MaxThreads = %d, want 80", p.MaxThreads())
	}
	// One thread per core while they last.
	if got := p.ThreadsPerCore(10); got != 1 {
		t.Fatalf("ThreadsPerCore(10) = %d, want 1", got)
	}
	if got := p.ThreadsPerCore(80); got != 8 {
		t.Fatalf("ThreadsPerCore(80) = %d, want 8", got)
	}
	r1, w1 := p.EffectiveCapacity(1)
	r8, w8 := p.EffectiveCapacity(80)
	if r8 >= r1 || w8 >= w1 {
		t.Fatalf("SMT sharing did not shrink capacity: (%d,%d) -> (%d,%d)", r1, w1, r8, w8)
	}
	// Capacity never collapses to zero.
	if r8 < 1 || w8 < 1 {
		t.Fatalf("effective capacity underflowed: %d, %d", r8, w8)
	}
	if !b.FitsRead(64 * 10) {
		t.Fatal("10 lines should fit Broadwell's read capacity")
	}
	if b.FitsRead(64 * 100000) {
		t.Fatal("100k lines should not fit Broadwell's read capacity")
	}
}
