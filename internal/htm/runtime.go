package htm

import (
	"runtime"
	"time"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
	"sprwl/internal/park"
	"sprwl/internal/tsc"
)

// Runtime is the real-concurrency implementation of env.Env: goroutines
// stand in for hardware threads, the Space provides HTM semantics, and the
// cycle clock is the host monotonic clock. This is the environment the
// public library runs on; the benchmark harness uses the discrete-event
// implementation in package sim instead.
type Runtime struct {
	space   *Space
	clock   tsc.Clock
	pipe    *obs.Pipeline
	table   *park.Table
	parking bool
}

var (
	_ env.Env       = (*Runtime)(nil)
	_ park.Provider = (*Runtime)(nil)
)

// NewRuntime wraps space and clock into an execution environment. A nil
// clock selects the wall clock. Parking is enabled by default: wait sites
// spin briefly and then sleep in the runtime's sharded waiter table (see
// package park); SetParking(false) restores pure spinning for comparison
// runs.
func NewRuntime(space *Space, clock tsc.Clock) *Runtime {
	if clock == nil {
		clock = tsc.WallClock{}
	}
	return &Runtime{
		space:   space,
		clock:   clock,
		table:   park.NewTable(space.Load),
		parking: true,
	}
}

// Space returns the underlying address space, for provisioning.
func (r *Runtime) Space() *Space { return r.space }

// SetParking toggles the waiter table. Call before handing the runtime to
// workers; the spin-only configuration is what the oversubscription sweep
// compares against.
func (r *Runtime) SetParking(on bool) { r.parking = on }

// Parker implements park.Provider. With parking disabled it returns nil
// (not a typed nil inside the interface), so wait sites degrade to
// spinning.
func (r *Runtime) Parker() park.Parker {
	if !r.parking {
		return nil
	}
	return r.table
}

// AttachObs routes per-attempt hardware transaction events (obs.EvTx) into
// pipe's per-thread rings, one event per Attempt with its outcome and time
// span. Detached (the default), Attempt emits nothing and pays no
// instrumentation cost. Attach before handing the runtime to workers.
func (r *Runtime) AttachObs(pipe *obs.Pipeline) { r.pipe = pipe }

// Load implements env.Env.
func (r *Runtime) Load(a memmodel.Addr) uint64 { return r.space.Load(a) }

// Store implements env.Env.
func (r *Runtime) Store(a memmodel.Addr, v uint64) { r.space.Store(a, v) }

// CAS implements env.Env.
func (r *Runtime) CAS(a memmodel.Addr, old, new uint64) bool { return r.space.CAS(a, old, new) }

// Add implements env.Env.
func (r *Runtime) Add(a memmodel.Addr, d uint64) uint64 { return r.space.Add(a, d) }

// Attempt implements env.Env.
func (r *Runtime) Attempt(slot int, opts env.TxOpts, body func(tx env.TxAccessor)) env.AbortCause {
	if r.pipe == nil {
		return r.space.Attempt(slot, opts, body)
	}
	start := r.clock.Now()
	cause := r.space.Attempt(slot, opts, body)
	r.pipe.Thread(slot).Tx(-1, cause, start, r.clock.Now())
	return cause
}

// Now implements env.Env.
func (r *Runtime) Now() uint64 { return r.clock.Now() }

// WaitUntil implements env.Env. Cycles are nanoseconds under the wall
// clock; short waits spin-yield, long waits sleep most of the interval to
// avoid burning the (possibly oversubscribed) host CPU.
func (r *Runtime) WaitUntil(t uint64) {
	if s, ok := r.clock.(tsc.Sleeper); ok {
		// A virtual clock completes timed waits by advancing time,
		// keeping tests of the wait paths deterministic and instant.
		s.SleepUntil(t)
		return
	}
	const sleepThreshold = 200_000 // cycles (~200µs wall time)
	for {
		now := r.clock.Now()
		if now >= t {
			return
		}
		if rem := t - now; rem > sleepThreshold {
			time.Sleep(time.Duration(rem-sleepThreshold/2) * time.Nanosecond)
		} else {
			runtime.Gosched()
		}
	}
}

// Yield implements env.Env.
func (r *Runtime) Yield() { runtime.Gosched() }

// Threads implements env.Env.
func (r *Runtime) Threads() int { return r.space.Threads() }
