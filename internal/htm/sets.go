package htm

import "sprwl/internal/memmodel"

// Flat, allocation-free transactional tracking structures. These replace the
// per-Tx Go maps (writes map[Addr]uint64, readSet/writeSet map[Line]struct{})
// that previously dominated the emulation hot path with hashing and bucket
// walks, and whose per-attempt clear() cost scaled with map capacity.
//
// Both structures are epoch-stamped: an entry is live only if its stamp
// equals the current epoch, so resetting for a fresh attempt is a single
// epoch increment — O(1) instead of O(capacity). On the (once per 2^32
// attempts) epoch wrap the stamp arrays are zeroed to keep stale stamps from
// aliasing the new epoch.
//
// Structures are owned by a single Tx and accessed only by its owning
// thread; conflicting threads interact through the per-line atomic metadata
// in Space, never through these.

const (
	// lineSetSlots sizes the direct-mapped stamp table of a lineSet. It is
	// a power of two comfortably above the largest effective per-thread
	// capacity a machine profile configures (Broadwell: 384 read lines),
	// so collisions — which fall back to the spill list — stay rare even
	// for capacity-bound transactions.
	lineSetSlots = 1024
	lineSetShift = 64 - 10 // log2(lineSetSlots) top bits of the hash

	// writeCacheSlots sizes the direct-mapped read-your-writes cache in
	// front of the write log. Write sets are far smaller than read sets in
	// every workload here, so a smaller table suffices.
	writeCacheSlots = 256
	writeCacheShift = 64 - 8

	// hashMult is the 64-bit golden-ratio multiplier (Fibonacci hashing);
	// the top bits of x*hashMult are well distributed even for the small
	// consecutive integers Addr and Line values typically are.
	hashMult = 0x9E3779B97F4A7C15
)

func lineSlot(l memmodel.Line) uint { return uint(uint64(l) * hashMult >> lineSetShift) }
func addrSlot(a memmodel.Addr) uint { return uint(uint64(a) * hashMult >> writeCacheShift) }

// lineSet is a set of cache lines: a direct-mapped epoch-stamped table for
// O(1) membership, a spill list for hash collisions, and an insertion-order
// member list for iteration (cleanup) and O(1) size (capacity accounting).
type lineSet struct {
	epoch   uint32
	stamps  []uint32        // stamps[i] == epoch ⇒ slot i holds slotOf[i]
	slotOf  []memmodel.Line // line occupying each live slot
	members []memmodel.Line // all members, insertion order, no duplicates
	spill   []memmodel.Line // members whose hash slot was already taken
}

func (s *lineSet) init() {
	s.epoch = 1 // stamps are zero ⇒ every slot starts empty
	s.stamps = make([]uint32, lineSetSlots)
	s.slotOf = make([]memmodel.Line, lineSetSlots)
	s.members = make([]memmodel.Line, 0, 128)
	s.spill = make([]memmodel.Line, 0, 16)
}

// contains reports membership. The common repeat-access case costs one
// stamp-word compare plus one line compare.
func (s *lineSet) contains(l memmodel.Line) bool {
	i := lineSlot(l)
	if s.stamps[i] != s.epoch {
		// Slot free: l cannot be a member — add always claims a free
		// slot before ever spilling.
		return false
	}
	if s.slotOf[i] == l {
		return true
	}
	for _, o := range s.spill {
		if o == l {
			return true
		}
	}
	return false
}

// add inserts l, which the caller has checked is not yet a member.
func (s *lineSet) add(l memmodel.Line) {
	i := lineSlot(l)
	if s.stamps[i] != s.epoch {
		s.stamps[i] = s.epoch
		s.slotOf[i] = l
	} else {
		s.spill = append(s.spill, l)
	}
	s.members = append(s.members, l)
}

func (s *lineSet) len() int { return len(s.members) }

// reset empties the set for a fresh attempt in O(1).
func (s *lineSet) reset() {
	if s.epoch == ^uint32(0) {
		clear(s.stamps)
		s.epoch = 0
	}
	s.epoch++
	s.members = s.members[:0]
	s.spill = s.spill[:0]
}

// writeLog buffers a transaction's stores as parallel addr/value slices in
// program order — commit write-back replays the log in insertion order,
// making externalization deterministic — with a direct-mapped epoch-stamped
// cache in front for O(1) read-your-writes lookups and in-place updates of
// repeated stores. A store whose cache slot was evicted by a colliding
// address appends a fresh entry instead; replay order keeps last-wins
// semantics, and lookups fall back to a newest-first log scan.
type writeLog struct {
	addrs []memmodel.Addr
	vals  []uint64

	epoch  uint32
	cstamp []uint32        // cstamp[i] == epoch ⇒ cache slot i is live
	caddr  []memmodel.Addr // cached address per slot
	cidx   []int32         // index of that address's newest log entry
}

func (w *writeLog) init() {
	w.epoch = 1
	w.addrs = make([]memmodel.Addr, 0, 64)
	w.vals = make([]uint64, 0, 64)
	w.cstamp = make([]uint32, writeCacheSlots)
	w.caddr = make([]memmodel.Addr, writeCacheSlots)
	w.cidx = make([]int32, writeCacheSlots)
}

// cached returns the buffered value of a if its cache entry is live.
func (w *writeLog) cached(a memmodel.Addr) (uint64, bool) {
	i := addrSlot(a)
	if w.cstamp[i] == w.epoch && w.caddr[i] == a {
		return w.vals[w.cidx[i]], true
	}
	return 0, false
}

// latest scans the log newest-first for a buffered value of a, refreshing
// the cache on a hit. Only reached when a's cache entry was evicted by a
// direct-mapped collision (or a was never stored).
func (w *writeLog) latest(a memmodel.Addr) (uint64, bool) {
	for j := len(w.addrs) - 1; j >= 0; j-- {
		if w.addrs[j] == a {
			i := addrSlot(a)
			w.cstamp[i] = w.epoch
			w.caddr[i] = a
			w.cidx[i] = int32(j)
			return w.vals[j], true
		}
	}
	return 0, false
}

// store buffers a write, updating in place when a's cache entry is live.
func (w *writeLog) store(a memmodel.Addr, v uint64) {
	i := addrSlot(a)
	if w.cstamp[i] == w.epoch && w.caddr[i] == a {
		w.vals[w.cidx[i]] = v
		return
	}
	w.addrs = append(w.addrs, a)
	w.vals = append(w.vals, v)
	w.cstamp[i] = w.epoch
	w.caddr[i] = a
	w.cidx[i] = int32(len(w.addrs) - 1)
}

// empty reports whether the log holds no buffered writes.
func (w *writeLog) empty() bool { return len(w.addrs) == 0 }

// reset discards all buffered writes for a fresh attempt in O(1).
func (w *writeLog) reset() {
	if w.epoch == ^uint32(0) {
		clear(w.cstamp)
		w.epoch = 0
	}
	w.epoch++
	w.addrs = w.addrs[:0]
	w.vals = w.vals[:0]
}
