package htm

import (
	"math/rand"
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// Differential test: randomized transactional schedules run through both the
// flat-set Tx implementation and refSpace, a retained map-based reference
// model of the emulation semantics (the shape of the pre-flat-set
// implementation). The driver steps ops one at a time — exactly one
// goroutine executes htm code at any instant — so every conflict resolves
// deterministically (requester wins; a doomed owner never unwinds mid-op),
// and both implementations must agree on every load value, every abort
// cause, and the final memory image.

// refSpace is the map-based reference implementation.
type refSpace struct {
	mem     []uint64
	owner   map[memmodel.Line]int // slot+1, 0/absent = unowned
	readers map[memmodel.Line]map[int]bool
	txs     []refTx
	rCap    int
	wCap    int
}

type refTx struct {
	active   bool
	doomed   bool
	cause    env.AbortCause
	rot      bool
	writes   map[memmodel.Addr]uint64
	order    []memmodel.Addr // write order, for deterministic write-back
	readSet  map[memmodel.Line]bool
	writeSet map[memmodel.Line]bool
}

func newRefSpace(slots, words, rCap, wCap int) *refSpace {
	r := &refSpace{
		mem:     make([]uint64, words),
		owner:   make(map[memmodel.Line]int),
		readers: make(map[memmodel.Line]map[int]bool),
		txs:     make([]refTx, slots),
		rCap:    rCap,
		wCap:    wCap,
	}
	for i := range r.txs {
		r.txs[i] = refTx{
			writes:   make(map[memmodel.Addr]uint64),
			readSet:  make(map[memmodel.Line]bool),
			writeSet: make(map[memmodel.Line]bool),
		}
	}
	return r
}

// doom marks slot's transaction doomed (first cause wins), mirroring
// Tx.doom under serialized stepping where the Committing window can never be
// observed mid-op.
func (r *refSpace) doom(slot int, cause env.AbortCause) {
	t := &r.txs[slot]
	if t.active && !t.doomed {
		t.doomed = true
		t.cause = cause
	}
}

// unwind releases slot's line metadata and retires the attempt, returning
// its outcome.
func (r *refSpace) unwind(slot int) env.AbortCause {
	t := &r.txs[slot]
	for l := range t.writeSet {
		delete(r.owner, l)
	}
	for l := range t.readSet {
		delete(r.readers[l], slot)
	}
	t.active = false
	if t.doomed {
		return t.cause
	}
	return env.Committed
}

func (r *refSpace) begin(slot int, rot bool) {
	t := &r.txs[slot]
	t.active, t.doomed, t.cause, t.rot = true, false, env.Committed, rot
	clear(t.writes)
	t.order = t.order[:0]
	clear(t.readSet)
	clear(t.writeSet)
}

// load models Tx.Load. ok=false means the attempt unwound; cause is then the
// outcome.
func (r *refSpace) load(slot int, a memmodel.Addr) (v uint64, cause env.AbortCause, ok bool) {
	t := &r.txs[slot]
	if t.doomed {
		return 0, r.unwind(slot), false
	}
	if v, hit := t.writes[a]; hit {
		return v, 0, true
	}
	l := memmodel.LineOf(a)
	if t.writeSet[l] {
		return r.mem[a], 0, true
	}
	if t.rot {
		if w := r.owner[l]; w != 0 && w-1 != slot {
			r.doom(w-1, env.AbortConflict)
		}
		return r.mem[a], 0, true
	}
	if !t.readSet[l] {
		if r.rCap > 0 && len(t.readSet) >= r.rCap {
			r.doom(slot, env.AbortCapacity)
			return 0, r.unwind(slot), false
		}
		if r.readers[l] == nil {
			r.readers[l] = make(map[int]bool)
		}
		r.readers[l][slot] = true
		t.readSet[l] = true
		if w := r.owner[l]; w != 0 && w-1 != slot {
			r.doom(w-1, env.AbortConflict)
		}
	}
	return r.mem[a], 0, true
}

// store models Tx.Store. ok=false means the attempt unwound.
func (r *refSpace) store(slot int, a memmodel.Addr, v uint64) (cause env.AbortCause, ok bool) {
	t := &r.txs[slot]
	if t.doomed {
		return r.unwind(slot), false
	}
	l := memmodel.LineOf(a)
	if !t.writeSet[l] {
		if r.wCap > 0 && len(t.writeSet) >= r.wCap {
			r.doom(slot, env.AbortCapacity)
			return r.unwind(slot), false
		}
		if w := r.owner[l]; w != 0 && w-1 != slot {
			// A doomed-but-unreleased owner cannot release its line
			// while we hold the token: the bounded poll in
			// acquireLine expires and the requester aborts.
			r.doom(w-1, env.AbortConflict)
			r.doom(slot, env.AbortConflict)
			return r.unwind(slot), false
		}
		if r.owner[l] == 0 {
			r.owner[l] = slot + 1
			for rd := range r.readers[l] {
				if rd != slot {
					r.doom(rd, env.AbortConflict)
				}
			}
		}
		t.writeSet[l] = true
	}
	if _, seen := t.writes[a]; !seen {
		t.order = append(t.order, a)
	}
	t.writes[a] = v
	return 0, true
}

// abort models Tx.Abort: an earlier doom cause, if any, wins.
func (r *refSpace) abort(slot int) env.AbortCause {
	r.doom(slot, env.AbortExplicit)
	return r.unwind(slot)
}

// commit models Tx.commit.
func (r *refSpace) commit(slot int) env.AbortCause {
	t := &r.txs[slot]
	if !t.doomed {
		for _, a := range t.order {
			r.mem[a] = t.writes[a]
		}
	}
	return r.unwind(slot)
}

// Uninstrumented strong-isolation operations.

func (r *refSpace) uload(a memmodel.Addr) uint64 {
	if w := r.owner[memmodel.LineOf(a)]; w != 0 {
		r.doom(w-1, env.AbortConflict)
	}
	return r.mem[a]
}

func (r *refSpace) doomLineUsers(l memmodel.Line) {
	if w := r.owner[l]; w != 0 {
		r.doom(w-1, env.AbortConflict)
	}
	for rd := range r.readers[l] {
		r.doom(rd, env.AbortConflict)
	}
}

func (r *refSpace) ustore(a memmodel.Addr, v uint64) {
	l := memmodel.LineOf(a)
	if w := r.owner[l]; w != 0 {
		r.doom(w-1, env.AbortConflict)
	}
	r.mem[a] = v
	r.doomLineUsers(l)
}

func (r *refSpace) ucas(a memmodel.Addr, old, new uint64) bool {
	l := memmodel.LineOf(a)
	if w := r.owner[l]; w != 0 {
		r.doom(w-1, env.AbortConflict)
	}
	if r.mem[a] != old {
		return false
	}
	r.mem[a] = new
	r.doomLineUsers(l)
	return true
}

// Schedule events.

type diffOpKind int

const (
	opBegin diffOpKind = iota
	opLoad
	opStore
	opAbort
	opCommit
	opULoad
	opUStore
	opUCAS
)

type diffOp struct {
	kind diffOpKind
	slot int
	rot  bool
	addr memmodel.Addr
	val  uint64
}

// slotDriver feeds ops into one slot's Attempt bodies running on a dedicated
// goroutine. The driver owns the token: it sends one op and waits for either
// the op's reply or the attempt's outcome (when the op unwound the body).
type slotDriver struct {
	ops     chan diffOp
	replies chan uint64
	outcome chan env.AbortCause
}

func startSlotDriver(s *Space, slot int) *slotDriver {
	d := &slotDriver{
		ops:     make(chan diffOp),
		replies: make(chan uint64),
		outcome: make(chan env.AbortCause),
	}
	go func() {
		for op := range d.ops { // each received op here is opBegin
			rot := op.rot
			cause := s.Attempt(slot, env.TxOpts{ROT: rot}, func(tx env.TxAccessor) {
				d.replies <- 0 // body entered
				for {
					op := <-d.ops
					switch op.kind {
					case opLoad:
						d.replies <- tx.Load(op.addr)
					case opStore:
						tx.Store(op.addr, op.val)
						d.replies <- 0
					case opAbort:
						tx.Abort(env.AbortExplicit)
					case opCommit:
						return
					}
				}
			})
			d.outcome <- cause
		}
	}()
	return d
}

// runDiffSchedule executes one schedule against both implementations and
// fails the test on any divergence.
func runDiffSchedule(t *testing.T, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))

	slots := 2 + rng.Intn(3)
	const lines = 8
	words := lines * memmodel.LineWords
	var rCap, wCap int
	if rng.Intn(2) == 0 {
		rCap = 2 + rng.Intn(3)
		wCap = 1 + rng.Intn(3)
	}

	space := MustNewSpace(Config{
		Threads:            slots,
		Words:              words,
		ReadCapacityLines:  rCap,
		WriteCapacityLines: wCap,
	})
	ref := newRefSpace(slots, words, rCap, wCap)

	drivers := make([]*slotDriver, slots)
	for i := range drivers {
		drivers[i] = startSlotDriver(space, i)
	}
	defer func() {
		for _, d := range drivers {
			close(d.ops)
		}
	}()

	// inBody[i]: the real body goroutine is parked inside an attempt.
	// dead[i]: the attempt unwound early; skip its remaining ops up to and
	// including its commit/abort event.
	inBody := make([]bool, slots)
	dead := make([]bool, slots)

	randAddr := func() memmodel.Addr { return memmodel.Addr(rng.Intn(words)) }

	// step sends one in-attempt op and reconciles both implementations.
	step := func(op diffOp) {
		d := drivers[op.slot]
		if dead[op.slot] {
			if op.kind == opCommit || op.kind == opAbort {
				dead[op.slot] = false
			}
			return
		}
		switch op.kind {
		case opBegin:
			d.ops <- op
			<-d.replies
			ref.begin(op.slot, op.rot)
			inBody[op.slot] = true
		case opLoad:
			d.ops <- op
			select {
			case v := <-d.replies:
				rv, _, ok := ref.load(op.slot, op.addr)
				if !ok {
					t.Fatalf("seed %d: slot %d load(%d): real survived, reference unwound", seed, op.slot, op.addr)
				}
				if v != rv {
					t.Fatalf("seed %d: slot %d load(%d): real %d, reference %d", seed, op.slot, op.addr, v, rv)
				}
			case c := <-d.outcome:
				_, rc, ok := ref.load(op.slot, op.addr)
				if ok {
					t.Fatalf("seed %d: slot %d load(%d): real unwound (%v), reference survived", seed, op.slot, op.addr, c)
				}
				if c != rc {
					t.Fatalf("seed %d: slot %d load(%d): abort cause real %v, reference %v", seed, op.slot, op.addr, c, rc)
				}
				inBody[op.slot] = false
				dead[op.slot] = true
			}
		case opStore:
			d.ops <- op
			select {
			case <-d.replies:
				if _, ok := ref.store(op.slot, op.addr, op.val); !ok {
					t.Fatalf("seed %d: slot %d store(%d): real survived, reference unwound", seed, op.slot, op.addr)
				}
			case c := <-d.outcome:
				rc, ok := ref.store(op.slot, op.addr, op.val)
				if ok {
					t.Fatalf("seed %d: slot %d store(%d): real unwound (%v), reference survived", seed, op.slot, op.addr, c)
				}
				if c != rc {
					t.Fatalf("seed %d: slot %d store(%d): abort cause real %v, reference %v", seed, op.slot, op.addr, c, rc)
				}
				inBody[op.slot] = false
				dead[op.slot] = true
			}
		case opAbort:
			d.ops <- op
			c := <-d.outcome
			rc := ref.abort(op.slot)
			if c != rc {
				t.Fatalf("seed %d: slot %d abort: cause real %v, reference %v", seed, op.slot, c, rc)
			}
			inBody[op.slot] = false
		case opCommit:
			d.ops <- op
			c := <-d.outcome
			rc := ref.commit(op.slot)
			if c != rc {
				t.Fatalf("seed %d: slot %d commit: outcome real %v, reference %v", seed, op.slot, c, rc)
			}
			inBody[op.slot] = false
		}
	}

	active := func(slot int) bool { return inBody[slot] || dead[slot] }

	steps := 60 + rng.Intn(120)
	for i := 0; i < steps; i++ {
		if rng.Intn(10) < 7 {
			slot := rng.Intn(slots)
			if !active(slot) {
				step(diffOp{kind: opBegin, slot: slot, rot: rng.Intn(4) == 0})
				continue
			}
			switch r := rng.Intn(10); {
			case r < 4:
				step(diffOp{kind: opLoad, slot: slot, addr: randAddr()})
			case r < 8:
				step(diffOp{kind: opStore, slot: slot, addr: randAddr(), val: rng.Uint64() % 1000})
			case r < 9:
				step(diffOp{kind: opCommit, slot: slot})
			default:
				step(diffOp{kind: opAbort, slot: slot})
			}
		} else {
			// Uninstrumented op from outside any transaction; every
			// slot goroutine is parked, so the driver may call the
			// Space directly.
			a := randAddr()
			switch rng.Intn(3) {
			case 0:
				v := space.Load(a)
				if rv := ref.uload(a); v != rv {
					t.Fatalf("seed %d: uninstrumented load(%d): real %d, reference %d", seed, a, v, rv)
				}
			case 1:
				v := rng.Uint64() % 1000
				space.Store(a, v)
				ref.ustore(a, v)
			default:
				old := ref.mem[a] // bias towards successful CAS
				if rng.Intn(3) == 0 {
					old++
				}
				new := rng.Uint64() % 1000
				got := space.CAS(a, old, new)
				want := ref.ucas(a, old, new)
				if got != want {
					t.Fatalf("seed %d: uninstrumented CAS(%d): real %v, reference %v", seed, a, got, want)
				}
			}
		}
	}

	// Retire every in-flight attempt and compare outcomes.
	for slot := 0; slot < slots; slot++ {
		if active(slot) {
			step(diffOp{kind: opCommit, slot: slot})
		}
	}

	// Final memory must be identical word-for-word.
	for a := 0; a < words; a++ {
		if got, want := space.Load(memmodel.Addr(a)), ref.mem[a]; got != want {
			t.Fatalf("seed %d: final memory[%d]: real %d, reference %d", seed, a, got, want)
		}
	}
}

// TestDifferentialSchedules cross-checks the flat-set transaction tracking
// against the map-based reference model over many randomized interleaved
// schedules. Runs in the race-enabled short-mode CI job with a reduced
// schedule count.
func TestDifferentialSchedules(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 80
	}
	for seed := int64(1); seed <= int64(n); seed++ {
		runDiffSchedule(t, seed)
	}
}
