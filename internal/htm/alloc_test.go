package htm

import (
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// TestAttemptDoesNotAllocate pins the steady-state allocation contract for
// the emulation fast path (DESIGN.md "Emulation data structures"): after
// the first attempt has grown the read/write sets to their working size, a
// whole begin/body/commit cycle — including Tx.Load and Tx.Store — must
// not heap-allocate. The hotpathalloc analyzer enforces this statically on
// Tx.Load/Tx.Store/Space.Attempt; this test is the dynamic backstop that
// also covers the set re-use the analyzer deliberately allows.
func TestAttemptDoesNotAllocate(t *testing.T) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	body := func(tx env.TxAccessor) {
		for i := 0; i < 64; i++ {
			tx.Store(memmodel.Addr(i), tx.Load(memmodel.Addr(i))+1)
		}
	}
	// Warm up: grow the line sets and write log to their working size.
	for i := 0; i < 4; i++ {
		if c := s.Attempt(0, env.TxOpts{}, body); c != env.Committed {
			t.Fatalf("warm-up attempt %d: %v", i, c)
		}
	}
	avg := testing.AllocsPerRun(100, func() {
		if c := s.Attempt(0, env.TxOpts{}, body); c != env.Committed {
			t.Fatalf("attempt aborted: %v", c)
		}
	})
	if avg != 0 {
		t.Fatalf("Attempt allocated %.2f objects per run, want 0", avg)
	}
}

// TestTxLoadStoreRepeatAccessDoesNotAllocate measures the in-transaction
// repeat-access paths in isolation: loads and stores to lines already in
// the transaction's sets must be pure lookups and in-place updates.
func TestTxLoadStoreRepeatAccessDoesNotAllocate(t *testing.T) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	var sink uint64
	body := func(tx env.TxAccessor) {
		for i := 0; i < 32; i++ {
			tx.Store(memmodel.Addr(i), uint64(i))
		}
		for r := 0; r < 8; r++ {
			for i := 0; i < 32; i++ {
				sink += tx.Load(memmodel.Addr(i))
			}
		}
	}
	if c := s.Attempt(0, env.TxOpts{}, body); c != env.Committed {
		t.Fatalf("warm-up attempt: %v", c)
	}
	avg := testing.AllocsPerRun(50, func() {
		if c := s.Attempt(0, env.TxOpts{}, body); c != env.Committed {
			t.Fatalf("attempt aborted: %v", c)
		}
	})
	_ = sink
	if avg != 0 {
		t.Fatalf("Tx load/store allocated %.2f objects per run, want 0", avg)
	}
}
