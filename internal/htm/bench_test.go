package htm

import (
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// Microbenchmarks for the emulation hot path. Every benchmark reports
// allocations: the transactional data structures are required to be
// allocation-free in steady state (see DESIGN.md "Emulation data
// structures"), so allocs/op must read 0.

// BenchmarkTxLoad measures the repeat-access transactional load path: after
// the first touch of each line the load should cost one membership check
// plus one atomic word read.
func BenchmarkTxLoad(b *testing.B) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < b.N; i++ {
			sink += tx.Load(memmodel.Addr(i & 255))
		}
	})
	_ = sink
}

// BenchmarkTxStore measures the repeat-access transactional store path:
// after the first store to each word, subsequent stores update the buffered
// value in place.
func BenchmarkTxStore(b *testing.B) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < b.N; i++ {
			tx.Store(memmodel.Addr(i&63), uint64(i))
		}
	})
}

// BenchmarkTxReadYourWrite measures loads that hit the transaction's own
// buffered writes (the write-lookup fast path).
func BenchmarkTxReadYourWrite(b *testing.B) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < 64; i++ {
			tx.Store(memmodel.Addr(i), uint64(i))
		}
		for i := 0; i < b.N; i++ {
			sink += tx.Load(memmodel.Addr(i & 63))
		}
	})
	_ = sink
}

// BenchmarkAttemptEmpty measures the begin/commit overhead of one hardware
// attempt with an empty body — the cost every critical section pays before
// doing any work.
func BenchmarkAttemptEmpty(b *testing.B) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	body := func(tx env.TxAccessor) {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Attempt(0, env.TxOpts{}, body)
	}
}

// BenchmarkAttemptSmallTx measures a whole minimal read-modify-write
// transaction including begin and write-back.
func BenchmarkAttemptSmallTx(b *testing.B) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	body := func(tx env.TxAccessor) { tx.Store(0, tx.Load(0)+1) }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Attempt(0, env.TxOpts{}, body)
	}
}

// BenchmarkUninstrumentedLoad measures the non-transactional strong-isolation
// load path.
func BenchmarkUninstrumentedLoad(b *testing.B) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += s.Load(memmodel.Addr(i & 511))
	}
	_ = sink
}

// BenchmarkUninstrumentedStore measures the non-transactional
// strong-isolation store path.
func BenchmarkUninstrumentedStore(b *testing.B) {
	s := MustNewSpace(Config{Threads: 1, Words: 1 << 12})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Store(memmodel.Addr(i&511), uint64(i))
	}
}
