// Package htm emulates best-effort hardware transactional memory over a
// simulated word-addressable address space.
//
// Go has no HTM intrinsics and this reproduction runs on hardware without
// TSX/POWER-HTM, so the paper's hardware substrate is replaced by a software
// emulation that implements exactly the semantics SpRWL's correctness
// argument relies on (paper §1, §3.3):
//
//   - Buffered writes: a transaction's stores are invisible to every other
//     thread until commit, at which point they are externalized atomically.
//   - Eager conflict detection, requester wins: an access that hits a line
//     owned by another active transaction dooms that transaction
//     immediately, mirroring invalidation-based coherence.
//   - Strong isolation: uninstrumented (non-transactional) stores doom any
//     transaction holding the line in its read or write set, and
//     uninstrumented loads doom any transaction that has written the line.
//   - Best-effort capacity: per-slot read/write footprint limits modelled on
//     the paper's Broadwell and POWER8 machines; exceeding them aborts with
//     a capacity cause that callers treat as "do not retry in hardware".
//   - Rollback-only transactions (ROTs, POWER8): loads are untracked — no
//     read capacity, no conflict aborts for the reader side — while stores
//     keep full write-set semantics. Suspended sections model POWER8's
//     suspend/resume. Both are needed only by the RW-LE baseline.
//
// The implementation keeps two atomic metadata words per 64-byte line: a
// bitmask of transaction slots that hold the line in their read set, and the
// owner slot of the (single) transaction that has written it. All conflict
// handshakes are ordered so that detection is never missed: writers publish
// ownership before checking readers, readers publish their read bit before
// loading, and uninstrumented stores write memory before scanning metadata.
// A committing transaction first moves to a Committing state that wins every
// subsequent doom race, then writes back, then releases its lines — which
// makes externalization atomic from the point of view of both transactional
// and uninstrumented code.
package htm

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync/atomic"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// MaxThreads is the maximum number of thread slots per Space, bounded by the
// width of the per-line reader bitmask.
const MaxThreads = 64

// Config sizes a Space and sets its default best-effort limits.
type Config struct {
	// Threads is the number of thread slots (1..MaxThreads). Every
	// transactional attempt names one of these slots; a slot may run at
	// most one transaction at a time.
	Threads int

	// Words is the size of the address space in 64-bit words. It is
	// rounded up to a whole number of cache lines.
	Words int

	// ReadCapacityLines and WriteCapacityLines bound the number of
	// distinct cache lines a transaction may read and write. Zero means
	// "use the profile default" when the Space is built from a Profile,
	// or unlimited otherwise.
	ReadCapacityLines  int
	WriteCapacityLines int

	// SpuriousEvery, when non-zero, dooms the transaction performing
	// every SpuriousEvery-th transactional access with AbortSpurious.
	// It models timer interrupts and context switches, and is used by
	// failure-injection tests.
	SpuriousEvery uint64
}

// lineMeta is the per-cache-line conflict-detection metadata.
type lineMeta struct {
	// readers is a bitmask of transaction slots holding this line in
	// their read set.
	readers atomic.Uint64
	// writer is slot+1 of the transaction that has written this line, or
	// zero when the line is transactionally unowned.
	writer atomic.Uint64
}

type capPair struct {
	read, write int
}

// Space is a simulated shared address space with HTM semantics.
type Space struct {
	cfg     Config
	words   []uint64
	lines   []lineMeta
	txs     []Tx
	caps    []capPair
	spurCtr atomic.Uint64
}

var _ memmodel.Space = (*Space)(nil)

// NewSpace builds a Space for cfg.
func NewSpace(cfg Config) (*Space, error) {
	if cfg.Threads <= 0 || cfg.Threads > MaxThreads {
		return nil, fmt.Errorf("htm: Threads must be in [1,%d], got %d", MaxThreads, cfg.Threads)
	}
	if cfg.Words <= 0 {
		return nil, errors.New("htm: Words must be positive")
	}
	if cfg.ReadCapacityLines < 0 || cfg.WriteCapacityLines < 0 {
		return nil, errors.New("htm: capacities must be non-negative")
	}
	nwords := (cfg.Words + memmodel.LineWords - 1) / memmodel.LineWords * memmodel.LineWords
	s := &Space{
		cfg:   cfg,
		words: make([]uint64, nwords),
		lines: make([]lineMeta, nwords/memmodel.LineWords),
		txs:   make([]Tx, cfg.Threads),
		caps:  make([]capPair, cfg.Threads),
	}
	for i := range s.txs {
		tx := &s.txs[i]
		tx.space = s
		tx.slot = i
		tx.mask = uint64(1) << uint(i)
		tx.log.init()
		tx.readSet.init()
		tx.writeSet.init()
	}
	for i := range s.caps {
		s.caps[i] = capPair{read: cfg.ReadCapacityLines, write: cfg.WriteCapacityLines}
	}
	return s, nil
}

// MustNewSpace is NewSpace for static configurations; it panics on error.
func MustNewSpace(cfg Config) *Space {
	s, err := NewSpace(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// Size returns the number of words in the space.
func (s *Space) Size() memmodel.Addr { return memmodel.Addr(len(s.words)) }

// Threads returns the number of thread slots.
func (s *Space) Threads() int { return s.cfg.Threads }

// SetSlotCapacity overrides the read/write capacity (in distinct cache
// lines) for one slot. Zero means unlimited. The paper's POWER8 machine
// shares transactional capacity among SMT threads on a core; the simulator
// uses this to model that sharing as threads are added.
func (s *Space) SetSlotCapacity(slot, readLines, writeLines int) {
	s.caps[slot] = capPair{read: readLines, write: writeLines}
}

// word returns a pointer to the storage word for a, bounds-checked by the
// slice access.
func (s *Space) word(a memmodel.Addr) *uint64 { return &s.words[a] }

func (s *Space) line(l memmodel.Line) *lineMeta { return &s.lines[l] }

// Load reads a word uninstrumented, with strong isolation: if the line has
// been written by an active transaction, that transaction is doomed (as a
// remote read of a modified line would abort it in hardware); if the writer
// is already committing, Load waits for write-back to finish so that it
// never observes a torn commit.
func (s *Space) Load(a memmodel.Addr) uint64 {
	for {
		v := atomic.LoadUint64(s.word(a))
		lm := s.line(memmodel.LineOf(a))
		w := lm.writer.Load()
		if w == 0 {
			return v
		}
		owner := &s.txs[w-1]
		if owner.doom(env.AbortConflict) {
			// The owner was active and is now doomed; it will not
			// commit, so the value we read (its writes were
			// buffered) is the committed state.
			return v
		}
		// The owner won the race to commit (or is mid-cleanup): wait
		// for it to release the line, then re-read the committed
		// value.
		for lm.writer.Load() == w {
			runtime.Gosched()
		}
	}
}

// Store writes a word uninstrumented, with strong isolation: any active
// transaction holding the line in its read or write set is doomed. The
// handshake order (publish the value, then scan metadata) pairs with the
// transactional order (publish metadata, then access) so that a conflicting
// transaction is always either doomed here or observes the new value.
func (s *Space) Store(a memmodel.Addr, v uint64) {
	s.waitWriterRelease(a)
	atomic.StoreUint64(s.word(a), v)
	s.doomLineUsers(memmodel.LineOf(a))
}

// CAS atomically compares-and-swaps a word uninstrumented. A successful CAS
// has Store's strong-isolation semantics; a failed CAS has Load's.
func (s *Space) CAS(a memmodel.Addr, old, new uint64) bool {
	s.waitWriterRelease(a)
	if !atomic.CompareAndSwapUint64(s.word(a), old, new) {
		return false
	}
	s.doomLineUsers(memmodel.LineOf(a))
	return true
}

// Add atomically adds d to a word uninstrumented, returning the new value,
// with Store's strong-isolation semantics.
func (s *Space) Add(a memmodel.Addr, d uint64) uint64 {
	s.waitWriterRelease(a)
	v := atomic.AddUint64(s.word(a), d)
	s.doomLineUsers(memmodel.LineOf(a))
	return v
}

// waitWriterRelease waits until the line holding a is not owned by a
// committing transaction, dooming an active owner if there is one. After it
// returns, any transaction that subsequently writes the line will observe
// the caller's update during its own conflict handshake.
func (s *Space) waitWriterRelease(a memmodel.Addr) {
	lm := s.line(memmodel.LineOf(a))
	for {
		w := lm.writer.Load()
		if w == 0 {
			return
		}
		owner := &s.txs[w-1]
		if owner.doom(env.AbortConflict) {
			return
		}
		for lm.writer.Load() == w {
			runtime.Gosched()
		}
	}
}

// doomLineUsers dooms every active transaction that holds line l in its
// read or write set. Transactions that already reached their commit point
// are left alone: they serialize before the caller's store.
func (s *Space) doomLineUsers(l memmodel.Line) {
	lm := s.line(l)
	if w := lm.writer.Load(); w != 0 {
		s.txs[w-1].doom(env.AbortConflict)
	}
	s.doomSlots(lm.readers.Load(), env.AbortConflict)
}

// doomSlots dooms every transaction whose slot bit is set in mask.
func (s *Space) doomSlots(mask uint64, cause env.AbortCause) {
	for mask != 0 {
		slot := bits.TrailingZeros64(mask)
		mask &^= uint64(1) << uint(slot)
		s.txs[slot].doom(cause)
	}
}
