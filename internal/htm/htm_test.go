package htm

import (
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

func newTestSpace(t *testing.T, cfg Config) *Space {
	t.Helper()
	if cfg.Threads == 0 {
		cfg.Threads = 4
	}
	if cfg.Words == 0 {
		cfg.Words = 1 << 12
	}
	s, err := NewSpace(cfg)
	if err != nil {
		t.Fatalf("NewSpace(%+v): %v", cfg, err)
	}
	return s
}

func TestNewSpaceValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{"zero threads", Config{Threads: 0, Words: 64}},
		{"too many threads", Config{Threads: MaxThreads + 1, Words: 64}},
		{"zero words", Config{Threads: 1, Words: 0}},
		{"negative read capacity", Config{Threads: 1, Words: 64, ReadCapacityLines: -1}},
		{"negative write capacity", Config{Threads: 1, Words: 64, WriteCapacityLines: -1}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := NewSpace(tt.cfg); err == nil {
				t.Fatalf("NewSpace(%+v) succeeded, want error", tt.cfg)
			}
		})
	}
}

func TestSpaceRoundsUpToWholeLines(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 1, Words: memmodel.LineWords + 1})
	if got, want := s.Size(), memmodel.Addr(2*memmodel.LineWords); got != want {
		t.Fatalf("Size() = %d, want %d", got, want)
	}
}

func TestUninstrumentedLoadStore(t *testing.T) {
	s := newTestSpace(t, Config{})
	s.Store(3, 42)
	if got := s.Load(3); got != 42 {
		t.Fatalf("Load(3) = %d, want 42", got)
	}
	if got := s.Load(4); got != 0 {
		t.Fatalf("Load(4) = %d, want 0 (untouched word)", got)
	}
}

func TestUninstrumentedCAS(t *testing.T) {
	s := newTestSpace(t, Config{})
	s.Store(0, 7)
	if s.CAS(0, 8, 9) {
		t.Fatal("CAS(0, 8, 9) succeeded with current value 7")
	}
	if !s.CAS(0, 7, 9) {
		t.Fatal("CAS(0, 7, 9) failed with current value 7")
	}
	if got := s.Load(0); got != 9 {
		t.Fatalf("Load(0) = %d after CAS, want 9", got)
	}
}

func TestUninstrumentedAdd(t *testing.T) {
	s := newTestSpace(t, Config{})
	if got := s.Add(5, 3); got != 3 {
		t.Fatalf("Add(5, 3) = %d, want 3", got)
	}
	if got := s.Add(5, ^uint64(0)); got != 2 { // add -1
		t.Fatalf("Add(5, -1) = %d, want 2", got)
	}
}

func TestTxCommitExternalizesWrites(t *testing.T) {
	s := newTestSpace(t, Config{})
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		tx.Store(0, 1)
		tx.Store(100, 2)
		// Buffered writes must be invisible before commit.
		if got := s.Load(200); got != 0 {
			t.Errorf("unrelated word changed mid-transaction: %d", got)
		}
	})
	if cause != env.Committed {
		t.Fatalf("Attempt = %v, want Committed", cause)
	}
	if got := s.Load(0); got != 1 {
		t.Fatalf("Load(0) = %d after commit, want 1", got)
	}
	if got := s.Load(100); got != 2 {
		t.Fatalf("Load(100) = %d after commit, want 2", got)
	}
}

func TestTxReadsOwnWrites(t *testing.T) {
	s := newTestSpace(t, Config{})
	s.Store(0, 10)
	s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		if got := tx.Load(0); got != 10 {
			t.Errorf("tx.Load(0) = %d before write, want 10", got)
		}
		tx.Store(0, 11)
		if got := tx.Load(0); got != 11 {
			t.Errorf("tx.Load(0) = %d after own write, want 11", got)
		}
		// A different word on the same (written) line still reads from
		// memory.
		if got := tx.Load(1); got != 0 {
			t.Errorf("tx.Load(1) = %d, want 0", got)
		}
	})
}

func TestExplicitAbortDiscardsWrites(t *testing.T) {
	s := newTestSpace(t, Config{})
	s.Store(0, 5)
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		tx.Store(0, 99)
		tx.Abort(env.AbortExplicit)
		t.Error("body continued past Abort")
	})
	if cause != env.AbortExplicit {
		t.Fatalf("Attempt = %v, want AbortExplicit", cause)
	}
	if got := s.Load(0); got != 5 {
		t.Fatalf("Load(0) = %d after abort, want 5", got)
	}
}

func TestReadCapacityAbort(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 1, Words: 1 << 12, ReadCapacityLines: 4})
	var reads int
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < 8; i++ {
			tx.Load(memmodel.Addr(i * memmodel.LineWords))
			reads++
		}
	})
	if cause != env.AbortCapacity {
		t.Fatalf("Attempt = %v, want AbortCapacity", cause)
	}
	if reads != 4 {
		t.Fatalf("performed %d line reads before capacity abort, want 4", reads)
	}
}

func TestWriteCapacityAbort(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 1, Words: 1 << 12, WriteCapacityLines: 2})
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < 4; i++ {
			tx.Store(memmodel.Addr(i*memmodel.LineWords), 1)
		}
	})
	if cause != env.AbortCapacity {
		t.Fatalf("Attempt = %v, want AbortCapacity", cause)
	}
	for i := 0; i < 4; i++ {
		if got := s.Load(memmodel.Addr(i * memmodel.LineWords)); got != 0 {
			t.Fatalf("word %d = %d after capacity abort, want 0", i, got)
		}
	}
}

func TestSlotCapacityOverride(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 2, Words: 1 << 12, ReadCapacityLines: 100})
	s.SetSlotCapacity(1, 2, 2)
	cause := s.Attempt(1, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < 3; i++ {
			tx.Load(memmodel.Addr(i * memmodel.LineWords))
		}
	})
	if cause != env.AbortCapacity {
		t.Fatalf("Attempt on capped slot = %v, want AbortCapacity", cause)
	}
	cause = s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < 3; i++ {
			tx.Load(memmodel.Addr(i * memmodel.LineWords))
		}
	})
	if cause != env.Committed {
		t.Fatalf("Attempt on uncapped slot = %v, want Committed", cause)
	}
}

func TestRepeatedLineAccessDoesNotConsumeCapacity(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 1, Words: 1 << 12, ReadCapacityLines: 1, WriteCapacityLines: 1})
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		for i := 0; i < 100; i++ {
			tx.Load(memmodel.Addr(i % memmodel.LineWords))
		}
		for i := 0; i < 100; i++ {
			tx.Store(memmodel.Addr(memmodel.LineWords+i%memmodel.LineWords), uint64(i))
		}
	})
	if cause != env.Committed {
		t.Fatalf("Attempt = %v, want Committed", cause)
	}
}

// TestStrongIsolationStoreDoomsReader reproduces the mechanism of paper
// Fig. 1: an uninstrumented store to a line in a transaction's read set
// dooms the transaction before it can commit.
func TestStrongIsolationStoreDoomsReader(t *testing.T) {
	s := newTestSpace(t, Config{})
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		_ = tx.Load(0)
		// Simulate a concurrent thread's uninstrumented store to the
		// line we read.
		s.Store(1, 7) // same line as word 0
		tx.Store(100, 1)
		t.Error("transaction survived an uninstrumented store to its read set")
	})
	if cause != env.AbortConflict {
		t.Fatalf("Attempt = %v, want AbortConflict", cause)
	}
	if got := s.Load(100); got != 0 {
		t.Fatalf("doomed transaction externalized a write: %d", got)
	}
}

// TestStrongIsolationLoadDoomsWriter checks that an uninstrumented load of a
// transactionally-written line dooms the writer and observes the pre-commit
// value (the remote-read-aborts-M-line behaviour of real HTM).
func TestStrongIsolationLoadDoomsWriter(t *testing.T) {
	s := newTestSpace(t, Config{})
	s.Store(0, 1)
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		tx.Store(0, 2)
		if got := s.Load(0); got != 1 {
			t.Errorf("uninstrumented Load = %d during transaction, want pre-transaction value 1", got)
		}
		_ = tx.Load(50) // next transactional access unwinds
		t.Error("transaction survived an uninstrumented load of its write set")
	})
	if cause != env.AbortConflict {
		t.Fatalf("Attempt = %v, want AbortConflict", cause)
	}
	if got := s.Load(0); got != 1 {
		t.Fatalf("Load(0) = %d, want 1", got)
	}
}

// TestStrongIsolationCASDoomsReader checks that a successful uninstrumented
// CAS has store semantics with respect to transactional readers.
func TestStrongIsolationCASDoomsReader(t *testing.T) {
	s := newTestSpace(t, Config{})
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		_ = tx.Load(0)
		if !s.CAS(0, 0, 3) {
			t.Error("CAS failed unexpectedly")
		}
		_ = tx.Load(0)
		t.Error("transaction survived a CAS to its read set")
	})
	if cause != env.AbortConflict {
		t.Fatalf("Attempt = %v, want AbortConflict", cause)
	}
}

func TestAbortedReportsDoomWithoutUnwinding(t *testing.T) {
	s := newTestSpace(t, Config{})
	sawDoom := false
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		_ = tx.Load(0)
		if tx.Aborted() {
			t.Error("Aborted() true before any conflict")
		}
		s.Store(0, 1)
		sawDoom = tx.Aborted()
		tx.Abort(env.AbortExplicit) // unwind manually; doom cause must win
	})
	if !sawDoom {
		t.Fatal("Aborted() did not observe the doom")
	}
	if cause != env.AbortConflict {
		t.Fatalf("Attempt = %v, want the original AbortConflict to be preserved", cause)
	}
}

// TestROTLoadsAreUntracked verifies POWER8 rollback-only semantics: loads
// consume no read capacity and a subsequent uninstrumented store to a
// ROT-read line does not abort the ROT (this is the hole RW-LE must close
// with quiescence).
func TestROTLoadsAreUntracked(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 1, Words: 1 << 12, ReadCapacityLines: 2})
	cause := s.Attempt(0, env.TxOpts{ROT: true}, func(tx env.TxAccessor) {
		for i := 0; i < 16; i++ { // far beyond read capacity
			_ = tx.Load(memmodel.Addr(i * memmodel.LineWords))
		}
		s.Store(0, 9) // store to a ROT-read line: must NOT doom
		tx.Store(200, 1)
	})
	if cause != env.Committed {
		t.Fatalf("ROT Attempt = %v, want Committed", cause)
	}
	if got := s.Load(200); got != 1 {
		t.Fatalf("Load(200) = %d, want 1", got)
	}
}

func TestROTStoresStillConflict(t *testing.T) {
	s := newTestSpace(t, Config{})
	cause := s.Attempt(0, env.TxOpts{ROT: true}, func(tx env.TxAccessor) {
		tx.Store(0, 5)
		if got := s.Load(0); got != 0 {
			t.Errorf("uninstrumented Load = %d, want pre-ROT value 0", got)
		}
		tx.Store(8, 1) // next access unwinds
		t.Error("ROT survived an uninstrumented load of its write set")
	})
	if cause != env.AbortConflict {
		t.Fatalf("Attempt = %v, want AbortConflict", cause)
	}
}

func TestROTWriteCapacity(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 1, Words: 1 << 12, WriteCapacityLines: 2})
	cause := s.Attempt(0, env.TxOpts{ROT: true}, func(tx env.TxAccessor) {
		for i := 0; i < 4; i++ {
			tx.Store(memmodel.Addr(i*memmodel.LineWords), 1)
		}
	})
	if cause != env.AbortCapacity {
		t.Fatalf("Attempt = %v, want AbortCapacity", cause)
	}
}

func TestSuspendReadsPreTransactionalValues(t *testing.T) {
	s := newTestSpace(t, Config{})
	s.Store(0, 1)
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		tx.Store(0, 2)
		alive := tx.Suspend(func() {
			if got := tx.Load(0); got != 1 {
				t.Errorf("suspended Load(0) = %d, want pre-transactional 1", got)
			}
		})
		if !alive {
			t.Error("Suspend reported doom without a conflict")
		}
	})
	if cause != env.Committed {
		t.Fatalf("Attempt = %v, want Committed", cause)
	}
	if got := s.Load(0); got != 2 {
		t.Fatalf("Load(0) = %d after commit, want 2", got)
	}
}

func TestSuspendObservesDoom(t *testing.T) {
	s := newTestSpace(t, Config{})
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		tx.Store(0, 2)
		alive := tx.Suspend(func() {
			s.Store(0, 3) // conflicting uninstrumented store dooms us
		})
		if alive {
			t.Error("Suspend reported alive after a conflicting store")
		}
	})
	if cause != env.AbortConflict {
		t.Fatalf("Attempt = %v, want AbortConflict", cause)
	}
	if got := s.Load(0); got != 3 {
		t.Fatalf("Load(0) = %d, want the uninstrumented store's 3", got)
	}
}

func TestSpuriousAbortInjection(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 1, Words: 1 << 10, SpuriousEvery: 5})
	var aborts, commits int
	for i := 0; i < 20; i++ {
		cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
			for j := 0; j < 3; j++ {
				_ = tx.Load(memmodel.Addr(j * memmodel.LineWords))
			}
		})
		switch cause {
		case env.Committed:
			commits++
		case env.AbortSpurious:
			aborts++
		default:
			t.Fatalf("unexpected cause %v", cause)
		}
	}
	if aborts == 0 {
		t.Fatal("spurious-abort injection never fired")
	}
	if commits == 0 {
		t.Fatal("every attempt aborted; injection too aggressive for test config")
	}
}

func TestBodyPanicPropagatesAndCleansUp(t *testing.T) {
	s := newTestSpace(t, Config{})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("body panic did not propagate")
			}
		}()
		s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
			tx.Store(0, 1)
			panic("application bug")
		})
	}()
	// Metadata must be released: a fresh transaction can write the line.
	cause := s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		tx.Store(0, 2)
	})
	if cause != env.Committed {
		t.Fatalf("Attempt after body panic = %v, want Committed", cause)
	}
	if got := s.Load(0); got != 2 {
		t.Fatalf("Load(0) = %d, want 2", got)
	}
}

func TestNestedAttemptPanics(t *testing.T) {
	s := newTestSpace(t, Config{})
	defer func() {
		if r := recover(); r == nil {
			t.Error("nested Attempt on one slot did not panic")
		}
	}()
	s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
		s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {})
	})
}

func TestAbortCauseStrings(t *testing.T) {
	tests := []struct {
		cause env.AbortCause
		want  string
	}{
		{env.Committed, "committed"},
		{env.AbortConflict, "conflict"},
		{env.AbortCapacity, "capacity"},
		{env.AbortExplicit, "explicit"},
		{env.AbortReader, "reader"},
		{env.AbortSpurious, "spurious"},
		{env.AbortCause(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.cause.String(); got != tt.want {
			t.Errorf("AbortCause(%d).String() = %q, want %q", tt.cause, got, tt.want)
		}
	}
}

func TestCommitModeStrings(t *testing.T) {
	tests := []struct {
		mode env.CommitMode
		want string
	}{
		{env.ModeHTM, "HTM"},
		{env.ModeROT, "ROT"},
		{env.ModeGL, "GL"},
		{env.ModeUninstrumented, "Unins"},
		{env.ModePessimistic, "Pess"},
		{env.CommitMode(99), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.mode.String(); got != tt.want {
			t.Errorf("CommitMode(%d).String() = %q, want %q", tt.mode, got, tt.want)
		}
	}
}
