package htm

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// Transaction lifecycle states, packed into the low bits of Tx.state; a doom
// cause is packed alongside so that state and cause change atomically.
const (
	stInactive uint32 = iota
	stActive
	stCommitting
	stDoomed
)

const (
	stateBits  = 8
	stateMask  = (1 << stateBits) - 1
	causeShift = stateBits
)

func packState(st uint32, cause env.AbortCause) uint32 {
	return st | uint32(cause)<<causeShift
}

// Tx is a single thread slot's (reusable) transaction descriptor. A Tx is
// only ever manipulated by its owning thread, except for the state word,
// which conflicting threads CAS to doom it.
type Tx struct {
	space *Space
	slot  int
	mask  uint64

	// state holds the packed lifecycle state and doom cause.
	state atomic.Uint32

	rot       bool
	suspended bool

	// log buffers this attempt's stores in program order; readSet and
	// writeSet track the lines touched. All three are flat epoch-stamped
	// structures (see sets.go) reset in O(1) by begin.
	log      writeLog
	readSet  lineSet
	writeSet lineSet
}

var _ env.TxAccessor = (*Tx)(nil)

// abortPanic unwinds a transactional attempt body; it never escapes Attempt.
type abortPanic struct{ cause env.AbortCause }

// ownerReleaseSpins bounds how long a line acquirer polls for a doomed
// owner's release before giving up and aborting itself; see acquireLine.
const ownerReleaseSpins = 128

// doom tries to move the transaction from Active to Doomed with the given
// cause. It reports whether the transaction is now (or was already) doomed
// or inactive; false means the transaction won the race to its commit point
// (or is mid-cleanup) and must be treated as serialized before the caller.
func (t *Tx) doom(cause env.AbortCause) bool {
	for {
		st := t.state.Load()
		switch st & stateMask {
		case stActive:
			if t.state.CompareAndSwap(st, packState(stDoomed, cause)) {
				return true
			}
		case stDoomed, stInactive:
			return true
		case stCommitting:
			return false
		}
	}
}

// doomed reports whether the transaction has been doomed.
func (t *Tx) doomed() bool { return t.state.Load()&stateMask == stDoomed }

func (t *Tx) doomCause() env.AbortCause {
	return env.AbortCause(t.state.Load() >> causeShift)
}

// begin arms the descriptor for a fresh attempt.
func (t *Tx) begin(opts env.TxOpts) {
	if t.state.Load()&stateMask != stInactive {
		panic(fmt.Sprintf("htm: nested transaction on slot %d", t.slot))
	}
	t.rot = opts.ROT
	t.suspended = false
	t.log.reset()
	t.readSet.reset()
	t.writeSet.reset()
	t.state.Store(packState(stActive, env.Committed))
}

// fail dooms the transaction itself (preserving an earlier doom cause if one
// raced in) and unwinds the attempt body.
func (t *Tx) fail(cause env.AbortCause) {
	t.doom(cause)
	panic(abortPanic{cause: t.doomCause()})
}

// checkAlive unwinds the attempt if the transaction has been doomed by a
// conflicting access, and applies spurious-abort injection.
func (t *Tx) checkAlive() {
	if t.doomed() {
		panic(abortPanic{cause: t.doomCause()})
	}
	if every := t.space.cfg.SpuriousEvery; every != 0 {
		if t.space.spurCtr.Add(1)%every == 0 {
			t.fail(env.AbortSpurious)
		}
	}
}

// Load implements env.TxAccessor. Non-ROT loads record the line in the read
// set (publishing the read bit before reading the word, so a conflicting
// uninstrumented store can never be missed) and doom a conflicting
// transactional writer, requester-wins. ROT loads are untracked, exactly
// like POWER8 rollback-only transactions: they carry no capacity cost and a
// later store to the line does not abort the ROT.
//
//sprwl:hotpath
func (t *Tx) Load(a memmodel.Addr) uint64 {
	if t.suspended {
		return t.suspendedLoad(a)
	}
	t.checkAlive()
	s := t.space
	l := memmodel.LineOf(a)
	if !t.log.empty() {
		// Read-your-writes: the direct-mapped cache resolves the common
		// case in one probe; a collision-evicted entry falls back to a
		// newest-first log scan, gated on line ownership so unwritten
		// addresses never pay for it.
		if v, ok := t.log.cached(a); ok {
			return v
		}
		if t.writeSet.contains(l) {
			if v, ok := t.log.latest(a); ok {
				return v
			}
			// The line is ours but this word was never stored:
			// memory still holds its pre-transactional value, and
			// owning the line means no tracking is needed.
			return atomic.LoadUint64(s.word(a))
		}
	}
	if t.rot {
		// Untracked load: behave like an uninstrumented load
		// (a remote read still aborts a conflicting writer in
		// hardware), but without touching our read set.
		return t.rotLoad(a, l)
	}
	if !t.readSet.contains(l) {
		if cap := s.caps[t.slot].read; cap > 0 && t.readSet.len() >= cap {
			t.fail(env.AbortCapacity)
		}
		lm := s.line(l)
		lm.readers.Or(t.mask)
		t.readSet.add(l)
		t.resolveWriter(lm)
	}
	return atomic.LoadUint64(s.word(a))
}

// rotLoad performs an untracked transactional load.
func (t *Tx) rotLoad(a memmodel.Addr, l memmodel.Line) uint64 {
	s := t.space
	lm := s.line(l)
	for {
		v := atomic.LoadUint64(s.word(a))
		w := lm.writer.Load()
		if w == 0 || int(w-1) == t.slot {
			return v
		}
		if s.txs[w-1].doom(env.AbortConflict) {
			return v
		}
		for lm.writer.Load() == w {
			runtime.Gosched()
			t.checkAlive()
		}
	}
}

// resolveWriter dooms a conflicting transactional writer of a line we just
// added to our read set, waiting out a committing one. If waiting, the
// committed value will be observed by our subsequent load, which is exactly
// the serialization hardware provides.
func (t *Tx) resolveWriter(lm *lineMeta) {
	for {
		w := lm.writer.Load()
		if w == 0 || int(w-1) == t.slot {
			return
		}
		other := &t.space.txs[w-1]
		if other.doom(env.AbortConflict) {
			return
		}
		for lm.writer.Load() == w {
			runtime.Gosched()
			t.checkAlive()
		}
	}
}

// Store implements env.TxAccessor. The write is buffered; the line's writer
// ownership is published before conflicting readers are doomed, closing the
// race with concurrent read-set insertions.
//
//sprwl:hotpath
func (t *Tx) Store(a memmodel.Addr, v uint64) {
	if t.suspended {
		t.space.Store(a, v)
		return
	}
	t.checkAlive()
	s := t.space
	l := memmodel.LineOf(a)
	if !t.writeSet.contains(l) {
		if cap := s.caps[t.slot].write; cap > 0 && t.writeSet.len() >= cap {
			t.fail(env.AbortCapacity)
		}
		t.acquireLine(l)
		t.writeSet.add(l)
	}
	t.log.store(a, v)
}

// acquireLine takes exclusive transactional ownership of line l, dooming
// conflicting transactions requester-wins and waiting out committing ones.
func (t *Tx) acquireLine(l memmodel.Line) {
	s := t.space
	lm := s.line(l)
	for {
		w := lm.writer.Load()
		switch {
		case w == 0:
			if lm.writer.CompareAndSwap(0, uint64(t.slot+1)) {
				// Ownership published; now doom every reader
				// (other than ourselves) that got its bit in
				// before us.
				s.doomSlots(lm.readers.Load()&^t.mask, env.AbortConflict)
				return
			}
		case int(w-1) == t.slot:
			return
		default:
			other := &s.txs[w-1]
			if !other.doom(env.AbortConflict) {
				// The owner is committing: write-back is
				// straight-line code, so this wait is short.
				for lm.writer.Load() == w {
					runtime.Gosched()
					t.checkAlive()
				}
				continue
			}
			// The owner is doomed but has not yet unwound and
			// released the line. On the real runtime it does so
			// within a few of its own instructions, so poll
			// briefly (requester wins). The poll must stay bounded:
			// under the simulator's serialized scheduling the owner
			// cannot run while we hold the token, and an unbounded
			// wait would deadlock — past the bound the conflict
			// costs us the transaction instead, which is an equally
			// faithful HTM outcome for a write-write conflict.
			for i := 0; i < ownerReleaseSpins; i++ {
				if lm.writer.Load() != w {
					break
				}
				runtime.Gosched()
				t.checkAlive()
			}
			if lm.writer.Load() == w {
				t.fail(env.AbortConflict)
			}
		}
	}
}

// suspendedLoad is an uninstrumented load issued from a suspended section.
// Unlike Space.Load it must not doom the suspended transaction itself when
// reading a line that transaction has written: per POWER8 semantics it
// returns the pre-transactional (memory) value instead.
func (t *Tx) suspendedLoad(a memmodel.Addr) uint64 {
	s := t.space
	lm := s.line(memmodel.LineOf(a))
	for {
		v := atomic.LoadUint64(s.word(a))
		w := lm.writer.Load()
		if w == 0 || int(w-1) == t.slot {
			return v
		}
		if s.txs[w-1].doom(env.AbortConflict) {
			return v
		}
		for lm.writer.Load() == w {
			runtime.Gosched()
		}
	}
}

// Abort implements env.TxAccessor.
func (t *Tx) Abort(cause env.AbortCause) {
	t.fail(cause)
}

// Aborted implements env.TxAccessor: a non-unwinding doom check, usable from
// suspended sections.
func (t *Tx) Aborted() bool { return t.doomed() }

// Suspend implements env.TxAccessor, modelling POWER8 suspend/resume: fn
// runs with this transaction's accesses behaving as uninstrumented ones,
// while the transaction remains doomable by conflicting accesses. It reports
// whether the transaction is still alive at resume.
func (t *Tx) Suspend(fn func()) bool {
	if t.suspended {
		panic("htm: nested Suspend")
	}
	t.suspended = true
	fn()
	t.suspended = false
	return !t.doomed()
}

// commit attempts to make the transaction's writes visible atomically.
// Moving to Committing first means every later conflict race is won by this
// transaction; write-back happens while the lines are still owned, and
// ownership is only released afterwards, so no thread can observe a torn
// commit. Write-back replays the log in program order (last store to an
// address wins), so externalization is deterministic.
func (t *Tx) commit() env.AbortCause {
	if !t.state.CompareAndSwap(packState(stActive, env.Committed), packState(stCommitting, env.Committed)) {
		cause := t.doomCause()
		t.cleanup()
		return cause
	}
	s := t.space
	for i, a := range t.log.addrs {
		atomic.StoreUint64(s.word(a), t.log.vals[i])
	}
	t.cleanup()
	return env.Committed
}

// cleanup releases all line metadata and retires the descriptor. The member
// lists hold each line exactly once, in insertion order.
func (t *Tx) cleanup() {
	s := t.space
	for _, l := range t.writeSet.members {
		s.line(l).writer.Store(0)
	}
	for _, l := range t.readSet.members {
		s.line(l).readers.And(^t.mask)
	}
	t.state.Store(packState(stInactive, env.Committed))
}

// Attempt runs body as one best-effort transaction on slot and returns
// Committed or the abort cause. Buffered stores are discarded on abort.
//
//sprwl:hotpath
func (s *Space) Attempt(slot int, opts env.TxOpts, body func(tx env.TxAccessor)) (cause env.AbortCause) {
	t := &s.txs[slot]
	t.begin(opts)
	defer func() {
		if r := recover(); r != nil {
			ap, ok := r.(abortPanic)
			if !ok {
				// A non-transactional panic (a bug in the body):
				// release metadata, then propagate.
				t.doom(env.AbortExplicit)
				t.cleanup()
				panic(r)
			}
			t.cleanup()
			cause = ap.cause
		}
	}()
	body(t)
	return t.commit()
}
