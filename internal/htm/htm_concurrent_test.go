package htm

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"testing"
	"testing/quick"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// retryTx runs body until it commits, mimicking an unbounded hardware retry
// loop (no fallback needed for these small conflict-only workloads). It
// yields between attempts: requester-wins conflict resolution livelocks
// without backoff, on real HTM as much as here.
func retryTx(s *Space, slot int, body func(tx env.TxAccessor)) {
	for s.Attempt(slot, env.TxOpts{}, body) != env.Committed {
		runtime.Gosched()
	}
}

// TestConcurrentCounterIncrements hammers one cache line with transactional
// increments from every slot; the final value must equal the increment
// count, or the emulation lost an update.
func TestConcurrentCounterIncrements(t *testing.T) {
	const (
		threads = 8
		perThr  = 400
	)
	s := newTestSpace(t, Config{Threads: threads, Words: 1 << 10})
	var wg sync.WaitGroup
	for slot := 0; slot < threads; slot++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perThr; i++ {
				retryTx(s, slot, func(tx env.TxAccessor) {
					tx.Store(0, tx.Load(0)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got, want := s.Load(0), uint64(threads*perThr); got != want {
		t.Fatalf("counter = %d, want %d", got, want)
	}
}

// TestConcurrentBankTransfers moves value between accounts transactionally
// while transactional auditors verify the balance invariant; total money
// must be conserved at every observable point.
func TestConcurrentBankTransfers(t *testing.T) {
	const (
		accounts = 16
		initial  = 1000
		threads  = 6
		transfer = 300
	)
	s := newTestSpace(t, Config{Threads: threads + 1, Words: 1 << 12})
	acct := func(i int) memmodel.Addr { return memmodel.Addr(i * memmodel.LineWords) }
	for i := 0; i < accounts; i++ {
		s.Store(acct(i), initial)
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for slot := 0; slot < threads; slot++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(uint64(slot), 42))
			for i := 0; i < transfer; i++ {
				from, to := rng.IntN(accounts), rng.IntN(accounts)
				if from == to {
					continue
				}
				retryTx(s, slot, func(tx env.TxAccessor) {
					f := tx.Load(acct(from))
					if f == 0 {
						return
					}
					tx.Store(acct(from), f-1)
					tx.Store(acct(to), tx.Load(acct(to))+1)
				})
			}
		}()
	}
	// Auditor (outside the transfer WaitGroup — it runs until the
	// transfers finish): transactional snapshots must always sum to the
	// total.
	auditorDone := make(chan struct{})
	go func() {
		defer close(auditorDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			var sum uint64
			cause := s.Attempt(threads, env.TxOpts{}, func(tx env.TxAccessor) {
				sum = 0
				for i := 0; i < accounts; i++ {
					sum += tx.Load(acct(i))
				}
			})
			if cause == env.Committed && sum != accounts*initial {
				t.Errorf("auditor saw total %d, want %d", sum, accounts*initial)
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(stop)
	<-auditorDone

	var total uint64
	for i := 0; i < accounts; i++ {
		total += s.Load(acct(i))
	}
	if total != accounts*initial {
		t.Fatalf("final total = %d, want %d", total, accounts*initial)
	}
}

// TestUninstrumentedReadersNeverSeeTornCommit verifies commit atomicity from
// the uninstrumented side: a transaction always writes the same value to two
// words of DIFFERENT lines inside one transaction; an uninstrumented reader
// that reads word B first and word A second can never see B newer than A
// (the writer externalizes both atomically; reading A after B can only make
// A appear *at least as new*).
func TestUninstrumentedReadersNeverSeeTornCommit(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 2, Words: 1 << 10})
	const (
		a = memmodel.Addr(0)
		b = memmodel.Addr(64)
		n = 3000
	)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := uint64(1); v <= n; v++ {
			retryTx(s, 0, func(tx env.TxAccessor) {
				tx.Store(a, v)
				tx.Store(b, v)
			})
		}
	}()
	for {
		select {
		case <-done:
			return
		default:
		}
		vb := s.Load(b)
		va := s.Load(a)
		if va < vb {
			t.Fatalf("torn commit observed: a=%d older than b=%d", va, vb)
		}
	}
}

// TestConflictingWritersSerialize runs two transactions that both
// read-modify-write a pair of lines in opposite order; with eager
// requester-wins resolution neither deadlock nor lost updates may occur.
func TestConflictingWritersSerialize(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 2, Words: 1 << 10})
	const (
		x = memmodel.Addr(0)
		y = memmodel.Addr(64)
		n = 500
	)
	var wg sync.WaitGroup
	for slot := 0; slot < 2; slot++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			first, second := x, y
			if slot == 1 {
				first, second = y, x
			}
			for i := 0; i < n; i++ {
				retryTx(s, slot, func(tx env.TxAccessor) {
					tx.Store(first, tx.Load(first)+1)
					tx.Store(second, tx.Load(second)+1)
				})
			}
		}()
	}
	wg.Wait()
	if got := s.Load(x); got != 2*n {
		t.Fatalf("x = %d, want %d", got, 2*n)
	}
	if got := s.Load(y); got != 2*n {
		t.Fatalf("y = %d, want %d", got, 2*n)
	}
}

// TestQuickSerializableSums is a property-based test: for random workload
// shapes, concurrent transactional accumulation into disjoint or shared
// cells conserves the grand total.
func TestQuickSerializableSums(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow under -short")
	}
	prop := func(seed uint64, sharedPct uint8, threadsRaw uint8) bool {
		threads := 2 + int(threadsRaw%6)
		const perThr = 50
		s := MustNewSpace(Config{Threads: threads, Words: 1 << 12})
		cells := 8
		var wg sync.WaitGroup
		for slot := 0; slot < threads; slot++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(seed, uint64(slot)))
				for i := 0; i < perThr; i++ {
					var cell int
					if rng.IntN(100) < int(sharedPct%100) {
						cell = 0 // contended cell
					} else {
						cell = rng.IntN(cells)
					}
					addr := memmodel.Addr(cell * memmodel.LineWords)
					retryTx(s, slot, func(tx env.TxAccessor) {
						tx.Store(addr, tx.Load(addr)+1)
					})
				}
			}()
		}
		wg.Wait()
		var total uint64
		for c := 0; c < cells; c++ {
			total += s.Load(memmodel.Addr(c * memmodel.LineWords))
		}
		return total == uint64(threads*perThr)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestMixedTxAndUninstrumentedStores interleaves transactional and
// uninstrumented writers on the same lines; strong isolation must keep the
// final state equal to the last writer's value and never resurrect doomed
// buffered writes.
func TestMixedTxAndUninstrumentedStores(t *testing.T) {
	s := newTestSpace(t, Config{Threads: 2, Words: 1 << 10})
	const rounds = 2000
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // transactional writer: writes even values
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			s.Attempt(0, env.TxOpts{}, func(tx env.TxAccessor) {
				tx.Store(0, uint64(i)*2)
			})
		}
	}()
	go func() { // uninstrumented writer: writes odd values
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			s.Store(0, uint64(i)*2+1)
		}
	}()
	wg.Wait()
	// No torn/stale state representable here beyond type safety; the test
	// passes if the race detector and the doom protocol stayed silent and
	// the final value is one that was actually written.
	v := s.Load(0)
	if v >= rounds*2+1 {
		t.Fatalf("final value %d was never written", v)
	}
}
