// Package alloc provides runtime allocation of fixed-size blocks of
// simulated memory for the workloads (hashmap nodes, TPC-C rows).
//
// Allocation metadata lives on the Go heap, not in simulated memory: on the
// paper's systems malloc is likewise outside the transactional footprint.
// The workloads are written so that Get/Put happen outside critical
// sections (allocate before entering, recycle after leaving), which keeps
// the allocator trivially abort-safe: an aborted section never observes or
// leaks a block.
package alloc

import (
	"fmt"
	"sync"

	"sprwl/internal/memmodel"
)

// Pool hands out fixed-size, line-aligned blocks of simulated memory. It
// keeps one free stack per thread slot (no synchronization on the fast
// path) plus a mutex-protected shared reserve that slot stacks spill to and
// refill from.
type Pool struct {
	blockWords int
	perSlot    [][]memmodel.Addr

	mu     sync.Mutex
	shared []memmodel.Addr
	arena  *memmodel.Arena
}

const (
	// slotCacheMax bounds a slot's private stack; beyond it, half the
	// stack spills to the shared reserve.
	slotCacheMax = 64
	// refillBatch is how many blocks a slot pulls from the shared
	// reserve or arena at once.
	refillBatch = 16
)

// NewPool builds a pool of blockWords-sized blocks (rounded up to whole
// lines) carved from ar on demand, serving the given number of thread
// slots.
func NewPool(ar *memmodel.Arena, blockWords, slots int) *Pool {
	if blockWords <= 0 {
		panic("alloc: non-positive block size")
	}
	if slots < 1 {
		slots = 1
	}
	lines := (blockWords + memmodel.LineWords - 1) / memmodel.LineWords
	return &Pool{
		blockWords: lines * memmodel.LineWords,
		perSlot:    make([][]memmodel.Addr, slots),
		arena:      ar,
	}
}

// BlockWords returns the (line-rounded) block size in words.
func (p *Pool) BlockWords() int { return p.blockWords }

// Get returns a block for thread slot. It panics if the arena is exhausted
// and no recycled blocks exist, mirroring malloc failure as an unrecoverable
// configuration error in this closed-world setup.
func (p *Pool) Get(slot int) memmodel.Addr {
	stack := &p.perSlot[slot]
	if n := len(*stack); n > 0 {
		a := (*stack)[n-1]
		*stack = (*stack)[:n-1]
		return a
	}
	p.mu.Lock()
	for i := 0; i < refillBatch; i++ {
		if n := len(p.shared); n > 0 {
			*stack = append(*stack, p.shared[n-1])
			p.shared = p.shared[:n-1]
			continue
		}
		if p.arena.Remaining() >= memmodel.Addr(p.blockWords) {
			*stack = append(*stack, p.arena.AllocWords(p.blockWords))
			continue
		}
		break
	}
	p.mu.Unlock()
	if n := len(*stack); n > 0 {
		a := (*stack)[n-1]
		*stack = (*stack)[:n-1]
		return a
	}
	panic(fmt.Sprintf("alloc: pool exhausted (block %d words)", p.blockWords))
}

// Put recycles a block from thread slot. The caller must not touch the
// block afterwards.
func (p *Pool) Put(slot int, a memmodel.Addr) {
	stack := &p.perSlot[slot]
	*stack = append(*stack, a)
	if len(*stack) > slotCacheMax {
		spill := (*stack)[slotCacheMax/2:]
		p.mu.Lock()
		p.shared = append(p.shared, spill...)
		p.mu.Unlock()
		*stack = (*stack)[:slotCacheMax/2]
	}
}
