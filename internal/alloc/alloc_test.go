package alloc

import (
	"testing"
	"testing/quick"

	"sprwl/internal/memmodel"
)

func TestBlocksAreLineAlignedAndRounded(t *testing.T) {
	ar := memmodel.NewArena(0, 1<<16)
	p := NewPool(ar, 3, 1) // rounds up to one line
	if got := p.BlockWords(); got != memmodel.LineWords {
		t.Fatalf("BlockWords = %d, want %d", got, memmodel.LineWords)
	}
	a := p.Get(0)
	if a%memmodel.LineWords != 0 {
		t.Fatalf("block at %d not line-aligned", a)
	}
}

func TestGetPutRecycles(t *testing.T) {
	ar := memmodel.NewArena(0, 1<<16)
	p := NewPool(ar, memmodel.LineWords, 2)
	a := p.Get(0)
	p.Put(0, a)
	if got := p.Get(0); got != a {
		t.Fatalf("Get after Put = %d, want recycled %d", got, a)
	}
}

func TestCrossSlotRecycling(t *testing.T) {
	ar := memmodel.NewArena(0, 1<<20)
	p := NewPool(ar, memmodel.LineWords, 2)
	// Fill slot 0's cache beyond its bound so blocks spill to the shared
	// reserve, then drain from slot 1.
	var blocks []memmodel.Addr
	for i := 0; i < 200; i++ {
		blocks = append(blocks, p.Get(0))
	}
	for _, b := range blocks {
		p.Put(0, b)
	}
	seen := map[memmodel.Addr]bool{}
	for i := 0; i < 200; i++ {
		b := p.Get(1)
		if seen[b] {
			t.Fatalf("block %d handed out twice", b)
		}
		seen[b] = true
	}
}

func TestExhaustionPanics(t *testing.T) {
	ar := memmodel.NewArena(0, 2*memmodel.LineWords)
	p := NewPool(ar, memmodel.LineWords, 1)
	p.Get(0)
	p.Get(0)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted pool did not panic")
		}
	}()
	p.Get(0)
}

// TestQuickNoOverlap: any schedule of gets and puts yields blocks that are
// live at most once and never overlap.
func TestQuickNoOverlap(t *testing.T) {
	prop := func(script []uint8) bool {
		ar := memmodel.NewArena(0, 1<<18)
		p := NewPool(ar, memmodel.LineWords, 4)
		live := map[memmodel.Addr]bool{}
		var order []memmodel.Addr
		for _, b := range script {
			slot := int(b) % 4
			if b&0x80 != 0 && len(order) > 0 {
				a := order[len(order)-1]
				order = order[:len(order)-1]
				delete(live, a)
				p.Put(slot, a)
				continue
			}
			a := p.Get(slot)
			if live[a] {
				return false // double allocation
			}
			if a%memmodel.LineWords != 0 {
				return false
			}
			live[a] = true
			order = append(order, a)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
