// Package obs is the unified observability pipeline every synchronization
// algorithm in this repository reports through: a fixed event taxonomy
// (critical sections, hardware-transaction attempts, aborts, scheduling
// waits, fallback-lock spans), per-thread allocation-free event rings, and
// a small Sink interface that consumes drained event batches.
//
// SpRWL's contribution is a scheduling policy driven by runtime signals —
// abort causes, reader/writer overlap, per-CS duration estimates (paper
// §3.2, §3.4) — and this package is where those signals become observable.
// Before it existed, the signals were scattered: package stats counted a
// fixed set of outcomes, package htm tracked its own abort codes, and the
// scheduling decisions (rsync waits, wsync delays, SNZI drains) vanished
// the moment they were taken. Now every algorithm — SpRWL and all the
// baselines — emits the same event stream, so the harness compares them on
// identical telemetry and new sinks (Chrome traces, wait/work profiles)
// apply to all of them at once.
//
// # Hot-path contract
//
// Recording an event is a nil check, one struct store into a preallocated
// per-thread ring, and a counter increment — no atomics, no interface
// calls, no allocation. Sinks only run when a ring fills (every ringEvents
// events, amortizing the interface calls away) or when the pipeline is
// flushed after the workers quiesce. With no pipeline attached, every
// record call is a single predictable branch on a nil receiver.
//
// # Threading contract
//
// A Ring is owned by its thread slot: only that thread may record into it.
// Sink.Drain is called from the owning thread (ring full) or from the
// flushing thread (after workers stop); batches for different slots may
// arrive concurrently, so sinks synchronize across slots (or keep per-slot
// state) but never within one. Pipeline.Flush must only run while no
// worker is recording.
package obs

import "sprwl/internal/env"

// Reader and Writer label which side of the lock an event belongs to.
// Their values match stats.Kind (Reader = 0, Writer = 1), which package
// stats relies on when draining events into its counters.
const (
	Reader uint8 = 0
	Writer uint8 = 1
)

// Kind is the event taxonomy. Span events carry their start timestamp in
// TS and their length in Dur; instant events have Dur == 0.
type Kind uint8

const (
	// EvNone is the zero Kind; rings never emit it.
	EvNone Kind = iota

	// EvSection is one completed critical section: TS is entry, Dur the
	// end-to-end latency (waits and retries included), RW the side, CS
	// the critical-section ID, and Code the env.CommitMode it finished
	// in.
	EvSection

	// EvAbort is one aborted hardware attempt: Code is the
	// env.AbortCause, RW the side, CS the critical-section ID.
	EvAbort

	// EvWait is one scheduling wait: Code is a Wait* reason, Dur how
	// long the thread stalled.
	EvWait

	// EvSGL is one single-global-lock fallback span: TS is acquisition,
	// Dur the hold time.
	EvSGL

	// EvTx is one hardware-transaction attempt as seen by the execution
	// environment: Code is the env.AbortCause (env.Committed for a
	// commit), Dur the attempt length. Emitted by the htm runtime and
	// the simulator when a pipeline is attached to them; the stats sink
	// ignores it (EvAbort carries the per-algorithm accounting).
	EvTx

	// EvReaders is one reader-indicator lifecycle event: a BRAVO table
	// probe collision, a fallback writer's bias revocation, or a
	// self-tuning backend switch. Code is a Readers* code; instant.
	EvReaders

	// EvPark is one waiter-parking lifecycle event (package park): a
	// parked span inside a wait, a wake issued on a phase word, or a
	// spin-abandoned marker. Code is a Park* code; ParkParked is a span
	// (Dur = cycles spent parked, a subset of the enclosing EvWait),
	// the others are instant.
	EvPark

	// EvChaos is one injected fault from the hostile-environment harness
	// (package hostile): a CPU-quota change, a preemption storm, a
	// park-budget starvation window, or a worker crash injection. Code is
	// a Chaos* code; spans carry the fault's active window in Dur so the
	// wait-vs-work profiler can attribute stall time to injected faults.
	EvChaos

	numKinds
)

// String returns the taxonomy label used by trace and profile output.
func (k Kind) String() string {
	switch k {
	case EvSection:
		return "section"
	case EvAbort:
		return "abort"
	case EvWait:
		return "wait"
	case EvSGL:
		return "sgl"
	case EvTx:
		return "tx"
	case EvReaders:
		return "readers"
	case EvPark:
		return "park"
	case EvChaos:
		return "chaos"
	default:
		return "none"
	}
}

// Chaos-injection event codes (EvChaos.Code).
const (
	// ChaosQuota: a CPU-quota perturbation (GOMAXPROCS shrink or grow);
	// Dur is how long the perturbed quota stayed in force.
	ChaosQuota uint8 = iota
	// ChaosPreempt: a forced-preemption storm (Gosched/LockOSThread
	// hostage goroutines); Dur is the storm window.
	ChaosPreempt
	// ChaosParkStarve: a park-budget starvation window during which the
	// park injection hook perturbed every wait site's spin/park policy;
	// Dur is the window.
	ChaosParkStarve
	// ChaosCrash: a worker-process crash injection (SIGKILL at a fence
	// point) in the multi-process harness; instant.
	ChaosCrash

	// NumChaosCodes sizes per-code accumulator arrays.
	NumChaosCodes
)

// ChaosCodeString returns the label for an EvChaos code.
func ChaosCodeString(code uint8) string {
	switch code {
	case ChaosQuota:
		return "quota"
	case ChaosPreempt:
		return "preempt"
	case ChaosParkStarve:
		return "park-starve"
	case ChaosCrash:
		return "crash"
	default:
		return "unknown"
	}
}

// Waiter-parking event codes (EvPark.Code).
const (
	// ParkParked: the cycles of one wait episode spent parked (asleep)
	// rather than spinning; Dur carries the parked span.
	ParkParked uint8 = iota
	// ParkWake: a release path issued a wake on a phase word after its
	// phase store (writer retire, fallback-lock release).
	ParkWake
	// ParkSpinAbandon: a waiter exhausted its spin budget and parked —
	// the preceding spin was wasted CPU, which is the signal the
	// oversubscription sweep tracks.
	ParkSpinAbandon

	// NumParkCodes sizes per-code accumulator arrays.
	NumParkCodes
)

// ParkCodeString returns the label for an EvPark code.
func ParkCodeString(code uint8) string {
	switch code {
	case ParkParked:
		return "parked"
	case ParkWake:
		return "wake"
	case ParkSpinAbandon:
		return "spin-abandon"
	default:
		return "unknown"
	}
}

// Reader-indicator event codes (EvReaders.Code).
const (
	// ReadersCollision: a BRAVO arrival exhausted its slot probes and
	// published on the overflow counter instead.
	ReadersCollision uint8 = iota
	// ReadersRevoked: a fallback writer revoked the BRAVO reader bias
	// before draining, advancing the revocation epoch.
	ReadersRevoked
	// ReadersSwitch: the self-tuning controller completed a reader
	// tracking backend switch.
	ReadersSwitch

	// NumReadersCodes sizes per-code accumulator arrays.
	NumReadersCodes
)

// ReadersCodeString returns the label for an EvReaders code.
func ReadersCodeString(code uint8) string {
	switch code {
	case ReadersCollision:
		return "collision"
	case ReadersRevoked:
		return "revoked"
	case ReadersSwitch:
		return "switch"
	default:
		return "unknown"
	}
}

// Wait reasons (EvWait.Code): why a thread stalled instead of making
// progress. These are exactly the scheduling decisions the paper's §3.2
// schemes take, plus the fallback interactions of §3.3 and the baselines'
// acquisition waits.
const (
	// WaitRSync: a reader waiting for the active writer predicted to
	// finish last (Alg. 2 readers_wait, the §3.2.1 scheme).
	WaitRSync uint8 = iota
	// WaitWSync: a writer delaying its retry to finish δ cycles after
	// the last active reader (Alg. 3 writer_wait, the §3.2.2 scheme).
	WaitWSync
	// WaitGL: spinning for the single-global-lock fallback to clear
	// before flagging or attempting.
	WaitGL
	// WaitDrain: a fallback writer waiting for active uninstrumented
	// readers to retire (Alg. 1 wait_for_readers).
	WaitDrain
	// WaitQuiesce: RW-LE's suspended quiescence phase (waiting for all
	// readers active at suspend time to finish).
	WaitQuiesce
	// WaitLock: a pessimistic baseline waiting to acquire the lock.
	WaitLock

	// NumWaitReasons sizes per-reason accumulator arrays.
	NumWaitReasons
)

// WaitReasonString returns the label for an EvWait code.
func WaitReasonString(code uint8) string {
	switch code {
	case WaitRSync:
		return "rsync"
	case WaitWSync:
		return "wsync"
	case WaitGL:
		return "gl"
	case WaitDrain:
		return "drain"
	case WaitQuiesce:
		return "quiesce"
	case WaitLock:
		return "lock"
	default:
		return "unknown"
	}
}

// Event is one fixed-size telemetry record. 32 bytes, value type, no
// pointers — rings hold them by value and recording is a single store.
type Event struct {
	// TS is the event (or span start) timestamp in cycles.
	TS uint64
	// Dur is the span length in cycles; 0 for instant events.
	Dur uint64
	// CS is the critical-section ID, or -1 when not applicable.
	CS int32
	// Kind is the event taxonomy entry.
	Kind Kind
	// RW is Reader or Writer.
	RW uint8
	// Code is kind-specific: env.CommitMode for EvSection,
	// env.AbortCause for EvAbort/EvTx, a Wait* reason for EvWait.
	Code uint8
}

// Sink consumes drained event batches. Drain is called with one slot's
// events in record order; the slice is only valid for the duration of the
// call (rings reuse their buffers), so sinks must copy what they keep.
// Batches for different slots may be drained concurrently.
type Sink interface {
	Drain(slot int, events []Event)
}

// ringEvents is the per-thread ring capacity. 256 events × 32 bytes = one
// 8 KiB buffer per thread; sinks run once per 256 events on the owning
// thread, which keeps their cost amortized out of the hot path.
const ringEvents = 256

// Ring is one thread slot's event buffer. All record methods are nil-safe:
// with no pipeline attached, handles hold a nil *Ring and every record
// call reduces to one branch.
type Ring struct {
	p    *Pipeline
	slot int
	n    int
	buf  [ringEvents]Event
}

// Record appends one event, flushing to the pipeline's sinks if the ring
// is full.
//
//sprwl:hotpath
func (r *Ring) Record(ev Event) {
	if r == nil {
		return
	}
	r.buf[r.n] = ev
	r.n++
	if r.n == ringEvents {
		r.flush()
	}
}

// Section records one completed critical section of side rw spanning
// [start, end] that finished in commit mode m.
//
//sprwl:hotpath
func (r *Ring) Section(rw uint8, cs int, m env.CommitMode, start, end uint64) {
	if r == nil {
		return
	}
	r.Record(Event{TS: start, Dur: end - start, CS: int32(cs), Kind: EvSection, RW: rw, Code: uint8(m)})
}

// Abort records one aborted hardware attempt of side rw with the given
// cause. env.Committed is not an abort and is dropped.
//
//sprwl:hotpath
func (r *Ring) Abort(rw uint8, cs int, cause env.AbortCause, ts uint64) {
	if r == nil || cause == env.Committed {
		return
	}
	r.Record(Event{TS: ts, CS: int32(cs), Kind: EvAbort, RW: rw, Code: uint8(cause)})
}

// Wait records one scheduling wait spanning [start, end) for the given
// reason. Zero-length waits are dropped.
//
//sprwl:hotpath
func (r *Ring) Wait(reason uint8, rw uint8, cs int, start, end uint64) {
	if r == nil || end <= start {
		return
	}
	r.Record(Event{TS: start, Dur: end - start, CS: int32(cs), Kind: EvWait, RW: rw, Code: reason})
}

// SGL records one fallback-lock hold spanning [acquired, released].
//
//sprwl:hotpath
func (r *Ring) SGL(cs int, acquired, released uint64) {
	if r == nil {
		return
	}
	r.Record(Event{TS: acquired, Dur: released - acquired, CS: int32(cs), Kind: EvSGL, RW: Writer})
}

// Tx records one hardware-transaction attempt spanning [start, end] that
// ended with the given cause (env.Committed for a commit).
//
//sprwl:hotpath
func (r *Ring) Tx(cs int, cause env.AbortCause, start, end uint64) {
	if r == nil {
		return
	}
	r.Record(Event{TS: start, Dur: end - start, CS: int32(cs), Kind: EvTx, Code: uint8(cause)})
}

// Park records one waiter-parking lifecycle event (a Park* code) of side
// rw: a parked span ([start, start+dur], code ParkParked) or an instant
// wake / spin-abandon marker (dur 0).
//
//sprwl:hotpath
func (r *Ring) Park(code uint8, rw uint8, cs int, start, dur uint64) {
	if r == nil {
		return
	}
	r.Record(Event{TS: start, Dur: dur, CS: int32(cs), Kind: EvPark, RW: rw, Code: code})
}

// Chaos records one injected fault (a Chaos* code) spanning [start,
// start+dur] (dur 0 for instant events). Only the chaos controller's own
// ring slot records these; workloads never do.
func (r *Ring) Chaos(code uint8, start, dur uint64) {
	if r == nil {
		return
	}
	r.Record(Event{TS: start, Dur: dur, CS: -1, Kind: EvChaos, Code: code})
}

// Readers records one reader-indicator lifecycle event (a Readers* code)
// at ts; cs is the critical-section ID or -1 when not attributable.
//
//sprwl:hotpath
func (r *Ring) Readers(code uint8, cs int, ts uint64) {
	if r == nil {
		return
	}
	r.Record(Event{TS: ts, CS: int32(cs), Kind: EvReaders, Code: code})
}

// flush drains the buffered events to every sink and resets the ring.
func (r *Ring) flush() {
	if r.n == 0 {
		return
	}
	batch := r.buf[:r.n]
	for _, s := range r.p.sinks {
		s.Drain(r.slot, batch)
	}
	r.n = 0
}

// Pipeline owns one Ring per thread slot and the sinks that consume them.
type Pipeline struct {
	sinks []Sink
	rings []Ring
}

// NewPipeline builds a pipeline for n thread slots draining into the given
// sinks. Sinks are invoked in the order given.
func NewPipeline(n int, sinks ...Sink) *Pipeline {
	if n < 1 {
		n = 1
	}
	p := &Pipeline{sinks: sinks, rings: make([]Ring, n)}
	for i := range p.rings {
		p.rings[i].p = p
		p.rings[i].slot = i
	}
	return p
}

// Thread returns slot's ring, or nil for a nil pipeline (so lock
// constructors can unconditionally cache the result). Only the owning
// thread may record into the returned ring.
func (p *Pipeline) Thread(slot int) *Ring {
	if p == nil || slot < 0 || slot >= len(p.rings) {
		return nil
	}
	return &p.rings[slot]
}

// Threads returns the number of thread slots.
func (p *Pipeline) Threads() int {
	if p == nil {
		return 0
	}
	return len(p.rings)
}

// Flush drains every ring's buffered events. It must only be called while
// no worker thread is recording (after Run/the workers' join), which is
// also what makes the drained view complete rather than skewed.
func (p *Pipeline) Flush() {
	if p == nil {
		return
	}
	for i := range p.rings {
		p.rings[i].flush()
	}
}
