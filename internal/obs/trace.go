package obs

import (
	"bufio"
	"fmt"
	"io"

	"sprwl/internal/env"
)

// TraceSink accumulates the full event stream and renders it in the Chrome
// trace-event ("catapult") JSON format, loadable in chrome://tracing,
// Perfetto, or speedscope. One timeline row per thread slot; critical
// sections, waits, transaction attempts and fallback holds render as
// nested spans, aborts as instant markers — which makes the paper's
// Figure-style reader/writer overlap schedules directly observable.
//
// Drain copies events into per-slot slices (allocation happens here, off
// the recording hot path); WriteTo renders the merged timeline.
type TraceSink struct {
	perSlot [][]Event
}

// NewTraceSink builds a trace sink for n thread slots.
func NewTraceSink(n int) *TraceSink {
	if n < 1 {
		n = 1
	}
	return &TraceSink{perSlot: make([][]Event, n)}
}

// Drain implements Sink.
func (t *TraceSink) Drain(slot int, events []Event) {
	if slot < 0 || slot >= len(t.perSlot) {
		return
	}
	t.perSlot[slot] = append(t.perSlot[slot], events...)
}

// Events returns slot's accumulated events in record order.
func (t *TraceSink) Events(slot int) []Event {
	if slot < 0 || slot >= len(t.perSlot) {
		return nil
	}
	return t.perSlot[slot]
}

// cyclesPerMicro scales cycle timestamps to the trace format's microsecond
// unit. Under the real runtime cycles are nanoseconds; under the simulator
// they are virtual cycles — either way 1000 cycles per µs keeps spans at a
// readable zoom level.
const cyclesPerMicro = 1000.0

func traceTS(cycles uint64) float64 { return float64(cycles) / cyclesPerMicro }

// WriteTo renders the accumulated events as one Chrome-trace JSON object
// ({"traceEvents": [...]}) and implements io.WriterTo.
func (t *TraceSink) WriteTo(w io.Writer) (int64, error) {
	bw := &countingWriter{w: bufio.NewWriter(w)}
	fmt.Fprintf(bw, "{\"traceEvents\":[\n")
	first := true
	emit := func(format string, args ...any) {
		if !first {
			fmt.Fprintf(bw, ",\n")
		}
		first = false
		fmt.Fprintf(bw, format, args...)
	}
	for slot := range t.perSlot {
		emit(`{"ph":"M","name":"thread_name","pid":1,"tid":%d,"args":{"name":"worker-%d"}}`, slot, slot)
	}
	for slot, events := range t.perSlot {
		for i := range events {
			ev := &events[i]
			switch ev.Kind {
			case EvSection:
				name := "read"
				if ev.RW == Writer {
					name = "write"
				}
				emit(`{"ph":"X","name":%q,"cat":"cs","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"cs":%d,"mode":%q}}`,
					name, slot, traceTS(ev.TS), float64(ev.Dur)/cyclesPerMicro, ev.CS, env.CommitMode(ev.Code).String())
			case EvWait:
				emit(`{"ph":"X","name":%q,"cat":"wait","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"cs":%d}}`,
					"wait:"+WaitReasonString(ev.Code), slot, traceTS(ev.TS), float64(ev.Dur)/cyclesPerMicro, ev.CS)
			case EvAbort:
				emit(`{"ph":"i","s":"t","name":%q,"cat":"abort","pid":1,"tid":%d,"ts":%.3f,"args":{"cs":%d}}`,
					"abort:"+env.AbortCause(ev.Code).String(), slot, traceTS(ev.TS), ev.CS)
			case EvSGL:
				emit(`{"ph":"X","name":"sgl-held","cat":"fallback","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"cs":%d}}`,
					slot, traceTS(ev.TS), float64(ev.Dur)/cyclesPerMicro, ev.CS)
			case EvTx:
				name := "tx"
				if c := env.AbortCause(ev.Code); c != env.Committed {
					name = "tx:" + c.String()
				}
				emit(`{"ph":"X","name":%q,"cat":"htm","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{}}`,
					name, slot, traceTS(ev.TS), float64(ev.Dur)/cyclesPerMicro)
			case EvReaders:
				emit(`{"ph":"i","s":"t","name":%q,"cat":"readers","pid":1,"tid":%d,"ts":%.3f,"args":{"cs":%d}}`,
					"readers:"+ReadersCodeString(ev.Code), slot, traceTS(ev.TS), ev.CS)
			case EvChaos:
				if ev.Dur > 0 {
					emit(`{"ph":"X","name":%q,"cat":"chaos","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{}}`,
						"chaos:"+ChaosCodeString(ev.Code), slot, traceTS(ev.TS), float64(ev.Dur)/cyclesPerMicro)
					continue
				}
				emit(`{"ph":"i","s":"g","name":%q,"cat":"chaos","pid":1,"tid":%d,"ts":%.3f,"args":{}}`,
					"chaos:"+ChaosCodeString(ev.Code), slot, traceTS(ev.TS))
			case EvPark:
				if ev.Code == ParkParked {
					emit(`{"ph":"X","name":"parked","cat":"park","pid":1,"tid":%d,"ts":%.3f,"dur":%.3f,"args":{"cs":%d}}`,
						slot, traceTS(ev.TS), float64(ev.Dur)/cyclesPerMicro, ev.CS)
					continue
				}
				emit(`{"ph":"i","s":"t","name":%q,"cat":"park","pid":1,"tid":%d,"ts":%.3f,"args":{"cs":%d}}`,
					"park:"+ParkCodeString(ev.Code), slot, traceTS(ev.TS), ev.CS)
			}
		}
	}
	fmt.Fprintf(bw, "\n],\"displayTimeUnit\":\"ns\"}\n")
	err := bw.w.(*bufio.Writer).Flush()
	return bw.n, err
}

// countingWriter tracks bytes written for the io.WriterTo contract.
type countingWriter struct {
	w io.Writer
	n int64
}

func (c *countingWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
