package obs

import (
	"testing"

	"sprwl/internal/env"
)

// nopSink drains batches without keeping them, so the measurement below
// covers the ring's own emit-and-flush cycle rather than a sink's copy.
type nopSink struct{ events int }

func (s *nopSink) Drain(slot int, events []Event) { s.events += len(events) }

// TestRecordDoesNotAllocate pins the hot-path contract from the package
// doc: recording an event — including the amortized flush into the sinks
// when the ring fills — performs zero heap allocations. The hotpathalloc
// analyzer checks this statically; this test checks it dynamically, which
// also covers anything the static walk cannot see (interface dispatch into
// the sink, slice re-use in flush).
func TestRecordDoesNotAllocate(t *testing.T) {
	sink := &nopSink{}
	p := NewPipeline(1, sink)
	r := p.Thread(0)

	emit := func() {
		// One of each event kind, enough times to cross several
		// ring-full flush boundaries inside the measured runs.
		for i := 0; i < 2*ringEvents; i++ {
			ts := uint64(i)
			r.Section(Reader, 0, env.ModeHTM, ts, ts+10)
			r.Abort(Writer, 1, env.AbortConflict, ts)
			r.Wait(WaitRSync, Reader, 0, ts, ts+5)
			r.SGL(1, ts, ts+20)
			r.Tx(0, env.Committed, ts, ts+3)
		}
	}
	emit() // warm up: first flush, sink growth, etc.

	if avg := testing.AllocsPerRun(100, emit); avg != 0 {
		t.Fatalf("ring emit allocated %.2f objects per run, want 0", avg)
	}
	p.Flush()
	if sink.events == 0 {
		t.Fatal("sink saw no events; the measurement exercised nothing")
	}
}

// TestNilRingRecordDoesNotAllocate covers the detached configuration: with
// no pipeline attached, handles hold a nil *Ring and every record call
// must reduce to a branch.
func TestNilRingRecordDoesNotAllocate(t *testing.T) {
	var r *Ring
	emit := func() {
		for i := 0; i < 64; i++ {
			r.Section(Reader, 0, env.ModeHTM, 0, 1)
			r.Tx(0, env.Committed, 0, 1)
		}
	}
	if avg := testing.AllocsPerRun(100, emit); avg != 0 {
		t.Fatalf("nil-ring emit allocated %.2f objects per run, want 0", avg)
	}
}
