package obs

import (
	"bytes"
	"encoding/json"
	"testing"

	"sprwl/internal/env"
)

// captureSink records every drained batch, tagged by slot.
type captureSink struct {
	batches []struct {
		slot   int
		events []Event
	}
}

func (c *captureSink) Drain(slot int, events []Event) {
	cp := make([]Event, len(events))
	copy(cp, events)
	c.batches = append(c.batches, struct {
		slot   int
		events []Event
	}{slot, cp})
}

func (c *captureSink) all() []Event {
	var out []Event
	for _, b := range c.batches {
		out = append(out, b.events...)
	}
	return out
}

func TestNilRingAndPipelineAreSafe(t *testing.T) {
	var p *Pipeline
	r := p.Thread(3) // nil pipeline hands out nil rings
	if r != nil {
		t.Fatalf("nil pipeline returned non-nil ring")
	}
	// None of these may panic.
	r.Record(Event{Kind: EvSection})
	r.Section(Reader, 0, env.ModeHTM, 1, 2)
	r.Abort(Writer, 0, env.AbortConflict, 3)
	r.Wait(WaitRSync, Reader, 0, 1, 5)
	r.SGL(0, 1, 2)
	r.Tx(0, env.Committed, 1, 2)
	p.Flush()
}

func TestRecordFlushesOnFullRing(t *testing.T) {
	sink := &captureSink{}
	p := NewPipeline(2, sink)
	r := p.Thread(1)
	total := ringEvents + 5
	for i := 0; i < total; i++ {
		r.Section(Reader, i, env.ModeHTM, uint64(i), uint64(i+1))
	}
	// The full ring drained once already; the tail needs an explicit flush.
	if len(sink.batches) != 1 {
		t.Fatalf("batches before flush = %d, want 1", len(sink.batches))
	}
	if got := len(sink.batches[0].events); got != ringEvents {
		t.Fatalf("first batch size = %d, want %d", got, ringEvents)
	}
	if sink.batches[0].slot != 1 {
		t.Fatalf("batch slot = %d, want 1", sink.batches[0].slot)
	}
	p.Flush()
	events := sink.all()
	if len(events) != total {
		t.Fatalf("total drained = %d, want %d", len(events), total)
	}
	for i, ev := range events {
		if ev.CS != int32(i) || ev.TS != uint64(i) || ev.Dur != 1 {
			t.Fatalf("event %d out of order or corrupted: %+v", i, ev)
		}
	}
	// A second flush with nothing buffered must not re-deliver.
	p.Flush()
	if got := len(sink.all()); got != total {
		t.Fatalf("double flush re-delivered: %d events, want %d", got, total)
	}
}

func TestEventFieldEncoding(t *testing.T) {
	sink := &captureSink{}
	p := NewPipeline(1, sink)
	r := p.Thread(0)

	r.Section(Writer, 7, env.ModeGL, 100, 150)
	r.Abort(Writer, 7, env.AbortReader, 200)
	r.Abort(Writer, 7, env.Committed, 201) // dropped: not an abort
	r.Wait(WaitWSync, Writer, 7, 300, 350)
	r.Wait(WaitWSync, Writer, 7, 400, 400) // dropped: zero duration
	r.SGL(7, 500, 560)
	r.Tx(-1, env.AbortCapacity, 600, 620)
	p.Flush()

	events := sink.all()
	want := []Event{
		{TS: 100, Dur: 50, CS: 7, Kind: EvSection, RW: Writer, Code: uint8(env.ModeGL)},
		{TS: 200, CS: 7, Kind: EvAbort, RW: Writer, Code: uint8(env.AbortReader)},
		{TS: 300, Dur: 50, CS: 7, Kind: EvWait, RW: Writer, Code: WaitWSync},
		{TS: 500, Dur: 60, CS: 7, Kind: EvSGL, RW: Writer, Code: 0},
		{TS: 600, Dur: 20, CS: -1, Kind: EvTx, Code: uint8(env.AbortCapacity)},
	}
	if len(events) != len(want) {
		t.Fatalf("drained %d events, want %d: %+v", len(events), len(want), events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %+v, want %+v", i, events[i], want[i])
		}
	}
}

func TestPipelineFansOutToAllSinks(t *testing.T) {
	a, b := &captureSink{}, &captureSink{}
	p := NewPipeline(1, a, b)
	p.Thread(0).Section(Reader, 0, env.ModeHTM, 1, 2)
	p.Flush()
	if len(a.all()) != 1 || len(b.all()) != 1 {
		t.Fatalf("sinks saw %d/%d events, want 1/1", len(a.all()), len(b.all()))
	}
}

// traceFile mirrors the catapult JSON structure for decoding.
type traceFile struct {
	TraceEvents []struct {
		Name string                 `json:"name"`
		Ph   string                 `json:"ph"`
		Cat  string                 `json:"cat"`
		TS   float64                `json:"ts"`
		Dur  float64                `json:"dur"`
		PID  int                    `json:"pid"`
		TID  int                    `json:"tid"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
}

func TestTraceSinkWritesValidCatapultJSON(t *testing.T) {
	tr := NewTraceSink(2)
	p := NewPipeline(2, tr)
	r0, r1 := p.Thread(0), p.Thread(1)
	r0.Section(Reader, 1, env.ModeUninstrumented, 1000, 3000)
	r0.Abort(Writer, 2, env.AbortConflict, 1500)
	r0.Wait(WaitRSync, Reader, 1, 500, 900)
	r1.Section(Writer, 2, env.ModeHTM, 2000, 2500)
	r1.SGL(2, 4000, 4200)
	r1.Tx(-1, env.Committed, 2000, 2400)
	p.Flush()

	var buf bytes.Buffer
	if _, err := tr.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, buf.String())
	}

	count := map[string]int{}
	for _, ev := range tf.TraceEvents {
		count[ev.Ph+":"+ev.Name]++
	}
	for _, want := range []string{
		"X:read", "X:write", "X:wait:rsync", "X:sgl-held", "X:tx",
		"i:abort:conflict", "M:thread_name", "M:thread_name",
	} {
		if count[want] == 0 {
			t.Errorf("trace missing event %q; have %v", want, count)
		}
	}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" && ev.Name == "read" {
			if ev.TS != 1.0 || ev.Dur != 2.0 { // 1000 cyc = 1 µs
				t.Errorf("read span ts/dur = %v/%v µs, want 1/2", ev.TS, ev.Dur)
			}
			if ev.TID != 0 {
				t.Errorf("read span tid = %d, want 0", ev.TID)
			}
		}
	}
}

func TestProfileSinkAttributesWaitVsWork(t *testing.T) {
	pr := NewProfileSink(1)
	p := NewPipeline(1, pr)
	r := p.Thread(0)
	// One writer section of 1000 cycles total, 300 of which were spent in
	// wsync and drain waits; the remaining 700 are work.
	r.Wait(WaitWSync, Writer, 3, 0, 200)
	r.Wait(WaitDrain, Writer, 3, 200, 300)
	r.Abort(Writer, 3, env.AbortReader, 400)
	r.Section(Writer, 3, env.ModeGL, 0, 1000)
	p.Flush()

	profs := pr.Profiles()
	if len(profs) != 1 {
		t.Fatalf("profiles = %d, want 1", len(profs))
	}
	c := profs[0]
	if c.CS != 3 || c.RW != Writer {
		t.Fatalf("profile key = cs%d/rw%d, want cs3/writer", c.CS, c.RW)
	}
	if c.Sections != 1 || c.Aborts != 1 {
		t.Fatalf("sections/aborts = %d/%d, want 1/1", c.Sections, c.Aborts)
	}
	if c.WaitCycles[WaitWSync] != 200 || c.WaitCycles[WaitDrain] != 100 {
		t.Fatalf("wait cycles = %v, want wsync=200 drain=100", c.WaitCycles)
	}
	if c.TotalWait() != 300 || c.WorkCycles != 700 {
		t.Fatalf("wait/work = %d/%d, want 300/700", c.TotalWait(), c.WorkCycles)
	}
	if pr.String() == "" {
		t.Fatal("String() rendered nothing")
	}
}

func TestProfileSinkSampling(t *testing.T) {
	pr := NewProfileSink(1)
	pr.SampleEvery = 4
	p := NewPipeline(1, pr)
	r := p.Thread(0)
	for i := 0; i < 8; i++ {
		r.Wait(WaitRSync, Reader, 0, 0, 50)
		r.Section(Reader, 0, env.ModeUninstrumented, 0, 200)
	}
	p.Flush()
	profs := pr.Profiles()
	if len(profs) != 1 {
		t.Fatalf("profiles = %d, want 1", len(profs))
	}
	c := profs[0]
	// 8 sections, every 4th attributed ×4: totals stay unbiased.
	if c.Sections != 8 {
		t.Fatalf("sections = %d, want 8 (scaled)", c.Sections)
	}
	if c.WaitCycles[WaitRSync] != 8*50 || c.WorkCycles != 8*150 {
		t.Fatalf("wait/work = %d/%d, want %d/%d",
			c.WaitCycles[WaitRSync], c.WorkCycles, 8*50, 8*150)
	}
}

func TestWaitReasonStrings(t *testing.T) {
	seen := map[string]bool{}
	for r := uint8(0); r < NumWaitReasons; r++ {
		s := WaitReasonString(r)
		if s == "" || seen[s] {
			t.Fatalf("reason %d has empty or duplicate name %q", r, s)
		}
		seen[s] = true
	}
	if got := WaitReasonString(NumWaitReasons); got != "unknown" {
		t.Fatalf("out-of-range reason = %q, want unknown", got)
	}
}
