package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// ProfileSink is a lightweight profiler that attributes cycles to
// wait-vs-work per critical-section ID: for every completed section it
// splits the end-to-end latency into the scheduling waits that preceded it
// (rsync, wsync, fallback spins, drains — each attributed to its reason)
// and the remainder, which is work (body execution plus retry overhead).
// This answers the tuning question the paper's §3.2 schemes pose — where
// do threads actually spend their time under a given policy?
//
// SampleEvery > 1 makes the sink attribute only every N-th section per
// slot (scaling the recorded cycles by N to stay unbiased), for runs where
// even drain-time accounting should be thinned.
type ProfileSink struct {
	// SampleEvery attributes one in SampleEvery sections; 0 or 1 means
	// every section.
	SampleEvery uint64

	// TrackChaos retains every wait span and every injected-fault span
	// (EvChaos, from the hostile harness's chaos controller) so Profiles
	// can additionally attribute stall time to the faults whose active
	// windows overlap each wait. Off by default: retention is unbounded,
	// so only chaos runs — which are bounded tests — enable it.
	TrackChaos bool

	slots []profSlot

	// chaos collects fault spans from whichever slot the controller's
	// ring drains on; unlike the per-slot state it needs a lock, because
	// batches for different slots may drain concurrently.
	chaosMu sync.Mutex
	chaos   []Event
}

// profSlot is one thread's accumulation state. Waits are buffered until
// the section that absorbs them completes, mirroring record order: a
// section's waits always precede its EvSection in the ring.
type profSlot struct {
	pendingWait    [NumWaitReasons]uint64
	pendingParked  uint64
	pendingParks   uint64
	pendingAbandon uint64
	seen           uint64
	byKey          map[profKey]*CSProfile

	// waitSpans retains each wait's absolute window (TrackChaos only) so
	// Profiles can intersect stalls with injected-fault windows.
	waitSpans []waitSpan
}

// waitSpan is one retained wait window: which section key stalled, when,
// and for how long.
type waitSpan struct {
	key profKey
	ts  uint64
	dur uint64
}

func (s *profSlot) clearPending() {
	s.pendingWait = [NumWaitReasons]uint64{}
	s.pendingParked, s.pendingParks, s.pendingAbandon = 0, 0, 0
}

type profKey struct {
	cs int32
	rw uint8
}

// CSProfile is the merged wait/work attribution for one critical section.
type CSProfile struct {
	// CS is the critical-section ID; RW its side.
	CS int32
	RW uint8
	// Sections counts attributed completions; Aborts counts aborted
	// hardware attempts.
	Sections uint64
	Aborts   uint64
	// WorkCycles is section latency not attributed to any wait.
	WorkCycles uint64
	// WaitCycles attributes stall time by reason (index with Wait*).
	WaitCycles [NumWaitReasons]uint64
	// ParkedCycles is the subset of WaitCycles spent parked (asleep)
	// rather than spinning; Parks counts park episodes, SpinAbandons
	// counts waits whose spin budget was exhausted before parking, and
	// Wakes counts wakes issued by this section's release paths.
	ParkedCycles uint64
	Parks        uint64
	SpinAbandons uint64
	Wakes        uint64
	// FaultCycles attributes the subset of this section's stall time
	// that overlapped an injected fault's active window, by chaos code
	// (index with Chaos*). Populated only when the sink tracks chaos.
	FaultCycles [NumChaosCodes]uint64
}

// TotalFault sums the per-code fault-overlapped stall cycles.
func (p *CSProfile) TotalFault() uint64 {
	var n uint64
	for _, w := range p.FaultCycles {
		n += w
	}
	return n
}

// TotalWait sums the per-reason wait cycles.
func (p *CSProfile) TotalWait() uint64 {
	var n uint64
	for _, w := range p.WaitCycles {
		n += w
	}
	return n
}

// SpinWait is the stalled time actually burned spinning: total wait minus
// the parked share. This is the number the oversubscription sweep compares
// between spin-only and spin-then-park configurations.
func (p *CSProfile) SpinWait() uint64 {
	if t := p.TotalWait(); t > p.ParkedCycles {
		return t - p.ParkedCycles
	}
	return 0
}

// NewProfileSink builds a profile sink for n thread slots.
func NewProfileSink(n int) *ProfileSink {
	if n < 1 {
		n = 1
	}
	return &ProfileSink{slots: make([]profSlot, n)}
}

// Drain implements Sink.
func (p *ProfileSink) Drain(slot int, events []Event) {
	if slot < 0 || slot >= len(p.slots) {
		return
	}
	s := &p.slots[slot]
	if s.byKey == nil {
		s.byKey = make(map[profKey]*CSProfile)
	}
	every := p.SampleEvery
	if every == 0 {
		every = 1
	}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case EvWait:
			if ev.Code < NumWaitReasons {
				s.pendingWait[ev.Code] += ev.Dur
			}
			if p.TrackChaos {
				s.waitSpans = append(s.waitSpans,
					waitSpan{key: profKey{cs: ev.CS, rw: ev.RW}, ts: ev.TS, dur: ev.Dur})
			}
		case EvChaos:
			if p.TrackChaos {
				p.chaosMu.Lock()
				p.chaos = append(p.chaos, *ev)
				p.chaosMu.Unlock()
			}
		case EvPark:
			switch ev.Code {
			case ParkParked:
				s.pendingParked += ev.Dur
				s.pendingParks++
			case ParkSpinAbandon:
				s.pendingAbandon++
			case ParkWake:
				// Wakes are issued on release paths, after the section
				// completed; attribute them directly.
				s.profile(ev.CS, ev.RW).Wakes++
			}
		case EvAbort:
			s.profile(ev.CS, ev.RW).Aborts++
		case EvSection:
			s.seen++
			if s.seen%every != 0 {
				s.clearPending()
				continue
			}
			c := s.profile(ev.CS, ev.RW)
			c.Sections += every
			var waited uint64
			for r, w := range s.pendingWait {
				c.WaitCycles[r] += w * every
				waited += w
			}
			c.ParkedCycles += s.pendingParked * every
			c.Parks += s.pendingParks * every
			c.SpinAbandons += s.pendingAbandon * every
			s.clearPending()
			if ev.Dur > waited {
				c.WorkCycles += (ev.Dur - waited) * every
			}
		}
	}
}

func (s *profSlot) profile(cs int32, rw uint8) *CSProfile {
	k := profKey{cs: cs, rw: rw}
	c := s.byKey[k]
	if c == nil {
		c = &CSProfile{CS: cs, RW: rw}
		s.byKey[k] = c
	}
	return c
}

// Profiles merges all slots and returns the per-CS attribution, sorted by
// descending total cycles.
func (p *ProfileSink) Profiles() []CSProfile {
	merged := make(map[profKey]*CSProfile)
	for i := range p.slots {
		for k, c := range p.slots[i].byKey {
			m := merged[k]
			if m == nil {
				m = &CSProfile{CS: c.CS, RW: c.RW}
				merged[k] = m
			}
			m.Sections += c.Sections
			m.Aborts += c.Aborts
			m.WorkCycles += c.WorkCycles
			for r := range c.WaitCycles {
				m.WaitCycles[r] += c.WaitCycles[r]
			}
			m.ParkedCycles += c.ParkedCycles
			m.Parks += c.Parks
			m.SpinAbandons += c.SpinAbandons
			m.Wakes += c.Wakes
		}
	}
	if p.TrackChaos {
		p.attributeFaults(merged)
	}
	out := make([]CSProfile, 0, len(merged))
	for _, m := range merged {
		out = append(out, *m)
	}
	sort.Slice(out, func(i, j int) bool {
		ti := out[i].WorkCycles + out[i].TotalWait()
		tj := out[j].WorkCycles + out[j].TotalWait()
		if ti != tj {
			return ti > tj
		}
		if out[i].CS != out[j].CS {
			return out[i].CS < out[j].CS
		}
		return out[i].RW < out[j].RW
	})
	return out
}

// attributeFaults intersects every retained wait window with every
// injected-fault window and charges the overlap to the wait's section key,
// by fault code. Both lists are complete here: Profiles runs after the
// pipeline flush, and the chaos controller stopped before it.
func (p *ProfileSink) attributeFaults(merged map[profKey]*CSProfile) {
	p.chaosMu.Lock()
	chaos := p.chaos
	p.chaosMu.Unlock()
	if len(chaos) == 0 {
		return
	}
	for i := range p.slots {
		for _, w := range p.slots[i].waitSpans {
			m := merged[w.key]
			if m == nil {
				m = &CSProfile{CS: w.key.cs, RW: w.key.rw}
				merged[w.key] = m
			}
			for j := range chaos {
				c := &chaos[j]
				if c.Code >= NumChaosCodes {
					continue
				}
				if ov := overlap(w.ts, w.dur, c.TS, c.Dur); ov > 0 {
					m.FaultCycles[c.Code] += ov
				}
			}
		}
	}
}

// overlap returns the length of the intersection of [aTS, aTS+aDur] and
// [bTS, bTS+bDur], or 0 when they are disjoint.
func overlap(aTS, aDur, bTS, bDur uint64) uint64 {
	lo := aTS
	if bTS > lo {
		lo = bTS
	}
	hi := aTS + aDur
	if b := bTS + bDur; b < hi {
		hi = b
	}
	if hi <= lo {
		return 0
	}
	return hi - lo
}

// ChaosSpans returns the injected-fault events the sink retained, in drain
// order (TrackChaos only).
func (p *ProfileSink) ChaosSpans() []Event {
	p.chaosMu.Lock()
	defer p.chaosMu.Unlock()
	out := make([]Event, len(p.chaos))
	copy(out, p.chaos)
	return out
}

// String renders the attribution as an aligned table.
func (p *ProfileSink) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %-6s %10s %8s %14s %14s  %s\n",
		"cs", "side", "sections", "aborts", "work(cyc)", "wait(cyc)", "wait breakdown")
	for _, c := range p.Profiles() {
		side := "read"
		if c.RW == Writer {
			side = "write"
		}
		var parts []string
		for r := uint8(0); r < NumWaitReasons; r++ {
			if w := c.WaitCycles[r]; w > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", WaitReasonString(r), w))
			}
		}
		if c.ParkedCycles > 0 || c.Parks > 0 {
			parts = append(parts, fmt.Sprintf("parked=%d/%d", c.ParkedCycles, c.Parks))
		}
		if c.SpinAbandons > 0 {
			parts = append(parts, fmt.Sprintf("abandon=%d", c.SpinAbandons))
		}
		if c.Wakes > 0 {
			parts = append(parts, fmt.Sprintf("wakes=%d", c.Wakes))
		}
		for code := uint8(0); code < NumChaosCodes; code++ {
			if w := c.FaultCycles[code]; w > 0 {
				parts = append(parts, fmt.Sprintf("fault:%s=%d", ChaosCodeString(code), w))
			}
		}
		fmt.Fprintf(&b, "%-6d %-6s %10d %8d %14d %14d  %s\n",
			c.CS, side, c.Sections, c.Aborts, c.WorkCycles, c.TotalWait(), strings.Join(parts, " "))
	}
	return b.String()
}
