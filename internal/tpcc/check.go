package tpcc

import (
	"fmt"

	"sprwl/internal/memmodel"
)

// CheckWarehouse verifies the TPC-C consistency conditions this schema
// maintains for one warehouse (a scaled rendition of spec §3.3.2):
//
//	C1. W_YTD equals the sum of the warehouse's district YTDs.
//	C2. In every district, D_NEXT_O_ID >= the oldest undelivered order id.
//	C3. Every live order has an order-line count within [5, MaxOrderLines].
//	C4. Undelivered orders have no carrier; delivered ones do.
//
// The accessor should be a quiescent (no concurrent writers) view.
func (db *DB) CheckWarehouse(acc memmodel.Accessor, w int) error {
	cfg := db.cfg
	var dSum uint64
	for d := 0; d < cfg.DistrictsPerWH; d++ {
		da := db.districtAddr(w, d)
		dSum += acc.Load(da + dYTD)
		next := acc.Load(da + dNextOID)
		oldest := acc.Load(da + dOldestUndeliv)
		if oldest > next {
			return fmt.Errorf("tpcc: w%d d%d: oldest undelivered %d > next order id %d", w, d, oldest, next)
		}
		start := uint64(0)
		if next > uint64(cfg.OrderRing) {
			start = next - uint64(cfg.OrderRing)
		}
		for oid := start; oid < next; oid++ {
			slot := db.orderSlot(oid)
			oa := db.orderAddr(w, d, slot)
			if acc.Load(oa+oID) != oid+1 {
				continue // slot recycled by a newer order
			}
			n := acc.Load(oa + oOLCnt)
			if n < 5 || n > uint64(cfg.MaxOrderLines) {
				return fmt.Errorf("tpcc: w%d d%d o%d: order-line count %d outside [5,%d]", w, d, oid, n, cfg.MaxOrderLines)
			}
			carrier := acc.Load(oa + oCarrierID)
			if oid < oldest && carrier == 0 {
				return fmt.Errorf("tpcc: w%d d%d o%d: delivered order has no carrier", w, d, oid)
			}
			if oid >= oldest && carrier != 0 {
				return fmt.Errorf("tpcc: w%d d%d o%d: undelivered order has carrier %d", w, d, oid, carrier)
			}
		}
	}
	if got := acc.Load(db.warehouseAddr(w) + wYTD); got != dSum {
		return fmt.Errorf("tpcc: w%d: W_YTD = %d but sum of D_YTD = %d", w, got, dSum)
	}
	return nil
}

// Check runs CheckWarehouse over the whole database.
func (db *DB) Check(acc memmodel.Accessor) error {
	for w := 0; w < db.cfg.Warehouses; w++ {
		if err := db.CheckWarehouse(acc, w); err != nil {
			return err
		}
	}
	return nil
}
