// Package tpcc is an in-memory TPC-C port over simulated memory, the §4.2
// macro-benchmark of the paper. It mirrors the structure of the C++
// in-memory port the paper uses [tpccbench]: all five transaction profiles
// run as critical sections of a single read-write lock, with Stock-Level
// and Order-Status as read-only sections and New-Order, Payment and
// Delivery as updates.
//
// Scope of the port (the paper's own port simplifies similarly, and none of
// these affect the concurrency structure the benchmark exists to exercise):
//
//   - Monetary amounts are integer cents; strings (names, addresses) are
//     not materialized — they are conflict-free payload on real hardware
//     and would only pad footprints uniformly.
//   - Customer selection is by id (the spec's 60% by-last-name lookup adds
//     a read-only index probe).
//   - The History table is not stored (it is write-only in the spec);
//     warehouse/district/customer YTD fields carry the same information.
//   - Orders live in fixed-capacity per-district rings sized for the run
//     length; New-Order fails (fully, within its transaction) when a ring
//     is exhausted, mimicking the spec's 1% rollback path.
//
// Every record is line-aligned so transactional footprints map directly to
// simulated cache lines.
package tpcc

import (
	"fmt"

	"sprwl/internal/memmodel"
)

// Config scales the database. Zero fields select the defaults, which are
// scaled down from the TPC-C spec to simulator-friendly sizes while keeping
// every structural ratio (10 districts/warehouse, 5–15 lines/order, 20
// orders scanned by Stock-Level).
type Config struct {
	Warehouses           int
	DistrictsPerWH       int // spec: 10
	CustomersPerDistrict int // spec: 3000; scaled default 96
	Items                int // spec: 100000; scaled default 2048
	// OrderRing is the per-district order capacity; it must exceed the
	// initial orders (one per customer) plus the New-Orders expected
	// during a run.
	OrderRing int
	// MaxOrderLines is the per-order line capacity (spec: 15).
	MaxOrderLines int
}

// Validate fills defaults.
func (c *Config) Validate() {
	if c.Warehouses <= 0 {
		c.Warehouses = 1
	}
	if c.DistrictsPerWH <= 0 {
		c.DistrictsPerWH = 10
	}
	if c.CustomersPerDistrict <= 0 {
		c.CustomersPerDistrict = 96
	}
	if c.Items <= 0 {
		c.Items = 2048
	}
	if c.MaxOrderLines <= 0 {
		c.MaxOrderLines = 15
	}
	if c.OrderRing <= 0 {
		c.OrderRing = c.CustomersPerDistrict + 256
	}
}

// Record layouts (word offsets within a record's line).
const (
	// Warehouse record.
	wYTD = 0

	// District record.
	dYTD           = 0
	dNextOID       = 1 // next order id == number of orders ever created
	dOldestUndeliv = 2 // oldest undelivered order id

	// Customer record.
	cBalance     = 0 // int64 cents, two's complement
	cYTDPayment  = 1
	cPaymentCnt  = 2
	cDeliveryCnt = 3
	cLastOID     = 4 // most recent order id + 1 (0 = none)

	// Stock record.
	sQuantity  = 0
	sYTD       = 1
	sOrderCnt  = 2
	sRemoteCnt = 3

	// Order record.
	oID        = 0 // order id + 1 (0 = empty slot)
	oCID       = 1
	oCarrierID = 2 // carrier id + 1 (0 = undelivered)
	oOLCnt     = 3
	oEntryD    = 4

	// Order-line record.
	olItemID    = 0
	olSupplyWH  = 1
	olQuantity  = 2
	olAmount    = 3
	olDeliveryD = 4
)

// DB is a laid-out, loadable TPC-C database in simulated memory.
type DB struct {
	cfg Config

	warehouses memmodel.Addr // W lines
	districts  memmodel.Addr // W*D lines
	customers  memmodel.Addr // W*D*C lines
	stock      memmodel.Addr // W*I lines
	itemPrice  memmodel.Addr // I words, packed (read-only)
	orders     memmodel.Addr // W*D*Ring lines
	orderLines memmodel.Addr // W*D*Ring*MaxOL lines
}

// Words returns the database's simulated-memory footprint.
func Words(cfg Config) int {
	cfg.Validate()
	w, d, c := cfg.Warehouses, cfg.DistrictsPerWH, cfg.CustomersPerDistrict
	lines := w + // warehouses
		w*d + // districts
		w*d*c + // customers
		w*cfg.Items + // stock
		w*d*cfg.OrderRing + // orders
		w*d*cfg.OrderRing*cfg.MaxOrderLines // order lines
	itemWords := (cfg.Items + memmodel.LineWords - 1) / memmodel.LineWords * memmodel.LineWords
	return lines*memmodel.LineWords + itemWords
}

// New lays a database out in ar (without loading data; see Load).
func New(ar *memmodel.Arena, cfg Config) *DB {
	cfg.Validate()
	w, d, c := cfg.Warehouses, cfg.DistrictsPerWH, cfg.CustomersPerDistrict
	db := &DB{cfg: cfg}
	db.warehouses = ar.AllocLines(w)
	db.districts = ar.AllocLines(w * d)
	db.customers = ar.AllocLines(w * d * c)
	db.stock = ar.AllocLines(w * cfg.Items)
	db.itemPrice = ar.AllocWords(cfg.Items)
	db.orders = ar.AllocLines(w * d * cfg.OrderRing)
	db.orderLines = ar.AllocLines(w * d * cfg.OrderRing * cfg.MaxOrderLines)
	return db
}

// Config returns the validated scale parameters.
func (db *DB) Config() Config { return db.cfg }

// Address helpers. All indices are zero-based.

func (db *DB) warehouseAddr(w int) memmodel.Addr {
	return db.warehouses + memmodel.Addr(w*memmodel.LineWords)
}

func (db *DB) districtAddr(w, d int) memmodel.Addr {
	return db.districts + memmodel.Addr((w*db.cfg.DistrictsPerWH+d)*memmodel.LineWords)
}

func (db *DB) customerAddr(w, d, c int) memmodel.Addr {
	idx := (w*db.cfg.DistrictsPerWH+d)*db.cfg.CustomersPerDistrict + c
	return db.customers + memmodel.Addr(idx*memmodel.LineWords)
}

func (db *DB) stockAddr(w, i int) memmodel.Addr {
	return db.stock + memmodel.Addr((w*db.cfg.Items+i)*memmodel.LineWords)
}

func (db *DB) itemPriceAddr(i int) memmodel.Addr {
	return db.itemPrice + memmodel.Addr(i)
}

// orderSlot maps an order id to its ring slot.
func (db *DB) orderSlot(oid uint64) int { return int(oid % uint64(db.cfg.OrderRing)) }

func (db *DB) orderAddr(w, d int, slot int) memmodel.Addr {
	idx := (w*db.cfg.DistrictsPerWH+d)*db.cfg.OrderRing + slot
	return db.orders + memmodel.Addr(idx*memmodel.LineWords)
}

func (db *DB) orderLineAddr(w, d int, slot, line int) memmodel.Addr {
	idx := ((w*db.cfg.DistrictsPerWH+d)*db.cfg.OrderRing + slot) * db.cfg.MaxOrderLines
	return db.orderLines + memmodel.Addr((idx+line)*memmodel.LineWords)
}

// Load populates the database per the TPC-C §4.3 population rules (scaled):
// full stock, priced items, and one delivered initial order per customer.
// It must run before workers start, through a cost-free accessor.
func (db *DB) Load(acc memmodel.Accessor, seed uint64) {
	cfg := db.cfg
	rng := newRand(seed)
	for i := 0; i < cfg.Items; i++ {
		acc.Store(db.itemPriceAddr(i), 100+rng.N(9901)) // $1.00..$100.00
	}
	for w := 0; w < cfg.Warehouses; w++ {
		acc.Store(db.warehouseAddr(w)+wYTD, 0)
		for i := 0; i < cfg.Items; i++ {
			sa := db.stockAddr(w, i)
			acc.Store(sa+sQuantity, 10+rng.N(91)) // 10..100 per spec
		}
		for d := 0; d < cfg.DistrictsPerWH; d++ {
			da := db.districtAddr(w, d)
			acc.Store(da+dYTD, 0)
			// One initial (delivered) order per customer.
			for c := 0; c < cfg.CustomersPerDistrict; c++ {
				oid := uint64(c)
				slot := db.orderSlot(oid)
				oa := db.orderAddr(w, d, slot)
				nLines := 5 + int(rng.N(11)) // 5..15
				acc.Store(oa+oID, oid+1)
				acc.Store(oa+oCID, uint64(c))
				acc.Store(oa+oCarrierID, 1+rng.N(10))
				acc.Store(oa+oOLCnt, uint64(nLines))
				acc.Store(oa+oEntryD, 0)
				for l := 0; l < nLines; l++ {
					ola := db.orderLineAddr(w, d, slot, l)
					item := rng.N(uint64(cfg.Items))
					acc.Store(ola+olItemID, item)
					acc.Store(ola+olSupplyWH, uint64(w))
					acc.Store(ola+olQuantity, 1+rng.N(10))
					acc.Store(ola+olAmount, 0) // initial orders ship free per spec
					acc.Store(ola+olDeliveryD, 1)
				}
				ca := db.customerAddr(w, d, c)
				acc.Store(ca+cBalance, negCents(1000)) // spec: -$10.00
				acc.Store(ca+cYTDPayment, 1000)
				acc.Store(ca+cPaymentCnt, 1)
				acc.Store(ca+cDeliveryCnt, 1)
				acc.Store(ca+cLastOID, oid+1)
			}
			acc.Store(da+dNextOID, uint64(cfg.CustomersPerDistrict))
			acc.Store(da+dOldestUndeliv, uint64(cfg.CustomersPerDistrict))
		}
	}
}

// negCents encodes a negative cent amount in two's complement.
func negCents(c uint64) uint64 { return ^c + 1 }

// rand is a tiny deterministic PRNG (splitmix64) so the loader and
// transactions are reproducible without importing math/rand state.
type Rand struct{ s uint64 }

func newRand(seed uint64) *Rand { return &Rand{s: seed*2654435769 + 0x9e3779b97f4a7c15} }

// NewWorkerRand returns the deterministic input-drawing PRNG for one worker
// thread.
func NewWorkerRand(seed uint64, slot int) *Rand {
	return newRand(seed ^ (uint64(slot)+1)*0x9e3779b97f4a7c15)
}

func (r *Rand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// n returns a uniform value in [0, n).
func (r *Rand) N(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return r.next() % n
}

// String summarizes the scale.
func (db *DB) String() string {
	c := db.cfg
	return fmt.Sprintf("tpcc[W=%d D=%d C=%d I=%d ring=%d]",
		c.Warehouses, c.DistrictsPerWH, c.CustomersPerDistrict, c.Items, c.OrderRing)
}
