package tpcc

import "sprwl/internal/memmodel"

// The five TPC-C transaction profiles, implemented against an arbitrary
// accessor so they run as read/write critical sections under any lock. All
// inputs are drawn ahead of the critical section (so a retried transaction
// body replays identical work), mirroring how the paper's port drives its
// RWLock.

// NewOrderInput is a pre-drawn New-Order transaction.
type NewOrderInput struct {
	W, D, C int
	Items   []OrderItem
}

// OrderItem is one requested line of a New-Order.
type OrderItem struct {
	Item     int
	SupplyWH int
	Quantity uint64
}

// GenNewOrder draws New-Order inputs per spec §2.4.1: 5–15 items, 1%
// remote supply warehouses (when more than one warehouse exists).
func (db *DB) GenNewOrder(r *Rand) NewOrderInput {
	cfg := db.cfg
	in := NewOrderInput{
		W: int(r.N(uint64(cfg.Warehouses))),
		D: int(r.N(uint64(cfg.DistrictsPerWH))),
		C: int(r.N(uint64(cfg.CustomersPerDistrict))),
	}
	n := 5 + int(r.N(11))
	in.Items = make([]OrderItem, n)
	for i := range in.Items {
		supply := in.W
		if cfg.Warehouses > 1 && r.N(100) == 0 {
			for supply == in.W {
				supply = int(r.N(uint64(cfg.Warehouses)))
			}
		}
		in.Items[i] = OrderItem{
			Item:     int(r.N(uint64(cfg.Items))),
			SupplyWH: supply,
			Quantity: 1 + r.N(10),
		}
	}
	return in
}

// NewOrder executes the New-Order profile (§2.4.2): allocate the next
// order id, price each line against the item table, deplete stock, and
// materialize the order and its lines. It returns false (with no lasting
// effect beyond the consumed order id) when the district's order ring has
// no free slot — the analogue of the spec's rollback path.
func (db *DB) NewOrder(acc memmodel.Accessor, in NewOrderInput, now uint64) bool {
	da := db.districtAddr(in.W, in.D)
	oid := acc.Load(da + dNextOID)
	oldest := acc.Load(da + dOldestUndeliv)
	if oid-oldest >= uint64(db.cfg.OrderRing) {
		// The new order's ring slot still holds an undelivered order:
		// the district's backlog fills the ring.
		return false
	}
	acc.Store(da+dNextOID, oid+1)

	slot := db.orderSlot(oid)
	oa := db.orderAddr(in.W, in.D, slot)
	acc.Store(oa+oID, oid+1)
	acc.Store(oa+oCID, uint64(in.C))
	acc.Store(oa+oCarrierID, 0) // undelivered
	acc.Store(oa+oOLCnt, uint64(len(in.Items)))
	acc.Store(oa+oEntryD, now)

	for l, it := range in.Items {
		price := acc.Load(db.itemPriceAddr(it.Item))
		sa := db.stockAddr(it.SupplyWH, it.Item)
		q := acc.Load(sa + sQuantity)
		if q >= it.Quantity+10 {
			q -= it.Quantity
		} else {
			q = q + 91 - it.Quantity // spec: restock by 91
		}
		acc.Store(sa+sQuantity, q)
		acc.Store(sa+sYTD, acc.Load(sa+sYTD)+it.Quantity)
		acc.Store(sa+sOrderCnt, acc.Load(sa+sOrderCnt)+1)
		if it.SupplyWH != in.W {
			acc.Store(sa+sRemoteCnt, acc.Load(sa+sRemoteCnt)+1)
		}

		ola := db.orderLineAddr(in.W, in.D, slot, l)
		acc.Store(ola+olItemID, uint64(it.Item))
		acc.Store(ola+olSupplyWH, uint64(it.SupplyWH))
		acc.Store(ola+olQuantity, it.Quantity)
		acc.Store(ola+olAmount, it.Quantity*price)
		acc.Store(ola+olDeliveryD, 0)
	}

	ca := db.customerAddr(in.W, in.D, in.C)
	acc.Store(ca+cLastOID, oid+1)
	return true
}

// PaymentInput is a pre-drawn Payment transaction.
type PaymentInput struct {
	W, D, C int
	// Amount in cents (spec: $1.00 .. $5000.00).
	Amount uint64
}

// GenPayment draws Payment inputs. The spec's 15% remote-customer payments
// are preserved when multiple warehouses exist.
func (db *DB) GenPayment(r *Rand) PaymentInput {
	cfg := db.cfg
	in := PaymentInput{
		W:      int(r.N(uint64(cfg.Warehouses))),
		D:      int(r.N(uint64(cfg.DistrictsPerWH))),
		C:      int(r.N(uint64(cfg.CustomersPerDistrict))),
		Amount: 100 + r.N(499901),
	}
	return in
}

// Payment executes the Payment profile (§2.5.2): warehouse, district and
// customer YTD/balance updates.
func (db *DB) Payment(acc memmodel.Accessor, in PaymentInput) {
	wa := db.warehouseAddr(in.W)
	acc.Store(wa+wYTD, acc.Load(wa+wYTD)+in.Amount)
	da := db.districtAddr(in.W, in.D)
	acc.Store(da+dYTD, acc.Load(da+dYTD)+in.Amount)
	ca := db.customerAddr(in.W, in.D, in.C)
	acc.Store(ca+cBalance, acc.Load(ca+cBalance)-in.Amount)
	acc.Store(ca+cYTDPayment, acc.Load(ca+cYTDPayment)+in.Amount)
	acc.Store(ca+cPaymentCnt, acc.Load(ca+cPaymentCnt)+1)
}

// OrderStatusInput is a pre-drawn Order-Status transaction.
type OrderStatusInput struct {
	W, D, C int
}

// GenOrderStatus draws Order-Status inputs.
func (db *DB) GenOrderStatus(r *Rand) OrderStatusInput {
	cfg := db.cfg
	return OrderStatusInput{
		W: int(r.N(uint64(cfg.Warehouses))),
		D: int(r.N(uint64(cfg.DistrictsPerWH))),
		C: int(r.N(uint64(cfg.CustomersPerDistrict))),
	}
}

// OrderStatus executes the read-only Order-Status profile (§2.6.2): the
// customer's balance plus their most recent order and its lines. The
// returned checksum keeps the reads from being optimized away and gives
// tests something to verify.
func (db *DB) OrderStatus(acc memmodel.Accessor, in OrderStatusInput) uint64 {
	ca := db.customerAddr(in.W, in.D, in.C)
	sum := acc.Load(ca + cBalance)
	lastOID := acc.Load(ca + cLastOID)
	if lastOID == 0 {
		return sum
	}
	slot := db.orderSlot(lastOID - 1)
	oa := db.orderAddr(in.W, in.D, slot)
	if acc.Load(oa+oID) != lastOID {
		// The ring slot was recycled; the order is too old to report.
		return sum
	}
	sum += acc.Load(oa + oCarrierID)
	n := int(acc.Load(oa + oOLCnt))
	for l := 0; l < n; l++ {
		ola := db.orderLineAddr(in.W, in.D, slot, l)
		sum += acc.Load(ola+olItemID) + acc.Load(ola+olAmount) + acc.Load(ola+olDeliveryD)
	}
	return sum
}

// DeliveryInput is a pre-drawn Delivery transaction.
type DeliveryInput struct {
	W       int
	Carrier uint64
}

// GenDelivery draws Delivery inputs.
func (db *DB) GenDelivery(r *Rand) DeliveryInput {
	return DeliveryInput{
		W:       int(r.N(uint64(db.cfg.Warehouses))),
		Carrier: 1 + r.N(10),
	}
}

// Delivery executes the Delivery profile (§2.7.4): in each district of the
// warehouse, deliver the oldest undelivered order — stamp the carrier, date
// the lines, and credit the customer with the order total. It returns the
// number of orders delivered.
func (db *DB) Delivery(acc memmodel.Accessor, in DeliveryInput, now uint64) int {
	delivered := 0
	for d := 0; d < db.cfg.DistrictsPerWH; d++ {
		da := db.districtAddr(in.W, d)
		oldest := acc.Load(da + dOldestUndeliv)
		if oldest >= acc.Load(da+dNextOID) {
			continue // nothing undelivered
		}
		slot := db.orderSlot(oldest)
		oa := db.orderAddr(in.W, d, slot)
		acc.Store(oa+oCarrierID, in.Carrier)
		n := int(acc.Load(oa + oOLCnt))
		var total uint64
		for l := 0; l < n; l++ {
			ola := db.orderLineAddr(in.W, d, slot, l)
			total += acc.Load(ola + olAmount)
			acc.Store(ola+olDeliveryD, now)
		}
		c := int(acc.Load(oa + oCID))
		ca := db.customerAddr(in.W, d, c)
		acc.Store(ca+cBalance, acc.Load(ca+cBalance)+total)
		acc.Store(ca+cDeliveryCnt, acc.Load(ca+cDeliveryCnt)+1)
		acc.Store(da+dOldestUndeliv, oldest+1)
		delivered++
	}
	return delivered
}

// StockLevelInput is a pre-drawn Stock-Level transaction.
type StockLevelInput struct {
	W, D      int
	Threshold uint64 // spec: 10..20
}

// GenStockLevel draws Stock-Level inputs.
func (db *DB) GenStockLevel(r *Rand) StockLevelInput {
	return StockLevelInput{
		W:         int(r.N(uint64(db.cfg.Warehouses))),
		D:         int(r.N(uint64(db.cfg.DistrictsPerWH))),
		Threshold: 10 + r.N(11),
	}
}

// stockLevelOrders is the spec's scan depth: the 20 most recent orders.
const stockLevelOrders = 20

// StockLevel executes the read-only Stock-Level profile (§2.8.2): join the
// district's 20 most recent orders' lines against the stock table and
// count items below the threshold. This is the paper's long read-only
// critical section — its footprint (≈ orders × lines × 2 cache lines)
// exceeds every profile's effective HTM read capacity.
func (db *DB) StockLevel(acc memmodel.Accessor, in StockLevelInput) int {
	da := db.districtAddr(in.W, in.D)
	next := acc.Load(da + dNextOID)
	low := 0
	seen := make(map[uint64]struct{}, 64)
	for k := 0; k < stockLevelOrders && uint64(k) < next; k++ {
		oid := next - 1 - uint64(k)
		slot := db.orderSlot(oid)
		oa := db.orderAddr(in.W, in.D, slot)
		if acc.Load(oa+oID) != oid+1 {
			continue // recycled slot
		}
		n := int(acc.Load(oa + oOLCnt))
		for l := 0; l < n; l++ {
			item := acc.Load(db.orderLineAddr(in.W, in.D, slot, l) + olItemID)
			if _, dup := seen[item]; dup {
				continue
			}
			seen[item] = struct{}{}
			if acc.Load(db.stockAddr(in.W, int(item))+sQuantity) < in.Threshold {
				low++
			}
		}
	}
	return low
}
