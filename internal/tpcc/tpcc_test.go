package tpcc

import (
	"testing"

	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
)

func testDB(t *testing.T, cfg Config) (*DB, *htm.Space) {
	t.Helper()
	cfg.Validate()
	space, err := htm.NewSpace(htm.Config{Threads: 2, Words: Words(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	ar := memmodel.NewArena(0, space.Size())
	db := New(ar, cfg)
	db.Load(space, 42)
	return db, space
}

func smallCfg() Config {
	return Config{Warehouses: 2, DistrictsPerWH: 3, CustomersPerDistrict: 8, Items: 64, OrderRing: 32}
}

// checkConsistency asserts the package's consistency conditions (see
// DB.Check) on the current state.
func checkConsistency(t *testing.T, db *DB, acc memmodel.Accessor) {
	t.Helper()
	if err := db.Check(acc); err != nil {
		t.Error(err)
	}
}

func TestLoadIsConsistent(t *testing.T) {
	db, space := testDB(t, smallCfg())
	checkConsistency(t, db, space)
	// Every customer has their initial order reachable.
	cfg := db.cfg
	for w := 0; w < cfg.Warehouses; w++ {
		for d := 0; d < cfg.DistrictsPerWH; d++ {
			da := db.districtAddr(w, d)
			if got := space.Load(da + dNextOID); got != uint64(cfg.CustomersPerDistrict) {
				t.Fatalf("w%d d%d: next oid = %d after load, want %d", w, d, got, cfg.CustomersPerDistrict)
			}
			if got := space.Load(da + dOldestUndeliv); got != uint64(cfg.CustomersPerDistrict) {
				t.Fatalf("w%d d%d: oldest undelivered = %d, want %d (all initial orders delivered)", w, d, got, cfg.CustomersPerDistrict)
			}
		}
	}
}

func TestLoadIsDeterministic(t *testing.T) {
	cfg := smallCfg()
	db1, s1 := testDB(t, cfg)
	db2, s2 := testDB(t, cfg)
	if db1.String() != db2.String() {
		t.Fatalf("scales differ: %s vs %s", db1, db2)
	}
	for a := memmodel.Addr(0); a < s1.Size(); a++ {
		if s1.Load(a) != s2.Load(a) {
			t.Fatalf("loader not deterministic at word %d: %d vs %d", a, s1.Load(a), s2.Load(a))
		}
	}
}

func TestPaymentMovesMoney(t *testing.T) {
	db, space := testDB(t, smallCfg())
	in := PaymentInput{W: 1, D: 2, C: 3, Amount: 1234}
	balBefore := space.Load(db.customerAddr(1, 2, 3) + cBalance)
	db.Payment(space, in)
	if got := space.Load(db.warehouseAddr(1) + wYTD); got != 1234 {
		t.Fatalf("W_YTD = %d, want 1234", got)
	}
	if got := space.Load(db.districtAddr(1, 2) + dYTD); got != 1234 {
		t.Fatalf("D_YTD = %d, want 1234", got)
	}
	if got := space.Load(db.customerAddr(1, 2, 3) + cBalance); got != balBefore-1234 {
		t.Fatalf("C_BALANCE = %d, want %d", got, balBefore-1234)
	}
	checkConsistency(t, db, space)
}

func TestNewOrderCreatesOrderAndDepletesStock(t *testing.T) {
	db, space := testDB(t, smallCfg())
	in := NewOrderInput{
		W: 0, D: 1, C: 2,
		Items: []OrderItem{
			{Item: 5, SupplyWH: 0, Quantity: 3},
			{Item: 9, SupplyWH: 1, Quantity: 2}, // remote
			{Item: 5, SupplyWH: 0, Quantity: 1},
			{Item: 12, SupplyWH: 0, Quantity: 4},
			{Item: 30, SupplyWH: 0, Quantity: 5},
		},
	}
	qBefore := space.Load(db.stockAddr(0, 5) + sQuantity)
	da := db.districtAddr(0, 1)
	next := space.Load(da + dNextOID)
	if !db.NewOrder(space, in, 77) {
		t.Fatal("NewOrder failed with a roomy ring")
	}
	if got := space.Load(da + dNextOID); got != next+1 {
		t.Fatalf("next oid = %d, want %d", got, next+1)
	}
	slot := db.orderSlot(next)
	oa := db.orderAddr(0, 1, slot)
	if got := space.Load(oa + oOLCnt); got != 5 {
		t.Fatalf("O_OL_CNT = %d, want 5", got)
	}
	if got := space.Load(oa + oCarrierID); got != 0 {
		t.Fatalf("new order carrier = %d, want 0 (undelivered)", got)
	}
	// Stock for item 5 depleted by 3+1 (two lines), possibly restocked.
	qAfter := space.Load(db.stockAddr(0, 5) + sQuantity)
	if qAfter != qBefore-4 && qAfter != qBefore-4+91 && qAfter != qBefore-3+91-1 {
		// Restock can apply to either or both lines depending on qBefore.
		if qAfter >= qBefore {
			t.Fatalf("stock quantity did not decrease: %d -> %d", qBefore, qAfter)
		}
	}
	if got := space.Load(db.stockAddr(1, 9) + sRemoteCnt); got != 1 {
		t.Fatalf("S_REMOTE_CNT = %d, want 1", got)
	}
	if got := space.Load(db.customerAddr(0, 1, 2) + cLastOID); got != next+1 {
		t.Fatalf("C_LAST_OID = %d, want %d", got, next+1)
	}
	checkConsistency(t, db, space)
}

func TestNewOrderFailsWhenRingFull(t *testing.T) {
	cfg := smallCfg()
	cfg.OrderRing = cfg.CustomersPerDistrict + 2
	db, space := testDB(t, cfg)
	in := NewOrderInput{W: 0, D: 0, C: 0, Items: []OrderItem{{Item: 1, SupplyWH: 0, Quantity: 1}}}
	// Without deliveries, exactly OrderRing undelivered orders fit (the
	// delivered initial orders may be overwritten); the next one must be
	// refused because its slot still holds an undelivered order.
	for i := 0; i < cfg.OrderRing; i++ {
		if !db.NewOrder(space, in, uint64(i)) {
			t.Fatalf("NewOrder %d refused with free ring slots", i)
		}
	}
	if db.NewOrder(space, in, 99) {
		t.Fatal("NewOrder succeeded onto an undelivered ring slot")
	}
	// Delivering one order frees exactly one slot.
	if n := db.Delivery(space, DeliveryInput{W: 0, Carrier: 1}, 100); n == 0 {
		t.Fatal("Delivery found nothing despite a full backlog")
	}
	if !db.NewOrder(space, in, 101) {
		t.Fatal("NewOrder refused after a delivery freed a slot")
	}
}

func TestDeliveryProcessesOldestAndCreditsCustomer(t *testing.T) {
	db, space := testDB(t, smallCfg())
	// Create one undelivered order in district 0.
	in := NewOrderInput{W: 0, D: 0, C: 4, Items: []OrderItem{
		{Item: 3, SupplyWH: 0, Quantity: 2},
		{Item: 7, SupplyWH: 0, Quantity: 1},
		{Item: 8, SupplyWH: 0, Quantity: 1},
		{Item: 11, SupplyWH: 0, Quantity: 1},
		{Item: 13, SupplyWH: 0, Quantity: 1},
	}}
	if !db.NewOrder(space, in, 5) {
		t.Fatal("NewOrder failed")
	}
	da := db.districtAddr(0, 0)
	oid := space.Load(da+dNextOID) - 1
	slot := db.orderSlot(oid)
	var want uint64
	for l := 0; l < 5; l++ {
		want += space.Load(db.orderLineAddr(0, 0, slot, l) + olAmount)
	}
	balBefore := space.Load(db.customerAddr(0, 0, 4) + cBalance)

	n := db.Delivery(space, DeliveryInput{W: 0, Carrier: 7}, 9)
	if n != 1 {
		t.Fatalf("Delivery processed %d orders, want 1", n)
	}
	oa := db.orderAddr(0, 0, slot)
	if got := space.Load(oa + oCarrierID); got != 7 {
		t.Fatalf("carrier = %d, want 7", got)
	}
	if got := space.Load(db.customerAddr(0, 0, 4) + cBalance); got != balBefore+want {
		t.Fatalf("C_BALANCE = %d, want %d", got, balBefore+want)
	}
	if got := space.Load(da + dOldestUndeliv); got != oid+1 {
		t.Fatalf("oldest undelivered = %d, want %d", got, oid+1)
	}
	// A second delivery finds nothing.
	if n := db.Delivery(space, DeliveryInput{W: 0, Carrier: 7}, 10); n != 0 {
		t.Fatalf("second Delivery processed %d orders, want 0", n)
	}
	checkConsistency(t, db, space)
}

func TestOrderStatusReflectsLastOrder(t *testing.T) {
	db, space := testDB(t, smallCfg())
	before := db.OrderStatus(space, OrderStatusInput{W: 0, D: 0, C: 1})
	// A payment changes the balance, which the checksum includes.
	db.Payment(space, PaymentInput{W: 0, D: 0, C: 1, Amount: 500})
	after := db.OrderStatus(space, OrderStatusInput{W: 0, D: 0, C: 1})
	if before == after {
		t.Fatal("OrderStatus checksum did not change after a payment")
	}
}

func TestStockLevelCountsLowStock(t *testing.T) {
	db, space := testDB(t, smallCfg())
	in := StockLevelInput{W: 0, D: 0, Threshold: 101} // everything is below 101
	low := db.StockLevel(space, in)
	if low == 0 {
		t.Fatal("StockLevel found nothing below an all-inclusive threshold")
	}
	if n := db.StockLevel(space, StockLevelInput{W: 0, D: 0, Threshold: 0}); n != 0 {
		t.Fatalf("StockLevel found %d items below threshold 0", n)
	}
}

func TestStockLevelCountsDistinctItems(t *testing.T) {
	db, space := testDB(t, smallCfg())
	// An order with a repeated item must count it once.
	in := NewOrderInput{W: 1, D: 1, C: 0, Items: []OrderItem{
		{Item: 2, SupplyWH: 1, Quantity: 1},
		{Item: 2, SupplyWH: 1, Quantity: 1},
		{Item: 2, SupplyWH: 1, Quantity: 1},
		{Item: 2, SupplyWH: 1, Quantity: 1},
		{Item: 2, SupplyWH: 1, Quantity: 1},
	}}
	if !db.NewOrder(space, in, 1) {
		t.Fatal("NewOrder failed")
	}
	low := db.StockLevel(space, StockLevelInput{W: 1, D: 1, Threshold: 101})
	// The district's recent orders include the initial ones; just verify
	// the repeated item did not inflate the count beyond distinct items.
	if low > db.cfg.Items {
		t.Fatalf("StockLevel counted %d > %d distinct items", low, db.cfg.Items)
	}
}

func TestRandomWorkloadKeepsInvariants(t *testing.T) {
	db, space := testDB(t, smallCfg())
	rng := NewWorkerRand(7, 0)
	for i := 0; i < 2000; i++ {
		switch rng.N(5) {
		case 0:
			db.Payment(space, db.GenPayment(rng))
		case 1:
			db.NewOrder(space, db.GenNewOrder(rng), uint64(i))
		case 2:
			db.Delivery(space, db.GenDelivery(rng), uint64(i))
		case 3:
			db.OrderStatus(space, db.GenOrderStatus(rng))
		case 4:
			db.StockLevel(space, db.GenStockLevel(rng))
		}
	}
	checkConsistency(t, db, space)
}

func TestWordsMatchesLayout(t *testing.T) {
	cfg := smallCfg()
	cfg.Validate()
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: Words(cfg)})
	ar := memmodel.NewArena(0, space.Size())
	New(ar, cfg) // must not panic: Words covers the layout
}
