package stats

import (
	"math"
	"math/bits"
)

// Latency histograms: alongside the paper's mean latencies, the harness
// reports tail behaviour using compact power-of-two buckets — bucket i
// holds latencies in [2^(i-1), 2^i) cycles. Forty buckets cover anything a
// cycle counter can express in practice.
const latencyBuckets = 40

// bucketOf maps a latency to its histogram bucket.
func bucketOf(cycles uint64) int {
	b := bits.Len64(cycles)
	if b >= latencyBuckets {
		return latencyBuckets - 1
	}
	return b
}

// bucketUpper returns the inclusive upper bound of bucket i.
func bucketUpper(i int) uint64 {
	if i >= 63 {
		return ^uint64(0)
	}
	return 1<<uint(i) - 1
}

// Percentile returns an upper bound on the p-quantile (0 < p <= 1) of kind
// k's latency distribution, using the histogram's bucket resolution. It
// returns 0 when no latencies were recorded.
func (s Snapshot) Percentile(k Kind, p float64) uint64 {
	total := s.LatencyCount[k]
	if total == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Ceiling rank: the p-quantile is the smallest value with at least
	// ⌈p·n⌉ samples at or below it (so p99 of two samples is the larger).
	rank := uint64(math.Ceil(p * float64(total)))
	if rank == 0 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen uint64
	for i := 0; i < latencyBuckets; i++ {
		seen += s.LatencyHist[k][i]
		if seen >= rank {
			return bucketUpper(i)
		}
	}
	return bucketUpper(latencyBuckets - 1)
}
