// Package stats collects the per-thread execution statistics that the
// paper's evaluation plots: commit-mode breakdowns (HTM/ROT/GL/Unins),
// abort-cause breakdowns (conflict/capacity/explicit/reader/spurious), and
// reader/writer latencies.
//
// Since the observability refactor the Collector is one obs.Sink among
// others: lock implementations emit events through per-thread obs rings,
// and the collector folds drained EvSection/EvAbort batches into the same
// counters and latency histograms it always kept, so Snapshot consumers
// are unaffected by the pipeline underneath. Each worker thread still owns
// a Thread accumulator updated without synchronization; a Snapshot merges
// them after the workers have stopped.
package stats

import (
	"fmt"
	"strings"

	"sprwl/internal/env"
	"sprwl/internal/obs"
)

// Kind distinguishes reader and writer critical sections in latency and
// count accounting.
type Kind int

const (
	// Reader is a read-only critical section.
	Reader Kind = iota
	// Writer is an updating critical section.
	Writer
	numKinds
)

// Thread accumulates statistics for one worker thread. It must only be
// updated by its owning thread.
type Thread struct {
	commits [numKinds][env.NumCommitModes]uint64
	aborts  [numKinds][env.NumAbortCauses]uint64

	latCycles [numKinds]uint64
	latCount  [numKinds]uint64
	latHist   [numKinds][latencyBuckets]uint64
}

// Commit records a critical section of the given kind completing in mode m.
func (t *Thread) Commit(k Kind, m env.CommitMode) {
	t.commits[k][m]++
}

// Abort records one aborted hardware attempt of the given kind.
func (t *Thread) Abort(k Kind, c env.AbortCause) {
	if c == env.Committed {
		return
	}
	t.aborts[k][c]++
}

// Latency records the end-to-end latency (enter-to-exit, including waits and
// retries) of one critical section, in cycles.
func (t *Thread) Latency(k Kind, cycles uint64) {
	t.latCycles[k] += cycles
	t.latCount[k]++
	t.latHist[k][bucketOf(cycles)]++
}

// Collector owns one Thread accumulator per worker slot and implements
// obs.Sink: lock implementations emit events through an obs.Pipeline, and
// the collector folds the drained batches into counters and histograms.
type Collector struct {
	threads []Thread
	pipe    *obs.Pipeline
}

var _ obs.Sink = (*Collector)(nil)

// NewCollector builds a collector for n thread slots.
func NewCollector(n int) *Collector {
	if n < 1 {
		n = 1
	}
	return &Collector{threads: make([]Thread, n)}
}

// Thread returns slot's accumulator. Only the owning thread may update it.
func (c *Collector) Thread(slot int) *Thread { return &c.threads[slot] }

// Pipeline returns the collector's event pipeline, building it on first
// call with the collector as the final sink, preceded by any extra sinks
// (trace exporters, profilers) given then. Snapshot flushes this pipeline,
// so callers that construct locks over it get exact counts without extra
// plumbing. Extra sinks passed after the first call are ignored.
func (c *Collector) Pipeline(extra ...obs.Sink) *obs.Pipeline {
	if c.pipe == nil {
		sinks := make([]obs.Sink, 0, len(extra)+1)
		sinks = append(sinks, extra...)
		sinks = append(sinks, c)
		c.pipe = obs.NewPipeline(len(c.threads), sinks...)
	}
	return c.pipe
}

// Drain implements obs.Sink: sections become commit + latency records,
// aborts become abort-cause records; other event kinds are trace-only and
// ignored here. obs.Reader/obs.Writer match Kind's values by contract.
func (c *Collector) Drain(slot int, events []obs.Event) {
	if slot < 0 || slot >= len(c.threads) {
		return
	}
	t := &c.threads[slot]
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case obs.EvSection:
			k := Kind(ev.RW)
			t.Commit(k, env.CommitMode(ev.Code))
			t.Latency(k, ev.Dur)
		case obs.EvAbort:
			t.Abort(Kind(ev.RW), env.AbortCause(ev.Code))
		}
	}
}

// Snapshot merges all accumulators, first flushing the bound pipeline (if
// any) so buffered events are counted. With a pipeline attached, Snapshot
// must only run while no worker is recording — after the workers join.
func (c *Collector) Snapshot() Snapshot {
	c.pipe.Flush()
	ptrs := make([]*Thread, len(c.threads))
	for i := range c.threads {
		ptrs[i] = &c.threads[i]
	}
	return Merge(ptrs...)
}

// Snapshot is the merged view of many Thread sinks.
type Snapshot struct {
	// Commits[k][m] counts critical sections of kind k that completed in
	// commit mode m.
	Commits [numKinds][env.NumCommitModes]uint64
	// Aborts[k][c] counts aborted hardware attempts by cause.
	Aborts [numKinds][env.NumAbortCauses]uint64
	// LatencyCycles[k] / LatencyCount[k] accumulate mean latency input;
	// LatencyHist[k] holds power-of-two buckets for percentiles.
	LatencyCycles [numKinds]uint64
	LatencyCount  [numKinds]uint64
	LatencyHist   [numKinds][latencyBuckets]uint64
}

// Merge produces a Snapshot summing the given thread sinks.
func Merge(threads ...*Thread) Snapshot {
	var s Snapshot
	for _, t := range threads {
		if t == nil {
			continue
		}
		for k := 0; k < int(numKinds); k++ {
			for m := range t.commits[k] {
				s.Commits[k][m] += t.commits[k][m]
			}
			for c := range t.aborts[k] {
				s.Aborts[k][c] += t.aborts[k][c]
			}
			s.LatencyCycles[k] += t.latCycles[k]
			s.LatencyCount[k] += t.latCount[k]
			for b := range t.latHist[k] {
				s.LatencyHist[k][b] += t.latHist[k][b]
			}
		}
	}
	return s
}

// TotalCommits returns the number of completed critical sections of kind k.
func (s Snapshot) TotalCommits(k Kind) uint64 {
	var n uint64
	for _, c := range s.Commits[k] {
		n += c
	}
	return n
}

// TotalOps returns all completed critical sections.
func (s Snapshot) TotalOps() uint64 {
	return s.TotalCommits(Reader) + s.TotalCommits(Writer)
}

// TotalAborts returns the number of aborted hardware attempts of kind k.
func (s Snapshot) TotalAborts(k Kind) uint64 {
	var n uint64
	for _, c := range s.Aborts[k] {
		n += c
	}
	return n
}

// AbortRate returns aborted attempts as a fraction of all hardware attempts
// (aborts / (aborts + HTM/ROT commits)), the quantity the paper's abort
// plots show. It returns 0 when no hardware attempts ran.
func (s Snapshot) AbortRate() float64 {
	var aborts, hwCommits uint64
	for k := 0; k < int(numKinds); k++ {
		for _, c := range s.Aborts[k] {
			aborts += c
		}
		hwCommits += s.Commits[k][env.ModeHTM] + s.Commits[k][env.ModeROT]
	}
	if aborts+hwCommits == 0 {
		return 0
	}
	return float64(aborts) / float64(aborts+hwCommits)
}

// CommitShare returns the fraction of completed critical sections (both
// kinds) that finished in mode m.
func (s Snapshot) CommitShare(m env.CommitMode) float64 {
	total := s.TotalOps()
	if total == 0 {
		return 0
	}
	return float64(s.Commits[Reader][m]+s.Commits[Writer][m]) / float64(total)
}

// AbortShare returns the fraction of all aborts attributed to cause c.
func (s Snapshot) AbortShare(c env.AbortCause) float64 {
	total := s.TotalAborts(Reader) + s.TotalAborts(Writer)
	if total == 0 {
		return 0
	}
	return float64(s.Aborts[Reader][c]+s.Aborts[Writer][c]) / float64(total)
}

// MeanLatency returns the mean critical-section latency of kind k in cycles,
// or 0 if none completed.
func (s Snapshot) MeanLatency(k Kind) float64 {
	if s.LatencyCount[k] == 0 {
		return 0
	}
	return float64(s.LatencyCycles[k]) / float64(s.LatencyCount[k])
}

// String renders a compact human-readable summary.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "ops=%d abortRate=%.1f%%", s.TotalOps(), 100*s.AbortRate())
	for _, m := range []env.CommitMode{env.ModeHTM, env.ModeROT, env.ModeGL, env.ModeUninstrumented, env.ModePessimistic} {
		if share := s.CommitShare(m); share > 0 {
			fmt.Fprintf(&b, " %s=%.1f%%", m, 100*share)
		}
	}
	return b.String()
}
