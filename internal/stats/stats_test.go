package stats

import (
	"strings"
	"testing"

	"sprwl/internal/env"
)

func TestMergeAggregatesAcrossThreads(t *testing.T) {
	var a, b Thread
	a.Commit(Reader, env.ModeUninstrumented)
	a.Commit(Reader, env.ModeUninstrumented)
	a.Commit(Writer, env.ModeHTM)
	a.Abort(Writer, env.AbortReader)
	b.Commit(Writer, env.ModeGL)
	b.Abort(Writer, env.AbortCapacity)
	b.Abort(Reader, env.AbortConflict)
	b.Latency(Reader, 100)
	b.Latency(Reader, 300)

	s := Merge(&a, &b)
	if got := s.TotalCommits(Reader); got != 2 {
		t.Fatalf("TotalCommits(Reader) = %d, want 2", got)
	}
	if got := s.TotalCommits(Writer); got != 2 {
		t.Fatalf("TotalCommits(Writer) = %d, want 2", got)
	}
	if got := s.TotalOps(); got != 4 {
		t.Fatalf("TotalOps = %d, want 4", got)
	}
	if got := s.TotalAborts(Writer); got != 2 {
		t.Fatalf("TotalAborts(Writer) = %d, want 2", got)
	}
	if got := s.MeanLatency(Reader); got != 200 {
		t.Fatalf("MeanLatency(Reader) = %f, want 200", got)
	}
}

func TestMergeToleratesNil(t *testing.T) {
	var a Thread
	a.Commit(Reader, env.ModeHTM)
	s := Merge(&a, nil)
	if got := s.TotalOps(); got != 1 {
		t.Fatalf("TotalOps = %d, want 1", got)
	}
}

func TestAbortRate(t *testing.T) {
	var a Thread
	for i := 0; i < 3; i++ {
		a.Commit(Writer, env.ModeHTM)
	}
	a.Abort(Writer, env.AbortConflict)
	s := Merge(&a)
	if got := s.AbortRate(); got != 0.25 {
		t.Fatalf("AbortRate = %f, want 0.25", got)
	}
}

func TestAbortRateIgnoresNonHardwareCommits(t *testing.T) {
	var a Thread
	a.Commit(Reader, env.ModeUninstrumented) // not a hardware attempt
	a.Commit(Writer, env.ModeHTM)
	a.Abort(Writer, env.AbortCapacity)
	s := Merge(&a)
	if got := s.AbortRate(); got != 0.5 {
		t.Fatalf("AbortRate = %f, want 0.5 (unins commits excluded)", got)
	}
}

func TestCommittedIsNotAnAbort(t *testing.T) {
	var a Thread
	a.Abort(Writer, env.Committed)
	s := Merge(&a)
	if got := s.TotalAborts(Writer); got != 0 {
		t.Fatalf("TotalAborts = %d after recording Committed, want 0", got)
	}
}

func TestShares(t *testing.T) {
	var a Thread
	a.Commit(Reader, env.ModeUninstrumented)
	a.Commit(Writer, env.ModeHTM)
	a.Commit(Writer, env.ModeHTM)
	a.Commit(Writer, env.ModeGL)
	a.Abort(Writer, env.AbortReader)
	a.Abort(Writer, env.AbortReader)
	a.Abort(Writer, env.AbortConflict)
	s := Merge(&a)
	if got := s.CommitShare(env.ModeHTM); got != 0.5 {
		t.Fatalf("CommitShare(HTM) = %f, want 0.5", got)
	}
	if got := s.CommitShare(env.ModeUninstrumented); got != 0.25 {
		t.Fatalf("CommitShare(Unins) = %f, want 0.25", got)
	}
	if got := s.AbortShare(env.AbortReader); got < 0.66 || got > 0.67 {
		t.Fatalf("AbortShare(reader) = %f, want 2/3", got)
	}
}

func TestEmptySnapshotIsSafe(t *testing.T) {
	var s Snapshot
	if s.AbortRate() != 0 || s.CommitShare(env.ModeHTM) != 0 || s.MeanLatency(Writer) != 0 || s.AbortShare(env.AbortReader) != 0 {
		t.Fatal("empty snapshot produced nonzero ratios")
	}
}

func TestStringSummary(t *testing.T) {
	var a Thread
	a.Commit(Writer, env.ModeHTM)
	a.Commit(Reader, env.ModeUninstrumented)
	got := Merge(&a).String()
	for _, want := range []string{"ops=2", "HTM=50.0%", "Unins=50.0%"} {
		if !strings.Contains(got, want) {
			t.Fatalf("String() = %q, missing %q", got, want)
		}
	}
}
