package stats

import (
	"math/rand/v2"
	"sort"
	"testing"
)

func TestBucketOf(t *testing.T) {
	tests := []struct {
		cycles uint64
		bucket int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{^uint64(0), latencyBuckets - 1},
	}
	for _, tt := range tests {
		if got := bucketOf(tt.cycles); got != tt.bucket {
			t.Errorf("bucketOf(%d) = %d, want %d", tt.cycles, got, tt.bucket)
		}
	}
}

func TestPercentileEmpty(t *testing.T) {
	var s Snapshot
	if got := s.Percentile(Reader, 0.99); got != 0 {
		t.Fatalf("Percentile on empty snapshot = %d, want 0", got)
	}
}

func TestPercentileSingleValue(t *testing.T) {
	var th Thread
	th.Latency(Writer, 100)
	s := Merge(&th)
	p50 := s.Percentile(Writer, 0.5)
	// 100 lands in bucket [64,128); the reported bound must cover it and
	// stay within a power of two.
	if p50 < 100 || p50 > 127 {
		t.Fatalf("Percentile = %d, want within [100,127]", p50)
	}
}

// TestPercentileOrderAndCoverage: on a random sample, percentile estimates
// are monotone in p and bound the true order statistics from above (within
// the bucket's factor-of-two resolution).
func TestPercentileOrderAndCoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	var th Thread
	var values []uint64
	for i := 0; i < 5000; i++ {
		v := uint64(rng.ExpFloat64() * 10000)
		values = append(values, v)
		th.Latency(Reader, v)
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	s := Merge(&th)

	prev := uint64(0)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99, 1.0} {
		got := s.Percentile(Reader, p)
		if got < prev {
			t.Fatalf("percentiles not monotone: p=%.2f gave %d < %d", p, got, prev)
		}
		prev = got
		idx := int(p*float64(len(values))) - 1
		if idx < 0 {
			idx = 0
		}
		truth := values[idx]
		if got < truth {
			t.Fatalf("p=%.2f estimate %d below true order statistic %d", p, got, truth)
		}
		if truth > 0 && got > truth*2+1 {
			t.Fatalf("p=%.2f estimate %d exceeds 2x true value %d (bucket resolution violated)", p, got, truth)
		}
	}
}

func TestPercentileClampsP(t *testing.T) {
	var th Thread
	th.Latency(Reader, 10)
	s := Merge(&th)
	if s.Percentile(Reader, -1) == 0 {
		t.Fatal("Percentile(-1) returned 0 despite recorded data")
	}
	if s.Percentile(Reader, 2) == 0 {
		t.Fatal("Percentile(2) returned 0 despite recorded data")
	}
}

// TestPercentileBoundaryP: p=0 degenerates to the minimum sample's bucket
// (rank clamps to 1) and p=1 to the maximum's.
func TestPercentileBoundaryP(t *testing.T) {
	var th Thread
	th.Latency(Reader, 10)     // bucket [8,16)
	th.Latency(Reader, 100)    // bucket [64,128)
	th.Latency(Reader, 100000) // bucket [65536,131072)
	s := Merge(&th)
	if got := s.Percentile(Reader, 0); got != 15 {
		t.Fatalf("Percentile(0) = %d, want 15 (upper bound of the min sample's bucket)", got)
	}
	if got := s.Percentile(Reader, 1); got != 131071 {
		t.Fatalf("Percentile(1) = %d, want 131071 (upper bound of the max sample's bucket)", got)
	}
}

// TestPercentileAllZeroLatencies: zero-cycle sections land in bucket 0 whose
// upper bound is 0 — every percentile reports 0 even though samples exist,
// and the count still distinguishes this from an empty snapshot.
func TestPercentileAllZeroLatencies(t *testing.T) {
	var th Thread
	for i := 0; i < 10; i++ {
		th.Latency(Writer, 0)
	}
	s := Merge(&th)
	if s.LatencyCount[Writer] != 10 {
		t.Fatalf("latency count = %d, want 10", s.LatencyCount[Writer])
	}
	for _, p := range []float64{0, 0.5, 0.99, 1} {
		if got := s.Percentile(Writer, p); got != 0 {
			t.Fatalf("Percentile(%v) = %d, want 0 for all-zero samples", p, got)
		}
	}
}

// TestPercentileAcrossMergedThreads: merging moves each thread's histogram
// into the snapshot intact, so percentiles over the union see samples from
// every thread.
func TestPercentileAcrossMergedThreads(t *testing.T) {
	var a, b Thread
	for i := 0; i < 99; i++ {
		a.Latency(Reader, 10) // bucket [8,16)
	}
	b.Latency(Reader, 1<<20) // one outlier from another thread
	s := Merge(&a, &b)
	if got := s.Percentile(Reader, 0.5); got != 15 {
		t.Fatalf("p50 = %d, want 15", got)
	}
	if got := s.Percentile(Reader, 1); got != 1<<21-1 {
		t.Fatalf("p100 = %d, want %d (outlier's bucket)", got, 1<<21-1)
	}
}

func TestHistogramMerges(t *testing.T) {
	var a, b Thread
	a.Latency(Writer, 8)
	b.Latency(Writer, 8)
	b.Latency(Writer, 1<<20)
	s := Merge(&a, &b)
	var total uint64
	for _, c := range s.LatencyHist[Writer] {
		total += c
	}
	if total != 3 {
		t.Fatalf("merged histogram holds %d samples, want 3", total)
	}
}
