package workload

import (
	"fmt"

	"sprwl/internal/alloc"
	"sprwl/internal/env"
	"sprwl/internal/locktable"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
	"sprwl/internal/skiplist"
)

// Critical-section IDs for the sharded KV workload.
const (
	csKVGet = iota
	csKVScan
	csKVPut
	csKVDelete
	csKVMulti
	// NumKVCS is the number of distinct KV critical sections.
	NumKVCS
)

// KVConfig shapes the sharded key-value store behind sprwl-serve: one
// skiplist per lock-table shard, point ops under the key's shard lock,
// range scans under a whole-table read span, and multi-key updates under
// an AcquireN write span.
type KVConfig struct {
	// Table configures the underlying lock table. Table.NumCS is raised
	// to NumKVCS if lower.
	Table locktable.Config
	// Items is the key-space size (keys 0..Items-1, fully populated at
	// setup).
	Items int
}

// Validate fills defaults.
func (c *KVConfig) Validate() {
	if c.Items <= 0 {
		c.Items = 16384
	}
	if c.Table.NumCS < NumKVCS {
		c.Table.NumCS = NumKVCS
	}
}

// kvNodeBlock is one pool block rounded to whole lines.
func kvNodeBlock() int {
	return (skiplist.NodeWords + memmodel.LineWords - 1) / memmodel.LineWords * memmodel.LineWords
}

// KVWords returns the simulated-memory footprint a KV built with c needs:
// the lock table, one list head per shard, the populated nodes, and churn
// headroom for insert/delete imbalance across worker free-lists.
func KVWords(c KVConfig) int {
	c.Validate()
	shards := locktable.Words(c.Table) // lock state
	cfg := c.Table
	heads := locktable.NumShards(cfg) * skiplist.Words()
	nodes := (c.Items + (c.Table.Threads+1)*128) * kvNodeBlock()
	return shards + heads + nodes + memmodel.LineWords
}

// KV is a sharded key-value store: key k lives in the skiplist of the
// shard k hashes to, and that shard's SpRWL lock protects it.
type KV struct {
	Table *locktable.Table
	lists []*skiplist.List
	pool  *alloc.Pool
	items uint64
}

// SetupKV carves the table and the per-shard lists out of ar and populates
// keys 0..Items-1 (value == key) through e directly; single-threaded setup
// only.
func SetupKV(e env.Env, ar *memmodel.Arena, cfg KVConfig, pipe *obs.Pipeline) (*KV, error) {
	cfg.Validate()
	tbl, err := locktable.New(e, ar, cfg.Table, pipe)
	if err != nil {
		return nil, err
	}
	slots := cfg.Table.Threads
	if slots < 1 {
		slots = 1
	}
	kv := &KV{
		Table: tbl,
		lists: make([]*skiplist.List, tbl.Shards()),
		pool:  alloc.NewPool(ar, skiplist.NodeWords, slots),
		items: uint64(cfg.Items),
	}
	for i := range kv.lists {
		kv.lists[i] = skiplist.New(ar, kv.pool)
	}
	for k := uint64(0); k < kv.items; k++ {
		l := kv.lists[tbl.ShardIndex(k)]
		if !l.Insert(e, k, k, kv.pool.Get(0)) {
			return nil, fmt.Errorf("workload: duplicate key %d during KV populate", k)
		}
	}
	return kv, nil
}

// Items returns the configured key-space size.
func (kv *KV) Items() uint64 { return kv.items }

// NewClient returns worker slot's endpoint. A Client is single-goroutine,
// like the lock handle it wraps; its op bodies are pre-bound closures, so
// steady-state point ops inherit the lock table's 0 allocs/op contract.
func (kv *KV) NewClient(slot int) *Client {
	c := &Client{kv: kv, h: kv.Table.NewHandle(slot), slot: slot}
	c.getBody = func(acc memmodel.Accessor) {
		c.val, c.ok = c.kv.lists[c.shard].Get(acc, c.key)
	}
	c.putBody = func(acc memmodel.Accessor) {
		c.ok = c.kv.lists[c.shard].Insert(acc, c.key, c.val, c.node)
	}
	c.delBody = func(acc memmodel.Accessor) {
		c.node = c.kv.lists[c.shard].Delete(acc, c.key)
	}
	c.scanBody = func(acc memmodel.Accessor) {
		// Reset inside the body: a re-executed body must not double-count.
		c.count, c.sum = 0, 0
		for _, l := range c.kv.lists {
			n, s := l.Range(acc, c.lo, c.hi)
			c.count += n
			c.sum += s
		}
	}
	c.multiBody = func(acc memmodel.Accessor) {
		c.count = 0
		for _, k := range c.mkeys {
			if c.kv.lists[c.kv.Table.ShardIndex(k)].Update(acc, k, c.val) {
				c.count++
			}
		}
	}
	return c
}

// Client is one worker's endpoint to the KV.
type Client struct {
	kv   *KV
	h    *locktable.Handle
	slot int

	// Per-op operands and results, written by the pre-bound bodies below.
	// Bodies recompute every field they write, so transactional
	// re-execution is safe.
	key, val uint64
	shard    int
	lo, hi   uint64
	mkeys    []uint64
	node     memmodel.Addr
	ok       bool
	count    int
	sum      uint64

	getBody   func(memmodel.Accessor)
	putBody   func(memmodel.Accessor)
	delBody   func(memmodel.Accessor)
	scanBody  func(memmodel.Accessor)
	multiBody func(memmodel.Accessor)
}

// Get returns key's value under the key's shard lock.
//
//sprwl:hotpath
func (c *Client) Get(key uint64) (uint64, bool) {
	c.key, c.shard = key, c.kv.Table.ShardIndex(key)
	c.h.Read(key, csKVGet, c.getBody)
	return c.val, c.ok
}

// Put upserts (key, val) under the key's shard lock and reports whether
// the key was newly inserted. Not a declared hot path: the node pool's
// free lists grow amortized, so Put may allocate on a pool refill (the
// lock acquisition underneath keeps its 0 allocs/op contract).
func (c *Client) Put(key, val uint64) bool {
	c.key, c.val, c.shard = key, val, c.kv.Table.ShardIndex(key)
	c.node = c.kv.pool.Get(c.slot)
	c.h.Write(key, csKVPut, c.putBody)
	if !c.ok {
		c.kv.pool.Put(c.slot, c.node)
	}
	return c.ok
}

// Delete removes key under its shard lock, reporting whether it was
// present; the node is recycled after the section commits. Like Put, not a
// declared hot path — recycling grows the pool's free list amortized.
func (c *Client) Delete(key uint64) bool {
	c.key, c.shard = key, c.kv.Table.ShardIndex(key)
	c.h.Write(key, csKVDelete, c.delBody)
	if c.node != 0 {
		c.kv.pool.Put(c.slot, c.node)
		return true
	}
	return false
}

// Scan visits every key in [lo, lo+span) across all shards under a
// whole-table read span and returns the visit count and value sum.
//
//sprwl:hotpath
func (c *Client) Scan(lo uint64, span int) (int, uint64) {
	c.lo, c.hi = lo, lo+uint64(span)
	c.h.ReadAll(csKVScan, c.scanBody)
	return c.count, c.sum
}

// MultiPut sets every present key in keys to val atomically — one AcquireN
// write span over the covered shards — and returns how many updates it
// applied (a duplicate key occurrence re-applies the same value; absent
// keys are skipped).
//
//sprwl:hotpath
func (c *Client) MultiPut(keys []uint64, val uint64) int {
	c.mkeys, c.val = keys, val
	c.h.WriteN(keys, csKVMulti, c.multiBody)
	c.mkeys = nil
	return c.count
}
