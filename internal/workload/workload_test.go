package workload

import (
	"testing"

	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
	"sprwl/internal/stats"
	"sprwl/internal/tle"
	"sprwl/internal/tpcc"
)

func TestHashmapConfigDefaults(t *testing.T) {
	var c HashmapConfig
	c.Validate()
	if c.Buckets <= 0 || c.Items <= 0 || c.LookupsPerRead <= 0 || c.Headroom <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	c2 := HashmapConfig{UpdatePercent: 150}
	c2.Validate()
	if c2.UpdatePercent != 100 {
		t.Fatalf("UpdatePercent not clamped: %d", c2.UpdatePercent)
	}
}

func TestSetupHashmapPopulates(t *testing.T) {
	cfg := HashmapConfig{Buckets: 64, Items: 1024, LookupsPerRead: 2, UpdatePercent: 50}
	space := htm.MustNewSpace(htm.Config{Threads: 2, Words: HashmapWords(cfg) + 1024})
	ar := memmodel.NewArena(0, space.Size())
	hm := SetupHashmap(space, ar, cfg, 2)
	if got := hm.Map.Len(space); got != 1024 {
		t.Fatalf("populated %d items, want 1024", got)
	}
	if fp := hm.ReaderFootprintLines(); fp != 2*(1024/64) {
		t.Fatalf("ReaderFootprintLines = %d, want %d", fp, 2*(1024/64))
	}
}

// TestHashmapWorkerPreservesPopulation: balanced inserts/deletes over the
// populated key space keep the map size within a reasonable band and never
// corrupt the structure.
func TestHashmapWorkerPreservesPopulation(t *testing.T) {
	cfg := HashmapConfig{Buckets: 32, Items: 512, LookupsPerRead: 3, UpdatePercent: 60}
	space := htm.MustNewSpace(htm.Config{Threads: 2, Words: HashmapWords(cfg) + tleWords()})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(2)
	lock := tle.New(e, ar, 0, col.Pipeline())
	hm := SetupHashmap(space, ar, cfg, 2)

	step := hm.Worker(lock.NewHandle(0), 0, 7)
	for i := 0; i < 2000; i++ {
		step()
	}
	size := hm.Map.Len(space)
	if size < 512/2 || size > 512*2 {
		t.Fatalf("map size drifted to %d from 512 under balanced updates", size)
	}
	s := col.Snapshot()
	if s.TotalOps() != 2000 {
		t.Fatalf("ops = %d, want 2000", s.TotalOps())
	}
	wantUpdates := float64(s.TotalCommits(stats.Writer)) / 2000
	if wantUpdates < 0.5 || wantUpdates > 0.7 {
		t.Fatalf("update fraction = %.2f, want ~0.60", wantUpdates)
	}
}

func tleWords() int { return 16 * memmodel.LineWords }

func TestPaperMixSumsTo100(t *testing.T) {
	if got := PaperMix().total(); got != 100 {
		t.Fatalf("paper mix totals %d, want 100", got)
	}
}

// TestTPCCWorkerMixRatios: over many steps the observed read/write split
// must match the mix (35% read-only in the paper's mix).
func TestTPCCWorkerMixRatios(t *testing.T) {
	scale := tpcc.Config{Warehouses: 2, CustomersPerDistrict: 16, Items: 128, OrderRing: 64}
	scale.Validate()
	space := htm.MustNewSpace(htm.Config{Threads: 2, Words: TPCCWords(scale) + tleWords()})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(2)
	lock := tle.New(e, ar, 0, col.Pipeline())
	db := SetupTPCC(space, ar, scale, PaperMix(), 3)

	var now uint64
	step := db.Worker(lock.NewHandle(0), 0, 3, func() uint64 { now++; return now })
	const steps = 3000
	for i := 0; i < steps; i++ {
		step()
	}
	s := col.Snapshot()
	readFrac := float64(s.TotalCommits(stats.Reader)) / float64(steps)
	if readFrac < 0.30 || readFrac > 0.40 {
		t.Fatalf("read-only fraction = %.3f, want ~0.35", readFrac)
	}
}

// TestTPCCWorkerDeterministicInputs: the same seed yields the same
// transaction sequence (required for reproducible simulations).
func TestTPCCWorkerDeterministicInputs(t *testing.T) {
	run := func() uint64 {
		scale := tpcc.Config{Warehouses: 1, CustomersPerDistrict: 8, Items: 64, OrderRing: 32}
		scale.Validate()
		space := htm.MustNewSpace(htm.Config{Threads: 1, Words: TPCCWords(scale) + tleWords()})
		e := htm.NewRuntime(space, nil)
		ar := memmodel.NewArena(0, space.Size())
		lock := tle.New(e, ar, 0, nil)
		db := SetupTPCC(space, ar, scale, PaperMix(), 11)
		var now uint64
		step := db.Worker(lock.NewHandle(0), 0, 11, func() uint64 { now++; return now })
		for i := 0; i < 500; i++ {
			step()
		}
		// Fingerprint the whole database.
		var sum uint64
		for a := memmodel.Addr(0); a < space.Size(); a += 3 {
			sum = sum*31 + space.Load(a)
		}
		return sum
	}
	if run() != run() {
		t.Fatal("TPC-C worker not deterministic across identical runs")
	}
}

// TestWorkerBodiesAreRetrySafe: running a workload under a lock whose
// transactional attempts constantly abort (spurious injection) must not
// corrupt the map — bodies re-execute cleanly.
func TestWorkerBodiesAreRetrySafe(t *testing.T) {
	cfg := HashmapConfig{Buckets: 16, Items: 128, LookupsPerRead: 2, UpdatePercent: 80}
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: HashmapWords(cfg) + tleWords(), SpuriousEvery: 3})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	lock := tle.New(e, ar, 2, nil)
	hm := SetupHashmap(space, ar, cfg, 1)
	step := hm.Worker(lock.NewHandle(0), 0, 5)
	for i := 0; i < 500; i++ {
		step()
	}
	size := hm.Map.Len(space)
	if size < 128/2 || size > 128*2 {
		t.Fatalf("map size %d drifted badly under constant retries", size)
	}
}

var _ rwlock.Lock = (*tle.TLE)(nil)

func TestRangeScanConfigDefaults(t *testing.T) {
	var c RangeScanConfig
	c.Validate()
	if c.Items <= 0 || c.ScanSpan <= 0 {
		t.Fatalf("defaults not filled: %+v", c)
	}
	c2 := RangeScanConfig{UpdatePercent: -5}
	c2.Validate()
	if c2.UpdatePercent != 0 {
		t.Fatalf("UpdatePercent not clamped: %d", c2.UpdatePercent)
	}
}

// TestRangeScanWorkerBoundedPopulation: the ordered-map workload's key
// space is fixed, so the node population can never exceed Items and the
// structure stays valid under churn.
func TestRangeScanWorkerBoundedPopulation(t *testing.T) {
	cfg := RangeScanConfig{Items: 512, ScanSpan: 64, UpdatePercent: 70}
	space := htm.MustNewSpace(htm.Config{Threads: 2, Words: RangeScanWords(cfg) + tleWords()})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	lock := tle.New(e, ar, 0, nil)
	rs := SetupRangeScan(space, ar, cfg, 2)
	if got := rs.List.Len(space); got != 512 {
		t.Fatalf("populated %d items, want 512", got)
	}
	step := rs.Worker(lock.NewHandle(0), 0, 3)
	for i := 0; i < 3000; i++ {
		step()
	}
	size := rs.List.Len(space)
	if size > 512 {
		t.Fatalf("population grew to %d beyond the %d key space", size, 512)
	}
	if size < 100 {
		t.Fatalf("population collapsed to %d under balanced updates", size)
	}
	// Ordered traversal still sound.
	count, _ := rs.List.Range(space, 0, 512)
	if count != size {
		t.Fatalf("Range count %d != Len %d", count, size)
	}
}
