package workload

import (
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
	"sprwl/internal/tpcc"
)

// Critical-section IDs for the five TPC-C profiles.
const (
	csNewOrder = iota
	csPayment
	csOrderStatus
	csDelivery
	csStockLevel
	// NumTPCCCS is the number of distinct TPC-C critical sections.
	NumTPCCCS
)

// TPCCMix is the paper's §4.2 transaction mix, in percent (it follows the
// TPC-C spec's required minimums): Stock-Level 31, Delivery 4,
// Order-Status 4, Payment 43, New-Order 18 — i.e. 35% read-only.
type TPCCMix struct {
	StockLevel, Delivery, OrderStatus, Payment, NewOrder int
}

// PaperMix returns the mix used throughout the paper's Fig. 7.
func PaperMix() TPCCMix {
	return TPCCMix{StockLevel: 31, Delivery: 4, OrderStatus: 4, Payment: 43, NewOrder: 18}
}

func (m TPCCMix) total() int {
	return m.StockLevel + m.Delivery + m.OrderStatus + m.Payment + m.NewOrder
}

// TPCC drives a loaded TPC-C database through a lock.
type TPCC struct {
	DB  *tpcc.DB
	mix TPCCMix
}

// TPCCWords returns the simulated-memory footprint for the scale.
func TPCCWords(cfg tpcc.Config) int { return tpcc.Words(cfg) }

// SetupTPCC lays out and loads the database.
func SetupTPCC(acc memmodel.Accessor, ar *memmodel.Arena, cfg tpcc.Config, mix TPCCMix, seed uint64) *TPCC {
	if mix.total() == 0 {
		mix = PaperMix()
	}
	db := tpcc.New(ar, cfg)
	db.Load(acc, seed)
	return &TPCC{DB: db, mix: mix}
}

// Worker returns the per-thread step function: each call draws one
// transaction from the mix and executes it as a critical section.
// Transaction inputs are drawn before entering the section so retried
// bodies replay identical work.
func (w *TPCC) Worker(h rwlock.Handle, slot int, seed uint64, now func() uint64) func() {
	rng := tpcc.NewWorkerRand(seed, slot)
	db := w.DB
	m := w.mix
	total := m.total()
	return func() {
		pick := int(rng.N(uint64(total)))
		switch {
		case pick < m.StockLevel:
			in := db.GenStockLevel(rng)
			h.Read(csStockLevel, func(acc memmodel.Accessor) {
				db.StockLevel(acc, in)
			})
		case pick < m.StockLevel+m.OrderStatus:
			in := db.GenOrderStatus(rng)
			h.Read(csOrderStatus, func(acc memmodel.Accessor) {
				db.OrderStatus(acc, in)
			})
		case pick < m.StockLevel+m.OrderStatus+m.Delivery:
			in := db.GenDelivery(rng)
			ts := now() // drawn outside the body: retries must replay one timestamp
			h.Write(csDelivery, func(acc memmodel.Accessor) {
				db.Delivery(acc, in, ts)
			})
		case pick < m.StockLevel+m.OrderStatus+m.Delivery+m.Payment:
			in := db.GenPayment(rng)
			h.Write(csPayment, func(acc memmodel.Accessor) {
				db.Payment(acc, in)
			})
		default:
			in := db.GenNewOrder(rng)
			ts := now() // drawn outside the body: retries must replay one timestamp
			h.Write(csNewOrder, func(acc memmodel.Accessor) {
				db.NewOrder(acc, in, ts)
			})
		}
	}
}
