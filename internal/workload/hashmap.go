// Package workload builds the paper's benchmark workloads (the §4.1
// hashmap micro-benchmark and the §4.2 TPC-C port) on top of the shared
// data-structure substrates, and drives them through any rwlock.Lock.
package workload

import (
	"math/rand/v2"

	"sprwl/internal/alloc"
	"sprwl/internal/hashmap"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
)

// Critical-section IDs used by the hashmap workload for duration
// estimation.
const (
	csLookup = iota
	csInsert
	csDelete
	// NumHashmapCS is the number of distinct hashmap critical sections.
	NumHashmapCS
)

// HashmapConfig shapes the §4.1 micro-benchmark. The paper controls reader
// size via LookupsPerRead (1 = fits HTM, 10 = overflows) and the update
// ratio via UpdatePercent (10/50/90).
type HashmapConfig struct {
	Buckets        int
	Items          int
	LookupsPerRead int
	UpdatePercent  int
	// Headroom is extra node capacity (fraction of Items) for in-flight
	// inserts; 0 selects a 1/8 default.
	Headroom int
}

// Validate fills defaults and sanity-checks the configuration.
func (c *HashmapConfig) Validate() {
	if c.Buckets <= 0 {
		c.Buckets = 512
	}
	if c.Items <= 0 {
		c.Items = c.Buckets * 32
	}
	if c.LookupsPerRead <= 0 {
		c.LookupsPerRead = 1
	}
	if c.UpdatePercent < 0 {
		c.UpdatePercent = 0
	}
	if c.UpdatePercent > 100 {
		c.UpdatePercent = 100
	}
	if c.Headroom <= 0 {
		// The multiset size drifts upward early on (inserts always
		// succeed, deletes fail on absent keys) before
		// self-balancing; a quarter of the population covers the
		// drift comfortably.
		c.Headroom = c.Items/4 + 256
	}
}

// HashmapWords returns the simulated-memory footprint the workload needs
// (bucket array plus node storage including headroom).
func HashmapWords(c HashmapConfig) int {
	c.Validate()
	return hashmap.Words(c.Buckets) + (c.Items+c.Headroom+1)*hashmap.NodeWords + memmodel.LineWords
}

// Hashmap is a built, populated instance of the micro-benchmark.
type Hashmap struct {
	Map  *hashmap.Map
	Pool *alloc.Pool
	cfg  HashmapConfig
}

// SetupHashmap carves the map out of ar, populates it through acc (a
// cost-free provisioning accessor), and returns the driver.
func SetupHashmap(acc memmodel.Accessor, ar *memmodel.Arena, cfg HashmapConfig, slots int) *Hashmap {
	cfg.Validate()
	pool := alloc.NewPool(ar, hashmap.NodeWords, slots)
	m := hashmap.New(ar, cfg.Buckets, pool)
	m.Populate(acc, cfg.Items)
	return &Hashmap{Map: m, Pool: pool, cfg: cfg}
}

// Worker returns the per-thread operation step: each call executes one
// critical section (a read section of LookupsPerRead lookups, or an
// insert/delete write section) through the handle. Steps are driven by the
// caller's loop so the harness controls the horizon.
func (w *Hashmap) Worker(h rwlock.Handle, slot int, seed uint64) func() {
	rng := rand.New(rand.NewPCG(seed, uint64(slot)+1))
	cfg := w.cfg
	keyspace := uint64(cfg.Items)
	// Lookup keys are drawn before entering the read section: the body may
	// re-execute on abort, and advancing the RNG inside it would make each
	// retry look up different keys (and desynchronize the per-thread
	// stream).
	keys := make([]uint64, cfg.LookupsPerRead)
	return func() {
		if rng.IntN(100) < cfg.UpdatePercent {
			key := rng.Uint64N(keyspace)
			if rng.IntN(2) == 0 {
				node := w.Pool.Get(slot)
				h.Write(csInsert, func(acc memmodel.Accessor) {
					w.Map.Insert(acc, key, key, node)
				})
			} else {
				var freed memmodel.Addr
				h.Write(csDelete, func(acc memmodel.Accessor) {
					freed = w.Map.Delete(acc, key)
				})
				if freed != 0 {
					w.Pool.Put(slot, freed)
				}
			}
			return
		}
		for i := range keys {
			keys[i] = rng.Uint64N(keyspace)
		}
		h.Read(csLookup, func(acc memmodel.Accessor) {
			for _, k := range keys {
				w.Map.Lookup(acc, k)
			}
		})
	}
}

// ReaderFootprintLines estimates the read critical section's line footprint
// (mean chain length × lookups), used by tests to assert workload regimes.
func (w *Hashmap) ReaderFootprintLines() int {
	mean := w.cfg.Items / w.cfg.Buckets
	if mean < 1 {
		mean = 1
	}
	return mean * w.cfg.LookupsPerRead
}
