package workload

import (
	"math"
	"math/rand/v2"
)

// Zipf draws ranks 0..n-1 with Zipfian popularity of exponent theta, using
// the rejection-free method of Gray et al. ("Quickly Generating
// Billion-Record Synthetic Databases", SIGMOD '94) — the same construction
// YCSB uses. Unlike math/rand's Zipf it supports 0 <= theta < 1, which is
// where serving benchmarks live (YCSB's default skew is theta = 0.99).
// theta = 0 degenerates to the uniform distribution.
//
// Rank 0 is the most popular key. Key namespaces that want the hot ranks
// scattered (rather than clustered at the low end) should mix the rank
// through a hash — the sharded lock table already does exactly that for
// shard routing, so a skewed rank stream contends on one *shard* only as
// much as it contends on one *key*.
//
// Draws are allocation-free; construction is O(n) (the harmonic sum).
type Zipf struct {
	rng     *rand.Rand
	n       uint64
	uniform bool

	// Gray's constants: zetan is the generalized harmonic number
	// H(n, theta), half is 1/2^theta, and alpha/eta shape the closed-form
	// inverse of the tail CDF.
	zetan float64
	half  float64
	alpha float64
	eta   float64
}

// NewZipf builds a generator over ranks [0, n) with exponent theta,
// seeded deterministically. theta outside [0, 1) is clamped: negative
// means uniform, and values at or above 1 are pulled just under it (Gray's
// closed form needs theta < 1; 0.999… is indistinguishable from 1 at any
// realistic n).
func NewZipf(n uint64, theta float64, seed uint64) *Zipf {
	if n == 0 {
		n = 1
	}
	z := &Zipf{
		rng: rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)),
		n:   n,
	}
	if theta <= 0 {
		z.uniform = true
		return z
	}
	if theta >= 1 {
		theta = 1 - 1e-9
	}
	for i := uint64(1); i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), theta)
	}
	zeta2 := 1 + math.Pow(0.5, theta)
	z.half = math.Pow(0.5, theta)
	z.alpha = 1 / (1 - theta)
	z.eta = (1 - math.Pow(2/float64(n), 1-theta)) / (1 - zeta2/z.zetan)
	return z
}

// Next returns the next rank.
//
//sprwl:hotpath
func (z *Zipf) Next() uint64 {
	if z.uniform {
		return z.rng.Uint64N(z.n)
	}
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1 {
		return 0
	}
	if uz < 1+z.half {
		return 1
	}
	r := uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
	if r >= z.n {
		r = z.n - 1
	}
	return r
}
