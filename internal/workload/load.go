package workload

import (
	"math/rand/v2"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sprwl/internal/env"
	"sprwl/internal/obs"
	"sprwl/internal/stats"
	"sprwl/internal/tsc"
)

// LoadConfig shapes the KV load generator behind sprwl-serve.
//
// Two driving modes:
//
//   - Closed loop (Rate <= 0): every worker issues its next op as soon as
//     the previous one returns. Latency is service time only — the classic
//     benchmark loop, which under-reports tail latency because a slow op
//     delays the arrivals behind it (coordinated omission).
//   - Open loop (Rate > 0): arrivals are scheduled on a fixed global
//     timetable (arrival k at start + k/Rate), workers pull tickets from a
//     shared counter, and each op's latency is measured from its
//     *scheduled* arrival to completion. An op that finds the system
//     backed up pays its queueing delay, which is what a serving system's
//     tail actually looks like.
type LoadConfig struct {
	// Workers is the number of client goroutines (one table slot each).
	Workers int
	// Duration is how long arrivals are generated for.
	Duration time.Duration
	// Rate is the total target arrival rate in ops/sec; <= 0 selects the
	// closed loop.
	Rate float64
	// ReadPercent is the fraction of point ops that are Gets (the rest
	// split evenly between Put and Delete).
	ReadPercent int
	// ScanPercent is the fraction of all ops that are whole-table range
	// scans of ScanSpan keys.
	ScanPercent int
	// ScanSpan is the scan length in keys; 0 defaults to 128.
	ScanSpan int
	// MultiPercent is the fraction of all ops that are MultiPut spans of
	// MultiWidth keys.
	MultiPercent int
	// MultiWidth is the multi-put span width; 0 defaults to 4.
	MultiWidth int
	// ZipfTheta is the key-popularity skew (0 = uniform, 0.99 = YCSB).
	ZipfTheta float64
	// Seed makes op streams deterministic.
	Seed uint64
	// Stop, when non-nil, ends the run early (cleanly, stats intact)
	// once the channel is closed — sprwl-serve wires SIGINT here.
	Stop <-chan struct{}
}

// Validate fills defaults.
func (c *LoadConfig) Validate() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.ReadPercent < 0 {
		c.ReadPercent = 0
	}
	if c.ReadPercent > 100 {
		c.ReadPercent = 100
	}
	if c.ScanSpan <= 0 {
		c.ScanSpan = 128
	}
	if c.MultiWidth <= 0 {
		c.MultiWidth = 4
	}
}

// LoadResult is one load run's outcome. Latencies are nanoseconds (the
// wall clock reports ns as cycles), percentile values are histogram-bucket
// upper bounds, and reader/writer split follows the op's lock side: Get
// and Scan are readers, Put/Delete/MultiPut writers.
type LoadResult struct {
	Mode     string        `json:"mode"` // "open" or "closed"
	Elapsed  time.Duration `json:"elapsed_ns"`
	Ops      uint64        `json:"ops"`
	Reads    uint64        `json:"reads"`
	Writes   uint64        `json:"writes"`
	Scans    uint64        `json:"scans"`
	Multis   uint64        `json:"multis"`
	Lagged   uint64        `json:"lagged"` // open-loop arrivals that started late
	ThruOpsS float64       `json:"throughput_ops_per_sec"`

	ReaderMeanNs float64 `json:"reader_mean_ns"`
	WriterMeanNs float64 `json:"writer_mean_ns"`
	ReaderP50Ns  uint64  `json:"reader_p50_ns"`
	ReaderP99Ns  uint64  `json:"reader_p99_ns"`
	ReaderP999Ns uint64  `json:"reader_p999_ns"`
	WriterP50Ns  uint64  `json:"writer_p50_ns"`
	WriterP99Ns  uint64  `json:"writer_p99_ns"`
	WriterP999Ns uint64  `json:"writer_p999_ns"`
}

// RunLoad drives kv with cfg and returns the merged result. The driver
// owns its own stats pipeline: per-op latencies are recorded as EvSection
// events into per-worker obs rings (scheduled-arrival → completion), kept
// separate from whatever pipeline the lock table itself reports into.
func RunLoad(kv *KV, cfg LoadConfig) LoadResult {
	cfg.Validate()
	col := stats.NewCollector(cfg.Workers)
	pipe := col.Pipeline()
	clock := tsc.WallClock{}

	var (
		tickets atomic.Uint64
		lagged  atomic.Uint64
		scans   atomic.Uint64
		multis  atomic.Uint64
	)
	open := cfg.Rate > 0
	var interval float64
	if open {
		interval = 1e9 / cfg.Rate
	}
	start := clock.Now()
	deadline := start + uint64(cfg.Duration)

	// Early stop: a watcher flips the flag when cfg.Stop closes; workers
	// poll it once per op.
	var stopped atomic.Bool
	done := make(chan struct{})
	if cfg.Stop != nil {
		go func() {
			select {
			case <-cfg.Stop:
				stopped.Store(true)
			case <-done:
			}
		}()
	}

	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		c := kv.NewClient(w)
		ring := pipe.Thread(w)
		wg.Add(1)
		go func(w int, c *Client, ring *obs.Ring) {
			defer wg.Done()
			rng := rand.New(rand.NewPCG(cfg.Seed, uint64(w)+71))
			zipf := NewZipf(kv.Items(), cfg.ZipfTheta, cfg.Seed*1009+uint64(w))
			mkeys := make([]uint64, cfg.MultiWidth)
			var nLag, nScan, nMulti uint64
			for !stopped.Load() {
				// Admission: open loop pulls the next global ticket and
				// waits for its scheduled arrival; closed loop just
				// checks the deadline.
				var sched uint64
				if open {
					k := tickets.Add(1) - 1
					sched = start + uint64(float64(k)*interval)
					if sched >= deadline {
						break
					}
					if now := clock.Now(); now < sched {
						// Coarse sleep, then yield-spin the last stretch:
						// host sleeps overshoot by up to a timer quantum
						// (~1ms loaded), which would put a floor under
						// every open-loop latency.
						const spinNs = 100_000
						if sched-now > spinNs {
							time.Sleep(time.Duration(sched - now - spinNs))
						}
						for clock.Now() < sched {
							runtime.Gosched()
						}
					} else if now > sched {
						nLag++
					}
				} else {
					sched = clock.Now()
					if sched >= deadline {
						break
					}
				}

				kind := obs.Reader
				cs := csKVGet
				switch p := rng.IntN(100); {
				case p < cfg.ScanPercent:
					c.Scan(zipf.Next(), cfg.ScanSpan)
					cs = csKVScan
					nScan++
				case p < cfg.ScanPercent+cfg.MultiPercent:
					for i := range mkeys {
						mkeys[i] = zipf.Next()
					}
					c.MultiPut(mkeys, uint64(sched))
					kind, cs = obs.Writer, csKVMulti
					nMulti++
				case rng.IntN(100) < cfg.ReadPercent:
					c.Get(zipf.Next())
				case rng.IntN(2) == 0:
					c.Put(zipf.Next(), uint64(sched))
					kind, cs = obs.Writer, csKVPut
				default:
					c.Delete(zipf.Next())
					kind, cs = obs.Writer, csKVDelete
				}
				ring.Section(kind, cs, env.ModeUninstrumented, sched, clock.Now())
			}
			lagged.Add(nLag)
			scans.Add(nScan)
			multis.Add(nMulti)
		}(w, c, ring)
	}
	wg.Wait()
	close(done)
	elapsed := clock.Now() - start

	snap := col.Snapshot()
	res := LoadResult{
		Mode:     "closed",
		Elapsed:  time.Duration(elapsed),
		Ops:      snap.TotalOps(),
		Reads:    snap.TotalCommits(stats.Reader),
		Writes:   snap.TotalCommits(stats.Writer),
		Scans:    scans.Load(),
		Multis:   multis.Load(),
		Lagged:   lagged.Load(),
		ThruOpsS: float64(snap.TotalOps()) / (float64(elapsed) / 1e9),

		ReaderP50Ns:  snap.Percentile(stats.Reader, 0.50),
		ReaderP99Ns:  snap.Percentile(stats.Reader, 0.99),
		ReaderP999Ns: snap.Percentile(stats.Reader, 0.999),
		WriterP50Ns:  snap.Percentile(stats.Writer, 0.50),
		WriterP99Ns:  snap.Percentile(stats.Writer, 0.99),
		WriterP999Ns: snap.Percentile(stats.Writer, 0.999),
	}
	if open {
		res.Mode = "open"
	}
	if n := snap.LatencyCount[stats.Reader]; n > 0 {
		res.ReaderMeanNs = float64(snap.LatencyCycles[stats.Reader]) / float64(n)
	}
	if n := snap.LatencyCount[stats.Writer]; n > 0 {
		res.WriterMeanNs = float64(snap.LatencyCycles[stats.Writer]) / float64(n)
	}
	return res
}
