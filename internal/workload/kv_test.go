package workload

import (
	"testing"
	"time"

	"sprwl/internal/htm"
	"sprwl/internal/locktable"
	"sprwl/internal/memmodel"
)

func TestZipfUniformAndSkew(t *testing.T) {
	const n, draws = 1024, 200000

	// theta = 0: uniform — every rank reachable, hottest rank near 1/n.
	u := NewZipf(n, 0, 42)
	var hist [n]int
	for i := 0; i < draws; i++ {
		r := u.Next()
		if r >= n {
			t.Fatalf("uniform rank %d out of range", r)
		}
		hist[r]++
	}
	if max := maxOf(hist[:]); float64(max)/draws > 5.0/n {
		t.Fatalf("uniform hottest rank frequency %f, want near %f", float64(max)/draws, 1.0/n)
	}

	// theta = 0.99: YCSB skew — rank 0 takes a large share and ranks stay
	// in range.
	z := NewZipf(n, 0.99, 42)
	var zhist [n]int
	for i := 0; i < draws; i++ {
		r := z.Next()
		if r >= n {
			t.Fatalf("zipf rank %d out of range", r)
		}
		zhist[r]++
	}
	if share := float64(zhist[0]) / draws; share < 0.05 {
		t.Fatalf("zipf(0.99) rank-0 share %f, want heavy (> 0.05)", share)
	}
	if zhist[0] <= zhist[1] || zhist[1] <= zhist[n/2] {
		t.Fatalf("zipf not monotone: rank0 %d rank1 %d mid %d", zhist[0], zhist[1], zhist[n/2])
	}

	// Same seed, same stream.
	a, b := NewZipf(n, 0.99, 7), NewZipf(n, 0.99, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("zipf stream not deterministic")
		}
	}
}

func maxOf(xs []int) int {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func buildKV(t testing.TB, cfg KVConfig) (*KV, *htm.Runtime) {
	t.Helper()
	cfg.Validate()
	space, err := htm.NewSpace(htm.Config{Threads: cfg.Table.Threads, Words: KVWords(cfg)})
	if err != nil {
		t.Fatal(err)
	}
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	kv, err := SetupKV(e, ar, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return kv, e
}

func TestKVOps(t *testing.T) {
	kv, _ := buildKV(t, KVConfig{
		Table: locktable.Config{Shards: 8, Threads: 2},
		Items: 512,
	})
	c := kv.NewClient(0)

	if v, ok := c.Get(100); !ok || v != 100 {
		t.Fatalf("Get(100) = %d,%v, want 100,true", v, ok)
	}
	if _, ok := c.Get(512); ok {
		t.Fatal("Get(512) found an unpopulated key")
	}
	if c.Put(100, 777) {
		t.Fatal("Put(100) reported a fresh insert for an existing key")
	}
	if v, _ := c.Get(100); v != 777 {
		t.Fatalf("Get(100) after Put = %d, want 777", v)
	}
	if !c.Delete(100) {
		t.Fatal("Delete(100) missed an existing key")
	}
	if _, ok := c.Get(100); ok {
		t.Fatal("Get(100) found a deleted key")
	}
	if !c.Put(100, 100) {
		t.Fatal("Put(100) after delete should insert fresh")
	}

	// Scan sees the full population across all shards.
	if n, _ := c.Scan(0, 512); n != 512 {
		t.Fatalf("Scan(0,512) visited %d keys, want 512", n)
	}
	if n, sum := c.Scan(10, 5); n != 5 || sum != 10+11+12+13+14 {
		t.Fatalf("Scan(10,5) = %d keys sum %d", n, sum)
	}

	// MultiPut touches only present keys, atomically.
	set := c.MultiPut([]uint64{5, 9, 512, 9}, 4242)
	if set != 3 {
		t.Fatalf("MultiPut applied %d updates, want 3 (absent key skipped, dup re-applied)", set)
	}
	for _, k := range []uint64{5, 9} {
		if v, _ := c.Get(k); v != 4242 {
			t.Fatalf("key %d = %d after MultiPut, want 4242", k, v)
		}
	}
}

func TestRunLoadClosedAndOpen(t *testing.T) {
	kv, _ := buildKV(t, KVConfig{
		Table: locktable.Config{Shards: 8, Threads: 4},
		Items: 1024,
	})
	cfg := LoadConfig{
		Workers:      2,
		Duration:     100 * time.Millisecond,
		ReadPercent:  80,
		ScanPercent:  2,
		MultiPercent: 5,
		ZipfTheta:    0.99,
		Seed:         1,
	}
	closed := RunLoad(kv, cfg)
	if closed.Mode != "closed" || closed.Ops == 0 {
		t.Fatalf("closed run: %+v", closed)
	}
	if closed.Reads+closed.Writes != closed.Ops {
		t.Fatalf("closed run: reads %d + writes %d != ops %d", closed.Reads, closed.Writes, closed.Ops)
	}

	kv2, _ := buildKV(t, KVConfig{
		Table: locktable.Config{Shards: 8, Threads: 4},
		Items: 1024,
	})
	cfg.Rate = 5000
	open := RunLoad(kv2, cfg)
	if open.Mode != "open" || open.Ops == 0 {
		t.Fatalf("open run: %+v", open)
	}
	// A 5k ops/s schedule over 100ms is ~500 arrivals; the worker pool
	// must stay near the timetable, not run an op per free cycle.
	if open.Ops > 2*500+50 {
		t.Fatalf("open run issued %d ops, schedule says ~500", open.Ops)
	}
	if open.ReaderP50Ns == 0 && open.WriterP50Ns == 0 {
		t.Fatal("open run recorded no latency percentiles")
	}
}
