package workload

import (
	"math/rand/v2"

	"sprwl/internal/alloc"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
	"sprwl/internal/skiplist"
)

// Critical-section IDs for the range-scan workload.
const (
	csScan = iota
	csUpsert
	csRemove
	// NumRangeScanCS is the number of distinct range-scan critical
	// sections.
	NumRangeScanCS
)

// RangeScanConfig shapes the ordered-map workload from the paper's
// introduction: long read-only range queries over a store receiving point
// updates. Scan length is the reader-footprint knob (one to two lines per
// visited node).
type RangeScanConfig struct {
	// Items is the key-space size; the map is fully populated at setup.
	Items int
	// ScanSpan is how many consecutive keys a read section visits.
	ScanSpan int
	// UpdatePercent is the fraction of write sections (upsert/remove).
	UpdatePercent int
}

// Validate fills defaults.
func (c *RangeScanConfig) Validate() {
	if c.Items <= 0 {
		c.Items = 16384
	}
	if c.ScanSpan <= 0 {
		c.ScanSpan = 512
	}
	if c.UpdatePercent < 0 {
		c.UpdatePercent = 0
	}
	if c.UpdatePercent > 100 {
		c.UpdatePercent = 100
	}
}

// RangeScanWords returns the simulated-memory footprint the workload needs.
func RangeScanWords(c RangeScanConfig) int {
	c.Validate()
	nodeBlock := (skiplist.NodeWords + memmodel.LineWords - 1) / memmodel.LineWords * memmodel.LineWords
	return skiplist.Words() + (c.Items+64)*nodeBlock + memmodel.LineWords
}

// RangeScan is a built, populated instance of the workload.
type RangeScan struct {
	List *skiplist.List
	Pool *alloc.Pool
	cfg  RangeScanConfig
}

// SetupRangeScan carves the list out of ar and populates it through acc.
func SetupRangeScan(acc memmodel.Accessor, ar *memmodel.Arena, cfg RangeScanConfig, slots int) *RangeScan {
	cfg.Validate()
	pool := alloc.NewPool(ar, skiplist.NodeWords, slots)
	list := skiplist.New(ar, pool)
	list.Populate(acc, cfg.Items)
	return &RangeScan{List: list, Pool: pool, cfg: cfg}
}

// Worker returns the per-thread step: a range scan (read section) or an
// upsert/remove (write section). Keys stay within the populated key space,
// so the node population is bounded by Items and deletes recycle nodes.
func (w *RangeScan) Worker(h rwlock.Handle, slot int, seed uint64) func() {
	rng := rand.New(rand.NewPCG(seed, uint64(slot)+101))
	cfg := w.cfg
	keyspace := uint64(cfg.Items)
	return func() {
		if rng.IntN(100) < cfg.UpdatePercent {
			key := rng.Uint64N(keyspace)
			if rng.IntN(2) == 0 {
				node := w.Pool.Get(slot)
				used := false
				h.Write(csUpsert, func(acc memmodel.Accessor) {
					used = w.List.Insert(acc, key, key, node)
				})
				if !used {
					w.Pool.Put(slot, node)
				}
			} else {
				var freed memmodel.Addr
				h.Write(csRemove, func(acc memmodel.Accessor) {
					freed = w.List.Delete(acc, key)
				})
				if freed != 0 {
					w.Pool.Put(slot, freed)
				}
			}
			return
		}
		lo := rng.Uint64N(keyspace)
		h.Read(csScan, func(acc memmodel.Accessor) {
			w.List.Range(acc, lo, lo+uint64(cfg.ScanSpan))
		})
	}
}
