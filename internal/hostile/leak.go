package hostile

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// LeakBaseline is a snapshot of the process's goroutine and file-descriptor
// population, taken before a test body runs.
type LeakBaseline struct {
	// ids holds the goroutine IDs alive at capture; goroutines in this
	// set are never flagged (they predate the test).
	ids map[uint64]bool
	// Goroutines is the total count at capture, FDs the open descriptor
	// count (-1 when /proc/self/fd is unreadable).
	Goroutines int
	FDs        int
}

// checkDeadline bounds Check's retry loop: parked goroutines woken during
// teardown and exiting workers need a grace period, but a stranded
// goroutine never goes away, so waiting longer only delays the verdict.
const checkDeadline = 5 * time.Second

// CaptureLeakBaseline snapshots the current goroutine set and fd count.
// Capture before starting the workload under test.
func CaptureLeakBaseline() LeakBaseline {
	b := LeakBaseline{ids: make(map[uint64]bool), FDs: countFDs()}
	for _, g := range goroutineDump() {
		b.ids[g.id] = true
	}
	b.Goroutines = len(b.ids)
	return b
}

// Check diffs the current process state against the baseline, retrying with
// exponential backoff until the deadline: a goroutine that appeared since
// the baseline and has a frame inside this repository ("sprwl/" on its
// stack) is a leak — typically a waiter left parked by a missing wake —
// and descriptor growth beyond a small transient slack is an fd leak.
func (b LeakBaseline) Check(deadline time.Duration) error {
	if deadline <= 0 {
		deadline = checkDeadline
	}
	var err error
	limit := time.Now().Add(deadline)
	for wait := time.Millisecond; ; wait *= 2 {
		err = b.checkOnce()
		if err == nil || time.Now().After(limit) {
			return err
		}
		if wait > 100*time.Millisecond {
			wait = 100 * time.Millisecond
		}
		time.Sleep(wait)
	}
}

func (b LeakBaseline) checkOnce() error {
	var leaked []goroutine
	for _, g := range goroutineDump() {
		if b.ids[g.id] || !strings.Contains(g.stack, "sprwl/") {
			continue
		}
		leaked = append(leaked, g)
	}
	if len(leaked) > 0 {
		var sb strings.Builder
		fmt.Fprintf(&sb, "%d leaked goroutine(s) with sprwl frames:", len(leaked))
		for _, g := range leaked {
			fmt.Fprintf(&sb, "\n\ngoroutine %d:\n%s", g.id, g.stack)
		}
		return fmt.Errorf("%s", sb.String())
	}
	// fd slack: directory listing and test tempfiles come and go; only
	// sustained growth counts.
	const fdSlack = 3
	if b.FDs >= 0 {
		if n := countFDs(); n > b.FDs+fdSlack {
			return fmt.Errorf("fd count grew %d -> %d (slack %d)", b.FDs, n, fdSlack)
		}
	}
	return nil
}

// LeakCheck captures a baseline now and registers a cleanup that fails t if
// the test leaves behind a goroutine parked in this repository's code or a
// grown fd table. Register it on the PARENT of parallel subtests: cleanups
// run after parallel children complete, whereas a sibling's still-running
// workload would be indistinguishable from a leak.
func LeakCheck(t testing.TB) {
	t.Helper()
	b := CaptureLeakBaseline()
	t.Cleanup(func() {
		if err := b.Check(checkDeadline); err != nil {
			t.Errorf("leak check: %v", err)
		}
	})
}

// goroutine is one parsed stack-dump block.
type goroutine struct {
	id    uint64
	stack string
}

// goroutineDump captures and parses runtime.Stack(all=true). The current
// goroutine's block is included; callers diff against a baseline that also
// included it, so it never flags.
func goroutineDump() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, block := range strings.Split(string(buf), "\n\n") {
		id, ok := parseGoroutineID(block)
		if !ok {
			continue
		}
		out = append(out, goroutine{id: id, stack: block})
	}
	return out
}

// parseGoroutineID extracts N from a block beginning "goroutine N [...]".
func parseGoroutineID(block string) (uint64, bool) {
	const prefix = "goroutine "
	if !strings.HasPrefix(block, prefix) {
		return 0, false
	}
	rest := block[len(prefix):]
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, false
	}
	id, err := strconv.ParseUint(rest[:sp], 10, 64)
	return id, err == nil
}

// countFDs returns the open descriptor count, or -1 where /proc is absent
// (the check is then skipped; goroutine diffing still runs).
func countFDs() int {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return -1
	}
	return len(ents)
}
