//go:build unix

package hostile

import (
	"fmt"
	"os"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"
	"unsafe"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// Shared-memory arena for the multi-process crash harness: a file-backed
// mmap whose words are addressed exactly like a memmodel space, so
// locks.SpinMutex — and nothing else in the lock stack — runs unmodified
// across process boundaries. The arena deliberately provides no
// park.Provider: cross-process waiters must spin, because an in-process
// waiter table cannot wake another process (a real futex could, but the
// harness wants the survivors' spin loops observable and simple).

// Arena is a file-backed shared-memory word array, mapped into this
// process and into every worker the parent re-execs.
type Arena struct {
	f     *os.File
	data  []byte
	words []uint64
}

// MapArena creates (parent) or opens (worker) the arena file at path with
// capacity words. The parent passes create=true and the path to each
// worker via the environment.
func MapArena(path string, nwords int, create bool) (*Arena, error) {
	flags := os.O_RDWR
	if create {
		flags |= os.O_CREATE | os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o600)
	if err != nil {
		return nil, err
	}
	size := nwords * 8
	if create {
		if err := f.Truncate(int64(size)); err != nil {
			f.Close()
			return nil, err
		}
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ|syscall.PROT_WRITE, syscall.MAP_SHARED)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("mmap %s: %w", path, err)
	}
	return &Arena{
		f:     f,
		data:  data,
		words: unsafe.Slice((*uint64)(unsafe.Pointer(&data[0])), nwords),
	}, nil
}

// Close unmaps and closes the arena (the file itself is the parent's to
// delete).
func (a *Arena) Close() error {
	err := syscall.Munmap(a.data)
	if cerr := a.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Words returns the arena capacity in words.
func (a *Arena) Words() int { return len(a.words) }

// Env returns an env.Env view over the arena for nthreads logical threads.
// Only the subset the SpinMutex and the worker protocol use is live;
// Attempt panics (no cross-process HTM — workers never call it).
func (a *Arena) Env(nthreads int) env.Env { return &shmEnv{a: a, threads: nthreads} }

type shmEnv struct {
	a       *Arena
	threads int
}

var _ env.Env = (*shmEnv)(nil)

func (e *shmEnv) word(ad memmodel.Addr) *uint64 { return &e.a.words[int(ad)] }

func (e *shmEnv) Load(ad memmodel.Addr) uint64     { return atomic.LoadUint64(e.word(ad)) }
func (e *shmEnv) Store(ad memmodel.Addr, v uint64) { atomic.StoreUint64(e.word(ad), v) }
func (e *shmEnv) CAS(ad memmodel.Addr, old, new uint64) bool {
	return atomic.CompareAndSwapUint64(e.word(ad), old, new)
}
func (e *shmEnv) Add(ad memmodel.Addr, d uint64) uint64 { return atomic.AddUint64(e.word(ad), d) }

func (e *shmEnv) Attempt(int, env.TxOpts, func(env.TxAccessor)) env.AbortCause {
	panic("hostile: no cross-process HTM")
}

func (e *shmEnv) Now() uint64 { return uint64(time.Now().UnixNano()) }
func (e *shmEnv) WaitUntil(t uint64) {
	for e.Now() < t {
		time.Sleep(time.Microsecond)
	}
}
func (e *shmEnv) Yield()       { runtime.Gosched() }
func (e *shmEnv) Threads() int { return e.threads }
