//go:build !unix

package hostile

import (
	"errors"

	"sprwl/internal/env"
)

// Arena is unavailable without mmap; the multi-process harness skips
// itself on such platforms.
type Arena struct{}

// ErrNoShm reports that this platform has no shared-memory arena.
var ErrNoShm = errors.New("hostile: shared-memory arena needs a unix mmap")

func MapArena(string, int, bool) (*Arena, error) { return nil, ErrNoShm }
func (a *Arena) Close() error                    { return nil }
func (a *Arena) Words() int                      { return 0 }
func (a *Arena) Env(int) env.Env                 { return nil }
