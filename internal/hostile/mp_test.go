package hostile

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"sprwl/internal/core"
	"sprwl/internal/memmodel"
)

// TestMPWorkerProcess is the worker-process entry point: the crash
// harness re-execs the test binary with -test.run pinned to this test and
// the protocol parameters in the environment. Without them it skips, so a
// normal `go test` run is unaffected.
func TestMPWorkerProcess(t *testing.T) {
	if os.Getenv("SPRWL_HOSTILE_WORKER") != "1" {
		t.Skip("not a hostile worker process")
	}
	atoi := func(k string) int {
		n, err := strconv.Atoi(os.Getenv(k))
		if err != nil {
			t.Fatalf("bad %s: %v", k, err)
		}
		return n
	}
	w := &MPWorker{
		ID:      atoi("SPRWL_HOSTILE_ID"),
		Workers: atoi("SPRWL_HOSTILE_WORKERS"),
		Ops:     atoi("SPRWL_HOSTILE_OPS"),
	}
	seed, err := strconv.ParseInt(os.Getenv("SPRWL_HOSTILE_SEED"), 10, 64)
	if err != nil {
		t.Fatalf("bad SPRWL_HOSTILE_SEED: %v", err)
	}
	w.Seed = seed
	if crash := os.Getenv("SPRWL_HOSTILE_CRASH"); crash != "" {
		var op int
		var point string
		if _, err := fmt.Sscanf(crash, "%s %d", &point, &op); err != nil {
			t.Fatalf("bad SPRWL_HOSTILE_CRASH %q: %v", crash, err)
		}
		w.CrashPoint, w.CrashOp = point, op
	}
	a, err := MapArena(os.Getenv("SPRWL_HOSTILE_ARENA"), MPArenaWords(w.Workers), false)
	if err != nil {
		t.Fatalf("map arena: %v", err)
	}
	defer a.Close()
	w.A = a
	if err := w.Run(); err != nil {
		t.Fatal(err)
	}
}

// mpRound is one crash-injection round's scripted parameters.
type mpRound struct {
	point   string // crash point name (core catalogue or writer-mid-body)
	seed    int64
	victim  int
	crashOp int // victim plan index at whose fence the SIGKILL lands
}

// pickCrashOp returns a mid-plan op index of the required kind: early
// enough that survivors still have writes left (so the recovery and
// revocation paths actually run), late enough that real traffic precedes
// the crash.
func pickCrashOp(plan []MPOp, wantWrite bool) int {
	var idx []int
	for i, op := range plan {
		if op.Write == wantWrite {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return -1
	}
	return idx[len(idx)*2/5]
}

// writesBefore counts write ops in plan[:i].
func writesBefore(plan []MPOp, i int) uint64 {
	var n uint64
	for _, op := range plan[:i] {
		if op.Write {
			n++
		}
	}
	return n
}

// TestMPCrashInjection is the multi-process tier: workers over a shared
// mmap arena, with the parent SIGKILLing one worker per round at a named
// fence point and verifying that the survivors recover the lock, revoke
// the dead reader's flag, drain, finish their plans, and keep the
// counter/mirror/journal oracle exact.
func TestMPCrashInjection(t *testing.T) {
	if _, err := MapArena(filepath.Join(t.TempDir(), "probe"), 8, true); err != nil {
		t.Skipf("no shared-memory arena on this platform: %v", err)
	}
	LeakCheck(t)

	const (
		workers = 4
		ops     = 120
	)
	points := CrashPoints()
	rounds := 24 // 8 per crash point; acceptance floor is 20 total
	if testing.Short() {
		rounds = len(points) // one per point: keeps -race -short CI-sized
	}
	for r := 0; r < rounds; r++ {
		round := mpRound{
			point:  points[r%len(points)],
			seed:   int64(1000 + r),
			victim: r % workers,
		}
		wantWrite := round.point != core.FaultReaderFlagged.String()
		round.crashOp = pickCrashOp(MPPlan(round.seed, round.victim, ops), wantWrite)
		if round.crashOp < 0 {
			t.Fatalf("round %d: plan has no qualifying op", r)
		}
		t.Run(fmt.Sprintf("round=%d/%s/victim=%d", r, round.point, round.victim), func(t *testing.T) {
			runCrashRound(t, round, workers, ops)
		})
	}
}

func runCrashRound(t *testing.T, round mpRound, workers, ops int) {
	path := filepath.Join(t.TempDir(), "arena")
	a, err := MapArena(path, MPArenaWords(workers), true)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	InitArena(a, workers)
	e := a.Env(workers)

	type child struct {
		cmd *exec.Cmd
		out *bytes.Buffer
	}
	kids := make([]child, workers)
	for w := 0; w < workers; w++ {
		cmd := exec.Command(os.Args[0], "-test.run=^TestMPWorkerProcess$", "-test.count=1")
		var out bytes.Buffer
		cmd.Stdout, cmd.Stderr = &out, &out
		cmd.Env = append(os.Environ(),
			"SPRWL_HOSTILE_WORKER=1",
			"SPRWL_HOSTILE_ARENA="+path,
			"SPRWL_HOSTILE_ID="+strconv.Itoa(w),
			"SPRWL_HOSTILE_WORKERS="+strconv.Itoa(workers),
			"SPRWL_HOSTILE_SEED="+strconv.FormatInt(round.seed, 10),
			"SPRWL_HOSTILE_OPS="+strconv.Itoa(ops),
		)
		if w == round.victim {
			cmd.Env = append(cmd.Env,
				fmt.Sprintf("SPRWL_HOSTILE_CRASH=%s %d", round.point, round.crashOp))
		}
		if err := cmd.Start(); err != nil {
			t.Fatalf("start worker %d: %v", w, err)
		}
		kids[w] = child{cmd: cmd, out: &out}
	}
	defer func() {
		for _, k := range kids {
			k.cmd.Process.Kill()
		}
	}()

	waitWord := func(addr memmodel.Addr, want uint64, d time.Duration, what string) {
		t.Helper()
		dl := time.Now().Add(d)
		for e.Load(addr) != want {
			if time.Now().After(dl) {
				var dump string
				for w, k := range kids {
					dump += fmt.Sprintf("\n-- worker %d --\n%s", w, k.out.String())
				}
				t.Fatalf("timed out waiting for %s%s", what, dump)
			}
			time.Sleep(time.Millisecond)
		}
	}

	// Barrier: all workers mapped, then open the gate.
	waitWord(memmodel.Addr(mpReady), uint64(workers), 30*time.Second, "worker readiness")
	e.Store(memmodel.Addr(mpGate), 1)

	// The victim parks at its fence; kill it there, then publish its
	// death — exactly the order a failure detector would.
	victimFence := workerBase(round.victim) + wFence
	waitWord(victimFence, 1, 30*time.Second, "victim to reach fence "+round.point)
	if err := kids[round.victim].cmd.Process.Kill(); err != nil {
		t.Fatalf("kill victim: %v", err)
	}
	kids[round.victim].cmd.Wait() // must reap before declaring death
	e.Store(workerBase(round.victim)+wDead, 1)

	// Survivors must drain and finish on their own.
	for w, k := range kids {
		if w == round.victim {
			continue
		}
		done := make(chan error, 1)
		go func() { done <- k.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("survivor %d failed: %v\n%s", w, err, k.out.String())
			}
		case <-time.After(45 * time.Second):
			t.Fatalf("survivor %d hung after the crash (drain/recovery wedged)\n%s", w, k.out.String())
		}
	}

	// Post-mortem settlement: idempotent; only acts if the corpse's lock
	// or journal is still pending (i.e. every survivor finished before
	// needing recovery). Makes the victim's applied count deterministic.
	RecoverArena(a, workers, -1)

	// Oracle. The mirror catches torn counter updates; the journal makes
	// each worker's applied prefix exact, so the counter must equal the
	// sum of every applied write's delta, replayed from the seeds.
	counter := e.Load(memmodel.Addr(mpCounter))
	if m := e.Load(memmodel.Addr(mpMirror)); counter != m {
		t.Errorf("counter %d != mirror %d", counter, m)
	}
	var want uint64
	for w := 0; w < workers; w++ {
		plan := MPPlan(round.seed, w, ops)
		applied := e.Load(workerBase(w) + wApplied)
		var planned, reads uint64
		for _, op := range plan {
			if op.Write {
				planned++
				if planned <= applied {
					want += op.Delta
				}
			} else {
				reads++
			}
		}
		if torn := e.Load(workerBase(w) + wTorn); torn != 0 {
			t.Errorf("worker %d observed %d torn counter/mirror pairs", w, torn)
		}
		if w == round.victim {
			wantApplied := writesBefore(plan, round.crashOp)
			if round.point == CrashWriterMidBody {
				wantApplied++ // journal published: recovery rolls it forward
			}
			if applied != wantApplied {
				t.Errorf("victim applied %d writes, want %d (%s at op %d)",
					applied, wantApplied, round.point, round.crashOp)
			}
			continue
		}
		if applied != planned {
			t.Errorf("survivor %d applied %d/%d writes", w, applied, planned)
		}
		if got := e.Load(workerBase(w) + wReads); got != reads {
			t.Errorf("survivor %d completed %d/%d reads", w, got, reads)
		}
		if e.Load(workerBase(w)+wDone) != 1 {
			t.Errorf("survivor %d never reported done", w)
		}
	}
	if counter != want {
		t.Errorf("counter = %d, want %d (sum of applied deltas)", counter, want)
	}
	if lk := e.Load(memmodel.Addr(mpLock)); lk != 0 {
		t.Errorf("lock word left held (%d) after settlement", lk)
	}
}
