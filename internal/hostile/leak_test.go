package hostile

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"sprwl/internal/memmodel"
	"sprwl/internal/park"
)

// TestLeakCheckCatchesStrandedParker is the mutation test for the leak
// checker: deliberately strand a goroutine parked in the waiter table —
// the exact artefact a lost wake leaves behind — and require Check to
// flag it, with the park frames in the report. Then deliver the wake and
// require the same baseline to come back clean, proving the detector
// keys on the leak, not on ambient noise.
func TestLeakCheckCatchesStrandedParker(t *testing.T) {
	base := CaptureLeakBaseline()

	var word atomic.Uint64
	word.Store(1)
	tbl := park.NewTable(func(memmodel.Addr) uint64 { return word.Load() })
	parked := make(chan struct{})
	go func() {
		tbl.Park(0, 1) // sleeps until the wake below: a deliberate leak
		close(parked)
	}()
	for tbl.Waiters() == 0 {
		time.Sleep(time.Millisecond)
	}

	err := base.Check(100 * time.Millisecond)
	if err == nil {
		t.Fatal("leak check passed with a goroutine parked in sprwl/internal/park")
	}
	if !strings.Contains(err.Error(), "sprwl/internal/park") {
		t.Errorf("leak report does not name the park frames:\n%v", err)
	}

	// Deliver the wake; the same baseline must now come back clean.
	word.Store(0)
	tbl.Wake(0)
	<-parked
	if err := base.Check(checkDeadline); err != nil {
		t.Errorf("leak check still failing after the waiter was woken: %v", err)
	}
}

// TestLeakCheckCleanBaseline: back-to-back capture and check with no
// workload must pass — the detector has no false positives at rest.
func TestLeakCheckCleanBaseline(t *testing.T) {
	if err := CaptureLeakBaseline().Check(time.Second); err != nil {
		t.Fatalf("clean process flagged: %v", err)
	}
}
