// Package hostile is the hostile-environment test harness: infrastructure
// for running this repository's lock protocols under conditions engineered
// to break them, rather than the friendly schedulers the conformance and
// stress suites get by default.
//
// It has three pillars:
//
//   - Chaos controller (chaos.go): an in-process controller that perturbs a
//     running workload — shrinking and growing GOMAXPROCS mid-run, raising
//     preemption storms of OS-thread-pinned spinners, and starving or
//     inflating every wait site's park budget through the injection hook in
//     internal/park. Each perturbation window is recorded as an EvChaos
//     span through internal/obs, so the wait-vs-work profiler can attribute
//     observed stall time to the injected fault that caused it.
//
//   - Multi-process crash harness (shm.go, mp.go): the test binary re-execs
//     itself as worker processes sharing a file-backed mmap arena holding a
//     locks.SpinMutex-guarded counter protocol. The parent SIGKILLs workers
//     at the named fence points of core.FaultPoints — after a reader's
//     flag-raise, after a writer's lock advertisement — and verifies that
//     the survivors recover the lock, drain, and keep the counter oracle
//     consistent. This is the only tier that tests death, which no
//     in-process fault can simulate: a killed process's registered state
//     stays behind with no deferred cleanup.
//
//   - Leak checking (leak.go): a goroutine-dump diff plus fd-count check,
//     with retry/backoff for shutdown stragglers, registered as a cleanup
//     on every conformance and stress round so that a protocol bug that
//     strands a parked goroutine fails the suite even when the oracle
//     happens to pass.
package hostile
