package hostile

import (
	"fmt"
	"math/rand"
	"time"

	"sprwl/internal/core"
	"sprwl/internal/env"
	"sprwl/internal/locks"
	"sprwl/internal/memmodel"
)

// Multi-process worker protocol: a SpinMutex-guarded counter replicated in
// a mirror word, with reader flags, an owner advertisement, a recovery
// token, and a per-writer redo journal — the smallest protocol that has
// the same fence structure as the SpRWL fallback path (flag-then-check
// readers against a lock-then-drain writer) while surviving SIGKILL at any
// of its fence points. Workers never block on a primitive that a dead
// process could hold: every wait loop polls deadness and runs recovery.
//
// Crash points reuse the core.FaultPoints catalogue (reader-flagged,
// writer-advertised) plus one mp-only point, writer-mid-body, between the
// journal publish and the counter store — the window that forces the
// journal roll-forward path.

// CrashWriterMidBody is the mp-only crash point name.
const CrashWriterMidBody = "writer-mid-body"

// CrashPoints returns every crash point the harness can inject: the shared
// core catalogue plus the journal window.
func CrashPoints() []string {
	pts := make([]string, 0, 3)
	for _, p := range core.FaultPoints() {
		pts = append(pts, p.String())
	}
	return append(pts, CrashWriterMidBody)
}

// Arena layout, in lines of memmodel.LineWords words. Word addresses.
const (
	mpMagicWord = 0 // layout guard
	mpWorkers   = 1
	mpGate      = 2 // start barrier: parent raises after all ready
	mpReady     = 3 // workers increment when mapped and planned

	mpLock     = 1 * memmodel.LineWords // SpinMutex word
	mpOwner    = 2 * memmodel.LineWords // holder+1, 0 = none
	mpRecovery = 3 * memmodel.LineWords // recoverer+1, 0 = none
	mpCounter  = 4 * memmodel.LineWords
	mpMirror   = mpCounter + 1

	mpPerWorker = 5 * memmodel.LineWords // first worker line
	// Per worker: one status line + one journal line.
	wFlag    = 0 // reader flag
	wDead    = 1 // set by the parent after SIGKILL+Wait
	wFence   = 2 // worker parked at its crash fence, awaiting the kill
	wDone    = 3 // worker completed its plan
	wTorn    = 4 // torn counter/mirror observations
	wReads   = 5 // completed read sections
	wJSeq    = memmodel.LineWords + 0
	wJOld    = memmodel.LineWords + 1
	wJDelta  = memmodel.LineWords + 2
	wApplied = memmodel.LineWords + 3

	mpMagic = 0x5350525748_0a // "SPRWH"
)

func workerBase(w int) memmodel.Addr {
	return memmodel.Addr(mpPerWorker + w*2*memmodel.LineWords)
}

// MPArenaWords returns the arena capacity for n workers.
func MPArenaWords(n int) int { return mpPerWorker + n*2*memmodel.LineWords }

// MPOp is one scripted worker operation.
type MPOp struct {
	Write bool
	Delta uint64 // 1..16; zero-delta writes would defeat roll-forward disambiguation
}

// MPPlan regenerates worker w's deterministic schedule — both sides of the
// exec boundary derive the same script from (seed, worker), so the parent
// can pick crash sites and predict applied counts without IPC.
func MPPlan(seed int64, worker, nops int) []MPOp {
	rng := rand.New(rand.NewSource(seed*1009 + int64(worker)))
	ops := make([]MPOp, nops)
	for i := range ops {
		if rng.Intn(100) < 30 {
			ops[i] = MPOp{Write: true, Delta: uint64(1 + rng.Intn(16))}
		}
	}
	return ops
}

// MPWorker is one worker process's execution state.
type MPWorker struct {
	A       *Arena
	ID      int
	Workers int
	Seed    int64
	Ops     int

	// CrashPoint/CrashOp, when CrashPoint is nonempty, name the fence at
	// which this worker parks and waits to be SIGKILLed: on reaching op
	// CrashOp's fence it raises its wFence word and spins forever.
	CrashPoint string
	CrashOp    int

	lk       locks.SpinMutex
	deadline time.Time
}

// mpDeadline bounds every worker wait loop; a protocol bug must surface as
// a non-zero exit, not a hung process tree.
const mpDeadline = 60 * time.Second

func (w *MPWorker) addr(word int) memmodel.Addr { return memmodel.Addr(word) }
func (w *MPWorker) mine(off int) memmodel.Addr  { return workerBase(w.ID) + memmodel.Addr(off) }
func (w *MPWorker) peer(j, off int) memmodel.Addr {
	return workerBase(j) + memmodel.Addr(off)
}

// Run executes the worker's plan. It returns an error on protocol failure
// or deadline; a worker scripted to crash never returns (it spins at its
// fence until the parent kills it).
func (w *MPWorker) Run() error {
	e := w.A.Env(w.Workers)
	w.lk = locks.NewSpinMutex(e, memmodel.Addr(mpLock))
	w.deadline = time.Now().Add(mpDeadline)
	if e.Load(w.addr(mpMagicWord)) != mpMagic {
		return fmt.Errorf("worker %d: bad arena magic", w.ID)
	}

	// Start barrier: advertise readiness, then wait for the gate.
	e.Add(w.addr(mpReady), 1)
	for e.Load(w.addr(mpGate)) == 0 {
		if err := w.tick(); err != nil {
			return err
		}
		e.Yield()
	}

	plan := MPPlan(w.Seed, w.ID, w.Ops)
	var seq uint64 // this worker's write sequence number
	for i, op := range plan {
		crashHere := w.CrashPoint != "" && i == w.CrashOp
		if op.Write {
			seq++
			if err := w.write(e, seq, op.Delta, crashHere); err != nil {
				return fmt.Errorf("worker %d op %d: %w", w.ID, i, err)
			}
		} else {
			if err := w.read(e, crashHere); err != nil {
				return fmt.Errorf("worker %d op %d: %w", w.ID, i, err)
			}
		}
	}
	e.Store(w.mine(wDone), 1)
	return nil
}

// crashPark raises the fence word and spins until SIGKILL. Never returns.
func (w *MPWorker) crashPark(e env.Env) {
	e.Store(w.mine(wFence), 1)
	for {
		time.Sleep(time.Millisecond)
	}
}

func (w *MPWorker) tick() error {
	if time.Now().After(w.deadline) {
		return fmt.Errorf("deadline exceeded")
	}
	return nil
}

// write is the fallback-writer analogue: acquire, advertise, drain flagged
// readers (revoking dead ones), journal, apply, retire.
func (w *MPWorker) write(e env.Env, seq, delta uint64, crashHere bool) error {
	// Acquire with recovery: a dead holder never unlocks, so Lock() is
	// forbidden — TryLock and watch for a corpse.
	//sprwl:allow(spanleak) deliberate: the deadline return inside the spin loop runs only while TryLock keeps failing (lock not held), and the crash-injection paths die holding the lock by design — recovery, not release, is the protocol
	for tries := 0; !w.lk.TryLock(); tries++ {
		if tries%256 == 255 {
			w.maybeRecover()
			if err := w.tick(); err != nil {
				return fmt.Errorf("acquiring lock: %w", err)
			}
		}
		e.Yield()
	}
	// Deferred so the deadline-error returns inside the drain loop release
	// the lock too. The crashPark paths never return, so the victim dies
	// holding it — which is the point.
	defer w.lk.Unlock()
	e.Store(w.addr(mpOwner), uint64(w.ID+1))

	if crashHere && w.CrashPoint == core.FaultWriterAdvertised.String() {
		w.crashPark(e) // lock held, owner advertised, readers undrained
	}

	// Drain: wait for every peer's reader flag to clear, revoking flags
	// abandoned by the dead.
	for j := 0; j < w.Workers; j++ {
		if j == w.ID {
			continue
		}
		for e.Load(w.peer(j, wFlag)) == 1 {
			if e.Load(w.peer(j, wDead)) == 1 {
				// Dead-reader revocation: the corpse can never
				// depart; clear its flag on its behalf.
				e.Store(w.peer(j, wFlag), 0)
				break
			}
			if err := w.tick(); err != nil {
				e.Store(w.addr(mpOwner), 0)
				return fmt.Errorf("draining reader %d: %w", j, err)
			}
			e.Yield()
		}
	}

	// Journal, publish, apply. jseq is published last in the journal
	// write and first consulted by recovery: jseq > applied means the
	// journaled intent may not have reached the counter.
	old := e.Load(w.addr(mpCounter))
	e.Store(w.mine(wJOld), old)
	e.Store(w.mine(wJDelta), delta)
	e.Store(w.mine(wJSeq), seq)

	if crashHere && w.CrashPoint == CrashWriterMidBody {
		w.crashPark(e) // journal published, counter not yet updated
	}

	e.Store(w.addr(mpCounter), old+delta)
	e.Store(w.addr(mpMirror), old+delta)
	e.Store(w.mine(wApplied), seq)

	e.Store(w.addr(mpOwner), 0)
	return nil
}

// read is the uninstrumented-reader analogue: flag, check the lock, run
// the body (a torn-pair check), unflag.
func (w *MPWorker) read(e env.Env, crashHere bool) error {
	for {
		e.Store(w.mine(wFlag), 1) // flag first...
		if crashHere && w.CrashPoint == core.FaultReaderFlagged.String() {
			w.crashPark(e) // flag raised, body not entered
		}
		if !w.lk.IsLocked() { // ...then check (pairs with lock-then-drain)
			break
		}
		e.Store(w.mine(wFlag), 0)
		for w.lk.IsLocked() {
			w.maybeRecover()
			if err := w.tick(); err != nil {
				return fmt.Errorf("waiting for writer: %w", err)
			}
			e.Yield()
		}
	}
	c := e.Load(w.addr(mpCounter))
	m := e.Load(w.addr(mpMirror))
	if c != m {
		e.Store(w.mine(wTorn), e.Load(w.mine(wTorn))+1)
	}
	e.Store(w.mine(wFlag), 0)
	e.Store(w.mine(wReads), e.Load(w.mine(wReads))+1)
	return nil
}

// maybeRecover frees the lock if its advertised owner is dead, completing
// any published-but-unapplied journal entry first (roll-forward). The
// recovery token serializes recoverers; the dead owner cannot race us —
// that is what dead means.
func (w *MPWorker) maybeRecover() {
	RecoverArena(w.A, w.Workers, w.ID)
}

// RecoverArena runs one recovery attempt on behalf of claimant (worker ID,
// or -1 for the parent's post-mortem settlement pass). It is idempotent
// and safe to call at any time: it only acts when the lock's advertised
// owner is marked dead, and the recovery token admits one recoverer.
func RecoverArena(a *Arena, workers, claimant int) {
	e := a.Env(workers)
	o := e.Load(memmodel.Addr(mpOwner))
	if o == 0 || int(o-1) >= workers {
		return
	}
	dead := workerBase(int(o-1)) + wDead
	if e.Load(dead) != 1 {
		return
	}
	if !e.CAS(memmodel.Addr(mpRecovery), 0, uint64(claimant+2)) {
		return // someone else is recovering
	}
	// Re-verify under the token: the owner word may have moved while we
	// raced for it.
	if e.Load(memmodel.Addr(mpOwner)) == o && e.Load(dead) == 1 {
		base := workerBase(int(o - 1))
		jseq := e.Load(base + wJSeq)
		applied := e.Load(base + wApplied)
		if jseq > applied {
			// The journal published an intent the counter may not
			// reflect. The lock was held from publish to death, so
			// the counter is frozen at jold or jold+jdelta; either
			// way, completing the write is correct and makes the
			// dead worker's applied count deterministic.
			old := e.Load(base + wJOld)
			delta := e.Load(base + wJDelta)
			c := e.Load(memmodel.Addr(mpCounter))
			if c == old || c == old+delta {
				e.Store(memmodel.Addr(mpCounter), old+delta)
				e.Store(memmodel.Addr(mpMirror), old+delta)
				e.Store(base+wApplied, jseq)
			}
		}
		e.Store(memmodel.Addr(mpOwner), 0)
		e.Store(memmodel.Addr(mpLock), 0) // release the corpse's lock
	}
	e.Store(memmodel.Addr(mpRecovery), 0)
}

// InitArena stamps a freshly created parent arena.
func InitArena(a *Arena, workers int) {
	e := a.Env(workers)
	e.Store(memmodel.Addr(mpWorkers), uint64(workers))
	e.Store(memmodel.Addr(mpMagicWord), mpMagic)
}
