package hostile

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprwl/internal/core"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
	"sprwl/internal/park"
	"sprwl/internal/rwlock"
	"sprwl/internal/stats"
)

// chaosCombo is one cell of the in-process fault matrix.
type chaosCombo struct {
	name                   string
	quota, preempt, starve bool
}

// chaosMatrix is the full cross of the three perturbation arms (minus the
// empty cell, which is just the stress suite).
func chaosMatrix() []chaosCombo {
	var out []chaosCombo
	for bits := 1; bits < 8; bits++ {
		c := chaosCombo{quota: bits&1 != 0, preempt: bits&2 != 0, starve: bits&4 != 0}
		sep := ""
		for _, part := range []struct {
			on   bool
			name string
		}{{c.quota, "quota"}, {c.preempt, "preempt"}, {c.starve, "starve"}} {
			if part.on {
				c.name += sep + part.name
				sep = "+"
			}
		}
		out = append(out, c)
	}
	return out
}

// comboArtifact is the JSON record uploaded by the CI chaos job.
type comboArtifact struct {
	Combo  string       `json:"combo"`
	Events []chaosEvent `json:"events"`
	Faults uint64       `json:"faultAttributedCycles"`
}

type chaosEvent struct {
	Code  string `json:"code"`
	Start uint64 `json:"startCycles"`
	Dur   uint64 `json:"durCycles"`
}

// TestChaosMatrix runs a parked, oversubscribed reader/writer workload
// under every combination of the chaos controller's arms — GOMAXPROCS
// shrink/grow, preemption storms, park-budget starvation — and checks the
// oracle, the leak baseline, and that the injected-fault spans flowed
// through the obs pipeline into the profiler's attribution.
func TestChaosMatrix(t *testing.T) {
	LeakCheck(t)
	var artifacts []comboArtifact
	t.Cleanup(func() { writeChaosArtifact(t, artifacts) })

	for _, combo := range chaosMatrix() {
		t.Run(combo.name, func(t *testing.T) {
			LeakCheck(t)
			artifacts = append(artifacts, runChaosCombo(t, combo))
		})
	}
}

func runChaosCombo(t *testing.T, combo chaosCombo) comboArtifact {
	const (
		threads  = 4  // static slots
		dynamics = 12 // extra goroutines on dynamic handles
		runFor   = 120 * time.Millisecond
	)
	space, err := htm.NewSpace(htm.Config{Threads: threads, Words: 1 << 14})
	if err != nil {
		t.Fatal(err)
	}
	e := htm.NewRuntime(space, nil)
	e.SetParking(true)
	ar := memmodel.NewArena(0, space.Size())

	col := stats.NewCollector(threads + 1) // +1: the chaos controller's ring
	prof := obs.NewProfileSink(threads + 1)
	prof.TrackChaos = true
	pipe := col.Pipeline(prof)

	opts := core.DefaultOptions()
	opts.UseBravo = true
	opts.BravoSlots = 4
	l := core.MustNew(e, ar, threads, 4, opts, pipe)
	data := ar.AllocLines(1)
	counter, mirror := data, data+1

	chaos := StartChaos(ChaosConfig{
		Seed:         int64(len(combo.name)) * 7919,
		QuotaShrink:  combo.quota,
		PreemptStorm: combo.preempt,
		ParkStarve:   combo.starve,
		MinProcs:     1,
		Interval:     time.Millisecond,
		Ring:         pipe.Thread(threads),
		Now:          e.Now,
	})

	var stop atomic.Bool
	var wrote, torn atomic.Uint64
	worker := func(h rwlock.Handle, seed int) {
		for i := seed; !stop.Load(); i++ {
			if i%10 < 3 {
				h.Write(1, func(acc memmodel.Accessor) {
					v := acc.Load(counter) + 1
					acc.Store(counter, v)
					acc.Store(mirror, v)
				})
				wrote.Add(1)
			} else {
				// Extract inside, assert outside: transactional bodies may
				// re-execute after an abort, and an aborted attempt can
				// legally observe a torn pair.
				var vx, vy uint64
				h.Read(0, func(acc memmodel.Accessor) {
					vx, vy = acc.Load(counter), acc.Load(mirror)
				})
				if vx != vy {
					torn.Add(1)
				}
			}
		}
	}
	var wg sync.WaitGroup
	for s := 0; s < threads; s++ {
		wg.Add(1)
		go func(s int) { defer wg.Done(); worker(l.NewHandle(s), s) }(s)
	}
	for d := 0; d < dynamics; d++ {
		wg.Add(1)
		go func(d int) {
			defer wg.Done()
			h, err := l.NewDynamicHandle()
			if err != nil {
				t.Error(err)
				return
			}
			worker(h, threads+d)
		}(d)
	}

	time.Sleep(runFor)
	stop.Store(true)
	wg.Wait()
	events := chaos.Stop()
	pipe.Flush()

	if park.ChaosInstalled() {
		t.Error("park chaos hook still installed after Stop")
	}
	if n := torn.Load(); n != 0 {
		t.Errorf("%d torn reads under chaos", n)
	}
	var got uint64
	l.NewHandle(0).Read(0, func(acc memmodel.Accessor) { got = acc.Load(counter) })
	if got != wrote.Load() {
		t.Errorf("counter = %d, want %d committed writes", got, wrote.Load())
	}
	if len(events) == 0 {
		t.Errorf("chaos controller recorded no perturbation windows in %v", runFor)
	}
	spans := prof.ChaosSpans()
	if len(spans) != len(events) {
		t.Errorf("profiler retained %d chaos spans, controller recorded %d", len(spans), len(events))
	}

	var faults uint64
	for _, p := range prof.Profiles() {
		faults += p.TotalFault()
	}
	t.Logf("%s: %d windows, %d writes, %d fault-attributed stall cycles",
		combo.name, len(events), wrote.Load(), faults)

	art := comboArtifact{Combo: combo.name, Faults: faults}
	for _, ev := range events {
		art.Events = append(art.Events, chaosEvent{
			Code: obs.ChaosCodeString(ev.Code), Start: ev.TS, Dur: ev.Dur,
		})
	}
	return art
}

// writeChaosArtifact dumps the matrix's chaos-event log as JSON when
// SPRWL_CHAOS_JSON names a path — the CI chaos job uploads it.
func writeChaosArtifact(t *testing.T, artifacts []comboArtifact) {
	path := os.Getenv("SPRWL_CHAOS_JSON")
	if path == "" || len(artifacts) == 0 {
		return
	}
	data, err := json.MarshalIndent(artifacts, "", "  ")
	if err != nil {
		t.Errorf("marshal chaos artifact: %v", err)
		return
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Errorf("write chaos artifact: %v", err)
		return
	}
	t.Logf("chaos event log: %s (%d combos)", path, len(artifacts))
}

// TestChaosControllerRestores checks the controller's teardown contract:
// GOMAXPROCS back to baseline, park hook uninstalled, all storm goroutines
// joined, every window recorded with a positive duration and a known code.
func TestChaosControllerRestores(t *testing.T) {
	LeakCheck(t)
	baseline := runtime.GOMAXPROCS(0)
	c := StartChaos(ChaosConfig{
		Seed: 42, QuotaShrink: true, PreemptStorm: true, ParkStarve: true,
		MinProcs: 1, MaxProcs: baseline + 2, Interval: time.Millisecond,
	})
	time.Sleep(20 * time.Millisecond)
	events := c.Stop()
	if got := runtime.GOMAXPROCS(0); got != baseline {
		t.Errorf("GOMAXPROCS %d after Stop, want %d", got, baseline)
	}
	if park.ChaosInstalled() {
		t.Error("park hook left installed")
	}
	if len(events) == 0 {
		t.Fatal("no perturbations in 20ms at 1ms intervals")
	}
	for _, ev := range events {
		if ev.Kind != obs.EvChaos || ev.Code >= obs.NumChaosCodes {
			t.Errorf("bad event: %+v", ev)
		}
	}
}
