package hostile

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sprwl/internal/obs"
	"sprwl/internal/park"
)

// ChaosConfig tunes the in-process chaos controller.
type ChaosConfig struct {
	// Seed drives the controller's private rng; the same seed replays the
	// same perturbation schedule (modulo OS scheduling, which is the
	// point of the exercise).
	Seed int64

	// QuotaShrink enables GOMAXPROCS perturbation: the quota jumps
	// between MinProcs and MaxProcs mid-run, forcing the workload through
	// repeated oversubscription cliffs.
	QuotaShrink bool
	// MinProcs/MaxProcs bound the quota walk; defaults 1 and the
	// GOMAXPROCS value at Start.
	MinProcs, MaxProcs int

	// PreemptStorm enables preemption storms: bursts of OS-thread-pinned
	// goroutines (runtime.LockOSThread) that do nothing but yield in a
	// hot loop, stealing scheduler slots exactly the way a noisy
	// neighbour does.
	PreemptStorm bool

	// ParkStarve enables park-budget starvation through park.SetChaos:
	// windows in which every wait site's spin budget is zeroed (all
	// waiters park immediately, hammering the wake protocol) alternating
	// with windows in which it is inflated (waiters burn CPU through
	// windows they would normally sleep through).
	ParkStarve bool

	// Interval is the mean pause between perturbations (default 2ms);
	// each window lasts one to three intervals.
	Interval time.Duration

	// Ring, when non-nil, receives one EvChaos span per perturbation
	// window, timestamped with Now — give the controller its own pipeline
	// slot and the workload's clock so the profiler can intersect the
	// spans with observed waits.
	Ring *obs.Ring
	// Now supplies cycle timestamps for the spans (required with Ring;
	// defaults to wall nanoseconds otherwise).
	Now func() uint64
}

// Chaos is a running chaos controller.
type Chaos struct {
	cfg      ChaosConfig
	stop     chan struct{}
	done     chan struct{}
	baseline int // GOMAXPROCS at Start, restored at Stop

	mu     sync.Mutex
	events []obs.Event
}

// starveFlip drives the park perturber's deterministic alternation between
// starved and inflated budgets. Package-scoped because the installed hook
// must be allocation-free and survive controller restarts.
var starveFlip atomic.Uint64

// StartChaos launches the controller goroutine. Call Stop before checking
// oracles or leaks: Stop restores GOMAXPROCS, uninstalls the park hook, and
// waits for in-flight storms to land.
func StartChaos(cfg ChaosConfig) *Chaos {
	if cfg.Interval <= 0 {
		cfg.Interval = 2 * time.Millisecond
	}
	if cfg.Now == nil {
		t0 := time.Now()
		cfg.Now = func() uint64 { return uint64(time.Since(t0)) }
	}
	c := &Chaos{
		cfg:      cfg,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		baseline: runtime.GOMAXPROCS(0),
	}
	if c.cfg.MinProcs < 1 {
		c.cfg.MinProcs = 1
	}
	if c.cfg.MaxProcs < c.cfg.MinProcs {
		c.cfg.MaxProcs = c.baseline
		if c.cfg.MaxProcs < c.cfg.MinProcs {
			c.cfg.MaxProcs = c.cfg.MinProcs
		}
	}
	go c.run()
	return c
}

// Stop halts the controller, restores the scheduler quota and park policy,
// and returns every recorded perturbation span (also available afterwards
// through Events).
func (c *Chaos) Stop() []obs.Event {
	close(c.stop)
	<-c.done
	park.SetChaos(nil)
	runtime.GOMAXPROCS(c.baseline)
	return c.Events()
}

// Events returns a copy of the recorded perturbation spans.
func (c *Chaos) Events() []obs.Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]obs.Event, len(c.events))
	copy(out, c.events)
	return out
}

func (c *Chaos) record(code uint8, start, dur uint64) {
	c.cfg.Ring.Chaos(code, start, dur) // nil-safe
	c.mu.Lock()
	c.events = append(c.events, obs.Event{TS: start, Dur: dur, CS: -1, Kind: obs.EvChaos, Code: code})
	c.mu.Unlock()
}

// sleep waits d or until Stop; it reports whether the controller should
// keep running.
func (c *Chaos) sleep(d time.Duration) bool {
	select {
	case <-c.stop:
		return false
	case <-time.After(d):
		return true
	}
}

func (c *Chaos) run() {
	defer close(c.done)
	rng := rand.New(rand.NewSource(c.cfg.Seed))
	var arms []func(*rand.Rand, time.Duration)
	if c.cfg.QuotaShrink {
		arms = append(arms, c.quota)
	}
	if c.cfg.PreemptStorm {
		arms = append(arms, c.preempt)
	}
	if c.cfg.ParkStarve {
		arms = append(arms, c.starve)
	}
	if len(arms) == 0 {
		<-c.stop
		return
	}
	for {
		pause := c.cfg.Interval/2 + time.Duration(rng.Int63n(int64(c.cfg.Interval)))
		if !c.sleep(pause) {
			return
		}
		window := c.cfg.Interval + time.Duration(rng.Int63n(2*int64(c.cfg.Interval)))
		arms[rng.Intn(len(arms))](rng, window)
	}
}

// quota walks GOMAXPROCS to a random point in [MinProcs, MaxProcs] for one
// window, then restores the baseline.
func (c *Chaos) quota(rng *rand.Rand, window time.Duration) {
	target := c.cfg.MinProcs + rng.Intn(c.cfg.MaxProcs-c.cfg.MinProcs+1)
	start := c.cfg.Now()
	runtime.GOMAXPROCS(target)
	c.sleep(window)
	runtime.GOMAXPROCS(c.baseline)
	c.record(obs.ChaosQuota, start, c.cfg.Now()-start)
}

// preempt raises a storm of OS-thread-pinned yield loops for one window.
// Each spinner wires itself to an OS thread so the scheduler must displace
// a real M to run anyone else — the sharpest preemption pressure available
// from user space.
func (c *Chaos) preempt(rng *rand.Rand, window time.Duration) {
	n := 2 + rng.Intn(2*runtime.GOMAXPROCS(0))
	start := c.cfg.Now()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			runtime.LockOSThread()
			defer runtime.UnlockOSThread()
			for {
				select {
				case <-stop:
					return
				default:
					runtime.Gosched()
				}
			}
		}()
	}
	c.sleep(window)
	close(stop)
	wg.Wait()
	c.record(obs.ChaosPreempt, start, c.cfg.Now()-start)
}

// starve installs the park-budget perturber for one window. The perturber
// alternates deterministically (an atomic counter, not per-goroutine rng)
// between zeroing the spin budget — every waiter parks on its first Pause,
// stressing the wake protocol's slow path — and inflating it, which turns
// would-be sleepers into spinners and recreates the oversubscription burn.
func (c *Chaos) starve(rng *rand.Rand, window time.Duration) {
	start := c.cfg.Now()
	park.SetChaos(func(p park.Policy) park.Policy {
		if starveFlip.Add(1)%2 == 0 {
			p.SpinBudget = 0 // park immediately
			return p
		}
		p.SpinBudget = 1 << 16 // spin through the window
		p.RoundTrip = 1 << 40  // predictions never trigger the early park
		return p
	})
	c.sleep(window)
	park.SetChaos(nil)
	c.record(obs.ChaosParkStarve, start, c.cfg.Now()-start)
}
