package readers

import (
	"fmt"
	"runtime"
	"sync/atomic"

	"sprwl/internal/memmodel"
)

// Bravo is a BRAVO-style sharded visible-readers table (Dice & Kogan,
// arXiv:1810.01553) adapted to SpRWL's flag-then-check protocol: a
// power-of-two array of cache-line-padded slot words, a shared overflow
// counter line, and a control line carrying a reader-bias bit plus a
// revocation epoch.
//
// Layout (each row its own cache line, so concurrent arrivals on distinct
// slots never share a line):
//
//	line 0            ctl: epoch<<1 | bias
//	line 1            overflow reader count
//	lines 2..2+slots  one visibility word per table slot (0 = empty)
//
// Arrive hashes the caller's hint over the table and claims an empty slot
// with a single CAS. If every probe collides — or a fallback writer has
// revoked the bias — the reader publishes on the overflow counter instead,
// so the structure never loses a reader regardless of how many goroutines
// pile in. The committing writer's Check reads the overflow line plus the
// table: O(slots)+1 lines, independent of the process's goroutine count.
//
// The bias bit is purely advisory, which is what makes revocation safe: a
// reader that read a stale bias and claims a slot after the writer cleared
// the bit is still published in a line every Check and Drain scans
// unconditionally. Revocation only steers *new* arrivals onto the single
// overflow line while a fallback writer drains, so the per-slot drain
// converges instead of chasing freshly claimed slots, and the epoch counts
// how often that happened for observability.
type Bravo struct {
	mem   Memory
	ctl   memmodel.Addr
	over  memmodel.Addr
	table memmodel.Addr
	n     int
	mask  uint64

	// Go-side accounting for reports and tests; not part of the
	// protocol state.
	collisions  atomic.Uint64
	revocations atomic.Uint64
}

var _ Indicator = (*Bravo)(nil)

// OverflowToken is the Arrive token of a reader published on the overflow
// counter rather than in a table slot.
const OverflowToken uint64 = 0

// bravoProbes is how many table slots an arrival tries before falling back
// to the overflow counter. Linear probing is fine: adjacent slots are
// distinct cache lines, and the hint is pre-mixed.
const bravoProbes = 3

// DefaultBravoSlots derives a table size from GOMAXPROCS: twice the
// processor count, rounded up to a power of two, bounded to keep the
// writer's scan short. More slots than runnable goroutines buys nothing —
// only ~GOMAXPROCS readers are ever mid-arrival at once.
func DefaultBravoSlots() int {
	return ClampBravoSlots(2 * runtime.GOMAXPROCS(0))
}

// ClampBravoSlots rounds n up to a power of two within [4, 256].
func ClampBravoSlots(n int) int {
	p := 4
	for p < n && p < 256 {
		p *= 2
	}
	return p
}

// BravoWords returns the simulated-memory footprint of a table with the
// given slot count, in words.
func BravoWords(slots int) int { return (2 + slots) * memmodel.LineWords }

// NewBravo builds a table of the given power-of-two slot count occupying
// BravoWords(slots) words at base. The region must be zeroed; the
// constructor arms the reader bias.
func NewBravo(mem Memory, base memmodel.Addr, slots int) *Bravo {
	if base%memmodel.LineWords != 0 {
		panic(fmt.Sprintf("readers: Bravo base %d not line-aligned", base))
	}
	if slots < 1 || slots&(slots-1) != 0 {
		panic(fmt.Sprintf("readers: Bravo slot count %d not a power of two", slots))
	}
	b := &Bravo{
		mem:   mem,
		ctl:   base,
		over:  base + memmodel.LineWords,
		table: base + 2*memmodel.LineWords,
		n:     slots,
		mask:  uint64(slots - 1),
	}
	mem.Store(b.ctl, 1) // epoch 0, bias on
	return b
}

// Slots returns the table size.
func (b *Bravo) Slots() int { return b.n }

func (b *Bravo) slotAddr(i int) memmodel.Addr {
	return b.table + memmodel.Addr(i*memmodel.LineWords)
}

// Arrive implements Indicator: claim a hashed table slot, or publish on
// the overflow counter when the probes collide or the bias is revoked.
//
//sprwl:hotpath
//sprwl:model
func (b *Bravo) Arrive(hint uint64) uint64 {
	if b.mem.Load(b.ctl)&1 != 0 {
		h := Mix64(hint)
		for p := uint64(0); p < bravoProbes; p++ {
			i := int((h + p) & b.mask)
			a := b.slotAddr(i)
			if b.mem.Load(a) == 0 && b.mem.CAS(a, 0, 1) {
				return uint64(i) + 1
			}
		}
		b.collisions.Add(1)
	}
	b.mem.Add(b.over, 1)
	return OverflowToken
}

// Depart implements Indicator.
//
//sprwl:hotpath
//sprwl:model
func (b *Bravo) Depart(token uint64) {
	if token == OverflowToken {
		b.mem.Add(b.over, ^uint64(0))
		return
	}
	b.mem.Store(b.slotAddr(int(token-1)), 0)
}

// Check implements Indicator: the overflow line plus every table slot —
// O(slots) lines regardless of goroutine count. skip is ignored; writers
// never occupy table slots.
//
//sprwl:hotpath
func (b *Bravo) Check(tx TxMemory, _ int) bool {
	if tx.Load(b.over) != 0 {
		return true
	}
	for i := 0; i < b.n; i++ {
		if tx.Load(b.slotAddr(i)) != 0 {
			return true
		}
	}
	return false
}

// Drain implements Indicator: wait out each table slot, then the overflow
// counter. Callers revoke the bias first (Revoke) so new arrivals land on
// the overflow line and the per-slot waits converge.
//
//sprwl:model
func (b *Bravo) Drain(y Yielder) {
	for i := 0; i < b.n; i++ {
		for b.mem.Load(b.slotAddr(i)) != 0 {
			y.Yield()
		}
	}
	for b.mem.Load(b.over) != 0 {
		y.Yield()
	}
}

// Revoke clears the reader bias and advances the revocation epoch,
// steering new arrivals onto the overflow counter. Only the fallback-lock
// holder may call it (stores to ctl are unsynchronized); pair with Restore
// before releasing the lock.
//
//sprwl:model
func (b *Bravo) Revoke() {
	epoch := b.mem.Load(b.ctl) >> 1
	b.mem.Store(b.ctl, (epoch+1)<<1)
	b.revocations.Add(1)
}

// Restore re-arms the reader bias after a revocation.
//
//sprwl:model
func (b *Bravo) Restore() {
	b.mem.Store(b.ctl, b.mem.Load(b.ctl)|1)
}

// Epoch returns the revocation epoch: how many times a fallback writer has
// revoked the bias.
func (b *Bravo) Epoch() uint64 { return b.mem.Load(b.ctl) >> 1 }

// Biased reports whether the reader bias is armed.
func (b *Bravo) Biased() bool { return b.mem.Load(b.ctl)&1 != 0 }

// Collisions returns how many arrivals exhausted their probes and fell
// back to the overflow counter while the bias was armed.
func (b *Bravo) Collisions() uint64 { return b.collisions.Load() }

// Revocations returns how many times Revoke ran.
func (b *Bravo) Revocations() uint64 { return b.revocations.Load() }

// Dynamic implements Indicator.
func (b *Bravo) Dynamic() bool { return true }
