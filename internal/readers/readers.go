// Package readers abstracts SpRWL's reader-visibility structure — the
// mechanism by which an uninstrumented reader publishes "I am active" and a
// committing writer asks "is any reader active?" — behind a single
// Indicator contract with three interchangeable backends:
//
//   - Flags: the paper's per-thread state array (§3.1, Alg. 1). Arrivals
//     are one store to the caller's preassigned slot; the writer's check
//     reads one word per registered thread. Cheapest for readers, O(max
//     threads) for writers, and only usable by threads that preregistered
//     a slot.
//
//   - SNZI: the Scalable NonZero Indicator (§3.4, Fig. 6, package snzi).
//     The writer's check is a single-line read of the indicator word;
//     arrivals pay an O(log n) expected tree walk. Safe for dynamic
//     (slot-less) readers because every update is a CAS.
//
//   - Bravo: a BRAVO-style sharded visible-readers table (Dice & Kogan,
//     arXiv:1810.01553): a small power-of-two array of cache-line-padded
//     slot words sized from GOMAXPROCS, indexed by hashing a per-reader
//     hint. Arrivals are one CAS into an uncontended line; the writer's
//     check scans the table — O(table slots), independent of how many
//     goroutines exist. Probe collisions and bias revocation (see Bravo)
//     fall back to a shared overflow counter, so arbitrarily many dynamic
//     readers are always representable.
//
// The backends operate directly on simulated memory (package memmodel
// addresses) through the Memory interface, which both execution
// environments satisfy, so transactional writers that read the structure
// participate in the HTM emulation's conflict detection: a reader arriving
// after the writer's check dooms the writer through strong isolation, the
// invariant SpRWL's safety rests on (paper §3.1). Package core composes
// these backends and keeps readers visible across runtime backend
// switches; this package only defines the structures themselves.
package readers

import "sprwl/internal/memmodel"

// Memory is the uninstrumented-access subset of the execution environment
// the backends operate through. Both env implementations satisfy it.
type Memory interface {
	Load(a memmodel.Addr) uint64
	Store(a memmodel.Addr, v uint64)
	CAS(a memmodel.Addr, old, new uint64) bool
	Add(a memmodel.Addr, d uint64) uint64
}

// TxMemory is the transactional view a committing writer checks the
// structure through; env.TxAccessor satisfies it.
type TxMemory interface {
	Load(a memmodel.Addr) uint64
}

// Yielder lets a drain loop release the (possibly simulated) processor
// while it waits; env.Env satisfies it.
type Yielder interface {
	Yield()
}

// Indicator is the reader-visibility contract. An implementation must
// guarantee that between a completed Arrive and the matching Depart the
// reader is observable by every Check and holds up every Drain — with no
// gap, including across any internal fast-path/slow-path handoff.
type Indicator interface {
	// Arrive publishes an active reader. hint seeds slot selection:
	// backends that shard by identity hash it, backends with preassigned
	// slots index by it (Flags requires hint to be the caller's slot).
	// The returned token must be passed to the matching Depart.
	Arrive(hint uint64) uint64

	// Depart withdraws the publication made by the Arrive that returned
	// token.
	Depart(token uint64)

	// Check reports whether any reader is visible, reading through tx so
	// the structure's lines enter a transactional writer's read set.
	// skip, when non-negative, is a Flags slot to ignore (a writer
	// sharing the state array skips its own entry); sharded backends
	// ignore it.
	Check(tx TxMemory, skip int) bool

	// Drain blocks until no reader is visible, yielding through y while
	// it waits. Callers must prevent unbounded new arrivals (SpRWL's
	// fallback writer holds the global lock, so arriving readers flag,
	// observe the lock, and retract).
	Drain(y Yielder)

	// Dynamic reports whether Arrive is safe for arbitrarily many
	// concurrent readers carrying arbitrary hints.
	Dynamic() bool
}

// Mix64 is the splitmix64 finalizer, used to spread arbitrary reader
// hints (goroutine-local seeds, slot numbers) across table slots.
//
//sprwl:hotpath
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
