package readers

import "sprwl/internal/memmodel"

// Flag-array word values. They intentionally coincide with package core's
// state constants: the Flags backend operates on core's per-thread state
// array, where writers advertise themselves with a different value
// (stateWriter = 2) in the same words; only flagActive counts as a reader.
const (
	flagEmpty  = 0
	flagActive = 1
)

// Flags is the paper's per-thread flag array (§3.1): one word per
// preregistered thread, packed eight to a cache line. It is the only
// backend that is not Dynamic — an Arrive hint must be the caller's own
// preassigned slot, and a concurrent Arrive with the same hint would be a
// lost update.
type Flags struct {
	mem  Memory
	base memmodel.Addr
	n    int
}

var _ Indicator = Flags{}

// NewFlags wraps the n-word array at base (typically core's state array;
// this backend allocates nothing of its own).
func NewFlags(mem Memory, base memmodel.Addr, n int) Flags {
	return Flags{mem: mem, base: base, n: n}
}

func (f Flags) addr(i int) memmodel.Addr { return f.base + memmodel.Addr(i) }

// Arrive implements Indicator. hint must be the caller's slot in [0, n).
//
//sprwl:hotpath
//sprwl:model
func (f Flags) Arrive(hint uint64) uint64 {
	f.mem.Store(f.addr(int(hint)), flagActive)
	return hint
}

// Depart implements Indicator.
//
//sprwl:hotpath
//sprwl:model
func (f Flags) Depart(token uint64) {
	f.mem.Store(f.addr(int(token)), flagEmpty)
}

// Check implements Indicator: one transactional load per registered
// thread, skipping the writer's own slot when skip is non-negative.
//
//sprwl:hotpath
func (f Flags) Check(tx TxMemory, skip int) bool {
	for i := 0; i < f.n; i++ {
		if i != skip && tx.Load(f.addr(i)) == flagActive {
			return true
		}
	}
	return false
}

// Drain implements Indicator: wait, at most once per slot, for every
// active reader to retract.
//
//sprwl:model
func (f Flags) Drain(y Yielder) {
	for i := 0; i < f.n; i++ {
		for f.mem.Load(f.addr(i)) == flagActive {
			y.Yield()
		}
	}
}

// Dynamic implements Indicator.
func (f Flags) Dynamic() bool { return false }
