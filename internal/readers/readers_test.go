package readers

import (
	"sync"
	"testing"

	"sprwl/internal/memmodel"
	"sprwl/internal/snzi"
)

// memSpace is a minimal concurrent Memory for tests: a flat word array
// with mutex-serialized accesses (the contract only needs atomicity per
// word, which this over-provides).
type memSpace struct {
	mu    sync.Mutex
	words []uint64
}

func newMemSpace(words int) *memSpace { return &memSpace{words: make([]uint64, words)} }

func (m *memSpace) Load(a memmodel.Addr) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.words[a]
}

func (m *memSpace) Store(a memmodel.Addr, v uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.words[a] = v
}

func (m *memSpace) CAS(a memmodel.Addr, old, new uint64) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.words[a] != old {
		return false
	}
	m.words[a] = new
	return true
}

func (m *memSpace) Add(a memmodel.Addr, d uint64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.words[a] += d
	return m.words[a]
}

func (m *memSpace) Yield() {}

// txView adapts memSpace to TxMemory.
type txView struct{ m *memSpace }

func (t txView) Load(a memmodel.Addr) uint64 { return t.m.Load(a) }

// TestIndicatorContract: for every backend, a reader is visible to Check
// exactly between Arrive and Depart, and Drain returns once all readers
// departed.
func TestIndicatorContract(t *testing.T) {
	for _, name := range []string{"flags", "snzi", "bravo"} {
		t.Run(name, func(t *testing.T) {
			m := newMemSpace(1 << 12)
			var ind Indicator
			switch name {
			case "flags":
				ind = NewFlags(m, 0, 8)
			case "snzi":
				ind = NewSNZI(snzi.New(m, 0, 8))
			case "bravo":
				ind = NewBravo(m, 64, 8)
			}
			tx := txView{m}
			if ind.Check(tx, -1) {
				t.Fatal("empty indicator reports a reader")
			}
			tok1 := ind.Arrive(1)
			tok2 := ind.Arrive(2)
			if !ind.Check(tx, -1) {
				t.Fatal("two arrived readers invisible to Check")
			}
			ind.Depart(tok1)
			if !ind.Check(tx, -1) {
				t.Fatal("one remaining reader invisible to Check")
			}
			ind.Depart(tok2)
			if ind.Check(tx, -1) {
				t.Fatal("reader still visible after all departed")
			}
			ind.Drain(m) // must not block with no readers
		})
	}
}

// TestFlagsSkipsWriterSlot: the skip parameter hides exactly one slot,
// which is how a writer sharing the state array ignores its own entry.
func TestFlagsSkipsWriterSlot(t *testing.T) {
	m := newMemSpace(64)
	f := NewFlags(m, 0, 8)
	tx := txView{m}
	tok := f.Arrive(3)
	if f.Check(tx, 3) {
		t.Fatal("Check saw the skipped slot")
	}
	if !f.Check(tx, 2) {
		t.Fatal("Check missed a reader in a non-skipped slot")
	}
	f.Depart(tok)
	if f.Dynamic() {
		t.Fatal("Flags must not report Dynamic")
	}
}

// TestBravoCollisionFallback: once every probed slot is taken, further
// arrivals publish on the overflow counter and remain visible.
func TestBravoCollisionFallback(t *testing.T) {
	m := newMemSpace(1 << 12)
	b := NewBravo(m, 0, 4)
	tx := txView{m}

	// Fill the entire table so any further probe sequence must collide.
	var toks []uint64
	for hint := uint64(0); len(toks) < b.Slots(); hint++ {
		if tok := b.Arrive(hint); tok != OverflowToken {
			toks = append(toks, tok)
		} else {
			b.Depart(tok)
		}
	}
	over := b.Arrive(99)
	if over != OverflowToken {
		t.Fatalf("arrival into a full table got slot token %d, want overflow", over)
	}
	if b.Collisions() == 0 {
		t.Fatal("collision not counted")
	}
	if !b.Check(tx, -1) {
		t.Fatal("overflow reader invisible")
	}
	for _, tok := range toks {
		b.Depart(tok)
	}
	if !b.Check(tx, -1) {
		t.Fatal("overflow reader invisible after slot readers departed")
	}
	b.Depart(over)
	if b.Check(tx, -1) {
		t.Fatal("indicator not empty after all departs")
	}
}

// TestBravoRevocation: revoking the bias routes new arrivals to the
// overflow counter, bumps the epoch, and never hides an already-arrived
// reader; Restore re-arms the fast path.
func TestBravoRevocation(t *testing.T) {
	m := newMemSpace(1 << 12)
	b := NewBravo(m, 0, 8)
	tx := txView{m}

	slotTok := b.Arrive(7)
	if slotTok == OverflowToken {
		t.Fatal("biased arrival into an empty table overflowed")
	}
	b.Revoke()
	if b.Biased() {
		t.Fatal("bias still armed after Revoke")
	}
	if b.Epoch() != 1 || b.Revocations() != 1 {
		t.Fatalf("epoch/revocations = %d/%d, want 1/1", b.Epoch(), b.Revocations())
	}
	revTok := b.Arrive(8)
	if revTok != OverflowToken {
		t.Fatal("arrival under revoked bias claimed a table slot")
	}
	// Both the pre-revocation slot reader and the overflow reader are
	// visible — revocation must not hide anyone.
	if !b.Check(tx, -1) {
		t.Fatal("readers invisible under revocation")
	}
	b.Depart(slotTok)
	if !b.Check(tx, -1) {
		t.Fatal("overflow reader invisible under revocation")
	}
	b.Depart(revTok)
	if b.Check(tx, -1) {
		t.Fatal("indicator not empty")
	}
	b.Restore()
	if !b.Biased() {
		t.Fatal("bias not re-armed by Restore")
	}
	if tok := b.Arrive(9); tok == OverflowToken {
		t.Fatal("restored bias did not re-enable the table fast path")
	} else {
		b.Depart(tok)
	}
}

// TestBravoConcurrentArriveDepart: hammer the table from many goroutines;
// it must end empty and never double-claim a slot (each claimed token is
// unique among concurrently held ones by construction of CAS, which this
// exercises under race).
func TestBravoConcurrentArriveDepart(t *testing.T) {
	m := newMemSpace(1 << 12)
	b := NewBravo(m, 0, 8)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			h := Mix64(seed)
			for i := 0; i < 500; i++ {
				tok := b.Arrive(h)
				h = Mix64(h)
				b.Depart(tok)
			}
		}(uint64(g))
	}
	wg.Wait()
	if b.Check(txView{m}, -1) {
		t.Fatal("indicator not empty after all goroutines departed")
	}
}

// TestClampBravoSlots pins the sizing envelope.
func TestClampBravoSlots(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 4}, {1, 4}, {4, 4}, {5, 8}, {16, 16}, {17, 32}, {1000, 256},
	} {
		if got := ClampBravoSlots(tc.in); got != tc.want {
			t.Errorf("ClampBravoSlots(%d) = %d, want %d", tc.in, got, tc.want)
		}
	}
	if s := DefaultBravoSlots(); s < 4 || s > 256 || s&(s-1) != 0 {
		t.Fatalf("DefaultBravoSlots() = %d, want a power of two in [4,256]", s)
	}
}
