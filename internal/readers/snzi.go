package readers

import "sprwl/internal/snzi"

// SNZI adapts a Scalable NonZero Indicator (package snzi) to the Indicator
// contract. Every tree update is a CAS, so arbitrary concurrent hints are
// safe and the backend is Dynamic; the hint only selects which leaf absorbs
// the arrival. The token is the hint itself: Depart must walk up from the
// same leaf Arrive charged.
type SNZI struct {
	z *snzi.SNZI
}

var _ Indicator = SNZI{}

// NewSNZI wraps an existing indicator tree.
func NewSNZI(z *snzi.SNZI) SNZI { return SNZI{z: z} }

// leaf maps an arbitrary hint onto a leaf index the tree accepts.
func (s SNZI) leaf(hint uint64) int { return int(hint % uint64(s.z.Leaves())) }

// Arrive implements Indicator.
//
//sprwl:hotpath
func (s SNZI) Arrive(hint uint64) uint64 {
	s.z.Arrive(s.leaf(hint))
	return hint
}

// Depart implements Indicator.
//
//sprwl:hotpath
func (s SNZI) Depart(token uint64) {
	s.z.Depart(s.leaf(token))
}

// Check implements Indicator: a single-line read of the indicator word,
// the whole point of the SNZI trade-off (§3.4). skip is ignored.
//
//sprwl:hotpath
func (s SNZI) Check(tx TxMemory, _ int) bool {
	return tx.Load(s.z.IndicatorAddr()) != 0
}

// Drain implements Indicator.
func (s SNZI) Drain(y Yielder) {
	for s.z.Query() {
		y.Yield()
	}
}

// Dynamic implements Indicator.
func (s SNZI) Dynamic() bool { return true }
