// Package rwlock defines the read-write critical-section interface shared
// by SpRWL (package core), the HTM baselines (packages tle and rwle), and
// the pessimistic baselines (package locks). Workloads and the benchmark
// harness are written against this interface, so every algorithm the paper
// evaluates is interchangeable behind it.
package rwlock

import "sprwl/internal/memmodel"

// Body is a critical-section body. It must perform every shared-data access
// through the supplied accessor: depending on the algorithm and execution
// path the accessor is transactional (with retry semantics — the body may
// run several times, so it must be idempotent apart from its accessor
// stores) or direct.
type Body func(acc memmodel.Accessor)

// Handle is one thread's endpoint to a lock. A Handle must only be used by
// the thread (goroutine) it was created for; this mirrors the per-thread
// state (flags, qnodes, duration estimates) every algorithm in the paper
// keeps.
type Handle interface {
	// Read executes body as a read-only critical section. csID
	// identifies the static critical section for duration estimation
	// (paper §3.2.1); callers give each distinct read/write section its
	// own ID in [0, NumCS).
	Read(csID int, body Body)

	// Write executes body as an updating critical section.
	Write(csID int, body Body)
}

// Lock is a read-write lock instance shared by up to Threads() handles.
type Lock interface {
	// NewHandle returns the endpoint for the given thread slot.
	NewHandle(slot int) Handle

	// Name is the algorithm label used in reports ("SpRWL", "TLE", ...).
	Name() string
}
