// Options-matrix conformance: every valid core.Options combination must
// pass a short round of the contract suite. This is the table-driven
// backstop for option interactions no named preset exercises (e.g.
// VersionedSGL × BRAVO × WriterSync).
package rwlocktest

import (
	"fmt"
	"testing"

	"sprwl/internal/core"
	"sprwl/internal/env"
	"sprwl/internal/hostile"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
)

// backendAxis enumerates the reader-tracking choices.
var backendAxis = []struct {
	name  string
	apply func(*core.Options)
}{
	{"flags", func(*core.Options) {}},
	{"snzi", func(o *core.Options) { o.UseSNZI = true }},
	{"bravo", func(o *core.Options) { o.UseBravo = true; o.BravoSlots = 8 }},
	{"auto", func(o *core.Options) { o.AutoSNZI = true; o.AutoSNZIThreshold = 4096 }},
}

// validOptionCombos enumerates every semantically valid Options value over
// the boolean axes: JoinWaiters and TimedReaderWait are refinements of
// ReaderSync (meaningless without the state-array scan), and the four
// tracking backends are mutually exclusive by construction.
func validOptionCombos() []struct {
	name string
	opts core.Options
} {
	var combos []struct {
		name string
		opts core.Options
	}
	for _, rs := range []bool{false, true} {
		jwAxis := []bool{false}
		trwAxis := []bool{false}
		if rs {
			jwAxis = []bool{false, true}
			trwAxis = []bool{false, true}
		}
		for _, jw := range jwAxis {
			for _, trw := range trwAxis {
				for _, ws := range []bool{false, true} {
					for _, htmFirst := range []bool{false, true} {
						for _, vsgl := range []bool{false, true} {
							for _, be := range backendAxis {
								o := core.Options{
									ReaderSync:      rs,
									JoinWaiters:     jw,
									TimedReaderWait: trw,
									WriterSync:      ws,
									ReaderHTMFirst:  htmFirst,
									VersionedSGL:    vsgl,
									MaxRetries:      4,
									ReaderRetries:   4,
								}
								be.apply(&o)
								name := fmt.Sprintf("%s_rs=%t_jw=%t_trw=%t_ws=%t_htm=%t_vsgl=%t",
									be.name, rs, jw, trw, ws, htmFirst, vsgl)
								combos = append(combos, struct {
									name string
									opts core.Options
								}{name, o})
							}
						}
					}
				}
			}
		}
	}
	return combos
}

// TestOptionsMatrix runs the safety core of the contract suite (mutual
// exclusion, reader isolation, exactly-once effects) over every valid
// options combination with short rounds.
func TestOptionsMatrix(t *testing.T) {
	// One leak baseline over all 320 combos: cleanup runs after the last
	// sequential subtest, when any stranded waiter is unambiguous.
	hostile.LeakCheck(t)
	combos := validOptionCombos()
	cfg := Config{Threads: 4, Rounds: 12}
	if testing.Short() {
		cfg.Rounds = 6
	}
	for _, c := range combos {
		opts := c.opts
		t.Run(c.name, func(t *testing.T) {
			f := func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
				return core.MustNew(e, ar, threads, 4, opts, nil)
			}
			writerMutualExclusion(t, f, cfg)
			readerIsolation(t, f, cfg)
			effectsOnce(t, f, cfg)
		})
	}
}
