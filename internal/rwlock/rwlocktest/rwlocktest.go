// Package rwlocktest is a reusable conformance suite for rwlock.Lock
// implementations. Every lock in this repository — SpRWL and all its
// variants, TLE, RW-LE, and the pessimistic baselines — must pass it; the
// per-package tests invoke Run with a factory.
//
// The suite checks the read-write lock contract, not performance:
//
//   - writer-writer mutual exclusion (no lost updates under read-modify-
//     write storms);
//   - reader isolation (a reader never observes a writer's partial update);
//   - read-read concurrency (two readers must be able to overlap);
//   - writer progress under a continuous stream of readers;
//   - reader progress under a continuous stream of writers;
//   - body retry discipline (bodies may run multiple times, but effects
//     commit exactly once).
package rwlocktest

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/hostile"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
)

// Factory builds the lock under test over the given environment, carving
// state from ar, for the given thread count.
type Factory func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock

// Config tunes the suite.
type Config struct {
	// Threads is the worker count used by the concurrent checks
	// (default 4, minimum 2).
	Threads int
	// Rounds scales the iteration counts (default 150, or 40 under
	// -short so the full matrix stays fast under -race).
	Rounds int
	// HTMConfig overrides the space configuration (Threads/Words are
	// always set by the suite).
	HTMConfig htm.Config
}

func (c *Config) defaults() {
	if c.Threads < 2 {
		c.Threads = 4
	}
	if c.Rounds <= 0 {
		c.Rounds = 150
		if testing.Short() {
			c.Rounds = 40
		}
	}
}

// Run executes the full conformance suite against the factory.
func Run(t *testing.T, f Factory, cfg Config) {
	cfg.defaults()
	// Every conformance run is leak-checked: a suite can pass its oracle
	// while stranding a parked goroutine, and that must still be red.
	hostile.LeakCheck(t)
	t.Run("WriterMutualExclusion", func(t *testing.T) { writerMutualExclusion(t, f, cfg) })
	t.Run("ReaderIsolation", func(t *testing.T) { readerIsolation(t, f, cfg) })
	t.Run("ReadersOverlap", func(t *testing.T) { readersOverlap(t, f, cfg) })
	t.Run("WriterProgressUnderReaders", func(t *testing.T) { writerProgress(t, f, cfg) })
	t.Run("ReaderProgressUnderWriters", func(t *testing.T) { readerProgress(t, f, cfg) })
	t.Run("EffectsCommitExactlyOnce", func(t *testing.T) { effectsOnce(t, f, cfg) })
}

// build sets up a fresh environment and lock.
func build(t *testing.T, f Factory, cfg Config) (rwlock.Lock, env.Env, *memmodel.Arena) {
	t.Helper()
	hc := cfg.HTMConfig
	hc.Threads = cfg.Threads
	if hc.Words == 0 {
		hc.Words = 1 << 15
	}
	space, err := htm.NewSpace(hc)
	if err != nil {
		t.Fatal(err)
	}
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	l := f(e, ar, cfg.Threads) // lock state first, test data after
	return l, e, ar
}

func writerMutualExclusion(t *testing.T, f Factory, cfg Config) {
	l, e, ar := build(t, f, cfg)
	ctr := ar.AllocLines(1)
	var wg sync.WaitGroup
	for slot := 0; slot < cfg.Threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < cfg.Rounds; i++ {
				h.Write(0, func(acc memmodel.Accessor) {
					v := acc.Load(ctr)
					runtime.Gosched() // widen any exclusion hole
					acc.Store(ctr, v+1)
				})
			}
		}(slot)
	}
	wg.Wait()
	if got, want := e.Load(ctr), uint64(cfg.Threads*cfg.Rounds); got != want {
		t.Fatalf("%s: counter = %d, want %d (lost updates)", l.Name(), got, want)
	}
}

func readerIsolation(t *testing.T, f Factory, cfg Config) {
	l, _, ar := build(t, f, cfg)
	x, y := ar.AllocLines(1), ar.AllocLines(1)
	var wg sync.WaitGroup
	for slot := 0; slot < cfg.Threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < cfg.Rounds; i++ {
				if slot == 0 {
					h.Write(0, func(acc memmodel.Accessor) {
						v := acc.Load(x) + 1
						acc.Store(x, v)
						runtime.Gosched()
						acc.Store(y, v)
					})
				} else {
					// Extract inside, assert outside: the body may
					// re-execute on abort, so the assertion must only
					// judge the committed execution's values.
					var vx, vy uint64
					h.Read(1, func(acc memmodel.Accessor) {
						vx, vy = acc.Load(x), acc.Load(y)
					})
					if vx != vy {
						t.Errorf("%s: torn read %d vs %d", l.Name(), vx, vy)
					}
				}
			}
		}(slot)
	}
	wg.Wait()
}

func readersOverlap(t *testing.T, f Factory, cfg Config) {
	l, _, _ := build(t, f, cfg)
	var active, maxActive atomic.Int64
	var wg sync.WaitGroup
	for slot := 0; slot < cfg.Threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < cfg.Rounds*2 && maxActive.Load() < 2; i++ {
				// The side effects below are the point of this test: it
				// measures whether two reader bodies are ever active at
				// once. The body performs no Accessor operation, so a
				// hardware attempt has no abort point inside it and the
				// Add(+1)/Add(-1) pair always runs to completion.
				h.Read(0, func(acc memmodel.Accessor) {
					//sprwl:allow(bodyidempotent) deliberate: the overlap counter must tick on every execution, committed or not — re-execution noise only ever raises maxActive toward the value the test asserts
					n := active.Add(1)
					//sprwl:allow(bodyidempotent) deliberate: max-tracking CAS loop on the probe counter; monotone, so replays cannot corrupt the verdict
					for o := maxActive.Load(); n > o; o = maxActive.Load() {
						if maxActive.CompareAndSwap(o, n) {
							break
						}
					}
					runtime.Gosched()
					active.Add(-1)
				})
			}
		}(slot)
	}
	wg.Wait()
	if maxActive.Load() < 2 {
		t.Fatalf("%s: readers never overlapped", l.Name())
	}
}

func writerProgress(t *testing.T, f Factory, cfg Config) {
	l, _, _ := build(t, f, cfg)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for slot := 1; slot < cfg.Threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for {
				select {
				case <-stop:
					return
				default:
				}
				h.Read(0, func(acc memmodel.Accessor) {})
			}
		}(slot)
	}
	h := l.NewHandle(0)
	for i := 0; i < 30; i++ { // the test timeout is the starvation detector
		h.Write(1, func(acc memmodel.Accessor) {})
	}
	close(stop)
	wg.Wait()
}

func readerProgress(t *testing.T, f Factory, cfg Config) {
	l, _, ar := build(t, f, cfg)
	data := ar.AllocLines(1)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for slot := 1; slot < cfg.Threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				h.Write(0, func(acc memmodel.Accessor) { acc.Store(data, uint64(i)) })
			}
		}(slot)
	}
	h := l.NewHandle(0)
	for i := 0; i < 30; i++ {
		h.Read(1, func(acc memmodel.Accessor) { _ = acc.Load(data) })
	}
	close(stop)
	wg.Wait()
}

func effectsOnce(t *testing.T, f Factory, cfg Config) {
	// Force heavy retrying via spurious aborts: every committed section's
	// effect must still apply exactly once.
	cfg.HTMConfig.SpuriousEvery = 7
	l, e, ar := build(t, f, cfg)
	ctr := ar.AllocLines(1)
	var wg sync.WaitGroup
	for slot := 0; slot < cfg.Threads; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < cfg.Rounds; i++ {
				h.Write(0, func(acc memmodel.Accessor) {
					acc.Store(ctr, acc.Load(ctr)+1)
				})
			}
		}(slot)
	}
	wg.Wait()
	if got, want := e.Load(ctr), uint64(cfg.Threads*cfg.Rounds); got != want {
		t.Fatalf("%s: counter = %d, want %d (re-executed effects leaked)", l.Name(), got, want)
	}
}
