// Conformance runs of every lock implementation in the repository against
// the shared rwlock contract suite.
package rwlocktest

import (
	"testing"

	"sprwl/internal/core"
	"sprwl/internal/env"
	"sprwl/internal/htm"
	"sprwl/internal/locks"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwle"
	"sprwl/internal/rwlock"
	"sprwl/internal/tle"
)

func coreFactory(opts func() core.Options) Factory {
	return func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
		return core.MustNew(e, ar, threads, 4, opts(), nil)
	}
}

// dynamicLock adapts a core lock so every handle the suite asks for is
// dynamically registered (no preassigned slot), running the full contract
// over the slot-free reader path.
type dynamicLock struct{ l *core.Lock }

func (d dynamicLock) NewHandle(int) rwlock.Handle {
	h, err := d.l.NewDynamicHandle()
	if err != nil {
		panic(err)
	}
	return h
}

func (d dynamicLock) Name() string { return d.l.Name() + "-Dyn" }

func dynamicFactory(opts func() core.Options) Factory {
	return func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
		return dynamicLock{l: core.MustNew(e, ar, threads, 4, opts(), nil)}
	}
}

// tinyBravoOptions shrinks the visible-readers table below the suite's
// thread count so the overflow/collision path is exercised under load.
func tinyBravoOptions() core.Options {
	o := core.BravoOptions()
	o.BravoSlots = 4
	return o
}

func TestConformance(t *testing.T) {
	factories := map[string]Factory{
		"SpRWL":            coreFactory(core.DefaultOptions),
		"SpRWL-NoSched":    coreFactory(core.NoSchedOptions),
		"SpRWL-RWait":      coreFactory(core.RWaitOptions),
		"SpRWL-RSync":      coreFactory(core.RSyncOptions),
		"SpRWL-SNZI":       coreFactory(core.SNZIOptions),
		"SpRWL-Auto":       coreFactory(core.AutoSNZIOptions),
		"SpRWL-Bravo":      coreFactory(core.BravoOptions),
		"SpRWL-Bravo-Tiny": coreFactory(tinyBravoOptions),
		"SpRWL-Bravo-Dyn":  dynamicFactory(core.BravoOptions),
		"SpRWL-SNZI-Dyn":   dynamicFactory(core.SNZIOptions),
		"SpRWL-Auto-Dyn":   dynamicFactory(core.AutoSNZIOptions),
		"SpRWL-VSGL": coreFactory(func() core.Options {
			o := core.DefaultOptions()
			o.VersionedSGL = true
			return o
		}),
		"SpRWL-NoHTMFirst": coreFactory(func() core.Options {
			o := core.DefaultOptions()
			o.ReaderHTMFirst = false
			return o
		}),
		"TLE": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return tle.New(e, ar, 0, nil)
		},
		"RW-LE": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return rwle.New(e, ar, threads, 0, 0, nil)
		},
		"RWL": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return locks.NewRWL(e, ar, nil)
		},
		"BRLock": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return locks.NewBRLock(e, ar, threads, nil)
		},
		"PFRWL": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return locks.NewPFRWL(e, ar, nil)
		},
		"PRWL": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return locks.NewPRWL(e, ar, threads, nil)
		},
		"MCS-RW": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return locks.NewMCSRW(e, ar, threads, nil)
		},
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			Run(t, f, Config{})
		})
	}
}

// TestConformanceUnderCapacityPressure re-runs the suite with a tiny HTM
// capacity, forcing every algorithm through its fallback machinery.
func TestConformanceUnderCapacityPressure(t *testing.T) {
	if testing.Short() {
		t.Skip("capacity-pressure conformance is slow under -short")
	}
	factories := map[string]Factory{
		"SpRWL": coreFactory(core.DefaultOptions),
		"TLE": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return tle.New(e, ar, 0, nil)
		},
		"RW-LE": func(e env.Env, ar *memmodel.Arena, threads int) rwlock.Lock {
			return rwle.New(e, ar, threads, 0, 0, nil)
		},
	}
	for name, f := range factories {
		t.Run(name, func(t *testing.T) {
			Run(t, f, Config{HTMConfig: htm.Config{ReadCapacityLines: 3, WriteCapacityLines: 3}})
		})
	}
}
