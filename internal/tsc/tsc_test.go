package tsc

import (
	"testing"
	"time"
)

func TestWallClockMonotone(t *testing.T) {
	var c WallClock
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		now := c.Now()
		if now < prev {
			t.Fatalf("clock went backwards: %d -> %d", prev, now)
		}
		prev = now
	}
}

func TestWallClockAdvances(t *testing.T) {
	var c WallClock
	start := c.Now()
	time.Sleep(2 * time.Millisecond)
	if elapsed := c.Now() - start; elapsed < uint64(time.Millisecond) {
		t.Fatalf("clock advanced only %d cycles across a 2ms sleep", elapsed)
	}
}

func TestWallClockCopiesShareEpoch(t *testing.T) {
	var a, b WallClock
	x := a.Now()
	y := b.Now()
	if y+uint64(time.Second) < x {
		t.Fatalf("independent WallClock values diverge: %d vs %d", x, y)
	}
}

func TestManualClock(t *testing.T) {
	m := NewManual(100)
	if m.Now() != 100 {
		t.Fatalf("Now = %d, want 100", m.Now())
	}
	m.Advance(50)
	if m.Now() != 150 {
		t.Fatalf("Now = %d after Advance, want 150", m.Now())
	}
	m.Set(200)
	if m.Now() != 200 {
		t.Fatalf("Now = %d after Set, want 200", m.Now())
	}
}

func TestManualSetBackwardsPanics(t *testing.T) {
	m := NewManual(100)
	defer func() {
		if recover() == nil {
			t.Fatal("Set backwards did not panic")
		}
	}()
	m.Set(50)
}
