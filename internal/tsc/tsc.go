// Package tsc provides the cycle-clock abstraction standing in for the
// hardware timestamp counter (rdtsc on x86, the time base on POWER) that the
// paper's scheduling heuristics read.
//
// SpRWL only needs a cheap, monotone, roughly cycle-granular time source for
// its duration estimates and timed waits, so the real implementation is
// backed by Go's monotonic clock with nanoseconds treated as cycles. Tests
// and the discrete-event simulator substitute their own clocks.
package tsc

import "time"

// Clock is a monotone cycle counter.
type Clock interface {
	// Now returns the current cycle count. Successive calls never
	// decrease.
	Now() uint64
}

// WallClock reads the host monotonic clock, reporting nanoseconds as cycles.
// The zero value is ready to use; all copies share the same epoch (the
// process-wide monotonic origin), so cycle values are comparable across
// threads as the paper's timestamp counters are across cores.
type WallClock struct{}

var epoch = time.Now()

// Now implements Clock.
func (WallClock) Now() uint64 {
	return uint64(time.Since(epoch))
}

// Manual is a hand-advanced clock for deterministic tests. It is not safe
// for concurrent use with Advance; concurrent Now calls are safe only if the
// clock is not being advanced.
type Manual struct {
	now uint64
}

// NewManual returns a Manual clock starting at start cycles.
func NewManual(start uint64) *Manual { return &Manual{now: start} }

// Now implements Clock.
func (m *Manual) Now() uint64 { return m.now }

// Advance moves the clock forward by d cycles.
func (m *Manual) Advance(d uint64) { m.now += d }

// Set moves the clock to t cycles. It panics if t would move time backwards.
func (m *Manual) Set(t uint64) {
	if t < m.now {
		panic("tsc: Manual.Set moving time backwards")
	}
	m.now = t
}
