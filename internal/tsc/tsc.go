// Package tsc provides the cycle-clock abstraction standing in for the
// hardware timestamp counter (rdtsc on x86, the time base on POWER) that the
// paper's scheduling heuristics read.
//
// SpRWL only needs a cheap, monotone, roughly cycle-granular time source for
// its duration estimates and timed waits, so the real implementation is
// backed by Go's monotonic clock with nanoseconds treated as cycles. Tests
// and the discrete-event simulator substitute their own clocks.
package tsc

import (
	"sync/atomic"
	"time"
)

// Clock is a monotone cycle counter.
type Clock interface {
	// Now returns the current cycle count. Successive calls never
	// decrease.
	Now() uint64
}

// Sleeper is implemented by clocks that can complete a timed wait by
// advancing virtual time instead of blocking the caller. Environments
// performing a timed wait should prefer Sleeper over sleeping on the host
// clock when the configured Clock provides it.
type Sleeper interface {
	// SleepUntil moves the clock to at least t cycles and returns; on
	// return Now() >= t.
	SleepUntil(t uint64)
}

// WallClock reads the host monotonic clock, reporting nanoseconds as cycles.
// The zero value is ready to use; all copies share the same epoch (the
// process-wide monotonic origin), so cycle values are comparable across
// threads as the paper's timestamp counters are across cores.
type WallClock struct{}

var epoch = time.Now()

// Now implements Clock.
func (WallClock) Now() uint64 {
	return uint64(time.Since(epoch))
}

// Manual is a hand-advanced clock for deterministic tests. It is not safe
// for concurrent use with Advance; concurrent Now calls are safe only if the
// clock is not being advanced.
type Manual struct {
	now uint64
}

// NewManual returns a Manual clock starting at start cycles.
func NewManual(start uint64) *Manual { return &Manual{now: start} }

// Now implements Clock.
func (m *Manual) Now() uint64 { return m.now }

// Advance moves the clock forward by d cycles.
func (m *Manual) Advance(d uint64) { m.now += d }

// Set moves the clock to t cycles. It panics if t would move time backwards.
func (m *Manual) Set(t uint64) {
	if t < m.now {
		panic("tsc: Manual.Set moving time backwards")
	}
	m.now = t
}

// Virtual is a concurrency-safe virtual clock for deterministic tests of
// the timed-wait paths: time stands still except when explicitly advanced
// or when a timed wait completes by jumping to its deadline (SleepUntil).
// Tests asserting on wait targets can therefore use exact equality — no
// host-scheduler slack is ever added.
type Virtual struct {
	now atomic.Uint64
}

// NewVirtual returns a Virtual clock starting at start cycles.
func NewVirtual(start uint64) *Virtual {
	v := &Virtual{}
	v.now.Store(start)
	return v
}

// Now implements Clock.
func (v *Virtual) Now() uint64 { return v.now.Load() }

// Advance moves the clock forward by d cycles and returns the new time.
func (v *Virtual) Advance(d uint64) uint64 { return v.now.Add(d) }

// SleepUntil implements Sleeper: the wait completes instantly by moving
// virtual time to its deadline (never backwards).
func (v *Virtual) SleepUntil(t uint64) {
	for {
		now := v.now.Load()
		if now >= t || v.now.CompareAndSwap(now, t) {
			return
		}
	}
}
