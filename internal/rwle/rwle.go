// Package rwle implements Hardware Read-Write Lock Elision (RW-LE) of
// Felber, Issa, Matveev and Romano (EuroSys '16), the closest related work
// the paper compares against (§2, evaluated on POWER8 in Figs. 3, 4, 7).
//
// Like SpRWL, RW-LE executes read-only critical sections uninstrumented.
// Unlike SpRWL, it relies on two POWER8-only hardware features:
//
//   - suspend/resume: a writer suspends its transaction just before
//     committing and performs a *quiescence phase* — waiting for every
//     reader that was active at that moment to finish — then resumes and
//     commits. Readers advertise themselves with per-thread epoch counters
//     (odd = inside a critical section), so quiescence is a snapshot of odd
//     epochs and a wait for each to advance.
//   - rollback-only transactions (ROTs): after the HTM budget is exhausted,
//     writers retry as ROTs, which track only their write set (no read
//     capacity, no read-conflict aborts). ROTs provide no isolation among
//     themselves, so ROT writers are serialized by a writer lock — the
//     serialization visible in the paper's RW-LE commit breakdowns.
//
// The quiescence phase is what the paper blames for RW-LE's large writer
// latencies under long readers (Fig. 3): a writer cannot commit while any
// pre-existing reader is still running, and every arriving reader that
// touches a written line aborts the writer outright.
package rwle

import (
	"sprwl/internal/env"
	"sprwl/internal/locks"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
	"sprwl/internal/stats"
)

const (
	// DefaultHTMRetries is the hardware attempt budget before the ROT
	// path activates.
	DefaultHTMRetries = 10
	// DefaultROTRetries is the ROT attempt budget before the global-lock
	// fallback, the value the RW-LE authors (and the paper's §4) use.
	DefaultROTRetries = 5
)

// RWLE is a hardware read-write lock-elision lock.
type RWLE struct {
	e          env.Env
	threads    int
	epochs     memmodel.Addr // per-thread line: odd = reader active
	wlock      locks.SpinMutex
	gl         locks.SpinMutex
	htmRetries int
	rotRetries int
	col        *stats.Collector
}

var _ rwlock.Lock = (*RWLE)(nil)

// New carves an RW-LE lock out of the arena. Non-positive budgets select
// the defaults; col may be nil.
func New(e env.Env, ar *memmodel.Arena, threads, htmRetries, rotRetries int, col *stats.Collector) *RWLE {
	if htmRetries <= 0 {
		htmRetries = DefaultHTMRetries
	}
	if rotRetries <= 0 {
		rotRetries = DefaultROTRetries
	}
	return &RWLE{
		e:          e,
		threads:    threads,
		epochs:     ar.AllocLines(threads),
		wlock:      locks.NewSpinMutex(e, ar.AllocLines(1)),
		gl:         locks.NewSpinMutex(e, ar.AllocLines(1)),
		htmRetries: htmRetries,
		rotRetries: rotRetries,
		col:        col,
	}
}

// Name implements rwlock.Lock.
func (*RWLE) Name() string { return "RW-LE" }

// NewHandle implements rwlock.Lock.
func (l *RWLE) NewHandle(slot int) rwlock.Handle { return &handle{l: l, slot: slot} }

func (l *RWLE) epochAddr(i int) memmodel.Addr {
	return l.epochs + memmodel.Addr(i*memmodel.LineWords)
}

type handle struct {
	l    *RWLE
	slot int
}

// Read runs the critical section uninstrumented between epoch bumps,
// synchronizing with the global-lock fallback exactly like SpRWL's readers:
// advertise, check the lock, retract and wait if it is held.
func (h *handle) Read(csID int, body rwlock.Body) {
	l := h.l
	start := l.e.Now()
	ea := l.epochAddr(h.slot)
	for {
		l.e.Add(ea, 1) // odd: active
		if !l.gl.IsLocked() {
			break
		}
		l.e.Add(ea, 1) // even: retract
		for l.gl.IsLocked() {
			l.e.Yield()
		}
	}
	body(l.e)
	l.e.Add(ea, 1) // even: done
	if l.col != nil {
		t := l.col.Thread(h.slot)
		t.Commit(stats.Reader, env.ModeUninstrumented)
		t.Latency(stats.Reader, l.e.Now()-start)
	}
}

// Write tries HTM, then serialized ROTs, then the global lock. Both
// hardware modes suspend before committing and wait for the quiescence of
// all readers active at that instant.
func (h *handle) Write(csID int, body rwlock.Body) {
	l := h.l
	start := l.e.Now()
	glAddr := l.gl.Addr()

	wlockAddr := l.wlock.Addr()
	attempt := func(rot bool) env.AbortCause {
		return l.e.Attempt(h.slot, env.TxOpts{ROT: rot}, func(tx env.TxAccessor) {
			if tx.Load(glAddr) != 0 {
				tx.Abort(env.AbortExplicit)
			}
			if !rot && tx.Load(wlockAddr) != 0 {
				// A ROT (or fallback) writer is active. Its loads
				// are untracked, so hardware conflict detection
				// cannot order us against it — subscribing to the
				// writer lock is what makes ROT serialization
				// safe against concurrent HTM writers. (A ROT
				// itself holds this lock, and its subscription
				// load would be untracked anyway.)
				tx.Abort(env.AbortExplicit)
			}
			body(tx)
			if !tx.Suspend(func() { h.quiesceReaders(tx) }) {
				tx.Abort(env.AbortConflict)
			}
		})
	}

	for attempts := 0; attempts < l.htmRetries; attempts++ {
		for l.gl.IsLocked() || l.wlock.IsLocked() {
			l.e.Yield()
		}
		cause := attempt(false)
		if cause == env.Committed {
			h.finish(stats.Writer, env.ModeHTM, start)
			return
		}
		h.abort(cause)
		if cause == env.AbortCapacity {
			break
		}
	}

	// ROT path: serialized among writers, unlimited read footprint.
	l.wlock.Lock()
	for attempts := 0; attempts < l.rotRetries; attempts++ {
		for l.gl.IsLocked() {
			l.e.Yield()
		}
		cause := attempt(true)
		if cause == env.Committed {
			l.wlock.Unlock()
			h.finish(stats.Writer, env.ModeROT, start)
			return
		}
		h.abort(cause)
		if cause == env.AbortCapacity {
			break
		}
	}

	// Global-lock fallback: wait out every active reader, then run
	// pessimistically. We still hold wlock, keeping ROT writers out.
	l.gl.Lock()
	h.drainReaders()
	body(l.e)
	l.gl.Unlock()
	l.wlock.Unlock()
	h.finish(stats.Writer, env.ModeGL, start)
}

// quiesceReaders runs inside the suspended section: snapshot every thread's
// epoch and wait for all odd (active) ones to advance. Bails out as soon as
// the suspended transaction is doomed — a reader touched our write set, so
// waiting longer is pointless.
func (h *handle) quiesceReaders(tx env.TxAccessor) {
	l := h.l
	for i := 0; i < l.threads; i++ {
		if i == h.slot {
			continue
		}
		ea := l.epochAddr(i)
		snap := l.e.Load(ea)
		if snap%2 == 0 {
			continue
		}
		for l.e.Load(ea) == snap {
			if tx.Aborted() {
				return
			}
			l.e.Yield()
		}
	}
}

// drainReaders is the fallback-path wait: with the global lock held, new
// readers retract and wait, so waiting for each current epoch to advance
// (or be even) terminates.
func (h *handle) drainReaders() {
	l := h.l
	for i := 0; i < l.threads; i++ {
		if i == h.slot {
			continue
		}
		ea := l.epochAddr(i)
		snap := l.e.Load(ea)
		if snap%2 == 0 {
			continue
		}
		for l.e.Load(ea) == snap {
			l.e.Yield()
		}
	}
}

func (h *handle) abort(c env.AbortCause) {
	if h.l.col != nil {
		h.l.col.Thread(h.slot).Abort(stats.Writer, c)
	}
}

func (h *handle) finish(k stats.Kind, m env.CommitMode, start uint64) {
	if h.l.col == nil {
		return
	}
	t := h.l.col.Thread(h.slot)
	t.Commit(k, m)
	t.Latency(k, h.l.e.Now()-start)
}
