// Package rwle implements Hardware Read-Write Lock Elision (RW-LE) of
// Felber, Issa, Matveev and Romano (EuroSys '16), the closest related work
// the paper compares against (§2, evaluated on POWER8 in Figs. 3, 4, 7).
//
// Like SpRWL, RW-LE executes read-only critical sections uninstrumented.
// Unlike SpRWL, it relies on two POWER8-only hardware features:
//
//   - suspend/resume: a writer suspends its transaction just before
//     committing and performs a *quiescence phase* — waiting for every
//     reader that was active at that moment to finish — then resumes and
//     commits. Readers advertise themselves with per-thread epoch counters
//     (odd = inside a critical section), so quiescence is a snapshot of odd
//     epochs and a wait for each to advance.
//   - rollback-only transactions (ROTs): after the HTM budget is exhausted,
//     writers retry as ROTs, which track only their write set (no read
//     capacity, no read-conflict aborts). ROTs provide no isolation among
//     themselves, so ROT writers are serialized by a writer lock — the
//     serialization visible in the paper's RW-LE commit breakdowns.
//
// The quiescence phase is what the paper blames for RW-LE's large writer
// latencies under long readers (Fig. 3): a writer cannot commit while any
// pre-existing reader is still running, and every arriving reader that
// touches a written line aborts the writer outright.
package rwle

import (
	"sprwl/internal/env"
	"sprwl/internal/locks"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
	"sprwl/internal/rwlock"
)

const (
	// DefaultHTMRetries is the hardware attempt budget before the ROT
	// path activates.
	DefaultHTMRetries = 10
	// DefaultROTRetries is the ROT attempt budget before the global-lock
	// fallback, the value the RW-LE authors (and the paper's §4) use.
	DefaultROTRetries = 5
)

// RWLE is a hardware read-write lock-elision lock.
type RWLE struct {
	e          env.Env
	threads    int
	epochs     memmodel.Addr // per-thread line: odd = reader active
	wlock      locks.SpinMutex
	gl         locks.SpinMutex
	htmRetries int
	rotRetries int
	pipe       *obs.Pipeline
}

var _ rwlock.Lock = (*RWLE)(nil)

// New carves an RW-LE lock out of the arena. Non-positive budgets select
// the defaults; pipe may be nil to disable instrumentation.
func New(e env.Env, ar *memmodel.Arena, threads, htmRetries, rotRetries int, pipe *obs.Pipeline) *RWLE {
	if htmRetries <= 0 {
		htmRetries = DefaultHTMRetries
	}
	if rotRetries <= 0 {
		rotRetries = DefaultROTRetries
	}
	return &RWLE{
		e:          e,
		threads:    threads,
		epochs:     ar.AllocLines(threads),
		wlock:      locks.NewSpinMutex(e, ar.AllocLines(1)),
		gl:         locks.NewSpinMutex(e, ar.AllocLines(1)),
		htmRetries: htmRetries,
		rotRetries: rotRetries,
		pipe:       pipe,
	}
}

// Name implements rwlock.Lock.
func (*RWLE) Name() string { return "RW-LE" }

// NewHandle implements rwlock.Lock.
func (l *RWLE) NewHandle(slot int) rwlock.Handle {
	return &handle{l: l, slot: slot, ring: l.pipe.Thread(slot)}
}

func (l *RWLE) epochAddr(i int) memmodel.Addr {
	return l.epochs + memmodel.Addr(i*memmodel.LineWords)
}

type handle struct {
	l    *RWLE
	slot int
	ring *obs.Ring
}

// Read runs the critical section uninstrumented between epoch bumps,
// synchronizing with the global-lock fallback exactly like SpRWL's readers:
// advertise, check the lock, retract and wait if it is held.
func (h *handle) Read(csID int, body rwlock.Body) {
	l := h.l
	start := l.e.Now()
	ea := l.epochAddr(h.slot)
	for {
		l.e.Add(ea, 1) // odd: active
		if !l.gl.IsLocked() {
			break
		}
		l.e.Add(ea, 1) // even: retract
		t0 := l.e.Now()
		for l.gl.IsLocked() {
			l.e.Yield()
		}
		h.ring.Wait(obs.WaitGL, obs.Reader, csID, t0, l.e.Now())
	}
	body(l.e)
	l.e.Add(ea, 1) // even: done
	h.ring.Section(obs.Reader, csID, env.ModeUninstrumented, start, l.e.Now())
}

// Write tries HTM, then serialized ROTs, then the global lock. Both
// hardware modes suspend before committing and wait for the quiescence of
// all readers active at that instant.
func (h *handle) Write(csID int, body rwlock.Body) {
	l := h.l
	start := l.e.Now()
	glAddr := l.gl.Addr()

	wlockAddr := l.wlock.Addr()
	attempt := func(rot bool) env.AbortCause {
		return l.e.Attempt(h.slot, env.TxOpts{ROT: rot}, func(tx env.TxAccessor) {
			if tx.Load(glAddr) != 0 {
				tx.Abort(env.AbortExplicit)
			}
			if !rot && tx.Load(wlockAddr) != 0 {
				// A ROT (or fallback) writer is active. Its loads
				// are untracked, so hardware conflict detection
				// cannot order us against it — subscribing to the
				// writer lock is what makes ROT serialization
				// safe against concurrent HTM writers. (A ROT
				// itself holds this lock, and its subscription
				// load would be untracked anyway.)
				tx.Abort(env.AbortExplicit)
			}
			body(tx)
			if !tx.Suspend(func() { h.quiesceReaders(csID, tx) }) {
				tx.Abort(env.AbortConflict)
			}
		})
	}

	for attempts := 0; attempts < l.htmRetries; attempts++ {
		waited := false
		var t0 uint64
		for l.gl.IsLocked() || l.wlock.IsLocked() {
			if !waited {
				waited, t0 = true, l.e.Now()
			}
			l.e.Yield()
		}
		if waited {
			h.ring.Wait(obs.WaitLock, obs.Writer, csID, t0, l.e.Now())
		}
		cause := attempt(false)
		if cause == env.Committed {
			h.ring.Section(obs.Writer, csID, env.ModeHTM, start, l.e.Now())
			return
		}
		h.ring.Abort(obs.Writer, csID, cause, l.e.Now())
		if cause == env.AbortCapacity {
			break
		}
	}

	// ROT path: serialized among writers, unlimited read footprint.
	l.wlock.Lock()
	for attempts := 0; attempts < l.rotRetries; attempts++ {
		waited := false
		var t0 uint64
		for l.gl.IsLocked() {
			if !waited {
				waited, t0 = true, l.e.Now()
			}
			l.e.Yield()
		}
		if waited {
			h.ring.Wait(obs.WaitGL, obs.Writer, csID, t0, l.e.Now())
		}
		cause := attempt(true)
		if cause == env.Committed {
			l.wlock.Unlock()
			h.ring.Section(obs.Writer, csID, env.ModeROT, start, l.e.Now())
			return
		}
		h.ring.Abort(obs.Writer, csID, cause, l.e.Now())
		if cause == env.AbortCapacity {
			break
		}
	}

	// Global-lock fallback: wait out every active reader, then run
	// pessimistically. We still hold wlock, keeping ROT writers out.
	l.gl.Lock()
	acquired := l.e.Now()
	h.drainReaders(csID)
	body(l.e)
	l.gl.Unlock()
	l.wlock.Unlock()
	now := l.e.Now()
	h.ring.SGL(csID, acquired, now)
	h.ring.Section(obs.Writer, csID, env.ModeGL, start, now)
}

// quiesceReaders runs inside the suspended section: snapshot every thread's
// epoch and wait for all odd (active) ones to advance. Bails out as soon as
// the suspended transaction is doomed — a reader touched our write set, so
// waiting longer is pointless.
func (h *handle) quiesceReaders(csID int, tx env.TxAccessor) {
	l := h.l
	t0 := l.e.Now()
	for i := 0; i < l.threads; i++ {
		if i == h.slot {
			continue
		}
		ea := l.epochAddr(i)
		snap := l.e.Load(ea)
		if snap%2 == 0 {
			continue
		}
		for l.e.Load(ea) == snap {
			if tx.Aborted() {
				h.ring.Wait(obs.WaitQuiesce, obs.Writer, csID, t0, l.e.Now())
				return
			}
			l.e.Yield()
		}
	}
	h.ring.Wait(obs.WaitQuiesce, obs.Writer, csID, t0, l.e.Now())
}

// drainReaders is the fallback-path wait: with the global lock held, new
// readers retract and wait, so waiting for each current epoch to advance
// (or be even) terminates.
func (h *handle) drainReaders(csID int) {
	l := h.l
	t0 := l.e.Now()
	for i := 0; i < l.threads; i++ {
		if i == h.slot {
			continue
		}
		ea := l.epochAddr(i)
		snap := l.e.Load(ea)
		if snap%2 == 0 {
			continue
		}
		for l.e.Load(ea) == snap {
			l.e.Yield()
		}
	}
	h.ring.Wait(obs.WaitDrain, obs.Writer, csID, t0, l.e.Now())
}
