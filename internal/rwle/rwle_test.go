package rwle

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprwl/internal/env"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/stats"
)

func setup(t *testing.T, threads int, cfg htm.Config) (*RWLE, env.Env, *memmodel.Arena, *stats.Collector) {
	t.Helper()
	if cfg.Threads == 0 {
		cfg.Threads = threads
	}
	if cfg.Words == 0 {
		cfg.Words = 1 << 14
	}
	space, err := htm.NewSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(threads)
	return New(e, ar, threads, 0, 0, col.Pipeline()), e, ar, col
}

func TestUncontendedWriterCommitsHTM(t *testing.T) {
	l, e, ar, col := setup(t, 2, htm.Config{})
	data := ar.AllocLines(1)
	l.NewHandle(0).Write(0, func(acc memmodel.Accessor) { acc.Store(data, 9) })
	if got := e.Load(data); got != 9 {
		t.Fatalf("data = %d, want 9", got)
	}
	if got := col.Snapshot().Commits[stats.Writer][env.ModeHTM]; got != 1 {
		t.Fatalf("HTM commits = %d, want 1", got)
	}
}

func TestReadersAreUninstrumented(t *testing.T) {
	// A reader far beyond any read capacity must still complete without
	// a single abort: RW-LE readers never enter a transaction.
	l, _, ar, col := setup(t, 2, htm.Config{Threads: 2, Words: 1 << 14, ReadCapacityLines: 1})
	data := ar.AllocLines(32)
	l.NewHandle(0).Read(0, func(acc memmodel.Accessor) {
		for i := 0; i < 32; i++ {
			_ = acc.Load(data + memmodel.Addr(i*memmodel.LineWords))
		}
	})
	s := col.Snapshot()
	if got := s.Commits[stats.Reader][env.ModeUninstrumented]; got != 1 {
		t.Fatalf("uninstrumented commits = %d, want 1", got)
	}
	if got := s.TotalAborts(stats.Reader); got != 0 {
		t.Fatalf("reader aborts = %d, want 0", got)
	}
}

// TestWriterQuiescesBehindActiveReader: a writer must not complete while a
// reader that was active before its commit point is still inside its
// critical section.
func TestWriterQuiescesBehindActiveReader(t *testing.T) {
	l, e, ar, col := setup(t, 2, htm.Config{})
	data := ar.AllocLines(1)

	readerIn := make(chan struct{})
	readerGo := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.NewHandle(0).Read(0, func(acc memmodel.Accessor) {
			close(readerIn)
			<-readerGo
		})
	}()
	<-readerIn

	var writerDone atomic.Bool
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.NewHandle(1).Write(1, func(acc memmodel.Accessor) { acc.Store(data, 1) })
		writerDone.Store(true)
	}()

	time.Sleep(20 * time.Millisecond)
	if writerDone.Load() {
		t.Fatal("writer completed during an active reader's critical section")
	}
	close(readerGo)
	wg.Wait()
	if got := e.Load(data); got != 1 {
		t.Fatalf("data = %d, want 1", got)
	}
	// The writer still holds only one completed CS.
	s := col.Snapshot()
	if got := s.TotalCommits(stats.Writer); got != 1 {
		t.Fatalf("writer commits = %d, want 1", got)
	}
}

// TestROTPathAfterCapacity: a writer whose read footprint exceeds HTM
// capacity must commit as a ROT (untracked loads), the mechanism RW-LE
// borrows from POWER8.
func TestROTPathAfterCapacity(t *testing.T) {
	l, e, ar, col := setup(t, 2, htm.Config{Threads: 2, Words: 1 << 14, ReadCapacityLines: 2})
	data := ar.AllocLines(16)
	l.NewHandle(0).Write(0, func(acc memmodel.Accessor) {
		var sum uint64
		for i := 0; i < 16; i++ { // read far beyond capacity...
			sum += acc.Load(data + memmodel.Addr(i*memmodel.LineWords))
		}
		acc.Store(data, sum+1) // ...write one line
	})
	if got := e.Load(data); got != 1 {
		t.Fatalf("data = %d, want 1", got)
	}
	s := col.Snapshot()
	if got := s.Commits[stats.Writer][env.ModeROT]; got != 1 {
		t.Fatalf("ROT commits = %d, want 1 (%s)", got, s)
	}
	if got := s.Aborts[stats.Writer][env.AbortCapacity]; got != 1 {
		t.Fatalf("capacity aborts = %d, want 1", got)
	}
}

// TestSnapshotConsistency: the RW-LE protocol (conflict aborts + reader
// quiescence) must prevent readers from observing torn writer updates.
func TestSnapshotConsistency(t *testing.T) {
	const (
		readers = 3
		writers = 2
		rounds  = 200
	)
	threads := readers + writers
	l, _, ar, _ := setup(t, threads, htm.Config{Threads: threads, Words: 1 << 14})
	x, y := ar.AllocLines(1), ar.AllocLines(1)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < rounds; i++ {
				h.Write(0, func(acc memmodel.Accessor) {
					v := acc.Load(x) + 1
					acc.Store(x, v)
					acc.Store(y, v)
				})
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < rounds; i++ {
				h.Read(1, func(acc memmodel.Accessor) {
					vx, vy := acc.Load(x), acc.Load(y)
					if vx != vy {
						t.Errorf("torn snapshot: x=%d y=%d", vx, vy)
					}
				})
			}
		}(writers + r)
	}
	wg.Wait()
}

// TestWritersSerialize: concurrent increments never lose updates across
// HTM, ROT and GL paths.
func TestWritersSerialize(t *testing.T) {
	const (
		threads = 4
		rounds  = 150
	)
	l, e, ar, _ := setup(t, threads, htm.Config{Threads: threads, Words: 1 << 14})
	ctr := ar.AllocLines(1)
	var wg sync.WaitGroup
	for s := 0; s < threads; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < rounds; i++ {
				h.Write(0, func(acc memmodel.Accessor) {
					acc.Store(ctr, acc.Load(ctr)+1)
				})
			}
		}(s)
	}
	wg.Wait()
	if got := e.Load(ctr); got != threads*rounds {
		t.Fatalf("counter = %d, want %d", got, threads*rounds)
	}
}

func TestName(t *testing.T) {
	l, _, _, _ := setup(t, 1, htm.Config{Threads: 1})
	if got := l.Name(); got != "RW-LE" {
		t.Fatalf("Name = %q, want RW-LE", got)
	}
}
