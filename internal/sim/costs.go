package sim

import "sprwl/internal/memmodel"

// Costs is the cycle-cost model of the simulated machine. Values are in
// cycles and approximate the latency hierarchy of the paper's testbeds:
// L1-hit loads are a few cycles, remote (coherence-miss) accesses are the
// best part of a hundred, and stores that must invalidate sharers cost the
// most — which is what makes centralized lock words scale badly, exactly as
// the paper's RWL baseline does.
type Costs struct {
	LoadHit   uint64 // load of a line cached by this thread
	LoadMiss  uint64 // load of a line last touched elsewhere
	StoreHit  uint64 // store to a line exclusively owned by this thread
	StoreMiss uint64 // store that must invalidate remote copies
	RMWExtra  uint64 // additional cost of CAS/fetch-and-add over a store
	TxBegin   uint64 // transaction begin overhead
	TxCommit  uint64 // transaction commit overhead
	TxAbort   uint64 // abort and rollback penalty
	Yield     uint64 // one spin-loop iteration
	Quantum   uint64 // scheduling granularity: a thread keeps the token until it leads by this many cycles

	// StreamCacheLines is the per-thread cache size (in direct-mapped
	// line slots, a power of two) used for streaming-region data. It
	// models a private L2: recently-touched bulk data hits — which is
	// what makes a re-executed critical section cheap after a capacity
	// abort, per the paper's §3.4 observation — while anything beyond
	// the working set misses.
	StreamCacheLines int
}

// DefaultCosts returns the standard cost model used by the benchmark
// harness.
func DefaultCosts() Costs {
	return Costs{
		LoadHit:          4,
		LoadMiss:         80,
		StoreHit:         8,
		StoreMiss:        110,
		RMWExtra:         12,
		TxBegin:          40,
		TxCommit:         30,
		TxAbort:          140,
		Yield:            40,
		Quantum:          64,
		StreamCacheLines: 4096, // 256 KiB private cache per thread
	}
}

// coherence tracks per-line sharer sets and owners for the cost model. It
// is only ever touched by the thread holding the scheduler token, so it
// needs no synchronization.
//
// Lines inside a *streaming region* never count as cached: they model bulk
// data (hashmap nodes, TPC-C tables) whose working set dwarfs any real
// cache — the paper's 8M-item tables are hundreds of megabytes — so every
// access pays the miss latency. Small hot structures (lock words, flag
// arrays, bucket heads) stay under the sharer model and reward locality,
// which is what makes centralized lock words ping-pong and distributed ones
// (BRLock) cheap, as on the real machines.
type coherence struct {
	// sharers[l] is the bitmask of threads with a cached copy of line l;
	// owner[l] is the last writing thread + 1 (0 = none).
	sharers   []uint64
	owner     []uint32
	streaming []bool
	// tags[t] is thread t's direct-mapped private cache over streaming
	// lines: tags[t][l & tagMask] == l+1 means the line is resident.
	tags    [][]uint64
	tagMask uint64
}

func newCoherence(lines, threads, cacheLines int) *coherence {
	if cacheLines < 2 {
		cacheLines = 2
	}
	// Round down to a power of two for mask indexing.
	size := 1
	for size*2 <= cacheLines {
		size *= 2
	}
	tags := make([][]uint64, threads)
	for t := range tags {
		tags[t] = make([]uint64, size)
	}
	return &coherence{
		sharers:   make([]uint64, lines),
		owner:     make([]uint32, lines),
		streaming: make([]bool, lines),
		tags:      tags,
		tagMask:   uint64(size - 1),
	}
}

// markStreaming flags [first, last] as bulk-data lines.
func (c *coherence) markStreaming(first, last memmodel.Line) {
	for l := first; l <= last && int(l) < len(c.streaming); l++ {
		c.streaming[l] = true
	}
}

// resident checks-and-installs line l in thread t's private cache.
func (c *coherence) resident(t int, l memmodel.Line) bool {
	slot := uint64(l) & c.tagMask
	if c.tags[t][slot] == uint64(l)+1 {
		return true
	}
	c.tags[t][slot] = uint64(l) + 1
	return false
}

// loadCost charges a read of line l by thread t and updates sharer state.
func (c *coherence) loadCost(costs *Costs, t int, l memmodel.Line) uint64 {
	if c.streaming[l] {
		if c.resident(t, l) {
			return costs.LoadHit
		}
		return costs.LoadMiss
	}
	bit := uint64(1) << uint(t)
	if c.sharers[l]&bit != 0 {
		return costs.LoadHit
	}
	c.sharers[l] |= bit
	return costs.LoadMiss
}

// storeCost charges a write of line l by thread t and updates owner state.
func (c *coherence) storeCost(costs *Costs, t int, l memmodel.Line) uint64 {
	if c.streaming[l] {
		if c.resident(t, l) {
			return costs.StoreHit
		}
		return costs.StoreMiss
	}
	bit := uint64(1) << uint(t)
	if c.owner[l] == uint32(t+1) && c.sharers[l] == bit {
		return costs.StoreHit
	}
	c.sharers[l] = bit
	c.owner[l] = uint32(t + 1)
	return costs.StoreMiss
}
