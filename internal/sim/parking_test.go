package sim_test

import (
	"reflect"
	"testing"

	"sprwl/internal/core"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
	"sprwl/internal/sim"
	"sprwl/internal/stats"
	"sprwl/internal/workload"
)

// parkingRun executes one contended SpRWL workload under the simulator
// with the given ParkCycles model and returns everything observable: total
// virtual cycles, the final shared-counter value, the stats snapshot, and
// the number of park episodes the wait profiler attributed.
func parkingRun(t *testing.T, parkCycles uint64) (cycles, final uint64, snap stats.Snapshot, parks uint64) {
	t.Helper()
	const threads = 8
	eng, err := sim.NewEngine(sim.Config{
		Threads:    threads,
		Words:      1 << 12,
		ParkCycles: parkCycles,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := eng.Env()
	ar := memmodel.NewArena(0, eng.Space().Size())
	prof := obs.NewProfileSink(threads)
	col := stats.NewCollector(threads)
	pipe := col.Pipeline(prof)
	l := core.MustNew(e, ar, threads, workload.NumHashmapCS, core.DefaultOptions(), pipe)
	data := ar.AllocLines(1)

	cycles = eng.Run(func(slot int) {
		h := l.NewHandle(slot)
		for i := 0; i < 60; i++ {
			// Every writer hits the same line, so hardware attempts
			// conflict and the herd exercises the fallback wait paths.
			h.Write(0, func(acc memmodel.Accessor) {
				acc.Store(data, acc.Load(data)+1)
			})
			h.Read(1, func(acc memmodel.Accessor) { _ = acc.Load(data) })
		}
	})
	final = e.Load(data) // quiesced: an uncharged direct read
	pipe.Flush()
	for _, c := range prof.Profiles() {
		parks += c.Parks
	}
	return cycles, final, col.Snapshot(), parks
}

// TestParkingModelDeterministic is the determinism contract of the
// ParkCycles model: with parking enabled, two identical simulations agree
// on every observable — virtual-time schedule, final state, stats, and
// park counts — just as the default spin-only configuration always has.
func TestParkingModelDeterministic(t *testing.T) {
	c1, f1, s1, p1 := parkingRun(t, 3000)
	c2, f2, s2, p2 := parkingRun(t, 3000)
	if c1 != c2 || f1 != f2 || p1 != p2 {
		t.Fatalf("parking runs diverged: cycles %d vs %d, final %d vs %d, parks %d vs %d",
			c1, c2, f1, f2, p1, p2)
	}
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("parking runs diverged in stats snapshots")
	}
	if want := uint64(8 * 60); f1 != want {
		t.Fatalf("final counter %d, want %d (lost updates?)", f1, want)
	}
}

// TestParkingModelEngages: the contended workload must actually reach the
// bounded-sleep model — otherwise the determinism test above exercises
// nothing — and the model must change the schedule relative to spin-only
// while preserving the workload's outcome.
func TestParkingModelEngages(t *testing.T) {
	cSpin, fSpin, _, pSpin := parkingRun(t, 0)
	cPark, fPark, _, pPark := parkingRun(t, 3000)
	if pSpin != 0 {
		t.Fatalf("spin-only run recorded %d parks, want 0", pSpin)
	}
	if pPark == 0 {
		t.Fatal("parking run recorded no parks; the workload never reaches the model")
	}
	if fSpin != fPark {
		t.Fatalf("final counters differ: spin %d vs park %d", fSpin, fPark)
	}
	if cSpin == cPark {
		t.Fatal("virtual-time totals identical with and without parking; the model charged nothing")
	}
}
