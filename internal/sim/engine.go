// Package sim is the deterministic discrete-event simulator that
// regenerates the paper's scaling figures on hosts without 56–80 hardware
// threads.
//
// The paper's evaluation ran on a 28-core Broadwell and an 80-thread
// POWER8; this reproduction has a single vCPU, so wall-clock throughput at
// high thread counts is unmeasurable. Instead, N *logical* threads execute
// the very same algorithm implementations (SpRWL, TLE, RW-LE, the
// pessimistic locks — all written against env.Env) in virtual time: a
// scheduler token serializes execution, every environment operation charges
// cycles from a coherence-aware cost model (package costs), and the thread
// with the smallest virtual clock always runs next. Throughput is then
// operations per virtual second, abort/commit breakdowns come from the same
// stats sinks as the real runtime, and results are bit-for-bit reproducible
// across runs — which EXPERIMENTS.md relies on.
//
// Because exactly one logical thread holds the token at any instant, the
// underlying htm.Space sees strictly serialized accesses; its conflict
// detection, capacity accounting, and strong-isolation semantics apply
// unchanged. SMT capacity sharing (POWER8) is modelled by scaling per-slot
// capacities with the profile's thread-per-core occupancy.
package sim

import (
	"container/heap"
	"fmt"

	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
)

// Config sizes a simulation.
type Config struct {
	// Threads is the number of logical threads (1..htm.MaxThreads).
	Threads int
	// Words is the simulated address-space size.
	Words int
	// Profile selects the machine model (capacities, SMT topology).
	// A zero-value profile means "no capacity limits".
	Profile htm.Profile
	// Costs is the cycle cost model; zero value selects DefaultCosts.
	Costs Costs
	// SpuriousEvery forwards to htm.Config for failure injection.
	SpuriousEvery uint64
	// ParkCycles, when nonzero, enables a deterministic model of waiter
	// parking (package park): Park re-checks the phase word and, if still
	// blocked, sleeps ParkCycles of virtual time before returning to the
	// caller's re-check loop; Wake costs nothing (the sleeper's bounded
	// timeout stands in for the wake). Zero — the default — provides no
	// parker at all, so every wait site degrades to its historical spin
	// sequence and simulated sweeps stay byte-identical.
	ParkCycles uint64
}

// thread is one logical thread's scheduling state.
type thread struct {
	id     int
	vt     uint64 // virtual clock, cycles
	resume chan struct{}
	done   bool
}

// threadHeap orders parked threads by (vt, id) — the id tie-break makes
// scheduling fully deterministic.
type threadHeap []*thread

func (h threadHeap) Len() int { return len(h) }
func (h threadHeap) Less(i, j int) bool {
	if h[i].vt != h[j].vt {
		return h[i].vt < h[j].vt
	}
	return h[i].id < h[j].id
}
func (h threadHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *threadHeap) Push(x any)   { *h = append(*h, x.(*thread)) }
func (h *threadHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}

// Engine owns a simulation: the address space, the logical threads, the
// cost model, and the scheduler.
type Engine struct {
	cfg     Config
	space   *htm.Space
	costs   Costs
	coh     *coherence
	env     *Env
	pipe    *obs.Pipeline
	thr     []*thread
	parked  threadHeap
	cur     *thread
	live    int
	allDone chan struct{}
}

// AttachObs routes per-attempt hardware transaction events (obs.EvTx) into
// pipe's per-thread rings, one event per Attempt with its outcome and
// virtual-time span. Detached (the default), Attempt emits nothing.
func (e *Engine) AttachObs(pipe *obs.Pipeline) { e.pipe = pipe }

// NewEngine builds a simulation. Capacities are set per slot from the
// profile's SMT-aware effective capacity for the configured thread count.
func NewEngine(cfg Config) (*Engine, error) {
	if cfg.Threads < 1 || cfg.Threads > htm.MaxThreads {
		return nil, fmt.Errorf("sim: Threads must be in [1,%d], got %d", htm.MaxThreads, cfg.Threads)
	}
	if cfg.Costs == (Costs{}) {
		cfg.Costs = DefaultCosts()
	}
	var rCap, wCap int
	if cfg.Profile.Name != "" {
		rCap, wCap = cfg.Profile.EffectiveCapacity(cfg.Threads)
	}
	space, err := htm.NewSpace(htm.Config{
		Threads:            cfg.Threads,
		Words:              cfg.Words,
		ReadCapacityLines:  rCap,
		WriteCapacityLines: wCap,
		SpuriousEvery:      cfg.SpuriousEvery,
	})
	if err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	e := &Engine{
		cfg:   cfg,
		space: space,
		costs: cfg.Costs,
		coh:   newCoherence(int(space.Size())/memmodel.LineWords, cfg.Threads, cfg.Costs.StreamCacheLines),
	}
	e.env = &Env{eng: e}
	return e, nil
}

// MustNewEngine is NewEngine for static configurations.
func MustNewEngine(cfg Config) *Engine {
	e, err := NewEngine(cfg)
	if err != nil {
		panic(err)
	}
	return e
}

// Space exposes the underlying address space for cost-free provisioning
// (populating workloads before Run).
func (e *Engine) Space() *htm.Space { return e.space }

// MarkStreaming declares [base, base+words) to be bulk data whose working
// set exceeds any cache: accesses there always pay the miss latency. Call
// it after laying out the workload, before Run.
func (e *Engine) MarkStreaming(base memmodel.Addr, words int) {
	if words <= 0 {
		return
	}
	e.coh.markStreaming(memmodel.LineOf(base), memmodel.LineOf(base+memmodel.Addr(words-1)))
}

// Env returns the simulation's environment. Its methods may only be called
// from inside worker functions during Run (plus provisioning calls before
// Run, which are charged to no one).
func (e *Engine) Env() *Env { return e.env }

// Run executes worker(slot) on every logical thread until all return, then
// returns the final virtual time (the maximum thread clock). It must be
// called at most once per Engine.
func (e *Engine) Run(worker func(slot int)) uint64 {
	if e.thr != nil {
		panic("sim: Engine.Run called twice")
	}
	n := e.cfg.Threads
	e.thr = make([]*thread, n)
	e.allDone = make(chan struct{})
	for i := 0; i < n; i++ {
		e.thr[i] = &thread{id: i, resume: make(chan struct{}, 1)}
	}
	e.live = n
	// Park everyone but thread 0, which starts with the token.
	e.parked = e.parked[:0]
	for i := 1; i < n; i++ {
		heap.Push(&e.parked, e.thr[i])
	}
	e.cur = e.thr[0]
	for i := 0; i < n; i++ {
		t := e.thr[i]
		go func() {
			if t.id != 0 {
				<-t.resume
			}
			worker(t.id)
			e.finish(t)
		}()
	}
	<-e.allDone
	var maxVT uint64
	for _, t := range e.thr {
		if t.vt > maxVT {
			maxVT = t.vt
		}
	}
	return maxVT
}

// charge advances the current thread's clock and yields the token whenever
// another thread's clock (plus the scheduling quantum) falls behind ours —
// keeping all memory operations ordered by virtual timestamp up to the
// quantum.
func (e *Engine) charge(c uint64) {
	t := e.cur
	t.vt += c
	if len(e.parked) == 0 {
		return
	}
	if top := e.parked[0]; top.vt+e.costs.Quantum < t.vt {
		e.switchTo(top, t)
	}
}

// advanceTo moves the current thread's clock to at least target and yields
// if someone else is now earlier.
func (e *Engine) advanceTo(target uint64) {
	t := e.cur
	if target > t.vt {
		t.vt = target
	}
	if len(e.parked) > 0 {
		if top := e.parked[0]; top.vt < t.vt {
			e.switchTo(top, t)
		}
	}
}

// switchTo parks cur and hands the token to next.
func (e *Engine) switchTo(next, cur *thread) {
	heap.Pop(&e.parked)
	heap.Push(&e.parked, cur)
	e.cur = next
	next.resume <- struct{}{}
	<-cur.resume
}

// finish retires the current thread and passes the token on (or completes
// the run).
func (e *Engine) finish(t *thread) {
	t.done = true
	e.live--
	if e.live == 0 {
		close(e.allDone)
		return
	}
	next := heap.Pop(&e.parked).(*thread)
	e.cur = next
	next.resume <- struct{}{}
}
