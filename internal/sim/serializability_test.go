package sim

import (
	"math/rand/v2"
	"sort"
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/memmodel"
)

// TestTransactionSerializability validates the HTM emulation's core
// guarantee end-to-end: the values observed and written by committed
// transactions form a serial history.
//
// Commit order cannot be inferred from program order around Attempt (the
// post-commit cost charge may hand the scheduler token away before the
// caller records anything), so every transaction read-modify-writes a
// dedicated sequencer cell: the sequence number each committed transaction
// obtained is its exact serial position — any two transactions conflict on
// the sequencer, so the HTM layer itself totally orders them. The recorded
// history is then sorted by sequence number and replayed against a model
// memory.
func TestTransactionSerializability(t *testing.T) {
	const (
		threads = 8
		cells   = 8
		perThr  = 150
	)
	seqAddr := memmodel.Addr(cells * memmodel.LineWords)
	type access struct {
		addr memmodel.Addr
		val  uint64
	}
	type record struct {
		seq    uint64
		reads  []access
		writes []access
	}
	var history []record

	eng := MustNewEngine(Config{Threads: threads, Words: 1 << 12})
	e := eng.Env()
	cell := func(i int) memmodel.Addr { return memmodel.Addr(i * memmodel.LineWords) }

	eng.Run(func(slot int) {
		rng := rand.New(rand.NewPCG(uint64(slot), 77))
		for i := 0; i < perThr; i++ {
			nReads := 1 + rng.IntN(3)
			nWrites := 1 + rng.IntN(2)
			var rec record
			cause := e.Attempt(slot, env.TxOpts{}, func(tx env.TxAccessor) {
				rec = record{} // fresh per attempt: aborted tries are discarded
				rec.seq = tx.Load(seqAddr)
				tx.Store(seqAddr, rec.seq+1)
				for r := 0; r < nReads; r++ {
					a := cell(rng.IntN(cells))
					rec.reads = append(rec.reads, access{a, tx.Load(a)})
				}
				for w := 0; w < nWrites; w++ {
					a := cell(rng.IntN(cells))
					v := rng.Uint64()
					tx.Store(a, v)
					rec.writes = append(rec.writes, access{a, v})
				}
			})
			if cause == env.Committed {
				// Safe without synchronization: the scheduler token
				// serializes all worker code.
				history = append(history, rec)
			}
		}
	})

	if len(history) == 0 {
		t.Fatal("no transactions committed")
	}
	sort.Slice(history, func(i, j int) bool { return history[i].seq < history[j].seq })
	// Sequence numbers must be exactly 0..n-1: the sequencer cell
	// totally orders committed transactions with no gaps or duplicates.
	for i, rec := range history {
		if rec.seq != uint64(i) {
			t.Fatalf("committed sequence numbers not dense at %d: got %d", i, rec.seq)
		}
	}
	// Sequential replay in serial order.
	model := map[memmodel.Addr]uint64{}
	for i, rec := range history {
		for _, rd := range rec.reads {
			if got := model[rd.addr]; got != rd.val {
				t.Fatalf("tx %d read %d from %d, but a serial execution gives %d — not serializable",
					i, rd.val, rd.addr, got)
			}
		}
		for _, wr := range rec.writes {
			model[wr.addr] = wr.val
		}
	}
	for c := 0; c < cells; c++ {
		if got, want := eng.Space().Load(cell(c)), model[cell(c)]; got != want {
			t.Fatalf("final memory[%d] = %d, serial replay gives %d", c, got, want)
		}
	}
	if got := eng.Space().Load(seqAddr); got != uint64(len(history)) {
		t.Fatalf("sequencer = %d, want %d commits", got, len(history))
	}
	t.Logf("validated %d committed transactions against serial replay", len(history))
}

// TestTxReadsStableDespiteUninstrumentedWriters exercises strong isolation
// under the simulator: uninstrumented writers continuously overwrite cells,
// and every committed transaction must have observed each cell it read as
// stable (two reads of the same cell within one committed transaction agree
// — an intervening uninstrumented store dooms the transaction instead).
func TestTxReadsStableDespiteUninstrumentedWriters(t *testing.T) {
	const (
		threads = 6
		cells   = 4
		perThr  = 200
	)
	eng := MustNewEngine(Config{Threads: threads, Words: 1 << 10})
	e := eng.Env()
	cell := func(i int) memmodel.Addr { return memmodel.Addr(i * memmodel.LineWords) }

	var committed, stable int
	eng.Run(func(slot int) {
		rng := rand.New(rand.NewPCG(uint64(slot), 13))
		for i := 0; i < perThr; i++ {
			if slot%2 == 0 {
				e.Store(cell(rng.IntN(cells)), rng.Uint64())
				continue
			}
			c := rng.IntN(cells)
			var first, second uint64
			cause := e.Attempt(slot, env.TxOpts{}, func(tx env.TxAccessor) {
				first = tx.Load(cell(c))
				// Give uninstrumented writers virtual time to
				// interfere; interference must doom us rather
				// than change what we see.
				for k := 0; k < 4; k++ {
					e.Yield()
				}
				second = tx.Load(cell(c))
			})
			if cause != env.Committed {
				continue
			}
			committed++
			if first == second {
				stable++
			}
		}
	})
	if committed == 0 {
		t.Fatal("no transactions committed")
	}
	if stable != committed {
		t.Fatalf("%d of %d committed transactions observed unstable reads", committed-stable, committed)
	}
}
