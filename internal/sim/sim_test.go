package sim

import (
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
)

func TestNewEngineValidation(t *testing.T) {
	if _, err := NewEngine(Config{Threads: 0, Words: 64}); err == nil {
		t.Fatal("NewEngine accepted zero threads")
	}
	if _, err := NewEngine(Config{Threads: htm.MaxThreads + 1, Words: 64}); err == nil {
		t.Fatal("NewEngine accepted too many threads")
	}
	if _, err := NewEngine(Config{Threads: 1, Words: 0}); err == nil {
		t.Fatal("NewEngine accepted zero words")
	}
}

func TestSingleThreadCostAccounting(t *testing.T) {
	eng := MustNewEngine(Config{Threads: 1, Words: 1 << 10})
	e := eng.Env()
	c := DefaultCosts()
	final := eng.Run(func(slot int) {
		_ = e.Load(0)  // miss
		_ = e.Load(1)  // same line: hit
		e.Store(0, 1)  // store-miss (line shared state upgraded)
		e.Store(1, 2)  // store-hit (exclusively ours now)
		_ = e.Load(64) // other line: miss
	})
	want := c.LoadMiss + c.LoadHit + c.StoreMiss + c.StoreHit + c.LoadMiss
	if final != want {
		t.Fatalf("final virtual time = %d, want %d", final, want)
	}
}

func TestCoherencePingPongCostsMore(t *testing.T) {
	// Two threads hammering one line must accumulate far more virtual
	// time per op than two threads on private lines.
	run := func(shared bool) uint64 {
		eng := MustNewEngine(Config{Threads: 2, Words: 1 << 10})
		e := eng.Env()
		return eng.Run(func(slot int) {
			a := memmodel.Addr(0)
			if !shared {
				a = memmodel.Addr(slot * memmodel.LineWords)
			}
			for i := 0; i < 500; i++ {
				e.Store(a, uint64(i))
			}
		})
	}
	sharedVT := run(true)
	privateVT := run(false)
	if sharedVT < 3*privateVT {
		t.Fatalf("shared-line time %d not clearly above private-line time %d", sharedVT, privateVT)
	}
}

func TestVirtualTimeInterleavesFairly(t *testing.T) {
	// Threads doing identical work must end at (nearly) identical
	// virtual times, far from the serialized sum.
	const threads = 8
	eng := MustNewEngine(Config{Threads: threads, Words: 1 << 12})
	e := eng.Env()
	var ends [threads]uint64
	final := eng.Run(func(slot int) {
		a := memmodel.Addr(slot * memmodel.LineWords)
		for i := 0; i < 1000; i++ {
			e.Store(a, uint64(i))
		}
		ends[slot] = e.Now()
	})
	for i := 1; i < threads; i++ {
		if ends[i] != ends[0] {
			t.Fatalf("thread %d ended at %d, thread 0 at %d — identical work must take identical virtual time", i, ends[i], ends[0])
		}
	}
	if final != ends[0] {
		t.Fatalf("final time %d != per-thread end %d: parallel work was serialized", final, ends[0])
	}
}

func TestWaitUntilAdvancesClock(t *testing.T) {
	eng := MustNewEngine(Config{Threads: 1, Words: 1 << 10})
	e := eng.Env()
	eng.Run(func(slot int) {
		e.WaitUntil(12345)
		if now := e.Now(); now != 12345 {
			t.Errorf("Now() = %d after WaitUntil(12345)", now)
		}
		e.WaitUntil(100) // already past: no-op
		if now := e.Now(); now != 12345 {
			t.Errorf("Now() = %d after stale WaitUntil", now)
		}
	})
}

func TestDeterministicReplay(t *testing.T) {
	// The same program must produce identical virtual times and final
	// memory across runs — the property EXPERIMENTS.md relies on.
	const ctr = memmodel.Addr(20 * memmodel.LineWords) // clear of the per-slot lines
	run := func() (uint64, uint64) {
		eng := MustNewEngine(Config{Threads: 4, Words: 1 << 12})
		e := eng.Env()
		final := eng.Run(func(slot int) {
			for i := 0; i < 300; i++ {
				switch i % 3 {
				case 0:
					e.Add(ctr, 1)
				case 1:
					_ = e.Load(memmodel.Addr((slot + 1) * memmodel.LineWords))
				case 2:
					e.Store(memmodel.Addr(slot*memmodel.LineWords), uint64(i))
				}
			}
		})
		return final, eng.Space().Load(ctr)
	}
	t1, v1 := run()
	t2, v2 := run()
	if t1 != t2 || v1 != v2 {
		t.Fatalf("replay diverged: (%d,%d) vs (%d,%d)", t1, v1, t2, v2)
	}
	if v1 != 4*100 {
		t.Fatalf("counter = %d, want 400", v1)
	}
}

func TestTransactionsUnderSimulation(t *testing.T) {
	const threads = 4
	eng := MustNewEngine(Config{Threads: threads, Words: 1 << 12})
	e := eng.Env()
	eng.Run(func(slot int) {
		for i := 0; i < 200; i++ {
			for e.Attempt(slot, env.TxOpts{}, func(tx env.TxAccessor) {
				tx.Store(0, tx.Load(0)+1)
			}) != env.Committed {
				e.Yield()
			}
		}
	})
	if got := eng.Space().Load(0); got != threads*200 {
		t.Fatalf("counter = %d, want %d", got, threads*200)
	}
}

func TestTransactionAbortChargesPenalty(t *testing.T) {
	eng := MustNewEngine(Config{Threads: 1, Words: 1 << 10})
	e := eng.Env()
	c := DefaultCosts()
	final := eng.Run(func(slot int) {
		cause := e.Attempt(slot, env.TxOpts{}, func(tx env.TxAccessor) {
			tx.Abort(env.AbortExplicit)
		})
		if cause != env.AbortExplicit {
			t.Errorf("cause = %v, want AbortExplicit", cause)
		}
	})
	if final != c.TxBegin+c.TxAbort {
		t.Fatalf("final time = %d, want begin+abort = %d", final, c.TxBegin+c.TxAbort)
	}
}

func TestProfileCapacityApplied(t *testing.T) {
	// With the POWER8 profile at 1 thread, a transaction reading more
	// than its 128-line capacity must abort with capacity.
	eng := MustNewEngine(Config{Threads: 1, Words: 1 << 14, Profile: htm.Power8()})
	e := eng.Env()
	eng.Run(func(slot int) {
		cause := e.Attempt(slot, env.TxOpts{}, func(tx env.TxAccessor) {
			for i := 0; i < 200; i++ {
				_ = tx.Load(memmodel.Addr(i * memmodel.LineWords))
			}
		})
		if cause != env.AbortCapacity {
			t.Errorf("cause = %v, want AbortCapacity", cause)
		}
	})
}

func TestSMTSharingShrinksCapacity(t *testing.T) {
	// At 80 threads on POWER8 (8 per core), effective capacity is 1/8th:
	// a 20-line read set must overflow (128/8 = 16).
	eng := MustNewEngine(Config{Threads: 64, Words: 1 << 14, Profile: htm.Power8()})
	e := eng.Env()
	var sawCapacity bool
	eng.Run(func(slot int) {
		if slot != 0 {
			return
		}
		cause := e.Attempt(slot, env.TxOpts{}, func(tx env.TxAccessor) {
			for i := 0; i < 20; i++ {
				_ = tx.Load(memmodel.Addr(i * memmodel.LineWords))
			}
		})
		sawCapacity = cause == env.AbortCapacity
	})
	if !sawCapacity {
		t.Fatal("64 threads on POWER8: 20-line read set did not overflow the SMT-shared capacity")
	}
}

// TestStreamingRegionAlwaysMisses: lines marked as bulk data never hit the
// private-cache model beyond the direct-mapped window, while unmarked lines
// become cheap after first touch.
func TestStreamingRegionAlwaysMisses(t *testing.T) {
	c := DefaultCosts()
	// Two engines: one with the region marked streaming, one without.
	run := func(mark bool) uint64 {
		eng := MustNewEngine(Config{Threads: 1, Words: 1 << 16})
		if mark {
			eng.MarkStreaming(0, 1<<16)
		}
		e := eng.Env()
		return eng.Run(func(slot int) {
			// Touch far more distinct lines than the private cache
			// holds, twice.
			span := int(2 * DefaultCosts().StreamCacheLines)
			for pass := 0; pass < 2; pass++ {
				for i := 0; i < span; i++ {
					_ = e.Load(memmodel.Addr(i * memmodel.LineWords))
				}
			}
		})
	}
	marked := run(true)
	unmarked := run(false)
	// Unmarked: second pass is all hits (sharer model). Marked: the
	// direct-mapped cache thrashes, so most accesses miss both passes.
	span := uint64(2 * c.StreamCacheLines)
	wantUnmarked := span*c.LoadMiss + span*c.LoadHit
	if unmarked != wantUnmarked {
		t.Fatalf("unmarked cost = %d, want %d", unmarked, wantUnmarked)
	}
	if marked <= unmarked {
		t.Fatalf("streaming region (%d cycles) not costlier than cached region (%d)", marked, unmarked)
	}
}

func TestRunTwicePanics(t *testing.T) {
	eng := MustNewEngine(Config{Threads: 1, Words: 1 << 10})
	eng.Run(func(slot int) {})
	defer func() {
		if recover() == nil {
			t.Fatal("second Run did not panic")
		}
	}()
	eng.Run(func(slot int) {})
}

func TestProvisioningBeforeRunIsFree(t *testing.T) {
	eng := MustNewEngine(Config{Threads: 1, Words: 1 << 10})
	e := eng.Env()
	e.Store(0, 42) // before Run: charged to no one
	final := eng.Run(func(slot int) {
		if got := e.Load(0); got != 42 {
			t.Errorf("provisioned value = %d, want 42", got)
		}
	})
	if want := DefaultCosts().LoadMiss; final != want {
		t.Fatalf("final time = %d, want only the worker's single load (%d)", final, want)
	}
}
