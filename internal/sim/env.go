package sim

import (
	"sprwl/internal/env"
	"sprwl/internal/memmodel"
	"sprwl/internal/park"
)

// Env is the simulator's implementation of env.Env. One Env serves every
// logical thread: because the scheduler token strictly serializes worker
// execution, the engine always knows which thread is calling, and charges
// that thread's virtual clock before performing the operation on the
// underlying space.
//
// Calls made before Run (provisioning) are charged to no one and execute
// directly.
type Env struct {
	eng *Engine
}

var _ env.Env = (*Env)(nil)

func (v *Env) running() bool { return v.eng.cur != nil }

// Load implements env.Env.
func (v *Env) Load(a memmodel.Addr) uint64 {
	e := v.eng
	if v.running() {
		e.charge(e.coh.loadCost(&e.costs, e.cur.id, memmodel.LineOf(a)))
	}
	return e.space.Load(a)
}

// Store implements env.Env.
func (v *Env) Store(a memmodel.Addr, x uint64) {
	e := v.eng
	if v.running() {
		e.charge(e.coh.storeCost(&e.costs, e.cur.id, memmodel.LineOf(a)))
	}
	e.space.Store(a, x)
}

// CAS implements env.Env.
func (v *Env) CAS(a memmodel.Addr, old, new uint64) bool {
	e := v.eng
	if v.running() {
		e.charge(e.coh.storeCost(&e.costs, e.cur.id, memmodel.LineOf(a)) + e.costs.RMWExtra)
	}
	return e.space.CAS(a, old, new)
}

// Add implements env.Env.
func (v *Env) Add(a memmodel.Addr, d uint64) uint64 {
	e := v.eng
	if v.running() {
		e.charge(e.coh.storeCost(&e.costs, e.cur.id, memmodel.LineOf(a)) + e.costs.RMWExtra)
	}
	return e.space.Add(a, d)
}

// Now implements env.Env: the calling thread's virtual clock (or the global
// maximum before Run).
func (v *Env) Now() uint64 {
	if v.running() {
		return v.eng.cur.vt
	}
	return 0
}

// WaitUntil implements env.Env: a virtual-time sleep.
func (v *Env) WaitUntil(t uint64) {
	if v.running() {
		v.eng.advanceTo(t)
	}
}

// Yield implements env.Env: one spin iteration's worth of cycles.
func (v *Env) Yield() {
	if v.running() {
		v.eng.charge(v.eng.costs.Yield)
	}
}

// Threads implements env.Env.
func (v *Env) Threads() int { return v.eng.cfg.Threads }

// Parker implements park.Provider. The simulator has no real parker by
// default (Config.ParkCycles == 0): wait sites then spin exactly as they
// did before package park existed, keeping sweeps byte-identical. A
// nonzero ParkCycles enables the deterministic bounded-sleep model.
func (v *Env) Parker() park.Parker {
	if v.eng.cfg.ParkCycles == 0 {
		return nil
	}
	return simParker{env: v}
}

var _ park.Provider = (*Env)(nil)

// simParker models parking deterministically: a charged re-check of the
// phase word (mirroring Table.Park's locked re-read) followed by a bounded
// virtual-time sleep when still blocked. The caller's re-check loop parks
// again if the wait outlasts the bound, so the model is a sequence of
// ParkCycles-long naps rather than an unbounded sleep — Wake can therefore
// be free and the schedule stays fully deterministic.
type simParker struct{ env *Env }

func (p simParker) Park(a memmodel.Addr, expected uint64) {
	v := p.env
	if v.Load(a) != expected {
		return
	}
	v.WaitUntil(v.Now() + v.eng.cfg.ParkCycles)
}

func (p simParker) Wake(memmodel.Addr) {}

// Attempt implements env.Env: the transaction runs on the underlying space
// with every transactional access charged through the cost model.
func (v *Env) Attempt(slot int, opts env.TxOpts, body func(tx env.TxAccessor)) env.AbortCause {
	e := v.eng
	if !v.running() {
		return e.space.Attempt(slot, opts, body)
	}
	e.charge(e.costs.TxBegin)
	start := e.cur.vt
	cause := e.space.Attempt(slot, opts, func(tx env.TxAccessor) {
		body(&simTx{tx: tx, env: v})
	})
	if cause == env.Committed {
		e.charge(e.costs.TxCommit)
	} else {
		e.charge(e.costs.TxAbort)
	}
	if e.pipe != nil {
		e.pipe.Thread(e.cur.id).Tx(-1, cause, start, e.cur.vt)
	}
	return cause
}

// simTx wraps the space's transactional accessor, charging virtual time per
// operation.
type simTx struct {
	tx  env.TxAccessor
	env *Env
}

var _ env.TxAccessor = (*simTx)(nil)

func (s *simTx) Load(a memmodel.Addr) uint64 {
	e := s.env.eng
	e.charge(e.coh.loadCost(&e.costs, e.cur.id, memmodel.LineOf(a)))
	return s.tx.Load(a)
}

func (s *simTx) Store(a memmodel.Addr, v uint64) {
	e := s.env.eng
	e.charge(e.coh.storeCost(&e.costs, e.cur.id, memmodel.LineOf(a)))
	s.tx.Store(a, v)
}

func (s *simTx) Abort(cause env.AbortCause) { s.tx.Abort(cause) }

func (s *simTx) Aborted() bool { return s.tx.Aborted() }

func (s *simTx) Suspend(fn func()) bool { return s.tx.Suspend(fn) }
