package skiplist

import (
	"testing"

	"sprwl/internal/alloc"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
)

// FuzzOpsAgainstModel interprets the fuzz input as an operation script and
// cross-checks the skiplist against a Go map model, including ordered range
// queries.
//
// Seed corpus plus `go test -fuzz=FuzzOpsAgainstModel ./internal/skiplist`.
func FuzzOpsAgainstModel(f *testing.F) {
	f.Add([]byte{0x00, 0x05, 0x01, 0x05, 0x03, 0x00, 0x02, 0x05})
	f.Add([]byte{0x00, 0x01, 0x00, 0x02, 0x00, 0x03, 0x03, 0x01})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, script []byte) {
		space := htm.MustNewSpace(htm.Config{Threads: 1, Words: 1 << 17})
		ar := memmodel.NewArena(0, space.Size())
		pool := alloc.NewPool(ar, NodeWords, 1)
		l := New(ar, pool)
		model := map[uint64]uint64{}

		for i := 0; i+1 < len(script) && i < 400; i += 2 {
			op, keyB := script[i], script[i+1]
			key := uint64(keyB % 32)
			switch op % 4 {
			case 0: // upsert
				val := uint64(op)<<8 | uint64(keyB) | 1
				node := pool.Get(0)
				if !l.Insert(space, key, val, node) {
					pool.Put(0, node)
				}
				model[key] = val
			case 1: // delete
				node := l.Delete(space, key)
				_, inModel := model[key]
				if (node != 0) != inModel {
					t.Fatalf("Delete(%d) presence mismatch", key)
				}
				if node != 0 {
					pool.Put(0, node)
					delete(model, key)
				}
			case 2: // get
				v, ok := l.Get(space, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					t.Fatalf("Get(%d) = %d,%v, model %d,%v", key, v, ok, mv, mok)
				}
			case 3: // range
				lo := key
				hi := lo + uint64(op%8)
				count, sum := l.Range(space, lo, hi)
				wc, ws := 0, uint64(0)
				for k, v := range model {
					if k >= lo && k < hi {
						wc++
						ws += v
					}
				}
				if count != wc || sum != ws {
					t.Fatalf("Range(%d,%d) = %d,%d, model %d,%d", lo, hi, count, sum, wc, ws)
				}
			}
		}
		if got := l.Len(space); got != len(model) {
			t.Fatalf("Len = %d, model holds %d", got, len(model))
		}
	})
}
