package skiplist

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sprwl/internal/alloc"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
)

func mustSetup() (*List, *htm.Space, *alloc.Pool) {
	space := htm.MustNewSpace(htm.Config{Threads: 2, Words: 1 << 18})
	ar := memmodel.NewArena(0, space.Size())
	pool := alloc.NewPool(ar, NodeWords, 2)
	return New(ar, pool), space, pool
}

func setup(t *testing.T) (*List, *htm.Space, *alloc.Pool) {
	t.Helper()
	return mustSetup()
}

func TestEmptyList(t *testing.T) {
	l, space, _ := setup(t)
	if _, ok := l.Get(space, 1); ok {
		t.Fatal("Get hit in empty list")
	}
	if n, sum := l.Range(space, 0, 100); n != 0 || sum != 0 {
		t.Fatalf("Range over empty list = %d,%d", n, sum)
	}
	if l.Len(space) != 0 {
		t.Fatal("empty list has nonzero Len")
	}
}

func TestInsertGetDelete(t *testing.T) {
	l, space, pool := setup(t)
	if !l.Insert(space, 5, 50, pool.Get(0)) {
		t.Fatal("Insert of a fresh key returned false")
	}
	if v, ok := l.Get(space, 5); !ok || v != 50 {
		t.Fatalf("Get(5) = %d,%v, want 50,true", v, ok)
	}
	node := l.Delete(space, 5)
	if node == 0 {
		t.Fatal("Delete(5) found nothing")
	}
	pool.Put(0, node)
	if _, ok := l.Get(space, 5); ok {
		t.Fatal("Get hit after delete")
	}
}

func TestInsertExistingUpdatesInPlace(t *testing.T) {
	l, space, pool := setup(t)
	n1 := pool.Get(0)
	l.Insert(space, 9, 1, n1)
	n2 := pool.Get(0)
	if l.Insert(space, 9, 2, n2) {
		t.Fatal("Insert of an existing key claimed to use the node")
	}
	pool.Put(0, n2) // unused node goes back
	if v, _ := l.Get(space, 9); v != 2 {
		t.Fatalf("value = %d after in-place update, want 2", v)
	}
	if l.Len(space) != 1 {
		t.Fatalf("Len = %d, want 1", l.Len(space))
	}
}

func TestOrderedTraversal(t *testing.T) {
	l, space, pool := setup(t)
	keys := []uint64{7, 2, 9, 4, 1, 8, 3}
	for _, k := range keys {
		l.Insert(space, k, k*10, pool.Get(0))
	}
	n, sum := l.Range(space, 0, 100)
	if n != len(keys) {
		t.Fatalf("Range count = %d, want %d", n, len(keys))
	}
	var want uint64
	for _, k := range keys {
		want += k * 10
	}
	if sum != want {
		t.Fatalf("Range sum = %d, want %d", sum, want)
	}
}

func TestRangeBounds(t *testing.T) {
	l, space, pool := setup(t)
	for k := uint64(0); k < 20; k++ {
		l.Insert(space, k, 1, pool.Get(0))
	}
	tests := []struct {
		lo, hi uint64
		want   int
	}{
		{0, 20, 20}, {5, 10, 5}, {10, 10, 0}, {19, 25, 1}, {20, 30, 0},
	}
	for _, tt := range tests {
		if n, _ := l.Range(space, tt.lo, tt.hi); n != tt.want {
			t.Errorf("Range(%d,%d) = %d, want %d", tt.lo, tt.hi, n, tt.want)
		}
	}
}

func TestDeterministicHeights(t *testing.T) {
	// The same key always gets the same tower height, and heights follow
	// a roughly geometric distribution.
	counts := make([]int, MaxHeight+1)
	for k := uint64(0); k < 4096; k++ {
		h := height(k)
		if h != height(k) {
			t.Fatalf("height(%d) not deterministic", k)
		}
		if h < 1 || h > MaxHeight {
			t.Fatalf("height(%d) = %d out of range", k, h)
		}
		counts[h]++
	}
	if counts[1] < 1500 || counts[1] > 2600 {
		t.Fatalf("height-1 frequency %d/4096, want ~half", counts[1])
	}
	if counts[2] < 700 || counts[2] > 1400 {
		t.Fatalf("height-2 frequency %d/4096, want ~quarter", counts[2])
	}
}

func TestPopulate(t *testing.T) {
	l, space, _ := setup(t)
	l.Populate(space, 500)
	if got := l.Len(space); got != 500 {
		t.Fatalf("Len = %d after Populate, want 500", got)
	}
	n, sum := l.Range(space, 100, 200)
	if n != 100 {
		t.Fatalf("Range count = %d, want 100", n)
	}
	want := uint64(100+199) * 100 / 2
	if sum != want {
		t.Fatalf("Range sum = %d, want %d", sum, want)
	}
}

// TestQuickAgainstModel drives random operations against a Go map model;
// gets, ordered ranges and sizes must agree throughout.
func TestQuickAgainstModel(t *testing.T) {
	prop := func(seed uint64, opsRaw uint8) bool {
		l, space, pool := mustSetup()
		model := map[uint64]uint64{}
		rng := rand.New(rand.NewPCG(seed, 5))
		n := 60 + int(opsRaw)
		for i := 0; i < n; i++ {
			key := uint64(rng.IntN(24))
			switch rng.IntN(4) {
			case 0:
				val := rng.Uint64()
				node := pool.Get(0)
				if !l.Insert(space, key, val, node) {
					pool.Put(0, node)
				}
				model[key] = val
			case 1:
				node := l.Delete(space, key)
				_, inModel := model[key]
				if (node != 0) != inModel {
					return false
				}
				if node != 0 {
					pool.Put(0, node)
					delete(model, key)
				}
			case 2:
				v, ok := l.Get(space, key)
				mv, mok := model[key]
				if ok != mok || (ok && v != mv) {
					return false
				}
			case 3:
				lo := uint64(rng.IntN(24))
				hi := lo + uint64(rng.IntN(10))
				count, sum := l.Range(space, lo, hi)
				wc, ws := 0, uint64(0)
				for k, v := range model {
					if k >= lo && k < hi {
						wc++
						ws += v
					}
				}
				if count != wc || sum != ws {
					return false
				}
			}
		}
		return l.Len(space) == len(model)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
