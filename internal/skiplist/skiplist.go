// Package skiplist implements an ordered map with range scans over
// simulated memory — the "range queries and long traversals" workload the
// paper's introduction motivates SpRWL with (§1).
//
// The list is a classic single-writer skiplist: mutual exclusion between
// writers (and writer/reader isolation) comes from the enclosing read-write
// lock, so the structure itself needs no internal synchronization. Two
// properties matter for lock-elision workloads:
//
//   - Node heights are a deterministic function of the key (a hash's
//     trailing zeros), not of an RNG: a transactionally retried insert
//     replays identically, and a key's tower shape never depends on
//     interleaving.
//   - Range scans touch one line per visited node, so scan length directly
//     sets the reader's HTM footprint — long scans overflow any capacity
//     profile and exercise SpRWL's uninstrumented reader path.
package skiplist

import (
	"fmt"

	"sprwl/internal/alloc"
	"sprwl/internal/memmodel"
)

const (
	// MaxHeight bounds node towers; 12 levels index ~4k nodes with the
	// usual p = 1/2 geometric distribution.
	MaxHeight = 12

	nodeKey    = 0
	nodeVal    = 1
	nodeHeight = 2
	nodeNext   = 3 // nodeNext + level

	// NodeWords is the (maximum) node footprint: header plus MaxHeight
	// next pointers, rounded up to whole lines by the pool.
	NodeWords = nodeNext + MaxHeight
)

// List is a skiplist in simulated memory.
type List struct {
	head memmodel.Addr // a full-height tower; key slot unused
	pool *alloc.Pool
}

// Words returns the head tower's footprint.
func Words() int {
	return (NodeWords + memmodel.LineWords - 1) / memmodel.LineWords * memmodel.LineWords
}

// New carves the head tower out of ar; nodes come from pool, whose blocks
// must hold NodeWords. The head region must read zero (empty list).
func New(ar *memmodel.Arena, pool *alloc.Pool) *List {
	if pool.BlockWords() < NodeWords {
		panic(fmt.Sprintf("skiplist: pool blocks of %d words are smaller than a node (%d)", pool.BlockWords(), NodeWords))
	}
	head := ar.AllocWords(Words())
	if head == 0 {
		head = ar.AllocWords(Words()) // reserve address 0 as nil
	}
	return &List{head: head, pool: pool}
}

// height returns the deterministic tower height for key.
func height(key uint64) int {
	x := key
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	h := 1
	for x&1 == 1 && h < MaxHeight {
		h++
		x >>= 1
	}
	return h
}

// findPredecessors fills pred with the rightmost node at each level whose
// key is < key, and returns the candidate node at level 0 (which may be the
// match).
func (l *List) findPredecessors(acc memmodel.Accessor, key uint64, pred *[MaxHeight]memmodel.Addr) memmodel.Addr {
	n := l.head
	for lv := MaxHeight - 1; lv >= 0; lv-- {
		for {
			next := acc.Load(n + nodeNext + memmodel.Addr(lv))
			if next == 0 || acc.Load(memmodel.Addr(next)+nodeKey) >= key {
				break
			}
			n = memmodel.Addr(next)
		}
		pred[lv] = n
	}
	return memmodel.Addr(acc.Load(pred[0] + nodeNext))
}

// Get returns the value stored under key.
func (l *List) Get(acc memmodel.Accessor, key uint64) (uint64, bool) {
	var pred [MaxHeight]memmodel.Addr
	cand := l.findPredecessors(acc, key, &pred)
	if cand != 0 && acc.Load(cand+nodeKey) == key {
		return acc.Load(cand + nodeVal), true
	}
	return 0, false
}

// Insert puts (key, val) into the list using the pre-allocated node,
// returning false (node unused — the caller should recycle it) if the key
// already exists, in which case the value is updated in place.
func (l *List) Insert(acc memmodel.Accessor, key, val uint64, node memmodel.Addr) bool {
	var pred [MaxHeight]memmodel.Addr
	cand := l.findPredecessors(acc, key, &pred)
	if cand != 0 && acc.Load(cand+nodeKey) == key {
		acc.Store(cand+nodeVal, val)
		return false
	}
	h := height(key)
	acc.Store(node+nodeKey, key)
	acc.Store(node+nodeVal, val)
	acc.Store(node+nodeHeight, uint64(h))
	for lv := 0; lv < h; lv++ {
		acc.Store(node+nodeNext+memmodel.Addr(lv), acc.Load(pred[lv]+nodeNext+memmodel.Addr(lv)))
		acc.Store(pred[lv]+nodeNext+memmodel.Addr(lv), uint64(node))
	}
	return true
}

// Update sets key's value in place and reports whether the key was
// present. Unlike Insert it never links a node, so callers that only want
// to touch existing keys (multi-key span bodies) need no pre-allocated
// node.
func (l *List) Update(acc memmodel.Accessor, key, val uint64) bool {
	var pred [MaxHeight]memmodel.Addr
	cand := l.findPredecessors(acc, key, &pred)
	if cand == 0 || acc.Load(cand+nodeKey) != key {
		return false
	}
	acc.Store(cand+nodeVal, val)
	return true
}

// Delete removes key and returns its node for recycling (after the
// enclosing critical section commits), or 0 if absent.
func (l *List) Delete(acc memmodel.Accessor, key uint64) memmodel.Addr {
	var pred [MaxHeight]memmodel.Addr
	cand := l.findPredecessors(acc, key, &pred)
	if cand == 0 || acc.Load(cand+nodeKey) != key {
		return 0
	}
	h := int(acc.Load(cand + nodeHeight))
	for lv := 0; lv < h; lv++ {
		next := acc.Load(cand + nodeNext + memmodel.Addr(lv))
		acc.Store(pred[lv]+nodeNext+memmodel.Addr(lv), next)
	}
	return cand
}

// Range visits keys in [lo, hi) in order and returns their count and value
// sum — the long read-only traversal of the motivating workload.
func (l *List) Range(acc memmodel.Accessor, lo, hi uint64) (count int, sum uint64) {
	var pred [MaxHeight]memmodel.Addr
	n := l.findPredecessors(acc, lo, &pred)
	for n != 0 {
		k := acc.Load(n + nodeKey)
		if k >= hi {
			break
		}
		sum += acc.Load(n + nodeVal)
		count++
		n = memmodel.Addr(acc.Load(n + nodeNext))
	}
	return count, sum
}

// Len walks level 0 and returns the item count (testing/diagnostics).
func (l *List) Len(acc memmodel.Accessor) int {
	n := 0
	for node := acc.Load(l.head + nodeNext); node != 0; node = acc.Load(memmodel.Addr(node) + nodeNext) {
		n++
	}
	return n
}

// Populate inserts keys 0..items-1 (value == key) from slot 0's pool cache;
// single-threaded setup only.
func (l *List) Populate(acc memmodel.Accessor, items int) {
	for k := 0; k < items; k++ {
		if !l.Insert(acc, uint64(k), uint64(k), l.pool.Get(0)) {
			panic("skiplist: duplicate key during Populate")
		}
	}
}
