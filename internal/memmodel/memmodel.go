// Package memmodel defines the simulated shared-memory geometry that every
// other component of this repository is written against.
//
// The paper's algorithms (SpRWL, TLE, RW-LE, and the pessimistic baselines)
// synchronize accesses to shared application data. Because Go exposes no
// hardware-transactional-memory intrinsics, shared data lives in a simulated
// word-addressable address space whose accesses are observable by the HTM
// emulation layer (package htm). Workloads (hashmap, TPC-C) are written once
// against the Accessor interface and therefore run identically under
// uninstrumented, transactional, and discrete-event-simulated execution.
package memmodel

// Addr indexes a 64-bit word in a simulated address space. Addresses are
// word-granular: Addr(0) is the first word, Addr(1) the second, and so on.
type Addr uint64

const (
	// LineWords is the number of 64-bit words per simulated cache line.
	// 8 words x 8 bytes matches the ubiquitous 64-byte line the paper's
	// Broadwell and POWER8 machines use.
	LineWords = 8

	// LineShift is log2(LineWords), used to map an Addr to its line.
	LineShift = 3

	// LineBytes is the size of a simulated cache line in bytes.
	LineBytes = LineWords * 8
)

// Line identifies a simulated cache line (a group of LineWords words).
type Line uint64

// LineOf returns the cache line containing address a.
func LineOf(a Addr) Line { return Line(a >> LineShift) }

// LineBase returns the first address of line l.
func LineBase(l Line) Addr { return Addr(l << LineShift) }

// Accessor is the data-plane view of a simulated address space.
//
// Critical-section bodies receive an Accessor and must perform every access
// to shared data through it. Depending on the execution mode the Accessor is
// either a direct (uninstrumented) view with strong-isolation semantics, a
// transactional view with buffered writes and eager conflict detection, or a
// discrete-event-simulated view that additionally charges coherence costs.
type Accessor interface {
	// Load returns the current value of the word at a.
	Load(a Addr) uint64
	// Store sets the word at a to v.
	Store(a Addr, v uint64)
}

// Space is the provisioning-plane view of a simulated address space: the
// operations needed to set up data structures before (or outside of)
// synchronized execution.
type Space interface {
	Accessor
	// CAS atomically compares-and-swaps the word at a.
	CAS(a Addr, old, new uint64) bool
	// Size returns the number of words in the space.
	Size() Addr
}
