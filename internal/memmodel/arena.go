package memmodel

import "fmt"

// Arena is a line-aligned bump allocator over a simulated address space,
// used at layout time to carve lock words, metadata arrays, and data
// structures out of one Space. It is not safe for concurrent use; layout
// happens before worker threads start. (Runtime allocation inside critical
// sections is package alloc's job.)
type Arena struct {
	next  Addr
	limit Addr
}

// NewArena returns an arena handing out [base, limit) word addresses.
// base is rounded up to a line boundary.
func NewArena(base, limit Addr) *Arena {
	return &Arena{next: alignUp(base), limit: limit}
}

func alignUp(a Addr) Addr {
	return (a + LineWords - 1) / LineWords * LineWords
}

// AllocWords reserves n words, line-aligned at the start, and returns the
// base address. It panics if the arena is exhausted: layout sizes are static
// and an overflow is a programming error, not a runtime condition.
func (ar *Arena) AllocWords(n int) Addr {
	if n <= 0 {
		panic("memmodel: AllocWords with non-positive size")
	}
	base := ar.next
	ar.next = alignUp(base + Addr(n))
	if ar.next > ar.limit {
		panic(fmt.Sprintf("memmodel: arena exhausted (need %d words at %d, limit %d)", n, base, ar.limit))
	}
	return base
}

// AllocLines reserves n whole cache lines and returns the base address.
func (ar *Arena) AllocLines(n int) Addr { return ar.AllocWords(n * LineWords) }

// Remaining returns how many words are still available.
func (ar *Arena) Remaining() Addr {
	if ar.next >= ar.limit {
		return 0
	}
	return ar.limit - ar.next
}

// Next returns the next address the arena would hand out.
func (ar *Arena) Next() Addr { return ar.next }
