package memmodel

import "testing"

func TestLineGeometry(t *testing.T) {
	tests := []struct {
		addr Addr
		line Line
	}{
		{0, 0}, {7, 0}, {8, 1}, {15, 1}, {16, 2}, {1 << 20, 1 << 17},
	}
	for _, tt := range tests {
		if got := LineOf(tt.addr); got != tt.line {
			t.Errorf("LineOf(%d) = %d, want %d", tt.addr, got, tt.line)
		}
	}
	if LineBytes != 64 {
		t.Fatalf("LineBytes = %d, want 64", LineBytes)
	}
	for l := Line(0); l < 10; l++ {
		if LineOf(LineBase(l)) != l {
			t.Fatalf("LineBase/LineOf not inverse at line %d", l)
		}
	}
}

func TestArenaAllocatesAlignedNonOverlapping(t *testing.T) {
	ar := NewArena(3, 1024) // misaligned base must round up
	a := ar.AllocWords(5)
	if a%LineWords != 0 {
		t.Fatalf("first allocation at %d not line-aligned", a)
	}
	b := ar.AllocWords(1)
	if b < a+5 {
		t.Fatalf("allocations overlap: %d then %d", a, b)
	}
	if b%LineWords != 0 {
		t.Fatalf("second allocation at %d not line-aligned", b)
	}
	c := ar.AllocLines(2)
	if c%LineWords != 0 || c < b+1 {
		t.Fatalf("AllocLines misplaced: %d", c)
	}
}

func TestArenaRemainingAndNext(t *testing.T) {
	ar := NewArena(0, 4*LineWords)
	if ar.Remaining() != 4*LineWords {
		t.Fatalf("Remaining = %d, want %d", ar.Remaining(), 4*LineWords)
	}
	ar.AllocLines(3)
	if ar.Remaining() != LineWords {
		t.Fatalf("Remaining = %d after 3 lines, want %d", ar.Remaining(), LineWords)
	}
	if ar.Next() != 3*LineWords {
		t.Fatalf("Next = %d, want %d", ar.Next(), 3*LineWords)
	}
}

func TestArenaExhaustionPanics(t *testing.T) {
	ar := NewArena(0, LineWords)
	ar.AllocLines(1)
	defer func() {
		if recover() == nil {
			t.Fatal("exhausted arena did not panic")
		}
	}()
	ar.AllocWords(1)
}

func TestArenaRejectsNonPositiveSize(t *testing.T) {
	ar := NewArena(0, 1024)
	defer func() {
		if recover() == nil {
			t.Fatal("AllocWords(0) did not panic")
		}
	}()
	ar.AllocWords(0)
}
