// Package tle implements plain transactional lock elision, the "TLE"
// baseline of the paper's evaluation: every critical section — read-only or
// updating — runs as a best-effort hardware transaction subscribed to a
// single global fallback lock, with the paper's retry policy (10 attempts,
// immediate fallback on a capacity abort).
//
// TLE is the foil for SpRWL's headline result: read-only sections larger
// than the HTM capacity cannot commit in hardware, so TLE degrades to the
// serial fallback exactly where SpRWL's uninstrumented readers keep
// scaling (Figs. 3 and 4).
package tle

import (
	"sprwl/internal/env"
	"sprwl/internal/locks"
	"sprwl/internal/memmodel"
	"sprwl/internal/rwlock"
	"sprwl/internal/stats"
)

// DefaultRetries is the paper's hardware attempt budget.
const DefaultRetries = 10

// TLE is a transactional-lock-elision lock.
type TLE struct {
	e       env.Env
	gl      locks.SpinMutex
	retries int
	col     *stats.Collector
}

var _ rwlock.Lock = (*TLE)(nil)

// New carves a TLE lock out of the arena. retries <= 0 selects
// DefaultRetries; col may be nil.
func New(e env.Env, ar *memmodel.Arena, retries int, col *stats.Collector) *TLE {
	if retries <= 0 {
		retries = DefaultRetries
	}
	return &TLE{
		e:       e,
		gl:      locks.NewSpinMutex(e, ar.AllocLines(1)),
		retries: retries,
		col:     col,
	}
}

// Name implements rwlock.Lock.
func (*TLE) Name() string { return "TLE" }

// NewHandle implements rwlock.Lock.
func (l *TLE) NewHandle(slot int) rwlock.Handle { return &handle{l: l, slot: slot} }

type handle struct {
	l    *TLE
	slot int
}

func (h *handle) Read(csID int, body rwlock.Body) { h.run(stats.Reader, body) }

func (h *handle) Write(csID int, body rwlock.Body) { h.run(stats.Writer, body) }

// run elides the critical section: attempt in hardware with the lock
// subscribed; after the budget (or a capacity abort) execute under the
// global lock.
func (h *handle) run(k stats.Kind, body rwlock.Body) {
	l := h.l
	start := l.e.Now()
	glAddr := l.gl.Addr()
	for attempts := 0; attempts < l.retries; {
		for l.gl.IsLocked() {
			l.e.Yield()
		}
		cause := l.e.Attempt(h.slot, env.TxOpts{}, func(tx env.TxAccessor) {
			if tx.Load(glAddr) != 0 {
				tx.Abort(env.AbortExplicit)
			}
			body(tx)
		})
		if cause == env.Committed {
			h.record(k, env.ModeHTM, start)
			return
		}
		if l.col != nil {
			l.col.Thread(h.slot).Abort(k, cause)
		}
		if cause == env.AbortCapacity {
			break
		}
		attempts++
	}
	l.gl.Lock()
	body(l.e)
	l.gl.Unlock()
	h.record(k, env.ModeGL, start)
}

func (h *handle) record(k stats.Kind, m env.CommitMode, start uint64) {
	if h.l.col == nil {
		return
	}
	t := h.l.col.Thread(h.slot)
	t.Commit(k, m)
	t.Latency(k, h.l.e.Now()-start)
}
