// Package tle implements plain transactional lock elision, the "TLE"
// baseline of the paper's evaluation: every critical section — read-only or
// updating — runs as a best-effort hardware transaction subscribed to a
// single global fallback lock, with the paper's retry policy (10 attempts,
// immediate fallback on a capacity abort).
//
// TLE is the foil for SpRWL's headline result: read-only sections larger
// than the HTM capacity cannot commit in hardware, so TLE degrades to the
// serial fallback exactly where SpRWL's uninstrumented readers keep
// scaling (Figs. 3 and 4).
package tle

import (
	"sprwl/internal/env"
	"sprwl/internal/locks"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
	"sprwl/internal/rwlock"
)

// DefaultRetries is the paper's hardware attempt budget.
const DefaultRetries = 10

// TLE is a transactional-lock-elision lock.
type TLE struct {
	e       env.Env
	gl      locks.SpinMutex
	retries int
	pipe    *obs.Pipeline
}

var _ rwlock.Lock = (*TLE)(nil)

// New carves a TLE lock out of the arena. retries <= 0 selects
// DefaultRetries; pipe may be nil to disable instrumentation.
func New(e env.Env, ar *memmodel.Arena, retries int, pipe *obs.Pipeline) *TLE {
	if retries <= 0 {
		retries = DefaultRetries
	}
	return &TLE{
		e:       e,
		gl:      locks.NewSpinMutex(e, ar.AllocLines(1)),
		retries: retries,
		pipe:    pipe,
	}
}

// Name implements rwlock.Lock.
func (*TLE) Name() string { return "TLE" }

// NewHandle implements rwlock.Lock.
func (l *TLE) NewHandle(slot int) rwlock.Handle {
	return &handle{l: l, slot: slot, ring: l.pipe.Thread(slot)}
}

type handle struct {
	l    *TLE
	slot int
	ring *obs.Ring
}

func (h *handle) Read(csID int, body rwlock.Body) { h.run(obs.Reader, csID, body) }

func (h *handle) Write(csID int, body rwlock.Body) { h.run(obs.Writer, csID, body) }

// run elides the critical section: attempt in hardware with the lock
// subscribed; after the budget (or a capacity abort) execute under the
// global lock.
func (h *handle) run(rw uint8, csID int, body rwlock.Body) {
	l := h.l
	start := l.e.Now()
	glAddr := l.gl.Addr()
	for attempts := 0; attempts < l.retries; {
		waited := false
		var t0 uint64
		for l.gl.IsLocked() {
			if !waited {
				waited, t0 = true, l.e.Now()
			}
			l.e.Yield()
		}
		if waited {
			h.ring.Wait(obs.WaitGL, rw, csID, t0, l.e.Now())
		}
		cause := l.e.Attempt(h.slot, env.TxOpts{}, func(tx env.TxAccessor) {
			if tx.Load(glAddr) != 0 {
				tx.Abort(env.AbortExplicit)
			}
			body(tx)
		})
		if cause == env.Committed {
			h.ring.Section(rw, csID, env.ModeHTM, start, l.e.Now())
			return
		}
		h.ring.Abort(rw, csID, cause, l.e.Now())
		if cause == env.AbortCapacity {
			break
		}
		attempts++
	}
	l.gl.Lock()
	acquired := l.e.Now()
	body(l.e)
	l.gl.Unlock()
	now := l.e.Now()
	h.ring.SGL(csID, acquired, now)
	h.ring.Section(rw, csID, env.ModeGL, start, now)
}
