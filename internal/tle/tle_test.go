package tle

import (
	"sync"
	"testing"

	"sprwl/internal/env"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/stats"
)

func setup(t *testing.T, threads int, cfg htm.Config) (*TLE, env.Env, *memmodel.Arena, *stats.Collector) {
	t.Helper()
	if cfg.Threads == 0 {
		cfg.Threads = threads
	}
	if cfg.Words == 0 {
		cfg.Words = 1 << 14
	}
	space, err := htm.NewSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(threads)
	return New(e, ar, 0, col.Pipeline()), e, ar, col
}

func TestElidesInHTM(t *testing.T) {
	l, e, ar, col := setup(t, 2, htm.Config{})
	data := ar.AllocLines(1)
	h := l.NewHandle(0)
	h.Write(0, func(acc memmodel.Accessor) { acc.Store(data, 3) })
	h.Read(1, func(acc memmodel.Accessor) {
		if got := acc.Load(data); got != 3 {
			t.Errorf("read %d, want 3", got)
		}
	})
	if got := e.Load(data); got != 3 {
		t.Fatalf("data = %d, want 3", got)
	}
	s := col.Snapshot()
	if got := s.CommitShare(env.ModeHTM); got != 1 {
		t.Fatalf("HTM share = %f, want 1 (%s)", got, s)
	}
}

// TestCapacityAbortFallsBackImmediately verifies the paper's retry policy:
// a capacity abort activates the fallback at once instead of burning the
// budget.
func TestCapacityAbortFallsBackImmediately(t *testing.T) {
	l, _, ar, col := setup(t, 2, htm.Config{Threads: 2, Words: 1 << 14, ReadCapacityLines: 2})
	data := ar.AllocLines(8)
	l.NewHandle(0).Read(0, func(acc memmodel.Accessor) {
		for i := 0; i < 8; i++ {
			_ = acc.Load(data + memmodel.Addr(i*memmodel.LineWords))
		}
	})
	s := col.Snapshot()
	if got := s.Aborts[stats.Reader][env.AbortCapacity]; got != 1 {
		t.Fatalf("capacity aborts = %d, want exactly 1 (immediate fallback)", got)
	}
	if got := s.Commits[stats.Reader][env.ModeGL]; got != 1 {
		t.Fatalf("GL commits = %d, want 1 (%s)", got, s)
	}
}

// TestBudgetExhaustionFallsBack: with spurious aborts on every access the
// full budget is consumed, then the section runs under the lock.
func TestBudgetExhaustionFallsBack(t *testing.T) {
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: 1 << 12, SpuriousEvery: 1})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(1)
	l := New(e, ar, 3, col.Pipeline())
	data := ar.AllocLines(1)
	l.NewHandle(0).Write(0, func(acc memmodel.Accessor) { acc.Store(data, 1) })
	if got := e.Load(data); got != 1 {
		t.Fatalf("data = %d, want 1", got)
	}
	s := col.Snapshot()
	if got := s.TotalAborts(stats.Writer); got != 3 {
		t.Fatalf("aborts = %d, want the full budget of 3", got)
	}
	if got := s.Commits[stats.Writer][env.ModeGL]; got != 1 {
		t.Fatalf("GL commits = %d, want 1", got)
	}
}

// TestSerializability: concurrent read-modify-writes through TLE never lose
// updates, whether they commit in HTM or under the fallback lock.
func TestSerializability(t *testing.T) {
	const (
		threads = 6
		rounds  = 200
	)
	l, e, ar, _ := setup(t, threads, htm.Config{Threads: threads, Words: 1 << 14})
	ctr := ar.AllocLines(1)
	var wg sync.WaitGroup
	for s := 0; s < threads; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < rounds; i++ {
				h.Write(0, func(acc memmodel.Accessor) {
					acc.Store(ctr, acc.Load(ctr)+1)
				})
			}
		}(s)
	}
	wg.Wait()
	if got := e.Load(ctr); got != threads*rounds {
		t.Fatalf("counter = %d, want %d", got, threads*rounds)
	}
}

// TestReadersSeeConsistentPairs: TLE readers are transactional, so they
// must never observe a writer's partial update.
func TestReadersSeeConsistentPairs(t *testing.T) {
	const rounds = 300
	l, _, ar, _ := setup(t, 2, htm.Config{})
	x, y := ar.AllocLines(1), ar.AllocLines(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		h := l.NewHandle(0)
		for i := 0; i < rounds; i++ {
			h.Write(0, func(acc memmodel.Accessor) {
				v := acc.Load(x) + 1
				acc.Store(x, v)
				acc.Store(y, v)
			})
		}
	}()
	go func() {
		defer wg.Done()
		h := l.NewHandle(1)
		for i := 0; i < rounds; i++ {
			h.Read(1, func(acc memmodel.Accessor) {
				vx, vy := acc.Load(x), acc.Load(y)
				if vx != vy {
					t.Errorf("torn read: x=%d y=%d", vx, vy)
				}
			})
		}
	}()
	wg.Wait()
}

func TestName(t *testing.T) {
	l, _, _, _ := setup(t, 1, htm.Config{Threads: 1})
	if got := l.Name(); got != "TLE" {
		t.Fatalf("Name = %q, want TLE", got)
	}
}
