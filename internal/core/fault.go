package core

// Fault points: the named fence points of the SpRWL protocol at which the
// hostile-environment harness (internal/hostile) injects faults. The names
// are shared infrastructure: the in-process chaos tests hook them through
// SetFaultHook to perturb scheduling exactly at the protocol's most
// delicate instants, and the multi-process crash harness reuses the same
// catalogue to tell a re-exec'd worker where to die (SIGKILL from the
// parent), so "crash after flag-raise before body" means the same fence in
// both worlds. They correspond to the fence rules the fenceorder analyzer
// tracks (DESIGN §8): the windows in which a thread has published state
// that some other thread will wait on.

// FaultPoint names one fence point.
type FaultPoint uint8

const (
	// FaultNone is the zero FaultPoint; hooks never receive it.
	FaultNone FaultPoint = iota

	// FaultReaderFlagged fires after an uninstrumented reader has raised
	// its reader flag (and synchronized with the fallback lock) but
	// before the section body runs. A thread dying here leaves a raised
	// flag that every fallback writer's drain will wait on — the
	// dead-reader revocation case (BRAVO, arXiv 1810.01553).
	FaultReaderFlagged

	// FaultWriterAdvertised fires after a fallback writer has acquired
	// the fallback lock (its advertisement to readers and other writers)
	// but before it drains active readers. A thread dying here leaves
	// the lock held with no owner alive — survivors must recover before
	// anyone makes progress.
	FaultWriterAdvertised

	numFaultPoints
)

// String returns the catalogue name used by the harness's command lines
// and logs.
func (p FaultPoint) String() string {
	switch p {
	case FaultReaderFlagged:
		return "reader-flagged"
	case FaultWriterAdvertised:
		return "writer-advertised"
	default:
		return "none"
	}
}

// FaultPoints returns the catalogue of injectable fence points.
func FaultPoints() []FaultPoint {
	return []FaultPoint{FaultReaderFlagged, FaultWriterAdvertised}
}

// SetFaultHook installs h to be called at every fault point this lock's
// handles pass through, with the handle's slot (-1 for dynamic handles).
// Test-only: install before handing out handles and do not change it while
// workers run. The hook runs on the worker's goroutine inside the
// protocol's fence windows — it must not acquire this lock. A nil hook
// (the default) costs one branch per fence.
func (l *Lock) SetFaultHook(h func(FaultPoint, int)) { l.fault = h }

// atFault invokes the installed fault hook, if any.
func (h *handle) atFault(p FaultPoint) {
	if f := h.l.fault; f != nil {
		f(p, h.slot)
	}
}
