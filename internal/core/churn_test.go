package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
)

// TestDynamicHandleChurn hammers the BRAVO revocation-epoch protocol with
// handle lifetime churn: goroutines continuously create a dynamic handle,
// read a few times, and drop it, while writers — including a dynamic writer
// that always takes the fallback path and therefore drains readers through
// Check/Revoke — commit concurrently. The danger being probed is a stranded
// reader slot: a visible-readers entry left behind by a dropped handle (or
// orphaned across a revocation epoch), which would make every later drain
// spin forever. The oracle is threefold: reads never observe a torn
// counter/mirror pair, the final counter equals the number of writes, and a
// final fallback write's drain completes under a watchdog after all
// churners are gone.
func TestDynamicHandleChurn(t *testing.T) {
	for _, procs := range []int{2, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)
			runDynamicChurn(t)
		})
	}
}

func runDynamicChurn(t *testing.T) {
	opts := BravoOptions()
	opts.ReaderHTMFirst = false // flagged readers occupy BRAVO slots
	l, _, ar, _ := testSetup(t, 2, htm.Config{}, opts)
	data := ar.AllocLines(1)
	counter := data
	mirror := data + 1

	const (
		churners       = 6
		handlesEach    = 40
		readsPerHandle = 4
		writesEach     = 120
	)
	if testing.Short() {
		t.Log("full churn counts even in -short: the run is sub-second")
	}

	var torn atomic.Int64
	var wg sync.WaitGroup

	// Reader churn: every handle lives for only a few sections.
	for c := 0; c < churners; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < handlesEach; i++ {
				h, err := l.NewDynamicHandle()
				if err != nil {
					t.Error(err)
					return
				}
				for r := 0; r < readsPerHandle; r++ {
					h.Read(0, func(acc memmodel.Accessor) {
						if acc.Load(counter) != acc.Load(mirror) {
							torn.Add(1)
						}
					})
				}
				// Drop the handle; nothing must linger in the
				// visible-readers table.
			}
		}()
	}

	// One static writer (may commit via HTM) and one dynamic writer
	// (always the fallback path: lock, drain, direct body) — the drain
	// is what a stranded slot would hang.
	write := func(acc memmodel.Accessor) {
		v := acc.Load(counter) + 1
		acc.Store(counter, v)
		acc.Store(mirror, v)
	}
	sh := l.NewHandle(1)
	dw, err := l.NewDynamicHandle()
	if err != nil {
		t.Fatal(err)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < writesEach; i++ {
			sh.Write(1, write)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < writesEach; i++ {
			dw.Write(1, write)
		}
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("churn wedged (stranded reader slot?)\n%s", buf[:runtime.Stack(buf, true)])
	}

	if n := torn.Load(); n != 0 {
		t.Errorf("%d torn reads: a writer committed while a dynamic reader was visible", n)
	}

	// Final fallback write after all churners dropped their handles: its
	// drain walks the whole visible-readers structure and must find it
	// empty. A stranded slot turns this into a hang, caught by the
	// watchdog.
	final := make(chan struct{})
	go func() {
		dw.Write(1, write)
		close(final)
	}()
	select {
	case <-final:
	case <-time.After(30 * time.Second):
		buf := make([]byte, 1<<20)
		t.Fatalf("final drain wedged: reader slot stranded\n%s", buf[:runtime.Stack(buf, true)])
	}

	var got uint64
	sh.Read(0, func(acc memmodel.Accessor) { got = acc.Load(counter) })
	if want := uint64(2*writesEach + 1); got != want {
		t.Errorf("counter = %d, want %d", got, want)
	}
	if b := l.indBravo; b != nil {
		t.Logf("bravo: revocations=%d epoch=%d collisions=%d", b.Revocations(), b.Epoch(), b.Collisions())
		if b.Revocations() > 0 && b.Epoch() == 0 {
			t.Error("revocations recorded but epoch never advanced")
		}
	}
}
