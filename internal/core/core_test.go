package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sprwl/internal/env"
	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
	"sprwl/internal/stats"
)

// testSetup builds a space, runtime, arena and SpRWL lock.
func testSetup(t *testing.T, threads int, cfg htm.Config, opts Options) (*Lock, env.Env, *memmodel.Arena, *stats.Collector) {
	t.Helper()
	if cfg.Threads == 0 {
		cfg.Threads = threads
	}
	if cfg.Words == 0 {
		cfg.Words = 1 << 14
	}
	space, err := htm.NewSpace(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	col := stats.NewCollector(threads)
	l, err := New(e, ar, threads, 8, opts, col.Pipeline())
	if err != nil {
		t.Fatal(err)
	}
	return l, e, ar, col
}

func TestNewValidation(t *testing.T) {
	space := htm.MustNewSpace(htm.Config{Threads: 2, Words: 1 << 12})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	if _, err := New(e, ar, 0, 1, DefaultOptions(), nil); err == nil {
		t.Fatal("New accepted zero threads")
	}
	if _, err := New(e, ar, 5, 1, DefaultOptions(), nil); err == nil {
		t.Fatal("New accepted more threads than the environment has slots")
	}
}

func TestVariantNames(t *testing.T) {
	tests := []struct {
		opts Options
		want string
	}{
		{DefaultOptions(), "SpRWL"},
		{NoSchedOptions(), "SpRWL-NoSched"},
		{RWaitOptions(), "SpRWL-RWait"},
		{RSyncOptions(), "SpRWL-RSync"},
		{SNZIOptions(), "SpRWL-SNZI"},
	}
	for _, tt := range tests {
		l, _, _, _ := testSetup(t, 2, htm.Config{}, tt.opts)
		if got := l.Name(); got != tt.want {
			t.Errorf("Name() = %q, want %q", got, tt.want)
		}
	}
}

func TestWordsCoversLayout(t *testing.T) {
	for _, n := range []int{1, 2, 8, 17, 56, 64} {
		space := htm.MustNewSpace(htm.Config{Threads: min(n, htm.MaxThreads), Words: Words(n) + memmodel.LineWords})
		e := htm.NewRuntime(space, nil)
		ar := memmodel.NewArena(0, memmodel.Addr(Words(n)))
		if _, err := New(e, ar, min(n, htm.MaxThreads), 1, DefaultOptions(), nil); err != nil {
			t.Fatalf("threads=%d: New within Words(%d) arena failed: %v", n, n, err)
		}
	}
}

// TestShortReaderCommitsInHTM: with ReaderHTMFirst and a body that fits,
// the read must commit as a hardware transaction (§3.4 keeps SpRWL
// competitive with TLE on short readers).
func TestShortReaderCommitsInHTM(t *testing.T) {
	l, _, ar, col := testSetup(t, 2, htm.Config{}, DefaultOptions())
	data := ar.AllocLines(1)
	h := l.NewHandle(0)
	h.Read(0, func(acc memmodel.Accessor) { _ = acc.Load(data) })
	s := col.Snapshot()
	if got := s.Commits[stats.Reader][env.ModeHTM]; got != 1 {
		t.Fatalf("HTM reader commits = %d, want 1 (snapshot: %s)", got, s)
	}
}

// TestLongReaderFallsBackUninstrumented: a reader exceeding the read
// capacity must abort once with capacity and complete uninstrumented —
// the paper's headline mechanism.
func TestLongReaderFallsBackUninstrumented(t *testing.T) {
	l, _, ar, col := testSetup(t, 2, htm.Config{Threads: 2, Words: 1 << 14, ReadCapacityLines: 4}, DefaultOptions())
	data := ar.AllocLines(16)
	h := l.NewHandle(0)
	h.Read(0, func(acc memmodel.Accessor) {
		for i := 0; i < 16; i++ {
			_ = acc.Load(data + memmodel.Addr(i*memmodel.LineWords))
		}
	})
	s := col.Snapshot()
	if got := s.Commits[stats.Reader][env.ModeUninstrumented]; got != 1 {
		t.Fatalf("uninstrumented reader commits = %d, want 1 (snapshot: %s)", got, s)
	}
	if got := s.Aborts[stats.Reader][env.AbortCapacity]; got != 1 {
		t.Fatalf("reader capacity aborts = %d, want 1", got)
	}
}

// TestWriterCommitsInHTM is the paper's Fig. 2 scenario: no reader is
// active at the writer's commit-time check, so the writer commits in
// hardware.
func TestFig2WriterCommitsInHTM(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), NoSchedOptions(), SNZIOptions()} {
		l, e, ar, col := testSetup(t, 2, htm.Config{}, opts)
		data := ar.AllocLines(1)
		h := l.NewHandle(0)
		h.Write(0, func(acc memmodel.Accessor) { acc.Store(data, 7) })
		if got := e.Load(data); got != 7 {
			t.Fatalf("%s: data = %d, want 7", l.Name(), got)
		}
		s := col.Snapshot()
		if got := s.Commits[stats.Writer][env.ModeHTM]; got != 1 {
			t.Fatalf("%s: HTM writer commits = %d, want 1 (%s)", l.Name(), got, s)
		}
	}
}

// TestWriterAbortsOnActiveReader is the paper's Fig. 1 scenario: a writer
// whose commit-time check finds an active uninstrumented reader must abort
// with the "reader" cause (and, here, eventually fall back to the global
// lock, where it waits for the reader to finish).
func TestFig1WriterAbortsOnActiveReader(t *testing.T) {
	for _, opts := range []Options{NoSchedOptions(), func() Options {
		o := NoSchedOptions()
		o.UseSNZI = true
		return o
	}()} {
		// Force the long-reader path immediately so the reader parks
		// uninstrumented.
		opts.ReaderHTMFirst = false
		l, e, ar, col := testSetup(t, 2, htm.Config{}, opts)
		data := ar.AllocLines(1)

		readerIn := make(chan struct{})
		readerGo := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.NewHandle(0).Read(0, func(acc memmodel.Accessor) {
				close(readerIn)
				<-readerGo
			})
		}()
		<-readerIn

		var writerDone atomic.Bool
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.NewHandle(1).Write(1, func(acc memmodel.Accessor) {
				acc.Store(data, 1)
			})
			writerDone.Store(true)
		}()

		// The writer cannot complete while the reader is inside.
		time.Sleep(20 * time.Millisecond)
		if writerDone.Load() {
			t.Fatal("writer completed while a reader was active")
		}
		close(readerGo)
		wg.Wait()
		if got := e.Load(data); got != 1 {
			t.Fatalf("data = %d after writer, want 1", got)
		}
		s := col.Snapshot()
		if got := s.Aborts[stats.Writer][env.AbortReader]; got == 0 {
			t.Fatalf("no reader-caused writer aborts recorded (%s)", s)
		}
		if s.Commits[stats.Writer][env.ModeHTM]+s.Commits[stats.Writer][env.ModeGL] != 1 {
			t.Fatalf("writer did not complete exactly once (%s)", s)
		}
	}
}

// TestReaderSyncDefersToActiveWriter: with reader synchronization, a reader
// arriving while a writer is advertised must wait until the writer's flag
// clears (§3.2.1 fairness).
func TestReaderSyncDefersToActiveWriter(t *testing.T) {
	opts := RSyncOptions()
	opts.ReaderHTMFirst = false
	opts.TimedReaderWait = false
	l, e, _, _ := testSetup(t, 3, htm.Config{}, opts)

	// Simulate an active writer on slot 0.
	e.Store(l.clockWAddr(0), e.Now()+1_000_000)
	e.Store(l.stateAddr(0), stateWriter)

	entered := make(chan struct{})
	go func() {
		l.NewHandle(1).Read(0, func(acc memmodel.Accessor) {})
		close(entered)
	}()

	select {
	case <-entered:
		t.Fatal("reader entered while a writer was advertised")
	case <-time.After(20 * time.Millisecond):
	}
	// While waiting, the reader must advertise whom it waits for.
	if got := e.Load(l.waitingForAddr(1)); got != 1 {
		t.Fatalf("waiting_for[1] = %d, want 1 (writer slot 0 + 1)", got)
	}
	// Writer completes: retire store, then wake (the protocol every
	// writer-retire path follows — a parked reader needs the wake).
	e.Store(l.stateAddr(0), stateEmpty)
	l.wakes.Wake(l.stateAddr(0))
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("reader still blocked after writer cleared")
	}
	if got := e.Load(l.waitingForAddr(1)); got != 0 {
		t.Fatalf("waiting_for[1] = %d after entry, want 0", got)
	}
}

// TestJoinWaiters: a second reader must join the first one's wait (same
// writer target) instead of scanning for its own, per Alg. 2's shortcut.
func TestJoinWaiters(t *testing.T) {
	opts := RSyncOptions()
	opts.ReaderHTMFirst = false
	opts.TimedReaderWait = false
	l, e, _, _ := testSetup(t, 4, htm.Config{}, opts)

	// Writer 0 active with a long predicted end; writer 1 active with a
	// longer one. A lone reader would pick writer 1 (max clock); a
	// joining reader must adopt the first waiter's choice instead.
	e.Store(l.clockWAddr(0), e.Now()+1_000_000_000)
	e.Store(l.stateAddr(0), stateWriter)
	// Reader 2 is already waiting for writer 0.
	e.Store(l.waitingForAddr(2), 1)

	entered := make(chan struct{})
	go func() {
		l.NewHandle(3).Read(0, func(acc memmodel.Accessor) {})
		close(entered)
	}()

	deadline := time.Now().Add(2 * time.Second)
	for e.Load(l.waitingForAddr(3)) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("reader 3 waits for %d, want to join reader 2's wait for writer 0", e.Load(l.waitingForAddr(3)))
		}
		time.Sleep(time.Millisecond)
	}
	e.Store(l.stateAddr(0), stateEmpty)
	l.wakes.Wake(l.stateAddr(0))
	select {
	case <-entered:
	case <-time.After(2 * time.Second):
		t.Fatal("joined reader still blocked after writer cleared")
	}
}

// TestSnapshotConsistency is the core safety property across all variants
// (the guarantee Figs. 1 and 2 illustrate): writers keep two separate-line
// words equal inside every critical section; readers — uninstrumented or
// not — must never observe them unequal.
func TestSnapshotConsistency(t *testing.T) {
	variants := map[string]Options{
		"NoSched":      NoSchedOptions(),
		"RWait":        RWaitOptions(),
		"RSync":        RSyncOptions(),
		"SpRWL":        DefaultOptions(),
		"SNZI":         SNZIOptions(),
		"VersionedSGL": func() Options { o := DefaultOptions(); o.VersionedSGL = true; return o }(),
	}
	for name, opts := range variants {
		t.Run(name, func(t *testing.T) {
			const (
				readers = 3
				writers = 2
				rounds  = 200
			)
			threads := readers + writers
			l, _, ar, _ := testSetup(t, threads, htm.Config{Threads: threads, Words: 1 << 14}, opts)
			x := ar.AllocLines(1)
			y := ar.AllocLines(1)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					h := l.NewHandle(slot)
					for i := 0; i < rounds; i++ {
						h.Write(0, func(acc memmodel.Accessor) {
							v := acc.Load(x) + 1
							acc.Store(x, v)
							acc.Store(y, v)
						})
					}
				}(w)
			}
			for r := 0; r < readers; r++ {
				wg.Add(1)
				go func(slot int) {
					defer wg.Done()
					h := l.NewHandle(slot)
					for i := 0; i < rounds; i++ {
						h.Read(1, func(acc memmodel.Accessor) {
							vx := acc.Load(x)
							vy := acc.Load(y)
							if vx != vy {
								t.Errorf("torn snapshot: x=%d y=%d", vx, vy)
							}
						})
					}
				}(writers + r)
			}
			wg.Wait()
		})
	}
}

// TestWritersSerializeUnderForcedFallback: with spurious aborts on every
// transactional access, every writer lands on the global-lock path and must
// still serialize correctly with uninstrumented readers.
func TestWritersSerializeUnderForcedFallback(t *testing.T) {
	const threads = 4
	opts := DefaultOptions()
	l, e, ar, col := testSetup(t, threads, htm.Config{Threads: threads, Words: 1 << 14, SpuriousEvery: 1}, opts)
	ctr := ar.AllocLines(1)
	var wg sync.WaitGroup
	for s := 0; s < threads; s++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			h := l.NewHandle(slot)
			for i := 0; i < 100; i++ {
				h.Write(0, func(acc memmodel.Accessor) {
					acc.Store(ctr, acc.Load(ctr)+1)
				})
			}
		}(s)
	}
	wg.Wait()
	if got := e.Load(ctr); got != threads*100 {
		t.Fatalf("counter = %d, want %d", got, threads*100)
	}
	s := col.Snapshot()
	if got := s.Commits[stats.Writer][env.ModeGL]; got != threads*100 {
		t.Fatalf("GL commits = %d, want all %d (snapshot: %s)", got, threads*100, s)
	}
}

// TestVersionedSGLAdmitsReaderPastNewerWriter exercises §3.3: a reader
// waiting on the fallback lock stops deferring once the lock version moves
// past the one it registered against, entering while the (gated) newer
// writer still holds the lock.
func TestVersionedSGLAdmitsReaderPastNewerWriter(t *testing.T) {
	opts := DefaultOptions()
	opts.VersionedSGL = true
	opts.ReaderHTMFirst = false
	l, e, _, _ := testSetup(t, 2, htm.Config{}, opts)

	l.gl.Lock() // fallback writer #1 holds the lock

	inCS := make(chan struct{})
	done := make(chan struct{})
	go func() {
		l.NewHandle(1).Read(0, func(acc memmodel.Accessor) {
			close(inCS)
		})
		close(done)
	}()

	// Wait for the reader to register its observed version.
	deadline := time.Now().Add(2 * time.Second)
	for e.Load(l.readerVerAddr(1)) == 0 {
		if time.Now().After(deadline) {
			t.Fatal("reader never registered against the versioned SGL")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case <-inCS:
		t.Fatal("reader entered while version had not moved")
	case <-time.After(10 * time.Millisecond):
	}

	// Fallback writer #2 takes over: version bumps while the lock stays
	// held (bump-then-wake, as lockGL does). The reader must now enter.
	e.Add(l.glVer, 1)
	l.gl.Wake()
	select {
	case <-inCS:
	case <-time.After(2 * time.Second):
		t.Fatal("reader still deferring after the version moved past it")
	}
	<-done
	// The registration must have been retired.
	if got := e.Load(l.readerVerAddr(1)); got != 0 {
		t.Fatalf("readerVer[1] = %d after CS, want 0", got)
	}
	l.gl.Unlock()
}

// TestEstimatorLearnsDurations: the sampling thread's executions feed the
// EMA used by the scheduling heuristics.
func TestEstimatorLearnsDurations(t *testing.T) {
	l, _, ar, _ := testSetup(t, 2, htm.Config{}, DefaultOptions())
	data := ar.AllocLines(1)
	h := l.NewHandle(0) // slot 0 is the sampling thread
	for i := 0; i < 5; i++ {
		h.Write(3, func(acc memmodel.Accessor) { acc.Store(data, uint64(i)) })
	}
	if _, ok := l.Estimator().Duration(3); !ok {
		t.Fatal("estimator has no sample for cs 3 after sampling-thread executions")
	}
}

// TestConcurrentMixedWorkload hammers a counter array from mixed
// readers/writers across every variant, verifying the total and that reads
// observe monotonically consistent sums.
func TestConcurrentMixedWorkload(t *testing.T) {
	for _, opts := range []Options{DefaultOptions(), SNZIOptions()} {
		const (
			threads = 6
			rounds  = 150
			cells   = 4
		)
		l, e, ar, _ := testSetup(t, threads, htm.Config{Threads: threads, Words: 1 << 14}, opts)
		base := ar.AllocLines(cells)
		cell := func(i int) memmodel.Addr { return base + memmodel.Addr(i*memmodel.LineWords) }
		var wg sync.WaitGroup
		for s := 0; s < threads; s++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				h := l.NewHandle(slot)
				for i := 0; i < rounds; i++ {
					if slot%2 == 0 {
						h.Write(0, func(acc memmodel.Accessor) {
							// Move a unit between cells: sum invariant.
							from, to := i%cells, (i+1)%cells
							acc.Store(cell(from), acc.Load(cell(from))-1)
							acc.Store(cell(to), acc.Load(cell(to))+1)
						})
					} else {
						h.Read(1, func(acc memmodel.Accessor) {
							var sum uint64
							for c := 0; c < cells; c++ {
								sum += acc.Load(cell(c))
							}
							if sum != 0 {
								t.Errorf("%s: reader saw sum %d, want 0", l.Name(), sum)
							}
						})
					}
				}
			}(s)
		}
		wg.Wait()
		var sum uint64
		for c := 0; c < cells; c++ {
			sum += e.Load(cell(c))
		}
		if sum != 0 {
			t.Fatalf("%s: final sum = %d, want 0", l.Name(), sum)
		}
	}
}
