package core

import (
	"sprwl/internal/env"
	"sprwl/internal/locks"
	"sprwl/internal/obs"
	"sprwl/internal/park"
	"sprwl/internal/rwlock"
)

// Read implements rwlock.Handle: a SpRWL read-only critical section.
//
// With ReaderHTMFirst the body first runs as a plain elided transaction
// (§3.4); on capacity aborts or budget exhaustion it falls back to the
// paper's uninstrumented reader path: reader synchronization (Alg. 2), then
// flag-and-check against the fallback lock (Alg. 1), then the body runs
// with direct, fence-ordered accesses, untracked by any transaction.
//
//sprwl:hotpath
//sprwl:model
func (h *handle) Read(csID int, body rwlock.Body) {
	l := h.l
	start := l.e.Now()

	// Dynamic handles (slot < 0) skip the slot-keyed refinements: HTM
	// attempts need an environment slot, and the clock/sampling words
	// are per-slot arrays.
	if l.opts.ReaderHTMFirst && h.slot >= 0 && h.readTryHTM(csID, start, body) {
		return
	}

	if l.opts.ReaderSync {
		h.readersWait(csID)
	}
	if l.opts.WriterSync && h.slot >= 0 {
		// Advertise our predicted end time for Alg. 3's writer_wait,
		// after reader synchronization and before starting (§3.2.2).
		l.e.Store(l.clockRAddr(h.slot), l.est.EndTime(csID, l.e.Now()))
	}

	h.flagReaderAndSyncGL(csID)
	h.atFault(FaultReaderFlagged)

	bodyStart := l.e.Now()
	body(l.e)
	bodyCycles := l.e.Now() - bodyStart

	// Release order per Alg. 1: the critical section's loads are ordered
	// before the flag reset (the environment's accesses are sequentially
	// consistent, subsuming the paper's mem_fence).
	h.unflagReader()
	if l.opts.WriterSync && h.slot >= 0 {
		l.e.Store(l.clockRAddr(h.slot), 0)
	}

	l.sample(h.slot, csID, bodyCycles)
	if l.opts.AutoSNZI {
		h.recordReaderDuration(bodyCycles)
	}
	h.ring.Section(obs.Reader, csID, env.ModeUninstrumented, start, l.e.Now())
}

// readTryHTM attempts the read-only section as a hardware transaction and
// reports whether it committed. Capacity aborts fall back immediately; other
// aborts burn budget (§3.4, same retry policy as writers).
func (h *handle) readTryHTM(csID int, start uint64, body rwlock.Body) bool {
	l := h.l
	h.txBody = body
	committed := false
	for attempts := 0; attempts < l.opts.ReaderRetries; {
		if l.gl.IsLocked() {
			// The fallback path is active; the uninstrumented path
			// knows how to synchronize with it.
			break
		}
		bodyStart := l.e.Now()
		cause := l.e.Attempt(h.slot, env.TxOpts{}, h.txRead)
		if cause == env.Committed {
			now := l.e.Now()
			l.sample(h.slot, csID, now-bodyStart)
			h.ring.Section(obs.Reader, csID, env.ModeHTM, start, now)
			committed = true
			break
		}
		h.ring.Abort(obs.Reader, csID, cause, l.e.Now())
		if cause == env.AbortCapacity {
			break
		}
		attempts++
	}
	h.txBody = nil
	return committed
}

// readersWait implements Alg. 2's Readers_Wait: wait for the active writer
// predicted to complete last, or join a reader that is already waiting.
//
//sprwl:model
func (h *handle) readersWait(csID int) {
	l := h.l
	wait := -1
	var maxWait uint64
	for i := 0; i < l.threads; i++ {
		if l.e.Load(l.stateAddr(i)) == stateWriter {
			if cw := l.e.Load(l.clockWAddr(i)); wait == -1 || cw > maxWait {
				maxWait = cw
				wait = i
			}
		} else if l.opts.JoinWaiters {
			if wf := l.e.Load(l.waitingForAddr(i)); wf != 0 {
				// Join the already-waiting reader: wait for the
				// same writer and start together with it.
				wait = int(wf - 1)
				break
			}
		}
	}
	if wait == -1 {
		return
	}
	waitStart := l.e.Now()
	if h.slot >= 0 {
		// Dynamic readers wait but cannot advertise joinable waits:
		// the waitingFor array is per-slot.
		l.e.Store(l.waitingForAddr(h.slot), uint64(wait+1))
	}
	if l.opts.TimedReaderWait {
		// §3.4: sleep on the timestamp counter until the writer's
		// predicted end instead of hammering its state line.
		if t := l.e.Load(l.clockWAddr(wait)); t > l.e.Now() {
			l.e.WaitUntil(t)
		}
	}
	// Spin-then-park on the writer's state word; the writer's retirement
	// store in finishWrite is followed by the wake. The writer's
	// advertised end time predicts the remaining wait (the §3.2.1
	// estimator feeds it), sending long waits straight to the parker —
	// the prediction load is gated on CanPark so spin-only environments
	// (the simulator's default) execute the historical access sequence.
	w := park.Waiter{E: l.e, P: l.parker, Pol: park.SpinPark()}
	a := l.stateAddr(wait)
	for l.e.Load(a) == stateWriter {
		var remaining uint64
		if w.CanPark() {
			if t := l.e.Load(l.clockWAddr(wait)); t > l.e.Now() {
				remaining = t - l.e.Now()
			}
		}
		w.Pause(a, stateWriter, remaining)
	}
	if h.slot >= 0 {
		l.e.Store(l.waitingForAddr(h.slot), 0)
	}
	h.ring.Wait(obs.WaitRSync, obs.Reader, csID, waitStart, l.e.Now())
	w.ReportParks(h.ring, obs.Reader, csID)
}

// flagReaderAndSyncGL publishes the reader's presence and resolves the
// interplay with the fallback lock (Alg. 1 lines 5–7 and 28–32): flag
// first, then check the lock; if the lock is held, retract, wait, retry.
// The flag-then-check order pairs with the fallback writer's lock-then-wait
// order so one of them always sees the other.
//
// With VersionedSGL (§3.3) a reader that finds the lock busy registers the
// version it observed; once the version moves past it, the reader may enter
// even though the lock is still held, because every fallback writer with a
// newer version gates its execution on (1) no reader registered against an
// older version and (2) no reader flag — and the reader transitions from
// registration to flag in that order, so it is visible to the writer in at
// least one of the two scans at every instant.
//
//sprwl:model
func (h *handle) flagReaderAndSyncGL(csID int) {
	l := h.l
	// The §3.3 registration words are per-slot; a dynamic reader takes
	// the plain flag-and-wait path even under VersionedSGL (it simply
	// does not overtake newer fallback writers).
	vsgl := l.opts.VersionedSGL && h.slot >= 0
	for {
		// Cheap pre-wait while the fallback lock is held (the reader
		// analogue of Alg. 1 line 34): without it, readers churn
		// flag/unflag cycles against a held lock, which keeps the
		// SNZI indicator flickering and can starve the fallback
		// writer's quiescence wait. The flag-then-check below remains
		// the safety handshake. (VersionedSGL readers must not park
		// here — §3.3 lets them overtake newer fallback writers.)
		if !vsgl {
			h.awaitGLClear(obs.Reader, csID)
		}
		h.flagReader()
		if !l.gl.IsLocked() {
			return
		}
		h.unflagReader()
		if !vsgl {
			h.awaitGLClear(obs.Reader, csID)
			continue
		}
		// Register against the observed version, validating that the
		// version did not advance concurrently — a writer that bumps
		// the version after the validation read must scan readerVer
		// after its bump, and therefore sees the registration. Each
		// registration store is followed by a wake: a fallback writer
		// may be parked on this word from its §3.3 drain, and a store
		// that moves the registration past its version must not leave
		// it asleep.
		var observed uint64
		for {
			observed = l.e.Load(l.glVer)
			l.e.Store(l.readerVerAddr(h.slot), observed+1)
			l.wakes.Wake(l.readerVerAddr(h.slot))
			if l.e.Load(l.glVer) == observed {
				break
			}
		}
		// Wait for the lock to clear or the version to move past us.
		// This wait must spin: it exits on a disjunction over two words
		// (lock word clears, or glVer advances), and Table.Park's
		// internal re-check can only re-validate the single parked
		// word. Parking on the lock word loses the version exit — a
		// writer can bump glVer and wake the lock word before our
		// waiter count is visible, then park in its own §3.3 drain
		// waiting for the registration we will never retire: a
		// lost-wakeup cycle (found by sprwl-model on vsgl-1r1w).
		waitStart := l.e.Now()
		w := park.Waiter{E: l.e, Pol: park.SpinPark()}
		glAddr := l.gl.Addr()
		for l.gl.IsLocked() && l.e.Load(l.glVer) <= observed {
			w.Pause(glAddr, locks.SpinLocked, 0)
		}
		h.ring.Wait(obs.WaitGL, obs.Reader, csID, waitStart, l.e.Now())
		w.ReportParks(h.ring, obs.Reader, csID)
		if l.gl.IsLocked() {
			// The version moved past us: the current fallback
			// writer is gated on our registration. Flag first,
			// then retire the registration (flagReader does both,
			// in that order), and enter.
			h.flagReader()
			return
		}
		// Lock released: take the normal re-flag path (flagReader
		// clears the registration).
	}
}

//sprwl:model
func (h *handle) flagReader() {
	l := h.l
	for {
		target := trackTarget(l.trackingMode())
		h.arriveIn(target)
		if !l.opts.AutoSNZI {
			break
		}
		// Re-validate after flagging: the self-tuning controller may
		// have completed a tracking switch between our mode read and
		// our flag, in which case writers no longer check the
		// structure we used.
		if covered(target, l.e.Load(l.trackMode)) {
			break
		}
		h.departFrom(target)
	}
	if l.opts.VersionedSGL && h.slot >= 0 {
		// Retire any §3.3 wait registration only after the flag is
		// visible, so a gated fallback writer always sees one or the
		// other; then wake the fallback writer possibly parked on the
		// registration word (store-then-wake).
		l.e.Store(l.readerVerAddr(h.slot), 0)
		l.wakes.Wake(l.readerVerAddr(h.slot))
	}
}

//sprwl:model
func (h *handle) unflagReader() { h.departFrom(h.flaggedIn) }
