package core

import (
	"sprwl/internal/locks"
	"sprwl/internal/obs"
	"sprwl/internal/park"
)

// This file is the lock's only waiting machinery: every blocking loop in
// the read and write paths routes through the spin-then-park waiters below
// (package park), so the spin/park policy and the phase-word protocol live
// in one place instead of being re-derived at each call site.

// glWaiter builds the spin-then-park waiter for fallback-lock waits.
func (h *handle) glWaiter() park.Waiter {
	return park.Waiter{E: h.l.e, P: h.l.parker, Pol: park.SpinPark()}
}

// awaitGLClear blocks until the fallback lock is free, parking on the lock
// word once the spin budget runs out, and reports the stall as a WaitGL
// event when one actually occurred. It is the shared pre-wait of the reader
// flag-and-check loop (Alg. 1 lines 28–32) and the writer attempt loop
// (Alg. 1 line 34); the SpinMutex release wakes parked waiters.
//
//sprwl:model
func (h *handle) awaitGLClear(rw uint8, csID int) {
	l := h.l
	w := h.glWaiter()
	a := l.gl.Addr()
	for l.gl.IsLocked() {
		w.Pause(a, locks.SpinLocked, 0)
	}
	w.Report(h.ring, obs.WaitGL, rw, csID)
}
