package core

import (
	"math"
	"sync/atomic"

	"sprwl/internal/env"
)

// Self-tuning reader tracking (the paper's §5 future-work item): Fig. 6
// shows SNZI tracking wins by up to ~6× for long readers and loses by up to
// ~6× for short ones, and the authors propose automatically enabling and
// disabling it. With Options.AutoSNZI the lock measures reader durations
// and switches the *tracking structure* at runtime.
//
// The mode lives in a simulated-memory word so writers can subscribe to it
// transactionally. Because readers read the mode and then flag — and a
// writer may check in between — switching uses a three-phase protocol:
//
//	FLAGS ──→ toSNZI ──→ SNZI ──→ toFLAGS ──→ FLAGS …
//
// During a transition phase, writers (commit check and fallback drain)
// check BOTH structures; new readers already use the target structure; the
// controller advances out of the transition only after the old structure
// has drained. A reader additionally re-validates the mode after flagging
// and re-flags if the structure it used is no longer covered — so at every
// instant an active reader is visible to every checking writer.
const (
	modeFlags uint64 = iota
	modeSNZI
	modeToSNZI
	modeToFlags
)

// trackTarget returns the structure new readers should use under mode m.
func trackTarget(m uint64) uint64 {
	if m == modeSNZI || m == modeToSNZI {
		return modeSNZI
	}
	return modeFlags
}

// covered reports whether a reader flagged in structure s is visible to
// writers under mode m.
func covered(s, m uint64) bool {
	return s == trackTarget(m) || m == modeToSNZI || m == modeToFlags
}

// adaptState is the controller's Go-side state (library-internal, like the
// duration estimator).
type adaptState struct {
	// readerEMA is the exponential moving average of uninstrumented
	// reader critical-section durations, as a float64 bit pattern.
	readerEMA atomic.Uint64
	// reads counts sampled reads, to pace controller evaluations.
	reads atomic.Uint64
}

const (
	// adaptEvery paces controller evaluations (sampled reads between
	// decisions).
	adaptEvery = 32
	// adaptAlpha is the reader-duration EMA weight.
	adaptAlpha = 0.25
	// adaptHysteresis avoids mode flapping: switch back only below
	// threshold/adaptHysteresis.
	adaptHysteresis = 2
)

// DefaultAutoSNZIThreshold is the reader duration (cycles) above which SNZI
// tracking is enabled. Fig. 6's crossover sits where the reader is roughly
// an order of magnitude longer than the writer's flag-array check; 16k
// cycles is that point under the simulator's default cost model.
const DefaultAutoSNZIThreshold = 16_384

// recordReaderDuration feeds the controller and, on the sampling thread,
// periodically evaluates a mode switch.
func (h *handle) recordReaderDuration(cycles uint64) {
	l := h.l
	for {
		old := l.adapt.readerEMA.Load()
		var next float64
		if old == 0 {
			next = float64(cycles)
		} else {
			prev := math.Float64frombits(old)
			next = adaptAlpha*float64(cycles) + (1-adaptAlpha)*prev
		}
		if l.adapt.readerEMA.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	if h.slot != 0 {
		return
	}
	if l.adapt.reads.Add(1)%adaptEvery != 0 {
		return
	}
	h.maybeSwitchTracking()
}

// maybeSwitchTracking runs the controller: begin and complete a transition
// if the measured reader duration crossed the threshold.
func (h *handle) maybeSwitchTracking() {
	l := h.l
	ema := math.Float64frombits(l.adapt.readerEMA.Load())
	mode := l.e.Load(l.trackMode)
	switch mode {
	case modeFlags:
		if ema > float64(l.opts.AutoSNZIThreshold) {
			l.e.Store(l.trackMode, modeToSNZI)
			h.drainFlags()
			l.e.Store(l.trackMode, modeSNZI)
		}
	case modeSNZI:
		if ema < float64(l.opts.AutoSNZIThreshold)/adaptHysteresis {
			l.e.Store(l.trackMode, modeToFlags)
			for l.z.Query() {
				l.e.Yield()
			}
			l.e.Store(l.trackMode, modeFlags)
		}
	}
}

// drainFlags waits until no reader is flagged in the state array.
func (h *handle) drainFlags() {
	l := h.l
	for i := 0; i < l.threads; i++ {
		for l.e.Load(l.stateAddr(i)) == stateReader {
			l.e.Yield()
		}
	}
}

// trackingMode returns the current reader-tracking mode for this lock
// configuration (static modes never read simulated memory).
func (l *Lock) trackingMode() uint64 {
	switch {
	case l.opts.AutoSNZI:
		return l.e.Load(l.trackMode)
	case l.opts.UseSNZI:
		return modeSNZI
	default:
		return modeFlags
	}
}

// arriveIn flags the reader in structure s.
func (h *handle) arriveIn(s uint64) {
	if s == modeSNZI {
		h.l.z.Arrive(h.slot)
	} else {
		h.l.e.Store(h.l.stateAddr(h.slot), stateReader)
	}
	h.flaggedIn = s
}

// departFrom retracts the reader flag from structure s.
func (h *handle) departFrom(s uint64) {
	if s == modeSNZI {
		h.l.z.Depart(h.slot)
	} else {
		h.l.e.Store(h.l.stateAddr(h.slot), stateEmpty)
	}
}

// checkForReadersAdaptive is the commit-time check under AutoSNZI: read the
// mode (one stable line in the read set) and check the structure(s) it
// covers.
func (h *handle) checkForReadersAdaptive(tx env.TxAccessor) {
	l := h.l
	switch tx.Load(l.trackMode) {
	case modeFlags:
		h.checkFlagArray(tx)
	case modeSNZI:
		h.checkIndicator(tx)
	default: // transition: readers may be in either structure
		h.checkIndicator(tx)
		h.checkFlagArray(tx)
	}
}

func (h *handle) checkFlagArray(tx env.TxAccessor) {
	l := h.l
	for i := 0; i < l.threads; i++ {
		if i != h.slot && tx.Load(l.stateAddr(i)) == stateReader {
			tx.Abort(env.AbortReader)
		}
	}
}

func (h *handle) checkIndicator(tx env.TxAccessor) {
	if tx.Load(h.l.z.IndicatorAddr()) != 0 {
		tx.Abort(env.AbortReader)
	}
}
