package core

import (
	"math"
	"sync/atomic"

	"sprwl/internal/env"
	"sprwl/internal/obs"
	"sprwl/internal/readers"
)

// Self-tuning reader tracking (the paper's §5 future-work item): Fig. 6
// shows SNZI tracking wins by up to ~6× for long readers and loses by up to
// ~6× for short ones, and the authors propose automatically enabling and
// disabling it. With Options.AutoSNZI the lock measures reader durations
// and switches the *tracking structure* at runtime, promoting and demoting
// across all three backends of package readers:
//
//	FLAGS  — cheapest arrival (one store), O(threads) commit check;
//	BRAVO  — one-CAS arrival, O(table slots) commit check, and the only
//	         flag-style structure safe for dynamic (slot-less) readers;
//	SNZI   — one-line commit check, O(log n) arrival.
//
// The mode lives in a simulated-memory word so writers can subscribe to it
// transactionally. The word packs the target backend (which structure new
// readers flag in) and, during a transition, the structure being drained:
//
//	mode = target | (draining+1)<<drainShift    // draining absent: steady
//
// Because readers read the mode and then flag — and a writer may check in
// between — switching is three-phase: the controller stores the transition
// word (new readers now use the target; writers check BOTH structures),
// waits for the old structure to drain, then stores the steady word. A
// reader additionally re-validates the mode after flagging and re-flags if
// the structure it used is no longer covered — so at every instant an
// active reader is visible to every checking writer.
const (
	backendFlags uint64 = 0
	backendSNZI  uint64 = 1
	backendBravo uint64 = 2

	backendMask uint64 = 3
	drainShift         = 2
)

// trackTarget returns the structure new readers should use under mode m.
func trackTarget(m uint64) uint64 { return m & backendMask }

// drainingBackend returns the structure a transition is draining, if m is
// a transition word.
func drainingBackend(m uint64) (uint64, bool) {
	d := m >> drainShift
	return d - 1, d != 0
}

// transitionMode packs the transition word draining `from` into `to`.
func transitionMode(to, from uint64) uint64 { return to | (from+1)<<drainShift }

// covered reports whether a reader flagged in structure s is visible to
// writers under mode m.
func covered(s, m uint64) bool {
	if s == trackTarget(m) {
		return true
	}
	d, ok := drainingBackend(m)
	return ok && s == d
}

// adaptState is the controller's Go-side state (library-internal, like the
// duration estimator).
type adaptState struct {
	// readerEMA is the exponential moving average of uninstrumented
	// reader critical-section durations, as a float64 bit pattern.
	readerEMA atomic.Uint64
	// reads counts sampled reads, to pace controller evaluations.
	reads atomic.Uint64
	// mu serializes tracking transitions: the paced controller and
	// NewDynamicHandle's one-shot flags eviction must not interleave
	// their three-phase switches.
	mu nbMutex
}

// nbMutex is a CAS mutex with a non-blocking TryLock, so the paced
// controller can skip an evaluation instead of stalling a reader behind a
// transition already in flight.
type nbMutex struct{ held atomic.Uint32 }

func (m *nbMutex) TryLock() bool { return m.held.CompareAndSwap(0, 1) }
func (m *nbMutex) Lock() {
	for !m.held.CompareAndSwap(0, 1) {
	}
}
func (m *nbMutex) Unlock() { m.held.Store(0) }

const (
	// adaptEvery paces controller evaluations (sampled reads between
	// decisions).
	adaptEvery = 32
	// adaptAlpha is the reader-duration EMA weight.
	adaptAlpha = 0.25
	// adaptHysteresis avoids mode flapping: demote only below the
	// promotion threshold divided by adaptHysteresis.
	adaptHysteresis = 2
	// adaptBravoDivisor sets the flags→BRAVO promotion point relative
	// to AutoSNZIThreshold: BRAVO's commit check is a fraction of the
	// flag array's (table slots vs. registered threads), so it pays off
	// at proportionally shorter reader durations than SNZI does.
	adaptBravoDivisor = 4
)

// DefaultAutoSNZIThreshold is the reader duration (cycles) above which SNZI
// tracking is enabled. Fig. 6's crossover sits where the reader is roughly
// an order of magnitude longer than the writer's flag-array check; 16k
// cycles is that point under the simulator's default cost model.
const DefaultAutoSNZIThreshold = 16_384

// recordReaderDuration feeds the controller and, on a pacing handle (the
// sampling slot or any dynamic handle), periodically evaluates a switch.
func (h *handle) recordReaderDuration(cycles uint64) {
	l := h.l
	for {
		old := l.adapt.readerEMA.Load()
		var next float64
		if old == 0 {
			next = float64(cycles)
		} else {
			prev := math.Float64frombits(old)
			next = adaptAlpha*float64(cycles) + (1-adaptAlpha)*prev
		}
		if l.adapt.readerEMA.CompareAndSwap(old, math.Float64bits(next)) {
			break
		}
	}
	if h.slot > 0 {
		return
	}
	if l.adapt.reads.Add(1)%adaptEvery != 0 {
		return
	}
	h.maybeSwitchTracking()
}

// maybeSwitchTracking runs the controller: begin and complete a transition
// if the measured reader duration crossed a backend's threshold. With the
// transition lock busy another switch is in flight; skip this evaluation.
func (h *handle) maybeSwitchTracking() {
	l := h.l
	if !l.adapt.mu.TryLock() {
		return
	}
	defer l.adapt.mu.Unlock()
	ema := math.Float64frombits(l.adapt.readerEMA.Load())
	cur := trackTarget(l.e.Load(l.trackMode))
	want := l.desiredBackend(cur, ema)
	if want == backendFlags && l.dynReaders.Load() > 0 {
		// Dynamic readers carry no slot; the flag array cannot hold
		// them. BRAVO is the cheap-reader structure that can.
		want = backendBravo
	}
	if want != cur {
		h.switchTracking(cur, want)
	}
}

// desiredBackend maps the reader-duration EMA to a tracking structure,
// with hysteresis on demotions relative to the current structure.
func (l *Lock) desiredBackend(cur uint64, ema float64) uint64 {
	snziAt := float64(l.opts.AutoSNZIThreshold)
	bravoAt := snziAt / adaptBravoDivisor
	switch cur {
	case backendFlags:
		if ema > snziAt {
			return backendSNZI
		}
		if ema > bravoAt {
			return backendBravo
		}
	case backendBravo:
		if ema > snziAt {
			return backendSNZI
		}
		if ema < bravoAt/adaptHysteresis {
			return backendFlags
		}
	case backendSNZI:
		if ema < snziAt/adaptHysteresis {
			if ema > bravoAt {
				return backendBravo
			}
			return backendFlags
		}
	}
	return cur
}

// switchTracking runs the three-phase transition from structure `from` to
// structure `to`. Caller holds the transition lock.
func (h *handle) switchTracking(from, to uint64) {
	l := h.l
	l.e.Store(l.trackMode, transitionMode(to, from))
	h.drainBackend(from)
	l.e.Store(l.trackMode, to)
	h.ring.Readers(obs.ReadersSwitch, -1, l.e.Now())
}

// drainBackend waits until no reader is flagged in structure s.
func (h *handle) drainBackend(s uint64) {
	l := h.l
	switch s {
	case backendSNZI:
		l.indSNZI.Drain(l.e)
	case backendBravo:
		l.indBravo.Drain(l.e)
	default:
		l.indFlags.Drain(l.e)
	}
}

// trackingMode returns the current reader-tracking mode for this lock
// configuration (static modes never read simulated memory).
func (l *Lock) trackingMode() uint64 {
	switch {
	case l.opts.AutoSNZI:
		return l.e.Load(l.trackMode)
	case l.opts.UseBravo:
		return backendBravo
	case l.opts.UseSNZI:
		return backendSNZI
	default:
		return backendFlags
	}
}

// arriveIn flags the reader in structure s, remembering the structure and
// the backend token so the retract always targets what was used.
//
//sprwl:hotpath
func (h *handle) arriveIn(s uint64) {
	l := h.l
	switch s {
	case backendSNZI:
		h.flagToken = l.indSNZI.Arrive(h.hint)
	case backendBravo:
		h.flagToken = l.indBravo.Arrive(h.hint)
		if h.flagToken == readers.OverflowToken && h.ring != nil {
			h.ring.Readers(obs.ReadersCollision, -1, l.e.Now())
		}
	default:
		h.flagToken = l.indFlags.Arrive(h.hint)
	}
	h.flaggedIn = s
}

// departFrom retracts the reader flag from structure s.
//
//sprwl:hotpath
func (h *handle) departFrom(s uint64) {
	l := h.l
	switch s {
	case backendSNZI:
		l.indSNZI.Depart(h.flagToken)
	case backendBravo:
		l.indBravo.Depart(h.flagToken)
	default:
		l.indFlags.Depart(h.flagToken)
	}
}

// checkForReadersAdaptive is the commit-time check under AutoSNZI: read the
// mode (one stable line in the read set) and check the structure(s) it
// covers.
func (h *handle) checkForReadersAdaptive(tx env.TxAccessor) {
	l := h.l
	m := tx.Load(l.trackMode)
	h.checkBackend(tx, trackTarget(m))
	if d, ok := drainingBackend(m); ok {
		// Transition: readers may still be flagged in the structure
		// being drained.
		h.checkBackend(tx, d)
	}
}

// checkBackend aborts the writer if structure s holds an active reader.
func (h *handle) checkBackend(tx env.TxAccessor, s uint64) {
	switch s {
	case backendSNZI:
		h.checkIndicator(tx)
	case backendBravo:
		h.checkBravo(tx)
	default:
		h.checkFlagArray(tx)
	}
}

func (h *handle) checkFlagArray(tx env.TxAccessor) {
	if h.l.indFlags.Check(tx, h.slot) {
		tx.Abort(env.AbortReader)
	}
}

func (h *handle) checkIndicator(tx env.TxAccessor) {
	if h.l.indSNZI.Check(tx, -1) {
		tx.Abort(env.AbortReader)
	}
}

func (h *handle) checkBravo(tx env.TxAccessor) {
	if h.l.indBravo.Check(tx, -1) {
		tx.Abort(env.AbortReader)
	}
}
