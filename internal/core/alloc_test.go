package core

import (
	"testing"

	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
)

// TestReadWriteCommitPathDoesNotAllocate pins the steady-state allocation
// behavior of the SpRWL acquire paths: once a handle exists, an
// uncontended Read or Write that commits in hardware must not
// heap-allocate. This is what the cached per-handle transaction closures
// in NewHandle buy — without them, every attempt re-built a closure that
// escaped through the env.Env.Attempt interface.
func TestReadWriteCommitPathDoesNotAllocate(t *testing.T) {
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: 1 << 14})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	l := MustNew(e, ar, 1, 4, DefaultOptions(), nil)
	h := l.NewHandle(0)

	data := ar.AllocWords(1)

	var sink uint64
	readBody := func(acc memmodel.Accessor) { sink += acc.Load(data) }
	writeBody := func(acc memmodel.Accessor) { acc.Store(data, acc.Load(data)+1) }

	// Warm up: first transactions grow the emulation's read/write sets.
	for i := 0; i < 4; i++ {
		h.Write(0, writeBody)
		h.Read(1, readBody)
	}

	if avg := testing.AllocsPerRun(100, func() { h.Read(1, readBody) }); avg != 0 {
		t.Fatalf("Read allocated %.2f objects per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { h.Write(0, writeBody) }); avg != 0 {
		t.Fatalf("Write allocated %.2f objects per run, want 0", avg)
	}
	_ = sink
}

// TestBravoReadWritePathDoesNotAllocate pins the BRAVO backend's acquire
// paths: arrival hashing, slot CAS, and the overflow fallback are all
// in-place on preallocated table lines, so the static read and write paths
// stay allocation-free just like the flag-array configuration.
func TestBravoReadWritePathDoesNotAllocate(t *testing.T) {
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: 1 << 14})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	opts := BravoOptions()
	opts.BravoSlots = 8 // deterministic table size regardless of GOMAXPROCS
	l := MustNew(e, ar, 1, 4, opts, nil)
	h := l.NewHandle(0)

	data := ar.AllocWords(1)

	var sink uint64
	readBody := func(acc memmodel.Accessor) { sink += acc.Load(data) }
	writeBody := func(acc memmodel.Accessor) { acc.Store(data, acc.Load(data)+1) }

	for i := 0; i < 4; i++ {
		h.Write(0, writeBody)
		h.Read(1, readBody)
	}

	if avg := testing.AllocsPerRun(100, func() { h.Read(1, readBody) }); avg != 0 {
		t.Fatalf("Read allocated %.2f objects per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { h.Write(0, writeBody) }); avg != 0 {
		t.Fatalf("Write allocated %.2f objects per run, want 0", avg)
	}
	_ = sink
}

// TestDynamicHandlePathsDoNotAllocate pins the dynamic-registration hot
// paths: once a dynamic handle exists, its Read (BRAVO arrive/depart, no
// per-slot bookkeeping) and Write (straight to the fallback lock) must not
// heap-allocate. This is what keeps NewDynamicHandle usable from transient
// goroutines — the only allocation is the handle itself.
func TestDynamicHandlePathsDoNotAllocate(t *testing.T) {
	space := htm.MustNewSpace(htm.Config{Threads: 1, Words: 1 << 14})
	e := htm.NewRuntime(space, nil)
	ar := memmodel.NewArena(0, space.Size())
	opts := BravoOptions()
	opts.BravoSlots = 8
	l := MustNew(e, ar, 1, 4, opts, nil)
	h, err := l.NewDynamicHandle()
	if err != nil {
		t.Fatal(err)
	}

	data := ar.AllocWords(1)

	var sink uint64
	readBody := func(acc memmodel.Accessor) { sink += acc.Load(data) }
	writeBody := func(acc memmodel.Accessor) { acc.Store(data, acc.Load(data)+1) }

	for i := 0; i < 4; i++ {
		h.Write(0, writeBody)
		h.Read(1, readBody)
	}

	if avg := testing.AllocsPerRun(100, func() { h.Read(1, readBody) }); avg != 0 {
		t.Fatalf("dynamic Read allocated %.2f objects per run, want 0", avg)
	}
	if avg := testing.AllocsPerRun(100, func() { h.Write(0, writeBody) }); avg != 0 {
		t.Fatalf("dynamic Write allocated %.2f objects per run, want 0", avg)
	}
	_ = sink
}
