package core

import (
	"sprwl/internal/obs"
	"sprwl/internal/rwlock"
)

// Explicit two-phase acquisition, the building block for multi-lock spans
// (package locktable). A span holds several SpRWL locks at once — something
// the closure API cannot express — so each handle also exposes the paper's
// two always-correct per-lock phases as begin/end pairs:
//
//   - AcquireRead/ReleaseRead: the Alg. 1 uninstrumented-reader handshake
//     (flag, check the fallback lock, retract-and-wait if held). The §3.2
//     scheduling refinements and the §3.4 HTM-first attempt are skipped:
//     they are per-lock throughput heuristics keyed on transient per-slot
//     state, and a span must hold only states whose release obligations
//     survive across the acquisition of further locks.
//   - AcquireWrite/ReleaseWrite: the Alg. 1 pessimistic writer phase (take
//     the fallback lock, drain active readers). Hardware attempts are not
//     used: one HTM transaction cannot span the commit checks of several
//     locks' acquisition *phases* — the span holds each lock from its
//     acquisition until the span ends, which best-effort HTM cannot
//     guarantee across aborts.
//
// Deadlock discipline is the caller's: a thread acquiring several locks
// must acquire them in one globally agreed order (locktable uses ascending
// shard index) and must not interleave spans with closure-style sections on
// locks it already holds. Within one lock the phases compose with every
// concurrent closure-style section: span readers publish through the same
// reader indicators the commit-time check scans, and a held fallback lock
// aborts HTM writers through their subscription load.

// SpanHandle is the extension interface implemented by every SpRWL handle:
// the closure API plus explicit two-phase acquisition for multi-lock spans.
// The usage contract is rwlock.Handle's (one goroutine per handle), and the
// phases of one handle must be strictly nested begin/end pairs.
type SpanHandle interface {
	rwlock.Handle

	// AcquireRead enters this lock as an uninstrumented reader: after it
	// returns, and until ReleaseRead, every writer either drains this
	// reader (fallback path) or self-aborts on it (commit-time check).
	AcquireRead(csID int)

	// ReleaseRead retires the reader flag published by AcquireRead.
	ReleaseRead(csID int)

	// AcquireWrite acquires this lock exclusively on the pessimistic
	// path: fallback lock taken, active readers drained.
	AcquireWrite(csID int)

	// ReleaseWrite releases the fallback lock taken by AcquireWrite.
	ReleaseWrite(csID int)
}

var _ SpanHandle = (*handle)(nil)

// AcquireRead implements SpanHandle: the Alg. 1 flag-and-check handshake,
// without the scheduling refinements (see the file comment). The section
// event for a span is recorded by the span owner, not per lock.
//
//sprwl:hotpath
func (h *handle) AcquireRead(csID int) {
	h.flagReaderAndSyncGL(csID)
}

// ReleaseRead implements SpanHandle. The span body's loads are ordered
// before the flag reset by the environment's sequentially consistent
// accesses, exactly as in the closure-style read path.
//
//sprwl:hotpath
func (h *handle) ReleaseRead(csID int) {
	h.unflagReader()
}

// AcquireWrite implements SpanHandle: advertise the writer (so arriving
// readers defer to it, §3.2.1), take the fallback lock, drain readers. The
// advertisement stays up for the whole span — a reader that arrives after
// us must not start a section we would then have to drain again.
//
//sprwl:hotpath
func (h *handle) AcquireWrite(csID int) {
	l := h.l
	if l.opts.ReaderSync && h.slot >= 0 {
		l.e.Store(l.clockWAddr(h.slot), l.est.EndTime(csID, l.e.Now()))
		l.e.Store(l.stateAddr(h.slot), stateWriter)
	}
	h.lockGL(csID)
	h.spanGLAt = l.e.Now()
	h.waitForReaders(csID)
}

// ReleaseWrite implements SpanHandle: restore BRAVO read bias, release the
// fallback lock (whose unlock wakes parked waiters), and retire the writer
// advertisement — store-then-wake, the phase protocol synchronized readers
// park on.
//
//sprwl:hotpath
func (h *handle) ReleaseWrite(csID int) {
	l := h.l
	h.restoreReaderBias()
	l.gl.Unlock()
	h.ring.SGL(csID, h.spanGLAt, l.e.Now())
	if l.opts.ReaderSync && h.slot >= 0 {
		l.e.Store(l.stateAddr(h.slot), stateEmpty)
		l.wakes.Wake(l.stateAddr(h.slot))
		if l.wakes.Enabled() {
			h.ring.Park(obs.ParkWake, obs.Writer, csID, l.e.Now(), 0)
		}
	}
}
