// Package core implements SpRWL, the Speculative Read-Write Lock of Issa,
// Romano and Lopes (Middleware '18) — the paper's primary contribution.
//
// Writers execute as best-effort hardware transactions (package htm) with a
// single-global-lock fallback; readers execute uninstrumented, outside any
// transaction, and are therefore immune to HTM capacity and interrupt
// limits. Safety comes from the commit-time reader check plus HTM's strong
// isolation (§3.1): a writer scans the per-thread state array (or the SNZI
// indicator) inside its transaction immediately before committing and
// self-aborts if any reader is active; a reader that flags itself after the
// writer's check dooms the writer through strong isolation, because the
// flag store hits the writer's transactional read set.
//
// On top of the base algorithm sit the two scheduling schemes of §3.2 —
// reader synchronization (readers wait for the active writer predicted to
// finish last, joining already-waiting readers) and writer synchronization
// (a writer aborted by a reader delays its retry so that it is predicted to
// finish δ cycles after the last active reader) — and the optimizations of
// §3.4 (readers attempt HTM first, SNZI-based reader tracking, timed reader
// waits) plus the §3.3 versioned-SGL anti-starvation scheme. Every feature
// is individually switchable through Options, which is how the Fig. 5
// ablation (NoSched / RWait / RSync / SpRWL) and the Fig. 6 SNZI study are
// produced.
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"sprwl/internal/ema"
	"sprwl/internal/env"
	"sprwl/internal/locks"
	"sprwl/internal/memmodel"
	"sprwl/internal/obs"
	"sprwl/internal/park"
	"sprwl/internal/readers"
	"sprwl/internal/rwlock"
	"sprwl/internal/snzi"
)

// Per-thread state-array values (paper Alg. 1/2).
const (
	stateEmpty  = 0 // ⊥
	stateReader = 1 // #READER
	stateWriter = 2 // #WRITER
)

// Options selects SpRWL's scheduling schemes and optimizations.
type Options struct {
	// ReaderSync enables the §3.2.1 reader synchronization scheme:
	// arriving readers wait for active writers (paper Alg. 2).
	ReaderSync bool

	// JoinWaiters lets an arriving reader join a reader that is already
	// waiting for a writer instead of picking its own writer to wait for
	// (the RSync refinement of Alg. 2; disabling it yields the paper's
	// RWait ablation variant).
	JoinWaiters bool

	// WriterSync enables the §3.2.2 writer synchronization scheme: a
	// writer aborted by an active reader delays its retry to finish δ
	// cycles after the last reader (paper Alg. 3).
	WriterSync bool

	// ReaderHTMFirst makes readers attempt HTM before falling back to
	// the uninstrumented path (§3.4), which keeps SpRWL competitive with
	// plain lock elision when readers fit in hardware.
	ReaderHTMFirst bool

	// UseSNZI tracks readers with a Scalable NonZero Indicator instead
	// of the per-thread state array, making the writer's commit-time
	// check a single-line read (§3.4, Fig. 6).
	UseSNZI bool

	// UseBravo tracks readers with a BRAVO-style sharded visible-readers
	// table (package readers): arrivals hash into cache-line-padded
	// slots, so the writer's commit-time check scans O(table slots)
	// lines instead of one word per registered thread, and slot-less
	// dynamic handles (NewDynamicHandle) become possible. Overrides
	// UseSNZI.
	UseBravo bool

	// BravoSlots overrides the BRAVO table size (rounded to a power of
	// two in [4, 256]); 0 derives it from runtime.GOMAXPROCS.
	// Deterministic runs (the simulator harness) must pin it.
	BravoSlots int

	// AutoSNZI enables the paper's §5 future-work self-tuning: the lock
	// measures reader durations and switches reader tracking at runtime
	// between the flag array (cheapest readers), the BRAVO table
	// (cheap readers, bounded writer checks, dynamic-safe), and SNZI
	// (cheapest writer checks), using a transition protocol that keeps
	// every active reader visible to writers throughout. Overrides
	// UseBravo and UseSNZI.
	AutoSNZI bool

	// AutoSNZIThreshold is the reader duration (cycles) above which
	// AutoSNZI selects SNZI tracking; 0 selects
	// DefaultAutoSNZIThreshold.
	AutoSNZIThreshold uint64

	// TimedReaderWait makes a reader waiting for a writer sleep on the
	// timestamp counter until the writer's predicted end instead of
	// spinning on the writer's state entry (§3.4).
	TimedReaderWait bool

	// VersionedSGL enables the §3.3 anti-starvation scheme: the fallback
	// lock carries a version, and a reader stops deferring to fallback
	// writers that acquired the lock after the reader started waiting.
	VersionedSGL bool

	// MaxRetries is the hardware attempt budget for writers before the
	// fallback path activates; capacity aborts skip the budget and fall
	// back immediately (§4). The paper uses 10.
	MaxRetries int

	// ReaderRetries is the hardware attempt budget for readers when
	// ReaderHTMFirst is enabled; capacity aborts fall back immediately.
	ReaderRetries int
}

// DefaultOptions returns the full SpRWL configuration the paper evaluates
// under the name "SpRWL": both scheduling schemes, HTM-first readers, timed
// waits, flag-array reader tracking, and a 10-attempt budget.
func DefaultOptions() Options {
	return Options{
		ReaderSync:      true,
		JoinWaiters:     true,
		WriterSync:      true,
		ReaderHTMFirst:  true,
		TimedReaderWait: true,
		MaxRetries:      10,
		ReaderRetries:   10,
	}
}

// NoSchedOptions is the paper's "NoSched" ablation: the §3.1 base algorithm
// with no scheduling at all.
func NoSchedOptions() Options {
	o := DefaultOptions()
	o.ReaderSync = false
	o.JoinWaiters = false
	o.WriterSync = false
	return o
}

// RWaitOptions is the paper's "RWait" ablation: readers wait for the writer
// predicted to finish last, but do not join already-waiting readers; no
// writer synchronization.
func RWaitOptions() Options {
	o := DefaultOptions()
	o.JoinWaiters = false
	o.WriterSync = false
	return o
}

// RSyncOptions is the paper's "RSync" ablation: full reader
// synchronization, no writer synchronization.
func RSyncOptions() Options {
	o := DefaultOptions()
	o.WriterSync = false
	return o
}

// SNZIOptions is the full configuration with SNZI reader tracking (the
// "SNZI" series of Figs. 6 and 7).
func SNZIOptions() Options {
	o := DefaultOptions()
	o.UseSNZI = true
	return o
}

// BravoOptions is the full configuration with BRAVO-table reader tracking:
// O(table slots) commit checks and support for dynamic (slot-less) reader
// handles.
func BravoOptions() Options {
	o := DefaultOptions()
	o.UseBravo = true
	return o
}

// AutoSNZIOptions is the §5 self-tuning configuration: reader tracking
// switches between flags and SNZI based on measured reader durations.
func AutoSNZIOptions() Options {
	o := DefaultOptions()
	o.AutoSNZI = true
	return o
}

// Lock is a SpRWL instance. Lock state lives in simulated memory carved
// from the arena passed to New, so the same implementation runs under the
// real runtime and the discrete-event simulator.
type Lock struct {
	e       env.Env
	opts    Options
	threads int
	est     *ema.Estimator
	pipe    *obs.Pipeline

	state      memmodel.Addr // per-thread word, packed 8/line
	clockW     memmodel.Addr // writers' predicted end times
	clockR     memmodel.Addr // readers' predicted end times
	waitingFor memmodel.Addr // reader → writer-slot+1 it waits for
	readerVer  memmodel.Addr // versioned-SGL: observed version+1

	gl        locks.SpinMutex
	glVer     memmodel.Addr
	z         *snzi.SNZI
	trackMode memmodel.Addr // adaptive reader-tracking mode word
	adapt     adaptState

	// parker is the environment's sleep/wake primitive (nil = spin-only,
	// the simulator's default); wakes is the nil-safe wake endpoint the
	// writer-retire paths call after their phase stores.
	parker park.Parker
	wakes  park.Hub

	// The three reader-indicator backends (package readers). indFlags
	// wraps the state array and indSNZI wraps z, so the simulated
	// memory traffic of the classic configurations is unchanged;
	// indBravo is allocated only when UseBravo or AutoSNZI asks for it.
	indFlags readers.Flags
	indSNZI  readers.SNZI
	indBravo *readers.Bravo

	// dynReaders counts dynamic (slot-less) handles ever created; while
	// nonzero the self-tuning controller must not select the flag
	// array, which cannot represent them.
	dynReaders atomic.Int64

	// fault is the test-only fault-point hook (see fault.go); nil in
	// production, which costs one branch per fence point.
	fault func(FaultPoint, int)
}

var _ rwlock.Lock = (*Lock)(nil)

// Words returns the simulated-memory footprint of a Lock for the given
// thread count, in words, for every configuration without a BRAVO table.
// Use WordsFor when Options may select one.
func Words(threads int) int {
	arrays := 5 * lineAlignedWords(threads)
	glWords := 3 * memmodel.LineWords // fallback lock, its version, mode word
	return arrays + glWords + snzi.Words(threads)
}

// WordsFor returns the simulated-memory footprint of a Lock built with the
// given options.
func WordsFor(threads int, opts Options) int {
	w := Words(threads)
	if opts.UseBravo || opts.AutoSNZI {
		w += readers.BravoWords(bravoSlotCount(opts))
	}
	return w
}

// bravoSlotCount resolves the BRAVO table size for opts.
func bravoSlotCount(opts Options) int {
	if opts.BravoSlots > 0 {
		return readers.ClampBravoSlots(opts.BravoSlots)
	}
	return readers.DefaultBravoSlots()
}

func lineAlignedWords(n int) int {
	return (n + memmodel.LineWords - 1) / memmodel.LineWords * memmodel.LineWords
}

// New builds a SpRWL over e for the given thread count, carving its state
// out of ar. numCS is the number of distinct critical-section IDs the
// duration estimator tracks (§3.2.1). pipe is the observability pipeline
// every scheduling decision and outcome is reported through; nil disables
// instrumentation entirely.
func New(e env.Env, ar *memmodel.Arena, threads, numCS int, opts Options, pipe *obs.Pipeline) (*Lock, error) {
	if threads < 1 {
		return nil, errors.New("core: threads must be positive")
	}
	if threads > e.Threads() {
		return nil, fmt.Errorf("core: %d threads exceed environment capacity %d", threads, e.Threads())
	}
	if opts.MaxRetries < 1 {
		opts.MaxRetries = 1
	}
	if opts.ReaderRetries < 1 {
		opts.ReaderRetries = 1
	}
	l := &Lock{
		e:          e,
		opts:       opts,
		threads:    threads,
		est:        ema.NewEstimator(numCS, 0),
		pipe:       pipe,
		state:      ar.AllocWords(threads),
		clockW:     ar.AllocWords(threads),
		clockR:     ar.AllocWords(threads),
		waitingFor: ar.AllocWords(threads),
		readerVer:  ar.AllocWords(threads),
	}
	if opts.AutoSNZIThreshold == 0 {
		l.opts.AutoSNZIThreshold = DefaultAutoSNZIThreshold
	}
	l.parker = park.FromEnv(e)
	l.wakes = park.NewHub(l.parker)
	l.gl = locks.NewSpinMutex(e, ar.AllocLines(1))
	l.glVer = ar.AllocLines(1)
	l.trackMode = ar.AllocLines(1)
	l.z = snzi.New(e, ar.AllocWords(snzi.Words(threads)), threads)
	// Indicator backends. Flags and SNZI wrap state the lock already
	// owns — same words, same access sequences as the classic layout;
	// the BRAVO table is extra state, allocated after everything else so
	// configurations without it keep their exact arena layout.
	l.indFlags = readers.NewFlags(e, l.state, threads)
	l.indSNZI = readers.NewSNZI(l.z)
	if l.opts.UseBravo || l.opts.AutoSNZI {
		slots := bravoSlotCount(l.opts)
		l.opts.BravoSlots = slots
		l.indBravo = readers.NewBravo(e, ar.AllocWords(readers.BravoWords(slots)), slots)
	}
	return l, nil
}

// MustNew is New for static configurations; it panics on error.
func MustNew(e env.Env, ar *memmodel.Arena, threads, numCS int, opts Options, pipe *obs.Pipeline) *Lock {
	l, err := New(e, ar, threads, numCS, opts, pipe)
	if err != nil {
		panic(err)
	}
	return l
}

// Name implements rwlock.Lock.
func (l *Lock) Name() string {
	switch {
	case l.opts.AutoSNZI:
		return "SpRWL-Auto"
	case l.opts.UseBravo:
		return "SpRWL-Bravo"
	case l.opts.UseSNZI:
		return "SpRWL-SNZI"
	case !l.opts.ReaderSync && !l.opts.WriterSync:
		return "SpRWL-NoSched"
	case l.opts.ReaderSync && !l.opts.JoinWaiters && !l.opts.WriterSync:
		return "SpRWL-RWait"
	case l.opts.ReaderSync && !l.opts.WriterSync:
		return "SpRWL-RSync"
	default:
		return "SpRWL"
	}
}

// NewHandle implements rwlock.Lock.
func (l *Lock) NewHandle(slot int) rwlock.Handle {
	if slot < 0 || slot >= l.threads {
		panic(fmt.Sprintf("core: slot %d out of range [0,%d)", slot, l.threads))
	}
	h := &handle{l: l, slot: slot, hint: uint64(slot), ring: l.pipe.Thread(slot)}
	// The attempt closures are built once per handle and reused by every
	// hardware attempt: passing a fresh closure through the env.Env.Attempt
	// interface would make it escape and allocate on every retry of every
	// critical section. The current body travels through h.txBody, which is
	// owned by the handle's thread.
	glAddr := l.gl.Addr()
	h.txRead = func(tx env.TxAccessor) {
		if tx.Load(glAddr) != 0 {
			tx.Abort(env.AbortExplicit)
		}
		h.txBody(tx)
	}
	h.txWrite = func(tx env.TxAccessor) {
		if tx.Load(glAddr) != 0 {
			tx.Abort(env.AbortExplicit)
		}
		h.txBody(tx)
		h.checkForReaders(tx)
	}
	return h
}

// dynSeed feeds goroutine-local slot hashing: every dynamic handle draws a
// distinct seed, mixed so consecutive handles probe unrelated BRAVO slots
// and SNZI leaves.
var dynSeed atomic.Uint64

// NewDynamicHandle returns a handle bound to no preassigned thread slot:
// any number of goroutines may hold one (one goroutine per handle at a
// time, as with NewHandle), beyond the lock's registered thread count.
//
// Dynamic reads take the uninstrumented path and publish through a
// dynamic-safe indicator — the BRAVO table or SNZI — using the handle's
// hash seed instead of a slot; dynamic writes always run on the global
// fallback lock, which needs no slot either. The per-slot scheduling
// refinements (HTM-first sections, clock advertisement, §3.3 wait
// registration, duration sampling) are skipped: they all key on a slot.
//
// Requires a dynamic-safe backend: UseBravo, UseSNZI, or AutoSNZI. Under
// AutoSNZI the first dynamic handle permanently evicts flag-array
// tracking (the flag array cannot represent slot-less readers); the
// controller keeps self-tuning between BRAVO and SNZI.
func (l *Lock) NewDynamicHandle() (rwlock.Handle, error) {
	if !l.opts.AutoSNZI && !l.opts.UseBravo && !l.opts.UseSNZI {
		return nil, errors.New("core: dynamic handles need a dynamic-safe reader backend (UseBravo, UseSNZI or AutoSNZI)")
	}
	h := &handle{l: l, slot: -1, hint: readers.Mix64(dynSeed.Add(1))}
	if l.opts.AutoSNZI {
		l.dynReaders.Add(1)
		// Evict flag-array tracking before this handle's first read,
		// under the transition lock so a controller switch in flight
		// completes first.
		l.adapt.mu.Lock()
		if cur := trackTarget(l.e.Load(l.trackMode)); cur == backendFlags {
			h.switchTracking(backendFlags, backendBravo)
		}
		l.adapt.mu.Unlock()
	}
	return h, nil
}

// NewDynamicHandleObserved is NewDynamicHandle with an observability ring
// drawn from the lock's pipeline at ringSlot. Dynamic handles have no
// thread slot, so the pipeline must be built with extra ring slots for them
// (the oversubscription harness does: ring 0..threads-1 for static handles,
// ring threads+i for dynamic reader i); a ringSlot beyond the pipeline's
// size yields a nil ring, i.e. plain NewDynamicHandle behaviour. The usual
// ownership rule applies: a ring slot must be unique to one handle, used by
// one goroutine.
func (l *Lock) NewDynamicHandleObserved(ringSlot int) (rwlock.Handle, error) {
	h, err := l.NewDynamicHandle()
	if err != nil {
		return nil, err
	}
	h.(*handle).ring = l.pipe.Thread(ringSlot)
	return h, nil
}

// handle is one thread's endpoint; see rwlock.Handle for the usage
// contract. Dynamic handles carry slot == -1 and skip every slot-keyed
// path (HTM attempts, clock advertisement, wait registration, sampling).
type handle struct {
	l    *Lock
	slot int
	// hint seeds indicator slot selection: the thread slot for static
	// handles (the flag array requires it), a mixed per-handle seed for
	// dynamic ones.
	hint uint64
	// ring is this thread's observability event buffer (nil when no
	// pipeline is attached; all record methods are nil-safe).
	ring *obs.Ring
	// flaggedIn records which tracking structure this thread's active
	// reader flag lives in (a backend* value), and flagToken the
	// backend's Arrive token, so the unflag always retracts exactly
	// what was published.
	flaggedIn uint64
	flagToken uint64

	// spanGLAt is the fallback-lock acquisition timestamp of the current
	// AcquireWrite span, consumed by ReleaseWrite's SGL event.
	spanGLAt uint64

	// txBody carries the critical-section body for the duration of one
	// Read/Write call; txRead and txWrite are the per-handle attempt
	// closures that subscribe to the fallback lock, run txBody, and (for
	// writers) perform the commit-time reader check. Caching them here
	// keeps the attempt loops allocation-free.
	txBody  rwlock.Body
	txRead  func(tx env.TxAccessor)
	txWrite func(tx env.TxAccessor)
}

func (l *Lock) stateAddr(i int) memmodel.Addr      { return l.state + memmodel.Addr(i) }
func (l *Lock) clockWAddr(i int) memmodel.Addr     { return l.clockW + memmodel.Addr(i) }
func (l *Lock) clockRAddr(i int) memmodel.Addr     { return l.clockR + memmodel.Addr(i) }
func (l *Lock) waitingForAddr(i int) memmodel.Addr { return l.waitingFor + memmodel.Addr(i) }
func (l *Lock) readerVerAddr(i int) memmodel.Addr  { return l.readerVer + memmodel.Addr(i) }

// sample records a critical-section duration on the designated sampling
// thread only (§3.2.1).
func (l *Lock) sample(slot, csID int, cycles uint64) {
	if l.est.ShouldSample(slot) {
		l.est.Sample(csID, cycles)
	}
}
