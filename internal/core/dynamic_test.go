package core

import (
	"sync"
	"testing"
	"time"

	"sprwl/internal/htm"
	"sprwl/internal/memmodel"
)

// TestDynamicHandleRequiresDynamicBackend: the flag array cannot hold a
// slot-less reader, so a flags-only configuration must refuse to hand out
// dynamic handles.
func TestDynamicHandleRequiresDynamicBackend(t *testing.T) {
	l, _, _, _ := testSetup(t, 2, htm.Config{}, DefaultOptions())
	if _, err := l.NewDynamicHandle(); err == nil {
		t.Fatal("NewDynamicHandle succeeded on a flags-only lock")
	}
	for _, opts := range []Options{BravoOptions(), SNZIOptions(), AutoSNZIOptions()} {
		l, _, _, _ := testSetup(t, 2, htm.Config{}, opts)
		if _, err := l.NewDynamicHandle(); err != nil {
			t.Fatalf("NewDynamicHandle(%s): %v", l.Name(), err)
		}
	}
}

// TestDynamicHandleEvictsFlagTracking: handing out a dynamic handle under
// AutoSNZI while tracking sits in the flag array must move tracking to a
// structure that can hold slot-less readers, and the controller must never
// move it back while dynamic handles exist.
func TestDynamicHandleEvictsFlagTracking(t *testing.T) {
	opts := AutoSNZIOptions()
	opts.ReaderHTMFirst = false
	l, e, ar, _ := testSetup(t, 2, htm.Config{}, opts)
	data := ar.AllocLines(1)

	if got := trackTarget(e.Load(l.trackMode)); got != backendFlags {
		t.Fatalf("initial tracking = %d, want flags", got)
	}
	h, err := l.NewDynamicHandle()
	if err != nil {
		t.Fatal(err)
	}
	if got := trackTarget(e.Load(l.trackMode)); got != backendBravo {
		t.Fatalf("tracking after NewDynamicHandle = %d, want BRAVO", got)
	}

	// Drive the controller with short reads on the pacing handle: without
	// dynamic readers it would demote to flags; with one registered it
	// must stay on a dynamic-safe structure.
	sh := l.NewHandle(0)
	for i := 0; i < 8*adaptEvery; i++ {
		sh.Read(0, func(acc memmodel.Accessor) { _ = acc.Load(data) })
	}
	if got := trackTarget(e.Load(l.trackMode)); got == backendFlags {
		t.Fatal("controller demoted to the flag array while a dynamic reader exists")
	}
	_ = h
}

// TestDynamicReaderBlocksWriterCommit: an active dynamic reader must be
// visible to a committing writer — the heart of the revocation-epoch safety
// argument — for each dynamic-safe configuration.
func TestDynamicReaderBlocksWriterCommit(t *testing.T) {
	for _, opts := range []Options{BravoOptions(), SNZIOptions(), AutoSNZIOptions()} {
		opts.ReaderHTMFirst = false
		l, e, ar, _ := testSetup(t, 2, htm.Config{}, opts)
		data := ar.AllocLines(1)
		h, err := l.NewDynamicHandle()
		if err != nil {
			t.Fatal(err)
		}

		readerIn := make(chan struct{})
		readerGo := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.Read(0, func(acc memmodel.Accessor) {
				close(readerIn)
				<-readerGo
			})
		}()
		<-readerIn

		done := make(chan struct{})
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.NewHandle(1).Write(1, func(acc memmodel.Accessor) { acc.Store(data, 1) })
			close(done)
		}()
		select {
		case <-done:
			t.Fatalf("%s: writer completed during an active dynamic reader", l.Name())
		case <-time.After(15 * time.Millisecond):
		}
		close(readerGo)
		wg.Wait()
		if got := e.Load(data); got != 1 {
			t.Fatalf("%s: data = %d, want 1", l.Name(), got)
		}
	}
}

// TestDynamicWriterTakesFallback: a dynamic writer has no transaction slot;
// it must run on the fallback lock and still be mutually exclusive and
// correctly counted.
func TestDynamicWriterTakesFallback(t *testing.T) {
	opts := BravoOptions()
	l, e, ar, col := testSetup(t, 2, htm.Config{}, opts)
	data := ar.AllocLines(1)
	h, err := l.NewDynamicHandle()
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			h.Write(0, func(acc memmodel.Accessor) { acc.Store(data, acc.Load(data)+1) })
		}
	}()
	sh := l.NewHandle(0)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			sh.Write(0, func(acc memmodel.Accessor) { acc.Store(data, acc.Load(data)+1) })
		}
	}()
	wg.Wait()
	if got := e.Load(data); got != 2*n {
		t.Fatalf("data = %d, want %d", got, 2*n)
	}
	_ = col
}

// TestManyDynamicReadersOverflow: more concurrent dynamic readers than
// BRAVO slots forces the overflow path; counts must still balance and a
// subsequent writer must run.
func TestManyDynamicReadersOverflow(t *testing.T) {
	opts := BravoOptions()
	opts.BravoSlots = 4
	l, e, ar, _ := testSetup(t, 2, htm.Config{}, opts)
	data := ar.AllocLines(1)
	const readers = 16
	var wg sync.WaitGroup
	for i := 0; i < readers; i++ {
		h, err := l.NewDynamicHandle()
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				h.Read(0, func(acc memmodel.Accessor) { _ = acc.Load(data) })
			}
		}()
	}
	wg.Wait()
	l.NewHandle(0).Write(1, func(acc memmodel.Accessor) { acc.Store(data, 7) })
	if got := e.Load(data); got != 7 {
		t.Fatalf("data = %d, want 7", got)
	}
	if l.indBravo.Check(nopTx{e}, -1) {
		t.Fatal("BRAVO table still shows readers after all departed")
	}
}

// nopTx adapts the direct environment to the readers.TxMemory shape for
// post-hoc assertions.
type nopTx struct {
	e interface{ Load(memmodel.Addr) uint64 }
}

func (n nopTx) Load(a memmodel.Addr) uint64 { return n.e.Load(a) }
